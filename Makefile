# Development targets. `make check` mirrors the CI gate.

GO ?= go

.PHONY: check fmt vet build test race retry-race fuzz-smoke bench bench-json

check: fmt vet race fuzz-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# The fault-injection/retry gate: every fault and differential-oracle
# test, twice, under the race detector.
retry-race:
	$(GO) test -race -count=2 -run 'Fault|Differential' ./...

# Short fuzz of the cube-equivalence oracle (relation shape x fault
# coordinate vs brute force).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzCubeEquivalence -fuzztime=10s ./internal/integration

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable benchmark artifact: the fig6 sweep plus every run's full
# per-round metrics as a versioned JSON document, then self-validated.
bench-json:
	$(GO) run ./cmd/spbench -exp fig6 -scale 0.05 -metrics-out BENCH_fig6.json > /dev/null
	$(GO) run ./cmd/spbench -validate BENCH_fig6.json
