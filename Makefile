# Development targets. `make check` mirrors the CI gate.

GO ?= go

.PHONY: check fmt vet build test race retry-race fuzz-smoke chaos chaos-proc \
	proc-smoke bench bench-json bench-delta bench-spill bench-hotpath \
	bench-hotpath-json bench-compare serve-smoke cover-serve cover-delta \
	delta-soak soak-scale lint

check: fmt vet race fuzz-smoke chaos proc-smoke chaos-proc serve-smoke \
	cover-serve cover-delta delta-soak bench-spill

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# The fault-injection/retry gate: every fault and differential-oracle
# test, twice, under the race detector.
retry-race:
	$(GO) test -race -count=2 -run 'Fault|Differential' ./...

# Short fuzz of the cube-equivalence oracle (relation shape x fault
# coordinate vs brute force), the delta-maintenance oracle (batch
# composition x aggregate x rebuild threshold vs recompute), and the spill
# plane's two wire formats: the front-coded record codec and the
# checksummed block framing (round-trip plus corrupt-input rejection).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzCubeEquivalence -fuzztime=10s ./internal/integration
	$(GO) test -run=NONE -fuzz=FuzzDeltaEquivalence -fuzztime=10s ./internal/integration
	$(GO) test -run=NONE -fuzz=FuzzKeyCodec -fuzztime=10s ./internal/mr
	$(GO) test -run=NONE -fuzz=FuzzBlockCodec -fuzztime=10s ./internal/mr/blockcodec

# Randomized fault-plan soak: deterministically generated multi-fault plans
# (every task-fault kind, whole-node crashes, speculation, task timeouts)
# differentially validated against the brute-force cube.
chaos:
	$(GO) test -count=1 -run TestChaosRandomFaultPlans ./internal/integration

# Execution-backend equivalence gate: every algorithm x fault plan on the
# proc backend — real worker processes, node crashes delivered as real
# SIGKILLs — must produce byte-identical output and volatile-stripped
# metrics vs the local backend, plus the differential oracle check and the
# cancellation/reap contract.
proc-smoke:
	$(GO) test -count=1 -run 'TestBackendDeterminismProc|TestBackendDifferentialProc|TestContextCancelProc' ./internal/mr/exec

# Randomized kill soak for the proc backend: SIGKILL worker processes at
# random moments mid-run; every run must either recover to the exact
# brute-force cube or fail plainly, leaking no processes or socket dirs.
chaos-proc:
	$(GO) test -count=1 -run TestChaosProcKillSoak ./internal/mr/exec

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable benchmark artifact: the fig6 sweep plus every run's full
# per-round metrics as a versioned JSON document, then self-validated.
bench-json:
	$(GO) run ./cmd/spbench -exp fig6 -scale 0.05 -metrics-out BENCH_fig6.json > /dev/null
	$(GO) run ./cmd/spbench -validate BENCH_fig6.json

# Delta-maintenance benchmark artifact: a 1% batch applied by delta-merge
# (delta job + serving-layer patch + swap) against a full rebuild, with a
# committed >= 5x speedup floor enforced by the validator.
bench-delta:
	$(GO) run ./cmd/spbench -delta-out BENCH_delta.json
	$(GO) run ./cmd/spbench -validate-delta BENCH_delta.json

# Spill-pipeline benchmark artifact: the fat-state shuffle through the
# async + lz pipeline against the synchronous raw baseline (the engine's
# pre-pipeline behavior), with committed floors — >= 1.3x simulated
# wall-clock speedup and >= 2x physical spilled-bytes reduction — enforced
# by the validator. Both gated quantities are deterministic in the seed, so
# the committed BENCH_spill.json re-validates bit-for-bit anywhere.
bench-spill:
	$(GO) run ./cmd/spbench -spill-out BENCH_spill.json
	$(GO) run ./cmd/spbench -validate-spill BENCH_spill.json

# Randomized incremental-maintenance soak: chaos-faulted delta cycles with
# appends and deletes feeding the serving store through patch + swap, each
# cycle verified exactly against brute force; failing cycles must leave the
# served cube untouched.
SOAK_CYCLES ?= 40
delta-soak:
	SPCUBE_SOAK_CYCLES=$(SOAK_CYCLES) $(GO) test -count=1 -run TestDeltaSoak ./internal/integration

# Out-of-core scale soak: a 10M-row uniform relation through sp-cube with an
# 8 MiB spill budget inside a GOMEMLIMIT-bounded process. The test asserts
# the budget fired, peak runtime memory stayed within 1.25x the limit, a
# subsampled prefix is byte-identical spilled vs. in memory, and no run
# files leak.
SOAK_SCALE_ROWS ?= 10000000
SOAK_SCALE_MEMLIMIT ?= 3GiB
soak-scale:
	SPCUBE_SOAK_SCALE=1 SPCUBE_SOAK_SCALE_ROWS=$(SOAK_SCALE_ROWS) \
		GOMEMLIMIT=$(SOAK_SCALE_MEMLIMIT) \
		$(GO) test -count=1 -timeout 45m -run TestSoakScale -v ./internal/integration

# Hot-path micro-benchmarks of the MR engine's data plane (shuffle merge,
# partitioner, combiner, end-to-end naive cube). BENCH_COUNT runs each.
BENCH_COUNT ?= 6
BENCH_PATTERN ?= EngineHotPath|HashPartition|ShuffleMerge|Combine
bench-hotpath:
	$(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) ./internal/mr/

# Refresh the committed hot-path baseline (BENCH_hotpath.json).
bench-hotpath-json:
	$(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) ./internal/mr/ > /tmp/bench_hotpath.txt
	$(GO) run ./cmd/benchcmp -json BENCH_hotpath.json /tmp/bench_hotpath.txt
	@cat BENCH_hotpath.json

# End-to-end smoke of the serving stack: compute a small cube, serve it on a
# random port, drive it with the load generator, and require non-zero
# throughput plus a schema-valid latency document.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/gendata -dataset retail -n 2000 -o "$$tmp/data.csv"; \
	$(GO) build -o "$$tmp/spserve" ./cmd/spserve; \
	$(GO) build -o "$$tmp/sploadgen" ./cmd/sploadgen; \
	"$$tmp/spserve" -in "$$tmp/data.csv" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" & pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "spserve exited before listening" >&2; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "spserve never wrote its address" >&2; exit 1; }; \
	"$$tmp/sploadgen" -target "http://$$(cat "$$tmp/addr")" -duration 2s -c 8 \
		-min-qps 1 -out "$$tmp/latency.json"; \
	"$$tmp/sploadgen" -validate "$$tmp/latency.json"; \
	kill $$pid; wait $$pid 2>/dev/null || true

# Coverage gate for the serving layer: its concurrency machinery (cache,
# batcher, HTTP front end) must stay above 80% statement coverage.
COVER_SERVE_MIN ?= 80.0
cover-serve:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -count=1 -coverprofile="$$tmp/serve.out" ./internal/serve/; \
	pct=$$($(GO) tool cover -func="$$tmp/serve.out" | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal/serve coverage: $$pct% (minimum $(COVER_SERVE_MIN)%)"; \
	awk -v got="$$pct" -v min="$(COVER_SERVE_MIN)" \
		'BEGIN { if (got + 0 < min + 0) { exit 1 } }' \
		|| { echo "internal/serve coverage $$pct% is below $(COVER_SERVE_MIN)%" >&2; exit 1; }

# Coverage gate for the maintenance layer: the delta/rebuild decision logic
# and merge paths must stay above 80% statement coverage.
COVER_DELTA_MIN ?= 80.0
cover-delta:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -count=1 -coverprofile="$$tmp/delta.out" ./internal/delta/; \
	pct=$$($(GO) tool cover -func="$$tmp/delta.out" | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal/delta coverage: $$pct% (minimum $(COVER_DELTA_MIN)%)"; \
	awk -v got="$$pct" -v min="$(COVER_DELTA_MIN)" \
		'BEGIN { if (got + 0 < min + 0) { exit 1 } }' \
		|| { echo "internal/delta coverage $$pct% is below $(COVER_DELTA_MIN)%" >&2; exit 1; }

# Static analysis and known-vulnerability scan, pinned so CI and local runs
# agree. Both tools are fetched by `go run`, so the first run needs network.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Old-vs-new hot-path comparison. Checks out BASE (default: the previous
# commit) into a temporary git worktree, copies the portable public-API
# benchmark file in (so old trees predating it still run the identical
# workload), benchmarks both trees, and renders the comparison with
# benchstat when installed, falling back to the in-repo cmd/benchcmp.
# In-package benchmarks (ShuffleMerge, Combine) may not exist in the old
# tree and then appear as new-only rows.
BASE ?= HEAD~1
bench-compare:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'git worktree remove --force "$$tmp/base" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	git worktree add --detach "$$tmp/base" $(BASE) >/dev/null; \
	mkdir -p "$$tmp/base/internal/mr"; \
	cp internal/mr/hotpath_bench_test.go "$$tmp/base/internal/mr/hotpath_bench_test.go"; \
	echo "benchmarking base ($(BASE))..."; \
	(cd "$$tmp/base" && $(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) ./internal/mr/) > "$$tmp/old.txt"; \
	echo "benchmarking working tree..."; \
	$(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) ./internal/mr/ > "$$tmp/new.txt"; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat "$$tmp/old.txt" "$$tmp/new.txt"; \
	else \
		$(GO) run ./cmd/benchcmp "$$tmp/old.txt" "$$tmp/new.txt"; \
	fi
