# Development targets. `make check` mirrors the CI gate.

GO ?= go

.PHONY: check fmt vet build test race retry-race fuzz-smoke bench

check: fmt vet race fuzz-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# The fault-injection/retry gate: every fault and differential-oracle
# test, twice, under the race detector.
retry-race:
	$(GO) test -race -count=2 -run 'Fault|Differential' ./...

# Short fuzz of the cube-equivalence oracle (relation shape x fault
# coordinate vs brute force).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzCubeEquivalence -fuzztime=10s ./internal/integration

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
