# Development targets. `make check` mirrors the CI gate.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
