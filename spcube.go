// Package spcube computes data cubes over relations using the SP-Cube
// algorithm of Milo & Altshuler, "An Efficient MapReduce Cube Algorithm for
// Varied Data Distributions" (SIGMOD 2016), on an embedded simulated
// MapReduce cluster.
//
// A data cube aggregates a measure over every subset of a relation's
// dimension attributes. SP-Cube first builds the SP-Sketch — a compact
// summary recording each cuboid's skewed groups and range-partition
// boundaries — and then computes the full cube in a single additional
// MapReduce round, pre-aggregating skewed groups in the mappers and
// factorizing the remaining work across reducers so that intermediate
// traffic stays near-linear in the input for common data distributions.
//
// Quick start:
//
//	rel := spcube.NewRelation([]string{"name", "city", "year"}, "sales")
//	rel.AddRow([]string{"laptop", "Rome", "2012"}, 2000)
//	rel.AddRow([]string{"laptop", "Paris", "2012"}, 1500)
//	// ... more rows ...
//	c, err := spcube.Compute(rel, spcube.Aggregate(spcube.Sum))
//	if err != nil { ... }
//	total, _ := c.Value("laptop", "*", "2012") // sales of laptops in 2012
//
// The package also exposes the baselines the paper evaluates against
// (the naive cube, Pig's MR-Cube, and a Hive-style cube) through the
// Algorithm option, together with per-run cluster statistics, so the
// trade-offs measured in the paper can be reproduced programmatically; the
// full benchmark suite lives in cmd/spbench.
package spcube

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/algo/pipesort"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/mr/exec"
	"github.com/spcube/spcube/internal/relation"
)

// MaxDims is the largest supported number of cube dimensions.
const MaxDims = lattice.MaxDims

// Relation is an in-memory relation: named dimension columns plus one
// numeric measure column.
type Relation struct {
	inner *relation.Relation
}

// NewRelation creates an empty relation with the given dimension column
// names and measure column name.
func NewRelation(dimNames []string, measureName string) *Relation {
	return &Relation{inner: relation.New(dimNames, measureName)}
}

// AddRow appends a row of string dimension values and a measure.
func (r *Relation) AddRow(dims []string, measure int64) {
	r.inner.AppendStrings(dims, measure)
}

// AddRowInts appends a row of already-encoded integer dimension values. A
// relation should stick to one of AddRow and AddRowInts; mixing them maps
// integer codes onto dictionary codes of the string rows.
func (r *Relation) AddRowInts(dims []int32, measure int64) {
	r.inner.Append(dims, measure)
}

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return r.inner.N() }

// NumDims returns the number of dimension columns.
func (r *Relation) NumDims() int { return r.inner.D() }

// DimNames returns the dimension column names.
func (r *Relation) DimNames() []string {
	return append([]string(nil), r.inner.Schema.DimNames...)
}

// Agg selects an aggregate function.
type Agg struct {
	f agg.Func
}

// Built-in aggregate functions. Count, Sum, Min and Max are distributive
// and Avg is algebraic — the classes SP-Cube supports with constant-size
// partial states. Distinct (count of distinct measure values) is holistic:
// it is computed exactly, but its partial states grow with the data, so the
// paper's traffic guarantees do not apply to it.
var (
	Count    = Agg{agg.Count}
	Sum      = Agg{agg.Sum}
	Min      = Agg{agg.Min}
	Max      = Agg{agg.Max}
	Avg      = Agg{agg.Avg}
	Var      = Agg{agg.Var}
	Stddev   = Agg{agg.Stddev}
	Distinct = Agg{agg.Distinct}
)

// AggByName resolves an aggregate function by name
// ("count", "sum", "min", "max", "avg", "var", "stddev", "distinct").
func AggByName(name string) (Agg, error) {
	f, err := agg.ByName(name)
	if err != nil {
		return Agg{}, err
	}
	return Agg{f}, nil
}

// Name returns the function's name.
func (a Agg) Name() string {
	if a.f == nil {
		return "count"
	}
	return a.f.Name()
}

// Alg selects the cube algorithm.
type Alg int

const (
	// AlgSPCube is the paper's contribution: sketch-driven, two rounds.
	AlgSPCube Alg = iota
	// AlgNaive is Algorithm 1: project-everything with hash partitioning.
	AlgNaive
	// AlgMRCube is MR-Cube (Nandi et al.), Pig's CUBE operator.
	AlgMRCube
	// AlgHive models Hive's CUBE compilation.
	AlgHive
	// AlgPipesort is the top-down, one-round-per-lattice-level cube of
	// Lee et al. (§7 of the paper).
	AlgPipesort
)

// String returns the algorithm's name.
func (a Alg) String() string {
	switch a {
	case AlgSPCube:
		return "sp-cube"
	case AlgNaive:
		return "naive"
	case AlgMRCube:
		return "mr-cube"
	case AlgHive:
		return "hive"
	case AlgPipesort:
		return "pipesort"
	}
	return fmt.Sprintf("Alg(%d)", int(a))
}

// AlgByName resolves an algorithm by name.
func AlgByName(name string) (Alg, error) {
	switch name {
	case "sp-cube", "spcube", "sp":
		return AlgSPCube, nil
	case "naive":
		return AlgNaive, nil
	case "mr-cube", "mrcube", "pig":
		return AlgMRCube, nil
	case "hive":
		return AlgHive, nil
	case "pipesort":
		return AlgPipesort, nil
	}
	return 0, fmt.Errorf("spcube: unknown algorithm %q (want sp-cube, naive, mr-cube, hive, pipesort)", name)
}

type config struct {
	workers     int
	memory      int
	aggFn       agg.Func
	alg         Alg
	seed        int64
	minSup      int
	parallelism int
	faultSpec   string
	maxAttempts int
	specSlack   float64
	taskTimeout float64
	trace       io.Writer
	spillBudget int64
	spillDir    string
	spillCodec  string
	mergeFanIn  int
	backend     string
	workerCmd   []string
	ctx         context.Context
}

// newExecutor resolves the configured execution backend. The local backend
// needs no construction (a nil Executor selects it); the proc backend
// spawns one worker process per simulated node and must be closed after
// the run — the caller defers the returned cleanup.
func (c *config) newExecutor() (mr.Executor, func(), error) {
	switch c.backend {
	case "", "local":
		return nil, func() {}, nil
	case "proc":
		p := exec.NewProc(exec.Options{WorkerCommand: c.workerCmd})
		return p, func() { p.Close() }, nil
	}
	return nil, nil, fmt.Errorf("unknown backend %q (want local or proc)", c.backend)
}

// engineConfig converts the facade configuration into the engine's,
// parsing the fault spec (an error surfaces from Compute/ComputeSet).
func (c *config) engineConfig() (mr.Config, error) {
	plan, err := mr.ParseFaultPlan(c.faultSpec)
	if err != nil {
		return mr.Config{}, err
	}
	cfg := mr.Config{
		Workers:          c.workers,
		MemTuples:        c.memory,
		Seed:             uint64(c.seed),
		Parallelism:      c.parallelism,
		Faults:           plan,
		MaxAttempts:      c.maxAttempts,
		SpeculativeSlack: c.specSlack,
		TaskTimeout:      c.taskTimeout,
		SpillBudgetBytes: c.spillBudget,
		SpillDir:         c.spillDir,
		SpillCodec:       c.spillCodec,
		MergeFanIn:       c.mergeFanIn,
		Context:          c.ctx,
	}
	if c.trace != nil {
		cfg.Tracer = mr.NewJSONLTracer(c.trace)
	}
	return cfg, nil
}

// Option configures Compute.
type Option func(*config)

// Workers sets the simulated cluster size k (default 8).
func Workers(k int) Option { return func(c *config) { c.workers = k } }

// Memory sets a machine's memory in tuples (default n/k), which is also the
// skew threshold of Definition 2.7.
func Memory(tuples int) Option { return func(c *config) { c.memory = tuples } }

// Aggregate sets the aggregate function (default Count).
func Aggregate(a Agg) Option { return func(c *config) { c.aggFn = a.f } }

// Algorithm selects the cube algorithm (default AlgSPCube).
func Algorithm(a Alg) Option { return func(c *config) { c.alg = a } }

// Seed fixes the sampling seed for reproducible runs (default 1).
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// MinSupport computes an iceberg cube: only c-groups with at least n
// contributing rows are materialized. The default (and any value below 2)
// materializes the full cube.
func MinSupport(n int) Option { return func(c *config) { c.minSup = n } }

// Parallelism sets the number of goroutines executing each round's simulated
// tasks: 0 (the default) uses all cores, 1 runs them sequentially. The
// computed cube and all simulated statistics are identical at any setting;
// only real wall-clock time changes.
func Parallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// Faults injects deterministic task failures into the simulated cluster.
// The spec is a comma-separated list of round:phase:task:kind[:attempt[:count]]
// entries ("*" wildcards round and task; kinds: crash, mid-emit, slow, oom,
// plus round:node:N:node-crash to kill a whole simulated machine — see
// mr.ParseFaultPlan). Failed tasks are transparently re-executed, and map
// output lost to a node crash is recomputed: the computed cube and all
// simulated statistics except the recovery counters are identical to a
// fault-free run. An empty spec (the default) injects nothing.
func Faults(spec string) Option { return func(c *config) { c.faultSpec = spec } }

// MaxAttempts bounds how many times one simulated task is executed before
// its injected failure becomes permanent and the computation fails
// (default 4). Only injected faults and engine-initiated kills (node loss,
// task timeout) are retried.
func MaxAttempts(n int) Option { return func(c *config) { c.maxAttempts = n } }

// SpeculativeSlack enables straggler mitigation: a task attempt stalled (by
// a slow fault) more than slack simulated seconds races one backup attempt,
// and the attempt with the lower simulated finish time wins — ties keep the
// original. The loser's output is discarded into Stats.WastedBytes; the
// computed cube is unchanged. 0 (the default) disables speculation.
func SpeculativeSlack(slack float64) Option { return func(c *config) { c.specSlack = slack } }

// TaskTimeout kills a task attempt stalled more than the given number of
// simulated seconds and retries it (counting against MaxAttempts) — the
// analog of Hadoop's progress timeout. 0 (the default) disables it.
func TaskTimeout(seconds float64) Option { return func(c *config) { c.taskTimeout = seconds } }

// SpillBudget caps a map task's in-memory emit buffer at the given number
// of bytes: when key+value bytes held in memory reach the budget, the task
// sorts and flushes its buffered output to a compact on-disk run file, and
// reducers stream a k-way merge over the runs instead of materializing
// their input. The computed cube is byte-identical at any budget (including
// one so small every record spills); only Stats.Spills/SpillBytes and the
// simulated I/O cost change. 0 (the default) keeps everything in memory.
func SpillBudget(bytes int64) Option { return func(c *config) { c.spillBudget = bytes } }

// SpillDir sets the directory under which spill run files are created (a
// fresh temp subdirectory per computation, removed on return even on
// failure). Empty (the default) uses the operating system's temp dir.
func SpillDir(dir string) Option { return func(c *config) { c.spillDir = dir } }

// SpillCodec selects the block compression codec for spill run files
// written under the SpillBudget option: "raw" (no compression) or "lz"
// (an LZ77-family byte compressor). Empty (the default) means "raw". The
// computed cube and every deterministic statistic except the spilled byte
// counts are identical under any codec; an unknown name surfaces as an
// error from Compute.
func SpillCodec(name string) Option { return func(c *config) { c.spillCodec = name } }

// MergeFanIn caps how many spill runs a reducer merges at once (the analog
// of Hadoop's io.sort.factor, default 64): when a tiny SpillBudget produces
// more runs than the cap, contiguous groups are first merged into
// intermediate on-disk runs, repeating until at most MergeFanIn remain.
// The computed cube and reducer input are byte-identical at any fan-in;
// only Stats.MergePasses and the simulated I/O cost change. Values below 2
// are raised to 2.
func MergeFanIn(n int) Option { return func(c *config) { c.mergeFanIn = n } }

// Trace streams the simulated cluster's structured lifecycle events — round
// start/end, task attempt start/success/failure/retry, shuffle, spill,
// fault injection — to w as JSON lines (one mr.TraceEvent per line). The
// stream is deterministic: identical, except for timestamps, at any
// Parallelism setting. A nil writer (the default) disables tracing at zero
// cost.
func Trace(w io.Writer) Option { return func(c *config) { c.trace = w } }

// Backend selects the execution backend: "local" (the default — simulated
// nodes execute as goroutines in this process) or "proc", which runs one
// real worker process per simulated node, with heartbeat liveness, RPC
// deadlines and crash recovery that kills and respawns actual OS
// processes. Output is byte-identical across backends; "proc" trades
// process-spawn and RPC overhead for genuine fault isolation.
func Backend(name string) Option { return func(c *config) { c.backend = name } }

// WorkerCommand overrides the worker argv for the proc backend (default:
// the current binary re-executes itself as its workers; cmd/spworker is a
// standalone alternative). Ignored by the local backend.
func WorkerCommand(argv ...string) Option {
	return func(c *config) { c.workerCmd = argv }
}

// Context attaches a cancellation context to the computation: when ctx is
// cancelled (e.g. on SIGINT), in-flight rounds stop at the next attempt
// boundary, worker processes are reaped, and Compute returns ctx's error.
func Context(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// Stats summarizes a computation's execution on the simulated cluster.
type Stats struct {
	// Algorithm that produced the cube.
	Algorithm string
	// Rounds is the number of MapReduce rounds executed.
	Rounds int
	// SimSeconds is the simulated cluster running time (see internal/mr's
	// cost model); WallSeconds is the real in-process time.
	SimSeconds  float64
	WallSeconds float64
	// ShuffleRecords/Bytes is the total intermediate data transferred.
	ShuffleRecords int64
	ShuffleBytes   int64
	// SketchBytes is the serialized SP-Sketch size (SP-Cube only).
	SketchBytes int
	// SampleTuples is the SP-Sketch sample size (SP-Cube only).
	SampleTuples int
	// SkewedGroups is the number of skewed c-groups detected (SP-Cube
	// only).
	SkewedGroups int
	// Retries is the number of task re-executions forced by injected
	// faults (see the Faults option); RetryWallSeconds is the real time
	// the failed attempts consumed, and WastedBytes the partial output
	// they produced before it was discarded. All zero in fault-free runs.
	Retries          int64
	RetryWallSeconds float64
	WastedBytes      int64
	// Spills is the number of spill events (map-side run-file flushes under
	// the SpillBudget option plus reduce-side external aggregations), and
	// SpillBytes the exact front-coded bytes they encoded (before block
	// compression). CompressedSpillBytes is what physically hit disk after
	// the SpillCodec ran — equal to the framed raw size under "raw", smaller
	// under "lz" on compressible data. MergePasses counts intermediate
	// fan-in merges forced by the MergeFanIn cap. All zero when nothing
	// spilled.
	Spills               int64
	SpillBytes           int64
	CompressedSpillBytes int64
	MergePasses          int64
	// MapReexecutions is the number of completed map tasks re-run because a
	// node crash lost their output, and FetchFailures the lost map outputs
	// the reducers observed. SpeculativeLaunched/Won/Killed count straggler
	// backup attempts under the SpeculativeSlack option. All zero without
	// node-crash faults and speculation.
	MapReexecutions     int64
	FetchFailures       int64
	SpeculativeLaunched int64
	SpeculativeWon      int64
	SpeculativeKilled   int64
}

// statsFromRun extracts the facade statistics from a finished run.
func statsFromRun(run *cube.Run) Stats {
	return Stats{
		Algorithm:        run.Algorithm,
		Rounds:           len(run.Metrics.Rounds),
		SimSeconds:       run.Metrics.SimSeconds(),
		WallSeconds:      run.Metrics.WallSeconds(),
		ShuffleRecords:   run.Metrics.ShuffleRecords(),
		ShuffleBytes:     run.Metrics.ShuffleBytes(),
		SketchBytes:      run.SketchBytes,
		SampleTuples:     run.SampleTuples,
		SkewedGroups:     run.SkewedGroups,
		Retries:          run.Metrics.Retries(),
		RetryWallSeconds: run.Metrics.RetryWallSeconds(),
		WastedBytes:      run.Metrics.WastedBytes(),
		Spills:           run.Metrics.Spills(),
		SpillBytes:       run.Metrics.SpillBytes(),

		CompressedSpillBytes: run.Metrics.CompressedSpillBytes(),
		MergePasses:          run.Metrics.MergePasses(),

		MapReexecutions:     run.Metrics.MapReexecutions(),
		FetchFailures:       run.Metrics.FetchFailures(),
		SpeculativeLaunched: run.Metrics.SpeculativeLaunched(),
		SpeculativeWon:      run.Metrics.SpeculativeWon(),
		SpeculativeKilled:   run.Metrics.SpeculativeKilled(),
	}
}

// Group is one cube group: per-dimension values ("*" where the dimension is
// aggregated away) and the aggregate value.
type Group struct {
	Dims  []string
	Value float64
}

// Cube is a computed data cube.
type Cube struct {
	rel     *Relation
	res     *cube.Result
	stats   Stats
	metrics mr.JobMetrics
}

// Compute runs a cube computation over the relation.
func Compute(rel *Relation, opts ...Option) (*Cube, error) {
	cfg := config{workers: 8, aggFn: agg.Count, alg: AlgSPCube, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if rel == nil || rel.NumRows() == 0 {
		return nil, errors.New("spcube: empty relation")
	}
	if rel.NumDims() == 0 || rel.NumDims() > MaxDims {
		return nil, fmt.Errorf("spcube: dimension count %d out of range [1,%d]", rel.NumDims(), MaxDims)
	}
	if cfg.workers < 1 {
		return nil, errors.New("spcube: need at least 1 worker")
	}

	engCfg, err := cfg.engineConfig()
	if err != nil {
		return nil, fmt.Errorf("spcube: %w", err)
	}
	ex, closeEx, err := cfg.newExecutor()
	if err != nil {
		return nil, fmt.Errorf("spcube: %w", err)
	}
	defer closeEx()
	engCfg.Executor = ex
	eng := mr.New(engCfg, dfs.New(false))
	spec := cube.Spec{Agg: cfg.aggFn, MinSup: cfg.minSup}

	var run *cube.Run
	switch cfg.alg {
	case AlgSPCube:
		run, err = spalgo.ComputeOpts(eng, rel.inner, spec, spalgo.Options{Seed: cfg.seed})
	case AlgNaive:
		run, err = naive.Compute(eng, rel.inner, spec)
	case AlgMRCube:
		run, err = mrcube.ComputeOpts(eng, rel.inner, spec, mrcube.Options{Seed: cfg.seed})
	case AlgHive:
		run, err = hivecube.Compute(eng, rel.inner, spec)
	case AlgPipesort:
		run, err = pipesort.Compute(eng, rel.inner, spec)
	default:
		return nil, fmt.Errorf("spcube: unknown algorithm %v", cfg.alg)
	}
	if err != nil {
		return nil, fmt.Errorf("spcube: %s failed: %w", cfg.alg, err)
	}

	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.NumDims())
	if err != nil {
		return nil, fmt.Errorf("spcube: collecting output: %w", err)
	}

	return &Cube{rel: rel, res: res, stats: statsFromRun(run), metrics: run.Metrics}, nil
}

// ComputeSet computes one cube per aggregate function over the same
// relation with SP-Cube, building the SP-Sketch only once (the sketch is a
// property of the relation, not of the aggregate — §4 of the paper). It is
// cheaper than calling Compute repeatedly and guarantees all cubes saw the
// same partitioning decisions. The Algorithm option is ignored; other
// options apply to every computation.
func ComputeSet(rel *Relation, aggs []Agg, opts ...Option) ([]*Cube, error) {
	cfg := config{workers: 8, aggFn: agg.Count, alg: AlgSPCube, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if rel == nil || rel.NumRows() == 0 {
		return nil, errors.New("spcube: empty relation")
	}
	if len(aggs) == 0 {
		return nil, errors.New("spcube: ComputeSet needs at least one aggregate")
	}
	engCfg, err := cfg.engineConfig()
	if err != nil {
		return nil, fmt.Errorf("spcube: %w", err)
	}
	ex, closeEx, err := cfg.newExecutor()
	if err != nil {
		return nil, fmt.Errorf("spcube: %w", err)
	}
	defer closeEx()
	engCfg.Executor = ex
	eng := mr.New(engCfg, dfs.New(false))
	specs := make([]cube.Spec, len(aggs))
	for i, a := range aggs {
		specs[i] = cube.Spec{Agg: a.f, MinSup: cfg.minSup}
	}
	runs, err := spalgo.ComputeMulti(eng, rel.inner, specs, spalgo.Options{Seed: cfg.seed})
	if err != nil {
		return nil, fmt.Errorf("spcube: %w", err)
	}
	cubes := make([]*Cube, len(runs))
	for i, run := range runs {
		res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.NumDims())
		if err != nil {
			return nil, fmt.Errorf("spcube: collecting output %d: %w", i, err)
		}
		cubes[i] = &Cube{rel: rel, res: res, stats: statsFromRun(run), metrics: run.Metrics}
	}
	return cubes, nil
}

// Stats returns the run's execution statistics.
func (c *Cube) Stats() Stats { return c.stats }

// MetricsJSON renders the run's full per-round metrics as the stable,
// versioned JSON document described by mr.MetricsSchemaVersion (indented,
// newline-terminated). Everything except the wall-clock fields is
// deterministic: identical at any Parallelism, and identical to a
// fault-free run except for the recovery-accounting fields.
func (c *Cube) MetricsJSON() ([]byte, error) {
	data, err := json.MarshalIndent(&c.metrics, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spcube: metrics: %w", err)
	}
	return append(data, '\n'), nil
}

// NumGroups returns the number of c-groups in the cube.
func (c *Cube) NumGroups() int { return c.res.Len() }

// Value looks up the aggregate of one c-group. Pass one value per
// dimension, with "*" for dimensions aggregated away; for example, with
// dimensions (name, city, year), Value("laptop", "*", "2012") returns the
// aggregate over all laptop rows of 2012.
func (c *Cube) Value(vals ...string) (float64, bool) {
	d := c.rel.NumDims()
	if len(vals) != d {
		return 0, false
	}
	var mask uint32
	dims := make([]relation.Value, d)
	for i, v := range vals {
		if v == "*" {
			continue
		}
		code, ok := c.code(i, v)
		if !ok {
			return 0, false
		}
		mask |= 1 << uint(i)
		dims[i] = code
	}
	return c.res.Lookup(lattice.Mask(mask), dims)
}

// ValueInts is Value for relations populated with AddRowInts; use
// StarInt for dimensions aggregated away.
func (c *Cube) ValueInts(vals ...int64) (float64, bool) {
	d := c.rel.NumDims()
	if len(vals) != d {
		return 0, false
	}
	var mask uint32
	dims := make([]relation.Value, d)
	for i, v := range vals {
		if v == StarInt {
			continue
		}
		mask |= 1 << uint(i)
		dims[i] = relation.Value(v)
	}
	return c.res.Lookup(lattice.Mask(mask), dims)
}

// StarInt marks an aggregated-away dimension in ValueInts.
const StarInt = int64(math.MinInt64)

func (c *Cube) code(col int, v string) (relation.Value, bool) {
	if c.rel.inner.Dict == nil {
		return 0, false
	}
	return c.rel.inner.Dict.Code(col, v)
}

// Cuboid returns the groups of the cuboid defined by the given dimension
// names (in schema order), sorted by their values. Unknown names are an
// error.
func (c *Cube) Cuboid(dimNames ...string) ([]Group, error) {
	d := c.rel.NumDims()
	names := c.rel.inner.Schema.DimNames
	var mask lattice.Mask
	for _, want := range dimNames {
		found := false
		for i, have := range names {
			if have == want {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("spcube: unknown dimension %q (have %v)", want, names)
		}
	}
	groups := c.res.Cuboid(mask)
	out := make([]Group, 0, len(groups))
	for _, g := range groups {
		dims := make([]string, d)
		j := 0
		for i := 0; i < d; i++ {
			if mask.Has(i) {
				dims[i] = c.rel.inner.DimString(i, g.Packed[j])
				j++
			} else {
				dims[i] = "*"
			}
		}
		out = append(out, Group{Dims: dims, Value: g.Value})
	}
	return out, nil
}

// Groups calls fn for every c-group in the cube, in an unspecified order.
func (c *Cube) Groups(fn func(g Group)) {
	d := c.rel.NumDims()
	keys := make([]string, 0, c.res.Len())
	for key := range c.res.Groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			continue
		}
		dims := make([]string, d)
		j := 0
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				dims[i] = c.rel.inner.DimString(i, packed[j])
				j++
			} else {
				dims[i] = "*"
			}
		}
		fn(Group{Dims: dims, Value: c.res.Groups[key]})
	}
}
