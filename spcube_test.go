package spcube

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func salesRelation() *Relation {
	rel := NewRelation([]string{"name", "city", "year"}, "sales")
	rel.AddRow([]string{"laptop", "Rome", "2012"}, 2000)
	rel.AddRow([]string{"laptop", "Paris", "2012"}, 1500)
	rel.AddRow([]string{"printer", "Rome", "2013"}, 300)
	rel.AddRow([]string{"laptop", "Rome", "2013"}, 900)
	rel.AddRow([]string{"keyboard", "Paris", "2012"}, 120)
	return rel
}

func TestComputeSum(t *testing.T) {
	c, err := Compute(salesRelation(), Aggregate(Sum), Workers(3), Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		vals []string
		want float64
	}{
		{[]string{"*", "*", "*"}, 4820},
		{[]string{"laptop", "*", "*"}, 4400},
		{[]string{"laptop", "*", "2012"}, 3500},
		{[]string{"*", "Rome", "*"}, 3200},
		{[]string{"laptop", "Rome", "2012"}, 2000},
		{[]string{"*", "*", "2013"}, 1200},
	}
	for _, tc := range cases {
		got, ok := c.Value(tc.vals...)
		if !ok || got != tc.want {
			t.Errorf("Value(%v) = %v,%v want %v", tc.vals, got, ok, tc.want)
		}
	}
	if _, ok := c.Value("tablet", "*", "*"); ok {
		t.Error("unknown value must not resolve")
	}
	if _, ok := c.Value("laptop", "*"); ok {
		t.Error("wrong arity must not resolve")
	}
	if c.NumGroups() == 0 || c.Stats().Rounds < 2 {
		t.Errorf("stats look wrong: %+v", c.Stats())
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := NewRelation([]string{"a", "b", "c"}, "m")
	for i := 0; i < 600; i++ {
		rel.AddRow([]string{
			fmt.Sprintf("a%d", rng.Intn(5)),
			fmt.Sprintf("b%d", rng.Intn(4)),
			fmt.Sprintf("c%d", rng.Intn(50)),
		}, int64(rng.Intn(100)))
	}
	var ref *Cube
	for _, alg := range []Alg{AlgSPCube, AlgNaive, AlgMRCube, AlgHive, AlgPipesort} {
		c, err := Compute(rel, Algorithm(alg), Aggregate(Avg), Workers(4), Seed(9))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if ref == nil {
			ref = c
			continue
		}
		if c.NumGroups() != ref.NumGroups() {
			t.Fatalf("%v: %d groups, want %d", alg, c.NumGroups(), ref.NumGroups())
		}
		mismatches := 0
		ref.Groups(func(g Group) {
			got, ok := c.Value(g.Dims...)
			if !ok || math.Abs(got-g.Value) > 1e-9*math.Max(1, math.Abs(g.Value)) {
				mismatches++
			}
		})
		if mismatches > 0 {
			t.Errorf("%v disagrees with sp-cube on %d groups", alg, mismatches)
		}
	}
}

func TestCuboid(t *testing.T) {
	c, err := Compute(salesRelation(), Aggregate(Count), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	byName, err := c.Cuboid("name")
	if err != nil {
		t.Fatal(err)
	}
	if len(byName) != 3 {
		t.Fatalf("name cuboid has %d groups", len(byName))
	}
	var total float64
	for _, g := range byName {
		if g.Dims[1] != "*" || g.Dims[2] != "*" {
			t.Errorf("unexpected dims %v", g.Dims)
		}
		total += g.Value
	}
	if total != 5 {
		t.Errorf("counts sum to %v, want 5", total)
	}
	apex, err := c.Cuboid()
	if err != nil || len(apex) != 1 || apex[0].Value != 5 {
		t.Errorf("apex cuboid: %v %v", apex, err)
	}
	if _, err := c.Cuboid("bogus"); err == nil {
		t.Error("unknown dimension must fail")
	}
}

func TestGroupsVisitsEverything(t *testing.T) {
	c, err := Compute(salesRelation(), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	c.Groups(func(g Group) {
		count++
		if len(g.Dims) != 3 {
			t.Errorf("group dims %v", g.Dims)
		}
	})
	if count != c.NumGroups() {
		t.Errorf("visited %d of %d groups", count, c.NumGroups())
	}
}

func TestIntRelation(t *testing.T) {
	rel := NewRelation([]string{"x", "y"}, "m")
	rel.AddRowInts([]int32{1, 10}, 5)
	rel.AddRowInts([]int32{1, 20}, 7)
	rel.AddRowInts([]int32{2, 10}, 1)
	c, err := Compute(rel, Aggregate(Sum), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.ValueInts(1, StarInt); !ok || v != 12 {
		t.Errorf("ValueInts(1,*) = %v,%v", v, ok)
	}
	if v, ok := c.ValueInts(StarInt, StarInt); !ok || v != 13 {
		t.Errorf("apex = %v,%v", v, ok)
	}
	if _, ok := c.ValueInts(1); ok {
		t.Error("wrong arity must not resolve")
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil); err == nil {
		t.Error("nil relation must fail")
	}
	empty := NewRelation([]string{"a"}, "m")
	if _, err := Compute(empty); err == nil {
		t.Error("empty relation must fail")
	}
	r := salesRelation()
	if _, err := Compute(r, Workers(0)); err == nil {
		t.Error("zero workers must fail")
	}
}

func TestNamesResolve(t *testing.T) {
	for _, name := range []string{"count", "sum", "min", "max", "avg"} {
		a, err := AggByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("AggByName(%s): %v %v", name, a.Name(), err)
		}
	}
	if _, err := AggByName("median"); err == nil {
		t.Error("unknown aggregate must fail")
	}
	for _, name := range []string{"sp-cube", "naive", "mr-cube", "hive", "pig", "pipesort"} {
		if _, err := AlgByName(name); err != nil {
			t.Errorf("AlgByName(%s): %v", name, err)
		}
	}
	if _, err := AlgByName("spark"); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if AlgSPCube.String() != "sp-cube" || Alg(99).String() == "" {
		t.Error("Alg.String broken")
	}
}

func TestSkewStats(t *testing.T) {
	rel := NewRelation([]string{"a", "b"}, "m")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			rel.AddRow([]string{"hot", "hot"}, 1)
		} else {
			rel.AddRow([]string{fmt.Sprintf("x%d", rng.Intn(1<<20)), fmt.Sprintf("y%d", rng.Intn(1<<20))}, 1)
		}
	}
	c, err := Compute(rel, Workers(8), Seed(4))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SkewedGroups == 0 {
		t.Error("heavy skew must be detected in the sketch")
	}
	if st.SketchBytes == 0 || st.SampleTuples == 0 {
		t.Errorf("sketch stats missing: %+v", st)
	}
	if v, ok := c.Value("hot", "hot"); !ok || v != 2000 {
		t.Errorf("hot group count = %v,%v", v, ok)
	}
}

func TestMinSupport(t *testing.T) {
	rel := NewRelation([]string{"a", "b"}, "m")
	for i := 0; i < 30; i++ {
		rel.AddRow([]string{"x", "y"}, 1) // one group with 30 rows
	}
	rel.AddRow([]string{"rare", "y"}, 1)
	c, err := Compute(rel, MinSupport(5), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Value("x", "y"); !ok {
		t.Error("frequent group missing")
	}
	if _, ok := c.Value("rare", "y"); ok {
		t.Error("rare group should be filtered by min support")
	}
	if v, ok := c.Value("*", "y"); !ok || v != 31 {
		t.Errorf("(*,y) = %v,%v want 31", v, ok)
	}
	full, err := Compute(rel, Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGroups() >= full.NumGroups() {
		t.Errorf("iceberg cube (%d) not smaller than full cube (%d)", c.NumGroups(), full.NumGroups())
	}
}

func TestComputeSet(t *testing.T) {
	rel := salesRelation()
	cubes, err := ComputeSet(rel, []Agg{Count, Sum, Avg}, Workers(3), Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 3 {
		t.Fatalf("got %d cubes", len(cubes))
	}
	cnt, _ := cubes[0].Value("laptop", "*", "*")
	sum, _ := cubes[1].Value("laptop", "*", "*")
	avg, _ := cubes[2].Value("laptop", "*", "*")
	if cnt != 3 || sum != 4400 || avg != sum/cnt {
		t.Errorf("count=%v sum=%v avg=%v", cnt, sum, avg)
	}
	// The sketch round must be charged once: the first run has one more
	// round than the others.
	if cubes[0].Stats().Rounds != 2 || cubes[1].Stats().Rounds != 1 {
		t.Errorf("rounds: %d then %d", cubes[0].Stats().Rounds, cubes[1].Stats().Rounds)
	}
	if _, err := ComputeSet(rel, nil); err == nil {
		t.Error("no aggregates must fail")
	}
	if _, err := ComputeSet(nil, []Agg{Count}); err == nil {
		t.Error("nil relation must fail")
	}
}

func TestDistinctViaFacade(t *testing.T) {
	rel := NewRelation([]string{"a"}, "m")
	rel.AddRow([]string{"x"}, 1)
	rel.AddRow([]string{"x"}, 2)
	rel.AddRow([]string{"x"}, 2)
	rel.AddRow([]string{"y"}, 7)
	c, err := Compute(rel, Aggregate(Distinct), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Value("x"); !ok || v != 2 {
		t.Errorf("distinct(x) = %v,%v want 2", v, ok)
	}
	if v, ok := c.Value("*"); !ok || v != 3 {
		t.Errorf("distinct(*) = %v,%v want 3", v, ok)
	}
}
