module github.com/spcube/spcube

go 1.22
