// Package agg provides the aggregate-function framework for cube
// computation.
//
// Following the classification of Gray et al. adopted by the paper (§7),
// functions are distributive (count, sum, min, max), algebraic (avg — a
// bounded-size partial state combines into the final answer), or holistic.
// SP-Cube supports all distributive and algebraic functions because skewed
// c-groups are partially aggregated in the mappers and the partial states
// are merged by the skew reducer; the framework therefore revolves around a
// serializable, mergeable partial State.
package agg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// State is a mergeable, serializable partial aggregate.
type State interface {
	// Add folds one tuple's measure value into the state.
	Add(measure int64)
	// Merge folds another partial state of the same function into this one.
	Merge(other State)
	// Final returns the aggregate value represented by the state.
	Final() float64
	// AppendEncode serializes the state, appending to buf.
	AppendEncode(buf []byte) []byte
}

// Func is an aggregate function: a factory of partial states plus decoding.
type Func interface {
	Name() string
	NewState() State
	// DecodeState parses a state serialized by State.AppendEncode.
	DecodeState(b []byte) (State, error)
	// Kind reports the Gray et al. classification of the function.
	Kind() Kind
}

// Kind classifies aggregate functions.
type Kind int

const (
	// Distributive functions merge by combining single partial values
	// (count, sum, min, max).
	Distributive Kind = iota
	// Algebraic functions merge via a bounded-size partial state (avg).
	Algebraic
	// Holistic functions cannot in general be computed from partial
	// aggregates; SP-Cube supports only the partially-algebraic subset.
	Holistic
)

func (k Kind) String() string {
	switch k {
	case Distributive:
		return "distributive"
	case Algebraic:
		return "algebraic"
	case Holistic:
		return "holistic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ByName returns the built-in aggregate function with the given name.
func ByName(name string) (Func, error) {
	switch name {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "avg":
		return Avg, nil
	case "distinct":
		return Distinct, nil
	case "var":
		return Var, nil
	case "stddev":
		return Stddev, nil
	}
	return nil, fmt.Errorf("agg: unknown aggregate function %q (want count, sum, min, max, avg, var, stddev, distinct)", name)
}

// Built-in aggregate functions. The paper's experiments use count; the
// running example uses sum.
var (
	Count Func = countFunc{}
	Sum   Func = sumFunc{}
	Min   Func = minFunc{}
	Max   Func = maxFunc{}
	Avg   Func = avgFunc{}
)

// ---- count ----

type countFunc struct{}

func (countFunc) Name() string    { return "count" }
func (countFunc) Kind() Kind      { return Distributive }
func (countFunc) NewState() State { return new(countState) }
func (countFunc) DecodeState(b []byte) (State, error) {
	v, err := decodeOneVarint(b, "count")
	if err != nil {
		return nil, err
	}
	s := countState(v)
	return &s, nil
}

type countState int64

func (s *countState) Add(int64)      { *s++ }
func (s *countState) Merge(o State)  { *s += *o.(*countState) }
func (s *countState) Final() float64 { return float64(*s) }
func (s *countState) AppendEncode(buf []byte) []byte {
	return binary.AppendVarint(buf, int64(*s))
}

// ---- sum ----

type sumFunc struct{}

func (sumFunc) Name() string    { return "sum" }
func (sumFunc) Kind() Kind      { return Distributive }
func (sumFunc) NewState() State { return new(sumState) }
func (sumFunc) DecodeState(b []byte) (State, error) {
	v, err := decodeOneVarint(b, "sum")
	if err != nil {
		return nil, err
	}
	s := sumState(v)
	return &s, nil
}

type sumState int64

func (s *sumState) Add(m int64)    { *s += sumState(m) }
func (s *sumState) Merge(o State)  { *s += *o.(*sumState) }
func (s *sumState) Final() float64 { return float64(*s) }
func (s *sumState) AppendEncode(buf []byte) []byte {
	return binary.AppendVarint(buf, int64(*s))
}

// ---- min / max ----

type minFunc struct{}

func (minFunc) Name() string                        { return "min" }
func (minFunc) Kind() Kind                          { return Distributive }
func (minFunc) NewState() State                     { return &extremeState{min: true, empty: true} }
func (minFunc) DecodeState(b []byte) (State, error) { return decodeExtreme(b, true) }

type maxFunc struct{}

func (maxFunc) Name() string                        { return "max" }
func (maxFunc) Kind() Kind                          { return Distributive }
func (maxFunc) NewState() State                     { return &extremeState{min: false, empty: true} }
func (maxFunc) DecodeState(b []byte) (State, error) { return decodeExtreme(b, false) }

type extremeState struct {
	val   int64
	min   bool
	empty bool
}

func (s *extremeState) Add(m int64) {
	if s.empty || (s.min && m < s.val) || (!s.min && m > s.val) {
		s.val = m
		s.empty = false
	}
}

func (s *extremeState) Merge(o State) {
	os := o.(*extremeState)
	if os.empty {
		return
	}
	s.Add(os.val)
}

func (s *extremeState) Final() float64 {
	if s.empty {
		return math.NaN()
	}
	return float64(s.val)
}

func (s *extremeState) AppendEncode(buf []byte) []byte {
	if s.empty {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return binary.AppendVarint(buf, s.val)
}

func decodeExtreme(b []byte, min bool) (State, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("agg: empty extreme state")
	}
	s := &extremeState{min: min, empty: b[0] == 0}
	if !s.empty {
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return nil, fmt.Errorf("agg: truncated extreme state")
		}
		s.val = v
	}
	return s, nil
}

// ---- avg ----

type avgFunc struct{}

func (avgFunc) Name() string    { return "avg" }
func (avgFunc) Kind() Kind      { return Algebraic }
func (avgFunc) NewState() State { return new(avgState) }
func (avgFunc) DecodeState(b []byte) (State, error) {
	sum, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated avg state")
	}
	cnt, n2 := binary.Varint(b[n:])
	if n2 <= 0 {
		return nil, fmt.Errorf("agg: truncated avg state count")
	}
	return &avgState{sum: sum, cnt: cnt}, nil
}

// avgState is the canonical algebraic partial state: the skew reducer sums
// the mappers' partial sums and counts, then divides (§5.1).
type avgState struct {
	sum int64
	cnt int64
}

func (s *avgState) Add(m int64) { s.sum += m; s.cnt++ }
func (s *avgState) Merge(o State) {
	os := o.(*avgState)
	s.sum += os.sum
	s.cnt += os.cnt
}

func (s *avgState) Final() float64 {
	if s.cnt == 0 {
		return math.NaN()
	}
	return float64(s.sum) / float64(s.cnt)
}

func (s *avgState) AppendEncode(buf []byte) []byte {
	buf = binary.AppendVarint(buf, s.sum)
	return binary.AppendVarint(buf, s.cnt)
}

func decodeOneVarint(b []byte, what string) (int64, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, fmt.Errorf("agg: truncated %s state", what)
	}
	return v, nil
}
