package agg

import (
	"math"
	"testing"
	"testing/quick"
)

var allFuncs = []Func{Count, Sum, Min, Max, Avg, Var, Stddev}

func TestByName(t *testing.T) {
	for _, f := range allFuncs {
		got, err := ByName(f.Name())
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if got.Name() != f.Name() {
			t.Errorf("ByName(%s) = %s", f.Name(), got.Name())
		}
	}
	if _, err := ByName("median"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestKinds(t *testing.T) {
	for _, f := range []Func{Count, Sum, Min, Max} {
		if f.Kind() != Distributive {
			t.Errorf("%s should be distributive", f.Name())
		}
	}
	if Avg.Kind() != Algebraic {
		t.Error("avg should be algebraic")
	}
	if Distributive.String() != "distributive" || Algebraic.String() != "algebraic" ||
		Holistic.String() != "holistic" || Kind(42).String() != "Kind(42)" {
		t.Error("Kind.String broken")
	}
}

// reference computes the expected final value directly.
func reference(name string, vals []int64) float64 {
	if len(vals) == 0 {
		if name == "count" {
			return 0
		}
		if name == "sum" {
			return 0
		}
		return math.NaN()
	}
	var sum, mn, mx int64
	mn, mx = vals[0], vals[0]
	for _, v := range vals {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := float64(sum) / float64(len(vals))
	variance := 0.0
	for _, v := range vals {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= float64(len(vals))
	switch name {
	case "count":
		return float64(len(vals))
	case "sum":
		return float64(sum)
	case "min":
		return float64(mn)
	case "max":
		return float64(mx)
	case "avg":
		return mean
	case "var":
		return variance
	case "stddev":
		return math.Sqrt(variance)
	}
	panic(name)
}

func eq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	// var/stddev lose precision through the sum-of-squares formulation.
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDirectAggregation(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		for _, fn := range allFuncs {
			st := fn.NewState()
			for _, v := range vals {
				st.Add(v)
			}
			if !eq(st.Final(), reference(fn.Name(), vals)) {
				t.Logf("%s: got %v want %v over %v", fn.Name(), st.Final(), reference(fn.Name(), vals), vals)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergeEquivalentToDirect is the key distributive/algebraic property:
// splitting the input arbitrarily, aggregating the parts, and merging the
// partial states must give the same result as direct aggregation. This is
// exactly what SP-Cube relies on when mappers pre-aggregate skewed groups.
func TestMergeEquivalentToDirect(t *testing.T) {
	f := func(raw []int16, cutSeed uint8) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		cut := 0
		if len(vals) > 0 {
			cut = int(cutSeed) % (len(vals) + 1)
		}
		for _, fn := range allFuncs {
			a, b := fn.NewState(), fn.NewState()
			for _, v := range vals[:cut] {
				a.Add(v)
			}
			for _, v := range vals[cut:] {
				b.Add(v)
			}
			a.Merge(b)
			if !eq(a.Final(), reference(fn.Name(), vals)) {
				t.Logf("%s: merged %v want %v (cut=%d, vals=%v)", fn.Name(), a.Final(), reference(fn.Name(), vals), cut, vals)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStateSerializationRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		for _, fn := range allFuncs {
			st := fn.NewState()
			for _, v := range raw {
				st.Add(int64(v))
			}
			dec, err := fn.DecodeState(st.AppendEncode(nil))
			if err != nil {
				t.Logf("%s: decode: %v", fn.Name(), err)
				return false
			}
			if !eq(dec.Final(), st.Final()) {
				t.Logf("%s: %v != %v", fn.Name(), dec.Final(), st.Final())
				return false
			}
			// The decoded state must stay mergeable.
			other := fn.NewState()
			other.Add(7)
			dec.Merge(other)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeStateErrors(t *testing.T) {
	for _, fn := range allFuncs {
		if _, err := fn.DecodeState(nil); err == nil {
			t.Errorf("%s: empty state must fail", fn.Name())
		}
	}
	if _, err := Min.DecodeState([]byte{1}); err == nil {
		t.Error("min: truncated payload must fail")
	}
	if _, err := Avg.DecodeState([]byte{2}); err == nil {
		t.Error("avg: missing count must fail")
	}
}

func TestEmptyStates(t *testing.T) {
	if Count.NewState().Final() != 0 {
		t.Error("empty count must be 0")
	}
	if Sum.NewState().Final() != 0 {
		t.Error("empty sum must be 0")
	}
	for _, fn := range []Func{Min, Max, Avg, Var, Stddev} {
		if !math.IsNaN(fn.NewState().Final()) {
			t.Errorf("empty %s must be NaN", fn.Name())
		}
	}
	// Merging an empty extreme state must not clobber a non-empty one.
	st := Max.NewState()
	st.Add(5)
	st.Merge(Max.NewState())
	if st.Final() != 5 {
		t.Error("merging empty max changed the value")
	}
}
