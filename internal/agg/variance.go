package agg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Var and Stddev are algebraic functions (population variance / standard
// deviation): like avg, a constant-size partial state — (count, sum, sum of
// squares) — merges exactly, so SP-Cube's mapper-side pre-aggregation of
// skewed c-groups applies to them unchanged.
var (
	Var    Func = momentsFunc{stddev: false}
	Stddev Func = momentsFunc{stddev: true}
)

type momentsFunc struct {
	stddev bool
}

func (f momentsFunc) Name() string {
	if f.stddev {
		return "stddev"
	}
	return "var"
}

func (momentsFunc) Kind() Kind { return Algebraic }

func (f momentsFunc) NewState() State { return &momentsState{stddev: f.stddev} }

func (f momentsFunc) DecodeState(b []byte) (State, error) {
	st := &momentsState{stddev: f.stddev}
	var n int
	st.cnt, n = binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state count", f.Name())
	}
	b = b[n:]
	st.sum, n = binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state sum", f.Name())
	}
	b = b[n:]
	bits, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state sumsq", f.Name())
	}
	st.sumsq = math.Float64frombits(bits)
	return st, nil
}

// momentsState accumulates the first two moments. The sum of squares is a
// float64 because int64 overflows at ~3M tuples of measure 10^6.
type momentsState struct {
	cnt    int64
	sum    int64
	sumsq  float64
	stddev bool
}

func (s *momentsState) Add(m int64) {
	s.cnt++
	s.sum += m
	s.sumsq += float64(m) * float64(m)
}

func (s *momentsState) Merge(o State) {
	os := o.(*momentsState)
	s.cnt += os.cnt
	s.sum += os.sum
	s.sumsq += os.sumsq
}

func (s *momentsState) Final() float64 {
	if s.cnt == 0 {
		return math.NaN()
	}
	mean := float64(s.sum) / float64(s.cnt)
	v := s.sumsq/float64(s.cnt) - mean*mean
	if v < 0 {
		v = 0 // floating-point guard
	}
	if s.stddev {
		return math.Sqrt(v)
	}
	return v
}

func (s *momentsState) AppendEncode(buf []byte) []byte {
	buf = binary.AppendVarint(buf, s.cnt)
	buf = binary.AppendVarint(buf, s.sum)
	return binary.AppendUvarint(buf, math.Float64bits(s.sumsq))
}
