package agg

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Var and Stddev are algebraic functions (population variance / standard
// deviation): like avg, a constant-size partial state — (count, sum, sum of
// squares) — merges exactly, so SP-Cube's mapper-side pre-aggregation of
// skewed c-groups applies to them unchanged.
var (
	Var    Func = momentsFunc{stddev: false}
	Stddev Func = momentsFunc{stddev: true}
)

type momentsFunc struct {
	stddev bool
}

func (f momentsFunc) Name() string {
	if f.stddev {
		return "stddev"
	}
	return "var"
}

func (momentsFunc) Kind() Kind { return Algebraic }

func (f momentsFunc) NewState() State { return &momentsState{stddev: f.stddev} }

func (f momentsFunc) DecodeState(b []byte) (State, error) {
	st := &momentsState{stddev: f.stddev}
	var n int
	st.cnt, n = binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state count", f.Name())
	}
	b = b[n:]
	st.sum, n = binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state sum", f.Name())
	}
	b = b[n:]
	st.sqHi, n = binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state sumsq hi", f.Name())
	}
	b = b[n:]
	st.sqLo, n = binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated %s state sumsq lo", f.Name())
	}
	return st, nil
}

// momentsState accumulates the first two moments. The sum of squares is an
// unsigned 128-bit integer (sqHi:sqLo): m² fits in a uint64 for any int64
// measure and the running total would overflow int64 at ~3M tuples of
// measure 10^6, while 2^128 holds >10^19 maximal squares. Integer modular
// addition is associative and commutative, so — unlike the float64
// accumulator it replaces — the state is byte-identical no matter how
// combiner runs regroup it (spill-induced per-chunk combining included),
// which the engine's cross-budget determinism contract depends on.
type momentsState struct {
	cnt    int64
	sum    int64
	sqHi   uint64
	sqLo   uint64
	stddev bool
}

func (s *momentsState) Add(m int64) {
	s.cnt++
	s.sum += m
	um := uint64(m)
	if m < 0 {
		um = -um // two's complement |m|; correct even for MinInt64
	}
	hi, lo := bits.Mul64(um, um)
	var carry uint64
	s.sqLo, carry = bits.Add64(s.sqLo, lo, 0)
	s.sqHi, _ = bits.Add64(s.sqHi, hi, carry)
}

func (s *momentsState) Merge(o State) {
	os := o.(*momentsState)
	s.cnt += os.cnt
	s.sum += os.sum
	var carry uint64
	s.sqLo, carry = bits.Add64(s.sqLo, os.sqLo, 0)
	s.sqHi, _ = bits.Add64(s.sqHi, os.sqHi, carry)
}

func (s *momentsState) Final() float64 {
	if s.cnt == 0 {
		return math.NaN()
	}
	mean := float64(s.sum) / float64(s.cnt)
	sumsq := float64(s.sqHi)*0x1p64 + float64(s.sqLo)
	v := sumsq/float64(s.cnt) - mean*mean
	if v < 0 {
		v = 0 // floating-point guard
	}
	if s.stddev {
		return math.Sqrt(v)
	}
	return v
}

func (s *momentsState) AppendEncode(buf []byte) []byte {
	buf = binary.AppendVarint(buf, s.cnt)
	buf = binary.AppendVarint(buf, s.sum)
	buf = binary.AppendUvarint(buf, s.sqHi)
	return binary.AppendUvarint(buf, s.sqLo)
}
