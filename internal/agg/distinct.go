package agg

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Distinct counts the distinct measure values of a group. It is a holistic
// function in the Gray et al. classification (§7 of the paper): no
// bounded-size partial state exists, so its states carry the full value set
// and their size grows with the group's distinct count. The states are
// nevertheless exactly mergeable (set union), which makes Distinct a useful
// worked example of the paper's discussion: SP-Cube computes it correctly,
// but the mapper-side partial states of skewed c-groups are no longer
// constant-size — the efficiency guarantees of §5.2 degrade exactly as the
// paper predicts for holistic measures.
var Distinct Func = distinctFunc{}

type distinctFunc struct{}

func (distinctFunc) Name() string    { return "distinct" }
func (distinctFunc) Kind() Kind      { return Holistic }
func (distinctFunc) NewState() State { return &distinctState{seen: make(map[int64]struct{})} }

func (distinctFunc) DecodeState(b []byte) (State, error) {
	n, c := binary.Uvarint(b)
	if c <= 0 {
		return nil, fmt.Errorf("agg: truncated distinct state")
	}
	b = b[c:]
	st := &distinctState{seen: make(map[int64]struct{}, n)}
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		delta, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, fmt.Errorf("agg: truncated distinct state at value %d of %d", i, n)
		}
		b = b[c:]
		prev += int64(delta)
		st.seen[prev] = struct{}{}
	}
	return st, nil
}

type distinctState struct {
	seen map[int64]struct{}
}

func (s *distinctState) Add(m int64) { s.seen[m] = struct{}{} }

func (s *distinctState) Merge(o State) {
	for v := range o.(*distinctState).seen {
		s.seen[v] = struct{}{}
	}
}

func (s *distinctState) Final() float64 { return float64(len(s.seen)) }

// AppendEncode writes the sorted value set delta-encoded. Sorting makes the
// encoding canonical (deterministic runs) and the deltas keep it compact.
func (s *distinctState) AppendEncode(buf []byte) []byte {
	vals := make([]int64, 0, len(s.seen))
	for v := range s.seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	prev := int64(0)
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, uint64(v-prev))
		prev = v
	}
	return buf
}
