package agg

// Incremental cube maintenance merges *final* aggregate values of the same
// c-group computed over disjoint tuple sets (a base cube and a delta cube),
// without access to the partial states that produced them. That is sound
// only for functions whose final value is itself a distributive aggregate:
// count and sum finals add, min and max finals combine by extreme. Deletes
// additionally need the merge to be invertible, which holds for count and
// sum but not min/max (removing the minimum reveals an unknown runner-up).
// Algebraic and holistic functions (avg, var, stddev, distinct) expose only
// a quotient or cardinality as their final and support neither; maintenance
// falls back to a full rebuild for them.

// FinalMerger returns a commutative, associative merge over final values of
// f for disjoint inputs, or ok=false when finals of f cannot be merged.
// Both arguments must come from non-empty groups.
func FinalMerger(f Func) (merge func(base, delta float64) float64, ok bool) {
	switch unwrapCounted(f).(type) {
	case countFunc, sumFunc:
		return func(base, delta float64) float64 { return base + delta }, true
	case minFunc:
		return func(base, delta float64) float64 {
			if delta < base {
				return delta
			}
			return base
		}, true
	case maxFunc:
		return func(base, delta float64) float64 {
			if delta > base {
				return delta
			}
			return base
		}, true
	}
	return nil, false
}

// FinalInverter returns the inverse of FinalMerger's merge — it removes a
// deleted part's final from a total — or ok=false when f's finals are not
// invertible (min/max) or not mergeable at all.
func FinalInverter(f Func) (invert func(total, part float64) float64, ok bool) {
	switch unwrapCounted(f).(type) {
	case countFunc, sumFunc:
		return func(total, part float64) float64 { return total - part }, true
	}
	return nil, false
}

// unwrapCounted strips a WithCount wrapper: the counted state's final is the
// inner function's final, so mergeability is the inner function's.
func unwrapCounted(f Func) Func {
	if cf, ok := f.(countedFunc); ok {
		return cf.inner
	}
	return f
}
