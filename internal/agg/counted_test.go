package agg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWithCountTracksCardinality(t *testing.T) {
	f := WithCount(Sum)
	st := f.NewState()
	for i := 0; i < 7; i++ {
		st.Add(int64(i))
	}
	if c, ok := Cardinality(st); !ok || c != 7 {
		t.Errorf("cardinality = %v,%v", c, ok)
	}
	if st.Final() != 21 {
		t.Errorf("inner sum = %v", st.Final())
	}
	other := f.NewState()
	other.Add(100)
	st.Merge(other)
	if c, _ := Cardinality(st); c != 8 {
		t.Errorf("merged cardinality = %v", c)
	}
	if st.Final() != 121 {
		t.Errorf("merged sum = %v", st.Final())
	}
}

func TestWithCountOnCountIsIdentity(t *testing.T) {
	f := WithCount(Count)
	if f.Name() != "count" {
		t.Errorf("WithCount(Count) should stay count, got %s", f.Name())
	}
	st := f.NewState()
	st.Add(1)
	st.Add(1)
	if c, ok := Cardinality(st); !ok || c != 2 {
		t.Errorf("count cardinality = %v,%v", c, ok)
	}
}

func TestWithCountSerialization(t *testing.T) {
	f := quickCheckRoundTrip(t, WithCount(Avg))
	_ = f
}

func quickCheckRoundTrip(t *testing.T, f Func) Func {
	t.Helper()
	check := func(raw []int16) bool {
		st := f.NewState()
		for _, v := range raw {
			st.Add(int64(v))
		}
		dec, err := f.DecodeState(st.AppendEncode(nil))
		if err != nil {
			return false
		}
		c1, ok1 := Cardinality(st)
		c2, ok2 := Cardinality(dec)
		if ok1 != ok2 || c1 != c2 {
			return false
		}
		return eq(dec.Final(), st.Final())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	return f
}

func TestCardinalityUnavailable(t *testing.T) {
	st := Sum.NewState()
	st.Add(1)
	if _, ok := Cardinality(st); ok {
		t.Error("plain sum must not report cardinality")
	}
}

func TestDistinctBasics(t *testing.T) {
	st := Distinct.NewState()
	for _, v := range []int64{5, 3, 5, -2, 3, 5} {
		st.Add(v)
	}
	if st.Final() != 3 {
		t.Errorf("distinct = %v, want 3", st.Final())
	}
	other := Distinct.NewState()
	other.Add(-2)
	other.Add(99)
	st.Merge(other)
	if st.Final() != 4 {
		t.Errorf("merged distinct = %v, want 4", st.Final())
	}
	if Distinct.Kind() != Holistic {
		t.Error("distinct must be classified holistic")
	}
}

func TestDistinctSerializationRoundTrip(t *testing.T) {
	check := func(raw []int32) bool {
		st := Distinct.NewState()
		for _, v := range raw {
			st.Add(int64(v))
		}
		enc := st.AppendEncode(nil)
		dec, err := Distinct.DecodeState(enc)
		if err != nil {
			return false
		}
		if dec.Final() != st.Final() {
			return false
		}
		// Canonical encoding: re-encoding the decoded state is identical.
		enc2 := dec.AppendEncode(nil)
		return string(enc) == string(enc2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctMergeEquivalentToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20) - 10)
		}
		direct := Distinct.NewState()
		parts := []State{Distinct.NewState(), Distinct.NewState(), Distinct.NewState()}
		for i, v := range vals {
			direct.Add(v)
			parts[i%3].Add(v)
		}
		merged := parts[0]
		merged.Merge(parts[1])
		merged.Merge(parts[2])
		if merged.Final() != direct.Final() {
			t.Fatalf("merge %v != direct %v", merged.Final(), direct.Final())
		}
	}
}

func TestDistinctDecodeErrors(t *testing.T) {
	if _, err := Distinct.DecodeState(nil); err == nil {
		t.Error("empty distinct state must fail")
	}
	// Claims 3 values but provides none.
	if _, err := Distinct.DecodeState([]byte{3}); err == nil {
		t.Error("truncated distinct state must fail")
	}
}

func TestDistinctByName(t *testing.T) {
	f, err := ByName("distinct")
	if err != nil || f.Name() != "distinct" {
		t.Fatalf("ByName(distinct): %v %v", f, err)
	}
}
