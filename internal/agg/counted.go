package agg

import (
	"encoding/binary"
	"fmt"
)

// WithCount wraps an aggregate function so that every state also tracks the
// group's cardinality. Iceberg cube computation (emit only groups with at
// least minSup tuples) needs cardinalities even when the requested function
// is not count; algorithms wrap the spec's function with WithCount and
// consult Cardinality at emission time.
func WithCount(f Func) Func {
	if f.Name() == "count" {
		// count already is its own cardinality.
		return f
	}
	return countedFunc{inner: f}
}

// Cardinality returns the number of tuples folded into the state, for
// states produced by WithCount or by Count itself.
func Cardinality(s State) (int64, bool) {
	switch st := s.(type) {
	case *countState:
		return int64(*st), true
	case *countedState:
		return st.cnt, true
	}
	return 0, false
}

type countedFunc struct {
	inner Func
}

func (f countedFunc) Name() string { return f.inner.Name() + "+count" }
func (f countedFunc) Kind() Kind   { return f.inner.Kind() }
func (f countedFunc) NewState() State {
	return &countedState{inner: f.inner.NewState()}
}

func (f countedFunc) DecodeState(b []byte) (State, error) {
	cnt, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("agg: truncated counted state")
	}
	inner, err := f.inner.DecodeState(b[n:])
	if err != nil {
		return nil, err
	}
	return &countedState{cnt: cnt, inner: inner}, nil
}

type countedState struct {
	cnt   int64
	inner State
}

func (s *countedState) Add(m int64) {
	s.cnt++
	s.inner.Add(m)
}

func (s *countedState) Merge(o State) {
	os := o.(*countedState)
	s.cnt += os.cnt
	s.inner.Merge(os.inner)
}

func (s *countedState) Final() float64 { return s.inner.Final() }

func (s *countedState) AppendEncode(buf []byte) []byte {
	buf = binary.AppendVarint(buf, s.cnt)
	return s.inner.AppendEncode(buf)
}
