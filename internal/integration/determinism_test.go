package integration

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// zeroWall strips the real wall-clock fields — the only quantities the
// determinism guarantee excludes — so the rest of the metrics can be
// compared with DeepEqual. SpillWriteStallNs and the prefetch hit/miss
// counters are wall-clock in disguise (they measure races between real
// goroutines) and are stripped with it.
func zeroWall(m mr.JobMetrics) mr.JobMetrics {
	out := mr.JobMetrics{Rounds: append([]mr.RoundMetrics(nil), m.Rounds...)}
	for i := range out.Rounds {
		r := &out.Rounds[i]
		r.WallSeconds = 0
		r.SpillWriteStallNs, r.PrefetchHits, r.PrefetchMisses = 0, 0, 0
		// Execution-backend health counters: volatile under the proc
		// backend (real crash recovery does not replay identically).
		r.HeartbeatMisses, r.WorkerRestarts, r.RPCRetries = 0, 0, 0
		r.Mappers = append([]mr.TaskMetrics(nil), r.Mappers...)
		r.Reducers = append([]mr.TaskMetrics(nil), r.Reducers...)
		for j := range r.Mappers {
			r.Mappers[j].WallSeconds = 0
			r.Mappers[j].SpillWriteStallNs, r.Mappers[j].PrefetchHits, r.Mappers[j].PrefetchMisses = 0, 0, 0
		}
		for j := range r.Reducers {
			r.Reducers[j].WallSeconds = 0
			r.Reducers[j].SpillWriteStallNs, r.Reducers[j].PrefetchHits, r.Reducers[j].PrefetchMisses = 0, 0, 0
		}
	}
	return out
}

type detRun struct {
	res      *cube.Result
	metrics  mr.JobMetrics
	sim      float64
	checksum uint64
	records  int64
}

func runDeterminism(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int, faults string, slack, timeout float64) detRun {
	return runDeterminismSpill(t, fn, rel, parallelism, faults, slack, timeout, spillLeg{}, "")
}

// spillLeg is one out-of-core configuration of the determinism table:
// a spill budget plus the pipeline knobs layered on it (block codec,
// merge fan-in cap).
type spillLeg struct {
	budget int64
	codec  string
	fanIn  int
}

func (l spillLeg) String() string {
	return fmt.Sprintf("budget=%d/codec=%s/fanin=%d", l.budget, l.codec, l.fanIn)
}

// runDeterminismSpill is runDeterminism with the out-of-core shuffle
// configured: budget 0 keeps everything in memory, any positive budget
// spills map output to run files under dir, framed through leg.codec and
// merged under leg.fanIn.
func runDeterminismSpill(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int, faults string, slack, timeout float64, leg spillLeg, dir string) detRun {
	t.Helper()
	plan, err := mr.ParseFaultPlan(faults)
	if err != nil {
		t.Fatal(err)
	}
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism, Faults: plan,
		SpeculativeSlack: slack, TaskTimeout: timeout,
		SpillBudgetBytes: leg.budget, SpillDir: dir,
		SpillCodec: leg.codec, MergeFanIn: leg.fanIn}, dfs.New(false))
	run, err := fn(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		t.Fatal(err)
	}
	return detRun{
		res:      res,
		metrics:  zeroRetryWall(zeroWall(run.Metrics)),
		sim:      run.Metrics.SimSeconds(),
		checksum: eng.FS.TotalChecksum(run.OutputPrefix),
		records:  eng.FS.TotalRecords(run.OutputPrefix),
	}
}

// zeroRetryWall strips RetryWallSeconds and SpeculativeWallSeconds — like
// WallSeconds they are real elapsed time and excluded from the determinism
// contract. Attempts, WastedBytes and the re-execution/speculation counters
// stay: fault injection, placement and the speculation winner rule are all
// deterministic, so they must agree across parallelism levels.
func zeroRetryWall(m mr.JobMetrics) mr.JobMetrics {
	for i := range m.Rounds {
		r := &m.Rounds[i]
		r.RetryWallSeconds, r.SpeculativeWallSeconds = 0, 0
		for j := range r.Mappers {
			r.Mappers[j].RetryWallSeconds, r.Mappers[j].SpeculativeWallSeconds = 0, 0
		}
		for j := range r.Reducers {
			r.Reducers[j].RetryWallSeconds, r.Reducers[j].SpeculativeWallSeconds = 0, 0
		}
	}
	return m
}

// TestParallelismDeterminism is the cross-algorithm determinism table: every
// algorithm, on a skewed and a uniform workload, clean and under an injected
// fault plan, must produce bit-for-bit identical cube output, identical
// round metrics, and identical simulated seconds at parallelism 1 and
// parallelism 8 — and a faulted run's output and accounting (minus the
// recovery counters) must equal the clean run's.
func TestParallelismDeterminism(t *testing.T) {
	detWorkloads := []struct {
		name string
		rel  *relation.Relation
	}{
		{"skewed", data.GenBinomial(800, 4, 0.4, 31)},
		{"uniform", data.Uniform(800, 3, 9, 32)},
	}
	faultPlans := []struct {
		name    string
		spec    string
		slack   float64
		timeout float64
	}{
		{"clean", "", 0, 0},
		{"crash", "*:map:*:crash,*:reduce:*:mid-emit@4", 0, 0},
		{"node-crash", "*:node:1:node-crash", 0, 0},
		{"speculate", "*:map:*:slow@2,*:reduce:2:slow@2", 0.0005, 0},
		{"timeout", "*:reduce:*:slow@2", 0, 0.0005},
	}
	for _, w := range detWorkloads {
		for _, fp := range faultPlans {
			for _, a := range allAlgorithms {
				t.Run(w.name+"/"+fp.name+"/"+a.name, func(t *testing.T) {
					seq := runDeterminism(t, a.fn, w.rel, 1, fp.spec, fp.slack, fp.timeout)
					par := runDeterminism(t, a.fn, w.rel, 8, fp.spec, fp.slack, fp.timeout)
					if ok, diff := seq.res.Equal(par.res); !ok {
						t.Errorf("cube output differs: %s", diff)
					}
					if seq.checksum != par.checksum || seq.records != par.records {
						t.Errorf("DFS output differs: checksum %x/%d records vs %x/%d records",
							seq.checksum, seq.records, par.checksum, par.records)
					}
					if seq.sim != par.sim {
						t.Errorf("simulated seconds differ: %v vs %v", seq.sim, par.sim)
					}
					if !reflect.DeepEqual(seq.metrics, par.metrics) {
						t.Errorf("round metrics differ:\nsequential: %+v\nparallel:   %+v",
							seq.metrics, par.metrics)
					}
					if fp.spec != "" {
						// The faulted run must recover to the clean run's
						// exact output and accounting.
						clean := runDeterminism(t, a.fn, w.rel, 1, "", 0, 0)
						if ok, diff := clean.res.Equal(seq.res); !ok {
							t.Errorf("faulted output differs from clean: %s", diff)
						}
						if clean.checksum != seq.checksum || clean.records != seq.records {
							t.Errorf("faulted DFS output differs from clean: checksum %x/%d vs %x/%d",
								clean.checksum, clean.records, seq.checksum, seq.records)
						}
						if clean.sim != seq.sim {
							t.Errorf("faulted simulated seconds differ from clean: %v vs %v", clean.sim, seq.sim)
						}
						if !reflect.DeepEqual(zeroRecovery(clean.metrics), zeroRecovery(seq.metrics)) {
							t.Errorf("faulted metrics (recovery-stripped) differ from clean")
						}
					}
				})
			}
		}
	}
}

// filesUnder returns every file under dir, recursively — the leak probe for
// spill run files.
func filesUnder(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if path != dir {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpillDeterminism extends the determinism table with out-of-core legs:
// at every spill configuration — including a one-byte budget, which flushes
// a run file per emitted record, the lz block codec, and a fan-in cap of 2,
// which forces multi-pass intermediate merges — every algorithm must
// produce the cube output and DFS bytes of the all-in-memory run, stay
// parallelism-deterministic in full (metrics included, at a fixed
// configuration), survive the fault plans, and leak no run files.
func TestSpillDeterminism(t *testing.T) {
	detWorkloads := []struct {
		name string
		rel  *relation.Relation
	}{
		{"skewed", data.GenBinomial(800, 4, 0.4, 31)},
		{"uniform", data.Uniform(800, 3, 9, 32)},
	}
	faultPlans := []struct {
		name string
		spec string
	}{
		{"clean", ""},
		{"crash", "*:map:*:crash,*:reduce:*:mid-emit@4"},
		{"node-crash", "*:node:1:node-crash"},
	}
	legs := []spillLeg{
		{budget: 1}, {budget: 512},
		{budget: 512, codec: "lz", fanIn: 2},
	}
	for _, w := range detWorkloads {
		for _, fp := range faultPlans {
			for _, a := range allAlgorithms {
				t.Run(w.name+"/"+fp.name+"/"+a.name, func(t *testing.T) {
					mem := runDeterminism(t, a.fn, w.rel, 1, "", 0, 0)
					for _, leg := range legs {
						dir := t.TempDir()
						seq := runDeterminismSpill(t, a.fn, w.rel, 1, fp.spec, 0, 0, leg, dir)
						par := runDeterminismSpill(t, a.fn, w.rel, 8, fp.spec, 0, 0, leg, dir)
						// Cross-configuration: output and DFS bytes equal the
						// in-memory clean run's (metrics legitimately differ
						// in spill counters and simulated I/O cost).
						if ok, diff := mem.res.Equal(seq.res); !ok {
							t.Errorf("%s: cube output differs from in-memory run: %s", leg, diff)
						}
						if mem.checksum != seq.checksum || mem.records != seq.records {
							t.Errorf("%s: DFS output differs from in-memory run: %x/%d vs %x/%d",
								leg, seq.checksum, seq.records, mem.checksum, mem.records)
						}
						// Fixed configuration: the full parallelism-determinism
						// contract holds, metrics and simulated time included.
						if seq.checksum != par.checksum || seq.records != par.records {
							t.Errorf("%s: DFS output differs across parallelism: %x/%d vs %x/%d",
								leg, seq.checksum, seq.records, par.checksum, par.records)
						}
						if seq.sim != par.sim {
							t.Errorf("%s: simulated seconds differ across parallelism: %v vs %v",
								leg, seq.sim, par.sim)
						}
						if !reflect.DeepEqual(seq.metrics, par.metrics) {
							t.Errorf("%s: round metrics differ across parallelism", leg)
						}
						if leaked := filesUnder(t, dir); len(leaked) != 0 {
							t.Errorf("%s: leaked spill files: %v", leg, leaked)
						}
					}
				})
			}
		}
	}
}
