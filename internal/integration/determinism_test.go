package integration

import (
	"reflect"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// zeroWall strips the real wall-clock fields — the only quantities the
// determinism guarantee excludes — so the rest of the metrics can be
// compared with DeepEqual.
func zeroWall(m mr.JobMetrics) mr.JobMetrics {
	out := mr.JobMetrics{Rounds: append([]mr.RoundMetrics(nil), m.Rounds...)}
	for i := range out.Rounds {
		r := &out.Rounds[i]
		r.WallSeconds = 0
		r.Mappers = append([]mr.TaskMetrics(nil), r.Mappers...)
		r.Reducers = append([]mr.TaskMetrics(nil), r.Reducers...)
		for j := range r.Mappers {
			r.Mappers[j].WallSeconds = 0
		}
		for j := range r.Reducers {
			r.Reducers[j].WallSeconds = 0
		}
	}
	return out
}

type detRun struct {
	res      *cube.Result
	metrics  mr.JobMetrics
	sim      float64
	checksum uint64
	records  int64
}

func runDeterminism(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int) detRun {
	t.Helper()
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism}, dfs.New(false))
	run, err := fn(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		t.Fatal(err)
	}
	return detRun{
		res:      res,
		metrics:  zeroWall(run.Metrics),
		sim:      run.Metrics.SimSeconds(),
		checksum: eng.FS.TotalChecksum(run.OutputPrefix),
		records:  eng.FS.TotalRecords(run.OutputPrefix),
	}
}

// TestParallelismDeterminism is the cross-algorithm determinism table: every
// algorithm, on a skewed and a uniform workload, must produce bit-for-bit
// identical cube output, identical round metrics, and identical simulated
// seconds at parallelism 1 and parallelism 8.
func TestParallelismDeterminism(t *testing.T) {
	detWorkloads := []struct {
		name string
		rel  *relation.Relation
	}{
		{"skewed", data.GenBinomial(800, 4, 0.4, 31)},
		{"uniform", data.Uniform(800, 3, 9, 32)},
	}
	for _, w := range detWorkloads {
		for _, a := range allAlgorithms {
			t.Run(w.name+"/"+a.name, func(t *testing.T) {
				seq := runDeterminism(t, a.fn, w.rel, 1)
				par := runDeterminism(t, a.fn, w.rel, 8)
				if ok, diff := seq.res.Equal(par.res); !ok {
					t.Errorf("cube output differs: %s", diff)
				}
				if seq.checksum != par.checksum || seq.records != par.records {
					t.Errorf("DFS output differs: checksum %x/%d records vs %x/%d records",
						seq.checksum, seq.records, par.checksum, par.records)
				}
				if seq.sim != par.sim {
					t.Errorf("simulated seconds differ: %v vs %v", seq.sim, par.sim)
				}
				if !reflect.DeepEqual(seq.metrics, par.metrics) {
					t.Errorf("round metrics differ:\nsequential: %+v\nparallel:   %+v",
						seq.metrics, par.metrics)
				}
			})
		}
	}
}
