package integration

import (
	"math"
	"os"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// soakRun pushes rel through sp-cube at the given spill budget and returns
// the DFS checksum and record count of the cube output plus the job metrics.
func soakRun(t *testing.T, rel *relation.Relation, budget int64, dir string) (uint64, int64, mr.JobMetrics) {
	t.Helper()
	eng := mr.New(mr.Config{Workers: 8, Seed: 42,
		SpillBudgetBytes: budget, SpillDir: dir}, dfs.New(false))
	run, err := spalgo.Compute(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	return eng.FS.TotalChecksum(run.OutputPrefix), eng.FS.TotalRecords(run.OutputPrefix), run.Metrics
}

// TestSoakScale is the out-of-core scale gate (`make soak-scale`): a 10M-row
// uniform relation through sp-cube with an 8 MiB spill budget, inside a
// GOMEMLIMIT-bounded process. It asserts that
//
//   - the job completes and actually spilled (the budget fired),
//   - the Go runtime's peak committed memory stayed within 1.25x GOMEMLIMIT
//     (when a limit is set — `make soak-scale` sets 3GiB),
//   - a subsampled prefix of the same relation produces byte-identical cube
//     output spilled vs. fully in memory (the full 10M in-memory twin would
//     defeat the bounded-RSS point), and
//   - no run files are left behind.
//
// Gated behind SPCUBE_SOAK_SCALE=1 so the regular test suite stays fast;
// SPCUBE_SOAK_SCALE_ROWS overrides the row count.
func TestSoakScale(t *testing.T) {
	if os.Getenv("SPCUBE_SOAK_SCALE") != "1" {
		t.Skip("set SPCUBE_SOAK_SCALE=1 (or run `make soak-scale`) to run the scale soak")
	}
	rows := 10_000_000
	if s := os.Getenv("SPCUBE_SOAK_SCALE_ROWS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SPCUBE_SOAK_SCALE_ROWS %q: %v", s, err)
		}
		rows = n
	}
	rel := data.Uniform(rows, 3, 64, 97)

	// Subsampled differential leg: a prefix small enough to hold in memory,
	// at a budget small enough to guarantee spilling, must match its
	// in-memory twin byte for byte.
	subN := rows / 50
	if subN > 200_000 {
		subN = 200_000
	}
	sub := &relation.Relation{Schema: rel.Schema, Tuples: rel.Tuples[:subN], Dict: rel.Dict}
	memSum, memRecs, memM := soakRun(t, sub, 0, "")
	if memM.Spills() != 0 {
		t.Fatalf("in-memory twin spilled %d times", memM.Spills())
	}
	subDir := t.TempDir()
	subSum, subRecs, subM := soakRun(t, sub, 1<<10, subDir)
	if subM.Spills() == 0 {
		t.Fatal("subsampled spill leg: budget did not fire")
	}
	if subSum != memSum || subRecs != memRecs {
		t.Fatalf("subsampled spill output %x/%d differs from in-memory %x/%d",
			subSum, subRecs, memSum, memRecs)
	}
	if leaked := filesUnder(t, subDir); len(leaked) != 0 {
		t.Fatalf("subsampled leg leaked run files: %v", leaked)
	}

	// Full-scale leg under a memory watchdog: sample the runtime's total
	// committed bytes while the job runs and keep the peak.
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		samples := []metrics.Sample{{Name: "/memory/classes/total:bytes"}}
		for {
			metrics.Read(samples)
			if v := samples[0].Value.Uint64(); v > peak.Load() {
				peak.Store(v)
			}
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}()

	dir := t.TempDir()
	start := time.Now()
	sum, recs, m := soakRun(t, rel, 8<<20, dir)
	elapsed := time.Since(start)
	close(stop)
	<-done

	// Small row-count overrides may fit each map task under 8 MiB; at soak
	// scale the budget must fire.
	if rows >= 2_000_000 && m.Spills() == 0 {
		t.Error("full-scale leg: 8 MiB budget never fired")
	}
	if leaked := filesUnder(t, dir); len(leaked) != 0 {
		t.Errorf("full-scale leg leaked run files: %v", leaked)
	}
	t.Logf("%d rows in %v: output %x/%d records, %d spills (%d MiB spilled), peak runtime memory %d MiB",
		rows, elapsed.Round(time.Second), sum, recs, m.Spills(), m.SpillBytes()>>20, peak.Load()>>20)

	limit := debug.SetMemoryLimit(-1) // read without changing
	if limit == math.MaxInt64 {
		t.Log("GOMEMLIMIT unset; skipping the RSS ceiling assertion")
		return
	}
	ceiling := uint64(limit) + uint64(limit)/4
	if peak.Load() > ceiling {
		t.Errorf("peak runtime memory %d bytes exceeds 1.25x GOMEMLIMIT (%d bytes)", peak.Load(), ceiling)
	}
}
