// Package integration cross-validates every cube algorithm against the
// brute-force reference and against each other over a matrix of data
// distributions, aggregate functions, iceberg thresholds and cluster
// shapes — the end-to-end safety net on top of the per-package suites.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/algo/pipesort"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// hiveNoOOM disables the Hive model's hard failure so correctness can be
// checked even on configurations that would OOM its reducers.
func hiveNoOOM(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return hivecube.ComputeOpts(eng, rel, spec, hivecube.Options{DisableOOM: true})
}

var allAlgorithms = []struct {
	name string
	fn   cube.ComputeFunc
}{
	{"sp-cube", spalgo.Compute},
	{"naive", naive.Compute},
	{"mr-cube", mrcube.Compute},
	{"hive", hiveNoOOM},
	{"pipesort", pipesort.Compute},
}

var workloads = []struct {
	name string
	rel  *relation.Relation
}{
	{"uniform-dense", cubetest.RandomRelation(rand.New(rand.NewSource(1)), 400, 3, 4)},
	{"uniform-sparse", cubetest.RandomRelation(rand.New(rand.NewSource(2)), 400, 3, 100000)},
	{"binomial-0.5", data.GenBinomial(400, 3, 0.5, 3)},
	{"zipf", data.GenZipf(400, 4)},
	{"wiki", data.WikiTraffic(400, 5)},
	{"usagov-4d", data.USAGov(400, 6).Restrict(data.USAGovCubeDims)},
	{"retail", data.Retail(400, 7)},
	{"adversarial", data.Adversarial(4, 25)},
}

// TestAllAlgorithmsMatchBruteForce is the full correctness matrix.
func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	for _, w := range workloads {
		for _, a := range allAlgorithms {
			t.Run(w.name+"/"+a.name, func(t *testing.T) {
				if err := cubetest.CheckAgainstBrute(a.fn, w.rel, agg.Count, 5); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestAggregateMatrix runs every aggregate function (and an iceberg
// threshold) through every algorithm on one skewed workload.
func TestAggregateMatrix(t *testing.T) {
	rel := data.GenBinomial(500, 3, 0.4, 11)
	specs := []cube.Spec{
		{Agg: agg.Count},
		{Agg: agg.Sum},
		{Agg: agg.Min},
		{Agg: agg.Max},
		{Agg: agg.Avg},
		{Agg: agg.Var},
		{Agg: agg.Stddev},
		{Agg: agg.Distinct},
		{Agg: agg.Sum, MinSup: 10},
		{Agg: agg.Count, MinSup: 50},
	}
	for _, spec := range specs {
		want := cube.BruteSpec(rel, spec)
		for _, a := range allAlgorithms {
			name := fmt.Sprintf("%s/%s-minsup%d", a.name, spec.Agg.Name(), spec.MinSup)
			t.Run(name, func(t *testing.T) {
				eng := cubetest.NewEngine(4)
				res, _, err := cubetest.RunAndCollect(eng, a.fn, rel, spec)
				if err != nil {
					t.Fatal(err)
				}
				if ok, diff := want.Equal(res); !ok {
					t.Error(diff)
				}
			})
		}
	}
}

// TestClusterShapes varies k and m, including memory tighter than n/k.
func TestClusterShapes(t *testing.T) {
	rel := data.GenZipf(600, 13)
	want := cube.Brute(rel, agg.Count)
	for _, shape := range []struct{ k, m int }{
		{1, 0}, {2, 0}, {7, 0}, {16, 0},
		{4, 50},  // memory much tighter than n/k: everything looks skewed
		{4, 600}, // memory covers the whole relation: nothing is skewed
	} {
		for _, a := range allAlgorithms {
			t.Run(fmt.Sprintf("%s/k%d-m%d", a.name, shape.k, shape.m), func(t *testing.T) {
				eng := mr.New(mr.Config{Workers: shape.k, MemTuples: shape.m}, cubetest.NewEngine(1).FS)
				eng.FS.Remove("out/")
				res, _, err := cubetest.RunAndCollect(eng, a.fn, rel, cube.Spec{Agg: agg.Count})
				if err != nil {
					t.Fatal(err)
				}
				if ok, diff := want.Equal(res); !ok {
					t.Error(diff)
				}
			})
		}
	}
}

// TestAlgorithmsAgreePairwise validates outputs against each other via DFS
// checksums over a larger input than the brute-force tests can afford.
func TestAlgorithmsAgreePairwise(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rel := data.WikiTraffic(20_000, 17)
	sums := make(map[string]uint64)
	recs := make(map[string]int64)
	for _, a := range allAlgorithms {
		eng := mr.New(mr.Config{Workers: 10}, nil) // discard DFS: checksums only
		run, err := a.fn(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		sums[a.name] = eng.FS.TotalChecksum(run.OutputPrefix)
		recs[a.name] = eng.FS.TotalRecords(run.OutputPrefix)
	}
	for _, a := range allAlgorithms[1:] {
		if sums[a.name] != sums["sp-cube"] {
			t.Errorf("%s output checksum differs from sp-cube (%d vs %d records)",
				a.name, recs[a.name], recs["sp-cube"])
		}
	}
}

// TestSeedIndependence: the cube must not depend on the sampling seed, only
// the performance profile may.
func TestSeedIndependence(t *testing.T) {
	rel := data.GenBinomial(2_000, 3, 0.5, 19)
	want := cube.Brute(rel, agg.Count)
	for seed := int64(0); seed < 5; seed++ {
		fn := func(eng *mr.Engine, r *relation.Relation, spec cube.Spec) (*cube.Run, error) {
			return spalgo.ComputeOpts(eng, r, spec, spalgo.Options{Seed: seed})
		}
		eng := cubetest.NewEngine(6)
		res, _, err := cubetest.RunAndCollect(eng, fn, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("seed %d: %s", seed, diff)
		}
	}
}

// TestMeasureOverflowSafety: large measures must not corrupt varint
// encodings through the full pipeline.
func TestMeasureOverflowSafety(t *testing.T) {
	rel := &relation.Relation{Schema: relation.Schema{DimNames: []string{"a", "b"}, MeasureName: "m"}}
	big := []int64{1 << 60, -(1 << 60), 0, 1, -1}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		rel.Append([]relation.Value{int32(rng.Intn(3)), int32(rng.Intn(3))}, big[rng.Intn(len(big))])
	}
	for _, a := range allAlgorithms {
		if err := cubetest.CheckAgainstBrute(a.fn, rel, agg.Sum, 3); err != nil {
			t.Errorf("%s: %v", a.name, err)
		}
		if err := cubetest.CheckAgainstBrute(a.fn, rel, agg.Min, 3); err != nil {
			t.Errorf("%s min: %v", a.name, err)
		}
	}
}
