package integration

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
)

// TestChaosRandomFaultPlans is the randomized-plan soak (`make chaos`): a
// deterministic generator assembles multi-fault plans — task faults of every
// kind, whole-node crashes, speculative slack and hard task timeouts — and
// every run, at a random parallelism, must still produce the exact
// brute-force cube. All faults target first attempts only and at most one
// node dies, so MaxAttempts 4 always recovers; a failed run here is an
// engine bug, not an unlucky plan.
func TestChaosRandomFaultPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	const workers = 5
	kinds := []string{"crash", "mid-emit@2", "slow@2", "oom"}
	for iter := 0; iter < 25; iter++ {
		var parts []string
		for i, m := 0, 1+rng.Intn(3); i < m; i++ {
			phase := "map"
			if rng.Intn(2) == 1 {
				phase = "reduce"
			}
			task := "*"
			if rng.Intn(2) == 1 {
				task = fmt.Sprint(rng.Intn(workers + 1))
			}
			parts = append(parts, fmt.Sprintf("*:%s:%s:%s", phase, task, kinds[rng.Intn(len(kinds))]))
		}
		if rng.Intn(2) == 1 {
			parts = append(parts, fmt.Sprintf("*:node:%d:node-crash", rng.Intn(workers)))
		}
		spec := strings.Join(parts, ",")
		plan, err := mr.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("iter %d: generated spec %q: %v", iter, spec, err)
		}
		cfg := mr.Config{Workers: workers, Seed: rng.Uint64(),
			Parallelism: 1 + rng.Intn(8), Faults: plan, MaxAttempts: 4}
		if rng.Intn(2) == 1 {
			cfg.SpeculativeSlack = 0.0005 // below the 2ms injected stall
		}
		if rng.Intn(2) == 1 {
			cfg.TaskTimeout = 0.001 // ditto: stalled attempts are killed
		}

		n := 50 + rng.Intn(250)
		d := 1 + rng.Intn(4)
		card := 1 + rng.Intn(9)
		rel := cubetest.RandomRelation(rand.New(rand.NewSource(rng.Int63())), n, d, card)
		want := cube.Brute(rel, agg.Count)
		a := allAlgorithms[rng.Intn(len(allAlgorithms))]
		label := fmt.Sprintf("iter %d: %s spec=%q slack=%v timeout=%v n=%d d=%d card=%d",
			iter, a.name, spec, cfg.SpeculativeSlack, cfg.TaskTimeout, n, d, card)

		eng := mr.New(cfg, dfs.New(false))
		run, err := a.fn(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got, err := cube.CollectDFS(eng, run.OutputPrefix, d)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if ok, diff := want.Equal(got); !ok {
			t.Errorf("%s: diverges from brute force: %s", label, diff)
		}
	}
}
