package integration

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/delta"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/serve"
)

// tupleSet is a mutable multiset of raw-coded tuples. The relations it
// materializes use raw Append (no dictionary), so tuple codes are the values
// themselves and stay identical between the maintainer's evolving relation
// and the from-scratch relations the oracle recomputes over.
type tupleSet struct {
	d    int
	rows []relation.Tuple
}

func (ts *tupleSet) relation() *relation.Relation {
	names := make([]string, ts.d)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i)
	}
	rel := relation.New(names, "m")
	for _, tp := range ts.rows {
		rel.Append(tp.Dims, tp.Measure)
	}
	return rel
}

// apply edits the set the way a maintenance batch edits the relation:
// remove one occurrence per delete, then append.
func (ts *tupleSet) apply(b delta.Batch) {
	for _, del := range b.Delete {
		for i, tp := range ts.rows {
			if tp.Measure == del.Measure && relation.ComparePacked(tp.Dims, del.Dims) == 0 {
				ts.rows = append(ts.rows[:i], ts.rows[i+1:]...)
				break
			}
		}
	}
	for _, tp := range b.Append {
		ts.rows = append(ts.rows, tp.Clone())
	}
}

func randomTuples(rng *rand.Rand, n, d, card int) []relation.Tuple {
	rows := make([]relation.Tuple, n)
	for i := range rows {
		dims := make([]relation.Value, d)
		for j := range dims {
			dims[j] = relation.Value(rng.Intn(card))
		}
		rows[i] = relation.Tuple{Dims: dims, Measure: int64(rng.Intn(50))}
	}
	return rows
}

// checkMaintainedCube asserts exact equality (group set and bit-identical
// values) between the maintained cube and a brute-force recompute over the
// edited relation.
func checkMaintainedCube(t *testing.T, maint *delta.Maintainer, ts *tupleSet, fn agg.Func) {
	t.Helper()
	got := maint.Result()
	want := cube.Brute(ts.relation(), fn)
	if got.D != want.D {
		t.Fatalf("maintained cube has d=%d, recompute d=%d", got.D, want.D)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		for k, v := range want.Groups {
			if gv, ok := got.Groups[k]; !ok || gv != v {
				t.Errorf("group %q: maintained %v, recompute %v", k, got.Groups[k], v)
			}
		}
		for k := range got.Groups {
			if _, ok := want.Groups[k]; !ok {
				t.Errorf("group %q: maintained cube has it, recompute does not", k)
			}
		}
		t.Fatalf("maintained cube diverges from recompute: %d vs %d groups", len(got.Groups), len(want.Groups))
	}
}

// TestDifferentialDeltaMaintenance is the maintenance leg of the
// differential oracle: for every cube algorithm, on uniform and skewed
// bases, under append-only and append+delete batches, at parallelism 1 and
// 8, the cube maintained through delta.Maintainer must equal a full
// recompute over base∪delta exactly. sp-cube additionally runs under an
// injected fault plan — recovery must not leak into the maintained state.
func TestDifferentialDeltaMaintenance(t *testing.T) {
	algos := []string{"sp-cube", "naive", "mr-cube", "hive", "pipesort"}
	bases := []struct {
		name string
		gen  func(rng *rand.Rand) []relation.Tuple
	}{
		{"uniform", func(rng *rand.Rand) []relation.Tuple { return randomTuples(rng, 300, 3, 6) }},
		{"skewed", func(rng *rand.Rand) []relation.Tuple {
			// Half the rows collapse onto one hot tuple; the rest are uniform.
			rows := randomTuples(rng, 300, 3, 6)
			for i := 0; i < len(rows)/2; i++ {
				rows[i].Dims = []relation.Value{1, 2, 3}
			}
			return rows
		}},
	}
	batches := []string{"append", "append+delete"}
	pars := []int{1, 8}

	for _, algoName := range algos {
		faultPlans := []string{""}
		if algoName == "sp-cube" {
			faultPlans = append(faultPlans, "*:map:*:crash,*:reduce:0:mid-emit@2")
		}
		for _, base := range bases {
			for _, batchKind := range batches {
				for _, par := range pars {
					for _, faults := range faultPlans {
						name := fmt.Sprintf("%s/%s/%s/p%d", algoName, base.name, batchKind, par)
						if faults != "" {
							name += "/faulted"
						}
						t.Run(name, func(t *testing.T) {
							rng := rand.New(rand.NewSource(int64(len(name)) * 31))
							ts := &tupleSet{d: 3, rows: base.gen(rng)}
							plan, err := mr.ParseFaultPlan(faults)
							if err != nil {
								t.Fatal(err)
							}
							maint, err := delta.New(ts.relation(), delta.Config{
								Algorithm:   algoName,
								Agg:         agg.Sum,
								Workers:     4,
								Parallelism: par,
								Seed:        42,
								Faults:      plan,
								// Keep drift from forcing rebuilds so the
								// delta-merge path is what gets tested.
								RebuildThreshold: 0.999,
							})
							if err != nil {
								t.Fatal(err)
							}
							batch := delta.Batch{Append: randomTuples(rng, 40, 3, 6)}
							if batchKind == "append+delete" {
								for i := 0; i < 15; i++ {
									batch.Delete = append(batch.Delete, ts.rows[rng.Intn(len(ts.rows))].Clone())
								}
								// Duplicate picks delete one occurrence each;
								// drop duplicates to keep the oracle simple.
								batch.Delete = dedupTuples(batch.Delete)
							}
							rnd, err := maint.Apply(batch)
							if err != nil {
								t.Fatal(err)
							}
							// Sum inverts cleanly, so both batch kinds must
							// take the delta-merge path at this threshold.
							if rnd.Mode != "delta" {
								t.Fatalf("cycle took mode %q (reason %s, drift %.3f), want delta", rnd.Mode, rnd.Reason, rnd.Drift)
							}
							ts.apply(batch)
							checkMaintainedCube(t, maint, ts, agg.Sum)

							// A second batch stacks on the first: state, not
							// just a single transition, must be maintained.
							batch2 := delta.Batch{Append: randomTuples(rng, 25, 3, 6)}
							if _, err := maint.Apply(batch2); err != nil {
								t.Fatal(err)
							}
							ts.apply(batch2)
							checkMaintainedCube(t, maint, ts, agg.Sum)
						})
					}
				}
			}
		}
	}
}

func dedupTuples(ts []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	for _, tp := range ts {
		dup := false
		for _, o := range out {
			if o.Measure == tp.Measure && relation.ComparePacked(o.Dims, tp.Dims) == 0 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, tp)
		}
	}
	return out
}

// FuzzDeltaEquivalence fuzzes the maintenance input space — base shape,
// batch composition, delete selection, aggregate, rebuild threshold — and
// checks that the maintained cube always equals a brute-force recompute
// over the edited relation, whichever mode (delta-merge or rebuild) the
// maintainer chose. `make fuzz-smoke` runs it for 10s alongside the
// engine-level cube fuzzer.
func FuzzDeltaEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(2), uint8(3), uint8(10), uint8(0), uint8(0))
	f.Add(int64(2), uint16(120), uint8(3), uint8(5), uint8(30), uint8(7), uint8(1))
	f.Add(int64(3), uint16(200), uint8(1), uint8(1), uint8(0), uint8(15), uint8(2)) // deletes only, forced rebuild
	f.Add(int64(4), uint16(80), uint8(3), uint8(2), uint8(25), uint8(12), uint8(4)) // min + deletes: rebuild reason "aggregate"
	f.Add(int64(5), uint16(30), uint8(2), uint8(6), uint8(40), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, dRaw, cardRaw, appRaw, delRaw, modeRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + int(dRaw)%3
		card := 1 + int(cardRaw)%6
		n := 1 + int(nRaw)%200
		ts := &tupleSet{d: d, rows: randomTuples(rng, n, d, card)}

		aggs := []struct {
			name string
			fn   agg.Func
		}{{"count", agg.Count}, {"sum", agg.Sum}, {"min", agg.Min}}
		chosen := aggs[int(modeRaw)%3]
		thresholds := []float64{0, 0.999, -1}
		thr := thresholds[int(modeRaw/3)%3]

		maint, err := delta.New(ts.relation(), delta.Config{
			Agg:              chosen.fn,
			Workers:          3,
			Seed:             seed,
			RebuildThreshold: thr,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := delta.Batch{Append: randomTuples(rng, int(appRaw)%40, d, card)}
		nd := int(delRaw) % 16
		if nd > len(ts.rows) {
			nd = len(ts.rows)
		}
		for i := 0; i < nd; i++ {
			batch.Delete = append(batch.Delete, ts.rows[rng.Intn(len(ts.rows))].Clone())
		}
		batch.Delete = dedupTuples(batch.Delete)
		if len(batch.Append) == 0 && len(batch.Delete) == 0 {
			return
		}
		if len(batch.Append) == 0 && len(batch.Delete) >= len(ts.rows) {
			// The maintainer refuses batches that would empty the relation;
			// that rejection (and its atomicity) is pinned elsewhere.
			return
		}
		if _, err := maint.Apply(batch); err != nil {
			t.Fatal(err)
		}
		ts.apply(batch)
		checkMaintainedCube(t, maint, ts, chosen.fn)
	})
}

// TestDeltaSoak is the randomized maintenance soak behind `make delta-soak`:
// a maintainer with chaos faults injected into every cycle's jobs feeds a
// serving store through the patch/rebuild + swap path, each cycle verified
// exactly against brute force; interleaved failing cycles (invalid deletes)
// and a permanently-faulted maintainer must leave both the maintained state
// and the served snapshot untouched. SPCUBE_SOAK_CYCLES scales the run.
func TestDeltaSoak(t *testing.T) {
	cycles := 8
	if s := os.Getenv("SPCUBE_SOAK_CYCLES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("SPCUBE_SOAK_CYCLES=%q: %v", s, err)
		}
		cycles = v
	}
	rng := rand.New(rand.NewSource(2016))
	ts := &tupleSet{d: 3, rows: randomTuples(rng, 400, 3, 5)}
	plan, err := mr.ParseFaultPlan("*:map:*:crash,*:node:1:node-crash")
	if err != nil {
		t.Fatal(err)
	}
	maint, err := delta.New(ts.relation(), delta.Config{
		Agg:     agg.Sum,
		Workers: 4,
		Seed:    9,
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.Build(maint.Relation(), maint.Result())
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewDirect(st, nil)

	// checkServed asserts the served snapshot equals brute force exactly.
	checkServed := func(cycle int) {
		t.Helper()
		want := cube.Brute(ts.relation(), agg.Sum)
		store := svc.Store()
		if store.Groups() != want.Len() {
			t.Fatalf("cycle %d: served store has %d groups, brute %d", cycle, store.Groups(), want.Len())
		}
		for key, v := range want.Groups {
			mask, packed, err := relation.DecodeGroupKey(key)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := store.Point(lattice.Mask(mask), packed)
			if !ok || got != v {
				t.Fatalf("cycle %d: served group %q = %v,%v want %v", cycle, key, got, ok, v)
			}
		}
	}
	checkServed(0)

	for cycle := 1; cycle <= cycles; cycle++ {
		if cycle%4 == 0 {
			// A failing cycle: deleting a tuple that does not exist must
			// reject the whole batch and leave everything untouched.
			before := svc.Store()
			version := maint.Version()
			bad := delta.Batch{
				Append: randomTuples(rng, 5, 3, 5),
				Delete: []relation.Tuple{{Dims: []relation.Value{9, 9, 9}, Measure: 12345}},
			}
			if _, err := maint.Apply(bad); err == nil {
				t.Fatalf("cycle %d: invalid delete accepted", cycle)
			}
			if maint.Version() != version {
				t.Fatalf("cycle %d: failed cycle advanced the version", cycle)
			}
			if svc.Store() != before {
				t.Fatalf("cycle %d: failed cycle swapped the served snapshot", cycle)
			}
			checkServed(cycle)
			continue
		}
		batch := delta.Batch{Append: randomTuples(rng, 10+rng.Intn(30), 3, 5)}
		for i := rng.Intn(8); i > 0 && len(ts.rows) > 50; i-- {
			batch.Delete = append(batch.Delete, ts.rows[rng.Intn(len(ts.rows))].Clone())
		}
		batch.Delete = dedupTuples(batch.Delete)
		rnd, err := maint.Apply(batch)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		ts.apply(batch)
		checkMaintainedCube(t, maint, ts, agg.Sum)

		var next *serve.Store
		if rnd.Mode == "delta" {
			p := serve.NewPatch()
			for _, ch := range rnd.Changes {
				if ch.Delete {
					err = p.Delete(ch.Key)
				} else {
					err = p.Set(ch.Key, ch.Value)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			next, err = svc.Store().ApplyPatch(p, maint.Relation().Dict)
		} else {
			next, err = serve.Build(maint.Relation(), maint.Result())
		}
		if err != nil {
			t.Fatalf("cycle %d (%s): %v", cycle, rnd.Mode, err)
		}
		svc.Swap(next)
		checkServed(cycle)
	}

	// A permanently-faulted configuration (every map attempt crashes, no
	// retries left) must fail the initial build cleanly rather than hand
	// back a half-built maintainer. Mid-life job failures leaving state
	// untouched are pinned by internal/delta's
	// TestFailedCycleLeavesStateUntouched.
	fatal, err := mr.ParseFaultPlan("*:map:*:crash:0:*")
	if err != nil {
		t.Fatal(err)
	}
	ts2 := &tupleSet{d: 2, rows: randomTuples(rng, 100, 2, 4)}
	if _, err := delta.New(ts2.relation(), delta.Config{Agg: agg.Count, Workers: 3, Seed: 5, Faults: fatal}); err == nil {
		t.Fatal("permanently-faulted initial build succeeded")
	}
}
