package integration

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// zeroRecovery strips, on top of zeroWall, the recovery accounting (task
// attempts, retry latency, wasted bytes, map re-executions, fetch failures
// and the speculation counters) — the only counters a faulted run is allowed
// to differ from a fault-free run on.
func zeroRecovery(m mr.JobMetrics) mr.JobMetrics {
	out := zeroWall(m)
	for i := range out.Rounds {
		r := &out.Rounds[i]
		r.Retries, r.RetryWallSeconds, r.WastedBytes = 0, 0, 0
		r.MapReexecutions, r.FetchFailures = 0, 0
		r.SpeculativeLaunched, r.SpeculativeWon, r.SpeculativeKilled = 0, 0, 0
		r.SpeculativeWallSeconds = 0
		for _, tasks := range [][]mr.TaskMetrics{r.Mappers, r.Reducers} {
			for j := range tasks {
				tasks[j].Attempts, tasks[j].RetryWallSeconds, tasks[j].WastedBytes = 0, 0, 0
				tasks[j].Reexecutions, tasks[j].FetchFailures = 0, 0
				tasks[j].SpeculativeLaunched, tasks[j].SpeculativeWon, tasks[j].SpeculativeKilled = 0, 0, 0
				tasks[j].SpeculativeWallSeconds = 0
			}
		}
	}
	return out
}

type diffRun struct {
	res      *cube.Result
	metrics  mr.JobMetrics // recovery-stripped
	retries  int64
	shuffle  int64
	checksum uint64
	records  int64
}

// runWithFaults executes one cube algorithm under a fault plan with
// MaxAttempts 2 — every injected first-attempt failure must be recovered by
// exactly one retry.
func runWithFaults(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, spec string, parallelism int) diffRun {
	t.Helper()
	plan, err := mr.ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism,
		Faults: plan, MaxAttempts: 2}, dfs.New(false))
	run, err := fn(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		t.Fatal(err)
	}
	return diffRun{
		res:      res,
		metrics:  zeroRecovery(run.Metrics),
		retries:  run.Metrics.Retries(),
		shuffle:  run.Metrics.ShuffleBytes(),
		checksum: eng.FS.TotalChecksum(run.OutputPrefix),
		records:  eng.FS.TotalRecords(run.OutputPrefix),
	}
}

// diffWorkloads spans the distribution extremes the paper targets: uniform,
// Zipf-skewed, and the degenerate all-duplicates relation where every
// c-group of every cuboid is a single skewed group.
var diffWorkloads = []struct {
	name string
	rel  *relation.Relation
}{
	{"uniform", cubetest.RandomRelation(rand.New(rand.NewSource(51)), 400, 3, 50)},
	{"zipf", data.GenZipf(400, 29)},
	{"all-duplicate", cubetest.RandomRelation(rand.New(rand.NewSource(53)), 400, 3, 1)},
}

// faultMatrix injects every fault kind into every map and reduce task of
// every round (first attempts only, so MaxAttempts 2 recovers all of them).
var faultMatrix = []struct {
	name          string
	spec          string
	expectRetries bool
}{
	{"crash", "*:map:*:crash,*:reduce:*:crash", true},
	{"mid-emit", "*:map:*:mid-emit@2,*:reduce:*:mid-emit@2", true},
	{"slow", "*:map:*:slow@1,*:reduce:*:slow@1", false},
	{"oom", "*:map:*:oom,*:reduce:*:oom", true},
	// A whole failure domain dies at every shuffle barrier: its completed
	// map output must be re-executed and its reduce attempts re-placed.
	{"node-crash", "*:node:1:node-crash", true},
}

// TestDifferentialOracleUnderFaults is the cross-algorithm differential
// oracle: every algorithm, on every distribution, under every fault kind, at
// parallelism 1 and 8, must produce the exact brute-force cube, byte-identical
// DFS output, identical ShuffleBytes, and identical metrics (recovery
// accounting aside) to its own fault-free run.
func TestDifferentialOracleUnderFaults(t *testing.T) {
	for _, w := range diffWorkloads {
		want := cube.Brute(w.rel, agg.Count)
		for _, a := range allAlgorithms {
			t.Run(w.name+"/"+a.name, func(t *testing.T) {
				clean := runWithFaults(t, a.fn, w.rel, "", 1)
				if ok, diff := want.Equal(clean.res); !ok {
					t.Fatalf("fault-free run wrong vs brute force: %s", diff)
				}
				if clean.retries != 0 {
					t.Fatalf("fault-free run reports %d retries", clean.retries)
				}
				for _, fk := range faultMatrix {
					for _, par := range []int{1, 8} {
						label := fmt.Sprintf("%s/par=%d", fk.name, par)
						got := runWithFaults(t, a.fn, w.rel, fk.spec, par)
						if ok, diff := clean.res.Equal(got.res); !ok {
							t.Errorf("%s: cube output diverges from fault-free run: %s", label, diff)
						}
						if got.checksum != clean.checksum || got.records != clean.records {
							t.Errorf("%s: DFS output diverges: checksum %x/%d records vs %x/%d records",
								label, got.checksum, got.records, clean.checksum, clean.records)
						}
						if got.shuffle != clean.shuffle {
							t.Errorf("%s: ShuffleBytes = %d, want %d", label, got.shuffle, clean.shuffle)
						}
						if !reflect.DeepEqual(got.metrics, clean.metrics) {
							t.Errorf("%s: metrics diverge beyond recovery accounting:\nfaulted: %+v\nclean:   %+v",
								label, got.metrics, clean.metrics)
						}
						if fk.expectRetries && got.retries == 0 {
							t.Errorf("%s: fault plan did not fire", label)
						}
						if !fk.expectRetries && got.retries != 0 {
							t.Errorf("%s: slow tasks must not retry, got %d retries", label, got.retries)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialOracleSpill adds out-of-core legs to the oracle: with the
// spill budget forcing a run-file flush per record (budget 1) or a handful
// of flushes per task (budget 512), through the raw and lz block codecs,
// and with a fan-in cap of 2 forcing multi-pass intermediate merges, every
// algorithm on every distribution must still produce the exact brute-force
// cube and byte-identical DFS output, clean and under crash and node-crash
// plans, leaking no run files.
func TestDifferentialOracleSpill(t *testing.T) {
	spillFaults := []struct {
		name string
		spec string
	}{
		{"clean", ""},
		{"crash", "*:map:*:crash,*:reduce:*:crash"},
		{"node-crash", "*:node:1:node-crash"},
	}
	for _, w := range diffWorkloads {
		want := cube.Brute(w.rel, agg.Count)
		for _, a := range allAlgorithms {
			t.Run(w.name+"/"+a.name, func(t *testing.T) {
				clean := runWithFaults(t, a.fn, w.rel, "", 1)
				legs := []spillLeg{
					{budget: 1}, {budget: 512},
					{budget: 512, codec: "lz", fanIn: 2},
				}
				for _, fk := range spillFaults {
					for _, leg := range legs {
						budget := leg.budget
						label := fmt.Sprintf("%s/%s", fk.name, leg)
						dir := t.TempDir()
						plan, err := mr.ParseFaultPlan(fk.spec)
						if err != nil {
							t.Fatal(err)
						}
						eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: 8,
							Faults: plan, MaxAttempts: 2,
							SpillBudgetBytes: budget, SpillDir: dir,
							SpillCodec: leg.codec, MergeFanIn: leg.fanIn}, dfs.New(false))
						run, err := a.fn(eng, w.rel, cube.Spec{Agg: agg.Count})
						if err != nil {
							t.Fatal(err)
						}
						res, err := cube.CollectDFS(eng, run.OutputPrefix, w.rel.D())
						if err != nil {
							t.Fatal(err)
						}
						if ok, diff := want.Equal(res); !ok {
							t.Errorf("%s: cube diverges from brute force: %s", label, diff)
						}
						if got := eng.FS.TotalChecksum(run.OutputPrefix); got != clean.checksum {
							t.Errorf("%s: DFS output %x differs from in-memory clean run %x", label, got, clean.checksum)
						}
						// At budget 1 every emitting map task flushes; 512 may
						// legitimately fit a small task's whole output.
						if budget == 1 && run.Metrics.Spills() == 0 {
							t.Errorf("%s: spill budget did not fire", label)
						}
						if leaked := filesUnder(t, dir); len(leaked) != 0 {
							t.Errorf("%s: leaked spill files: %v", label, leaked)
						}
					}
				}
			})
		}
	}
}
