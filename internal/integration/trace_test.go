package integration

import (
	"reflect"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// runTrace executes one algorithm with a SliceTracer attached and returns
// the event stream with the wall-clock timestamps (the only field outside
// the determinism contract) zeroed.
func runTrace(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int, faults string) []mr.TraceEvent {
	t.Helper()
	plan, err := mr.ParseFaultPlan(faults)
	if err != nil {
		t.Fatal(err)
	}
	tracer := &mr.SliceTracer{}
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism,
		Faults: plan, Tracer: tracer}, dfs.New(false))
	if _, err := fn(eng, rel, cube.Spec{Agg: agg.Count}); err != nil {
		t.Fatal(err)
	}
	events := append([]mr.TraceEvent(nil), tracer.Events...)
	for i := range events {
		events[i].Time = time.Time{}
	}
	return events
}

// TestTraceDeterminismTable is the cross-algorithm trace-determinism table:
// for every algorithm, with and without an injected fault plan, the
// structured event stream (minus timestamps) must be identical at
// parallelism 1 and parallelism 8.
func TestTraceDeterminismTable(t *testing.T) {
	rel := data.GenBinomial(600, 4, 0.4, 31)
	faultPlans := []struct {
		name string
		spec string
	}{
		{"clean", ""},
		{"crash", "*:map:*:crash"},
		{"reduce-mid-emit", "*:reduce:*:mid-emit@3"},
	}
	for _, fp := range faultPlans {
		for _, a := range allAlgorithms {
			t.Run(fp.name+"/"+a.name, func(t *testing.T) {
				seq := runTrace(t, a.fn, rel, 1, fp.spec)
				par := runTrace(t, a.fn, rel, 8, fp.spec)
				if len(seq) == 0 {
					t.Fatal("no trace events emitted")
				}
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("trace streams differ: %d events sequential vs %d parallel",
						len(seq), len(par))
				}
				if fp.spec != "" {
					retries := 0
					for _, ev := range seq {
						if ev.Type == mr.EvTaskRetry {
							retries++
						}
					}
					if retries == 0 {
						t.Error("fault plan injected but no retry events traced")
					}
				}
			})
		}
	}
}
