package integration

import (
	"reflect"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// runTrace executes one algorithm with a SliceTracer attached and returns
// the event stream with the wall-clock timestamps (the only field outside
// the determinism contract) zeroed.
func runTrace(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int, faults string, slack float64) []mr.TraceEvent {
	t.Helper()
	plan, err := mr.ParseFaultPlan(faults)
	if err != nil {
		t.Fatal(err)
	}
	tracer := &mr.SliceTracer{}
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism,
		Faults: plan, SpeculativeSlack: slack, Tracer: tracer}, dfs.New(false))
	if _, err := fn(eng, rel, cube.Spec{Agg: agg.Count}); err != nil {
		t.Fatal(err)
	}
	events := append([]mr.TraceEvent(nil), tracer.Events...)
	for i := range events {
		events[i].Time = time.Time{}
	}
	return events
}

// TestTraceDeterminismTable is the cross-algorithm trace-determinism table:
// for every algorithm, with and without an injected fault plan, the
// structured event stream (minus timestamps) must be identical at
// parallelism 1 and parallelism 8.
func TestTraceDeterminismTable(t *testing.T) {
	rel := data.GenBinomial(600, 4, 0.4, 31)
	faultPlans := []struct {
		name  string
		spec  string
		slack float64
		want  []string // event types the stream must contain
	}{
		{"clean", "", 0, nil},
		{"crash", "*:map:*:crash", 0, []string{mr.EvTaskRetry}},
		{"reduce-mid-emit", "*:reduce:*:mid-emit@3", 0, []string{mr.EvTaskRetry}},
		{"node-crash", "*:node:1:node-crash", 0,
			[]string{mr.EvNodeCrash, mr.EvFetchFail}},
		{"speculate", "*:map:0:slow@2", 0.0005, []string{mr.EvSpeculate}},
	}
	for _, fp := range faultPlans {
		for _, a := range allAlgorithms {
			t.Run(fp.name+"/"+a.name, func(t *testing.T) {
				seq := runTrace(t, a.fn, rel, 1, fp.spec, fp.slack)
				par := runTrace(t, a.fn, rel, 8, fp.spec, fp.slack)
				if len(seq) == 0 {
					t.Fatal("no trace events emitted")
				}
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("trace streams differ: %d events sequential vs %d parallel",
						len(seq), len(par))
				}
				counts := map[string]int{}
				for _, ev := range seq {
					counts[ev.Type]++
				}
				for _, want := range fp.want {
					if counts[want] == 0 {
						t.Errorf("fault plan injected but no %q events traced (got %v)",
							want, counts)
					}
				}
			})
		}
	}
}

// runTraceSpill is runTrace with the spill pipeline configured.
func runTraceSpill(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int, leg spillLeg, dir string) []mr.TraceEvent {
	t.Helper()
	tracer := &mr.SliceTracer{}
	eng := mr.New(mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism,
		SpillBudgetBytes: leg.budget, SpillDir: dir,
		SpillCodec: leg.codec, MergeFanIn: leg.fanIn, Tracer: tracer}, dfs.New(false))
	if _, err := fn(eng, rel, cube.Spec{Agg: agg.Count}); err != nil {
		t.Fatal(err)
	}
	events := append([]mr.TraceEvent(nil), tracer.Events...)
	for i := range events {
		events[i].Time = time.Time{}
	}
	return events
}

// TestTraceSpillPipelineDeterminism extends the trace table with the spill
// pipeline: under a one-byte budget, the lz codec and a fan-in cap of 2,
// the event stream must be identical at parallelism 1 and 8 and must carry
// the pipeline's own events — spill (flush-enqueue), spill-flush (writer
// join, compressed bytes) and merge-pass (intermediate fan-in merge).
func TestTraceSpillPipelineDeterminism(t *testing.T) {
	rel := data.GenBinomial(600, 4, 0.4, 31)
	legs := []struct {
		leg  spillLeg
		want []string
	}{
		{spillLeg{budget: 512, codec: "lz"}, []string{mr.EvSpill, mr.EvSpillFlush}},
		{spillLeg{budget: 1, codec: "lz", fanIn: 2}, []string{mr.EvSpill, mr.EvSpillFlush, mr.EvMergePass}},
	}
	for _, tc := range legs {
		for _, a := range allAlgorithms {
			t.Run(tc.leg.String()+"/"+a.name, func(t *testing.T) {
				seq := runTraceSpill(t, a.fn, rel, 1, tc.leg, t.TempDir())
				par := runTraceSpill(t, a.fn, rel, 8, tc.leg, t.TempDir())
				if len(seq) == 0 {
					t.Fatal("no trace events emitted")
				}
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("trace streams differ: %d events sequential vs %d parallel",
						len(seq), len(par))
				}
				counts := map[string]int{}
				for _, ev := range seq {
					counts[ev.Type]++
				}
				for _, want := range tc.want {
					if counts[want] == 0 {
						t.Errorf("no %q events traced (got %v)", want, counts)
					}
				}
				// Spill and spill-flush pair up one-to-one: every enqueued
				// flush that survives to attempt completion is joined once.
				if counts[mr.EvSpillFlush] > counts[mr.EvSpill] {
					t.Errorf("%d spill-flush events exceed %d spill events",
						counts[mr.EvSpillFlush], counts[mr.EvSpill])
				}
			})
		}
	}
}
