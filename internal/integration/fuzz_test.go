package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
)

// FuzzCubeEquivalence fuzzes the relation shape and a fault coordinate and
// checks that SP-Cube, executed under the injected fault, still produces the
// exact brute-force cube. The fuzzer explores the space the differential
// oracle samples: distributions from all-duplicates to near-distinct, and
// faults across rounds, phases, tasks and kinds — including whole-node
// crashes (lost-map-output re-execution) and speculative races against
// injected stragglers.
func FuzzCubeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint16(60), uint8(0), uint8(0))
	f.Add(int64(7), uint8(3), uint8(1), uint16(200), uint8(1), uint8(5))
	f.Add(int64(9), uint8(4), uint8(6), uint16(120), uint8(2), uint8(9))
	f.Add(int64(3), uint8(1), uint8(2), uint16(30), uint8(3), uint8(2))
	f.Add(int64(5), uint8(2), uint8(4), uint16(90), uint8(4), uint8(1))     // node-crash
	f.Add(int64(11), uint8(3), uint8(2), uint16(150), uint8(132), uint8(4)) // slow + speculation
	f.Fuzz(func(t *testing.T, seed int64, dRaw, cardRaw uint8, nRaw uint16, kindRaw, targetRaw uint8) {
		d := 1 + int(dRaw)%4       // 1..4 dimensions
		card := 1 + int(cardRaw)%8 // all-duplicates .. moderately distinct
		n := 1 + int(nRaw)%300
		const workers = 4

		kinds := []string{"crash", "mid-emit@2", "slow@1", "oom", "node-crash"}
		kind := kinds[int(kindRaw)%len(kinds)]
		var spec string
		var slack float64
		if kind == "node-crash" {
			// Kill one failure domain per round: its stored map output is
			// re-executed and its reduce attempts re-placed.
			spec = fmt.Sprintf("*:node:%d:node-crash", int(targetRaw)%workers)
		} else {
			phase := "map"
			if targetRaw&1 == 1 {
				phase = "reduce"
			}
			task := "*"
			if idx := int(targetRaw>>1) % (workers + 2); idx <= workers {
				// spcube's skew round uses workers+1 reducers, so task indices
				// up to `workers` are all reachable.
				task = fmt.Sprint(idx)
			}
			spec = fmt.Sprintf("*:%s:%s:%s", phase, task, kind)
			if kind == "slow@1" && kindRaw&0x80 != 0 {
				// Race a speculative backup against the injected straggler
				// (1ms stall > 0.5ms slack).
				slack = 0.0005
			}
		}
		plan, err := mr.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("generated spec %q: %v", spec, err)
		}

		rel := cubetest.RandomRelation(rand.New(rand.NewSource(seed)), n, d, card)
		want := cube.Brute(rel, agg.Count)

		eng := mr.New(mr.Config{Workers: workers, Seed: 13,
			Faults: plan, MaxAttempts: 2, SpeculativeSlack: slack}, dfs.New(false))
		run, err := spalgo.Compute(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatalf("spec %q n=%d d=%d card=%d: %v", spec, n, d, card, err)
		}
		got, err := cube.CollectDFS(eng, run.OutputPrefix, d)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := want.Equal(got); !ok {
			t.Errorf("spec %q n=%d d=%d card=%d: faulted SP-Cube diverges from brute force: %s",
				spec, n, d, card, diff)
		}
	})
}
