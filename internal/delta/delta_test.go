package delta

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// combined returns base ∪ appends − deletes as a fresh relation.
func combined(base *relation.Relation, batch Batch) *relation.Relation {
	out := &relation.Relation{Schema: base.Schema, Dict: base.Dict}
	used := make(map[int]bool)
	for _, del := range batch.Delete {
		for i, t := range base.Tuples {
			if used[i] {
				continue
			}
			if relation.CompareProjected(t.Dims, del.Dims, uint32(1<<uint(len(t.Dims)))-1) == 0 && t.Measure == del.Measure {
				used[i] = true
				break
			}
		}
	}
	for i, t := range base.Tuples {
		if !used[i] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	out.Tuples = append(out.Tuples, batch.Append...)
	return out
}

// exactEqual requires bit-identical values for every group (the
// maintenance guarantee is byte-equality, not epsilon-equality).
func exactEqual(t *testing.T, want, got *cube.Result) {
	t.Helper()
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("group count: got %d, want %d", len(got.Groups), len(want.Groups))
	}
	for key, wv := range want.Groups {
		gv, ok := got.Groups[key]
		if !ok {
			t.Fatalf("missing group %q", key)
		}
		if gv != wv {
			t.Fatalf("group %q: got %v, want %v (not bit-identical)", key, gv, wv)
		}
	}
}

func TestDeltaAppendMatchesFullRecompute(t *testing.T) {
	for _, fn := range []agg.Func{agg.Count, agg.Sum, agg.Min, agg.Max} {
		t.Run(fn.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			base := cubetest.RandomRelation(rng, 300, 3, 6)
			m, err := New(base, Config{Agg: fn, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			batch := Batch{Append: cubetest.RandomRelation(rng, 30, 3, 6).Tuples}
			rnd, err := m.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			if rnd.Mode != "delta" || rnd.Reason != "mergeable" {
				t.Fatalf("mode = %s/%s, want delta/mergeable", rnd.Mode, rnd.Reason)
			}
			if rnd.Changes == nil {
				t.Fatal("delta cycle returned nil Changes")
			}
			exactEqual(t, cube.Brute(combined(base, batch), fn), m.Result())
		})
	}
}

func TestDeltaDeleteMatchesFullRecompute(t *testing.T) {
	for _, fn := range []agg.Func{agg.Count, agg.Sum} {
		t.Run(fn.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			base := cubetest.RandomRelation(rng, 300, 3, 5)
			m, err := New(base, Config{Agg: fn, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			batch := Batch{
				Append: cubetest.RandomRelation(rng, 20, 3, 5).Tuples,
				Delete: cloneTuples(base.Tuples[10:40]),
			}
			rnd, err := m.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			if rnd.Mode != "delta" {
				t.Fatalf("mode = %s (%s), want delta", rnd.Mode, rnd.Reason)
			}
			exactEqual(t, cube.Brute(combined(base, batch), fn), m.Result())
		})
	}
}

func TestRebuildReasons(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := cubetest.RandomRelation(rng, 200, 2, 4)
	appendBatch := Batch{Append: cubetest.RandomRelation(rng, 20, 2, 4).Tuples}

	t.Run("aggregate", func(t *testing.T) {
		m, err := New(base, Config{Agg: agg.Avg, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := m.Apply(appendBatch)
		if err != nil {
			t.Fatal(err)
		}
		if rnd.Mode != "rebuild" || rnd.Reason != "aggregate" {
			t.Fatalf("mode = %s/%s, want rebuild/aggregate", rnd.Mode, rnd.Reason)
		}
		if rnd.Changes != nil {
			t.Fatal("rebuild cycle must return nil Changes")
		}
		exactEqual(t, cube.Brute(combined(base, appendBatch), agg.Avg), m.Result())
	})

	t.Run("deletes-non-invertible", func(t *testing.T) {
		m, err := New(base, Config{Agg: agg.Min, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		batch := Batch{Delete: cloneTuples(base.Tuples[:5])}
		rnd, err := m.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		if rnd.Mode != "rebuild" || rnd.Reason != "deletes" {
			t.Fatalf("mode = %s/%s, want rebuild/deletes", rnd.Mode, rnd.Reason)
		}
		exactEqual(t, cube.Brute(combined(base, batch), agg.Min), m.Result())
	})

	t.Run("forced", func(t *testing.T) {
		m, err := New(base, Config{Workers: 4, RebuildThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := m.Apply(appendBatch)
		if err != nil {
			t.Fatal(err)
		}
		if rnd.Mode != "rebuild" || rnd.Reason != "forced" {
			t.Fatalf("mode = %s/%s, want rebuild/forced", rnd.Mode, rnd.Reason)
		}
		exactEqual(t, cube.Brute(combined(base, appendBatch), agg.Count), m.Result())
	})

	t.Run("drift", func(t *testing.T) {
		m, err := New(base, Config{Workers: 4, RebuildThreshold: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		// A batch from a disjoint, heavily repeated domain: new skewed
		// groups and shifted partition boundaries.
		shifted := cubetest.RandomRelation(rand.New(rand.NewSource(99)), 100, 2, 2)
		for i := range shifted.Tuples {
			for j := range shifted.Tuples[i].Dims {
				shifted.Tuples[i].Dims[j] += 1000
			}
		}
		batch := Batch{Append: shifted.Tuples}
		rnd, err := m.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		if rnd.Mode != "rebuild" || rnd.Reason != "drift" {
			t.Fatalf("mode = %s/%s (drift %v), want rebuild/drift", rnd.Mode, rnd.Reason, rnd.Drift)
		}
		if rnd.Drift <= 0 {
			t.Fatalf("drift = %v, want > 0", rnd.Drift)
		}
		exactEqual(t, cube.Brute(combined(base, batch), agg.Count), m.Result())
	})
}

func TestMultiRoundMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := cubetest.RandomRelation(rng, 200, 3, 5)
	m, err := New(base, Config{Agg: agg.Sum, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cur := combined(base, Batch{})
	for round := 0; round < 5; round++ {
		batch := Batch{Append: cubetest.RandomRelation(rng, 25, 3, 5).Tuples}
		if round%2 == 1 && cur.N() > 30 {
			batch.Delete = cloneTuples(cur.Tuples[:10])
		}
		if _, err := m.Apply(batch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cur = combined(cur, batch)
		exactEqual(t, cube.Brute(cur, agg.Sum), m.Result())
	}
	if m.Version() != 5 {
		t.Fatalf("Version = %d, want 5", m.Version())
	}
	if m.N() != cur.N() {
		t.Fatalf("N = %d, want %d", m.N(), cur.N())
	}
}

func TestIcebergPublishCrossesThreshold(t *testing.T) {
	rel := relation.New([]string{"a"}, "m")
	rel.AppendStrings([]string{"x"}, 1)
	rel.AppendStrings([]string{"x"}, 2)
	rel.AppendStrings([]string{"y"}, 3)
	m, err := New(rel, Config{Workers: 2, MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// y has one tuple: below MinSup, not published.
	res := m.Result()
	exactEqual(t, cube.BruteSpec(rel, cube.Spec{Agg: agg.Count, MinSup: 2}), res)

	// Appending a second y crosses it into the published cube.
	yCode, _ := rel.Dict.Code(0, "y")
	rnd, err := m.Apply(Batch{Append: []relation.Tuple{{Dims: []relation.Value{yCode}, Measure: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	sawSet := false
	for _, c := range rnd.Changes {
		if !c.Delete && c.Value == 2 {
			sawSet = true
		}
	}
	if !sawSet {
		t.Fatalf("expected a set-change for the group crossing MinSup, got %+v", rnd.Changes)
	}

	// Deleting both y tuples drops it back out.
	del := []relation.Tuple{
		{Dims: []relation.Value{yCode}, Measure: 3},
		{Dims: []relation.Value{yCode}, Measure: 9},
	}
	rnd, err = m.Apply(Batch{Delete: del})
	if err != nil {
		t.Fatal(err)
	}
	sawDel := false
	for _, c := range rnd.Changes {
		if c.Delete {
			sawDel = true
		}
	}
	if !sawDel {
		t.Fatalf("expected delete-changes for groups leaving the cube, got %+v", rnd.Changes)
	}
	final := &relation.Relation{Schema: rel.Schema, Dict: rel.Dict, Tuples: rel.Tuples[:2]}
	exactEqual(t, cube.BruteSpec(final, cube.Spec{Agg: agg.Count, MinSup: 2}), m.Result())
}

func TestApplyStringsDictionaryCopyOnWrite(t *testing.T) {
	rel := relation.New([]string{"a", "b"}, "m")
	rel.AppendStrings([]string{"u", "v"}, 1)
	rel.AppendStrings([]string{"w", "v"}, 2)
	m, err := New(rel, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	oldDict := m.Relation().Dict
	oldCard := oldDict.Cardinality(0)

	if _, err := m.ApplyStrings([]Row{{Dims: []string{"new", "v"}, Measure: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if oldDict.Cardinality(0) != oldCard {
		t.Fatal("old dictionary mutated by ApplyStrings")
	}
	newDict := m.Relation().Dict
	if newDict == oldDict {
		t.Fatal("dictionary not swapped copy-on-write")
	}
	if _, ok := newDict.Code(0, "new"); !ok {
		t.Fatal("new value missing from swapped dictionary")
	}

	// Deletes must resolve against the dictionary.
	if _, err := m.ApplyStrings(nil, []Row{{Dims: []string{"nope", "v"}, Measure: 1}}); err == nil {
		t.Fatal("delete of unknown dictionary value must fail")
	}
	if _, err := m.ApplyStrings(nil, []Row{{Dims: []string{"u", "v"}, Measure: 1}}); err != nil {
		t.Fatal(err)
	}
	exactEqual(t, cube.Brute(m.Relation(), agg.Count), m.Result())
}

func TestApplyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := cubetest.RandomRelation(rng, 50, 2, 4)
	m, err := New(base, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(Batch{}); err == nil {
		t.Fatal("empty batch must fail")
	}
	if _, err := m.Apply(Batch{Delete: []relation.Tuple{{Dims: []relation.Value{999, 999}, Measure: 0}}}); err == nil {
		t.Fatal("delete of absent tuple must fail")
	}
	if _, err := m.Apply(Batch{Append: []relation.Tuple{{Dims: []relation.Value{1}, Measure: 0}}}); err == nil {
		t.Fatal("append with wrong arity must fail")
	}
	if _, err := New(&relation.Relation{}, Config{}); err == nil {
		t.Fatal("empty relation must fail")
	}
	if _, err := New(base, Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestFailedCycleLeavesStateUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := cubetest.RandomRelation(rng, 100, 2, 4)
	plan, err := mr.ParseFaultPlan("*:map:*:crash")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(base, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Result()
	beforeN := m.N()

	// Arm a permanent fault (MaxAttempts 1: the first crash is final).
	m.cfg.Faults = plan
	m.cfg.MaxAttempts = 1
	if _, err := m.Apply(Batch{Append: cubetest.RandomRelation(rng, 10, 2, 4).Tuples}); err == nil {
		t.Fatal("cycle under a permanent fault must fail")
	}
	if m.N() != beforeN {
		t.Fatalf("failed cycle changed relation: %d tuples, want %d", m.N(), beforeN)
	}
	exactEqual(t, before, m.Result())
	if m.Version() != 0 {
		t.Fatalf("failed cycle recorded a round: Version = %d", m.Version())
	}

	// Disarm and retry: the same batch applies cleanly.
	m.cfg.Faults = nil
	m.cfg.MaxAttempts = 0
	batch := Batch{Append: cubetest.RandomRelation(rand.New(rand.NewSource(29)), 10, 2, 4).Tuples}
	if _, err := m.Apply(batch); err != nil {
		t.Fatal(err)
	}
	exactEqual(t, cube.Brute(combined(base, batch), agg.Count), m.Result())
}

func TestMetricsAndTraceAnnotation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := cubetest.RandomRelation(rng, 100, 2, 4)
	tracer := &mr.SliceTracer{}
	m, err := New(base, Config{Agg: agg.Sum, Workers: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	batch := Batch{Append: cubetest.RandomRelation(rng, 10, 2, 4).Tuples}
	rnd, err := m.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}

	metrics := m.Metrics()
	if len(metrics.Rounds) == 0 {
		t.Fatal("no engine rounds recorded")
	}
	for i, r := range metrics.Rounds {
		if r.Maint == nil {
			t.Fatalf("round %d missing Maint annotation", i)
		}
	}
	last := metrics.Rounds[len(metrics.Rounds)-1].Maint
	if last.Round != 1 || last.Mode != "delta" || last.Appended != len(batch.Append) {
		t.Fatalf("bad Maint annotation: %+v", last)
	}
	if rnd.Metrics.Rounds[0].Maint.Mode != "delta" {
		t.Fatalf("cycle metrics not annotated: %+v", rnd.Metrics.Rounds[0].Maint)
	}

	var starts, ends int
	var seq []int64
	for _, ev := range tracer.Events {
		switch ev.Type {
		case mr.EvMaintStart:
			starts++
			seq = append(seq, ev.Seq)
			if ev.Mode == "" {
				t.Fatal("maint-start missing Mode")
			}
		case mr.EvMaintEnd:
			ends++
			seq = append(seq, ev.Seq)
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("maint events: %d starts, %d ends, want 2/2 (initial build + cycle)", starts, ends)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("maintainer Seq not consecutive: %v", seq)
		}
	}
}

func TestSchemaMetricsDocument(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	base := cubetest.RandomRelation(rng, 80, 2, 4)
	m, err := New(base, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(Batch{Append: cubetest.RandomRelation(rng, 8, 2, 4).Tuples}); err != nil {
		t.Fatal(err)
	}
	metrics := m.Metrics()
	var sb strings.Builder
	if err := mr.ExportMetrics(&sb, &metrics); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	want := fmt.Sprintf(`"schemaVersion": %d`, mr.MetricsSchemaVersion)
	if !strings.Contains(doc, want) {
		t.Fatalf("document not at schema v%d:\n%s", mr.MetricsSchemaVersion, doc[:200])
	}
	if !strings.Contains(doc, `"maint"`) || !strings.Contains(doc, `"mode": "delta"`) {
		t.Fatal("document missing maint annotations")
	}
}
