// Package delta maintains a computed data cube incrementally under batches
// of appended and deleted tuples, the maintenance story HaCube brings to
// MapReduce cube computation: instead of recomputing the cube over the full
// relation per batch, run a small delta-cube MR job over just the batch and
// merge its result into the stored cube.
//
// Merging happens on *final* aggregate values (the stored cube holds no
// partial states), which is sound exactly for the functions whose finals
// are themselves distributive: count and sum finals add (and subtract, so
// deletes work), min and max finals combine by extreme (appends only —
// deleting the minimum reveals an unknown runner-up). For every other
// aggregate, and for batches whose SP-Sketch has drifted too far from the
// base sketch (the partitioning decisions of the base cube no longer
// describe the merged relation), the maintainer falls back to a full
// rebuild. The decision, its reason and the measured drift are recorded on
// every cycle, annotated into the engine metrics (schema v3 "maint"
// rounds) and emitted as maint-start/maint-end trace events.
//
// Deletes are counted: the maintainer keeps a companion cardinality cube
// (the group's tuple count) alongside the value cube, so a group whose
// count reaches zero is removed rather than left at a stale value, and
// iceberg thresholds (MinSup) are re-evaluated per cycle against the
// maintained counts.
//
// The maintainer is deliberately storage-agnostic: Apply returns the exact
// set of changed c-groups (or nil for a rebuild), and the serving layer
// turns that into an atomic in-place index patch. All MR jobs of a cycle
// run before any state is mutated, so a failed cycle (injected faults with
// exhausted retries) leaves the maintained cube — and anything serving it —
// untouched.
package delta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/algo/pipesort"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// DefaultRebuildThreshold is the sketch-drift level above which a delta
// batch forces a full rebuild when Config.RebuildThreshold is unset.
const DefaultRebuildThreshold = 0.6

// Config parameterizes a Maintainer.
type Config struct {
	// Algorithm names the cube algorithm used for delta jobs and rebuilds:
	// sp-cube (default), naive, mr-cube, hive, pipesort.
	Algorithm string
	// Agg is the maintained aggregate (default count).
	Agg agg.Func
	// MinSup is the published iceberg threshold: Result and Apply's change
	// lists expose only groups with at least MinSup contributing tuples
	// (values below 2 publish the full cube). The maintainer always
	// maintains the full cube internally so groups can cross the threshold
	// in either direction across batches.
	MinSup int
	// Workers is the simulated cluster size (default 8).
	Workers int
	// Parallelism, Seed, Faults, MaxAttempts, SpeculativeSlack and
	// TaskTimeout configure the engines the maintenance jobs run on, with
	// mr.Config semantics.
	Parallelism      int
	Seed             int64
	Faults           *mr.FaultPlan
	MaxAttempts      int
	SpeculativeSlack float64
	TaskTimeout      float64
	// SpillBudgetBytes, SpillDir, SpillCodec and MergeFanIn configure the
	// engines' out-of-core shuffle, with mr.Config semantics (0 keeps
	// everything in memory; empty codec means raw; 0 fan-in means the
	// engine default).
	SpillBudgetBytes int64
	SpillDir         string
	SpillCodec       string
	MergeFanIn       int
	// RebuildThreshold is the sketch-drift level in [0,1] above which a
	// batch is applied by full rebuild instead of delta-merge; 0 means
	// DefaultRebuildThreshold, negative forces rebuild on every batch.
	RebuildThreshold float64
	// Tracer receives the engines' lifecycle events plus the maintainer's
	// maint-start/maint-end cycle events (numbered by the maintainer's own
	// sequence counter; engine sequences restart per cycle).
	Tracer mr.Tracer
	// Context, when set, cancels in-flight maintenance jobs: Apply returns
	// the context's error at the next attempt boundary. Maintenance engines
	// always run the local execution backend — delta jobs are small and
	// frequent, a poor fit for per-job worker-process spawn costs.
	Context context.Context
}

// Batch is one maintenance batch: tuples to append and tuples to delete.
// Deleted tuples must exist in the maintained relation (multiset
// semantics: deleting a tuple present twice removes one occurrence).
type Batch struct {
	Append []relation.Tuple
	Delete []relation.Tuple
}

// Row is a string-valued input row for ApplyStrings.
type Row struct {
	Dims    []string
	Measure int64
}

// Change is one published c-group whose value changed in a cycle: the
// group's encoded key and its new value, or Delete for a group that left
// the published cube (count reached zero or fell below MinSup).
type Change struct {
	Key    string
	Value  float64
	Delete bool
}

// Round records one applied maintenance cycle.
type Round struct {
	// Round is the 1-based cycle ordinal.
	Round int
	// Mode is "delta" or "rebuild"; Reason explains the choice
	// ("mergeable", "aggregate", "deletes", "drift", "forced").
	Mode   string
	Reason string
	// Drift is the batch's sketch drift vs. the base sketch.
	Drift float64
	// Appended/Deleted count the batch's tuples.
	Appended int
	Deleted  int
	// Changes lists the published groups this cycle changed, sorted by
	// key; nil when the cycle rebuilt the cube (everything may have moved).
	Changes []Change
	// Metrics holds the cycle's MR rounds, annotated with MaintInfo.
	Metrics mr.JobMetrics
}

// Maintainer owns a relation and its maintained cube. All methods are safe
// for concurrent use; Apply serializes cycles.
type Maintainer struct {
	mu  sync.Mutex
	cfg Config
	rel *relation.Relation

	// vals is the full (non-iceberg) cube: group key → final value; cnts
	// the companion cardinality cube. For count aggregates cnts mirrors
	// vals instead of running a second job.
	vals map[string]float64
	cnts map[string]int64

	// baseSketch is the SP-Sketch of the relation as of the last full
	// (re)build; batch drift is measured against it.
	baseSketch *sketch.Sketch

	metrics mr.JobMetrics
	rounds  []Round
	seq     int64 // maintainer-scoped trace sequence
}

// New builds the initial cube over rel (cycle 0, always a full build) and
// returns a maintainer owning a private copy of the relation; the caller's
// rel is not retained.
func New(rel *relation.Relation, cfg Config) (*Maintainer, error) {
	if rel == nil || rel.N() == 0 {
		return nil, errors.New("delta: empty relation")
	}
	if cfg.Agg == nil {
		cfg.Agg = agg.Count
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "sp-cube"
	}
	if cfg.RebuildThreshold == 0 {
		cfg.RebuildThreshold = DefaultRebuildThreshold
	}
	if _, err := computeFunc(cfg); err != nil {
		return nil, err
	}

	own := &relation.Relation{
		Schema: rel.Schema,
		Tuples: append([]relation.Tuple(nil), rel.Tuples...),
	}
	if rel.Dict != nil {
		own.Dict = rel.Dict.Clone()
	}
	m := &Maintainer{cfg: cfg, rel: own}
	info := &mr.MaintInfo{Round: 0, Mode: "rebuild", Reason: "initial", Appended: own.N()}
	m.traceMaint(mr.TraceEvent{Type: mr.EvMaintStart, Round: 0, Job: "maintenance",
		Mode: info.Mode, Records: int64(own.N())})
	vals, cnts, metrics, err := m.fullBuild(own)
	if err != nil {
		m.traceMaint(mr.TraceEvent{Type: mr.EvMaintEnd, Round: 0, Job: "maintenance",
			Failed: true, Err: err.Error()})
		return nil, err
	}
	m.vals, m.cnts = vals, cnts
	m.baseSketch = sketch.BuildExact(own, cfg.Workers, memTuples(own.N(), cfg.Workers))
	annotate(&metrics, info)
	m.metrics.Rounds = append(m.metrics.Rounds, metrics.Rounds...)
	m.traceMaint(mr.TraceEvent{Type: mr.EvMaintEnd, Round: 0, Job: "maintenance",
		Records: int64(len(vals))})
	return m, nil
}

// Apply runs one maintenance cycle over the batch. On error the maintained
// cube, relation and sketch are unchanged.
func (m *Maintainer) Apply(batch Batch) (*Round, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyLocked(batch, nil)
}

// ApplyStrings is Apply for string-valued rows: appended rows extend the
// dictionary (copy-on-write, so concurrent readers of previously returned
// dictionaries are unaffected), deleted rows must resolve to existing
// dictionary codes and tuples.
func (m *Maintainer) ApplyStrings(appends, deletes []Row) (*Round, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rel.Dict == nil {
		return nil, errors.New("delta: ApplyStrings on relation without dictionary")
	}
	d := m.rel.D()
	dict := m.rel.Dict.Clone()
	var batch Batch
	for i, row := range appends {
		if len(row.Dims) != d {
			return nil, fmt.Errorf("delta: append row %d has %d dims, schema has %d", i, len(row.Dims), d)
		}
		enc := make([]relation.Value, d)
		for j, s := range row.Dims {
			enc[j] = dict.Encode(j, s)
		}
		batch.Append = append(batch.Append, relation.Tuple{Dims: enc, Measure: row.Measure})
	}
	for i, row := range deletes {
		if len(row.Dims) != d {
			return nil, fmt.Errorf("delta: delete row %d has %d dims, schema has %d", i, len(row.Dims), d)
		}
		enc := make([]relation.Value, d)
		for j, s := range row.Dims {
			code, ok := dict.Code(j, s)
			if !ok {
				return nil, fmt.Errorf("delta: delete row %d: unknown value %q in dimension %d", i, s, j)
			}
			enc[j] = code
		}
		batch.Delete = append(batch.Delete, relation.Tuple{Dims: enc, Measure: row.Measure})
	}
	return m.applyLocked(batch, dict)
}

// applyLocked runs one cycle; newDict, when non-nil, replaces the
// relation's dictionary on success (staged by ApplyStrings).
func (m *Maintainer) applyLocked(batch Batch, newDict *relation.Dictionary) (*Round, error) {
	d := m.rel.D()
	for i, t := range batch.Append {
		if len(t.Dims) != d {
			return nil, fmt.Errorf("delta: append tuple %d has %d dims, schema has %d", i, len(t.Dims), d)
		}
	}
	deleteIdx, err := m.locateDeletes(batch.Delete)
	if err != nil {
		return nil, err
	}
	if len(batch.Append) == 0 && len(batch.Delete) == 0 {
		return nil, errors.New("delta: empty batch")
	}

	rnd := Round{
		Round:    len(m.rounds) + 1,
		Appended: len(batch.Append),
		Deleted:  len(batch.Delete),
	}
	rnd.Mode, rnd.Reason, rnd.Drift = m.decide(batch)
	info := &mr.MaintInfo{
		Round: rnd.Round, Mode: rnd.Mode, Reason: rnd.Reason, Drift: rnd.Drift,
		Appended: rnd.Appended, Deleted: rnd.Deleted,
	}
	m.traceMaint(mr.TraceEvent{Type: mr.EvMaintStart, Round: rnd.Round, Job: "maintenance",
		Mode: rnd.Mode, Drift: rnd.Drift, Records: int64(rnd.Appended), Bytes: int64(rnd.Deleted)})

	var applyErr error
	if rnd.Mode == "delta" {
		applyErr = m.applyDelta(batch, deleteIdx, &rnd)
	} else {
		applyErr = m.applyRebuild(batch, deleteIdx, &rnd)
	}
	if applyErr != nil {
		m.traceMaint(mr.TraceEvent{Type: mr.EvMaintEnd, Round: rnd.Round, Job: "maintenance",
			Failed: true, Err: applyErr.Error()})
		return nil, applyErr
	}
	if newDict != nil {
		m.rel.Dict = newDict
	}
	annotate(&rnd.Metrics, info)
	m.metrics.Rounds = append(m.metrics.Rounds, rnd.Metrics.Rounds...)
	m.rounds = append(m.rounds, rnd)
	m.traceMaint(mr.TraceEvent{Type: mr.EvMaintEnd, Round: rnd.Round, Job: "maintenance",
		Records: int64(len(rnd.Changes))})
	out := rnd
	return &out, nil
}

// decide picks the cycle's mode. Delta-merge requires mergeable finals,
// invertible finals when the batch deletes, and bounded sketch drift.
func (m *Maintainer) decide(batch Batch) (mode, reason string, drift float64) {
	drift = m.batchDrift(batch)
	if _, ok := agg.FinalMerger(m.cfg.Agg); !ok {
		return "rebuild", "aggregate", drift
	}
	if len(batch.Delete) > 0 {
		if _, ok := agg.FinalInverter(m.cfg.Agg); !ok {
			return "rebuild", "deletes", drift
		}
	}
	if m.cfg.RebuildThreshold < 0 {
		return "rebuild", "forced", drift
	}
	if drift > m.cfg.RebuildThreshold {
		return "rebuild", "drift", drift
	}
	return "delta", "mergeable", drift
}

// batchDrift measures the appended tuples' sketch drift against the base
// sketch (a pure-delete batch does not shift the value distribution the
// base partitioning was derived from in a way a sketch of the deleted
// tuples would measure; it scores 0).
func (m *Maintainer) batchDrift(batch Batch) float64 {
	if len(batch.Append) == 0 || m.baseSketch == nil {
		return 0
	}
	deltaRel := &relation.Relation{Schema: m.rel.Schema, Tuples: batch.Append}
	n := m.rel.N()
	mem := memTuples(n, m.cfg.Workers)
	// Scale the skew threshold to the batch — a group holding the same
	// fraction of the batch as a skewed group holds of the base counts as
	// skewed in the delta sketch — plus a 3σ Poisson margin so small
	// batches' sampling noise does not masquerade as fresh skew.
	scaled := float64(mem) * float64(len(batch.Append)) / float64(maxInt(n, 1))
	dm := int(scaled + 3*math.Sqrt(scaled))
	deltaSketch := sketch.BuildExact(deltaRel, m.cfg.Workers, maxInt(dm, 1))
	return sketch.Drift(m.baseSketch, deltaSketch)
}

// locateDeletes resolves the batch's deleted tuples to positions in the
// relation (multiset semantics), failing on absent tuples.
func (m *Maintainer) locateDeletes(dels []relation.Tuple) (map[int]bool, error) {
	if len(dels) == 0 {
		return nil, nil
	}
	d := m.rel.D()
	byKey := make(map[string][]int)
	var buf []byte
	for i, t := range m.rel.Tuples {
		buf = relation.EncodeTuple(buf[:0], t)
		byKey[string(buf)] = append(byKey[string(buf)], i)
	}
	idx := make(map[int]bool, len(dels))
	for i, t := range dels {
		if len(t.Dims) != d {
			return nil, fmt.Errorf("delta: delete tuple %d has %d dims, schema has %d", i, len(t.Dims), d)
		}
		buf = relation.EncodeTuple(buf[:0], t)
		avail := byKey[string(buf)]
		if len(avail) == 0 {
			return nil, fmt.Errorf("delta: delete tuple %d not present in relation", i)
		}
		idx[avail[len(avail)-1]] = true
		byKey[string(buf)] = avail[:len(avail)-1]
	}
	return idx, nil
}

// applyDelta computes delta cubes over the appended and deleted tuples and
// merges them into the stored cube on finals. All MR jobs complete before
// any state is mutated.
func (m *Maintainer) applyDelta(batch Batch, deleteIdx map[int]bool, rnd *Round) error {
	merge, _ := agg.FinalMerger(m.cfg.Agg)
	invert, _ := agg.FinalInverter(m.cfg.Agg)

	addVals, addCnts, err := m.cubeOver(batch.Append, &rnd.Metrics)
	if err != nil {
		return fmt.Errorf("delta: append job: %w", err)
	}
	delVals, delCnts, err := m.cubeOver(batch.Delete, &rnd.Metrics)
	if err != nil {
		return fmt.Errorf("delta: delete job: %w", err)
	}

	// Commit point: all jobs succeeded, mutate state.
	touched := make(map[string]bool, len(addVals)+len(delVals))
	for key, dv := range addVals {
		touched[key] = true
		if _, exists := m.cnts[key]; exists {
			m.vals[key] = merge(m.vals[key], dv)
		} else {
			m.vals[key] = dv
		}
		m.cnts[key] += addCnts[key]
	}
	for key, dv := range delVals {
		touched[key] = true
		m.cnts[key] -= delCnts[key]
		if m.cnts[key] <= 0 {
			delete(m.cnts, key)
			delete(m.vals, key)
		} else {
			m.vals[key] = invert(m.vals[key], dv)
		}
	}
	m.commitRelation(batch, deleteIdx)

	minSup := m.minSup()
	keys := make([]string, 0, len(touched))
	for key := range touched {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	rnd.Changes = make([]Change, 0, len(keys))
	for _, key := range keys {
		if cnt, ok := m.cnts[key]; ok && cnt >= minSup {
			rnd.Changes = append(rnd.Changes, Change{Key: key, Value: m.vals[key]})
		} else {
			rnd.Changes = append(rnd.Changes, Change{Key: key, Delete: true})
		}
	}
	return nil
}

// applyRebuild recomputes the full cube over the post-batch relation. All
// MR jobs complete before any state is mutated; Changes stays nil.
func (m *Maintainer) applyRebuild(batch Batch, deleteIdx map[int]bool, rnd *Round) error {
	next := &relation.Relation{Schema: m.rel.Schema, Dict: m.rel.Dict}
	next.Tuples = make([]relation.Tuple, 0, m.rel.N()+len(batch.Append)-len(deleteIdx))
	for i, t := range m.rel.Tuples {
		if !deleteIdx[i] {
			next.Tuples = append(next.Tuples, t)
		}
	}
	next.Tuples = append(next.Tuples, cloneTuples(batch.Append)...)
	if next.N() == 0 {
		return errors.New("delta: batch deletes every tuple; refusing to rebuild an empty cube")
	}

	vals, cnts, metrics, err := m.fullBuild(next)
	if err != nil {
		return fmt.Errorf("delta: rebuild: %w", err)
	}
	rnd.Metrics.Rounds = append(rnd.Metrics.Rounds, metrics.Rounds...)

	m.vals, m.cnts = vals, cnts
	m.rel.Tuples = next.Tuples
	m.baseSketch = sketch.BuildExact(next, m.cfg.Workers, memTuples(next.N(), m.cfg.Workers))
	return nil
}

// commitRelation applies the batch's tuple changes to the owned relation.
func (m *Maintainer) commitRelation(batch Batch, deleteIdx map[int]bool) {
	if len(deleteIdx) > 0 {
		kept := m.rel.Tuples[:0]
		for i, t := range m.rel.Tuples {
			if !deleteIdx[i] {
				kept = append(kept, t)
			}
		}
		m.rel.Tuples = kept
	}
	m.rel.Tuples = append(m.rel.Tuples, cloneTuples(batch.Append)...)
}

// fullBuild computes the value cube (and, for non-count aggregates, the
// companion count cube) over rel.
func (m *Maintainer) fullBuild(rel *relation.Relation) (map[string]float64, map[string]int64, mr.JobMetrics, error) {
	var metrics mr.JobMetrics
	vals, cnts, err := m.runJobs(rel, &metrics)
	return vals, cnts, metrics, err
}

// cubeOver runs the maintenance jobs over a tuple batch, returning empty
// maps for an empty batch without spinning up an engine.
func (m *Maintainer) cubeOver(tuples []relation.Tuple, metrics *mr.JobMetrics) (map[string]float64, map[string]int64, error) {
	if len(tuples) == 0 {
		return map[string]float64{}, map[string]int64{}, nil
	}
	rel := &relation.Relation{Schema: m.rel.Schema, Tuples: tuples}
	return m.runJobs(rel, metrics)
}

// runJobs executes the value-cube job (and count-cube job when the
// aggregate is not count) over rel, appending their rounds to metrics.
func (m *Maintainer) runJobs(rel *relation.Relation, metrics *mr.JobMetrics) (map[string]float64, map[string]int64, error) {
	fn, err := computeFunc(m.cfg)
	if err != nil {
		return nil, nil, err
	}
	vals, valMetrics, err := m.runOne(fn, rel, m.cfg.Agg)
	if err != nil {
		return nil, nil, err
	}
	metrics.Rounds = append(metrics.Rounds, valMetrics.Rounds...)

	cnts := make(map[string]int64, len(vals))
	if m.cfg.Agg.Name() == "count" {
		for key, v := range vals {
			cnts[key] = int64(v)
		}
		return vals, cnts, nil
	}
	counts, cntMetrics, err := m.runOne(fn, rel, agg.Count)
	if err != nil {
		return nil, nil, err
	}
	metrics.Rounds = append(metrics.Rounds, cntMetrics.Rounds...)
	for key, v := range counts {
		cnts[key] = int64(v)
	}
	return vals, cnts, nil
}

// runOne executes one cube job on a fresh engine and collects its output.
func (m *Maintainer) runOne(fn cube.ComputeFunc, rel *relation.Relation, f agg.Func) (map[string]float64, mr.JobMetrics, error) {
	eng := mr.New(mr.Config{
		Workers:          m.cfg.Workers,
		Seed:             uint64(m.cfg.Seed),
		Parallelism:      m.cfg.Parallelism,
		Faults:           m.cfg.Faults,
		MaxAttempts:      m.cfg.MaxAttempts,
		SpeculativeSlack: m.cfg.SpeculativeSlack,
		TaskTimeout:      m.cfg.TaskTimeout,
		SpillBudgetBytes: m.cfg.SpillBudgetBytes,
		SpillDir:         m.cfg.SpillDir,
		SpillCodec:       m.cfg.SpillCodec,
		MergeFanIn:       m.cfg.MergeFanIn,
		Tracer:           m.cfg.Tracer,
		Context:          m.cfg.Context,
	}, dfs.New(false))
	run, err := fn(eng, rel, cube.Spec{Agg: f})
	if err != nil {
		return nil, mr.JobMetrics{}, err
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		return nil, mr.JobMetrics{}, err
	}
	return res.Groups, run.Metrics, nil
}

// Result returns a snapshot of the published (iceberg-filtered) cube.
func (m *Maintainer) Result() *cube.Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	minSup := m.minSup()
	out := &cube.Result{D: m.rel.D(), Groups: make(map[string]float64, len(m.vals))}
	for key, v := range m.vals {
		if m.cnts[key] >= minSup {
			out.Groups[key] = v
		}
	}
	return out
}

// Relation returns the maintained relation. The returned value is live:
// callers must not mutate it, and must tolerate Apply swapping its
// dictionary (old dictionary pointers stay valid and immutable).
func (m *Maintainer) Relation() *relation.Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rel
}

// N returns the maintained relation's current tuple count.
func (m *Maintainer) N() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rel.N()
}

// Version returns the number of applied maintenance cycles.
func (m *Maintainer) Version() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rounds)
}

// Rounds returns the applied cycles, oldest first.
func (m *Maintainer) Rounds() []Round {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Round(nil), m.rounds...)
}

// Metrics returns the accumulated engine metrics of every cycle, each
// round annotated with its cycle's MaintInfo (schema v3).
func (m *Maintainer) Metrics() mr.JobMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return mr.JobMetrics{Rounds: append([]mr.RoundMetrics(nil), m.metrics.Rounds...)}
}

func (m *Maintainer) minSup() int64 {
	if m.cfg.MinSup < 2 {
		return 1
	}
	return int64(m.cfg.MinSup)
}

// traceMaint emits a maintainer-scoped trace event.
func (m *Maintainer) traceMaint(ev mr.TraceEvent) {
	if m.cfg.Tracer == nil {
		return
	}
	ev.Seq = m.seq
	m.seq++
	ev.Time = time.Now()
	ev.Task = -1
	m.cfg.Tracer.TraceEvent(ev)
}

// annotate attaches the cycle's MaintInfo to every engine round it ran.
func annotate(metrics *mr.JobMetrics, info *mr.MaintInfo) {
	for i := range metrics.Rounds {
		metrics.Rounds[i].Maint = info
	}
}

// computeFunc resolves the configured algorithm. Hive runs with its
// reducer-OOM failure disabled: maintenance must not wedge on a batch the
// model would refuse, and correctness is identical.
func computeFunc(cfg Config) (cube.ComputeFunc, error) {
	seed := cfg.Seed
	switch cfg.Algorithm {
	case "sp-cube", "spcube", "sp":
		return func(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
			return spalgo.ComputeOpts(eng, rel, spec, spalgo.Options{Seed: seed})
		}, nil
	case "naive":
		return naive.Compute, nil
	case "mr-cube", "mrcube", "pig":
		return func(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
			return mrcube.ComputeOpts(eng, rel, spec, mrcube.Options{Seed: seed})
		}, nil
	case "hive":
		return func(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
			return hivecube.ComputeOpts(eng, rel, spec, hivecube.Options{DisableOOM: true})
		}, nil
	case "pipesort":
		return pipesort.Compute, nil
	}
	return nil, fmt.Errorf("delta: unknown algorithm %q (want sp-cube, naive, mr-cube, hive, pipesort)", cfg.Algorithm)
}

func cloneTuples(ts []relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func memTuples(n, k int) int {
	m := n / maxInt(k, 1)
	return maxInt(m, 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
