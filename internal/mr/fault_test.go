package mr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// faultTestJob is a side-effect-free word count: all results flow through
// the engine (EmitKV, EmitSide, collected output), never through captured
// state, so a faulted run can be compared bit-for-bit to a fault-free one.
func faultTestJob() *Job {
	return &Job{
		Name:          "faultwc",
		CollectOutput: true,
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			ctx.Emit(fmt.Sprintf("w%03d", t.Dims[0]), []byte{1})
		},
		Combine: func(key string, vals [][]byte) [][]byte {
			var total int64
			for _, v := range vals {
				total += int64(v[0])
			}
			return [][]byte{binary.AppendVarint(nil, total)}
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
			ctx.EmitSide(key, binary.AppendVarint(nil, total))
		},
	}
}

type faultRun struct {
	metrics RoundMetrics
	output  []Pair
	sum     uint64
	recs    int64
	err     error
}

// runFaulted executes the fault-test word count on a 4-worker engine with
// the given plan and returns everything a differential comparison needs.
// The DFS runs in store mode so reduce-attempt rollback of real bytes is
// exercised, not just the counters.
func runFaulted(t *testing.T, plan *FaultPlan, maxAttempts, parallelism int) faultRun {
	t.Helper()
	return runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: parallelism,
		Faults: plan, MaxAttempts: maxAttempts})
}

// runFaultedCfg is runFaulted with full control over the engine config, for
// tests that need the recovery knobs (SpeculativeSlack, TaskTimeout, Nodes).
func runFaultedCfg(t *testing.T, cfg Config) faultRun {
	t.Helper()
	words := strings.Fields(strings.Repeat("a b c d e f g a b a ", 50))
	tuples, _ := tuplesFromWords(words)
	fs := dfs.New(false)
	eng := New(cfg, fs)
	res, err := eng.RunTuples(faultTestJob(), tuples)
	return faultRun{
		metrics: res.Metrics,
		output:  res.Output,
		sum:     fs.TotalChecksum(""),
		recs:    fs.TotalRecords(""),
		err:     err,
	}
}

func mustPlan(t *testing.T, spec string) *FaultPlan {
	t.Helper()
	plan, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
	}
	return plan
}

// stripRecovery removes wall-clock and recovery accounting — the only
// fields the determinism contract excludes — so a faulted run's metrics can
// be compared to a fault-free run's.
func stripRecovery(rm RoundMetrics) RoundMetrics {
	out := stripWall(rm)
	out.Retries, out.RetryWallSeconds, out.WastedBytes = 0, 0, 0
	out.MapReexecutions, out.FetchFailures = 0, 0
	out.SpeculativeLaunched, out.SpeculativeWon, out.SpeculativeKilled = 0, 0, 0
	out.SpeculativeWallSeconds = 0
	for _, tasks := range [][]TaskMetrics{out.Mappers, out.Reducers} {
		for i := range tasks {
			tasks[i].Attempts, tasks[i].RetryWallSeconds, tasks[i].WastedBytes = 0, 0, 0
			tasks[i].Reexecutions, tasks[i].FetchFailures = 0, 0
			tasks[i].SpeculativeLaunched, tasks[i].SpeculativeWon, tasks[i].SpeculativeKilled = 0, 0, 0
			tasks[i].SpeculativeWallSeconds = 0
		}
	}
	return out
}

// stripTimes removes only real-time fields (WallSeconds, RetryWallSeconds),
// keeping the deterministic recovery counters (Attempts, WastedBytes) —
// those must match across parallelism levels too.
func stripTimes(rm RoundMetrics) RoundMetrics {
	out := stripWall(rm)
	out.RetryWallSeconds, out.SpeculativeWallSeconds = 0, 0
	for _, tasks := range [][]TaskMetrics{out.Mappers, out.Reducers} {
		for i := range tasks {
			tasks[i].RetryWallSeconds, tasks[i].SpeculativeWallSeconds = 0, 0
		}
	}
	return out
}

func TestFaultKindsMatchFaultFree(t *testing.T) {
	base := runFaulted(t, nil, 0, 1)
	if base.err != nil {
		t.Fatal(base.err)
	}
	cases := []struct {
		name         string
		spec         string
		phase        Phase
		task         int // AnyIndex: skip the per-task attempt check
		wantAttempts int64
		wantRetries  int64
		wantWasted   bool
	}{
		{"crash-map", "0:map:1:crash", PhaseMap, 1, 2, 1, false},
		{"mid-emit-map", "0:map:2:mid-emit@5", PhaseMap, 2, 2, 1, true},
		{"slow-map", "0:map:0:slow@1", PhaseMap, 0, 1, 0, false},
		{"oom-map", "0:map:3:oom", PhaseMap, 3, 2, 1, false},
		{"crash-reduce", "0:reduce:1:crash", PhaseReduce, 1, 2, 1, false},
		{"mid-emit-reduce", "0:reduce:0:mid-emit@2", PhaseReduce, 0, 2, 1, true},
		{"slow-reduce", "0:reduce:2:slow@1", PhaseReduce, 2, 1, 0, false},
		{"oom-reduce", "0:reduce:3:oom", PhaseReduce, 3, 2, 1, false},
		{"double-fault", "0:map:1:crash:0:2", PhaseMap, 1, 3, 2, false},
		{"last-allowed-attempt", "0:reduce:2:crash:0:3", PhaseReduce, 2, 4, 3, false},
		{"everything-once", "*:map:*:oom,*:reduce:*:crash", PhaseMap, AnyIndex, 0, 8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFaulted(t, mustPlan(t, tc.spec), 4, 1)
			if got.err != nil {
				t.Fatalf("faulted run failed: %v", got.err)
			}
			if !reflect.DeepEqual(stripRecovery(got.metrics), stripRecovery(base.metrics)) {
				t.Errorf("metrics diverge from fault-free run:\nfaulted: %+v\nclean:   %+v",
					stripRecovery(got.metrics), stripRecovery(base.metrics))
			}
			if got.sum != base.sum || got.recs != base.recs {
				t.Errorf("DFS output diverges: sum %d/%d recs %d/%d",
					got.sum, base.sum, got.recs, base.recs)
			}
			if !reflect.DeepEqual(got.output, base.output) {
				t.Error("collected output diverges from fault-free run")
			}
			if tc.task != AnyIndex {
				tasks := got.metrics.Mappers
				if tc.phase == PhaseReduce {
					tasks = got.metrics.Reducers
				}
				if tasks[tc.task].Attempts != tc.wantAttempts {
					t.Errorf("task %d attempts = %d, want %d",
						tc.task, tasks[tc.task].Attempts, tc.wantAttempts)
				}
				for i := range tasks {
					if i != tc.task && tasks[i].Attempts != 1 {
						t.Errorf("untargeted task %d attempts = %d, want 1", i, tasks[i].Attempts)
					}
				}
			}
			if got.metrics.Retries != tc.wantRetries {
				t.Errorf("round retries = %d, want %d", got.metrics.Retries, tc.wantRetries)
			}
			if tc.wantWasted && got.metrics.WastedBytes == 0 {
				t.Error("expected wasted bytes from discarded partial output")
			}
			if !tc.wantWasted && got.metrics.WastedBytes != 0 {
				t.Errorf("unexpected wasted bytes %d (attempt died before emitting)",
					got.metrics.WastedBytes)
			}
		})
	}
}

func TestFaultedRunMatchesAcrossParallelism(t *testing.T) {
	plan := mustPlan(t, "*:map:1:mid-emit@3,*:reduce:2:crash,*:reduce:0:slow@1")
	seq := runFaulted(t, plan, 4, 1)
	par := runFaulted(t, plan, 4, 8)
	if seq.err != nil || par.err != nil {
		t.Fatalf("errs: %v / %v", seq.err, par.err)
	}
	if !reflect.DeepEqual(stripTimes(seq.metrics), stripTimes(par.metrics)) {
		t.Errorf("faulted metrics differ across parallelism:\npar=1: %+v\npar=8: %+v",
			stripTimes(seq.metrics), stripTimes(par.metrics))
	}
	if seq.sum != par.sum || seq.recs != par.recs {
		t.Error("faulted DFS output differs across parallelism")
	}
	if !reflect.DeepEqual(seq.output, par.output) {
		t.Error("faulted collected output differs across parallelism")
	}
}

func TestPermanentFaultFailsRoundCleanly(t *testing.T) {
	t.Run("map", func(t *testing.T) {
		got := runFaulted(t, mustPlan(t, "0:map:2:crash:0:*"), 3, 4)
		if got.err == nil {
			t.Fatal("expected permanent map fault to fail the round")
		}
		var fe *FaultError
		if !errors.As(got.err, &fe) {
			t.Fatalf("error %v is not a FaultError", got.err)
		}
		if fe.Kind != FaultCrashBeforeEmit || fe.Phase != PhaseMap || fe.Task != 2 {
			t.Errorf("FaultError = %+v", fe)
		}
		if !got.metrics.Failed || !strings.Contains(got.metrics.FailReason, "map task 2 failed after 3 attempts") {
			t.Errorf("FailReason = %q", got.metrics.FailReason)
		}
		if got.metrics.Mappers[2].Attempts != 3 {
			t.Errorf("failed task attempts = %d, want 3", got.metrics.Mappers[2].Attempts)
		}
	})
	t.Run("reduce", func(t *testing.T) {
		got := runFaulted(t, mustPlan(t, "0:reduce:1:oom:0:*"), 2, 4)
		if got.err == nil {
			t.Fatal("expected permanent reduce fault to fail the round")
		}
		var fe *FaultError
		if !errors.As(got.err, &fe) {
			t.Fatalf("error %v is not a FaultError", got.err)
		}
		if fe.Kind != FaultTransientOOM || fe.Phase != PhaseReduce || fe.Task != 1 {
			t.Errorf("FaultError = %+v", fe)
		}
		if !got.metrics.Failed || !strings.Contains(got.metrics.FailReason, "reduce task 1 failed after 2 attempts") {
			t.Errorf("FailReason = %q", got.metrics.FailReason)
		}
		if got.metrics.Reducers[1].Attempts != 2 {
			t.Errorf("failed task attempts = %d, want 2", got.metrics.Reducers[1].Attempts)
		}
		// The failed reducer's rolled-back output must not be counted.
		if got.metrics.Reducers[1].OutRecords != 0 {
			t.Error("failed reducer's output leaked into metrics")
		}
		// Other reducers still completed and merged their output.
		if got.metrics.OutputRecords == 0 {
			t.Error("surviving reducers' output missing")
		}
	})
}

func TestDeterministicFailuresAreNotRetried(t *testing.T) {
	// A partition range violation is a job bug, not a machine failure: it
	// must abort on the first attempt even with retries available.
	tuples, _ := tuplesFromWords([]string{"a"})
	job := &Job{
		Name:      "bad",
		MapTuple:  func(ctx *MapCtx, tu relation.Tuple) { ctx.Emit("k", nil) },
		Partition: func(string, int) int { return 99 },
		Reduce:    func(*RedCtx, string, [][]byte) {},
	}
	eng := New(Config{Workers: 1, MaxAttempts: 4}, nil)
	res, err := eng.RunTuples(job, tuples)
	if err == nil {
		t.Fatal("expected partition range error")
	}
	if isFaultError(err) {
		t.Error("partition error must not be a FaultError")
	}
	if res.Metrics.Mappers[0].Attempts != 1 {
		t.Errorf("deterministic failure retried: attempts = %d", res.Metrics.Mappers[0].Attempts)
	}

	// Reducer OOM under FailOnReducerOOM likewise fails the round once; the
	// overloaded reducer never runs, so nothing is retried.
	var hot []relation.Tuple
	for i := 0; i < 5000; i++ {
		hot = append(hot, relation.Tuple{Dims: []relation.Value{1}, Measure: 1})
	}
	oomJob := &Job{
		Name:             "oom",
		MapTuple:         func(ctx *MapCtx, tu relation.Tuple) { ctx.Emit("hot", []byte("0123456789abcdef")) },
		Reduce:           func(*RedCtx, string, [][]byte) {},
		FailOnReducerOOM: true,
		MemInflation:     8,
	}
	eng = New(Config{Workers: 4, OOMFactor: 2, MaxAttempts: 4}, nil)
	res, err = eng.RunTuples(oomJob, hot)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	if isFaultError(err) {
		t.Error("reducer OOM must not be a FaultError")
	}
	if res.Metrics.Retries != 0 {
		t.Errorf("OOM failure retried: retries = %d", res.Metrics.Retries)
	}
}

func TestFaultRoundSelector(t *testing.T) {
	// The engine counts rounds across jobs; Fault.Round targets that
	// counter, so a multi-round algorithm can fault only its second job.
	run := func(spec string) (first, second RoundMetrics) {
		t.Helper()
		words := strings.Fields(strings.Repeat("a b c ", 30))
		tuples, _ := tuplesFromWords(words)
		eng := New(Config{Workers: 2, Faults: mustPlan(t, spec)}, nil)
		res1, err := eng.RunTuples(faultTestJob(), tuples)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := eng.RunTuples(faultTestJob(), tuples)
		if err != nil {
			t.Fatal(err)
		}
		return res1.Metrics, res2.Metrics
	}
	first, second := run("1:map:0:crash")
	if first.Retries != 0 {
		t.Errorf("round 0 faulted by a round-1 selector: retries = %d", first.Retries)
	}
	if second.Retries != 1 || second.Mappers[0].Attempts != 2 {
		t.Errorf("round 1 not faulted: retries = %d, attempts = %d",
			second.Retries, second.Mappers[0].Attempts)
	}
	first, second = run("*:map:0:crash")
	if first.Retries != 1 || second.Retries != 1 {
		t.Errorf("wildcard round must fault every round: %d / %d", first.Retries, second.Retries)
	}
}

func TestTaskStateFreshPerAttempt(t *testing.T) {
	// Both map and reduce state are consumed incrementally (a counter); a
	// retry reusing a prior attempt's state would shift every subsequent
	// key/value and diverge from the fault-free run.
	statefulJob := func() *Job {
		return &Job{
			Name:          "stateful",
			CollectOutput: true,
			TaskState:     func() any { c := 0; return &c },
			MapTuple: func(ctx *MapCtx, tu relation.Tuple) {
				c := ctx.State().(*int)
				ctx.Emit(fmt.Sprintf("k%03d", *c), nil)
				*c++
			},
			Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
				c := ctx.State().(*int)
				*c++
				ctx.EmitSide(key, binary.AppendVarint(nil, int64(*c)))
			},
		}
	}
	words := strings.Fields("a b c d e f")
	tuples, _ := tuplesFromWords(words)
	run := func(spec string) ([]Pair, uint64) {
		t.Helper()
		fs := dfs.New(false)
		eng := New(Config{Workers: 1, Seed: 3, Faults: mustPlan(t, spec)}, fs)
		res, err := eng.RunTuples(statefulJob(), tuples)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output, fs.TotalChecksum("")
	}
	cleanOut, cleanSum := run("")
	for _, spec := range []string{"0:map:0:mid-emit@3", "0:reduce:0:mid-emit@2", "0:map:0:crash,0:reduce:0:crash"} {
		out, sum := run(spec)
		if !reflect.DeepEqual(out, cleanOut) || sum != cleanSum {
			t.Errorf("fault %q: retried task saw stale TaskState (output diverged)", spec)
		}
	}
}

func TestParseFaultPlanRoundTrip(t *testing.T) {
	specs := []string{
		"0:map:1:crash",
		"*:reduce:*:oom",
		"1:map:2:mid-emit@3:1:2",
		"*:reduce:1:slow@10",
		"0:map:2:crash:0:*",
		"2:reduce:0:mid-emit",
		"0:map:0:crash,1:reduce:3:oom:2",
		"*:node:2:node-crash",
		"1:node:*:node-crash,0:map:0:crash",
	}
	for _, spec := range specs {
		plan := mustPlan(t, spec)
		rendered := plan.String()
		reparsed, err := ParseFaultPlan(rendered)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", rendered, spec, err)
		}
		if !reflect.DeepEqual(plan, reparsed) {
			t.Errorf("round trip %q -> %q changed the plan:\n%+v\n%+v", spec, rendered, plan, reparsed)
		}
	}
	if plan, err := ParseFaultPlan("  "); plan != nil || err != nil {
		t.Errorf("blank spec: plan=%v err=%v, want nil/nil", plan, err)
	}
	if plan, err := ParseFaultPlan(" , "); plan != nil || err != nil {
		t.Errorf("empty items: plan=%v err=%v, want nil/nil", plan, err)
	}
	bad := []string{
		"0:map:0",                 // too few fields
		"0:map:0:crash:0:1:9",     // too many fields
		"x:map:0:crash",           // bad round
		"0:nope:0:crash",          // bad phase
		"0:map:y:crash",           // bad task
		"0:map:0:weird",           // bad kind
		"0:map:0:crash@3",         // kind takes no argument
		"0:map:0:slow@0",          // argument must be positive
		"0:map:0:crash:-1",        // bad attempt
		"0:map:0:crash:0:0",       // bad count
		"0:map:0:node-crash",      // node-crash needs the node phase
		"0:node:0:crash",          // the node phase takes only node-crash
		"0:node:0:node-crash:0:1", // node-crash takes no attempt/count
	}
	for _, spec := range bad {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted an invalid spec", spec)
		}
	}
}

func TestFaultErrorMessages(t *testing.T) {
	e := &FaultError{Kind: FaultCrashMidEmit, Phase: PhaseMap, Task: 1, Attempt: 0}
	if got := e.Error(); !strings.Contains(got, "injected mid-emit in map task 1") {
		t.Errorf("Error() = %q", got)
	}
	e = &FaultError{Kind: FaultTransientOOM, Phase: PhaseReduce, Task: 3, Attempt: 2}
	if got := e.Error(); !strings.Contains(got, "transient out of memory in reduce task 3 (attempt 2)") {
		t.Errorf("Error() = %q", got)
	}
}

func TestMetricsStringMentionsRetries(t *testing.T) {
	got := runFaulted(t, mustPlan(t, "0:reduce:0:mid-emit@2"), 0, 1)
	if got.err != nil {
		t.Fatal(got.err)
	}
	var jm JobMetrics
	jm.Add(got.metrics)
	if jm.Retries() != 1 || jm.WastedBytes() == 0 {
		t.Errorf("job aggregation: retries=%d wasted=%d", jm.Retries(), jm.WastedBytes())
	}
	if !strings.Contains(jm.String(), "retries=1") {
		t.Errorf("String() should surface retries: %q", jm.String())
	}
}
