package mr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Spill run-file record codec.
//
// A run holds one sorted bucket of (key, value) pairs. Sorted order makes
// adjacent keys share long prefixes (group keys are packed dimension
// values, so an entire cuboid's records differ only in the trailing
// dimensions), which front coding exploits: each record stores only the
// suffix that differs from the previous record's key. On cube workloads
// this cuts key bytes by 2-4x versus storing keys whole.
//
// Record wire format (all integers unsigned varints):
//
//	prefixLen  — bytes shared with the previous record's key (0 for the
//	             first record of a segment)
//	suffixLen  — length of the key suffix that follows
//	suffix     — key[prefixLen:]
//	valLen     — length of the value
//	value      — opaque aggregate-state / measure bytes
//
// Segments are self-delimiting via the record count carried in their
// spillSeg metadata; there is no in-band terminator.

// appendSpillRecord front-codes one record against prev and appends its
// encoding to buf.
func appendSpillRecord(buf []byte, prev, key string, val []byte) []byte {
	p := sharedPrefix(prev, key)
	buf = binary.AppendUvarint(buf, uint64(p))
	buf = binary.AppendUvarint(buf, uint64(len(key)-p))
	buf = append(buf, key[p:]...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	return append(buf, val...)
}

func sharedPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// recordReader decodes a front-coded record stream. The key and value
// buffers are reused across next calls: returned slices are valid only
// until the following next.
type recordReader struct {
	r   *bufio.Reader
	rem int64 // records remaining
	key []byte
	val []byte
}

func newRecordReader(r io.Reader, records int64, bufSize int) *recordReader {
	return &recordReader{r: bufio.NewReaderSize(r, bufSize), rem: records}
}

// next decodes the next record. ok is false once the segment is exhausted;
// any decode or I/O error is returned with ok false.
func (d *recordReader) next() (key, val []byte, ok bool, err error) {
	if d.rem <= 0 {
		return nil, nil, false, nil
	}
	d.rem--
	prefix, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, nil, false, fmt.Errorf("mr: spill record prefix: %w", err)
	}
	suffix, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, nil, false, fmt.Errorf("mr: spill record suffix len: %w", err)
	}
	if prefix > uint64(len(d.key)) {
		return nil, nil, false, fmt.Errorf("mr: spill record prefix %d exceeds previous key length %d", prefix, len(d.key))
	}
	d.key = d.key[:prefix]
	d.key, err = readFull(d.r, d.key, int(suffix))
	if err != nil {
		return nil, nil, false, fmt.Errorf("mr: spill record key suffix: %w", err)
	}
	vlen, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, nil, false, fmt.Errorf("mr: spill record value len: %w", err)
	}
	d.val = d.val[:0]
	d.val, err = readFull(d.r, d.val, int(vlen))
	if err != nil {
		return nil, nil, false, fmt.Errorf("mr: spill record value: %w", err)
	}
	return d.key, d.val, true, nil
}

// readFull appends exactly n bytes from r to buf.
func readFull(r *bufio.Reader, buf []byte, n int) ([]byte, error) {
	for n > 0 {
		chunk, err := r.Peek(n)
		if len(chunk) == 0 {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return buf, err
		}
		buf = append(buf, chunk...)
		r.Discard(len(chunk))
		n -= len(chunk)
	}
	return buf, nil
}
