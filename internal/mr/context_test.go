package mr

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// countJob is a minimal word-count job for the cancellation tests; onMap,
// when non-nil, runs on every mapped tuple (the mid-run cancellation hook).
func countJob(onMap func()) *Job {
	return &Job{
		Name: "ctxcount",
		MapTuple: func(ctx *MapCtx, tp relation.Tuple) {
			if onMap != nil {
				onMap()
			}
			ctx.Emit(fmt.Sprintf("word-%c", 'a'+rune(tp.Dims[0])%26), binary.AppendVarint(nil, 1))
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
		},
	}
}

// assertNoGoroutineGrowth fails the test if the goroutine count stays above
// the baseline after a short settling window — the leak probe for abandoned
// task goroutines on the cancellation path.
func assertNoGoroutineGrowth(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestContextPreCancelled pins the error contract: a run under an
// already-cancelled context returns the context's own error, unwrapped —
// not dressed up as a task failure ("failed after N attempts") — and runs
// no user code.
func TestContextPreCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mapped := false
	tuples, _ := tuplesFromWords(spillWords())
	eng := New(Config{Workers: 4, Parallelism: 4, Context: ctx}, dfs.New(false))
	_, err := eng.RunTuples(countJob(func() { mapped = true }), tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(fmt.Sprint(err), "attempts") {
		t.Errorf("cancellation dressed up as a task failure: %v", err)
	}
	if mapped {
		t.Error("map function ran under a pre-cancelled context")
	}
	assertNoGoroutineGrowth(t, base)
}

// TestContextMidRunCancel cancels from inside a map function — the
// SIGINT-arrives-mid-round shape — and asserts the run unwinds promptly
// with the context's error and leaks no task goroutines.
func TestContextMidRunCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			tuples, _ := tuplesFromWords(spillWords())
			eng := New(Config{Workers: 4, Parallelism: par, Context: ctx}, dfs.New(false))
			_, err := eng.RunTuples(countJob(cancel), tuples)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
	assertNoGoroutineGrowth(t, base)
}

// TestContextCancelWithSpill cancels mid-run with the out-of-core shuffle
// active and asserts the spill directory is removed — the deferred cleanup
// must run on the cancellation path too.
func TestContextCancelWithSpill(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	tuples, _ := tuplesFromWords(spillWords())
	eng := New(Config{Workers: 4, Parallelism: 4, Context: ctx,
		SpillBudgetBytes: 1, SpillDir: dir}, dfs.New(false))
	_, err := eng.RunTuples(countJob(cancel), tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if files := filesUnderDir(t, dir); len(files) != 0 {
		t.Errorf("cancelled run leaked spill files: %v", files)
	}
}

// filesUnderDir lists every file under dir recursively — the spill-leak
// probe for the cancellation path.
func filesUnderDir(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if path != dir {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestContextNilIsUncancellable pins the default: a nil Context means no
// cancellation checks, and the run completes normally.
func TestContextNilIsUncancellable(t *testing.T) {
	tuples, _ := tuplesFromWords(spillWords())
	eng := New(Config{Workers: 4, Parallelism: 4}, dfs.New(false))
	if _, err := eng.RunTuples(countJob(nil), tuples); err != nil {
		t.Fatal(err)
	}
}
