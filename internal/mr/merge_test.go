package mr

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// randPairs generates n pairs with keys drawn from a small alphabet (so
// duplicates are frequent) and values that identify the emission index —
// the witness for stability checks.
func randPairs(rng *rand.Rand, n, keySpace int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		k := fmt.Sprintf("k%03d", rng.Intn(keySpace))
		out[i] = Pair{Key: k, Val: binary.AppendUvarint(nil, uint64(i))}
	}
	return out
}

// TestSortPairsStableMatchesSliceStable is the property test for the
// map-side sort: on random inputs heavy with duplicate keys it must agree
// exactly — order of equal keys included — with sort.SliceStable.
func TestSortPairsStableMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch []Pair
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		keySpace := 1 + rng.Intn(40)
		pairs := randPairs(rng, n, keySpace)
		want := append([]Pair(nil), pairs...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].Key < want[b].Key })
		scratch = sortPairsStable(pairs, scratch)
		if !reflect.DeepEqual(pairs, want) {
			t.Fatalf("trial %d (n=%d, keys=%d): sortPairsStable diverges from sort.SliceStable", trial, n, keySpace)
		}
	}
}

// TestRunMergerMatchesSliceStable is the property test of the tentpole's
// order-equivalence claim: the loser-tree merge of per-run stably-sorted
// buckets must equal sort.SliceStable applied to the run-ordered
// concatenation — i.e. the reducer sees, bit for bit, the input order the
// historical concatenate-then-sort produced.
func TestRunMergerMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch []Pair
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(9) // 0 runs and 1 run are valid edge cases
		runs := make([][]Pair, k)
		var concat []Pair
		for r := 0; r < k; r++ {
			runs[r] = randPairs(rng, rng.Intn(80), 1+rng.Intn(15))
			concat = append(concat, runs[r]...)
			scratch = sortPairsStable(runs[r], scratch)
		}
		want := append([]Pair(nil), concat...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].Key < want[b].Key })

		m := newRunMerger(runs)
		for pass := 0; pass < 2; pass++ { // second pass exercises reset()
			m.reset()
			got := make([]Pair, 0, len(want))
			for p := m.next(); p != nil; p = m.next() {
				got = append(got, *p)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d pass %d (k=%d, n=%d): merge diverges from stable sort of concatenation",
					trial, pass, k, len(want))
			}
		}
	}
}

// TestCombineExpandingCombiner is the regression test for the aliasing bug
// in the historical Engine.combine: rebuilding into out[:0] while still
// reading out[j] corrupted later groups whenever a combiner returned more
// values than it consumed. The expanding combiner below returns every
// value twice; all duplicated values must survive to the reducer intact.
func TestCombineExpandingCombiner(t *testing.T) {
	words := []string{"a", "b", "a", "c", "b", "a", "d", "e", "f", "g"}
	tuples, dict := tuplesFromWords(words)
	got := make(map[string][]string)
	job := &Job{
		Name: "expanding",
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			key := fmt.Sprintf("w%d", t.Dims[0])
			ctx.Emit(key, []byte(key))
		},
		Combine: func(key string, vals [][]byte) [][]byte {
			out := make([][]byte, 0, 2*len(vals))
			for _, v := range vals {
				out = append(out, v, v)
			}
			return out
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			for _, v := range vals {
				got[key] = append(got[key], string(v))
			}
			ctx.EmitKV(key, nil)
		},
	}
	eng := New(Config{Workers: 1, Parallelism: 1}, dfs.New(true))
	if _, err := eng.RunTuples(job, tuples); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{"a": 3, "b": 2, "c": 1, "d": 1, "e": 1, "f": 1, "g": 1}
	for w, n := range counts {
		key := fmt.Sprintf("w%d", dict[w])
		vals := got[key]
		if len(vals) != 2*n {
			t.Fatalf("key %s: %d values after expanding combine, want %d", key, len(vals), 2*n)
		}
		for _, v := range vals {
			if v != key {
				t.Fatalf("key %s: corrupted value %q — combiner output aliased a later group", key, v)
			}
		}
	}
}

// TestEmitNoCopyContract pins down the documented Emit semantics: Emit
// retains val as passed (mutating the buffer afterwards corrupts the
// record), while EmitCopied and EmitBytes snapshot their arguments so the
// caller may reuse its scratch immediately.
func TestEmitNoCopyContract(t *testing.T) {
	run := func(mapTuple func(ctx *MapCtx)) map[string]string {
		got := make(map[string]string)
		job := &Job{
			Name:     "emit-contract",
			MapTuple: func(ctx *MapCtx, _ relation.Tuple) { mapTuple(ctx) },
			Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
				got[key] = string(vals[0])
				ctx.EmitKV(key, vals[0])
			},
		}
		eng := New(Config{Workers: 1, Parallelism: 1}, dfs.New(true))
		if _, err := eng.RunTuples(job, []relation.Tuple{{Dims: []relation.Value{0}, Measure: 1}}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	// Emit does not copy: the reducer observes the post-Emit mutation.
	got := run(func(ctx *MapCtx) {
		buf := []byte("old")
		ctx.Emit("k", buf)
		copy(buf, "new")
	})
	if got["k"] != "new" {
		t.Errorf("Emit copied val: reducer saw %q, want the mutated %q", got["k"], "new")
	}

	// EmitCopied snapshots val.
	got = run(func(ctx *MapCtx) {
		buf := []byte("old")
		ctx.EmitCopied("k", buf)
		copy(buf, "new")
	})
	if got["k"] != "old" {
		t.Errorf("EmitCopied did not copy val: reducer saw %q, want %q", got["k"], "old")
	}

	// EmitBytes snapshots both key and value.
	got = run(func(ctx *MapCtx) {
		kb := []byte("key1")
		vb := []byte("old")
		ctx.EmitBytes(kb, vb)
		copy(kb, "KEYX")
		copy(vb, "new")
	})
	if got["key1"] != "old" {
		t.Errorf("EmitBytes did not snapshot: got %v, want key1→old", got)
	}
}

// TestHashPartitionMatchesFNV verifies that the inlined hash is
// byte-identical to the historical implementation: fnv.New64a() fed the
// seed's 8 little-endian bytes followed by the key.
func TestHashPartitionMatchesFNV(t *testing.T) {
	ref := func(seed uint64, key string, reducers int) int {
		h := fnv.New64a()
		var s [8]byte
		for i := 0; i < 8; i++ {
			s[i] = byte(seed >> (8 * uint(i)))
		}
		h.Write(s[:])
		h.Write([]byte(key))
		return int(h.Sum64() % uint64(reducers))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		seed := rng.Uint64()
		n := rng.Intn(24)
		key := make([]byte, n)
		rng.Read(key)
		reducers := 1 + rng.Intn(64)
		if got, want := HashPartition(seed, string(key), reducers), ref(seed, string(key), reducers); got != want {
			t.Fatalf("HashPartition(%d, %q, %d) = %d, want %d", seed, key, reducers, got, want)
		}
	}
	if got, want := HashPartition(42, "", 7), ref(42, "", 7); got != want {
		t.Fatalf("empty key: %d vs %d", got, want)
	}
}

// TestTupleInputBytesMemoized verifies the per-relation memoization of the
// input-byte accounting: repeated rounds over the same tuple slice report
// identical InBytes (same as a fresh engine computes), and a different
// slice is not served from the stale cache.
func TestTupleInputBytesMemoized(t *testing.T) {
	tuplesA, _ := tuplesFromWords([]string{"a", "b", "c", "a", "b", "a"})
	tuplesB, _ := tuplesFromWords([]string{"longer", "words", "entirely", "different", "here"})

	inBytes := func(eng *Engine, tuples []relation.Tuple) int64 {
		job := &Job{
			Name:     "bytes-probe",
			MapTuple: func(ctx *MapCtx, t relation.Tuple) { ctx.Emit("k", nil) },
			Reduce:   func(ctx *RedCtx, key string, vals [][]byte) {},
		}
		res, err := eng.RunTuples(job, tuples)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, m := range res.Metrics.Mappers {
			total += m.InBytes
		}
		return total
	}

	eng := New(Config{Workers: 3, Parallelism: 1}, dfs.New(true))
	firstA := inBytes(eng, tuplesA)
	if again := inBytes(eng, tuplesA); again != firstA {
		t.Errorf("memoized second round reports %d input bytes, first reported %d", again, firstA)
	}
	if want := tupleInputBytes(tuplesA); firstA != want {
		t.Errorf("accounted %d input bytes, direct computation gives %d", firstA, want)
	}
	gotB := inBytes(eng, tuplesB)
	if want := tupleInputBytes(tuplesB); gotB != want {
		t.Errorf("after switching relations: accounted %d, want %d (stale cache?)", gotB, want)
	}
	fresh := New(Config{Workers: 3, Parallelism: 1}, dfs.New(true))
	if got := inBytes(fresh, tuplesB); got != gotB {
		t.Errorf("fresh engine accounts %d input bytes, memoizing engine %d", got, gotB)
	}
}

// BenchmarkShuffleMerge measures the reduce-side k-way merge in isolation:
// 8 pre-sorted runs of 16k pairs each, streamed through the loser tree.
func BenchmarkShuffleMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	runs := make([][]Pair, 8)
	var scratch []Pair
	total := 0
	for r := range runs {
		runs[r] = randPairs(rng, 16<<10, 512)
		scratch = sortPairsStable(runs[r], scratch)
		total += len(runs[r])
	}
	m := newRunMerger(runs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.reset()
		n := 0
		for p := m.next(); p != nil; p = m.next() {
			n++
		}
		if n != total {
			b.Fatalf("merged %d of %d pairs", n, total)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkCombine measures the hash-grouping combiner on a mapper-sized
// buffer with heavy key duplication.
func BenchmarkCombine(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	out := randPairs(rng, 32<<10, 1024)
	job := &Job{
		Name: "bench-combine",
		Combine: func(key string, vals [][]byte) [][]byte {
			return vals[:1]
		},
	}
	eng := New(Config{Workers: 1}, dfs.New(true))
	buf := make([]Pair, len(out))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, out)
		ctx := &MapCtx{eng: eng, job: job}
		if got := eng.combine(job, ctx, buf); len(got) != 1024 {
			b.Fatalf("combined to %d groups, want 1024", len(got))
		}
	}
}
