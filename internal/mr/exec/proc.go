package exec

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	osexec "os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/spcube/spcube/internal/mr"
)

// Options tunes the proc backend. The zero value gives the defaults noted
// on each field.
type Options struct {
	// WorkerCommand is the worker process argv. Empty means re-execute the
	// current binary (os.Executable), relying on MaybeWorkerMain at the top
	// of its main to route the child into the worker loop.
	WorkerCommand []string
	// RPCTimeout bounds every worker RPC (per call, as a connection
	// deadline). Default 2s.
	RPCTimeout time.Duration
	// HeartbeatInterval is the liveness probe period per worker. Default
	// 250ms.
	HeartbeatInterval time.Duration
	// HeartbeatMissLimit is the number of consecutive failed probes after
	// which a worker is declared dead. Default 3.
	HeartbeatMissLimit int
	// RestartLimit is the per-node spawn budget across the backend's
	// lifetime. A node whose budget is exhausted is permanently failed: its
	// tasks drain onto live nodes (the engine's down set). Default 3.
	RestartLimit int
	// DialBudget bounds the exponential-backoff-with-jitter connect loop
	// after spawning a worker. Default 5s.
	DialBudget time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.RPCTimeout <= 0 {
		out.RPCTimeout = 2 * time.Second
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 250 * time.Millisecond
	}
	if out.HeartbeatMissLimit <= 0 {
		out.HeartbeatMissLimit = 3
	}
	if out.RestartLimit <= 0 {
		out.RestartLimit = 3
	}
	if out.DialBudget <= 0 {
		out.DialBudget = 5 * time.Second
	}
	return out
}

// Proc is the multi-process execution backend: one worker process per
// failure domain, liveness by heartbeat, node-crash faults by SIGKILL.
// Create with NewProc, hand to mr.Config.Executor, and Close when the
// computation is done (Close reaps every worker process and removes the
// socket directory). Safe for the engine's concurrency contract; a Proc
// serves one engine at a time.
type Proc struct {
	opts Options

	mu       sync.Mutex
	dir      string // socket directory, created lazily on first RoundStart
	workers  []*worker
	failed   []bool // permanently failed nodes (spawn budget exhausted)
	restarts []int  // spawn count per node
	closed   bool

	heartbeatMisses atomic.Int64
	workerRestarts  atomic.Int64
	rpcRetries      atomic.Int64
}

// NewProc builds a proc backend with the given options.
func NewProc(opts Options) *Proc {
	return &Proc{opts: opts.withDefaults()}
}

// worker is the parent's handle on one worker process.
type worker struct {
	p      *Proc
	node   int
	socket string
	cmd    *osexec.Cmd
	pipeW  *os.File      // write end of the parent-death pipe (worker's stdin)
	waitCh chan struct{} // closed when the process has been reaped
	dead   atomic.Bool

	mu   sync.Mutex // serializes RPCs on the connection
	conn *wireConn
}

// RoundStart implements mr.Executor: ensure a live worker per node
// (spawning the fleet on the first round, respawning crashed workers
// within the restart budget on later ones), reset each worker's storage
// ledger for the round, and report permanently failed nodes as the down
// set. When no node is usable at all the round fails plainly.
func (p *Proc) RoundStart(round, nodes int, planDead []bool, hooks mr.RoundHooks) (mr.RoundExecutor, []bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, nil, fmt.Errorf("proc backend is closed")
	}
	if p.dir == "" {
		dir, err := os.MkdirTemp("", "spw-*")
		if err != nil {
			return nil, nil, fmt.Errorf("socket dir: %w", err)
		}
		p.dir = dir
	}
	for len(p.workers) < nodes {
		p.workers = append(p.workers, nil)
		p.failed = append(p.failed, false)
		p.restarts = append(p.restarts, 0)
	}
	live := 0
	for node := 0; node < nodes; node++ {
		if p.failed[node] {
			continue
		}
		if p.ensureWorker(node, round, hooks) {
			live++
		} else {
			p.failed[node] = true
			hooks.Trace(mr.TraceEvent{Type: mr.EvWorkerDead, Node: node})
		}
	}
	if live == 0 {
		return nil, nil, fmt.Errorf("no usable worker: all %d nodes exhausted their restart budget", nodes)
	}
	var down []bool
	for node := 0; node < nodes; node++ {
		if p.failed[node] {
			if down == nil {
				down = make([]bool, nodes)
			}
			down[node] = true
		}
	}
	var dead []bool
	if planDead != nil {
		dead = append([]bool(nil), planDead...)
	}
	return &procRound{p: p, planDead: dead}, down, nil
}

// ensureWorker makes node's worker live and reset for the round, spawning
// (and re-spawning, on reset failure) within the node's remaining budget.
// Reports success; on false the node's budget is exhausted. Caller holds
// p.mu.
func (p *Proc) ensureWorker(node, round int, hooks mr.RoundHooks) bool {
	for {
		w := p.workers[node]
		if w == nil || w.dead.Load() {
			if w != nil {
				w.kill()
			}
			if p.restarts[node] >= p.opts.RestartLimit {
				return false
			}
			p.restarts[node]++
			nw, err := p.spawn(node)
			if err != nil {
				continue // budget check on the next iteration
			}
			if w != nil || p.restarts[node] > 1 {
				p.workerRestarts.Add(1)
			}
			hooks.Trace(mr.TraceEvent{Type: mr.EvWorkerSpawn, Node: node})
			p.workers[node] = nw
			w = nw
		}
		if err := w.rpc(request{Op: opReset, Round: round}); err != nil {
			w.kill()
			continue
		}
		return true
	}
}

// spawn starts one worker process and connects to it. Caller holds p.mu.
func (p *Proc) spawn(node int) (*worker, error) {
	socket := fmt.Sprintf("%s/w%d-%d.sock", p.dir, node, p.restarts[node])
	argv := p.opts.WorkerCommand
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("worker argv: %w", err)
		}
		argv = []string{self}
	}
	pipeR, pipeW, err := os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("death pipe: %w", err)
	}
	cmd := osexec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(),
		envSocket+"="+socket,
		fmt.Sprintf("%s=%d", envNode, node))
	cmd.Stdin = pipeR
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		pipeR.Close()
		pipeW.Close()
		return nil, fmt.Errorf("spawn worker %d: %w", node, err)
	}
	pipeR.Close() // the child holds its own copy
	w := &worker{p: p, node: node, socket: socket, cmd: cmd, pipeW: pipeW, waitCh: make(chan struct{})}
	go func() {
		cmd.Wait()
		w.dead.Store(true)
		close(w.waitCh)
	}()
	conn, err := dialBackoff(socket, p.opts.DialBudget, w.waitCh)
	if err != nil {
		w.kill()
		return nil, fmt.Errorf("connect worker %d: %w", node, err)
	}
	w.conn = conn
	go w.heartbeat()
	return w, nil
}

// dialBackoff connects to a worker socket with exponential backoff and
// jitter, giving up when the budget runs out or the process dies first.
func dialBackoff(socket string, budget time.Duration, died <-chan struct{}) (*wireConn, error) {
	deadline := time.Now().Add(budget)
	delay := 5 * time.Millisecond
	for {
		c, err := net.DialTimeout("unix", socket, budget)
		if err == nil {
			return newWireConn(c), nil
		}
		select {
		case <-died:
			return nil, fmt.Errorf("worker died before accepting: %w", err)
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial budget exhausted: %w", err)
		}
		// Full jitter: sleep uniformly in [delay/2, delay), then double,
		// capped — the classic backoff-with-jitter to avoid thundering
		// reconnects when many workers respawn at once.
		time.Sleep(delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1)))
		if delay *= 2; delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
	}
}

// rpc performs one RPC against the worker, reconnecting once (with
// backoff) after a transport error. Application-level refusals from a live
// worker pass through unchanged and are never retried.
func (w *worker) rpc(req request) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead.Load() {
		return fmt.Errorf("worker %d is dead", w.node)
	}
	err := w.conn.call(req, w.p.opts.RPCTimeout)
	if err == nil || isWorkerError(err) {
		return err
	}
	// Transport error: the gob streams are poisoned. Reconnect once —
	// the worker's accept loop takes a fresh connection — unless the
	// process is already gone.
	w.conn.close()
	w.p.rpcRetries.Add(1)
	if w.dead.Load() {
		return fmt.Errorf("worker %d died: %w", w.node, err)
	}
	conn, derr := dialBackoff(w.socket, w.p.opts.RPCTimeout, w.waitCh)
	if derr != nil {
		w.markDeadLocked()
		return fmt.Errorf("worker %d unreachable: %w", w.node, err)
	}
	w.conn = conn
	if err = w.conn.call(req, w.p.opts.RPCTimeout); err != nil && !isWorkerError(err) {
		w.markDeadLocked()
		return fmt.Errorf("worker %d unreachable: %w", w.node, err)
	}
	return err
}

// markDeadLocked declares the worker unusable and kills its process so
// its state cannot resurface. Caller holds w.mu.
func (w *worker) markDeadLocked() {
	w.dead.Store(true)
	w.cmd.Process.Kill()
}

// heartbeat probes the worker every HeartbeatInterval; HeartbeatMissLimit
// consecutive failures declare it dead. The probe shares the RPC path (and
// its reconnect), so a single transient hiccup heals silently and only
// counts a miss.
func (w *worker) heartbeat() {
	ticker := time.NewTicker(w.p.opts.HeartbeatInterval)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-w.waitCh:
			return
		case <-ticker.C:
		}
		if w.dead.Load() {
			return
		}
		if err := w.rpc(request{Op: opPing}); err != nil {
			w.p.heartbeatMisses.Add(1)
			if misses++; misses >= w.p.opts.HeartbeatMissLimit {
				w.mu.Lock()
				w.markDeadLocked()
				w.mu.Unlock()
				return
			}
			continue
		}
		misses = 0
	}
}

// kill SIGKILLs the worker process and waits for it to be reaped, so the
// caller can rely on every RPC against it failing afterwards. Idempotent;
// safe on a worker whose process already exited.
func (w *worker) kill() {
	w.dead.Store(true)
	w.cmd.Process.Kill()
	<-w.waitCh
	w.mu.Lock()
	w.conn.close()
	w.mu.Unlock()
	w.pipeW.Close()
}

// procRound implements mr.RoundExecutor for one engine round.
type procRound struct {
	p        *Proc
	planDead []bool
}

func (r *procRound) worker(node int) *worker {
	r.p.mu.Lock()
	defer r.p.mu.Unlock()
	if node < len(r.p.workers) {
		return r.p.workers[node]
	}
	return nil
}

func (r *procRound) attempt(op string, phase mr.Phase, task, attempt, node int) error {
	w := r.worker(node)
	if w == nil {
		return fmt.Errorf("node %d has no worker", node)
	}
	return w.rpc(request{Op: op, Phase: int(phase), Task: task, Attempt: attempt})
}

func (r *procRound) BeginAttempt(phase mr.Phase, task, attempt, node int) error {
	return r.attempt(opBegin, phase, task, attempt, node)
}

func (r *procRound) EndAttempt(phase mr.Phase, task, attempt, node int) error {
	return r.attempt(opEnd, phase, task, attempt, node)
}

func (r *procRound) StoreMapOutput(task, attempt, node int, records, bytes int64) error {
	w := r.worker(node)
	if w == nil {
		return fmt.Errorf("node %d has no worker", node)
	}
	return w.rpc(request{Op: opStore, Task: task, Attempt: attempt, Records: records, Bytes: bytes})
}

// CrashNodes realizes the round's simulated node-crash plan: SIGKILL every
// doomed node's worker process and wait for each to be reaped before
// returning, so the fetch probes that follow deterministically observe
// dead processes — the real lost set equals the simulated one.
func (r *procRound) CrashNodes() {
	for node, doomed := range r.planDead {
		if !doomed {
			continue
		}
		if w := r.worker(node); w != nil {
			w.kill()
		}
	}
}

func (r *procRound) FetchMapOutput(task, attempt, node int) error {
	w := r.worker(node)
	if w == nil {
		return fmt.Errorf("node %d has no worker", node)
	}
	return w.rpc(request{Op: opFetch, Task: task, Attempt: attempt})
}

func (r *procRound) RoundEnd() mr.ExecStats {
	return mr.ExecStats{
		HeartbeatMisses: r.p.heartbeatMisses.Swap(0),
		WorkerRestarts:  r.p.workerRestarts.Swap(0),
		RPCRetries:      r.p.rpcRetries.Swap(0),
	}
}

// Close implements mr.Executor: best-effort graceful shutdown of every
// worker, then SIGKILL and reap, then remove the socket directory.
// Idempotent.
func (p *Proc) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, w := range p.workers {
		if w == nil {
			continue
		}
		if !w.dead.Load() {
			w.rpc(request{Op: opShutdown})
		}
		w.kill()
	}
	p.workers = nil
	if p.dir != "" {
		os.RemoveAll(p.dir)
		p.dir = ""
	}
	return nil
}

// KillWorker SIGKILLs node's worker process and waits for it to die — the
// chaos hook for randomized kill soaks. Reports whether there was a live
// worker to kill.
func (p *Proc) KillWorker(node int) bool {
	p.mu.Lock()
	var w *worker
	if node < len(p.workers) {
		w = p.workers[node]
	}
	p.mu.Unlock()
	if w == nil || w.dead.Load() {
		return false
	}
	w.kill()
	return true
}

// LiveWorkers returns the number of worker processes currently alive.
func (p *Proc) LiveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w != nil && !w.dead.Load() {
			select {
			case <-w.waitCh:
			default:
				n++
			}
		}
	}
	return n
}

// WorkerPIDs returns the process IDs of every live worker (test
// instrumentation for leak assertions).
func (p *Proc) WorkerPIDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var pids []int
	for _, w := range p.workers {
		if w != nil && !w.dead.Load() {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}

// pidAlive reports whether pid names a live process (signal 0 probe).
func pidAlive(pid int) bool {
	return syscall.Kill(pid, 0) == nil
}
