package exec

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
)

// Environment variables a spawned worker reads its identity from. Set by
// the parent; their presence turns MaybeWorkerMain into the worker loop.
const (
	envSocket = "SPCUBE_WORKER_SOCKET"
	envNode   = "SPCUBE_WORKER_NODE"
)

// MaybeWorkerMain turns the current process into an execution-backend
// worker when the worker environment variables are set, and returns
// without effect otherwise. Call it first thing in main (and in TestMain
// for test binaries that use the proc backend): the default worker command
// re-executes the parent binary, and this hook routes the child into the
// worker loop instead of the CLI. Does not return when the process is a
// worker — the loop exits the process.
func MaybeWorkerMain() {
	socket := os.Getenv(envSocket)
	if socket == "" {
		return
	}
	node, _ := strconv.Atoi(os.Getenv(envNode))
	if err := ServeWorker(socket, node); err != nil {
		fmt.Fprintf(os.Stderr, "spworker node %d: %v\n", node, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker loop: listen on the unix socket, answer the
// parent's RPCs (one connection at a time; the parent reconnects after
// transport errors), and exit on a shutdown request. The worker also
// watches its stdin — the parent holds the write end of a pipe open for
// the worker's lifetime, so EOF means the parent died and the worker must
// not linger as an orphan. SIGINT is ignored: a ^C at the terminal reaches
// the whole process group, and workers must stay up for the parent's
// context-cancelled rounds to drain and reap them deliberately.
func ServeWorker(socket string, node int) error {
	signal.Ignore(os.Interrupt)
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(1)
	}()
	ln, err := net.Listen("unix", socket)
	if err != nil {
		return fmt.Errorf("listen %s: %w", socket, err)
	}
	defer ln.Close()
	w := &workerState{node: node, outputs: make(map[outputKey]bool)}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		done := w.serveConn(conn)
		conn.Close()
		if done {
			return nil
		}
	}
}

// outputKey identifies one stored map output: task and attempt index.
type outputKey struct{ task, attempt int }

// workerState is the node's storage ledger: which map outputs this node
// holds for the current round. It dies with the process — that is the
// point: a SIGKILLed node genuinely cannot attest to its outputs anymore.
type workerState struct {
	node    int
	round   int
	outputs map[outputKey]bool
}

// serveConn answers requests on one connection until it breaks (the
// parent reconnects) or a shutdown arrives (returns true).
func (w *workerState) serveConn(conn net.Conn) (shutdown bool) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return false
		}
		resp := response{ID: req.ID, OK: true}
		switch req.Op {
		case opPing:
		case opReset:
			w.round = req.Round
			clear(w.outputs)
		case opBegin, opEnd:
			// Liveness attestations: answering at all is the point. A dead
			// or unreachable worker cannot, and the engine kills the attempt.
		case opStore:
			w.outputs[outputKey{req.Task, req.Attempt}] = true
		case opFetch:
			if !w.outputs[outputKey{req.Task, req.Attempt}] {
				resp.OK = false
				resp.Err = fmt.Sprintf("node %d holds no output for map task %d attempt %d", w.node, req.Task, req.Attempt)
			}
		case opShutdown:
			enc.Encode(&resp)
			return true
		default:
			resp.OK = false
			resp.Err = "unknown op " + req.Op
		}
		if err := enc.Encode(&resp); err != nil {
			return false
		}
	}
}
