package exec

import (
	"context"
	"reflect"
	"testing"

	"github.com/spcube/spcube/internal/bench"
)

// TestFig6BackendParity pins the documented claim that benchmark figures
// are identical across execution backends by running the fig6 sweep (all
// three algorithms at every skew point) on the local and proc backends and
// comparing every series point-for-point. This is the regression test for
// the sketch wire format's gob era: gob assigned type IDs from a
// process-global counter, so the proc backend's RPC traffic shifted the
// serialized sketch size — a paper-reported figure — by a byte.
func TestFig6BackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fig6 sweep twice, once on real worker processes")
	}
	series := func(cfg bench.Config) map[string][]bench.Series {
		out := map[string][]bench.Series{}
		for _, f := range bench.Fig6(cfg) {
			out[f.ID] = f.Series
		}
		return out
	}
	ctx := context.Background()
	cfg := bench.Config{Workers: 20, Seed: 2016, Scale: 0.02, Context: ctx}
	local := series(cfg)
	p := NewProc(Options{})
	defer p.Close()
	cfg.Executor = p
	proc := series(cfg)
	for id, ls := range local {
		if !reflect.DeepEqual(ls, proc[id]) {
			t.Errorf("%s diverges across backends:\nlocal: %+v\nproc:  %+v", id, ls, proc[id])
		}
	}
}
