// Package exec provides the multi-process execution backend for the MR
// engine: one real worker process per simulated failure domain, attempts
// opened and closed over gob-encoded RPCs on a unix socket, liveness
// tracked by heartbeats with deadline-based RPC timeouts, and node-crash
// faults realized by SIGKILLing the actual worker process.
//
// The division of labor mirrors a task-tracker architecture under the
// engine's determinism contract (see mr.Executor): the engine decides,
// workers attest. Map and reduce functions run in the parent — moving the
// computation out of process would force output bytes through a codec and
// make results depend on which process survived — while each worker is its
// node's liveness and storage agent: an attempt only counts if its worker
// acknowledged it at open and close, and a map output is only fetchable if
// the worker that recorded it is still alive to say so. SIGKILL therefore
// makes exactly the RPCs fail that the simulated plan says must fail, and
// recovery exercises genuine crash paths end to end.
package exec

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Op names one worker RPC.
const (
	opPing     = "ping"     // heartbeat probe
	opReset    = "reset"    // new round: drop stored-output records
	opBegin    = "begin"    // open a task attempt on this node
	opEnd      = "end"      // close a completed attempt
	opStore    = "store"    // record a map attempt's output as stored here
	opFetch    = "fetch"    // probe a stored map output's fetchability
	opShutdown = "shutdown" // graceful exit
)

// request is one RPC to a worker. IDs increase per connection; a response
// with a mismatched ID is a protocol error (a stale reply after a
// reconnect) and fails the call.
type request struct {
	ID      uint64
	Op      string
	Round   int
	Phase   int // mr.Phase of the attempt (begin/end)
	Task    int
	Attempt int
	Records int64 // store: shuffle accounting
	Bytes   int64
}

// response answers one request.
type response struct {
	ID  uint64
	OK  bool
	Err string
}

// wireConn is one gob-encoded RPC connection. Calls are synchronous and
// serialized by the owner (the parent serializes per worker; the worker
// handles one request at a time per connection).
type wireConn struct {
	c      net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	nextID uint64
}

func newWireConn(c net.Conn) *wireConn {
	return &wireConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// call performs one request/response exchange under deadline. Transport
// errors poison the gob streams, so the connection must be discarded after
// any error return.
func (w *wireConn) call(req request, timeout time.Duration) error {
	w.nextID++
	req.ID = w.nextID
	if err := w.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := w.enc.Encode(&req); err != nil {
		return fmt.Errorf("send %s: %w", req.Op, err)
	}
	var resp response
	if err := w.dec.Decode(&resp); err != nil {
		return fmt.Errorf("recv %s: %w", req.Op, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("recv %s: response id %d for request %d", req.Op, resp.ID, req.ID)
	}
	if !resp.OK {
		return &workerError{op: req.Op, msg: resp.Err}
	}
	return nil
}

// workerError is an application-level refusal from a live worker (e.g. a
// fetch probe for an output it does not hold). The connection stays
// healthy — unlike transport errors, these are never retried.
type workerError struct {
	op, msg string
}

func (e *workerError) Error() string { return "worker " + e.op + ": " + e.msg }

func isWorkerError(err error) bool {
	_, ok := err.(*workerError)
	return ok
}

func (w *wireConn) close() {
	if w != nil {
		w.c.Close()
	}
}
