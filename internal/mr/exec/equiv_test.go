package exec

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/algo/pipesort"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// TestMain routes spawned copies of the test binary into the worker loop:
// the proc backend's default worker command re-executes the current
// executable, which for these tests is the test binary itself.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	os.Exit(m.Run())
}

func hiveNoOOM(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return hivecube.ComputeOpts(eng, rel, spec, hivecube.Options{DisableOOM: true})
}

var equivAlgorithms = []struct {
	name string
	fn   cube.ComputeFunc
}{
	{"sp-cube", spalgo.Compute},
	{"naive", naive.Compute},
	{"mr-cube", mrcube.Compute},
	{"hive", hiveNoOOM},
	{"pipesort", pipesort.Compute},
}

// equivPlans is the backend-equivalence fault matrix: clean, injected task
// crashes, a whole-node crash (realized as a real SIGKILL under proc), and
// speculation. Plans are kept separate — combining node-crash with
// speculation is the one corner where local and proc may legitimately pick
// different winner indices (backups skip the simulated node check), which
// would break metrics equality without affecting output bytes.
var equivPlans = []struct {
	name  string
	spec  string
	slack float64
}{
	{"clean", "", 0},
	{"crash", "*:map:*:crash,*:reduce:*:mid-emit@4", 0},
	{"node-crash", "*:node:1:node-crash", 0},
	{"speculate", "*:map:*:slow@2,*:reduce:2:slow@2", 0.0005},
}

type equivRun struct {
	res      *cube.Result
	metrics  mr.JobMetrics
	sim      float64
	checksum uint64
}

// stripVolatile zeroes every field the determinism contract excludes: the
// wall-clock fields, the overlap counters, and the execution-backend
// health counters.
func stripVolatile(m mr.JobMetrics) mr.JobMetrics {
	out := mr.JobMetrics{Rounds: append([]mr.RoundMetrics(nil), m.Rounds...)}
	for i := range out.Rounds {
		r := &out.Rounds[i]
		r.WallSeconds, r.RetryWallSeconds, r.SpeculativeWallSeconds = 0, 0, 0
		r.SpillWriteStallNs, r.PrefetchHits, r.PrefetchMisses = 0, 0, 0
		r.HeartbeatMisses, r.WorkerRestarts, r.RPCRetries = 0, 0, 0
		r.Mappers = append([]mr.TaskMetrics(nil), r.Mappers...)
		r.Reducers = append([]mr.TaskMetrics(nil), r.Reducers...)
		for _, tasks := range [][]mr.TaskMetrics{r.Mappers, r.Reducers} {
			for j := range tasks {
				tasks[j].WallSeconds, tasks[j].RetryWallSeconds, tasks[j].SpeculativeWallSeconds = 0, 0, 0
				tasks[j].SpillWriteStallNs, tasks[j].PrefetchHits, tasks[j].PrefetchMisses = 0, 0, 0
			}
		}
	}
	return out
}

// runBackend executes one algorithm over one backend. A nil executor is
// the in-process local backend; otherwise the caller passes a fresh Proc
// and runBackend closes it, asserting no worker process or socket
// directory survives.
func runBackend(t *testing.T, fn cube.ComputeFunc, rel *relation.Relation, parallelism int,
	spec string, slack float64, p *Proc) equivRun {
	t.Helper()
	plan, err := mr.ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mr.Config{Workers: 6, Seed: 42, Parallelism: parallelism, Faults: plan,
		SpeculativeSlack: slack, MaxAttempts: 6}
	if p != nil {
		cfg.Executor = p
	}
	eng := mr.New(cfg, dfs.New(false))
	run, err := fn(eng, rel, cube.Spec{Agg: agg.Count})
	if p != nil {
		pids := p.WorkerPIDs()
		dir := p.dir
		p.Close()
		if n := p.LiveWorkers(); n != 0 {
			t.Errorf("%d live workers after Close", n)
		}
		for _, pid := range pids {
			if pidAlive(pid) {
				t.Errorf("worker pid %d still alive after Close", pid)
			}
		}
		if dir != "" {
			if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
				t.Errorf("socket dir %s survived Close (stat err: %v)", dir, serr)
			}
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		t.Fatal(err)
	}
	return equivRun{
		res:      res,
		metrics:  stripVolatile(run.Metrics),
		sim:      run.Metrics.SimSeconds(),
		checksum: eng.FS.TotalChecksum(run.OutputPrefix),
	}
}

// newTestProc builds a proc backend for the equivalence tests: the worker
// command is the test binary itself (via TestMain/MaybeWorkerMain), and
// the restart budget is raised so per-round node-crash plans in
// multi-round algorithms never exhaust it — budget exhaustion would drain
// placement differently from the local backend.
func newTestProc() *Proc {
	return NewProc(Options{RestartLimit: 64})
}

// TestBackendDeterminismProc is the backend-equivalence table: every
// algorithm under every fault plan must produce byte-identical cube
// output, DFS checksums, simulated time and volatile-stripped metrics on
// the proc backend — real worker processes, real SIGKILLs — as on the
// in-process local backend, at parallelism 1 and 8, with no leaked worker
// processes or socket directories.
func TestBackendDeterminismProc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	rel := data.GenBinomial(500, 3, 0.4, 31)
	for _, fp := range equivPlans {
		for _, a := range equivAlgorithms {
			t.Run(fp.name+"/"+a.name, func(t *testing.T) {
				local := runBackend(t, a.fn, rel, 1, fp.spec, fp.slack, nil)
				for _, par := range []int{1, 8} {
					proc := runBackend(t, a.fn, rel, par, fp.spec, fp.slack, newTestProc())
					label := fmt.Sprintf("proc p=%d", par)
					if ok, diff := local.res.Equal(proc.res); !ok {
						t.Errorf("%s: cube output differs from local: %s", label, diff)
					}
					if local.checksum != proc.checksum {
						t.Errorf("%s: DFS checksum differs from local: %x vs %x", label, proc.checksum, local.checksum)
					}
					if local.sim != proc.sim {
						t.Errorf("%s: simulated seconds differ from local: %v vs %v", label, proc.sim, local.sim)
					}
					if !reflect.DeepEqual(local.metrics, proc.metrics) {
						t.Errorf("%s: volatile-stripped metrics differ from local:\nlocal: %+v\nproc:  %+v",
							label, local.metrics, proc.metrics)
					}
				}
			})
		}
	}
}

// TestBackendDifferentialProc cross-checks the proc backend against the
// brute-force oracle directly: under a real-SIGKILL node crash combined
// with injected task crashes, the recovered cube must still equal the
// sequential reference computation.
func TestBackendDifferentialProc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	workloads := []struct {
		name string
		rel  *relation.Relation
	}{
		{"skewed", data.GenBinomial(400, 3, 0.4, 31)},
		{"uniform", data.Uniform(400, 3, 9, 32)},
	}
	const spec = "*:map:1:crash,*:node:2:node-crash"
	for _, w := range workloads {
		want := cube.Brute(w.rel, agg.Count)
		for _, a := range equivAlgorithms {
			t.Run(w.name+"/"+a.name, func(t *testing.T) {
				got := runBackend(t, a.fn, w.rel, 8, spec, 0, newTestProc())
				if ok, diff := want.Equal(got.res); !ok {
					t.Errorf("proc backend diverges from brute force: %s", diff)
				}
			})
		}
	}
}
