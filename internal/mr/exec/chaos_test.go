package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
)

// TestChaosProcKillSoak is the randomized kill soak (`make chaos-proc`):
// while an algorithm runs on the proc backend, a chaos goroutine SIGKILLs
// worker processes at random moments — mid-map, mid-reduce, between
// rounds, whenever. The contract under arbitrary worker loss is graceful
// degradation, not magic: every run must either recover to the exact
// brute-force cube (retries re-place onto surviving nodes; MaxAttempts 6
// gives the placement hash room) or fail with a plain error — never hang,
// never return a wrong or truncated cube — and must never leak worker
// processes or socket directories.
func TestChaosProcKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real worker processes")
	}
	rng := rand.New(rand.NewSource(2016))
	const workers = 5
	recovered, failed := 0, 0
	for iter := 0; iter < 10; iter++ {
		n := 100 + rng.Intn(300)
		d := 1 + rng.Intn(3)
		card := 1 + rng.Intn(6)
		rel := cubetest.RandomRelation(rand.New(rand.NewSource(rng.Int63())), n, d, card)
		want := cube.Brute(rel, agg.Count)
		a := equivAlgorithms[rng.Intn(len(equivAlgorithms))]
		kills := 1 + rng.Intn(3)
		delays := make([]time.Duration, kills)
		targets := make([]int, kills)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(40)) * time.Millisecond
			targets[i] = rng.Intn(workers)
		}
		label := fmt.Sprintf("iter %d: %s n=%d d=%d card=%d kills=%v", iter, a.name, n, d, card, targets)

		p := NewProc(Options{RestartLimit: 64})
		killerDone := make(chan struct{})
		go func() {
			defer close(killerDone)
			for i := 0; i < kills; i++ {
				time.Sleep(delays[i])
				p.KillWorker(targets[i])
			}
		}()

		eng := mr.New(mr.Config{Workers: workers, Seed: rng.Uint64(),
			Parallelism: 1 + rng.Intn(8), MaxAttempts: 6, Executor: p}, dfs.New(false))
		run, err := a.fn(eng, rel, cube.Spec{Agg: agg.Count})
		<-killerDone
		if err != nil {
			// Graceful degradation: a plain, explanatory failure is a legal
			// outcome when the kills outran the retry budget.
			if err.Error() == "" {
				t.Errorf("%s: failed with an empty error", label)
			}
			failed++
		} else {
			got, cerr := cube.CollectDFS(eng, run.OutputPrefix, d)
			if cerr != nil {
				t.Fatalf("%s: %v", label, cerr)
			}
			if ok, diff := want.Equal(got); !ok {
				t.Errorf("%s: recovered cube diverges from brute force: %s", label, diff)
			}
			recovered++
		}

		pids := p.WorkerPIDs()
		dir := p.dir
		p.Close()
		if n := p.LiveWorkers(); n != 0 {
			t.Errorf("%s: %d live workers after Close", label, n)
		}
		for _, pid := range pids {
			if pidAlive(pid) {
				t.Errorf("%s: worker pid %d still alive after Close", label, pid)
			}
		}
		if dir != "" {
			if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
				t.Errorf("%s: socket dir %s survived Close", label, dir)
			}
		}
	}
	t.Logf("kill soak: %d runs recovered byte-identically, %d failed plainly", recovered, failed)
}

// TestContextCancelProc cancels a run on the proc backend mid-flight (the
// SIGINT shape): the engine must unwind with the context's error — or
// finish, if the run outraced the timer — and Close must reap every worker
// process and remove the socket directory either way.
func TestContextCancelProc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	rel := cubetest.RandomRelation(rand.New(rand.NewSource(7)), 400, 3, 5)
	for _, delay := range []time.Duration{0, 2 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		if delay == 0 {
			cancel() // pre-cancelled: no round may start, no worker may spawn
		} else {
			time.AfterFunc(delay, cancel)
		}
		p := NewProc(Options{RestartLimit: 64})
		eng := mr.New(mr.Config{Workers: 5, Seed: 7, Parallelism: 4,
			MaxAttempts: 4, Executor: p, Context: ctx}, dfs.New(false))
		_, err := equivAlgorithms[0].fn(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("delay %v: err = %v, want context.Canceled or success", delay, err)
		}
		if delay == 0 && err == nil {
			t.Error("pre-cancelled run reported success")
		}
		pids := p.WorkerPIDs()
		dir := p.dir
		p.Close()
		if n := p.LiveWorkers(); n != 0 {
			t.Errorf("delay %v: %d live workers after Close", delay, n)
		}
		for _, pid := range pids {
			if pidAlive(pid) {
				t.Errorf("delay %v: worker pid %d alive after Close", delay, pid)
			}
		}
		if dir != "" {
			if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
				t.Errorf("delay %v: socket dir %s survived Close", delay, dir)
			}
		}
		cancel()
	}
}
