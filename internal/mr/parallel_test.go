package mr

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// stripWall returns a deep copy of the metrics with every real wall-clock
// field zeroed: wall time is the one quantity that legitimately differs
// between runs (and between parallelism levels).
func stripWall(rm RoundMetrics) RoundMetrics {
	out := rm
	out.WallSeconds = 0
	out.Mappers = append([]TaskMetrics(nil), rm.Mappers...)
	out.Reducers = append([]TaskMetrics(nil), rm.Reducers...)
	for i := range out.Mappers {
		out.Mappers[i].WallSeconds = 0
	}
	for i := range out.Reducers {
		out.Reducers[i].WallSeconds = 0
	}
	return out
}

// runWordCount executes the word-count job at the given parallelism and
// returns the round metrics, the collected side output, and the output
// checksum.
func runWordCount(t *testing.T, parallelism int) (RoundMetrics, []Pair, uint64) {
	t.Helper()
	words := strings.Fields(strings.Repeat("a b c d e f g a b a ", 200))
	tuples, _ := tuplesFromWords(words)
	counts := make(map[string]int64)
	job := wordCountJob(counts)
	job.CollectOutput = true
	job.OutputPrefix = "out/wordcount/"
	job.Combine = func(key string, vals [][]byte) [][]byte {
		var total byte
		for _, v := range vals {
			total += v[0]
		}
		return [][]byte{{total}}
	}
	var mu sync.Mutex
	job.Reduce = func(ctx *RedCtx, key string, vals [][]byte) {
		var total int64
		for _, v := range vals {
			total += int64(v[0])
		}
		mu.Lock()
		counts[key] += total
		mu.Unlock()
		ctx.EmitKV(key, binary.AppendVarint(nil, total))
		ctx.EmitSide(key, []byte{byte(total)})
	}
	fs := dfs.New(true)
	eng := New(Config{Workers: 5, Seed: 7, Parallelism: parallelism}, fs)
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return res.Metrics, res.Output, fs.TotalChecksum("out/wordcount/")
}

// TestParallelMatchesSequential is the engine-level determinism guarantee:
// parallelism 1 and parallelism 8 produce identical metrics, identical
// collected output in identical order, and identical DFS output.
func TestParallelMatchesSequential(t *testing.T) {
	seqM, seqOut, seqSum := runWordCount(t, 1)
	parM, parOut, parSum := runWordCount(t, 8)
	if seqSum != parSum {
		t.Errorf("output checksum differs: sequential %x, parallel %x", seqSum, parSum)
	}
	if a, b := fmt.Sprintf("%+v", stripWall(seqM)), fmt.Sprintf("%+v", stripWall(parM)); a != b {
		t.Errorf("metrics differ:\nsequential: %s\nparallel:   %s", a, b)
	}
	if len(seqOut) != len(parOut) {
		t.Fatalf("collected output length differs: %d vs %d", len(seqOut), len(parOut))
	}
	for i := range seqOut {
		if seqOut[i].Key != parOut[i].Key || string(seqOut[i].Val) != string(parOut[i].Val) {
			t.Fatalf("collected output diverges at %d: %+v vs %+v", i, seqOut[i], parOut[i])
		}
	}
}

// TestTaskStateIsPerTask verifies the engine hands every map and reduce
// task its own TaskState value.
func TestTaskStateIsPerTask(t *testing.T) {
	tuples, _ := tuplesFromWords(strings.Fields("a b c d e f g h"))
	type state struct{ task int }
	var mu sync.Mutex
	seen := make(map[*state]bool)
	record := func(s *state) {
		mu.Lock()
		seen[s] = true
		mu.Unlock()
	}
	job := &Job{
		Name:      "state",
		TaskState: func() any { return new(state) },
		MapTuple: func(ctx *MapCtx, tu relation.Tuple) {
			s := ctx.State().(*state)
			if s.task != 0 && s.task != ctx.Task+1 {
				t.Errorf("map task %d saw state of task %d", ctx.Task, s.task-1)
			}
			s.task = ctx.Task + 1
			record(s)
			ctx.Emit(fmt.Sprintf("w%d", tu.Dims[0]), nil)
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			s := ctx.State().(*state)
			if s.task != 0 && s.task != ctx.Task+1 {
				t.Errorf("reduce task %d saw state of task %d", ctx.Task, s.task-1)
			}
			s.task = ctx.Task + 1
			record(s)
		},
	}
	eng := New(Config{Workers: 4, Parallelism: 8}, nil)
	if _, err := eng.RunTuples(job, tuples); err != nil {
		t.Fatal(err)
	}
	// 4 map states plus up to 4 reduce states (reducers without input
	// still run their task body and get state).
	if len(seen) < 5 {
		t.Errorf("expected distinct per-task states, saw %d", len(seen))
	}
}

// TestParallelOOMMatchesSequential checks the first-failure semantics
// survive parallel execution: the same reducer fails, with the same
// metrics on the completed reducers.
func TestParallelOOMMatchesSequential(t *testing.T) {
	var tuples []relation.Tuple
	for i := 0; i < 5000; i++ {
		tuples = append(tuples, relation.Tuple{Dims: []relation.Value{relation.Value(i % 7)}, Measure: 1})
	}
	run := func(parallelism int) (RoundMetrics, string) {
		job := &Job{
			Name: "oom",
			MapTuple: func(ctx *MapCtx, t relation.Tuple) {
				if t.Dims[0] == 3 {
					ctx.Emit("hot", []byte("0123456789abcdef"))
				} else {
					ctx.Emit(fmt.Sprintf("w%d", t.Dims[0]), nil)
				}
			},
			Reduce:           func(*RedCtx, string, [][]byte) {},
			FailOnReducerOOM: true,
			MemInflation:     8,
		}
		eng := New(Config{Workers: 4, OOMFactor: 2, Seed: 3, Parallelism: parallelism}, nil)
		res, err := eng.RunTuples(job, tuples)
		if err == nil {
			t.Fatal("expected OOM failure")
		}
		return res.Metrics, err.Error()
	}
	seqM, seqErr := run(1)
	parM, parErr := run(8)
	if seqErr != parErr {
		t.Errorf("error differs:\nsequential: %s\nparallel:   %s", seqErr, parErr)
	}
	if a, b := fmt.Sprintf("%+v", stripWall(seqM)), fmt.Sprintf("%+v", stripWall(parM)); a != b {
		t.Errorf("failure metrics differ:\nsequential: %s\nparallel:   %s", a, b)
	}
}

// BenchmarkEngineParallel compares real wall-clock of a CPU-heavy round at
// parallelism 1 against all cores, on a 10^5-tuple input. On a multi-core
// machine the parallel sub-benchmark should run ≥2× faster at 8 cores.
func BenchmarkEngineParallel(b *testing.B) {
	const n = 100_000
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{Dims: []relation.Value{relation.Value(i % 997)}, Measure: int64(i)}
	}
	job := func() *Job {
		return &Job{
			Name: "spin",
			MapTuple: func(ctx *MapCtx, t relation.Tuple) {
				// Simulated per-record CPU work: a few hundred hash
				// rounds, standing in for lattice walks.
				h := fnv.New64a()
				var buf [8]byte
				v := uint64(t.Measure)
				for i := 0; i < 200; i++ {
					binary.LittleEndian.PutUint64(buf[:], v)
					h.Write(buf[:])
					v = h.Sum64()
				}
				ctx.Emit(fmt.Sprintf("g%d", t.Dims[0]), binary.AppendUvarint(nil, v))
			},
			Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
				var sum uint64
				for _, v := range vals {
					u, _ := binary.Uvarint(v)
					sum += u
				}
				ctx.EmitKV(key, binary.AppendUvarint(nil, sum))
			},
		}
	}
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism-%d", p), func(b *testing.B) {
			eng := New(Config{Workers: 8, Seed: 1, Parallelism: p}, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunTuples(job(), tuples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
