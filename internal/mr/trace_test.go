package mr

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// runTraced executes the word-count job under a SliceTracer and returns the
// event stream with the (nondeterministic) Time fields zeroed.
func runTraced(t *testing.T, par int, faults string) []TraceEvent {
	t.Helper()
	words := strings.Fields(strings.Repeat("a b c d e f g h ", 50))
	tuples, _ := tuplesFromWords(words)
	st := &SliceTracer{}
	cfg := Config{Workers: 4, Seed: 7, Parallelism: par, Tracer: st}
	if faults != "" {
		fp, err := ParseFaultPlan(faults)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fp
	}
	eng := New(cfg, nil)
	counts := make(map[string]int64)
	if _, err := eng.RunTuples(wordCountJob(counts), tuples); err != nil {
		t.Fatal(err)
	}
	for i := range st.Events {
		st.Events[i].Time = time.Time{}
	}
	return st.Events
}

func TestTraceEventStream(t *testing.T) {
	events := runTraced(t, 1, "")
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	if events[0].Type != EvRoundStart || events[len(events)-1].Type != EvRoundEnd {
		t.Errorf("stream must open with round-start and close with round-end, got %s ... %s",
			events[0].Type, events[len(events)-1].Type)
	}
	if events[0].Tasks != 4 || events[0].Reducers != 4 {
		t.Errorf("round-start task counts: %+v", events[0])
	}
	var starts, successes, shuffles int
	lastTask := map[string]int{}
	for i, ev := range events {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has Seq %d: sequence must be consecutive", i, ev.Seq)
		}
		switch ev.Type {
		case EvTaskStart:
			starts++
			// Within one phase, task events must arrive in task-index order.
			if prev, ok := lastTask[ev.Phase]; ok && ev.Task < prev {
				t.Errorf("phase %s: task %d delivered after task %d", ev.Phase, ev.Task, prev)
			}
			lastTask[ev.Phase] = ev.Task
		case EvTaskSuccess:
			successes++
			if ev.CPUSeconds <= 0 {
				t.Errorf("task-success without CPU charge: %+v", ev)
			}
		case EvShuffle:
			shuffles++
			if ev.Records <= 0 || ev.Bytes <= 0 {
				t.Errorf("shuffle event without volume: %+v", ev)
			}
		case EvRoundStart, EvRoundEnd:
			if ev.Task != -1 {
				t.Errorf("round-level event carries task %d", ev.Task)
			}
		}
	}
	if starts != 8 || successes != 8 { // 4 mappers + 4 reducers, fault-free
		t.Errorf("starts=%d successes=%d, want 8/8", starts, successes)
	}
	if shuffles != 1 {
		t.Errorf("shuffles=%d, want 1", shuffles)
	}
}

func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	for _, faults := range []string{"", "*:map:*:crash", "*:reduce:1:mid-emit", "*:map:*:oom:0:1"} {
		seq := runTraced(t, 1, faults)
		par := runTraced(t, 8, faults)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("faults=%q: event stream differs between parallelism 1 and 8", faults)
		}
	}
}

func TestTraceFaultLifecycle(t *testing.T) {
	events := runTraced(t, 1, "0:map:2:crash:0:1")
	var seen []string
	for _, ev := range events {
		if ev.Phase == "map" && ev.Task == 2 {
			seen = append(seen, ev.Type)
		}
	}
	want := []string{EvTaskStart, EvFaultInjected, EvTaskRetry, EvTaskStart, EvTaskSuccess}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("faulted task lifecycle = %v, want %v", seen, want)
	}
	for _, ev := range events {
		if ev.Type == EvFaultInjected && ev.Fault == "" {
			t.Error("fault-injected event must name the fault kind")
		}
		if ev.Type == EvTaskRetry && ev.Err == "" {
			t.Error("task-retry event must carry the error")
		}
	}
}

func TestTracePermanentFailure(t *testing.T) {
	words := strings.Fields("a b c d")
	tuples, _ := tuplesFromWords(words)
	fp, err := ParseFaultPlan("0:map:0:crash:0:*")
	if err != nil {
		t.Fatal(err)
	}
	st := &SliceTracer{}
	eng := New(Config{Workers: 2, MaxAttempts: 2, Faults: fp, Tracer: st}, nil)
	counts := make(map[string]int64)
	if _, err := eng.RunTuples(wordCountJob(counts), tuples); err == nil {
		t.Fatal("expected permanent failure")
	}
	var failures int
	for _, ev := range st.Events {
		if ev.Type == EvTaskFailure {
			failures++
		}
	}
	if failures != 1 {
		t.Errorf("task-failure events = %d, want 1", failures)
	}
	last := st.Events[len(st.Events)-1]
	if last.Type != EvRoundEnd || !last.Failed || last.Err == "" {
		t.Errorf("failed round must close with a failed round-end, got %+v", last)
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.TraceEvent(TraceEvent{Seq: 0, Type: EvRoundStart, Task: -1})
	tr.TraceEvent(TraceEvent{Seq: 1, Type: EvTaskStart, Phase: "map"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EvTaskStart || ev.Phase != "map" {
		t.Errorf("round-tripped event: %+v", ev)
	}
}

// TestNilTracerHooksZeroAlloc asserts the acceptance criterion that disabled
// tracing adds zero allocations to the engine hot path: with Config.Tracer
// unset, tracerFor returns nil and every roundTracer hook the engine calls is
// an allocation-free nil-receiver no-op.
func TestNilTracerHooksZeroAlloc(t *testing.T) {
	eng := New(Config{Workers: 2}, nil)
	var tm TaskMetrics
	var rm RoundMetrics
	var err error = errString("x")
	allocs := testing.AllocsPerRun(200, func() {
		tr := eng.tracerFor(0, "job")
		tr.roundStart(2, 2)
		tr.startPhase(2)
		tr.attemptStart(PhaseMap, 0, 0, nil)
		tr.attemptRetry(PhaseMap, 0, 0, err)
		tr.attemptFailure(PhaseMap, 0, 1, err)
		tr.taskSuccess(PhaseMap, 0, 0, &tm)
		tr.flushPhase()
		tr.shuffle(&rm)
		tr.roundEnd(&rm)
	})
	if allocs != 0 {
		t.Errorf("nil-tracer hook path allocates %.0f times per run, want 0", allocs)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func benchEngineRun(b *testing.B, tracer Tracer) {
	words := strings.Fields(strings.Repeat("a b c d e f g h ", 200))
	tuples, _ := tuplesFromWords(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Config{Workers: 4, Parallelism: 1, Tracer: tracer}, nil)
		counts := make(map[string]int64)
		if _, err := eng.RunTuples(wordCountJob(counts), tuples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTraceOff(b *testing.B) { benchEngineRun(b, nil) }

func BenchmarkEngineTraceOn(b *testing.B) {
	benchEngineRun(b, &SliceTracer{})
}
