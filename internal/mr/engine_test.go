package mr

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

func tuplesFromWords(words []string) ([]relation.Tuple, map[string]int32) {
	dict := make(map[string]int32)
	var tuples []relation.Tuple
	for _, w := range words {
		code, ok := dict[w]
		if !ok {
			code = int32(len(dict))
			dict[w] = code
		}
		tuples = append(tuples, relation.Tuple{Dims: []relation.Value{code}, Measure: 1})
	}
	return tuples, dict
}

// wordCountJob counts occurrences of each word code. The shared counts map
// is guarded: reduce tasks may run concurrently.
func wordCountJob(counts map[string]int64) *Job {
	var mu sync.Mutex
	return &Job{
		Name: "wordcount",
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			key := fmt.Sprintf("w%d", t.Dims[0])
			ctx.Emit(key, []byte{1})
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			mu.Lock()
			counts[key] += int64(len(vals))
			mu.Unlock()
			ctx.EmitKV(key, binary.AppendVarint(nil, int64(len(vals))))
		},
	}
}

func TestWordCount(t *testing.T) {
	words := strings.Fields("a b a c a b d a e a b c")
	tuples, dict := tuplesFromWords(words)
	counts := make(map[string]int64)
	eng := New(Config{Workers: 3}, dfs.New(false))
	res, err := eng.RunTuples(wordCountJob(counts), tuples)
	if err != nil {
		t.Fatal(err)
	}
	if counts[fmt.Sprintf("w%d", dict["a"])] != 5 {
		t.Errorf("count(a) = %d", counts[fmt.Sprintf("w%d", dict["a"])])
	}
	if res.Metrics.ShuffleRecords != int64(len(words)) {
		t.Errorf("shuffle records %d, want %d", res.Metrics.ShuffleRecords, len(words))
	}
	if res.Metrics.OutputRecords != int64(len(dict)) {
		t.Errorf("output records %d, want %d", res.Metrics.OutputRecords, len(dict))
	}
	if res.Metrics.SimSeconds <= 0 || res.Metrics.WallSeconds < 0 {
		t.Error("times must be populated")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	words := strings.Fields(strings.Repeat("x y ", 500))
	tuples, _ := tuplesFromWords(words)
	run := func(withCombiner bool) int64 {
		counts := make(map[string]int64)
		var mu sync.Mutex
		job := wordCountJob(counts)
		job.Reduce = func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				total += int64(v[0])
			}
			mu.Lock()
			counts[key] += total
			mu.Unlock()
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
		}
		if withCombiner {
			job.Combine = func(key string, vals [][]byte) [][]byte {
				var total byte
				for _, v := range vals {
					total += v[0]
				}
				return [][]byte{{total}}
			}
		}
		eng := New(Config{Workers: 4}, nil)
		res, err := eng.RunTuples(job, tuples)
		if err != nil {
			t.Fatal(err)
		}
		// With the byte-sized toy combiner the count wraps; only the
		// shuffle accounting matters here.
		return res.Metrics.ShuffleRecords
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("combiner did not reduce shuffle: %d vs %d", with, without)
	}
	if with != 8 { // 4 mappers × 2 keys
		t.Errorf("combined shuffle = %d, want 8", with)
	}
	// Pre-combine accounting must still reflect the raw emits.
	// (verified indirectly by 'without' equaling the word count)
	if without != 1000 {
		t.Errorf("raw shuffle = %d, want 1000", without)
	}
}

func TestPartitionerRouting(t *testing.T) {
	tuples, _ := tuplesFromWords(strings.Fields("a b c d e f g h"))
	var reducerKeys [2][]string
	job := &Job{
		Name:     "routing",
		Reducers: 2,
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			ctx.Emit(fmt.Sprintf("w%d", t.Dims[0]), nil)
		},
		Partition: func(key string, r int) int {
			if key == "w0" {
				return 0
			}
			return 1
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			reducerKeys[ctx.Task] = append(reducerKeys[ctx.Task], key)
		},
	}
	eng := New(Config{Workers: 2}, nil)
	if _, err := eng.RunTuples(job, tuples); err != nil {
		t.Fatal(err)
	}
	if len(reducerKeys[0]) != 1 || reducerKeys[0][0] != "w0" {
		t.Errorf("reducer 0 got %v", reducerKeys[0])
	}
	if len(reducerKeys[1]) != 7 {
		t.Errorf("reducer 1 got %v", reducerKeys[1])
	}
}

func TestPartitionOutOfRangeFails(t *testing.T) {
	tuples, _ := tuplesFromWords([]string{"a"})
	job := &Job{
		Name:      "bad",
		MapTuple:  func(ctx *MapCtx, t relation.Tuple) { ctx.Emit("k", nil) },
		Partition: func(string, int) int { return 99 },
		Reduce:    func(*RedCtx, string, [][]byte) {},
	}
	eng := New(Config{Workers: 1}, nil)
	if _, err := eng.RunTuples(job, tuples); err == nil {
		t.Fatal("expected partition range error")
	}
}

func TestReducerOOM(t *testing.T) {
	// One giant key overloads one reducer; with FailOnReducerOOM the round
	// must fail and report the reducer.
	var tuples []relation.Tuple
	for i := 0; i < 5000; i++ {
		tuples = append(tuples, relation.Tuple{Dims: []relation.Value{1}, Measure: 1})
	}
	job := &Job{
		Name: "oom",
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			ctx.Emit("hot", []byte("0123456789abcdef"))
		},
		Reduce:           func(*RedCtx, string, [][]byte) {},
		FailOnReducerOOM: true,
		MemInflation:     8,
	}
	eng := New(Config{Workers: 4, OOMFactor: 2}, nil)
	res, err := eng.RunTuples(job, tuples)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	if !res.Metrics.Failed || !strings.Contains(res.Metrics.FailReason, "out of memory") {
		t.Errorf("metrics should record the failure: %+v", res.Metrics.FailReason)
	}
	// Without the flag the same job must succeed, paying spill time.
	job.FailOnReducerOOM = false
	res, err = eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var spill int64
	for _, r := range res.Metrics.Reducers {
		spill += r.SpillBytes
	}
	if spill == 0 {
		t.Error("expected spill accounting for oversized reducer input")
	}
}

func TestRunPairsChaining(t *testing.T) {
	// Round 1 emits partial sums as side output; round 2 consumes them.
	tuples, _ := tuplesFromWords(strings.Fields("a a b b b c"))
	first := &Job{
		Name:          "r1",
		CollectOutput: true,
		MapTuple: func(ctx *MapCtx, t relation.Tuple) {
			ctx.Emit(fmt.Sprintf("w%d", t.Dims[0]), []byte{1})
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			ctx.EmitSide(key, []byte{byte(len(vals))})
		},
	}
	eng := New(Config{Workers: 2}, nil)
	res1, err := eng.RunTuples(first, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Output) == 0 {
		t.Fatal("no side output collected")
	}
	got := make(map[string]int)
	var mu sync.Mutex
	second := &Job{
		Name:    "r2",
		MapPair: func(ctx *MapCtx, key string, val []byte) { ctx.Emit(key, val) },
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			total := 0
			for _, v := range vals {
				total += int(v[0])
			}
			mu.Lock()
			got[key] = total
			mu.Unlock()
		},
	}
	if _, err := eng.RunPairs(second, res1.Output); err != nil {
		t.Fatal(err)
	}
	if got["w0"] != 2 || got["w1"] != 3 || got["w2"] != 1 {
		t.Errorf("chained counts: %v", got)
	}
}

func TestMemTuples(t *testing.T) {
	eng := New(Config{Workers: 4}, nil)
	if m := eng.MemTuples(1000); m != 250 {
		t.Errorf("m = %d, want n/k = 250", m)
	}
	eng = New(Config{Workers: 4, MemTuples: 42}, nil)
	if m := eng.MemTuples(1000); m != 42 {
		t.Errorf("explicit m = %d", m)
	}
	eng = New(Config{Workers: 8}, nil)
	if m := eng.MemTuples(3); m != 1 {
		t.Errorf("tiny input m = %d, want 1", m)
	}
}

func TestMetricsAggregation(t *testing.T) {
	var jm JobMetrics
	jm.Add(RoundMetrics{ShuffleBytes: 100, ShuffleRecords: 10, SimSeconds: 2,
		Mappers: []TaskMetrics{{CPUSeconds: 1, Attempts: 1}}, Reducers: []TaskMetrics{{CPUSeconds: 3, Attempts: 1}},
		MappersExecuted: 1, ReducersExecuted: 1,
		MapTimeAvg: 1, ReduceTimeAvg: 3})
	jm.Add(RoundMetrics{ShuffleBytes: 50, ShuffleRecords: 5, SimSeconds: 1, Failed: true, FailReason: "x"})
	if jm.ShuffleBytes() != 150 || jm.ShuffleRecords() != 15 {
		t.Error("shuffle totals wrong")
	}
	if jm.SimSeconds() != 3 {
		t.Error("sim total wrong")
	}
	if failed, reason := jm.Failed(); !failed || reason != "x" {
		t.Error("failure not surfaced")
	}
	if jm.MapTimeAvg() != 1 || jm.ReduceTimeAvg() != 3 {
		t.Error("phase averages wrong")
	}
	if !strings.Contains(jm.String(), "FAILED") {
		t.Error("String must mention failures")
	}
}

func TestHashPartitionStableAndInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		p1 := HashPartition(7, key, 13)
		p2 := HashPartition(7, key, 13)
		if p1 != p2 {
			t.Fatal("hash partition unstable")
		}
		if p1 < 0 || p1 >= 13 {
			t.Fatalf("partition %d out of range", p1)
		}
	}
	if HashPartition(1, "x", 4) == HashPartition(2, "x", 4) &&
		HashPartition(1, "y", 4) == HashPartition(2, "y", 4) &&
		HashPartition(1, "z", 4) == HashPartition(2, "z", 4) &&
		HashPartition(1, "w", 4) == HashPartition(2, "w", 4) {
		t.Error("seed does not influence partitioning")
	}
}

func TestSplitCoversInput(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, k := range []int{1, 3, 8} {
			covered := 0
			prevHi := 0
			for i := 0; i < k; i++ {
				lo, hi := split(n, k, i)
				if lo != prevHi {
					t.Fatalf("n=%d k=%d: split %d starts at %d, want %d", n, k, i, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d k=%d: covered %d", n, k, covered)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	words := strings.Fields(strings.Repeat("a b c d e ", 100))
	tuples, _ := tuplesFromWords(words)
	var sums [2]uint64
	for round := range sums {
		fs := dfs.New(true)
		eng := New(Config{Workers: 3, Seed: 99}, fs)
		counts := make(map[string]int64)
		if _, err := eng.RunTuples(wordCountJob(counts), tuples); err != nil {
			t.Fatal(err)
		}
		sums[round] = fs.TotalChecksum("out/wordcount/")
	}
	if sums[0] != sums[1] {
		t.Error("engine output not deterministic")
	}
}

func TestCPUFactorsScaleTaskTime(t *testing.T) {
	tuples, _ := tuplesFromWords(strings.Fields(strings.Repeat("a b c d ", 200)))
	run := func(mapF, redF float64) (float64, float64) {
		counts := make(map[string]int64)
		job := wordCountJob(counts)
		job.MapCPUFactor = mapF
		job.ReduceCPUFactor = redF
		eng := New(Config{Workers: 4}, nil)
		res, err := eng.RunTuples(job, tuples)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.MapTimeAvg, res.Metrics.ReduceTimeAvg
	}
	m1, r1 := run(0, 0) // defaults: factor 1
	m2, r2 := run(2, 3)
	if m2 < 1.9*m1 || m2 > 2.1*m1 {
		t.Errorf("map factor 2: %v vs %v", m2, m1)
	}
	if r2 < 2.9*r1 || r2 > 3.1*r1 {
		t.Errorf("reduce factor 3: %v vs %v", r2, r1)
	}
}

func TestEmitSideAccounting(t *testing.T) {
	tuples, _ := tuplesFromWords(strings.Fields("a b c"))
	job := &Job{
		Name:          "side",
		CollectOutput: true,
		MapTuple: func(ctx *MapCtx, tu relation.Tuple) {
			ctx.Emit(fmt.Sprintf("w%d", tu.Dims[0]), nil)
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			ctx.EmitKV(key, []byte("final"))
			ctx.EmitSide(key, []byte("partial"))
		},
	}
	eng := New(Config{Workers: 2}, dfs.New(false))
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var side, out int64
	for _, r := range res.Metrics.Reducers {
		side += r.SideRecords
		out += r.OutRecords
	}
	if side != 3 || out != 3 {
		t.Errorf("side=%d out=%d, want 3/3", side, out)
	}
	if len(res.Output) != 3 {
		t.Errorf("collected %d side pairs", len(res.Output))
	}
	// Side output lands under side/<job>/, not in the primary output.
	if eng.FS.TotalRecords("out/side/") != 3 {
		t.Error("primary output records wrong")
	}
	if eng.FS.TotalRecords("side/side/") != 3 {
		t.Error("side output records wrong")
	}
}

func TestRunRequiresMatchingMapper(t *testing.T) {
	eng := New(Config{Workers: 2}, nil)
	if _, err := eng.RunTuples(&Job{Name: "x", MapPair: func(*MapCtx, string, []byte) {}}, nil); err == nil {
		t.Error("RunTuples without MapTuple must fail")
	}
	if _, err := eng.RunPairs(&Job{Name: "x", MapTuple: func(*MapCtx, relation.Tuple) {}}, nil); err == nil {
		t.Error("RunPairs without MapPair must fail")
	}
}
