package mr

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Phase identifies the half of a MapReduce round a task belongs to.
type Phase int

const (
	PhaseMap Phase = iota
	PhaseReduce
	// PhaseNode is the pseudo-phase of node-level faults: the fault's Task
	// selector names a failure domain (see Config.Nodes) instead of a task.
	PhaseNode
)

// String returns the phase's name.
func (p Phase) String() string {
	switch p {
	case PhaseMap:
		return "map"
	case PhaseReduce:
		return "reduce"
	case PhaseNode:
		return "node"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// PhaseByName resolves a phase by name.
func PhaseByName(name string) (Phase, error) {
	switch name {
	case "map", "m":
		return PhaseMap, nil
	case "reduce", "red", "r":
		return PhaseReduce, nil
	case "node":
		return PhaseNode, nil
	}
	return 0, fmt.Errorf("mr: unknown phase %q (want map, reduce or node)", name)
}

// FaultKind enumerates the injectable task failures. All are modeled on the
// failure classes a real Hadoop task tracker reports.
type FaultKind int

const (
	// FaultCrashBeforeEmit kills the attempt before the task body runs —
	// the process died on startup; nothing was emitted.
	FaultCrashBeforeEmit FaultKind = iota
	// FaultCrashMidEmit kills the attempt on its Nth emitted record
	// (Fault.AfterEmits, default 1), leaving partial output the engine
	// must discard.
	FaultCrashMidEmit
	// FaultSlowTask delays the attempt by Fault.Delay of real wall-clock
	// time (a straggler); the attempt then completes normally.
	FaultSlowTask
	// FaultTransientOOM kills the attempt before the task body runs with
	// an out-of-memory flavored reason — the transient kind that a retry
	// on a less loaded machine survives, as opposed to the deterministic
	// reducer-overflow failure of FailOnReducerOOM, which is never
	// retried.
	FaultTransientOOM
	// FaultNodeCrash kills a whole failure domain (a simulated worker
	// machine) at the round's shuffle barrier: completed map output stored
	// on the node becomes unfetchable (reducers observe fetch failures and
	// the engine re-executes the lost map tasks), and reduce attempts
	// placed on the node are killed and re-placed on live nodes. Node
	// faults use the "node" pseudo-phase and their Task selector names the
	// node index.
	FaultNodeCrash
)

// faultKindNames is the single source of the kind↔name mapping: it drives
// String, FaultKindByName (canonical name plus aliases) and the unknown-kind
// error text, so the three cannot drift apart as kinds are added. Order
// follows the FaultKind constants.
var faultKindNames = []struct {
	kind    FaultKind
	name    string
	aliases []string
}{
	{FaultCrashBeforeEmit, "crash", []string{"crash-before-emit"}},
	{FaultCrashMidEmit, "mid-emit", []string{"mid", "crash-mid-emit"}},
	{FaultSlowTask, "slow", []string{"slow-task"}},
	{FaultTransientOOM, "oom", []string{"transient-oom"}},
	{FaultNodeCrash, "node-crash", []string{"nodecrash"}},
}

// String returns the kind's spec name.
func (k FaultKind) String() string {
	for _, e := range faultKindNames {
		if e.kind == k {
			return e.name
		}
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultKindByName resolves a fault kind by spec name (canonical names and
// aliases).
func FaultKindByName(name string) (FaultKind, error) {
	names := make([]string, len(faultKindNames))
	for i, e := range faultKindNames {
		if name == e.name {
			return e.kind, nil
		}
		for _, a := range e.aliases {
			if name == a {
				return e.kind, nil
			}
		}
		names[i] = e.name
	}
	return 0, fmt.Errorf("mr: unknown fault kind %q (want %s)", name, strings.Join(names, ", "))
}

// AnyIndex is the wildcard for Fault.Round and Fault.Task.
const AnyIndex = -1

// AllAttempts makes Fault.Count match every attempt from Fault.Attempt on.
const AllAttempts = -1

// Fault deterministically targets one or more task attempts. A fault fires
// on attempt a of task t in phase p of engine round r iff every selector
// matches: Round ∈ {r, AnyIndex}, Phase == p, Task ∈ {t, AnyIndex}, and
// a ∈ [Attempt, Attempt+Count). Node faults (Phase == PhaseNode, Kind ==
// FaultNodeCrash) are matched per round, not per attempt: Task names the
// crashed node and Attempt/Count are unused.
type Fault struct {
	// Round is the 0-based index of the engine round (the engine counts
	// every executed job, across multi-round algorithms); AnyIndex
	// matches all rounds.
	Round int
	// Phase selects map or reduce tasks, or PhaseNode for node faults.
	Phase Phase
	// Task is the task index within the phase (for node faults: the node
	// index); AnyIndex matches all.
	Task int
	// Attempt is the first affected attempt, 0-based.
	Attempt int
	// Count is how many consecutive attempts are affected (default 1);
	// AllAttempts affects every attempt from Attempt on, which makes the
	// task fail permanently.
	Count int
	// Kind is the injected failure.
	Kind FaultKind
	// AfterEmits is the 1-based emit index FaultCrashMidEmit dies on
	// (default 1: crash on the first emitted record).
	AfterEmits int64
	// Delay is FaultSlowTask's added wall-clock latency (default 2ms).
	Delay time.Duration
}

func (f *Fault) matches(round int, phase Phase, task, attempt int) bool {
	if f.Phase != phase {
		return false
	}
	if f.Round != AnyIndex && f.Round != round {
		return false
	}
	if f.Task != AnyIndex && f.Task != task {
		return false
	}
	if attempt < f.Attempt {
		return false
	}
	count := f.Count
	if count == 0 {
		count = 1
	}
	return count == AllAttempts || attempt < f.Attempt+count
}

func (f *Fault) afterEmits() int64 {
	if f.AfterEmits <= 0 {
		return 1
	}
	return f.AfterEmits
}

func (f *Fault) delay() time.Duration {
	if f.Delay <= 0 {
		return 2 * time.Millisecond
	}
	return f.Delay
}

// String renders the fault in the spec syntax ParseFaultPlan accepts.
func (f *Fault) String() string {
	var b strings.Builder
	writeIdx := func(i int) {
		if i == AnyIndex {
			b.WriteByte('*')
		} else {
			b.WriteString(strconv.Itoa(i))
		}
	}
	writeIdx(f.Round)
	b.WriteByte(':')
	b.WriteString(f.Phase.String())
	b.WriteByte(':')
	writeIdx(f.Task)
	b.WriteByte(':')
	b.WriteString(f.Kind.String())
	switch {
	case f.Kind == FaultCrashMidEmit && f.AfterEmits > 1:
		fmt.Fprintf(&b, "@%d", f.AfterEmits)
	case f.Kind == FaultSlowTask && f.Delay > 0:
		fmt.Fprintf(&b, "@%d", int64(f.Delay/time.Millisecond))
	}
	if f.Attempt != 0 || (f.Count != 0 && f.Count != 1) {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(f.Attempt))
		if f.Count != 0 && f.Count != 1 {
			b.WriteByte(':')
			if f.Count == AllAttempts {
				b.WriteByte('*')
			} else {
				b.WriteString(strconv.Itoa(f.Count))
			}
		}
	}
	return b.String()
}

// FaultPlan is a deterministic fault-injection schedule: the first fault
// whose selectors match an attempt fires on it. A nil plan injects nothing.
type FaultPlan struct {
	Faults []Fault
}

// find returns the first fault targeting the given attempt, or nil.
func (p *FaultPlan) find(round int, phase Phase, task, attempt int) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		if p.Faults[i].matches(round, phase, task, attempt) {
			return &p.Faults[i]
		}
	}
	return nil
}

// String renders the plan in the spec syntax ParseFaultPlan accepts.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	parts := make([]string, len(p.Faults))
	for i := range p.Faults {
		parts[i] = p.Faults[i].String()
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the CLI fault spec: a comma-separated list of
// faults, each
//
//	round:phase:task:kind[:attempt[:count]]
//
// where round and task are 0-based indices or "*" (any), phase is "map" or
// "reduce", kind is crash | mid-emit | slow | oom optionally suffixed with
// "@n" (mid-emit: crash on the n-th emitted record; slow: delay in
// milliseconds), attempt is the first affected attempt (default 0), and
// count is how many consecutive attempts fail (default 1, "*" = all, i.e. a
// permanent failure).
//
// Node faults use the "node" pseudo-phase with the node-crash kind and no
// attempt/count selectors:
//
//	round:node:N:node-crash
//
// where N is the crashed failure domain (or "*" for all — which leaves no
// live node to re-execute on and fails the round once attempts run out).
// Examples:
//
//	1:reduce:0:mid-emit        round 1, reduce task 0 crashes mid-emit once
//	*:map:*:oom                first attempt of every map task OOMs
//	0:map:2:crash:0:*          map task 2 of round 0 fails permanently
//	*:reduce:1:slow@10         reduce task 1 is delayed 10ms every round
//	*:node:2:node-crash        node 2 dies at every round's shuffle barrier
//
// An empty spec yields a nil plan (no injection).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan FaultPlan
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, fmt.Errorf("mr: fault %q: %w", part, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return &plan, nil
}

func parseFault(s string) (Fault, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 4 || len(fields) > 6 {
		return Fault{}, fmt.Errorf("want round:phase:task:kind[:attempt[:count]], got %d fields", len(fields))
	}
	var f Fault
	var err error
	if f.Round, err = parseIndex(fields[0]); err != nil {
		return Fault{}, fmt.Errorf("round: %w", err)
	}
	if f.Phase, err = PhaseByName(fields[1]); err != nil {
		return Fault{}, err
	}
	if f.Task, err = parseIndex(fields[2]); err != nil {
		return Fault{}, fmt.Errorf("task: %w", err)
	}
	kind := fields[3]
	var arg int64 = -1
	if at := strings.IndexByte(kind, '@'); at >= 0 {
		v, err := strconv.ParseInt(kind[at+1:], 10, 64)
		if err != nil || v < 1 {
			return Fault{}, fmt.Errorf("kind argument %q: want a positive integer", kind[at+1:])
		}
		arg, kind = v, kind[:at]
	}
	if f.Kind, err = FaultKindByName(kind); err != nil {
		return Fault{}, err
	}
	if arg > 0 {
		switch f.Kind {
		case FaultCrashMidEmit:
			f.AfterEmits = arg
		case FaultSlowTask:
			f.Delay = time.Duration(arg) * time.Millisecond
		default:
			return Fault{}, fmt.Errorf("kind %s takes no @ argument", f.Kind)
		}
	}
	// Node faults pair the node pseudo-phase with the node-crash kind and
	// are matched per round, so attempt/count selectors make no sense.
	if (f.Kind == FaultNodeCrash) != (f.Phase == PhaseNode) {
		if f.Kind == FaultNodeCrash {
			return Fault{}, fmt.Errorf("node-crash faults use the node phase: round:node:N:node-crash")
		}
		return Fault{}, fmt.Errorf("the node phase only takes node-crash faults")
	}
	if f.Kind == FaultNodeCrash && len(fields) > 4 {
		return Fault{}, fmt.Errorf("node-crash faults take no attempt/count selectors")
	}
	if len(fields) >= 5 {
		a, err := strconv.Atoi(fields[4])
		if err != nil || a < 0 {
			return Fault{}, fmt.Errorf("attempt %q: want a non-negative integer", fields[4])
		}
		f.Attempt = a
	}
	if len(fields) == 6 {
		if fields[5] == "*" {
			f.Count = AllAttempts
		} else {
			c, err := strconv.Atoi(fields[5])
			if err != nil || c < 1 {
				return Fault{}, fmt.Errorf("count %q: want a positive integer or *", fields[5])
			}
			f.Count = c
		}
	}
	return f, nil
}

func parseIndex(s string) (int, error) {
	if s == "*" {
		return AnyIndex, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%q: want a non-negative integer or *", s)
	}
	return v, nil
}

// faultSignal is the panic value an injected crash raises inside a task
// attempt; the engine's attempt runner recovers it and converts it into a
// retryable attempt failure. Any other panic propagates unchanged.
type faultSignal struct {
	fault *Fault
}

// FaultError is the failure an injected fault produced, reported when a
// task exhausts Config.MaxAttempts. errors.As distinguishes it from the
// engine's deterministic failures (reducer OOM, partition range errors),
// which are never retried.
type FaultError struct {
	Kind    FaultKind
	Phase   Phase
	Task    int
	Attempt int
}

// Error describes the injected failure.
func (e *FaultError) Error() string {
	reason := "injected " + e.Kind.String()
	if e.Kind == FaultTransientOOM {
		reason = "injected transient out of memory"
	}
	return fmt.Sprintf("%s in %s task %d (attempt %d)", reason, e.Phase, e.Task, e.Attempt)
}

// injector arms at most one fault for one task attempt. A nil injector (the
// common, fault-free case) is inert: all methods are nil-safe.
type injector struct {
	fault   *Fault
	phase   Phase
	task    int
	attempt int
	emits   int64
}

// injectorFor returns the armed injector for an attempt, or nil when no
// fault targets it.
func (e *Engine) injectorFor(round int, phase Phase, task, attempt int) *injector {
	f := e.Cfg.Faults.find(round, phase, task, attempt)
	if f == nil {
		return nil
	}
	return &injector{fault: f, phase: phase, task: task, attempt: attempt}
}

// start fires start-of-attempt faults: crash kinds abort the attempt
// immediately, slow-task sleeps and lets the attempt proceed.
func (in *injector) start() {
	if in == nil {
		return
	}
	switch in.fault.Kind {
	case FaultCrashBeforeEmit, FaultTransientOOM:
		panic(faultSignal{in.fault})
	case FaultSlowTask:
		time.Sleep(in.fault.delay())
	}
}

// onEmit fires mid-emit crashes once the armed emit index is reached. The
// record being emitted counts as emitted (its bytes are charged to the
// attempt's wasted work) before the attempt dies, mimicking a task that
// crashed after handing a record to the collector.
func (in *injector) onEmit() {
	if in == nil || in.fault.Kind != FaultCrashMidEmit {
		return
	}
	in.emits++
	if in.emits >= in.fault.afterEmits() {
		panic(faultSignal{in.fault})
	}
}

// err converts the armed fault into the attempt's failure value.
func (in *injector) err(f *Fault) error {
	return &FaultError{Kind: f.Kind, Phase: in.phase, Task: in.task, Attempt: in.attempt}
}

// simDelay is the attempt's simulated straggler stall in seconds: the slow
// fault's injected delay (zero for other kinds and unfaulted attempts). It
// is the quantity Config.SpeculativeSlack and Config.TaskTimeout compare
// against — the deterministic analog of a Hadoop task reporting no progress —
// and is deliberately not charged to CPUSeconds, so a stalled run's
// simulated-time accounting stays identical to a fault-free run's.
func (in *injector) simDelay() float64 {
	if in == nil || in.fault.Kind != FaultSlowTask {
		return 0
	}
	return in.fault.delay().Seconds()
}

// killError is an engine-initiated attempt kill: the attempt's node crashed
// under it, no live node was left to place it on, or it exceeded
// Config.TaskTimeout. Kills are retried up to Config.MaxAttempts like
// injected faults, but a killError is deliberately not a *FaultError: a
// round that fails by exhausting its attempts on kills (e.g. every node
// dead) surfaces a plain, non-injected error.
type killError struct {
	reason  string
	phase   Phase
	task    int
	attempt int
}

// Error describes the kill.
func (e *killError) Error() string {
	return fmt.Sprintf("%s: %s task %d (attempt %d) killed", e.reason, e.phase, e.task, e.attempt)
}
