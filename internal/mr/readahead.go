package mr

import "io"

// prefetchChunkSize is the read-ahead unit. One chunk comfortably covers a
// framed block (blocks are at most 64 KiB of raw payload, compressed), so
// the merge loop almost never waits on a seek it could have overlapped.
const prefetchChunkSize = 64 << 10

// prefetchSegBudget is the memory one prefetching segment is charged: its
// three rotating chunk buffers.
const prefetchSegBudget = 3 * prefetchChunkSize

// defaultPrefetchBudget bounds a reduce task's total read-ahead memory;
// segments past the budget (granted in source order) read synchronously.
const defaultPrefetchBudget = 4 << 20

// prefetchChunk is one read-ahead unit handed from the background reader
// to the consuming merge loop.
type prefetchChunk struct {
	buf []byte
	err error // terminal: io.EOF after the last chunk, or the read error
}

// prefetchReader reads a [off, off+length) window of a ReaderAt ahead of
// its consumer: a background goroutine reads fixed chunks and sends them
// over a buffered channel, so block decode and record merge overlap disk
// reads. Double-buffered — one chunk in the channel, one being read — the
// same discipline as the spill writer's two buffers, in the opposite
// direction.
//
// hits counts chunks that were already waiting when the consumer asked
// (the prefetch won the race); misses counts chunks the consumer had to
// block for. Both are wall-clock-dependent and therefore volatile metrics.
//
// Lifecycle: stop kills the background goroutine (idempotent); reset
// restarts the window from the beginning, for retried reduce attempts.
// The owner must stop the reader before its file is closed.
type prefetchReader struct {
	src    io.ReaderAt
	off    int64
	length int64
	hits   *int64
	misses *int64

	ch   chan prefetchChunk
	quit chan struct{}
	cur  []byte // unconsumed tail of the current chunk
	err  error  // sticky terminal state
	// Three chunk buffers rotated between reader and consumer: at any
	// moment one may be held by the consumer, one queued in the channel,
	// and one being filled.
	bufs [3][]byte
	next int
}

func newPrefetchReader(src io.ReaderAt, off, length int64, hits, misses *int64) *prefetchReader {
	r := &prefetchReader{src: src, off: off, length: length, hits: hits, misses: misses}
	r.start()
	return r
}

func (r *prefetchReader) start() {
	r.ch = make(chan prefetchChunk, 1)
	r.quit = make(chan struct{})
	r.cur = nil
	r.err = nil
	go r.loop(r.ch, r.quit)
}

// loop reads the window chunk by chunk, rotating the three buffers: with
// the channel holding at most one chunk and the consumer draining its
// chunk before receiving the next, the buffer being filled is never one
// still being read.
func (r *prefetchReader) loop(ch chan prefetchChunk, quit chan struct{}) {
	defer close(ch)
	pos := int64(0)
	for pos < r.length {
		n := r.length - pos
		if n > prefetchChunkSize {
			n = prefetchChunkSize
		}
		buf := r.bufs[r.next%3]
		if cap(buf) < int(n) {
			buf = make([]byte, n)
			r.bufs[r.next%3] = buf
		}
		buf = buf[:n]
		r.next++
		_, err := r.src.ReadAt(buf, r.off+pos)
		pos += n
		select {
		case ch <- prefetchChunk{buf: buf, err: err}:
		case <-quit:
			return
		}
		if err != nil {
			return
		}
	}
}

// Read serves decoded-side reads from the prefetched chunks.
func (r *prefetchReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		var c prefetchChunk
		var ok bool
		select {
		case c, ok = <-r.ch:
			if ok && r.hits != nil {
				*r.hits++
			}
		default:
			c, ok = <-r.ch
			if ok && r.misses != nil {
				*r.misses++
			}
		}
		if !ok {
			r.err = io.EOF
			return 0, r.err
		}
		if c.err != nil {
			r.err = c.err
			return 0, r.err
		}
		r.cur = c.buf
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// stop terminates the background goroutine. Idempotent.
func (r *prefetchReader) stop() {
	if r.quit == nil {
		return
	}
	close(r.quit)
	// Drain so a sender blocked on ch observes quit or its send succeeds.
	for range r.ch {
	}
	r.quit = nil
}

// reset restarts the window from the beginning with a fresh goroutine.
func (r *prefetchReader) reset() {
	r.stop()
	r.start()
}
