// Package mr is the MapReduce substrate the cube algorithms run on: a
// deterministic in-process engine that executes map/combine/shuffle/reduce
// rounds over k simulated machines with memory m each (the cluster model of
// §2.3 of the paper), accounts every intermediate record and byte exactly,
// simulates skew-induced spill I/O and out-of-memory failures, and converts
// the accounting into simulated wall-clock time through a CostModel.
//
// Tasks within a round are independent — the cluster model's map and reduce
// tasks share nothing until the shuffle barrier — and the engine exploits
// that: Config.Parallelism runs a round's map tasks, and then its reduce
// tasks, on a goroutine worker pool. Every task accumulates its own
// TaskMetrics, shuffle buckets and collected output, and the engine merges
// them in task-index order after each barrier, so runs are bit-for-bit
// identical at any parallelism level (Parallelism 1 degenerates to a plain
// sequential loop). The one obligation this puts on jobs is task isolation:
// map/reduce closures must not mutate shared captured state; per-task
// scratch (reusable buffers, mapper-local aggregation tables) belongs in
// Job.TaskState, which hands each task a private value reachable through
// MapCtx.State/RedCtx.State.
//
// The engine also models MapReduce's core robustness contract: failed tasks
// are transparently re-executed and the job's output is unchanged. Failures
// are injected deterministically through Config.Faults (crash-before-emit,
// crash-mid-emit, slow-task, transient OOM, addressed by round, phase, task
// and attempt); a failed attempt's partial output — buffered map emits,
// reduce-side DFS appends — is discarded, the task re-runs with fresh
// TaskState up to Config.MaxAttempts, and the merged result stays
// bit-for-bit identical to a fault-free run. Attempt counts, retry latency
// and wasted-work bytes are surfaced in TaskMetrics/RoundMetrics. This
// second isolation obligation on jobs is re-entrancy: a task body must
// behave identically when re-run from scratch, so cross-task shared state
// it mutates must be idempotent under replay (monotone set unions, maxima)
// and anything consumed incrementally (RNG streams, cursors) must live in
// TaskState, which is rebuilt per attempt.
//
// Beyond task-level faults, the engine models node-level failure domains:
// every task attempt is deterministically placed on one of Config.Nodes
// simulated machines (PlaceNode), and a node-crash fault kills a node at a
// round's shuffle barrier. Completed map output stored on the dead node
// becomes unfetchable — reducers observe fetch failures and the engine
// re-executes the lost map tasks on live nodes (Hadoop's
// re-run-completed-maps-on-node-loss semantics) — and reduce attempts
// placed on the dead node are killed and re-placed. Straggler mitigation
// rides on the same scheduler: Config.SpeculativeSlack launches one
// deterministic backup attempt for a task whose injected stall exceeds the
// slack (the winner is the attempt with the lowest simulated finish time,
// ties keeping the lower attempt index), and Config.TaskTimeout kills and
// retries attempts that stall past it. Because attempts are byte-identical
// (the re-entrancy contract), re-execution, speculation and kills never
// change a single output byte; they only move work and show up in the
// recovery counters.
package mr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr/blockcodec"
	"github.com/spcube/spcube/internal/relation"
)

// Pair is one intermediate or output key/value record.
type Pair struct {
	Key string
	Val []byte
}

// RecordOverhead is the per-record framing overhead (length prefixes)
// charged in byte accounting, mimicking Hadoop's serialized form.
const RecordOverhead = 8

// MinOOMMemTuples is the absolute floor, in records, of a machine's memory
// used by spill and out-of-memory checks: tiny inputs do not shrink the
// physical machines.
const MinOOMMemTuples = 4000

func pairBytes(key string, val []byte) int64 {
	return int64(len(key) + len(val) + RecordOverhead)
}

// Config describes the simulated cluster.
type Config struct {
	// Workers is k: the number of machines; each round runs Workers map
	// tasks and (by default) Workers reduce tasks.
	Workers int
	// MemTuples is m: a machine's memory expressed in input tuples (the
	// paper sets m = n/k). If zero, the engine derives it as n/k at run
	// time from the current input.
	MemTuples int
	// Cost converts accounting into simulated seconds.
	Cost CostModel
	// OOMFactor: a reducer whose (inflation-adjusted) input bytes exceed
	// OOMFactor × machine memory bytes fails when the job sets
	// FailOnReducerOOM. Default 48 (roughly: a reducer can externally
	// sort/merge a few dozen memory-fuls before its task trackers give
	// up, but not an unbounded pile-up).
	OOMFactor float64
	// Seed namespaces hash partitioning so runs are reproducible.
	Seed uint64
	// Parallelism is the number of goroutines executing a round's tasks:
	// 0 defaults to runtime.GOMAXPROCS(0), 1 runs tasks sequentially.
	// Results — output, metrics, simulated time — are bit-for-bit
	// identical at every setting; only real wall-clock changes.
	Parallelism int
	// Faults deterministically injects task failures (see FaultPlan);
	// nil injects nothing. Failed attempts are re-executed with fresh
	// TaskState and their partial output discarded, so a faulted run's
	// output and accounting are bit-for-bit identical to a fault-free
	// run — only the recovery counters (Attempts, RetryWallSeconds,
	// WastedBytes) and real wall-clock differ.
	Faults *FaultPlan
	// MaxAttempts bounds how many times one task is executed before its
	// failure becomes permanent and fails the round (Hadoop's
	// mapreduce.map.maxattempts). 0 defaults to 4. Only injected faults
	// and engine-initiated kills (node loss, task timeout) are retried:
	// deterministic failures — reducer OOM under FailOnReducerOOM,
	// partition range errors — would fail identically again and abort the
	// round on the first attempt.
	MaxAttempts int
	// Nodes is the number of simulated failure domains (machines) task
	// attempts and their stored map output are placed on; 0 defaults to
	// Workers. Placement is a deterministic hash of (Seed, round, phase,
	// task, attempt), so node-crash faults lose the same map outputs and
	// kill the same reduce attempts at any Parallelism.
	Nodes int
	// SpeculativeSlack enables straggler mitigation when positive: a task
	// attempt whose injected stall (the slow fault's delay, in simulated
	// seconds) exceeds the slack gets one deterministic backup attempt at
	// the next attempt index. The winner is the attempt with the lowest
	// simulated finish time (CPU + stall), ties keeping the lower attempt
	// index; the loser's output is discarded into WastedBytes. Output and
	// deterministic metrics are unchanged — only the Speculative* recovery
	// counters record the race.
	SpeculativeSlack float64
	// TaskTimeout, when positive, kills a task attempt whose injected
	// stall exceeds it (in simulated seconds — the analog of Hadoop's
	// progress timeout) and retries it, counting against MaxAttempts.
	// Checked before SpeculativeSlack.
	TaskTimeout float64
	// Tracer receives structured lifecycle events (round start/end, task
	// attempt start/success/failure/retry, shuffle, spill, fault
	// injection). Nil — the default — disables tracing; the engine then
	// performs no trace work and no trace allocations. The delivered
	// stream is deterministic: identical, except for timestamps, at any
	// Parallelism and under any fault plan (see Tracer).
	Tracer Tracer
	// SpillBudgetBytes, when positive, makes the shuffle out-of-core: a
	// map attempt whose buffered emits exceed the budget sorts and flushes
	// them to an on-disk run file (front-coded, see keycodec.go), and
	// reducers stream a k-way merge over the run readers, holding one
	// record per run instead of the whole input. 0 — the default — keeps
	// every intermediate record on the heap. Output is byte-identical at
	// every budget × every Parallelism for jobs without a combiner; with a
	// combiner, at every Parallelism for a fixed budget (spilling combines
	// per flushed chunk, which regroups partial states — final cube values
	// are unchanged because all aggregate states are exact integers, but
	// intermediate record boundaries shift).
	SpillBudgetBytes int64
	// SpillDir is where spill run files live (a private, lazily created
	// subdirectory per run, removed — even on failure — when the run
	// ends). Empty means os.TempDir().
	SpillDir string
	// SpillCodec names the block codec spill runs are written through:
	// "raw" (the default — checksummed frames, no compression) or "lz"
	// (an LZ4-family compressor; sorted front-coded runs typically shrink
	// severalfold, and the cost model charges the compressed size). See
	// internal/mr/blockcodec. Reducer output is byte-identical across
	// codecs; only I/O accounting changes.
	SpillCodec string
	// MergeFanIn caps how many runs a reducer merges in one streaming
	// pass. A reduce task facing more live runs (tiny budgets under heavy
	// spilling produce hundreds) first merges groups of MergeFanIn runs
	// into intermediate on-disk runs — possibly over several passes — and
	// only then streams the final merge, bounding open-run memory and
	// reproducing Hadoop's io.sort.factor semantics. 0 means the default
	// of 64; values below 2 are raised to 2. Reducer input order is
	// byte-identical at any fan-in (contiguous grouping preserves the
	// source-index tiebreak).
	MergeFanIn int
	// SpillSync disables the background spill writer: flushes are written
	// inline on the task goroutine, with no encode/I-O overlap. The
	// pipeline's benchmark baseline, and a debugging aid.
	SpillSync bool
	// SpillWriteWrapper, when set, wraps every spill run file's writer —
	// the fault-injection hook for the disk plane. A wrapper that returns
	// ENOSPC, another write error, or a silent short write makes the
	// owning attempt fail with a clean, retryable task error instead of a
	// panic or a truncated run. Test-only; nil in production.
	SpillWriteWrapper func(w io.Writer) io.Writer
	// Executor selects the execution backend attempts are dispatched
	// through: nil — the default — is the in-process local backend (the
	// goroutine pool above, with node crashes fully simulated); the proc
	// backend (internal/mr/exec) backs each failure domain with a real
	// worker process and realizes node-crash faults by SIGKILLing it.
	// Output is byte-identical across backends: see the Executor interface
	// for the determinism argument.
	Executor Executor
	// Context, when non-nil, cancels the run: it is checked at phase
	// boundaries and between task attempts, so SIGINT-driven cancellation
	// stops a round in bounded time — in-flight rounds included — rather
	// than only between rounds. A canceled run returns the context's
	// error, plainly (not retryable, not a fault).
	Context context.Context
}

// Job describes one MapReduce round. Exactly one of MapTuple and MapPair
// must be set, matching the input fed to Run.
type Job struct {
	Name string
	// Reducers overrides the number of reduce tasks (default
	// Config.Workers). SP-Cube uses Workers+1: the extra reducer 0
	// aggregates skewed c-groups (§5).
	Reducers int

	MapTuple func(ctx *MapCtx, t relation.Tuple)
	MapPair  func(ctx *MapCtx, key string, val []byte)
	// MapFlush runs at the end of each map task; mappers that hold local
	// state (partial aggregates of skewed groups, map-side hashes) emit
	// it here.
	MapFlush func(ctx *MapCtx)

	// Combine, when set, merges each map task's output values per key
	// before the shuffle (Hadoop combiner semantics).
	Combine func(key string, vals [][]byte) [][]byte

	// Partition routes a key to a reducer in [0, reducers). Default:
	// hash partitioning.
	Partition func(key string, reducers int) int

	Reduce func(ctx *RedCtx, key string, vals [][]byte)

	// TaskState, when set, is called once per map task and once per reduce
	// task to create that task's private scratch state, reachable through
	// MapCtx.State/RedCtx.State. Tasks of a round may run concurrently
	// (Config.Parallelism), so reusable buffers and task-local aggregation
	// tables must live here rather than in variables captured by the
	// map/reduce closures.
	TaskState func() any

	// MapCPUFactor and ReduceCPUFactor scale the tasks' CPU charges,
	// modelling per-framework operator efficiency (e.g. Pig's reduce-side
	// algebraic bag processing is heavier than Hive's streaming merge of
	// serialized counters). Calibrated once against the orderings of the
	// paper's Figure 4 and held fixed everywhere; default 1.
	MapCPUFactor    float64
	ReduceCPUFactor float64

	// FailOnReducerOOM makes reducer memory overflow fatal (Hive model)
	// rather than absorbed as spill I/O time.
	FailOnReducerOOM bool
	// MemInflation scales reducer input bytes when checking memory
	// pressure (deserialized-object overhead). Default 1.
	MemInflation float64
	// CollectOutput retains reducer EmitSide pairs in the RoundResult for
	// use as the next round's input.
	CollectOutput bool
	// OutputPrefix overrides the DFS prefix reducer output is written
	// under (default "out/<job name>/").
	OutputPrefix string
}

// RoundResult is the outcome of one engine round.
type RoundResult struct {
	Metrics RoundMetrics
	// Output holds the reducers' EmitKV pairs when CollectOutput is set.
	Output []Pair
}

// Engine executes rounds against a shared simulated DFS.
type Engine struct {
	Cfg Config
	FS  *dfs.FS
	// rounds counts executed jobs; Fault.Round selects against it.
	rounds int
	// traceSeq numbers delivered trace events; only touched from the run
	// goroutine (events are flushed at phase barriers).
	traceSeq int64
	// inBytesPtr/N/Val memoize tupleInputBytes for the last input slice:
	// multi-round algorithms call RunTuples repeatedly on the same
	// relation, and the full encoding pass is worth running only once.
	inBytesPtr *relation.Tuple
	inBytesN   int
	inBytesVal int64
}

// New creates an engine. When fs is nil a discard-mode DFS is created.
func New(cfg Config, fs *dfs.FS) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OOMFactor <= 0 {
		cfg.OOMFactor = 48
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCost()
	}
	if fs == nil {
		fs = dfs.New(true)
	}
	return &Engine{Cfg: cfg, FS: fs}
}

// MemTuples returns the machine memory in tuples for an input of n tuples.
func (e *Engine) MemTuples(n int) int {
	if e.Cfg.MemTuples > 0 {
		return e.Cfg.MemTuples
	}
	m := n / e.Cfg.Workers
	if m < 1 {
		m = 1
	}
	return m
}

// MapCtx is the context passed to map functions.
type MapCtx struct {
	Task    int
	job     *Job
	eng     *Engine
	out     []Pair
	state   any
	metrics TaskMetrics
	inject  *injector
	// arena batches EmitCopied/EmitBytes copies for the attempt: records
	// are appended to one growing buffer instead of one allocation each.
	// Arena bytes are written once and never modified, so emitted slices
	// (and the key strings EmitBytes builds over them) stay valid as the
	// arena grows, and die with the attempt on a fault. After a spill
	// flushes the buffered records to disk the arena is reused from the
	// start — nothing references the flushed bytes anymore.
	arena []byte

	// Out-of-core spill state (Config.SpillBudgetBytes > 0): pending
	// counts raw emitted bytes since the last flush; once it crosses
	// budget, spillNow combines, partitions, sorts and appends the
	// buffered records to the attempt's run file.
	reducers    int
	partition   func(string, int) int
	budget      int64
	pending     int64
	sd          *spillDir
	spill       *spillFile
	sortScratch []Pair
	encBuf      []byte
	traceSpill  func(bytes int64)

	// Spill pipeline state: flushes are encoded through codec into one of
	// writer's double buffers and written by its background goroutine
	// (foreground, when Config.SpillSync). blockBuf is codec scratch;
	// flushes records each flush's compressed size so the attempt can emit
	// spill-flush trace events once its writer has joined.
	codec           blockcodec.Codec
	writer          *spillWriter
	blockBuf        []byte
	flushes         []flushRec
	traceSpillFlush func(f flushRec)
}

// flushRec is one spill flush's post-write accounting: the framed,
// compressed bytes the background writer put on disk and the records they
// hold.
type flushRec struct {
	bytes   int64
	records int64
}

// mapOutput is one completed map task's shuffle contribution: the sorted
// in-memory per-reducer buckets plus, when the attempt spilled, its run
// file of earlier sorted flushes.
type mapOutput struct {
	buckets [][]Pair
	spill   *spillFile
}

// State returns the task-private state created by Job.TaskState, or nil
// when the job has no TaskState hook.
func (c *MapCtx) State() any { return c.state }

// Emit sends a key/value record to the shuffle.
//
// This is the zero-copy fast path: the engine retains val as passed — it
// is NOT copied — and the record may be read as late as the reduce phase.
// The caller must therefore not modify val's backing array after the
// call. Mappers that build values in a reusable scratch buffer must emit
// through EmitCopied (or EmitBytes) instead; passing one immutable buffer
// to several Emit calls (aliased values) is fine.
func (c *MapCtx) Emit(key string, val []byte) {
	c.out = append(c.out, Pair{Key: key, Val: val})
	pb := pairBytes(key, val)
	c.metrics.PreCombineRecords++
	c.metrics.PreCombineBytes += pb
	c.metrics.CPUSeconds += c.eng.Cfg.Cost.MapCPUPerEmit
	c.inject.onEmit()
	if c.budget > 0 {
		c.pending += pb
		if c.pending >= c.budget {
			c.spillNow()
		}
	}
}

// taskAbort carries a non-fault, non-retryable error (spill I/O failures
// inside Emit) out of a map function's call stack; the attempt wrapper
// recovers it into a plain error.
type taskAbort struct{ err error }

// spillNow flushes the attempt's buffered output toward its on-disk run
// file: combine (jobs with a combiner pre-aggregate each flushed chunk,
// Hadoop's per-spill combining), partition, sort, encode the flush into a
// double buffer and hand it to the background writer, then reset the emit
// buffer and arena for the next chunk. The foreground only blocks when
// both buffers are in flight — that wait is the spillWriteStallNs metric.
// Write errors surface at the attempt's writer join, not here.
func (c *MapCtx) spillNow() {
	out := c.out
	if c.job.Combine != nil {
		out = c.eng.combine(c.job, c, out)
	}
	buckets, err := c.eng.partitionSort(c.job, c, out)
	if err != nil {
		panic(taskAbort{err})
	}
	if c.spill == nil {
		sf, err := c.sd.create("run-m-*")
		if err != nil {
			panic(taskAbort{err})
		}
		c.spill = sf
		c.writer = newSpillWriter(sf, c.eng.Cfg.SpillSync)
	}
	buf, stall := c.writer.acquire()
	c.metrics.SpillWriteStallNs += stall.Nanoseconds()
	var encBytes int64
	buf.framed, buf.segs, encBytes = encodeSpill(buckets, c.codec, buf.framed, &c.encBuf, &c.blockBuf)
	written := int64(len(buf.framed))
	var records int64
	for i := range buf.segs {
		records += buf.segs[i].records
	}
	c.writer.submit(buf)
	c.metrics.Spills++
	c.metrics.SpillBytes += encBytes
	c.metrics.CompressedSpillBytes += written
	c.metrics.CPUSeconds += float64(written) / c.eng.Cfg.Cost.DiskBytesPerSec
	if c.traceSpill != nil {
		c.traceSpill(encBytes)
	}
	c.flushes = append(c.flushes, flushRec{bytes: written, records: records})
	c.out = c.out[:0]
	c.arena = c.arena[:0]
	c.pending = 0
}

// EmitCopied sends a key/value record to the shuffle, copying val into the
// attempt's arena first: the caller may immediately reuse val's backing
// buffer. The copy costs amortized zero allocations.
func (c *MapCtx) EmitCopied(key string, val []byte) {
	c.Emit(key, c.arenaAppend(val))
}

// EmitBytes sends a key/value record to the shuffle with both key and
// value built in reusable scratch buffers: both are copied into the
// attempt's arena, and the key string is built over its arena bytes
// without a separate allocation. This is the allocation-free emit path
// for mappers that encode keys per record.
func (c *MapCtx) EmitBytes(key, val []byte) {
	k := c.arenaAppend(key)
	v := c.arenaAppend(val)
	var ks string
	if len(k) > 0 {
		// Safe: arena bytes are append-only, so the string over them is
		// as immutable as any other string.
		ks = unsafe.String(&k[0], len(k))
	}
	c.Emit(ks, v)
}

// arenaAppend copies b into the attempt arena and returns the copy,
// capped so appends through the returned slice cannot touch later arena
// content.
func (c *MapCtx) arenaAppend(b []byte) []byte {
	n := len(c.arena)
	c.arena = append(c.arena, b...)
	return c.arena[n:len(c.arena):len(c.arena)]
}

// ChargeOps reports n elementary algorithm operations (hash probes, lattice
// node visits) for CPU cost accounting.
func (c *MapCtx) ChargeOps(n int64) {
	c.metrics.Ops += n
	c.metrics.CPUSeconds += float64(n) * c.eng.Cfg.Cost.CPUPerOp
}

// Workers returns the cluster size k.
func (c *MapCtx) Workers() int { return c.eng.Cfg.Workers }

// RedCtx is the context passed to reduce functions.
type RedCtx struct {
	Task     int
	job      *Job
	eng      *Engine
	file     string
	sideFile string
	collect  []Pair
	state    any
	metrics  *TaskMetrics
	scratch  []byte
	inject   *injector
	// External-aggregation spill state: oversized groups are encoded
	// through the spill codec (SpillBytes is the exact encoded size) and,
	// when out-of-core mode is on, block-framed through codec and written
	// to a per-attempt run file (frameBuf/blockBuf are framing scratch).
	sd         *spillDir
	budget     int64
	extSpill   *spillFile
	encBuf     []byte
	codec      blockcodec.Codec
	frameBuf   []byte
	blockBuf   []byte
	traceSpill func(bytes int64)
}

// discardExtSpill deletes the attempt's external-aggregation run file (it
// is written for its I/O, never merged back); called when the attempt ends,
// on every path.
func (c *RedCtx) discardExtSpill() {
	c.extSpill.discard()
	c.extSpill = nil
}

// State returns the task-private state created by Job.TaskState, or nil
// when the job has no TaskState hook.
func (c *RedCtx) State() any { return c.state }

// EmitKV writes one output record (an encoded key/value) to the reducer's
// DFS output file.
func (c *RedCtx) EmitKV(key string, val []byte) {
	c.metrics.OutRecords++
	c.metrics.OutBytes += pairBytes(key, val)
	c.metrics.CPUSeconds += c.eng.Cfg.Cost.ReduceCPUPerEmit
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, '\t')
	c.scratch = append(c.scratch, val...)
	c.eng.FS.Append(c.file, c.scratch)
	c.inject.onEmit()
}

// EmitSide writes one record to the reducer's side-output file (kept apart
// from the job's primary output) and, when the job collects output, retains
// it for the next round — how multi-round algorithms pass intermediate
// results forward.
func (c *RedCtx) EmitSide(key string, val []byte) {
	c.metrics.SideRecords++
	c.metrics.SideBytes += pairBytes(key, val)
	c.metrics.CPUSeconds += c.eng.Cfg.Cost.ReduceCPUPerEmit
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, '\t')
	c.scratch = append(c.scratch, val...)
	c.eng.FS.Append(c.sideFile, c.scratch)
	if c.job.CollectOutput {
		c.collect = append(c.collect, Pair{Key: key, Val: append([]byte(nil), val...)})
	}
	c.inject.onEmit()
}

// ChargeOps reports n elementary algorithm operations.
func (c *RedCtx) ChargeOps(n int64) {
	c.metrics.Ops += n
	c.metrics.CPUSeconds += float64(n) * c.eng.Cfg.Cost.CPUPerOp
}

// Workers returns the cluster size k.
func (c *RedCtx) Workers() int { return c.eng.Cfg.Workers }

// RunTuples executes job with the relation's tuples as input, split equally
// among the Workers map tasks (the paper's load assumption, §2.3).
func (e *Engine) RunTuples(job *Job, tuples []relation.Tuple) (*RoundResult, error) {
	if job.MapTuple == nil {
		return nil, fmt.Errorf("mr: job %s: RunTuples requires MapTuple", job.Name)
	}
	n := len(tuples)
	inBytes := e.tupleInputBytes(tuples)
	return e.run(job, n, inBytes, func(task int, ctx *MapCtx) {
		lo, hi := split(n, e.Cfg.Workers, task)
		for i := lo; i < hi; i++ {
			ctx.metrics.InRecords++
			ctx.metrics.CPUSeconds += e.Cfg.Cost.MapCPUPerRecord
			job.MapTuple(ctx, tuples[i])
		}
		ctx.metrics.InBytes = inBytes * int64(hi-lo) / int64(max(n, 1))
	})
}

// RunPairs executes job with key/value pairs as input (chained rounds).
func (e *Engine) RunPairs(job *Job, pairs []Pair) (*RoundResult, error) {
	if job.MapPair == nil {
		return nil, fmt.Errorf("mr: job %s: RunPairs requires MapPair", job.Name)
	}
	n := len(pairs)
	var inBytes int64
	for i := range pairs {
		inBytes += pairBytes(pairs[i].Key, pairs[i].Val)
	}
	return e.run(job, n, inBytes, func(task int, ctx *MapCtx) {
		lo, hi := split(n, e.Cfg.Workers, task)
		for i := lo; i < hi; i++ {
			ctx.metrics.InRecords++
			ctx.metrics.InBytes += pairBytes(pairs[i].Key, pairs[i].Val)
			ctx.metrics.CPUSeconds += e.Cfg.Cost.MapCPUPerRecord
			job.MapPair(ctx, pairs[i].Key, pairs[i].Val)
		}
	})
}

func (e *Engine) run(job *Job, n int, totalInBytes int64, feed func(task int, ctx *MapCtx)) (*RoundResult, error) {
	memTuples := e.MemTuples(n)
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = e.Cfg.Workers
	}
	// Machines have an absolute memory floor regardless of how small the
	// input is (m = n/k is the paper's asymptotic assumption; a physical
	// machine does not shrink with n). The floor only affects memory-
	// pressure checks, not the skew threshold.
	oomMem := float64(memTuples)
	if oomMem < float64(MinOOMMemTuples) {
		oomMem = float64(MinOOMMemTuples)
	}
	partition := job.Partition
	if partition == nil {
		seed := e.Cfg.Seed
		partition = func(key string, r int) int { return HashPartition(seed, key, r) }
	}
	outPrefix := job.OutputPrefix
	if outPrefix == "" {
		outPrefix = "out/" + job.Name + "/"
	}
	codec, err := blockcodec.ByName(e.Cfg.SpillCodec)
	if err != nil {
		return nil, fmt.Errorf("mr: job %s: %w", job.Name, err)
	}

	res := &RoundResult{Metrics: RoundMetrics{Job: job.Name}}
	rm := &res.Metrics
	rm.Mappers = make([]TaskMetrics, e.Cfg.Workers)
	rm.Reducers = make([]TaskMetrics, reducers)

	round := e.rounds
	e.rounds++

	start := time.Now()

	// Tracing: tr is nil when Config.Tracer is unset, and every method on
	// a nil roundTracer is a no-op, so the fault-free untraced path does no
	// trace work at all. Task-level events are buffered per task and
	// flushed in task-index order at each phase barrier, which keeps the
	// delivered stream identical at any parallelism.
	tr := e.tracerFor(round, job.Name)
	tr.roundStart(e.Cfg.Workers, reducers)

	// Failure domains: node-crash faults targeting this round kill whole
	// nodes at the shuffle barrier below; attempt placement is fixed up
	// front so it is identical at any parallelism.
	nodes := e.nodeCount()
	dead := e.deadNodes(round, nodes)

	// Execution backend: the engine makes every scheduling decision and the
	// backend realizes it (see Executor). down is the backend's own set of
	// permanently unusable nodes — workers it could not respawn within the
	// restart budget — whose tasks drain onto live nodes through the same
	// placeLive probe the simulated crashes use; it is nil under the local
	// backend, so nothing below changes behavior there. A backend with no
	// usable node at all fails the round plainly instead of hanging.
	if cerr := e.cancelErr(); cerr != nil {
		return nil, cerr
	}
	rex, down, execErr := e.executor().RoundStart(round, nodes, dead, RoundHooks{Trace: tr.backendEvent})
	if execErr != nil {
		rm.Failed = true
		rm.FailReason = fmt.Sprintf("execution backend: %v", execErr)
		rm.finalize(e.Cfg.Cost)
		rm.WallSeconds = time.Since(start).Seconds()
		tr.roundEnd(rm)
		return res, fmt.Errorf("mr: job %s: execution backend: %w", job.Name, execErr)
	}
	// finishRound closes the round on every exit path: collect the
	// backend's health counters (volatile; zero under the local backend),
	// finalize the metrics, and emit the round-end event.
	finishRound := func() {
		st := rex.RoundEnd()
		rm.finalize(e.Cfg.Cost)
		rm.HeartbeatMisses = st.HeartbeatMisses
		rm.WorkerRestarts = st.WorkerRestarts
		rm.RPCRetries = st.RPCRetries
		rm.WallSeconds = time.Since(start).Seconds()
		if st.RPCRetries > 0 {
			// Volatile by nature (real transport flakiness does not replay);
			// emitted from the run goroutine so the sequence stays ordered.
			tr.event(TraceEvent{Type: EvRPCRetry, Records: st.RPCRetries})
		}
		tr.roundEnd(rm)
	}

	// Out-of-core spill lifecycle: all of the round's run files live in
	// one lazily created directory, removed wholesale when the round ends.
	// Individual files of failed, killed, speculation-losing or
	// node-crash-lost attempts are deleted eagerly below; the deferred
	// cleanup is the backstop that makes leaks impossible on any exit
	// path, error returns included.
	sd := newSpillDir(e.Cfg.SpillDir, e.Cfg.SpillWriteWrapper)
	defer sd.cleanup()

	// Map phase. Tasks run on the worker pool; each partitions its own
	// output into private per-reducer buckets, and the shuffle merges them
	// in task-index order below, so bucket contents are independent of
	// task scheduling. Every task retries injected-fault failures and
	// engine kills up to MaxAttempts with a fresh context and fresh
	// TaskState; a failed attempt's buffered output dies with its context,
	// so nothing of it reaches the shuffle. A completed attempt that
	// stalled past TaskTimeout is killed and retried; one that stalled
	// past SpeculativeSlack races a deterministic backup attempt.
	mapOuts := make([]mapOutput, e.Cfg.Workers)
	mapErrs := make([]error, e.Cfg.Workers)
	mapWinner := make([]int, e.Cfg.Workers) // winning attempt index: decides output placement
	mapNode := make([]int, e.Cfg.Workers)   // the node the winning attempt ran on and stored its output
	tr.startPhase(e.Cfg.Workers)
	e.forEachTask(e.Cfg.Workers, func(task int) {
		var wasted int64
		var retryWall float64
		for attempt := 0; ; attempt++ {
			if cerr := e.cancelErr(); cerr != nil {
				mapErrs[task] = cerr
				return
			}
			tstart := time.Now()
			inj := e.injectorFor(round, PhaseMap, task, attempt)
			tr.attemptStart(PhaseMap, task, attempt, inj)
			ctx := e.newMapCtx(job, task, attempt, inj, reducers, partition, sd, codec, tr)
			node, mout, err := e.runMapAttempt(rex, job, ctx, round, task, attempt, down, nodes, feed)
			if err == nil {
				stall := inj.simDelay()
				if kill := e.timeoutKill(PhaseMap, task, attempt, stall); kill != nil {
					mout.spill.discard() // a killed attempt's run file dies with it
					err = kill           // discard the attempt and fall through to retry
				} else {
					ctx.metrics.WallSeconds = time.Since(tstart).Seconds()
					winCtx, winOut, winAttempt, winNode := ctx, mout, attempt, node
					var sp specOutcome
					if e.Cfg.SpeculativeSlack > 0 && stall > e.Cfg.SpeculativeSlack {
						winCtx, winOut, winAttempt, winNode, sp = e.speculateMap(
							job, round, task, attempt, node, feed, reducers, partition, sd, codec, ctx, mout, stall, rex, down, nodes, tr)
					}
					m := &winCtx.metrics
					m.Attempts = int64(attempt+1) + sp.launched
					m.RetryWallSeconds = retryWall
					m.WastedBytes = wasted + sp.wasted
					m.SpeculativeLaunched = sp.launched
					m.SpeculativeWon = sp.won
					m.SpeculativeKilled = sp.killed
					m.SpeculativeWallSeconds = sp.wall
					rm.Mappers[task] = *m
					mapWinner[task] = winAttempt
					mapNode[task] = winNode
					mapOuts[task] = winOut
					tr.taskSuccess(PhaseMap, task, winAttempt, &rm.Mappers[task])
					return
				}
			}
			retryable := retryableErr(err)
			if retryable {
				wasted += ctx.metrics.PreCombineBytes
				retryWall += time.Since(tstart).Seconds()
			}
			if !retryable || attempt+1 >= e.Cfg.MaxAttempts {
				rm.Mappers[task] = TaskMetrics{
					Attempts:         int64(attempt + 1),
					RetryWallSeconds: retryWall,
					WastedBytes:      wasted,
				}
				mapErrs[task] = err
				tr.attemptFailure(PhaseMap, task, attempt, err)
				return
			}
			tr.attemptRetry(PhaseMap, task, attempt, err)
		}
	})
	tr.flushPhase()
	for task := 0; task < e.Cfg.Workers; task++ {
		if err := mapErrs[task]; err != nil {
			if retryableErr(err) {
				rm.Failed = true
				rm.FailReason = fmt.Sprintf("map task %d failed after %d attempts: %v",
					task, rm.Mappers[task].Attempts, err)
				err = fmt.Errorf("mr: job %s: map task %d failed after %d attempts: %w",
					job.Name, task, rm.Mappers[task].Attempts, err)
			}
			finishRound()
			return res, err
		}
	}

	// Node crash: each dead node takes the completed map output stored on
	// it with it. Every reducer observes a fetch failure per lost map
	// task, and the engine re-executes the lost tasks on live nodes —
	// continuing the attempt numbering with a fresh budget — before the
	// shuffle hand-off. Re-executed output is byte-identical (the
	// re-entrancy contract), so only the recovery counters change.
	//
	// The backend realizes the planned deaths first — the proc backend
	// SIGKILLs the doomed worker processes and waits for them to die — and
	// then every winning map output is probed through it, so under the proc
	// backend "lost" means the fetch RPC genuinely failed against a dead
	// process. The local backend's probe reproduces the historical
	// stored-on-dead-node check bit for bit, and CrashNodes kills exactly
	// the planDead set, so the lost sets are equal by construction.
	if dead != nil {
		for n := 0; n < nodes; n++ {
			if dead[n] {
				tr.nodeCrash(n)
			}
		}
	}
	rex.CrashNodes()
	// Reduce-side placement drains around both the simulated dead nodes and
	// the backend's permanently failed workers.
	redDown := unionDead(dead, down)
	{
		var lost []int
		lostNode := make([]int, e.Cfg.Workers)
		for task := 0; task < e.Cfg.Workers; task++ {
			if ferr := rex.FetchMapOutput(task, mapWinner[task], mapNode[task]); ferr != nil {
				lost = append(lost, task)
				lostNode[task] = mapNode[task]
			}
		}
		if len(lost) > 0 {
			for _, task := range lost {
				tr.fetchFail(task, lostNode[task], reducers)
				// The dead node takes the stored run file with it, exactly
				// like the in-memory buckets; re-execution rebuilds both.
				mapOuts[task].spill.discard()
				mapOuts[task] = mapOutput{}
			}
			for r := 0; r < reducers; r++ {
				rm.Reducers[r].FetchFailures = int64(len(lost))
			}
			tr.startPhase(e.Cfg.Workers)
			e.forEachTask(len(lost), func(i int) {
				e.reexecuteMap(rex, job, round, lost[i], feed, reducers, partition, sd, codec, redDown, nodes, rm, mapOuts, mapErrs, tr)
			})
			tr.flushPhase()
			for _, task := range lost {
				if err := mapErrs[task]; err != nil {
					if retryableErr(err) {
						rm.Failed = true
						rm.FailReason = fmt.Sprintf("map task %d failed after %d attempts: %v",
							task, rm.Mappers[task].Attempts, err)
						err = fmt.Errorf("mr: job %s: map task %d failed after %d attempts: %w",
							job.Name, task, rm.Mappers[task].Attempts, err)
					}
					finishRound()
					return res, err
				}
			}
		}
	}

	// Shuffle accounting runs after any re-execution: the re-run output is
	// byte-identical, so the totals equal a fault-free run's — the lost
	// bytes appear only in WastedBytes.
	for task := 0; task < e.Cfg.Workers; task++ {
		rm.ShuffleRecords += rm.Mappers[task].OutRecords
		rm.ShuffleBytes += rm.Mappers[task].OutBytes
	}
	tr.shuffle(rm)

	// Shuffle barrier: reducer r receives task 0's pairs, then task 1's,
	// ... — the same order the sequential engine produced. Each task's
	// bucket arrives already sorted (map-side sort in mapAttempt), so the
	// hand-off is pure slice headers: no record is copied, flattened or
	// re-sorted; the reducers merge the task-ordered runs streaming.
	//
	// When any map attempt spilled, the hand-off generalizes to mixed
	// sources: per reducer, task 0's spill segments in flush order, then
	// task 0's final in-memory bucket, then task 1's, ... Within one task
	// the chunks were flushed in emission order and the merge breaks key
	// ties by source index, so the streamed order equals the order one big
	// stable per-task sort would have produced — reducer input, and with
	// it output, is byte-identical to the all-in-memory plan.
	spilled := false
	for task := range mapOuts {
		if mapOuts[task].spill != nil {
			spilled = true
			break
		}
	}
	var shuffled [][][]Pair
	var streamRuns [][]streamSource
	if !spilled {
		shuffled = make([][][]Pair, reducers)
		for r := 0; r < reducers; r++ {
			runs := make([][]Pair, e.Cfg.Workers)
			for task := 0; task < e.Cfg.Workers; task++ {
				runs[task] = mapOuts[task].buckets[r]
			}
			shuffled[r] = runs
		}
	} else {
		streamRuns = make([][]streamSource, reducers)
		for r := 0; r < reducers; r++ {
			var runs []streamSource
			for task := 0; task < e.Cfg.Workers; task++ {
				mo := &mapOuts[task]
				if mo.spill != nil {
					for si := range mo.spill.spills {
						seg := &mo.spill.spills[si][r]
						if seg.records > 0 {
							runs = append(runs, streamSource{seg: seg})
						}
					}
				}
				if len(mo.buckets[r]) > 0 {
					runs = append(runs, streamSource{pairs: mo.buckets[r]})
				}
			}
			streamRuns[r] = runs
		}
	}

	inflation := job.MemInflation
	if inflation <= 0 {
		inflation = 1
	}

	// Reduce input accounting and memory-pressure checks run up front, in
	// task order: they depend only on the shuffled buckets, and doing them
	// before the pool starts reproduces the sequential engine's
	// first-failure semantics exactly (reducers past the first OOM never
	// run and keep zero metrics).
	//
	// Memory pressure is checked in records (one record ≈ one tuple or
	// partial state), making the model independent of encoding sizes. A
	// reducer whose inflation-adjusted input exceeds OOMFactor memory-fuls
	// dies when the job opts into hard failure (the Hive model); others
	// absorb oversized *groups* as external aggregation I/O below.
	runTasks := reducers
	var failErr error
	tr.startPhase(reducers)
	for task := 0; task < reducers; task++ {
		tm := &rm.Reducers[task]
		if !spilled {
			for _, run := range shuffled[task] {
				for i := range run {
					tm.InRecords++
					tm.InBytes += pairBytes(run[i].Key, run[i].Val)
				}
			}
		} else {
			// Spill segments size themselves from their metadata — the
			// pre-scan never reads the files. records/raw mirror the
			// in-memory accounting exactly; the encoded length is charged
			// as one streaming read pass per executed attempt.
			for _, src := range streamRuns[task] {
				if src.seg != nil {
					tm.InRecords += src.seg.records
					tm.InBytes += src.seg.raw
					tm.CPUSeconds += float64(src.seg.length) / e.Cfg.Cost.DiskBytesPerSec
				} else {
					for i := range src.pairs {
						tm.InRecords++
						tm.InBytes += pairBytes(src.pairs[i].Key, src.pairs[i].Val)
					}
				}
			}
		}
		tm.CPUSeconds += float64(tm.InRecords) * e.Cfg.Cost.ReduceCPUPerRecord
		if float64(tm.InRecords)*inflation > e.Cfg.OOMFactor*oomMem && job.FailOnReducerOOM {
			rm.Failed = true
			rm.FailReason = fmt.Sprintf("reducer %d out of memory: %d input records (×%.0f inflation) exceed %.0f×m (m=%d tuples)",
				task, tm.InRecords, inflation, e.Cfg.OOMFactor, memTuples)
			failErr = fmt.Errorf("mr: job %s: %s", job.Name, rm.FailReason)
			runTasks = task
			tr.attemptFailure(PhaseReduce, task, 0, failErr)
			break
		}
	}

	// Reduce phase: tasks before the first failure (all of them on the
	// usual error-free path) run on the worker pool, each collecting side
	// output privately; the merge below restores task order. Injected
	// faults and engine kills — an attempt placed on a crashed node, a
	// stall past TaskTimeout — are retried like map tasks; a failed
	// attempt's DFS appends are rolled back to the pre-attempt marks so
	// the output files hold exactly one successful attempt's records.
	// Attempts stalled past SpeculativeSlack race a deterministic backup.
	taskCollect := make([][]Pair, runTasks)
	redErrs := make([]error, runTasks)
	e.forEachTask(runTasks, func(task int) {
		base := rm.Reducers[task] // input accounting from the pre-scan
		// The k-way merge over the map tasks' sorted runs is read-only
		// (stream mergers re-read spill segments via ReadAt), so one
		// merger serves every attempt; reset rewinds it.
		in := &reduceInput{}
		var phits, pmisses int64
		if !spilled {
			in.mem = newRunMerger(shuffled[task])
		} else {
			runs := streamRuns[task]
			// Fan-in control: more live runs than MergeFanIn are first
			// consolidated through intermediate on-disk merges; the final
			// streaming merge then opens at most MergeFanIn sources.
			if fanIn := e.mergeFanIn(); len(runs) > fanIn {
				var ferr error
				runs, ferr = e.fanInMerge(runs, fanIn, sd, task, codec, &base, tr)
				if ferr != nil {
					// A fan-in merge failure fails the task without
					// retrying: the merge happens once, before the attempt
					// loop, so there is no per-attempt retry to feed it to.
					base.Attempts = 1
					rm.Reducers[task] = base
					redErrs[task] = ferr
					tr.attemptFailure(PhaseReduce, task, 0, ferr)
					return
				}
			}
			in.stream = newStreamMerger(runs, mergeOpts{
				prefetchBudget: defaultPrefetchBudget,
				hits:           &phits, misses: &pmisses,
			})
		}
		defer func() {
			// The merger (and its read-ahead goroutines) dies with the
			// task, before the round's spill cleanup can close the files
			// under it. Prefetch totals accumulate across the task's
			// attempts and are volatile, like the wall times.
			in.close()
			rm.Reducers[task].PrefetchHits += phits
			rm.Reducers[task].PrefetchMisses += pmisses
		}()
		file := fmt.Sprintf("%spart-r-%05d", outPrefix, task)
		sideFile := fmt.Sprintf("side/%s/part-r-%05d", job.Name, task)
		var wasted int64
		var retryWall float64
		for attempt := 0; ; attempt++ {
			if cerr := e.cancelErr(); cerr != nil {
				rm.Reducers[task] = base
				redErrs[task] = cerr
				return
			}
			tstart := time.Now()
			attemptMetrics := base
			inj := e.injectorFor(round, PhaseReduce, task, attempt)
			tr.attemptStart(PhaseReduce, task, attempt, inj)
			ctx := e.newRedCtx(job, task, attempt, file, sideFile, &attemptMetrics, inj, sd, codec, tr)
			fileMark := e.FS.Mark(file)
			sideMark := e.FS.Mark(sideFile)
			node, err := e.placeAttempt(round, PhaseReduce, task, attempt, redDown, nodes)
			if err == nil {
				if berr := rex.BeginAttempt(PhaseReduce, task, attempt, node); berr != nil {
					err = &killError{reason: fmt.Sprintf("backend refused attempt: %v", berr), phase: PhaseReduce, task: task, attempt: attempt}
				}
			}
			if err == nil {
				err = e.reduceAttempt(job, ctx, in, oomMem, inflation)
				ctx.discardExtSpill()
				if err == nil {
					if eerr := rex.EndAttempt(PhaseReduce, task, attempt, node); eerr != nil {
						err = &killError{reason: fmt.Sprintf("worker lost mid-attempt: %v", eerr), phase: PhaseReduce, task: task, attempt: attempt}
					}
				}
			}
			if err == nil {
				stall := inj.simDelay()
				if kill := e.timeoutKill(PhaseReduce, task, attempt, stall); kill != nil {
					err = kill // discard the attempt and fall through to retry
				} else {
					attemptMetrics.WallSeconds = time.Since(tstart).Seconds()
					win, winCollect, winAttempt := &attemptMetrics, ctx.collect, attempt
					var sp specOutcome
					if e.Cfg.SpeculativeSlack > 0 && stall > e.Cfg.SpeculativeSlack {
						win, winCollect, winAttempt, sp = e.speculateReduce(
							job, round, task, attempt, base, in, oomMem, inflation,
							file, sideFile, sd, codec, &attemptMetrics, ctx, stall, rex, down, nodes, tr)
					}
					win.Attempts = int64(attempt+1) + sp.launched
					win.RetryWallSeconds = retryWall
					win.WastedBytes = wasted + sp.wasted
					win.SpeculativeLaunched = sp.launched
					win.SpeculativeWon = sp.won
					win.SpeculativeKilled = sp.killed
					win.SpeculativeWallSeconds = sp.wall
					rm.Reducers[task] = *win
					taskCollect[task] = winCollect
					tr.taskSuccess(PhaseReduce, task, winAttempt, &rm.Reducers[task])
					return
				}
			}
			wasted += attemptMetrics.OutBytes + attemptMetrics.SideBytes
			retryWall += time.Since(tstart).Seconds()
			e.FS.Rollback(file, fileMark)
			e.FS.Rollback(sideFile, sideMark)
			if attempt+1 >= e.Cfg.MaxAttempts {
				failed := base
				failed.Attempts = int64(attempt + 1)
				failed.RetryWallSeconds = retryWall
				failed.WastedBytes = wasted
				rm.Reducers[task] = failed
				redErrs[task] = err
				tr.attemptFailure(PhaseReduce, task, attempt, err)
				return
			}
			tr.attemptRetry(PhaseReduce, task, attempt, err)
		}
	})
	tr.flushPhase()
	for task := 0; task < runTasks; task++ {
		if err := redErrs[task]; err != nil && failErr == nil {
			if cerr := e.cancelErr(); cerr != nil && err == cerr {
				// Cancellation is a plain abort, not a task failure: return
				// the context error unwrapped, without failing the round.
				failErr = err
				break
			}
			rm.Failed = true
			rm.FailReason = fmt.Sprintf("reduce task %d failed after %d attempts: %v",
				task, rm.Reducers[task].Attempts, err)
			failErr = fmt.Errorf("mr: job %s: reduce task %d failed after %d attempts: %w",
				job.Name, task, rm.Reducers[task].Attempts, err)
			break
		}
	}
	for task := 0; task < runTasks; task++ {
		if redErrs[task] != nil {
			continue
		}
		rm.OutputRecords += rm.Reducers[task].OutRecords
		rm.OutputBytes += rm.Reducers[task].OutBytes
		res.Output = append(res.Output, taskCollect[task]...)
	}

	finishRound()
	if failErr != nil {
		return res, failErr
	}
	return res, nil
}

// newMapCtx builds one map attempt's context, wiring in the spill
// machinery (budget, partitioner, run-file directory, and — only when
// tracing — a per-flush spill event hook, keeping the untraced path
// allocation-free).
func (e *Engine) newMapCtx(job *Job, task, attempt int, inj *injector, reducers int, partition func(string, int) int, sd *spillDir, codec blockcodec.Codec, tr *roundTracer) *MapCtx {
	ctx := &MapCtx{
		Task: task, job: job, eng: e, inject: inj,
		reducers: reducers, partition: partition,
		budget: e.Cfg.SpillBudgetBytes, sd: sd, codec: codec,
	}
	if tr != nil {
		ctx.traceSpill = func(bytes int64) {
			tr.add(PhaseMap, task, TraceEvent{Type: EvSpill, Attempt: attempt, Bytes: bytes})
		}
		ctx.traceSpillFlush = func(f flushRec) {
			tr.add(PhaseMap, task, TraceEvent{Type: EvSpillFlush, Attempt: attempt, Bytes: f.bytes, Records: f.records})
		}
	}
	return ctx
}

// newRedCtx builds one reduce attempt's context; see newMapCtx.
func (e *Engine) newRedCtx(job *Job, task, attempt int, file, sideFile string, m *TaskMetrics, inj *injector, sd *spillDir, codec blockcodec.Codec, tr *roundTracer) *RedCtx {
	ctx := &RedCtx{
		Task: task, job: job, eng: e, file: file, sideFile: sideFile,
		metrics: m, inject: inj, sd: sd, budget: e.Cfg.SpillBudgetBytes,
		codec: codec,
	}
	if tr != nil {
		ctx.traceSpill = func(bytes int64) {
			tr.add(PhaseReduce, task, TraceEvent{Type: EvSpill, Attempt: attempt, Bytes: bytes})
		}
	}
	return ctx
}

// runMapAttempt runs one map attempt through the execution backend: place
// it against the down set, open it on its node, run the map function
// in-process, close the attempt, and register its output as stored on the
// node. Any backend refusal — a dead or unreachable worker at open, close,
// or store time — discards the attempt's output and surfaces as a
// killError, so the caller's retry loop re-places it exactly like a
// simulated node crash. The returned node is where the output lives until
// the shuffle (meaningful only when err == nil).
func (e *Engine) runMapAttempt(rex RoundExecutor, job *Job, ctx *MapCtx, round, task, attempt int,
	down []bool, nodes int, feed func(task int, ctx *MapCtx)) (int, mapOutput, error) {
	node, err := e.placeAttempt(round, PhaseMap, task, attempt, down, nodes)
	if err != nil {
		return node, mapOutput{}, err
	}
	if berr := rex.BeginAttempt(PhaseMap, task, attempt, node); berr != nil {
		return node, mapOutput{}, &killError{reason: fmt.Sprintf("backend refused attempt: %v", berr), phase: PhaseMap, task: task, attempt: attempt}
	}
	mout, err := e.mapAttempt(job, ctx, task, feed)
	if err != nil {
		return node, mapOutput{}, err
	}
	if eerr := rex.EndAttempt(PhaseMap, task, attempt, node); eerr != nil {
		mout.spill.discard()
		return node, mapOutput{}, &killError{reason: fmt.Sprintf("worker lost mid-attempt: %v", eerr), phase: PhaseMap, task: task, attempt: attempt}
	}
	if serr := rex.StoreMapOutput(task, attempt, node, ctx.metrics.OutRecords, ctx.metrics.OutBytes); serr != nil {
		mout.spill.discard()
		return node, mapOutput{}, &killError{reason: fmt.Sprintf("storing map output failed: %v", serr), phase: PhaseMap, task: task, attempt: attempt}
	}
	return node, mout, nil
}

// mapAttempt executes one attempt of one map task: fresh TaskState, the
// input feed, MapFlush, the combiner, partitioning into per-reducer
// buckets, and the map-side sort of each bucket. An injected crash
// surfaces as a *FaultError; the partial results accumulated in ctx —
// spilled run files included — die with it. Partition range violations
// are returned as plain (non-retryable) errors; spill I/O failures carry
// a spillIOError and are retryable — a fresh attempt re-places onto
// another node whose disk may be healthy.
func (e *Engine) mapAttempt(job *Job, ctx *MapCtx, task int, feed func(task int, ctx *MapCtx)) (mout mapOutput, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch sig := r.(type) {
			case faultSignal:
				err = ctx.inject.err(sig.fault)
			case taskAbort:
				err = sig.err
			default:
				panic(r)
			}
		}
		// Join the attempt's background spill writer on every exit path —
		// success, fault, abort — before anything reads or discards the run
		// file: the writer goroutine must never outlive its attempt, and a
		// surviving write error fails the attempt like an inline one did.
		if ctx.writer != nil {
			jerr, jstall := ctx.writer.join()
			ctx.metrics.SpillWriteStallNs += jstall.Nanoseconds()
			if err == nil {
				err = jerr
			}
		}
		if err != nil {
			ctx.spill.discard()
			ctx.spill = nil
			mout = mapOutput{}
		} else if ctx.traceSpillFlush != nil {
			// All writes are on disk now; report each flush's compressed
			// size. Emitted only for surviving attempts, at a deterministic
			// point (before the attempt returns), so the trace stream stays
			// bit-identical at any parallelism.
			for _, f := range ctx.flushes {
				ctx.traceSpillFlush(f)
			}
		}
	}()
	ctx.inject.start()
	if job.TaskState != nil {
		ctx.state = job.TaskState()
	}
	feed(task, ctx)
	if job.MapFlush != nil {
		job.MapFlush(ctx)
	}
	out := ctx.out
	if job.Combine != nil {
		out = e.combine(job, ctx, out)
	}
	buckets, err := e.partitionSort(job, ctx, out)
	if err != nil {
		return mapOutput{}, err
	}
	if job.MapCPUFactor > 0 {
		ctx.metrics.CPUSeconds *= job.MapCPUFactor
	}
	return mapOutput{buckets: buckets, spill: ctx.spill}, nil
}

// partitionSort partitions one chunk of map output into per-reducer
// buckets and sorts each — the final hand-off of every attempt, and every
// flushed chunk of a spilling attempt. Output accounting accumulates, so
// OutRecords/OutBytes cover spilled chunks and the final in-memory one.
func (e *Engine) partitionSort(job *Job, ctx *MapCtx, out []Pair) ([][]Pair, error) {
	reducers := ctx.reducers
	ctx.metrics.OutRecords += int64(len(out))
	// Counting pass: partition every record once up front so the buckets
	// can be carved at exact size out of a single backing array — no
	// per-append growth, no copying when the shuffle hands them over.
	targets := make([]int32, len(out))
	counts := make([]int32, reducers)
	for i := range out {
		ctx.metrics.OutBytes += pairBytes(out[i].Key, out[i].Val)
		r := ctx.partition(out[i].Key, reducers)
		if r < 0 || r >= reducers {
			return nil, fmt.Errorf("mr: job %s: partition(%q) = %d out of range [0,%d)", job.Name, out[i].Key, r, reducers)
		}
		targets[i] = int32(r)
		counts[r]++
	}
	offs := make([]int32, reducers+1)
	for r := 0; r < reducers; r++ {
		offs[r+1] = offs[r] + counts[r]
	}
	backing := make([]Pair, len(out))
	cursor := counts // reuse the counts array as per-bucket fill cursors
	copy(cursor, offs[:reducers])
	for i := range out {
		backing[cursor[targets[i]]] = out[i]
		cursor[targets[i]]++
	}
	// Map-side sort (the cluster model's sort-merge shuffle): each bucket
	// is sorted by key exactly once, here, in the map task; reducers only
	// merge. The stable sort preserves emission order within equal keys,
	// so the merged reducer input is bit-for-bit the order the historical
	// concatenate-then-stable-sort produced. The real CPU this spends is
	// the work the CostModel already charges per emitted record
	// (MapCPUPerEmit covers Hadoop's collector, whose buffer sort is part
	// of the emit path); no separate simulated charge is added.
	buckets := make([][]Pair, reducers)
	for r := 0; r < reducers; r++ {
		b := backing[offs[r]:offs[r+1]:offs[r+1]]
		ctx.sortScratch = sortPairsStable(b, ctx.sortScratch)
		buckets[r] = b
	}
	return buckets, nil
}

// reduceInput is one reduce task's merged input: the in-memory loser-tree
// merge when nothing spilled (the hot path, untouched), or the streaming
// merge over mixed in-memory/on-disk sources when any map attempt did.
type reduceInput struct {
	mem    *runMerger
	stream *streamMerger
}

// close releases the streaming merge's read-ahead goroutines (no-op for
// the in-memory path). Must run before the round's spill cleanup.
func (in *reduceInput) close() {
	if in.stream != nil {
		in.stream.close()
	}
}

// reduceAttempt executes one attempt of one reduce task by streaming the
// k-way merge of the map tasks' sorted runs: fresh TaskState, per-key
// grouping straight off the merge (adjacent equal keys form a group, as
// in Hadoop's reduce iterator), the reduce function, and external
// aggregation of oversized groups. An injected crash surfaces as a
// *FaultError; the caller rolls back the attempt's DFS appends.
func (e *Engine) reduceAttempt(job *Job, ctx *RedCtx, in *reduceInput, oomMem, inflation float64) error {
	if in.mem != nil {
		return e.reduceAttemptMem(job, ctx, in.mem, oomMem, inflation)
	}
	return e.reduceAttemptStream(job, ctx, in.stream, oomMem, inflation)
}

func (e *Engine) reduceAttemptMem(job *Job, ctx *RedCtx, m *runMerger, oomMem, inflation float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(faultSignal)
			if !ok {
				panic(r)
			}
			err = ctx.inject.err(sig.fault)
		}
	}()
	ctx.inject.start()
	if job.TaskState != nil {
		ctx.state = job.TaskState()
	}
	m.reset()
	tm := ctx.metrics
	capRecords := int64(oomMem / inflation)
	// vals is reused across groups: the value slices alias the map tasks'
	// stable output arenas, but the container itself is per-group scratch
	// a reducer must not retain past its Reduce call.
	vals := make([][]byte, 0, 16)
	var spillCPU float64
	for p := m.next(); p != nil; {
		key := p.Key
		vals = vals[:0]
		var keyBytes int64
		for ; p != nil && p.Key == key; p = m.next() {
			vals = append(vals, p.Val)
			keyBytes += pairBytes(p.Key, p.Val)
		}
		if int64(len(vals)) > tm.LargestKeyRecords {
			tm.LargestKeyRecords = int64(len(vals))
			tm.LargestKeyBytes = keyBytes
		}
		// A single key whose value list does not fit in memory is
		// aggregated externally — the skewed-group I/O penalty of
		// §3.2. SP-Cube avoids it by pre-aggregating skews in the
		// mappers; the naive algorithm pays it in full.
		if excess := int64(len(vals)) - capRecords; excess > 0 {
			cpu, err := e.externalAgg(ctx, key, vals[int64(len(vals))-excess:])
			if err != nil {
				return err
			}
			spillCPU += cpu
		}
		job.Reduce(ctx, key, vals)
	}
	if job.ReduceCPUFactor > 0 {
		tm.CPUSeconds *= job.ReduceCPUFactor
	}
	tm.CPUSeconds += spillCPU
	return nil
}

// reduceAttemptStream is reduceAttemptMem over a streamMerger. The one
// semantic difference: every group key and value is copied into fresh
// storage, because the merge sources reuse their decode buffers — a
// reducer that retains value slices past its Reduce call (allowed by the
// Emit zero-copy contract's mirror image) must never observe them change.
func (e *Engine) reduceAttemptStream(job *Job, ctx *RedCtx, m *streamMerger, oomMem, inflation float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(faultSignal)
			if !ok {
				panic(r)
			}
			err = ctx.inject.err(sig.fault)
		}
	}()
	ctx.inject.start()
	if job.TaskState != nil {
		ctx.state = job.TaskState()
	}
	m.reset()
	tm := ctx.metrics
	capRecords := int64(oomMem / inflation)
	var spillCPU float64
	kb, vb, ok := m.next()
	for ok {
		key := string(kb)
		var vals [][]byte
		var keyBytes int64
		for {
			vals = append(vals, append([]byte(nil), vb...))
			keyBytes += pairBytes(key, vb)
			kb, vb, ok = m.next()
			if !ok || string(kb) != key {
				break
			}
		}
		if int64(len(vals)) > tm.LargestKeyRecords {
			tm.LargestKeyRecords = int64(len(vals))
			tm.LargestKeyBytes = keyBytes
		}
		if excess := int64(len(vals)) - capRecords; excess > 0 {
			cpu, err := e.externalAgg(ctx, key, vals[int64(len(vals))-excess:])
			if err != nil {
				return err
			}
			spillCPU += cpu
		}
		job.Reduce(ctx, key, vals)
	}
	if m.err != nil {
		return m.err
	}
	if job.ReduceCPUFactor > 0 {
		tm.CPUSeconds *= job.ReduceCPUFactor
	}
	tm.CPUSeconds += spillCPU
	return nil
}

// externalAgg accounts — and, in out-of-core mode, performs — the external
// aggregation of one group whose value list exceeds the task's memory: the
// excess records are encoded through the spill codec, so SpillBytes is the
// exact encoded size rather than the historical per-record estimate, and
// the charge is SpillPasses passes over those bytes. With SpillBudgetBytes
// > 0 the encoded run is physically written to the attempt's run file.
// The returned CPU charge is added after ReduceCPUFactor scaling, matching
// the historical accounting order.
func (e *Engine) externalAgg(ctx *RedCtx, key string, excess [][]byte) (float64, error) {
	buf := ctx.encBuf[:0]
	prev := ""
	for _, v := range excess {
		buf = appendSpillRecord(buf, prev, key, v)
		prev = key
	}
	ctx.encBuf = buf
	tm := ctx.metrics
	// The cost model charges the bytes the disk absorbs: the framed,
	// compressed size when the run is physically written, the encoded size
	// when out-of-core mode is off and the write is only simulated.
	charged := int64(len(buf))
	if ctx.budget > 0 {
		if ctx.extSpill == nil {
			sf, err := ctx.sd.create("run-r-*")
			if err != nil {
				return 0, err
			}
			ctx.extSpill = sf
		}
		ctx.frameBuf, ctx.blockBuf = blockcodec.AppendAll(ctx.frameBuf[:0], ctx.codec, buf, ctx.blockBuf)
		if err := ctx.extSpill.writeRaw(ctx.frameBuf); err != nil {
			return 0, err
		}
		charged = int64(len(ctx.frameBuf))
		tm.CompressedSpillBytes += charged
	}
	tm.Spills++
	tm.SpillBytes += int64(len(buf))
	if ctx.traceSpill != nil {
		ctx.traceSpill(int64(len(buf)))
	}
	return float64(charged) * e.Cfg.Cost.SpillPasses / e.Cfg.Cost.DiskBytesPerSec, nil
}

// speculateMap races one backup attempt against a completed-but-stalled
// original map attempt (Config.SpeculativeSlack) and returns the winner's
// context, buckets, attempt index and storage node plus the race's
// recovery accounting. The backup runs at the next attempt index with its
// own injector, so fault plans can target it too; a crashed backup — an
// injected fault or a real worker refusal under the proc backend — loses
// by definition. Attempts are byte-identical under the re-entrancy
// contract, so the loser differs from the winner only in its simulated
// stall. Backups are placed against the backend's down set only (nil under
// the local backend — backups historically skip the simulated node check):
// a backend refusal can change the winner's index and recovery counters
// but never an output byte.
func (e *Engine) speculateMap(job *Job, round, task, attempt, node int, feed func(int, *MapCtx),
	reducers int, partition func(string, int) int, sd *spillDir, codec blockcodec.Codec,
	ctx *MapCtx, mout mapOutput, stall float64, rex RoundExecutor, down []bool, nodes int,
	tr *roundTracer) (*MapCtx, mapOutput, int, int, specOutcome) {
	sp := specOutcome{launched: 1}
	bAttempt := attempt + 1
	bstart := time.Now()
	binj := e.injectorFor(round, PhaseMap, task, bAttempt)
	tr.speculate(PhaseMap, task, bAttempt)
	tr.attemptStart(PhaseMap, task, bAttempt, binj)
	bctx := e.newMapCtx(job, task, bAttempt, binj, reducers, partition, sd, codec, tr)
	bNode, bout, berr := e.runMapAttempt(rex, job, bctx, round, task, bAttempt, down, nodes, feed)
	bWall := time.Since(bstart).Seconds()
	switch {
	case berr != nil:
		// The backup crashed: the original wins, the backup's partial
		// output (its run file already discarded by mapAttempt) is wasted
		// work (but no retry — the task has succeeded).
		sp.wasted = bctx.metrics.PreCombineBytes
		sp.wall = bWall
		return ctx, mout, attempt, node, sp
	case backupWins(bctx.metrics.CPUSeconds+binj.simDelay(), ctx.metrics.CPUSeconds+stall):
		sp.won, sp.killed = 1, 1
		sp.wasted = ctx.metrics.PreCombineBytes
		sp.wall = ctx.metrics.WallSeconds
		bctx.metrics.WallSeconds = bWall
		mout.spill.discard() // the losing original's run file
		return bctx, bout, bAttempt, bNode, sp
	default:
		sp.killed = 1
		sp.wasted = bctx.metrics.PreCombineBytes
		sp.wall = bWall
		bout.spill.discard() // the losing backup's run file
		return ctx, mout, attempt, node, sp
	}
}

// speculateReduce races one backup attempt against a completed-but-stalled
// reduce attempt. The attempts are byte-identical, so the backup's DFS
// appends are always rolled back (the original's, already on the DFS,
// stand for the winner's); the race only decides the reported attempt
// index and the speculative counters.
func (e *Engine) speculateReduce(job *Job, round, task, attempt int, base TaskMetrics,
	in *reduceInput, oomMem, inflation float64, file, sideFile string, sd *spillDir,
	codec blockcodec.Codec, orig *TaskMetrics, origCtx *RedCtx, stall float64,
	rex RoundExecutor, down []bool, nodes int, tr *roundTracer) (*TaskMetrics, []Pair, int, specOutcome) {
	sp := specOutcome{launched: 1}
	bAttempt := attempt + 1
	bstart := time.Now()
	binj := e.injectorFor(round, PhaseReduce, task, bAttempt)
	tr.speculate(PhaseReduce, task, bAttempt)
	tr.attemptStart(PhaseReduce, task, bAttempt, binj)
	bMetrics := base
	bctx := e.newRedCtx(job, task, bAttempt, file, sideFile, &bMetrics, binj, sd, codec, tr)
	bFileMark := e.FS.Mark(file)
	bSideMark := e.FS.Mark(sideFile)
	// Backups place against the backend's down set only (see speculateMap);
	// a refusal at open or close means the backup crashed and loses.
	bNode, berr := e.placeAttempt(round, PhaseReduce, task, bAttempt, down, nodes)
	if berr == nil {
		if err := rex.BeginAttempt(PhaseReduce, task, bAttempt, bNode); err != nil {
			berr = &killError{reason: fmt.Sprintf("backend refused attempt: %v", err), phase: PhaseReduce, task: task, attempt: bAttempt}
		}
	}
	if berr == nil {
		berr = e.reduceAttempt(job, bctx, in, oomMem, inflation)
		bctx.discardExtSpill()
		if berr == nil {
			if err := rex.EndAttempt(PhaseReduce, task, bAttempt, bNode); err != nil {
				berr = &killError{reason: fmt.Sprintf("worker lost mid-attempt: %v", err), phase: PhaseReduce, task: task, attempt: bAttempt}
			}
		}
	}
	e.FS.Rollback(file, bFileMark)
	e.FS.Rollback(sideFile, bSideMark)
	bWall := time.Since(bstart).Seconds()
	switch {
	case berr != nil:
		sp.wasted = bMetrics.OutBytes + bMetrics.SideBytes
		sp.wall = bWall
		return orig, origCtx.collect, attempt, sp
	case backupWins(bMetrics.CPUSeconds+binj.simDelay(), orig.CPUSeconds+stall):
		sp.won, sp.killed = 1, 1
		sp.wasted = orig.OutBytes + orig.SideBytes
		sp.wall = orig.WallSeconds
		bMetrics.WallSeconds = bWall
		return &bMetrics, bctx.collect, bAttempt, sp
	default:
		sp.killed = 1
		sp.wasted = bMetrics.OutBytes + bMetrics.SideBytes
		sp.wall = bWall
		return orig, origCtx.collect, attempt, sp
	}
}

// reexecuteMap re-runs one map task whose completed output was lost to a
// node crash, continuing the task's attempt numbering with a fresh budget
// of MaxAttempts (Hadoop restarts the attempt counter for a re-launched
// map). The lost attempt's output moves into WastedBytes and its wall time
// into RetryWallSeconds; re-placements avoid the dead nodes, and when no
// node is live every attempt is killed until the budget runs out, failing
// the round with a plain (non-fault) error.
func (e *Engine) reexecuteMap(rex RoundExecutor, job *Job, round, task int, feed func(int, *MapCtx), reducers int,
	partition func(string, int) int, sd *spillDir, codec blockcodec.Codec, dead []bool, nodes int,
	rm *RoundMetrics, mapOuts []mapOutput, mapErrs []error, tr *roundTracer) {
	prev := rm.Mappers[task]
	wasted := prev.WastedBytes + prev.OutBytes
	retryWall := prev.RetryWallSeconds + prev.WallSeconds
	base := int(prev.Attempts)
	for try := 0; ; try++ {
		attempt := base + try
		if cerr := e.cancelErr(); cerr != nil {
			mapErrs[task] = cerr
			return
		}
		tstart := time.Now()
		inj := e.injectorFor(round, PhaseMap, task, attempt)
		tr.attemptStart(PhaseMap, task, attempt, inj)
		ctx := e.newMapCtx(job, task, attempt, inj, reducers, partition, sd, codec, tr)
		// Re-executions never keep the raw placement — the node the output
		// died on is dead by definition — and placeAttempt (inside
		// runMapAttempt) probes placeLive for every attempt index > 0;
		// re-execution attempts continue the original numbering, always > 0.
		_, mout, err := e.runMapAttempt(rex, job, ctx, round, task, attempt, dead, nodes, feed)
		if err == nil {
			m := &ctx.metrics
			m.WallSeconds = time.Since(tstart).Seconds()
			m.Attempts = int64(attempt + 1)
			m.RetryWallSeconds = retryWall
			m.WastedBytes = wasted
			m.Reexecutions = prev.Reexecutions + 1
			m.SpeculativeLaunched = prev.SpeculativeLaunched
			m.SpeculativeWon = prev.SpeculativeWon
			m.SpeculativeKilled = prev.SpeculativeKilled
			m.SpeculativeWallSeconds = prev.SpeculativeWallSeconds
			rm.Mappers[task] = *m
			mapOuts[task] = mout
			tr.taskSuccess(PhaseMap, task, attempt, &rm.Mappers[task])
			return
		}
		retryable := retryableErr(err)
		if retryable {
			wasted += ctx.metrics.PreCombineBytes
			retryWall += time.Since(tstart).Seconds()
		}
		if !retryable || try+1 >= e.Cfg.MaxAttempts {
			rm.Mappers[task] = TaskMetrics{
				Attempts:         int64(attempt + 1),
				RetryWallSeconds: retryWall,
				WastedBytes:      wasted,
				Reexecutions:     prev.Reexecutions + 1,
			}
			mapErrs[task] = err
			tr.attemptFailure(PhaseMap, task, attempt, err)
			return
		}
		tr.attemptRetry(PhaseMap, task, attempt, err)
	}
}

// isFaultError reports whether err is an injected-fault failure (retryable)
// rather than a deterministic job error.
func isFaultError(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe)
}

// retryableErr reports whether a failed attempt should be retried: injected
// faults, engine kills (node crashes, timeouts, backend refusals), and
// spill I/O failures (a fresh attempt may land on a healthy disk). Anything
// else — partition range violations, context cancellation — is
// deterministic or terminal and fails the task immediately.
func retryableErr(err error) bool {
	return isFaultError(err) || isKillError(err) || isSpillIOError(err)
}

// cancelErr returns the configured context's cancellation error, or nil
// when no context is set or it is still live. Checked at every attempt
// boundary so SIGINT aborts an in-flight round promptly instead of after
// it completes.
func (e *Engine) cancelErr() error {
	if e.Cfg.Context == nil {
		return nil
	}
	return e.Cfg.Context.Err()
}

// forEachTask runs fn(task) for every task in [0, n), on min(Parallelism,
// n) pool goroutines; Parallelism 1 degenerates to a plain in-order loop.
// It returns after all tasks complete (the phase barrier).
func (e *Engine) forEachTask(n int, fn func(task int)) {
	par := e.Cfg.Parallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		for task := 0; task < n; task++ {
			fn(task)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				task := int(next.Add(1)) - 1
				if task >= n {
					return
				}
				fn(task)
			}
		}()
	}
	wg.Wait()
}

// combine groups one mapper's buffered output by key and applies the
// combiner, charging its CPU. Grouping is by hash table — one map probe
// per record instead of a sort — which is legal because group order does
// not matter here: whatever order the combiner's output leaves in, the
// map-side bucket sort in mapAttempt re-establishes the canonical order
// before the shuffle. Values are gathered in first-seen group order.
//
// Rebuilding into out[:0] at the end is safe only because both passes
// below copy every key string header and every Val slice header out of
// out first; the historical version read out[j] while overwriting
// combined = out[:0] in place, which corrupted later groups whenever a
// combiner returned more values than it consumed.
func (e *Engine) combine(job *Job, ctx *MapCtx, out []Pair) []Pair {
	ctx.metrics.CPUSeconds += float64(len(out)) * e.Cfg.Cost.CombineCPUPerRecord
	if len(out) == 0 {
		return out
	}
	// Pass 1: assign each distinct key a dense group index, count group
	// sizes.
	idx := make(map[string]int32, len(out)/2+1)
	gi := make([]int32, len(out))
	var groups int32
	for i := range out {
		g, ok := idx[out[i].Key]
		if !ok {
			g = groups
			groups++
			idx[out[i].Key] = g
		}
		gi[i] = g
	}
	counts := make([]int32, groups)
	for _, g := range gi {
		counts[g]++
	}
	offs := make([]int32, groups+1)
	for g := int32(0); g < groups; g++ {
		offs[g+1] = offs[g] + counts[g]
	}
	// Pass 2: gather each group's values (and one key string per group)
	// into shared backing arrays — after this, nothing reads out's old
	// contents.
	keys := make([]string, groups)
	vals := make([][]byte, len(out))
	cursor := counts // reuse as per-group fill cursors
	copy(cursor, offs[:groups])
	for i := range out {
		g := gi[i]
		if cursor[g] == offs[g] {
			keys[g] = out[i].Key
		}
		vals[cursor[g]] = out[i].Val
		cursor[g]++
	}
	combined := out[:0]
	for g := int32(0); g < groups; g++ {
		for _, v := range job.Combine(keys[g], vals[offs[g]:offs[g+1]]) {
			combined = append(combined, Pair{Key: keys[g], Val: v})
		}
	}
	return combined
}

// FNV-1a constants (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashPartition is the default partitioner: FNV-1a of the key, salted by
// the engine seed. The hash is inlined — byte-identical to feeding
// fnv.New64a() the seed's 8 little-endian bytes followed by the key — so
// the per-emit hot path allocates nothing (the historical version
// allocated a hasher and a []byte(key) copy per call).
func HashPartition(seed uint64, key string, reducers int) int {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(seed>>(8*uint(i))))) * fnvPrime64
	}
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime64
	}
	return int(h % uint64(reducers))
}

// split returns the [lo,hi) range of the i-th of k equal input splits.
func split(n, k, i int) (int, int) {
	lo := i * n / k
	hi := (i + 1) * n / k
	return lo, hi
}

// tupleInputBytes returns the encoded input size of tuples, memoized for
// the last slice seen: multi-round algorithms (spcube's sample/skew/group
// rounds, mrcube, pipesort) call RunTuples repeatedly on one relation, and
// the full encoding pass only needs to run once per relation. The cache
// key is the slice identity (base pointer + length) — same tuples, same
// bytes — so a different or mutated-in-place-to-different-length slice
// recomputes.
func (e *Engine) tupleInputBytes(tuples []relation.Tuple) int64 {
	if len(tuples) == 0 {
		return 0
	}
	if e.inBytesPtr == &tuples[0] && e.inBytesN == len(tuples) {
		return e.inBytesVal
	}
	v := tupleInputBytes(tuples)
	e.inBytesPtr, e.inBytesN, e.inBytesVal = &tuples[0], len(tuples), v
	return v
}

func tupleInputBytes(tuples []relation.Tuple) int64 {
	var total int64
	buf := make([]byte, 0, 64)
	for i := range tuples {
		buf = relation.EncodeTuple(buf, tuples[i])
		total += int64(len(buf)) + 2
	}
	return total
}
