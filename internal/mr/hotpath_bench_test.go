package mr_test

// Hot-path benchmarks of the engine's data plane, written against the
// public API only so that `make bench-compare` can copy this file into a
// worktree of an older commit and run the identical workload there —
// benchstat then compares old vs new on equal terms.
//
// BenchmarkEngineHotPath is the end-to-end number the repo's perf
// trajectory (BENCH_hotpath.json) tracks: the naive cube — the pure
// engine stressor, n·2^d intermediate records with no mapper-side
// aggregation to hide behind — over a fig6-style skewed gen-binomial
// relation. It exercises every stage the sort-merge shuffle rebuilt:
// per-emit partitioning, map-side bucket sort, the run hand-off, and the
// reducer's k-way merge.

import (
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// BenchmarkEngineHotPath runs the naive cube end to end on the fig6-style
// skewed workload (gen-binomial, d=4, p=0.4): 8000 tuples × 16 cuboids =
// 128k intermediate records per iteration through emit, partition, shuffle
// and reduce.
func BenchmarkEngineHotPath(b *testing.B) {
	rel := data.GenBinomial(8000, 4, 0.4, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mr.New(mr.Config{Workers: 8, Seed: 42, Parallelism: 1}, nil)
		run, err := naive.Compute(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			b.Fatal(err)
		}
		if recs := run.Metrics.ShuffleRecords(); recs != int64(rel.N())*16 {
			b.Fatalf("shuffle records = %d, want %d", recs, rel.N()*16)
		}
	}
	b.ReportMetric(float64(rel.N())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkEngineHotPathParallel is the same workload with the worker pool
// on, to catch contention regressions in the shared hot paths.
func BenchmarkEngineHotPathParallel(b *testing.B) {
	rel := data.GenBinomial(8000, 4, 0.4, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mr.New(mr.Config{Workers: 8, Seed: 42, Parallelism: 8}, nil)
		if _, err := naive.Compute(eng, rel, cube.Spec{Agg: agg.Count}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashPartition measures the default partitioner on a realistic
// encoded-group-key mix. The acceptance bar is 0 allocs/op.
func BenchmarkHashPartition(b *testing.B) {
	keys := make([]string, 0, 64)
	rel := data.GenBinomial(64, 4, 0.4, 7)
	for _, t := range rel.Tuples[:64] {
		keys = append(keys, string(append([]byte{byte('G')}, encodeDims(t.Dims)...)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += mr.HashPartition(42, keys[i&63], 21)
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// encodeDims is a tiny stand-in for a group-key payload (this file must
// stay self-contained enough to compile against older trees).
func encodeDims(dims []relation.Value) []byte {
	out := make([]byte, 0, len(dims)*2)
	for _, v := range dims {
		out = append(out, byte(v), byte(v>>8))
	}
	return out
}
