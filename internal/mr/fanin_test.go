package mr

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr/blockcodec"
)

// writeRun materializes one sorted bucket as an on-disk run and returns it
// as a merge source.
func writeRun(t *testing.T, sd *spillDir, codec blockcodec.Codec, pairs []Pair) streamSource {
	t.Helper()
	sf, err := sd.create("run-m-*")
	if err != nil {
		t.Fatal(err)
	}
	var enc, block []byte
	framed, segs, _ := encodeSpill([][]Pair{pairs}, codec, nil, &enc, &block)
	if err := sf.append(framed, segs); err != nil {
		t.Fatal(err)
	}
	return streamSource{seg: &sf.spills[0][0]}
}

// fanInRuns builds a deliberately tie-heavy set of sorted runs: many runs
// share keys, so the lower-source-index tiebreak is exercised on nearly
// every pop.
func fanInRuns(t *testing.T, sd *spillDir, codec blockcodec.Codec, n int) []streamSource {
	t.Helper()
	runs := make([]streamSource, n)
	for i := 0; i < n; i++ {
		var pairs []Pair
		for k := 0; k < 20; k++ {
			key := fmt.Sprintf("key-%03d", (k+i)%25)
			if k > 0 && key < pairs[len(pairs)-1].Key {
				continue // keep the run sorted
			}
			pairs = append(pairs, Pair{Key: key, Val: []byte(fmt.Sprintf("run%d#%d", i, k))})
		}
		runs[i] = writeRun(t, sd, codec, pairs)
	}
	return runs
}

// drain pops every record from a merger into owned copies.
func drain(t *testing.T, m *streamMerger) []Pair {
	t.Helper()
	var out []Pair
	for {
		key, val, ok := m.next()
		if !ok {
			break
		}
		out = append(out, Pair{Key: string(key), Val: append([]byte(nil), val...)})
	}
	if m.err != nil {
		t.Fatal(m.err)
	}
	return out
}

// TestFanInMergeMatchesGlobalMerge is the order contract of multi-pass
// fan-in: whatever the cap, the surviving runs must stream exactly the
// records a single global merge over the original runs would emit, in the
// same order — ties between runs included.
func TestFanInMergeMatchesGlobalMerge(t *testing.T) {
	for _, codecName := range blockcodec.Names() {
		for _, fanIn := range []int{2, 3, 7} {
			t.Run(fmt.Sprintf("%s/fanin-%d", codecName, fanIn), func(t *testing.T) {
				codec, err := blockcodec.ByName(codecName)
				if err != nil {
					t.Fatal(err)
				}
				eng := New(Config{Workers: 4, MergeFanIn: fanIn}, dfs.New(false))
				sd := newSpillDir(t.TempDir(), nil)
				defer sd.cleanup()

				const nRuns = 17
				global := newStreamMerger(fanInRuns(t, sd, codec, nRuns), mergeOpts{})
				want := drain(t, global)
				global.close()

				runs := fanInRuns(t, sd, codec, nRuns)
				var tm TaskMetrics
				merged, err := eng.fanInMerge(runs, fanIn, sd, 0, codec, &tm, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(merged) > fanIn {
					t.Fatalf("fanInMerge left %d runs, cap is %d", len(merged), fanIn)
				}
				if tm.MergePasses == 0 {
					t.Fatal("expected intermediate merge passes")
				}
				if tm.CompressedSpillBytes == 0 || tm.CPUSeconds == 0 {
					t.Errorf("intermediate merges not charged: %d bytes, %v cpu",
						tm.CompressedSpillBytes, tm.CPUSeconds)
				}
				final := newStreamMerger(merged, mergeOpts{})
				defer final.close()
				got := drain(t, final)

				if len(got) != len(want) {
					t.Fatalf("fan-in merge emitted %d records, global merge %d", len(got), len(want))
				}
				for i := range want {
					if got[i].Key != want[i].Key || !bytes.Equal(got[i].Val, want[i].Val) {
						t.Fatalf("record %d: fan-in (%q, %q), global (%q, %q)",
							i, got[i].Key, got[i].Val, want[i].Key, want[i].Val)
					}
				}
			})
		}
	}
}

// TestSegWriterRoundTrip: segWriter's incremental block flushing must
// produce a segment whose contents and metadata match what a one-shot
// encodeSpill of the same records would have accounted.
func TestSegWriterRoundTrip(t *testing.T) {
	codec := blockcodec.LZ{}
	sd := newSpillDir(t.TempDir(), nil)
	defer sd.cleanup()
	sf, err := sd.create("run-i-*")
	if err != nil {
		t.Fatal(err)
	}
	w := newSegWriter(sf, codec)
	// Enough volume to force several mid-stream block flushes.
	var keys []string
	var vals [][]byte
	for i := 0; i < 4000; i++ {
		keys = append(keys, fmt.Sprintf("cuboid/ab/sku-%06d", i))
		vals = append(vals, bytes.Repeat([]byte{byte(i)}, i%40))
	}
	var wantRaw int64
	for i := range keys {
		if err := w.add([]byte(keys[i]), vals[i]); err != nil {
			t.Fatal(err)
		}
		wantRaw += pairBytes(keys[i], vals[i])
	}
	seg, err := w.finish()
	if err != nil {
		t.Fatal(err)
	}
	if seg.records != int64(len(keys)) || seg.raw != wantRaw {
		t.Fatalf("segment metadata: %d records/%d raw, want %d/%d",
			seg.records, seg.raw, len(keys), wantRaw)
	}
	if seg.length != sf.off {
		t.Fatalf("segment length %d, file offset %d", seg.length, sf.off)
	}
	rd := newSegReader(*seg, 0, nil, nil)
	for i := range keys {
		k, v, ok, err := rd.next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if string(k) != keys[i] || !bytes.Equal(v, vals[i]) {
			t.Fatalf("record %d: got (%q, %x), want (%q, %x)", i, k, v, keys[i], vals[i])
		}
	}
	if _, _, ok, _ := rd.next(); ok {
		t.Fatal("segment over-reads past its record count")
	}
}
