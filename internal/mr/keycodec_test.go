package mr

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// roundtrip encodes keys/vals as one front-coded segment and decodes it
// back through a recordReader with the given buffer size.
func roundtrip(t *testing.T, keys []string, vals [][]byte, bufSize int) {
	t.Helper()
	var buf []byte
	prev := ""
	for i, k := range keys {
		buf = appendSpillRecord(buf, prev, k, vals[i])
		prev = k
	}
	rr := newRecordReader(bytes.NewReader(buf), int64(len(keys)), bufSize)
	for i := range keys {
		k, v, ok, err := rr.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("record %d: premature end", i)
		}
		if string(k) != keys[i] || !bytes.Equal(v, vals[i]) {
			t.Fatalf("record %d: got (%q, %q), want (%q, %q)", i, k, v, keys[i], vals[i])
		}
	}
	if _, _, ok, err := rr.next(); ok || err != nil {
		t.Fatalf("after last record: ok=%v err=%v, want exhausted", ok, err)
	}
}

func TestSpillRecordRoundtrip(t *testing.T) {
	keys := []string{
		"", "a", "aa", "aardvark", "aardwolf", "ab",
		strings.Repeat("cube", 100), strings.Repeat("cube", 100) + "!",
		"z",
	}
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte(i)}, i*7%23)
	}
	vals[3] = nil // empty value mid-stream
	for _, bufSize := range []int{16, 64, 4096} {
		roundtrip(t, keys, vals, bufSize)
	}
}

func TestSpillRecordFrontCodingCompresses(t *testing.T) {
	// Sorted cube-style keys share long prefixes; the encoding must be
	// much smaller than storing keys whole.
	var whole, coded int
	var buf []byte
	prev := ""
	for i := 0; i < 100; i++ {
		key := "cuboid/ab/region-7/sku-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		whole += len(key)
		buf = appendSpillRecord(buf[:0], prev, key, nil)
		coded += len(buf)
		prev = key
	}
	if coded >= whole {
		t.Errorf("front coding did not compress: %d coded vs %d whole key bytes", coded, whole)
	}
}

func TestRecordReaderTruncated(t *testing.T) {
	buf := appendSpillRecord(nil, "", "hello", []byte("world"))
	for cut := 1; cut < len(buf); cut++ {
		rr := newRecordReader(bytes.NewReader(buf[:len(buf)-cut]), 1, 16)
		if _, _, _, err := rr.next(); err == nil {
			t.Fatalf("truncated by %d bytes: expected error", cut)
		}
	}
}

// FuzzKeyCodec fuzzes the spill record codec from both ends. The input
// bytes are first treated as a corrupt segment and decoded — the reader
// must fail cleanly, never panic or over-read — then carved into records,
// encoded, and decoded back, which must reproduce them exactly whatever
// the key shapes (shared prefixes, empty keys, binary values).
func FuzzKeyCodec(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("hello\x00world"))
	f.Add(appendSpillRecord(nil, "", "cuboid/ab/7", []byte("v")))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Adversarial decode: claim a few records live in these bytes.
		rr := newRecordReader(bytes.NewReader(data), 4, 16)
		for {
			_, _, ok, err := rr.next()
			if err != nil || !ok {
				break
			}
		}
		// Round trip: carve data into alternating key/value chunks.
		var keys []string
		var vals [][]byte
		for i := 0; i < len(data); {
			n := int(data[i])%7 + 1
			if i+n > len(data) {
				n = len(data) - i
			}
			keys = append(keys, string(data[i:i+n]))
			i += n
			m := 0
			if i < len(data) {
				m = int(data[i]) % 5
				if i+m > len(data) {
					m = len(data) - i
				}
			}
			vals = append(vals, data[i:i+m])
			i += m
		}
		var buf []byte
		prev := ""
		for i, k := range keys {
			buf = appendSpillRecord(buf, prev, k, vals[i])
			prev = k
		}
		rr = newRecordReader(bytes.NewReader(buf), int64(len(keys)), 16)
		for i := range keys {
			k, v, ok, err := rr.next()
			if err != nil || !ok {
				t.Fatalf("record %d/%d: ok=%v err=%v", i, len(keys), ok, err)
			}
			if string(k) != keys[i] || !bytes.Equal(v, vals[i]) {
				t.Fatalf("record %d: got (%q, %q), want (%q, %q)", i, k, v, keys[i], vals[i])
			}
		}
		if _, _, ok, err := rr.next(); ok || err != nil {
			t.Fatalf("after last record: ok=%v err=%v, want exhausted", ok, err)
		}
	})
}

func TestRecordReaderBadPrefix(t *testing.T) {
	// First record claims a 5-byte shared prefix, but there is no previous
	// key: the reader must reject it rather than read garbage.
	var buf []byte
	buf = binary.AppendUvarint(buf, 5)
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, 0)
	rr := newRecordReader(bytes.NewReader(buf), 1, 16)
	if _, _, _, err := rr.next(); err == nil || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("expected prefix validation error, got %v", err)
	}
}
