package mr

import (
	"fmt"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/relation"
)

// TestPhaseAveragesExcludeUnexecutedTasks is the regression test for the
// averaging bug: MapTimeAvg/ReduceTimeAvg used to divide by the total task
// count, so reducers that never ran — those scheduled after the first OOM
// under FailOnReducerOOM, which keep Attempts == 0 — deflated the averages
// of failed rounds. The averages must cover executed tasks only.
func TestPhaseAveragesExcludeUnexecutedTasks(t *testing.T) {
	// Route keys explicitly over three reducers: reducer 0 gets a small
	// (survivable) input, reducer 1 a large one that trips the OOM check,
	// reducer 2 nothing. With FailOnReducerOOM the prescan kills the round
	// at reducer 1, so only reducer 0 executes; reducers 1 and 2 keep
	// Attempts == 0.
	var tuples []relation.Tuple
	for i := 0; i < 110; i++ {
		tuples = append(tuples, relation.Tuple{Dims: []relation.Value{int32(i)}, Measure: 1})
	}
	job := &Job{
		Name: "oom-avg",
		MapTuple: func(ctx *MapCtx, tu relation.Tuple) {
			key := "cold"
			if tu.Dims[0] >= 10 {
				key = "hot"
			}
			ctx.Emit(fmt.Sprintf("%s-%d", key, tu.Dims[0]), []byte("v"))
		},
		Reducers: 3,
		Partition: func(key string, r int) int {
			if strings.HasPrefix(key, "cold") {
				return 0
			}
			return 1
		},
		Reduce:           func(*RedCtx, string, [][]byte) {},
		FailOnReducerOOM: true,
	}
	// OOMFactor 0.01 over the 4000-tuple memory floor puts the OOM
	// threshold at 40 input records: reducer 0 (10 records) survives,
	// reducer 1 (100 records) dies.
	eng := New(Config{Workers: 2, OOMFactor: 0.01}, nil)
	res, err := eng.RunTuples(job, tuples)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	rm := &res.Metrics
	if !rm.Failed || !strings.Contains(rm.FailReason, "reducer 1") {
		t.Fatalf("round must fail at reducer 1: %+v", rm.FailReason)
	}
	if rm.Reducers[0].Attempts != 1 || rm.Reducers[1].Attempts != 0 || rm.Reducers[2].Attempts != 0 {
		t.Fatalf("attempts = %d/%d/%d, want 1/0/0",
			rm.Reducers[0].Attempts, rm.Reducers[1].Attempts, rm.Reducers[2].Attempts)
	}
	if rm.ReducersExecuted != 1 {
		t.Errorf("ReducersExecuted = %d, want 1", rm.ReducersExecuted)
	}
	if rm.MappersExecuted != 2 {
		t.Errorf("MappersExecuted = %d, want 2", rm.MappersExecuted)
	}
	// The average must equal the executed reducer's CPU time exactly, not
	// be diluted over the two reducers that never ran.
	if got, want := rm.ReduceTimeAvg, rm.Reducers[0].CPUSeconds; got != want {
		t.Errorf("ReduceTimeAvg = %v, want the executed reducer's %v", got, want)
	}
	if rm.ReduceTimeAvg <= 0 {
		t.Error("executed reducer must charge CPU time")
	}

	// Job-level averaging must weight rounds by executed tasks, so a
	// failed round with one executed reducer does not drag the job average
	// toward zero.
	var jm JobMetrics
	jm.Add(res.Metrics)
	if got, want := jm.ReduceTimeAvg(), rm.Reducers[0].CPUSeconds; got != want {
		t.Errorf("JobMetrics.ReduceTimeAvg = %v, want %v", got, want)
	}
	if got, want := jm.MapTimeAvg(), rm.MapTimeAvg; got != want {
		t.Errorf("JobMetrics.MapTimeAvg = %v, want %v", got, want)
	}
}
