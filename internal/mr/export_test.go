package mr

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoadBalance(t *testing.T) {
	if NewLoadBalance(nil) != nil {
		t.Error("empty vector must yield nil")
	}
	lb := NewLoadBalance([]int64{10, 40, 20, 80})
	if lb.Tasks != 4 || lb.MinBytes != 10 || lb.MaxBytes != 80 {
		t.Errorf("extrema: %+v", lb)
	}
	if lb.MedianBytes != 40 {
		t.Errorf("median = %d, want 40", lb.MedianBytes)
	}
	if lb.MeanBytes != 37.5 {
		t.Errorf("mean = %v, want 37.5", lb.MeanBytes)
	}
	if lb.MaxOverMedian != 2 {
		t.Errorf("max/median = %v, want 2", lb.MaxOverMedian)
	}
	var total int
	for _, c := range lb.Histogram {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram counts %d tasks, want 4", total)
	}
	if lb.Histogram[len(lb.Histogram)-1] != 1 {
		t.Errorf("max value must land in the last bucket: %v", lb.Histogram)
	}
	// Perfectly balanced vector: ratio 1, everything in the top bucket.
	lb = NewLoadBalance([]int64{5, 5, 5})
	if lb.MaxOverMedian != 1 || lb.Histogram[len(lb.Histogram)-1] != 3 {
		t.Errorf("balanced vector: %+v", lb)
	}
	// All-zero vector degrades without dividing by zero.
	lb = NewLoadBalance([]int64{0, 0})
	if lb.MaxOverMedian != 0 || lb.Histogram[0] != 2 {
		t.Errorf("zero vector: %+v", lb)
	}
}

func runSmallJob(t *testing.T, par int) *JobMetrics {
	t.Helper()
	tuples, _ := tuplesFromWords(strings.Fields(strings.Repeat("a b c d ", 100)))
	eng := New(Config{Workers: 4, Seed: 3, Parallelism: par}, nil)
	counts := make(map[string]int64)
	res, err := eng.RunTuples(wordCountJob(counts), tuples)
	if err != nil {
		t.Fatal(err)
	}
	var jm JobMetrics
	jm.Add(res.Metrics)
	return &jm
}

func TestMetricsMarshalJSONSchema(t *testing.T) {
	data, err := json.Marshal(runSmallJob(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if v, ok := doc["schemaVersion"].(float64); !ok || int(v) != MetricsSchemaVersion {
		t.Errorf("schemaVersion = %v, want %d", doc["schemaVersion"], MetricsSchemaVersion)
	}
	rounds, ok := doc["rounds"].([]any)
	if !ok || len(rounds) != 1 {
		t.Fatalf("rounds: %v", doc["rounds"])
	}
	round := rounds[0].(map[string]any)
	for _, key := range []string{"job", "shuffleBytes", "mappersExecuted", "reducersExecuted",
		"simSeconds", "wallSeconds", "retries", "mappers", "reducers", "reducerInputBalance"} {
		if _, ok := round[key]; !ok {
			t.Errorf("round document lacks %q", key)
		}
	}
	if got := len(round["mappers"].([]any)); got != 4 {
		t.Errorf("mappers in document = %d, want 4", got)
	}
	task := round["mappers"].([]any)[0].(map[string]any)
	for _, key := range []string{"inRecords", "outBytes", "cpuSeconds", "attempts"} {
		if _, ok := task[key]; !ok {
			t.Errorf("task document lacks %q", key)
		}
	}
	lb := round["reducerInputBalance"].(map[string]any)
	if _, ok := lb["maxOverMedian"]; !ok {
		t.Error("load-balance document lacks maxOverMedian")
	}
}

// stripKeys recursively removes the named keys from a decoded JSON tree.
func stripKeys(v any, keys map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			if keys[k] {
				delete(x, k)
				continue
			}
			stripKeys(sub, keys)
		}
	case []any:
		for _, sub := range x {
			stripKeys(sub, keys)
		}
	}
}

func TestMetricsJSONDeterministicAcrossParallelism(t *testing.T) {
	volatile := map[string]bool{"wallSeconds": true, "retryWallSeconds": true}
	var docs [2]any
	for i, par := range []int{1, 8} {
		data, err := json.Marshal(runSmallJob(t, par))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &docs[i]); err != nil {
			t.Fatal(err)
		}
		stripKeys(docs[i], volatile)
	}
	a, _ := json.Marshal(docs[0])
	b, _ := json.Marshal(docs[1])
	if !bytes.Equal(a, b) {
		t.Error("metrics document differs between parallelism 1 and 8 after stripping wall-clock fields")
	}
}

func TestExportMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportMetrics(&buf, runSmallJob(t, 1)); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Error("exported document must end with a newline")
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("exported document is not valid JSON: %v", err)
	}
	if !bytes.Contains(out, []byte("\n  ")) {
		t.Error("exported document must be indented")
	}
}
