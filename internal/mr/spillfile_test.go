package mr

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/mr/blockcodec"
)

// writeSpillSync encodes one flush through codec and appends it
// synchronously — the test-side stand-in for the engine's
// encode-then-submit pipeline.
func writeSpillSync(t *testing.T, sf *spillFile, buckets [][]Pair, codec blockcodec.Codec) (written, encBytes int64) {
	t.Helper()
	var enc, block []byte
	framed, segs, encBytes := encodeSpill(buckets, codec, nil, &enc, &block)
	if err := sf.append(framed, segs); err != nil {
		t.Fatal(err)
	}
	return int64(len(framed)), encBytes
}

// listAll returns every file under dir, recursively.
func listAll(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if path != dir {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func testBuckets() [][]Pair {
	return [][]Pair{
		{{Key: "apple", Val: []byte("1")}, {Key: "apricot", Val: []byte("22")}},
		{}, // empty bucket: zero-length segment
		{{Key: "banana", Val: nil}, {Key: "banana", Val: []byte("x")}, {Key: "band", Val: []byte("yz")}},
	}
}

// TestWriteSpillExactBytes is the spill-accounting regression (the engine
// once estimated spill volume at a hardcoded 24 bytes/record): the framed
// byte count the encoder reports — the number CompressedSpillBytes is
// built from — must equal the bytes physically on disk, and the segment
// metadata must mirror the in-memory accounting exactly. Runs under every
// codec.
func TestWriteSpillExactBytes(t *testing.T) {
	for _, name := range blockcodec.Names() {
		t.Run(name, func(t *testing.T) {
			codec, err := blockcodec.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sd := newSpillDir(t.TempDir(), nil)
			defer sd.cleanup()
			sf, err := sd.create("run-m-*")
			if err != nil {
				t.Fatal(err)
			}
			buckets := testBuckets()
			var total int64
			for flush := 0; flush < 3; flush++ {
				written, encBytes := writeSpillSync(t, sf, buckets, codec)
				if written <= 0 || encBytes <= 0 {
					t.Fatalf("flush %d: written = %d, encBytes = %d", flush, written, encBytes)
				}
				total += written
				st, err := os.Stat(sf.path)
				if err != nil {
					t.Fatal(err)
				}
				if st.Size() != total {
					t.Fatalf("flush %d: reported %d cumulative bytes, file holds %d", flush, total, st.Size())
				}
			}
			for flush, segs := range sf.spills {
				var segSum int64
				for r, seg := range segs {
					segSum += seg.length
					want := buckets[r]
					if seg.records != int64(len(want)) {
						t.Fatalf("flush %d reducer %d: %d records, want %d", flush, r, seg.records, len(want))
					}
					var raw int64
					for i := range want {
						raw += pairBytes(want[i].Key, want[i].Val)
					}
					if seg.raw != raw {
						t.Fatalf("flush %d reducer %d: raw %d, want %d", flush, r, seg.raw, raw)
					}
					rd := newSegReader(seg, 0, nil, nil)
					for i := range want {
						k, v, ok, err := rd.next()
						if err != nil || !ok {
							t.Fatalf("flush %d reducer %d record %d: ok=%v err=%v", flush, r, i, ok, err)
						}
						if string(k) != want[i].Key || !bytes.Equal(v, want[i].Val) {
							t.Fatalf("flush %d reducer %d record %d: got (%q, %q), want (%q, %q)",
								flush, r, i, k, v, want[i].Key, want[i].Val)
						}
					}
					if _, _, ok, _ := rd.next(); ok {
						t.Fatalf("flush %d reducer %d: segment over-reads", flush, r)
					}
					// A reset re-reads the segment from the start (retried attempt).
					rd.reset()
					if k, _, ok, err := rd.next(); len(want) > 0 && (err != nil || !ok || string(k) != want[0].Key) {
						t.Fatalf("flush %d reducer %d: reset re-read failed: %q %v %v", flush, r, k, ok, err)
					}
				}
				// Segment lengths tile the flush exactly: no gaps, no overlap.
				if segSum*3 != total {
					t.Fatalf("flush %d: segment lengths sum to %d, flush wrote %d", flush, segSum, total/3)
				}
			}
		})
	}
}

func TestSpillDirCleanupRemovesEverything(t *testing.T) {
	base := t.TempDir()
	sd := newSpillDir(base, nil)
	for i := 0; i < 4; i++ {
		sf, err := sd.create(fmt.Sprintf("run-%d-*", i))
		if err != nil {
			t.Fatal(err)
		}
		writeSpillSync(t, sf, testBuckets(), blockcodec.Raw{})
	}
	if got := listAll(t, base); len(got) == 0 {
		t.Fatal("expected run files before cleanup")
	}
	sd.cleanup()
	if got := listAll(t, base); len(got) != 0 {
		t.Fatalf("cleanup left files behind: %v", got)
	}
	// cleanup is idempotent.
	sd.cleanup()
}

func TestSpillFileDiscard(t *testing.T) {
	base := t.TempDir()
	sd := newSpillDir(base, nil)
	defer sd.cleanup()
	sf, err := sd.create("run-m-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.writeRaw([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	sf.discard()
	if _, err := os.Stat(sf.path); !os.IsNotExist(err) {
		t.Fatalf("discard left the file: %v", err)
	}
	sf.discard() // idempotent
	var nilFile *spillFile
	nilFile.discard() // nil-safe: failed attempts may never have spilled
	nilFile.close()
}

// TestSpillDirHonorsTMPDIR: with Config.SpillDir unset the run files must
// land under $TMPDIR (via os.TempDir), not a hardcoded /tmp — operators
// point TMPDIR at the scratch disk that can actually hold a shuffle.
func TestSpillDirHonorsTMPDIR(t *testing.T) {
	base := t.TempDir()
	t.Setenv("TMPDIR", base)
	sd := newSpillDir("", nil)
	defer sd.cleanup()
	sf, err := sd.create("run-m-*")
	if err != nil {
		t.Fatal(err)
	}
	if rel, err := filepath.Rel(base, sf.path); err != nil || strings.HasPrefix(rel, "..") {
		t.Errorf("spill file %q is outside TMPDIR %q", sf.path, base)
	}
}

func TestSpillDirLazyCreation(t *testing.T) {
	base := t.TempDir()
	sd := newSpillDir(base, nil)
	sd.cleanup() // no create call: nothing must have touched base
	if got := listAll(t, base); len(got) != 0 {
		t.Fatalf("spillDir touched the filesystem without a spill: %v", got)
	}
}
