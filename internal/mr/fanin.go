package mr

import (
	"unsafe"

	"github.com/spcube/spcube/internal/mr/blockcodec"
)

// This file implements multi-pass fan-in control for the reduce-side
// streaming merge — the io.sort.factor half of the spill pipeline. A
// reduce task facing more live runs than Config.MergeFanIn (tiny spill
// budgets can produce hundreds) merges contiguous groups of MergeFanIn
// runs into intermediate on-disk runs, repeating until at most MergeFanIn
// remain, and only then opens its final streaming merge.
//
// Order contract: groups are contiguous and replaced in position, and the
// in-group merge breaks key ties by the lower source index — so the merged
// run holds exactly the records a single global merge would have emitted
// from those sources, in the same order, and the final merge's
// lower-index tiebreak over group runs reproduces the global
// lower-source-index tiebreak. Reducer input is byte-identical at any
// fan-in.

// defaultMergeFanIn is the run-count cap when Config.MergeFanIn is 0 —
// the same default as Hadoop's io.sort.factor ballpark.
const defaultMergeFanIn = 64

// mergeFanIn resolves Config.MergeFanIn: 0 means the default, and a
// two-way merge is the smallest that makes progress.
func (e *Engine) mergeFanIn() int {
	f := e.Cfg.MergeFanIn
	if f == 0 {
		return defaultMergeFanIn
	}
	if f < 2 {
		return 2
	}
	return f
}

// fanInMerge reduces runs to at most fanIn sources by repeated passes of
// contiguous group merges, charging base for the extra I/O (each merged
// byte is written once and read back once; the first read of the source
// segments was already charged by the reduce pre-scan) and tracing one
// merge-pass event per group merge. I/O errors are plain task failures —
// infrastructure, not injected faults, so not retryable.
func (e *Engine) fanInMerge(runs []streamSource, fanIn int, sd *spillDir, task int,
	codec blockcodec.Codec, base *TaskMetrics, tr *roundTracer) ([]streamSource, error) {
	for len(runs) > fanIn {
		next := make([]streamSource, 0, (len(runs)+fanIn-1)/fanIn)
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			if hi-lo == 1 {
				// A lone trailing run needs no merge; carrying it over
				// keeps its position, and with it the order contract.
				next = append(next, runs[lo])
				continue
			}
			src, err := e.mergeRunGroup(runs[lo:hi], sd, task, codec, base, tr)
			if err != nil {
				return nil, err
			}
			next = append(next, src)
		}
		runs = next
	}
	return runs, nil
}

// mergeRunGroup merges one contiguous group of sources into a fresh
// on-disk run and returns it as a replacement source.
func (e *Engine) mergeRunGroup(group []streamSource, sd *spillDir, task int,
	codec blockcodec.Codec, base *TaskMetrics, tr *roundTracer) (streamSource, error) {
	m := newStreamMerger(group, mergeOpts{})
	defer m.close()
	sf, err := sd.create("run-i-*")
	if err != nil {
		return streamSource{}, err
	}
	w := newSegWriter(sf, codec)
	for {
		key, val, ok := m.next()
		if !ok {
			break
		}
		if err := w.add(key, val); err != nil {
			return streamSource{}, err
		}
	}
	if m.err != nil {
		return streamSource{}, m.err
	}
	seg, err := w.finish()
	if err != nil {
		return streamSource{}, err
	}
	base.MergePasses++
	base.CompressedSpillBytes += seg.length
	base.CPUSeconds += 2 * float64(seg.length) / e.Cfg.Cost.DiskBytesPerSec
	tr.add(PhaseReduce, task, TraceEvent{
		Type: EvMergePass, Bytes: seg.length, Records: seg.records,
	})
	return streamSource{seg: seg}, nil
}

// segWriter streams records into one front-coded, block-framed segment,
// flushing framed blocks to the file as the encoding buffer fills — a
// merged run can exceed memory, so nothing buffers the whole segment.
type segWriter struct {
	sf     *spillFile
	codec  blockcodec.Codec
	seg    spillSeg
	enc    []byte // pending front-coded bytes, framed once a block fills
	framed []byte
	block  []byte
	prev   []byte // previous key (owned copy; merge buffers are reused)
}

func newSegWriter(sf *spillFile, codec blockcodec.Codec) *segWriter {
	return &segWriter{
		sf:    sf,
		codec: codec,
		seg:   spillSeg{f: sf.f, codec: codec},
	}
}

// add appends one record. key and val need only stay valid for the call.
func (w *segWriter) add(key, val []byte) error {
	w.enc = appendSpillRecord(w.enc, byteString(w.prev), byteString(key), val)
	w.seg.records++
	w.seg.raw += int64(len(key)+len(val)) + RecordOverhead
	w.prev = append(w.prev[:0], key...)
	if len(w.enc) >= blockcodec.DefaultBlockSize {
		return w.flush()
	}
	return nil
}

// flush frames the pending encoding into blocks and writes them out.
func (w *segWriter) flush() error {
	w.seg.enc += int64(len(w.enc))
	w.framed, w.block = blockcodec.AppendAll(w.framed[:0], w.codec, w.enc, w.block)
	w.seg.length += int64(len(w.framed))
	w.enc = w.enc[:0]
	return w.sf.writeRaw(w.framed)
}

// finish flushes the tail and returns the completed segment (offset 0:
// each merged run owns its file).
func (w *segWriter) finish() (*spillSeg, error) {
	if len(w.enc) > 0 {
		if err := w.flush(); err != nil {
			return nil, err
		}
	}
	seg := w.seg
	return &seg, nil
}

// byteString views b as a string without copying; the result is only
// valid while b's contents are.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
