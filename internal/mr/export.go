package mr

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MetricsSchemaVersion identifies the machine-readable metrics document
// layout produced by JobMetrics.MarshalJSON / ExportMetrics. Consumers must
// check it before interpreting the document; it is bumped on any
// backwards-incompatible change.
//
// Determinism contract of the document: for a fixed input, configuration
// and fault plan, every field is bit-for-bit identical at any
// Config.Parallelism except the wall-clock fields ("wallSeconds",
// "retryWallSeconds", "speculativeWallSeconds"). Additionally, the
// recovery-accounting fields ("retries", "wastedBytes", "attempts",
// "reexecutions"/"mapReexecutions", "fetchFailures",
// "speculativeLaunched"/"Won"/"Killed") are the only deterministic fields
// that differ between a faulted and a fault-free run of the same job.
//
// Version history: v2 added the node-failure and speculation recovery
// counters at every level (task, round, job); v3 added the optional
// per-round "maint" annotation describing incremental-maintenance cycles
// (cycle ordinal, delta-vs-rebuild mode, decision reason, sketch drift,
// batch sizes); v4 added the "spills" counter at every level and
// "spillBytes" at round and job level, and redefined "spillBytes" from an
// estimated external-aggregation volume to the exact encoded bytes the
// spill writer produced (out-of-core shuffle run files included); v5 added
// the spill-pipeline counters at every level: "compressedSpillBytes" (the
// framed, block-compressed bytes physically written — the disk-charged
// size) and "mergePasses" (intermediate fan-in merges), both
// deterministic, plus the volatile overlap counters "spillWriteStallNs",
// "prefetchHits" and "prefetchMisses", which join the wall-clock fields
// outside the determinism contract; v6 added the execution-backend health
// counters "heartbeatMisses", "workerRestarts" and "rpcRetries" at round
// and job level — all volatile (real crash recovery and transport
// flakiness do not replay), always zero under the in-process local
// backend.
const MetricsSchemaVersion = 6

// LoadBalance summarizes how evenly a byte quantity is spread over a
// round's reduce tasks — the paper's §6.2 closing claim is that SP-Cube's
// reducer outputs are near-balanced while hash partitioning under skew is
// not.
type LoadBalance struct {
	Tasks       int     `json:"tasks"`
	MinBytes    int64   `json:"minBytes"`
	MedianBytes int64   `json:"medianBytes"`
	MaxBytes    int64   `json:"maxBytes"`
	MeanBytes   float64 `json:"meanBytes"`
	// MaxOverMedian is the imbalance ratio (1 = perfectly balanced); when
	// the median is zero it degrades to the raw maximum.
	MaxOverMedian float64 `json:"maxOverMedian"`
	// Histogram counts tasks per bucket over the linear range [0,
	// maxBytes], in 8 equal-width buckets (all tasks land in bucket 0 when
	// maxBytes is 0).
	Histogram [8]int `json:"histogram"`
}

// NewLoadBalance builds the balance summary of one byte-size-per-task
// vector; nil for an empty vector.
func NewLoadBalance(sizes []int64) *LoadBalance {
	if len(sizes) == 0 {
		return nil
	}
	sorted := append([]int64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lb := &LoadBalance{
		Tasks:       len(sizes),
		MinBytes:    sorted[0],
		MedianBytes: sorted[len(sorted)/2],
		MaxBytes:    sorted[len(sorted)-1],
	}
	var sum int64
	for _, s := range sorted {
		sum += s
	}
	lb.MeanBytes = float64(sum) / float64(len(sorted))
	if lb.MedianBytes > 0 {
		lb.MaxOverMedian = float64(lb.MaxBytes) / float64(lb.MedianBytes)
	} else {
		lb.MaxOverMedian = float64(lb.MaxBytes)
	}
	for _, s := range sorted {
		b := 0
		if lb.MaxBytes > 0 {
			b = int(int64(len(lb.Histogram)-1) * s / lb.MaxBytes)
		}
		lb.Histogram[b]++
	}
	return lb
}

// taskMetricsJSON is the wire form of TaskMetrics. Field names are part of
// the versioned schema.
type taskMetricsJSON struct {
	InRecords         int64 `json:"inRecords"`
	InBytes           int64 `json:"inBytes"`
	OutRecords        int64 `json:"outRecords"`
	OutBytes          int64 `json:"outBytes"`
	PreCombineRecords int64 `json:"preCombineRecords"`
	PreCombineBytes   int64 `json:"preCombineBytes"`
	Ops               int64 `json:"ops"`
	LargestKeyRecords int64 `json:"largestKeyRecords"`
	LargestKeyBytes   int64 `json:"largestKeyBytes"`
	SideRecords       int64 `json:"sideRecords"`
	SideBytes         int64 `json:"sideBytes"`
	Spills            int64 `json:"spills"` // schema v4
	SpillBytes        int64 `json:"spillBytes"`
	// Schema v5 spill-pipeline counters: compressedSpillBytes and
	// mergePasses are deterministic; the stall and prefetch counters are
	// volatile, like the wall-clock fields.
	CompressedSpillBytes int64   `json:"compressedSpillBytes"`
	MergePasses          int64   `json:"mergePasses"`
	SpillWriteStallNs    int64   `json:"spillWriteStallNs"`
	PrefetchHits         int64   `json:"prefetchHits"`
	PrefetchMisses       int64   `json:"prefetchMisses"`
	CPUSeconds           float64 `json:"cpuSeconds"`
	WallSeconds          float64 `json:"wallSeconds"`
	Attempts             int64   `json:"attempts"`
	RetryWallSeconds     float64 `json:"retryWallSeconds"`
	WastedBytes          int64   `json:"wastedBytes"`
	// Schema v2 recovery counters (node failures and speculation).
	Reexecutions           int64   `json:"reexecutions"`
	FetchFailures          int64   `json:"fetchFailures"`
	SpeculativeLaunched    int64   `json:"speculativeLaunched"`
	SpeculativeWon         int64   `json:"speculativeWon"`
	SpeculativeKilled      int64   `json:"speculativeKilled"`
	SpeculativeWallSeconds float64 `json:"speculativeWallSeconds"`
}

func taskJSON(t *TaskMetrics) taskMetricsJSON {
	return taskMetricsJSON{
		InRecords: t.InRecords, InBytes: t.InBytes,
		OutRecords: t.OutRecords, OutBytes: t.OutBytes,
		PreCombineRecords: t.PreCombineRecords, PreCombineBytes: t.PreCombineBytes,
		Ops:               t.Ops,
		LargestKeyRecords: t.LargestKeyRecords, LargestKeyBytes: t.LargestKeyBytes,
		SideRecords: t.SideRecords, SideBytes: t.SideBytes,
		Spills: t.Spills, SpillBytes: t.SpillBytes,
		CompressedSpillBytes: t.CompressedSpillBytes, MergePasses: t.MergePasses,
		SpillWriteStallNs: t.SpillWriteStallNs,
		PrefetchHits:      t.PrefetchHits, PrefetchMisses: t.PrefetchMisses,
		CPUSeconds: t.CPUSeconds, WallSeconds: t.WallSeconds,
		Attempts: t.Attempts, RetryWallSeconds: t.RetryWallSeconds, WastedBytes: t.WastedBytes,
		Reexecutions: t.Reexecutions, FetchFailures: t.FetchFailures,
		SpeculativeLaunched: t.SpeculativeLaunched, SpeculativeWon: t.SpeculativeWon,
		SpeculativeKilled: t.SpeculativeKilled, SpeculativeWallSeconds: t.SpeculativeWallSeconds,
	}
}

func tasksJSON(ts []TaskMetrics) []taskMetricsJSON {
	out := make([]taskMetricsJSON, len(ts))
	for i := range ts {
		out[i] = taskJSON(&ts[i])
	}
	return out
}

// roundMetricsJSON is the wire form of RoundMetrics.
type roundMetricsJSON struct {
	Job              string  `json:"job"`
	ShuffleRecords   int64   `json:"shuffleRecords"`
	ShuffleBytes     int64   `json:"shuffleBytes"`
	OutputRecords    int64   `json:"outputRecords"`
	OutputBytes      int64   `json:"outputBytes"`
	MappersExecuted  int     `json:"mappersExecuted"`
	ReducersExecuted int     `json:"reducersExecuted"`
	MapTimeAvg       float64 `json:"mapTimeAvg"`
	MapTimeMax       float64 `json:"mapTimeMax"`
	ShuffleTime      float64 `json:"shuffleTime"`
	ReduceTimeAvg    float64 `json:"reduceTimeAvg"`
	ReduceTimeMax    float64 `json:"reduceTimeMax"`
	SimSeconds       float64 `json:"simSeconds"`
	WallSeconds      float64 `json:"wallSeconds"`
	Retries          int64   `json:"retries"`
	RetryWallSeconds float64 `json:"retryWallSeconds"`
	WastedBytes      int64   `json:"wastedBytes"`
	// Schema v4 spill totals (run-file flushes + external aggregation),
	// plus the v5 spill-pipeline counters.
	Spills               int64 `json:"spills"`
	SpillBytes           int64 `json:"spillBytes"`
	CompressedSpillBytes int64 `json:"compressedSpillBytes"`
	MergePasses          int64 `json:"mergePasses"`
	SpillWriteStallNs    int64 `json:"spillWriteStallNs"`
	PrefetchHits         int64 `json:"prefetchHits"`
	PrefetchMisses       int64 `json:"prefetchMisses"`
	// Schema v2 recovery counters (node failures and speculation).
	MapReexecutions        int64   `json:"mapReexecutions"`
	FetchFailures          int64   `json:"fetchFailures"`
	SpeculativeLaunched    int64   `json:"speculativeLaunched"`
	SpeculativeWon         int64   `json:"speculativeWon"`
	SpeculativeKilled      int64   `json:"speculativeKilled"`
	SpeculativeWallSeconds float64 `json:"speculativeWallSeconds"`
	// Schema v6 execution-backend health counters (volatile; zero under
	// the local backend).
	HeartbeatMisses int64  `json:"heartbeatMisses"`
	WorkerRestarts  int64  `json:"workerRestarts"`
	RPCRetries      int64  `json:"rpcRetries"`
	Failed          bool   `json:"failed,omitempty"`
	FailReason      string `json:"failReason,omitempty"`
	// Schema v3 maintenance annotation (nil for ordinary rounds).
	Maint    *maintInfoJSON    `json:"maint,omitempty"`
	Mappers  []taskMetricsJSON `json:"mappers"`
	Reducers []taskMetricsJSON `json:"reducers"`
	// ReducerInputBalance/ReducerOutputBalance summarize how evenly the
	// shuffle and the output were spread over the round's reducers.
	ReducerInputBalance  *LoadBalance `json:"reducerInputBalance,omitempty"`
	ReducerOutputBalance *LoadBalance `json:"reducerOutputBalance,omitempty"`
}

// maintInfoJSON is the wire form of MaintInfo.
type maintInfoJSON struct {
	Round    int     `json:"round"`
	Mode     string  `json:"mode"`
	Reason   string  `json:"reason,omitempty"`
	Drift    float64 `json:"drift"`
	Appended int     `json:"appended"`
	Deleted  int     `json:"deleted"`
}

func maintJSON(m *MaintInfo) *maintInfoJSON {
	if m == nil {
		return nil
	}
	return &maintInfoJSON{
		Round: m.Round, Mode: m.Mode, Reason: m.Reason,
		Drift: m.Drift, Appended: m.Appended, Deleted: m.Deleted,
	}
}

func roundJSON(r *RoundMetrics) roundMetricsJSON {
	in := make([]int64, len(r.Reducers))
	for i := range r.Reducers {
		in[i] = r.Reducers[i].InBytes
	}
	return roundMetricsJSON{
		Job:            r.Job,
		ShuffleRecords: r.ShuffleRecords, ShuffleBytes: r.ShuffleBytes,
		OutputRecords: r.OutputRecords, OutputBytes: r.OutputBytes,
		MappersExecuted: r.MappersExecuted, ReducersExecuted: r.ReducersExecuted,
		MapTimeAvg: r.MapTimeAvg, MapTimeMax: r.MapTimeMax,
		ShuffleTime:   r.ShuffleTime,
		ReduceTimeAvg: r.ReduceTimeAvg, ReduceTimeMax: r.ReduceTimeMax,
		SimSeconds: r.SimSeconds, WallSeconds: r.WallSeconds,
		Retries: r.Retries, RetryWallSeconds: r.RetryWallSeconds, WastedBytes: r.WastedBytes,
		Spills: r.Spills, SpillBytes: r.SpillBytes,
		CompressedSpillBytes: r.CompressedSpillBytes, MergePasses: r.MergePasses,
		SpillWriteStallNs: r.SpillWriteStallNs,
		PrefetchHits:      r.PrefetchHits, PrefetchMisses: r.PrefetchMisses,
		MapReexecutions: r.MapReexecutions, FetchFailures: r.FetchFailures,
		SpeculativeLaunched: r.SpeculativeLaunched, SpeculativeWon: r.SpeculativeWon,
		SpeculativeKilled: r.SpeculativeKilled, SpeculativeWallSeconds: r.SpeculativeWallSeconds,
		HeartbeatMisses: r.HeartbeatMisses, WorkerRestarts: r.WorkerRestarts, RPCRetries: r.RPCRetries,
		Failed: r.Failed, FailReason: r.FailReason,
		Maint:                maintJSON(r.Maint),
		Mappers:              tasksJSON(r.Mappers),
		Reducers:             tasksJSON(r.Reducers),
		ReducerInputBalance:  NewLoadBalance(in),
		ReducerOutputBalance: NewLoadBalance(r.ReducerOutputBytes()),
	}
}

// jobMetricsJSON is the top-level versioned metrics document.
type jobMetricsJSON struct {
	SchemaVersion    int                `json:"schemaVersion"`
	Rounds           []roundMetricsJSON `json:"rounds"`
	SimSeconds       float64            `json:"simSeconds"`
	WallSeconds      float64            `json:"wallSeconds"`
	ShuffleRecords   int64              `json:"shuffleRecords"`
	ShuffleBytes     int64              `json:"shuffleBytes"`
	MapTimeAvg       float64            `json:"mapTimeAvg"`
	ReduceTimeAvg    float64            `json:"reduceTimeAvg"`
	Retries          int64              `json:"retries"`
	RetryWallSeconds float64            `json:"retryWallSeconds"`
	WastedBytes      int64              `json:"wastedBytes"`
	// Schema v4 spill totals (run-file flushes + external aggregation),
	// plus the v5 spill-pipeline counters.
	Spills               int64 `json:"spills"`
	SpillBytes           int64 `json:"spillBytes"`
	CompressedSpillBytes int64 `json:"compressedSpillBytes"`
	MergePasses          int64 `json:"mergePasses"`
	SpillWriteStallNs    int64 `json:"spillWriteStallNs"`
	PrefetchHits         int64 `json:"prefetchHits"`
	PrefetchMisses       int64 `json:"prefetchMisses"`
	// Schema v2 recovery counters (node failures and speculation).
	MapReexecutions        int64   `json:"mapReexecutions"`
	FetchFailures          int64   `json:"fetchFailures"`
	SpeculativeLaunched    int64   `json:"speculativeLaunched"`
	SpeculativeWon         int64   `json:"speculativeWon"`
	SpeculativeKilled      int64   `json:"speculativeKilled"`
	SpeculativeWallSeconds float64 `json:"speculativeWallSeconds"`
	// Schema v6 execution-backend health counters (volatile; zero under
	// the local backend).
	HeartbeatMisses int64  `json:"heartbeatMisses"`
	WorkerRestarts  int64  `json:"workerRestarts"`
	RPCRetries      int64  `json:"rpcRetries"`
	Failed          bool   `json:"failed,omitempty"`
	FailReason      string `json:"failReason,omitempty"`
}

// MarshalJSON renders the job's metrics as the stable, versioned document
// described by MetricsSchemaVersion: job-level totals, per-round and
// per-task counters, retry accounting, reducer load-balance summaries, and
// simulated vs. wall time.
func (j *JobMetrics) MarshalJSON() ([]byte, error) {
	doc := jobMetricsJSON{
		SchemaVersion:    MetricsSchemaVersion,
		Rounds:           make([]roundMetricsJSON, len(j.Rounds)),
		SimSeconds:       j.SimSeconds(),
		WallSeconds:      j.WallSeconds(),
		ShuffleRecords:   j.ShuffleRecords(),
		ShuffleBytes:     j.ShuffleBytes(),
		MapTimeAvg:       j.MapTimeAvg(),
		ReduceTimeAvg:    j.ReduceTimeAvg(),
		Retries:          j.Retries(),
		RetryWallSeconds: j.RetryWallSeconds(),
		WastedBytes:      j.WastedBytes(),
		Spills:           j.Spills(),
		SpillBytes:       j.SpillBytes(),

		CompressedSpillBytes: j.CompressedSpillBytes(),
		MergePasses:          j.MergePasses(),
		SpillWriteStallNs:    j.SpillWriteStallNs(),
		PrefetchHits:         j.PrefetchHits(),
		PrefetchMisses:       j.PrefetchMisses(),

		MapReexecutions:        j.MapReexecutions(),
		FetchFailures:          j.FetchFailures(),
		SpeculativeLaunched:    j.SpeculativeLaunched(),
		SpeculativeWon:         j.SpeculativeWon(),
		SpeculativeKilled:      j.SpeculativeKilled(),
		SpeculativeWallSeconds: j.SpeculativeWallSeconds(),

		HeartbeatMisses: j.HeartbeatMisses(),
		WorkerRestarts:  j.WorkerRestarts(),
		RPCRetries:      j.RPCRetries(),
	}
	doc.Failed, doc.FailReason = j.Failed()
	for i := range j.Rounds {
		doc.Rounds[i] = roundJSON(&j.Rounds[i])
	}
	return json.Marshal(doc)
}

// ExportMetrics writes the job's metrics document as indented JSON.
func ExportMetrics(w io.Writer, j *JobMetrics) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("mr: export metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
