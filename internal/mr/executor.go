package mr

// Executor is the execution backend task attempts are dispatched through.
// The engine owns every scheduling decision — placement, retries,
// speculation, timeouts, and which attempt's output wins — because those
// decisions must be deterministic for the byte-identity contract to hold.
// The executor's job is the opposite half: realize (and verify) each
// decision against real execution resources. The default localExecutor has
// no resources beyond the engine's own goroutine pool, so every hook is a
// no-op that reproduces the simulated semantics exactly; the proc backend
// (internal/mr/exec) backs each failure domain with a real worker process,
// so an attempt opened on a SIGKILLed node genuinely fails.
//
// Determinism argument: an executor can refuse work (BeginAttempt /
// EndAttempt / StoreMapOutput / FetchMapOutput errors) but never produce
// it — map and reduce functions always run in-process. A refusal is
// converted by the engine into the same killError a simulated node crash
// raises, feeding the existing retry/re-placement machinery, and the
// re-entrancy contract makes retried attempts byte-identical. Scheduling
// therefore stays isolated from results: any mix of real crashes changes
// only recovery accounting and the volatile ExecStats counters, never an
// output byte.
type Executor interface {
	// RoundStart prepares the backend for one engine round over `nodes`
	// failure domains. planDead is the round's simulated node-crash plan
	// (nil when no node-crash fault targets the round): the backend must
	// realize those deaths when CrashNodes is called at the shuffle
	// barrier. It returns the round handle plus the backend's own down
	// set — nodes whose workers could not be (re)started within the
	// restart budget and must be drained onto live nodes (nil when all are
	// usable). An error means no node is usable at all; the engine fails
	// the round plainly rather than hanging.
	RoundStart(round, nodes int, planDead []bool, hooks RoundHooks) (RoundExecutor, []bool, error)
	// Close releases the backend (terminates worker processes, removes
	// sockets). Idempotent.
	Close() error
}

// RoundExecutor is one round's view of an Executor. The engine calls
// BeginAttempt/EndAttempt/StoreMapOutput from concurrent task goroutines
// (implementations must be safe for that), and CrashNodes/FetchMapOutput/
// RoundEnd from the run goroutine at the shuffle barrier and round end.
type RoundExecutor interface {
	// BeginAttempt opens a task attempt on its placed node. An error means
	// the node cannot run work (its worker is dead or unreachable); the
	// engine kills the attempt and re-places the retry, exactly as for a
	// simulated dead node.
	BeginAttempt(phase Phase, task, attempt, node int) error
	// EndAttempt closes a completed attempt on its node. An error (the
	// worker died while the attempt ran) discards the attempt's output and
	// retries, modeling a task tracker lost mid-task.
	EndAttempt(phase Phase, task, attempt, node int) error
	// StoreMapOutput registers a completed map attempt's output as stored
	// on its node, with its shuffle accounting. An error is treated like an
	// EndAttempt failure.
	StoreMapOutput(task, attempt, node int, records, bytes int64) error
	// CrashNodes realizes the round's planDead set at the shuffle barrier.
	// The proc backend SIGKILLs the doomed worker processes and waits for
	// them to die before returning, so the fetch probes that follow fail
	// deterministically; the local backend does nothing (deadness is
	// already encoded in planDead).
	CrashNodes()
	// FetchMapOutput probes whether map task's stored output (attempt, on
	// node) is still fetchable after CrashNodes. An error marks the output
	// lost; the engine re-executes the map task on live nodes.
	FetchMapOutput(task, attempt, node int) error
	// RoundEnd closes the round and returns the backend's health counters.
	// Called exactly once, after the last attempt of the round.
	RoundEnd() ExecStats
}

// ExecStats are one round's execution-backend health counters. All three
// are volatile under the proc backend (real crash recovery does not replay
// identically) and always zero under the local backend; determinism
// comparisons strip them like the wall-clock fields.
type ExecStats struct {
	// HeartbeatMisses counts worker heartbeat probes that timed out or
	// errored during the round.
	HeartbeatMisses int64
	// WorkerRestarts counts worker processes (re)spawned for the round —
	// replacements for crashed or SIGKILLed workers, not the initial fleet.
	WorkerRestarts int64
	// RPCRetries counts worker RPCs that were retried after a timeout or a
	// transport error (with reconnect).
	RPCRetries int64
}

// RoundHooks carries the engine facilities a backend may call back into
// during a round.
type RoundHooks struct {
	// Trace delivers a round-level backend trace event (EvWorkerSpawn,
	// EvWorkerDead). It must only be called from RoundStart or CrashNodes —
	// both run on the engine's run goroutine — so event sequence numbers
	// stay deterministic; per-RPC incidents are counted in ExecStats
	// instead. Never nil, but a no-op when tracing is disabled.
	Trace func(ev TraceEvent)
}

// localExecutor is the default in-process backend: the engine's goroutine
// pool is the only execution resource, so attempts are never refused and
// the only "crashes" are the simulated ones already encoded in planDead —
// FetchMapOutput reproduces the historical stored-output-on-dead-node
// probe bit for bit.
type localExecutor struct{}

// theLocalExecutor is shared: the type is stateless.
var theLocalExecutor = localExecutor{}

func (localExecutor) RoundStart(round, nodes int, planDead []bool, hooks RoundHooks) (RoundExecutor, []bool, error) {
	return localRound{dead: planDead}, nil, nil
}

func (localExecutor) Close() error { return nil }

// localRound implements RoundExecutor over the simulated node state.
type localRound struct {
	dead []bool // the round's planDead set
}

func (localRound) BeginAttempt(phase Phase, task, attempt, node int) error { return nil }
func (localRound) EndAttempt(phase Phase, task, attempt, node int) error   { return nil }
func (localRound) StoreMapOutput(task, attempt, node int, records, bytes int64) error {
	return nil
}
func (localRound) CrashNodes() {}

func (r localRound) FetchMapOutput(task, attempt, node int) error {
	if r.dead != nil && r.dead[node] {
		return &killError{reason: "stored map output lost with its node", phase: PhaseMap, task: task, attempt: attempt}
	}
	return nil
}

func (localRound) RoundEnd() ExecStats { return ExecStats{} }

// executor resolves Config.Executor (nil defaults to the in-process local
// backend).
func (e *Engine) executor() Executor {
	if e.Cfg.Executor != nil {
		return e.Cfg.Executor
	}
	return theLocalExecutor
}
