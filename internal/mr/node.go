package mr

import (
	"errors"
	"fmt"
)

// PlaceNode returns the failure domain (simulated machine) in [0, nodes)
// that attempt `attempt` of task `task` in `phase` of engine round `round`
// is placed on — and, for map attempts, where the attempt's output is
// stored until the shuffle. Placement is a pure FNV-1a hash of the
// coordinates salted by the engine seed, so it is identical at any
// Config.Parallelism and across re-runs: a node-crash fault deterministically
// loses the same map outputs and kills the same reduce attempts every time.
// Including the attempt index means a re-scheduled attempt moves to a
// different node, like a real scheduler avoiding a bad machine.
func PlaceNode(seed uint64, round int, phase Phase, task, attempt, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(v>>(8*uint(i))))) * fnvPrime64
		}
	}
	mix(seed)
	mix(uint64(round))
	mix(uint64(phase))
	mix(uint64(task))
	mix(uint64(attempt))
	return int(h % uint64(nodes))
}

// nodeCount resolves Config.Nodes (0 defaults to Workers: one failure
// domain per simulated machine).
func (e *Engine) nodeCount() int {
	if e.Cfg.Nodes > 0 {
		return e.Cfg.Nodes
	}
	return e.Cfg.Workers
}

// deadNodes returns the per-node dead flags from the round's node-crash
// faults, or nil when none targets the round. The crash is modeled at the
// round's shuffle barrier: map attempts complete first (their stored output
// is then lost), reduce attempts placed on a dead node are killed.
func (e *Engine) deadNodes(round, nodes int) []bool {
	if e.Cfg.Faults == nil {
		return nil
	}
	var dead []bool
	for i := range e.Cfg.Faults.Faults {
		f := &e.Cfg.Faults.Faults[i]
		if f.Kind != FaultNodeCrash {
			continue
		}
		if f.Round != AnyIndex && f.Round != round {
			continue
		}
		if dead == nil {
			dead = make([]bool, nodes)
		}
		if f.Task == AnyIndex {
			for n := range dead {
				dead[n] = true
			}
		} else if f.Task < nodes {
			dead[f.Task] = true
		}
	}
	return dead
}

// placeLive re-places a hashed node slot onto a live node by probing
// forward from it (deterministic, parallelism-invariant), or -1 when every
// node is dead and the attempt cannot be scheduled at all.
func placeLive(node int, dead []bool, nodes int) int {
	if dead == nil || !dead[node] {
		return node
	}
	for i := 1; i < nodes; i++ {
		if c := (node + i) % nodes; !dead[c] {
			return c
		}
	}
	return -1
}

// placeAttempt resolves the node an attempt runs on against a down set —
// the round's simulated dead nodes, the execution backend's permanently
// failed workers, or their union — and returns the kill for an attempt
// that cannot be placed. Attempt 0 keeps its raw placement — it was
// already running when the node died mid-round, so it dies with it; later
// attempts are re-placed on live nodes (placeLive) and only die when none
// is left. A nil down set places on the raw hash, unconditionally.
func (e *Engine) placeAttempt(round int, phase Phase, task, attempt int, down []bool, nodes int) (int, error) {
	node := PlaceNode(e.Cfg.Seed, round, phase, task, attempt, nodes)
	if down == nil {
		return node, nil
	}
	if attempt > 0 {
		node = placeLive(node, down, nodes)
		if node < 0 {
			return -1, &killError{reason: "no live node", phase: phase, task: task, attempt: attempt}
		}
	}
	if down[node] {
		return node, &killError{reason: fmt.Sprintf("node %d crashed", node), phase: phase, task: task, attempt: attempt}
	}
	return node, nil
}

// nodeKill returns the kill for an attempt placed on a dead node, or nil.
func (e *Engine) nodeKill(round int, phase Phase, task, attempt int, dead []bool, nodes int) error {
	_, err := e.placeAttempt(round, phase, task, attempt, dead, nodes)
	return err
}

// unionDead merges two down sets (either may be nil, and nil means "none
// down"). When only one is non-nil it is returned as-is — the common case,
// since the local backend never reports down nodes.
func unionDead(a, b []bool) []bool {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] || b[i]
	}
	return out
}

// timeoutKill returns the kill for a completed attempt whose simulated
// stall exceeded Config.TaskTimeout (the progress-timeout analog), or nil.
func (e *Engine) timeoutKill(phase Phase, task, attempt int, stall float64) error {
	if e.Cfg.TaskTimeout <= 0 || stall <= e.Cfg.TaskTimeout {
		return nil
	}
	return &killError{
		reason: fmt.Sprintf("stalled %.3gs beyond the %.3gs task timeout", stall, e.Cfg.TaskTimeout),
		phase:  phase, task: task, attempt: attempt,
	}
}

// backupWins applies the deterministic speculation winner rule: the backup
// replaces the original only when its simulated finish time is strictly
// lower; ties keep the original (the lower attempt index).
func backupWins(backupFinish, originalFinish float64) bool {
	return backupFinish < originalFinish
}

// isKillError reports whether err is an engine-initiated kill (retryable,
// but not an injected fault).
func isKillError(err error) bool {
	var ke *killError
	return errors.As(err, &ke)
}

// specOutcome is one speculative race's recovery accounting: the loser's
// discarded output, its wall time, and the counter deltas.
type specOutcome struct {
	launched, won, killed int64
	wasted                int64
	wall                  float64
}
