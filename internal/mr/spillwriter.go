package mr

import (
	"sync"
	"time"
)

// spillBuf is one side of a spill writer's double buffer: a fully encoded
// flush image plus its segment metadata, handed from the encoding
// foreground to the writing background and recycled back.
type spillBuf struct {
	framed []byte
	segs   []spillSeg
}

// spillWriter overlaps spill encoding with spill I/O. The map attempt's
// foreground encodes each flush into one of two rotating buffers and hands
// it off; a single background goroutine drains the hand-off channel and
// appends to the attempt's run file in submission order. With two buffers
// the foreground only stalls when it produces flushes faster than the disk
// absorbs them — and that stall is measured (acquire returns it) and
// surfaced as the spillWriteStallNs metric.
//
// Lifecycle contract: the attempt that created the writer must call join
// exactly once before its spill file is read, discarded, or its attempt
// reported done — success, failure, kill, or lost speculation alike. join
// closes the hand-off channel, waits for the goroutine to drain, and
// returns the first write error. No other goroutine may touch the writer.
//
// In synchronous mode (Config.SpillSync) no goroutine is started: submit
// appends inline, join only reports. Same protocol, zero overlap — the
// baseline the pipeline is benchmarked against.
type spillWriter struct {
	sf   *spillFile
	sync bool

	free chan *spillBuf // recycled buffers, cap 2
	work chan *spillBuf // encoded flushes awaiting write, cap 2
	done chan struct{}  // closed when the background goroutine exits

	mu     sync.Mutex
	err    error
	joined bool
}

func newSpillWriter(sf *spillFile, syncMode bool) *spillWriter {
	w := &spillWriter{
		sf:   sf,
		sync: syncMode,
		free: make(chan *spillBuf, 2),
		work: make(chan *spillBuf, 2),
		done: make(chan struct{}),
	}
	w.free <- &spillBuf{}
	w.free <- &spillBuf{}
	if syncMode {
		close(w.done)
		return w
	}
	go w.loop()
	return w
}

// acquire returns a buffer to encode the next flush into, and how long the
// foreground blocked waiting for the background writer to free one.
func (w *spillWriter) acquire() (*spillBuf, time.Duration) {
	select {
	case b := <-w.free:
		return b, 0
	default:
	}
	start := time.Now()
	b := <-w.free
	return b, time.Since(start)
}

// submit hands an encoded flush to the writer. In synchronous mode the
// append happens inline. Never blocks in async mode: work's capacity
// matches the buffer count, so a slot is always available for a buffer
// obtained from acquire.
func (w *spillWriter) submit(b *spillBuf) {
	if w.sync {
		if err := w.sf.append(b.framed, b.segs); err != nil {
			w.setErr(err)
		}
		b.segs = nil
		w.free <- b
		return
	}
	w.work <- b
}

// loop is the background writer: drain flushes in order, append each,
// recycle the buffer. After the first error it keeps draining (so acquire
// never deadlocks) but stops writing.
func (w *spillWriter) loop() {
	defer close(w.done)
	for b := range w.work {
		if w.getErr() == nil {
			if err := w.sf.append(b.framed, b.segs); err != nil {
				w.setErr(err)
			}
		}
		b.segs = nil
		w.free <- b
	}
}

// join flushes and stops the writer, returning its first error and how
// long the join itself blocked (pending flushes still being written).
// Idempotent; must be called before the run file is read or discarded.
func (w *spillWriter) join() (error, time.Duration) {
	w.mu.Lock()
	if w.joined {
		err := w.err
		w.mu.Unlock()
		return err, 0
	}
	w.joined = true
	w.mu.Unlock()
	start := time.Now()
	if !w.sync {
		close(w.work)
	}
	<-w.done
	return w.getErr(), time.Since(start)
}

func (w *spillWriter) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *spillWriter) getErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
