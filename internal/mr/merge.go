package mr

import (
	"bytes"
	"strings"
	"unsafe"
)

// This file is the sort-merge half of the engine's data plane: a stable
// bottom-up merge sort for the map side's per-reducer buckets and a
// loser-tree k-way merge for the reduce side. Together they reproduce
// Hadoop's actual shuffle structure (the cluster model of §2.3 assumes it):
// every map task sorts each of its per-reducer buckets once, the shuffle
// hands a reducer its k task-ordered sorted runs without flattening them,
// and the reducer consumes the runs through a single streaming merge — it
// never re-sorts its whole input.
//
// Both pieces are exactly order-equivalent to the historical
// implementation (sort.SliceStable over the concatenated bucket): the
// map-side sort is stable in emission order, and the merge breaks key ties
// by run index, i.e. by map-task index — the same tiebreak a stable sort
// of the task-ordered concatenation produces. Reducer input order, and
// with it output, metrics and traces, is bit-for-bit unchanged.

// sortRun is the insertion-sort block size of sortPairsStable; blocks of
// this size are sorted in place before the merge passes start.
const sortRun = 16

// sortPairsStable stably sorts pairs by key — equivalent to
// sort.SliceStable with a key comparison, but monomorphic (no reflection
// swapper) and reusing scratch across calls. It returns the scratch slice,
// grown if needed, for the caller to keep.
func sortPairsStable(pairs, scratch []Pair) []Pair {
	n := len(pairs)
	if n < 2 {
		return scratch
	}
	// Insertion-sort blocks of sortRun (stable: shift only strictly
	// greater keys).
	for lo := 0; lo < n; lo += sortRun {
		hi := lo + sortRun
		if hi > n {
			hi = n
		}
		for i := lo + 1; i < hi; i++ {
			p := pairs[i]
			j := i
			for j > lo && pairs[j-1].Key > p.Key {
				pairs[j] = pairs[j-1]
				j--
			}
			pairs[j] = p
		}
	}
	if n <= sortRun {
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]Pair, n)
	}
	buf := scratch[:n]
	src, dst := pairs, buf
	for width := sortRun; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid >= n {
				// Lone tail run: carry it over unmerged.
				copy(dst[lo:n], src[lo:n])
				break
			}
			if hi > n {
				hi = n
			}
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
	return scratch
}

// mergeInto merges two sorted runs into dst (len(dst) == len(a)+len(b)),
// taking from a on equal keys (stability).
func mergeInto(dst, a, b []Pair) {
	i, j := 0, 0
	for k := range dst {
		if i < len(a) && (j >= len(b) || a[i].Key <= b[j].Key) {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
	}
}

// LoserTree is a k-way tournament over run indices 0..k-1 with a
// caller-supplied ordering. It is the generic core of the reduce-side
// shuffle merge, exported so other sorted-run consumers (the serving
// layer's in-place cube patching, external merges) reuse the exact same
// structure.
//
// The tree is the classic 2k-slot tournament layout: leaf j sits at node
// k+j, internal node i holds the loser of the match between its subtrees,
// and the overall winner is kept at slot 0. The caller's beats(a, b) must
// report whether run a's current head precedes run b's; the convention for
// drained runs is to make them lose to live ones (acting as +∞ sentinels),
// so no special casing is needed as runs drain. After consuming the
// winner's head element the caller advances that run's cursor and calls
// Replay, which replays one leaf-to-root path — log k comparisons.
type LoserTree struct {
	beats func(a, b int) bool
	loser []int // loser[0] = overall winner; loser[1..k-1] = match losers
	win   []int // build() scratch, kept so Reset() does not allocate
	k     int
}

// NewLoserTree builds a tree over k runs and plays the initial tournament.
// beats reports whether run a's current head precedes run b's.
func NewLoserTree(k int, beats func(a, b int) bool) *LoserTree {
	t := &LoserTree{
		beats: beats,
		loser: make([]int, max(k, 1)),
		win:   make([]int, 2*k),
		k:     k,
	}
	t.build()
	return t
}

// Reset replays the initial tournament, for reuse after the caller rewound
// its run cursors.
func (t *LoserTree) Reset() { t.build() }

// Len returns the number of runs the tree was built over.
func (t *LoserTree) Len() int { return t.k }

// Winner returns the index of the run whose head currently wins the
// tournament, or -1 for an empty tree. Whether that run still has elements
// is the caller's to check — a drained winner means every run is drained.
func (t *LoserTree) Winner() int {
	if t.k == 0 {
		return -1
	}
	return t.loser[0]
}

// Replay re-seats the winner after the caller advanced its run's cursor,
// replaying the winner's leaf-to-root path against the stored losers.
func (t *LoserTree) Replay() {
	if t.k == 0 {
		return
	}
	w := t.loser[0]
	for i := (t.k + w) / 2; i >= 1; i /= 2 {
		if t.beats(t.loser[i], w) {
			t.loser[i], w = w, t.loser[i]
		}
	}
	t.loser[0] = w
}

// build plays the initial tournament bottom-up.
func (t *LoserTree) build() {
	if t.k == 0 {
		return
	}
	if t.k == 1 {
		t.loser[0] = 0
		return
	}
	// win[i] is the winner of the subtree rooted at node i; leaves k..2k-1
	// hold the runs themselves.
	win := t.win
	for j := 0; j < t.k; j++ {
		win[t.k+j] = j
	}
	for i := t.k - 1; i >= 1; i-- {
		a, b := win[2*i], win[2*i+1]
		if t.beats(a, b) {
			win[i], t.loser[i] = a, b
		} else {
			win[i], t.loser[i] = b, a
		}
	}
	t.loser[0] = win[1]
}

// runMerger streams the pairs of k sorted runs in globally sorted order
// through a LoserTree: each next() replays one leaf-to-root path — log k
// key comparisons — instead of re-scanning all run heads. Key ties go to
// the lower run index, which, with runs ordered by map task, reproduces
// the stable task-ordered concatenation sort exactly.
type runMerger struct {
	runs [][]Pair
	pos  []int // per-run cursor
	tree *LoserTree
}

// newRunMerger builds a merger over the given runs (empty runs are
// allowed). The runs are read, never modified.
func newRunMerger(runs [][]Pair) *runMerger {
	m := &runMerger{
		runs: runs,
		pos:  make([]int, len(runs)),
	}
	m.tree = NewLoserTree(len(runs), m.beats)
	return m
}

// reset rewinds every run to its start, making the merger reusable across
// task attempts.
func (m *runMerger) reset() {
	for i := range m.pos {
		m.pos[i] = 0
	}
	m.tree.Reset()
}

// beats reports whether run a's head precedes run b's head: exhausted runs
// lose to live ones, equal keys go to the lower run index.
func (m *runMerger) beats(a, b int) bool {
	pa, pb := m.pos[a], m.pos[b]
	ea, eb := pa >= len(m.runs[a]), pb >= len(m.runs[b])
	switch {
	case ea && eb:
		return a < b
	case ea:
		return false
	case eb:
		return true
	}
	if c := strings.Compare(m.runs[a][pa].Key, m.runs[b][pb].Key); c != 0 {
		return c < 0
	}
	return a < b
}

// next returns a pointer to the globally next pair, or nil when every run
// is exhausted. The pointed-to Pair lives in its run's backing array and
// must not be modified.
func (m *runMerger) next() *Pair {
	w := m.tree.Winner()
	if w < 0 || m.pos[w] >= len(m.runs[w]) {
		return nil // winner exhausted: all runs drained
	}
	p := &m.runs[w][m.pos[w]]
	m.pos[w]++
	m.tree.Replay()
	return p
}

// streamMerger is the out-of-core counterpart of runMerger: it k-way merges
// a mix of in-memory runs and on-disk spill segments, holding only one head
// record per source — reduce memory is O(sources), not O(input). Source
// order and the lower-index tiebreak carry the same contract as runMerger
// (sources ordered by map task, a task's spill segments before its final
// in-memory bucket), so reducer input order is byte-identical to the
// all-in-memory merge.
type streamMerger struct {
	srcs []mergeSource
	tree *LoserTree
	cur  int // source whose head the last next handed out; -1 if none
	err  error
}

// mergeSource is one sorted run: either an in-memory pair slice or a
// front-coded spill segment. key/val hold the current head; for file
// sources they alias the reader's reused decode buffers.
type mergeSource struct {
	pairs []Pair
	pos   int
	rd    *segReader
	key   []byte
	val   []byte
	live  bool
}

// streamSource wraps a run for newStreamMerger: exactly one of pairs / seg
// is used (pairs when seg.records == 0 and pairs != nil).
type streamSource struct {
	pairs []Pair
	seg   *spillSeg
}

// mergeOpts configures a streamMerger's read-ahead: file-backed sources
// are granted prefetchers out of prefetchBudget bytes, in source order
// (deterministic — which sources read ahead never depends on timing), and
// their hit/miss counters accumulate into hits/misses when non-nil.
type mergeOpts struct {
	prefetchBudget int64
	hits, misses   *int64
}

func newStreamMerger(runs []streamSource, opt mergeOpts) *streamMerger {
	m := &streamMerger{srcs: make([]mergeSource, len(runs)), cur: -1}
	budget := opt.prefetchBudget
	for i, r := range runs {
		if r.seg != nil {
			var grant int64
			if budget >= prefetchSegBudget && r.seg.length >= 2*prefetchChunkSize {
				grant = prefetchSegBudget
				budget -= grant
			}
			m.srcs[i].rd = newSegReader(*r.seg, grant, opt.hits, opt.misses)
		} else {
			m.srcs[i].pairs = r.pairs
		}
		m.advance(i)
	}
	m.tree = NewLoserTree(len(m.srcs), m.beats)
	return m
}

// close releases every file source's read-ahead goroutine. Must run before
// the run files are closed; the merger is unusable afterwards.
func (m *streamMerger) close() {
	for i := range m.srcs {
		if m.srcs[i].rd != nil {
			m.srcs[i].rd.close()
		}
	}
}

// reset rewinds every source to its start (re-reading spill segments from
// disk), making the merger reusable across task attempts.
func (m *streamMerger) reset() {
	m.err = nil
	m.cur = -1
	for i := range m.srcs {
		s := &m.srcs[i]
		if s.rd != nil {
			s.rd.reset()
		} else {
			s.pos = 0
		}
		m.advance(i)
	}
	m.tree.Reset()
}

// advance loads source i's next head record.
func (m *streamMerger) advance(i int) {
	s := &m.srcs[i]
	if s.rd != nil {
		key, val, ok, err := s.rd.next()
		if err != nil && m.err == nil {
			m.err = err
		}
		s.key, s.val, s.live = key, val, ok && err == nil
		return
	}
	if s.pos >= len(s.pairs) {
		s.key, s.val, s.live = nil, nil, false
		return
	}
	p := &s.pairs[s.pos]
	s.key, s.val, s.live = stringBytes(p.Key), p.Val, true
	s.pos++
}

// beats mirrors runMerger.beats: drained sources lose to live ones, equal
// keys go to the lower source index.
func (m *streamMerger) beats(a, b int) bool {
	sa, sb := &m.srcs[a], &m.srcs[b]
	switch {
	case !sa.live && !sb.live:
		return a < b
	case !sa.live:
		return false
	case !sb.live:
		return true
	}
	if c := bytes.Compare(sa.key, sb.key); c != 0 {
		return c < 0
	}
	return a < b
}

// next returns the globally next record, or ok == false when every source
// is drained (or a read failed — check err). The returned slices are valid
// only until the following next call: file-backed sources reuse their
// decode buffers, so consumers that keep a key or value must copy it.
func (m *streamMerger) next() (key, val []byte, ok bool) {
	if m.cur >= 0 {
		m.advance(m.cur)
		m.tree.Replay()
	}
	w := m.tree.Winner()
	if w < 0 || !m.srcs[w].live {
		m.cur = -1
		return nil, nil, false
	}
	m.cur = w
	return m.srcs[w].key, m.srcs[w].val, true
}

// stringBytes views s's bytes without copying; the result must not be
// modified.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}
