package mr

import (
	"io"
	"os"
	"sync"
)

// spillDir owns one engine run's spill directory. The directory is created
// lazily on the first spill (a run whose buckets all fit in memory never
// touches the filesystem) and removed wholesale — open handles included —
// by cleanup, which the engine defers for the whole run so that no code
// path, fault-recovery ones included, can leak run files.
type spillDir struct {
	base string // Config.SpillDir, or os.TempDir() when empty

	mu    sync.Mutex
	dir   string
	files []*spillFile
}

func newSpillDir(base string) *spillDir {
	if base == "" {
		base = os.TempDir()
	}
	return &spillDir{base: base}
}

// create opens a fresh run file inside the (lazily created) spill
// directory. Safe to call from concurrent task attempts.
func (d *spillDir) create(pattern string) (*spillFile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dir == "" {
		dir, err := os.MkdirTemp(d.base, "spcube-spill-*")
		if err != nil {
			return nil, err
		}
		d.dir = dir
	}
	f, err := os.CreateTemp(d.dir, pattern)
	if err != nil {
		return nil, err
	}
	sf := &spillFile{f: f, path: f.Name()}
	d.files = append(d.files, sf)
	return sf, nil
}

// cleanup closes every run file and removes the spill directory. Called
// once, after all task attempts have finished.
func (d *spillDir) cleanup() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sf := range d.files {
		sf.close()
	}
	if d.dir != "" {
		os.RemoveAll(d.dir)
		d.dir = ""
	}
	d.files = nil
}

// spillFile is one attempt's on-disk run file. A map attempt appends one
// spill block per flush — the sorted per-reducer buckets of everything
// emitted since the previous flush, each bucket front-coded into its own
// segment. spills[i][r] is flush i's segment for reducer r.
type spillFile struct {
	f      *os.File
	path   string
	off    int64
	spills [][]spillSeg
	closed bool
}

// spillSeg locates one sorted run inside a spill file and carries the
// metadata the reduce pre-scan needs, so sizing a reducer's input never
// re-reads the file: records and raw (the Σ pairBytes the in-memory path
// would have accounted) mirror the heap-resident bookkeeping exactly,
// while length measures the encoded bytes actually on disk.
type spillSeg struct {
	f       *os.File
	off     int64
	length  int64
	records int64
	raw     int64
}

// writeSpill encodes the sorted buckets (one per reducer) as consecutive
// segments and appends them to the file with a single write. enc is a
// reusable scratch buffer. Returns the encoded byte count.
func (w *spillFile) writeSpill(buckets [][]Pair, enc *[]byte) (int64, error) {
	buf := (*enc)[:0]
	segs := make([]spillSeg, len(buckets))
	for r, bucket := range buckets {
		start := int64(len(buf))
		prev := ""
		var raw int64
		for i := range bucket {
			buf = appendSpillRecord(buf, prev, bucket[i].Key, bucket[i].Val)
			raw += pairBytes(bucket[i].Key, bucket[i].Val)
			prev = bucket[i].Key
		}
		segs[r] = spillSeg{
			f:       w.f,
			off:     w.off + start,
			length:  int64(len(buf)) - start,
			records: int64(len(bucket)),
			raw:     raw,
		}
	}
	*enc = buf
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	w.off += int64(len(buf))
	w.spills = append(w.spills, segs)
	return int64(len(buf)), nil
}

// writeRaw appends already-encoded bytes (reduce-side external-aggregation
// runs, which are written for their I/O cost but never merged back).
func (w *spillFile) writeRaw(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.off += int64(len(buf))
	return nil
}

func (w *spillFile) close() {
	if w == nil || w.closed {
		return
	}
	w.f.Close()
	w.closed = true
}

// discard closes and deletes the run file: the attempt that produced it
// failed, was killed, lost a speculative race, or sat on a crashed node.
func (w *spillFile) discard() {
	if w == nil || w.closed {
		return
	}
	w.f.Close()
	os.Remove(w.path)
	w.closed = true
}

// segReader streams one segment's records. reset reopens the segment from
// the start, so a retried reduce attempt re-reads its input exactly like a
// real reducer re-fetching a map output; concurrent readers of different
// segments share the *os.File safely via ReadAt.
type segReader struct {
	seg spillSeg
	rr  *recordReader
}

func newSegReader(seg spillSeg) *segReader {
	r := &segReader{seg: seg}
	r.reset()
	return r
}

func (r *segReader) reset() {
	sz := 32 * 1024
	if r.seg.length < int64(sz) {
		sz = int(r.seg.length)
	}
	if sz < 16 {
		sz = 16
	}
	sec := io.NewSectionReader(r.seg.f, r.seg.off, r.seg.length)
	r.rr = newRecordReader(sec, r.seg.records, sz)
}

func (r *segReader) next() (key, val []byte, ok bool, err error) {
	return r.rr.next()
}
