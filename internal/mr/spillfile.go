package mr

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/spcube/spcube/internal/mr/blockcodec"
)

// spillIOError marks a spill-plane I/O failure — a full disk, a write
// error, a short write — as distinct from both injected faults and
// deterministic job errors. The engine treats it as retryable: the failed
// attempt dies cleanly (its run file is discarded, nothing truncated
// survives) and the retry is re-placed, where a different node's disk may
// be healthy. Persistent failures exhaust MaxAttempts and fail the round
// plainly.
type spillIOError struct {
	err error
}

func (e *spillIOError) Error() string { return "spill write: " + e.err.Error() }
func (e *spillIOError) Unwrap() error { return e.err }

// isSpillIOError reports whether err is a spill-plane I/O failure.
func isSpillIOError(err error) bool {
	var se *spillIOError
	return errors.As(err, &se)
}

// spillDir owns one engine run's spill directory. The directory is created
// lazily on the first spill (a run whose buckets all fit in memory never
// touches the filesystem) and removed wholesale — open handles included —
// by cleanup, which the engine defers for the whole run so that no code
// path, fault-recovery ones included, can leak run files. The base
// directory is Config.SpillDir, or the operating system's temp dir (which
// honors $TMPDIR) when unset.
type spillDir struct {
	base string // Config.SpillDir, or os.TempDir() when empty
	wrap func(io.Writer) io.Writer

	mu    sync.Mutex
	dir   string
	files []*spillFile
}

// newSpillDir builds the run's spill directory handle. wrap, when non-nil,
// decorates every run file's writer (Config.SpillWriteWrapper) — the
// disk-full/short-write injection point for tests.
func newSpillDir(base string, wrap func(io.Writer) io.Writer) *spillDir {
	if base == "" {
		base = os.TempDir()
	}
	return &spillDir{base: base, wrap: wrap}
}

// create opens a fresh run file inside the (lazily created) spill
// directory. Safe to call from concurrent task attempts. Creation failures
// (the directory or file itself — e.g. a full disk failing MkdirTemp) are
// spill I/O errors like write failures.
func (d *spillDir) create(pattern string) (*spillFile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dir == "" {
		dir, err := os.MkdirTemp(d.base, "spcube-spill-*")
		if err != nil {
			return nil, &spillIOError{err: err}
		}
		d.dir = dir
	}
	f, err := os.CreateTemp(d.dir, pattern)
	if err != nil {
		return nil, &spillIOError{err: err}
	}
	sf := &spillFile{f: f, w: io.Writer(f), path: f.Name()}
	if d.wrap != nil {
		sf.w = d.wrap(f)
	}
	d.files = append(d.files, sf)
	return sf, nil
}

// cleanup closes every run file and removes the spill directory. Called
// once, after all task attempts have finished (and, per the spill-writer
// contract, after every attempt has joined its background writer).
func (d *spillDir) cleanup() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sf := range d.files {
		sf.close()
	}
	if d.dir != "" {
		os.RemoveAll(d.dir)
		d.dir = ""
	}
	d.files = nil
}

// spillFile is one attempt's on-disk run file. A map attempt appends one
// spill block per flush — the sorted per-reducer buckets of everything
// emitted since the previous flush, each bucket front-coded and framed into
// checksummed blockcodec blocks as its own segment. spills[i][r] is flush
// i's segment for reducer r.
//
// Writes go through append, which is single-writer by contract: either the
// attempt's foreground (synchronous mode) or its one background spillWriter
// goroutine. Readers use ReadAt and never touch the write offset.
type spillFile struct {
	f      *os.File
	w      io.Writer // write target: f, or the injection wrapper around it
	path   string
	off    int64
	spills [][]spillSeg
	closed bool
}

// write appends buf through the (possibly wrapped) writer, converting
// errors and silent short writes into spill I/O errors. A short write
// must never pass silently: a truncated frame would surface later as a
// block-checksum failure in a reducer, far from the cause.
func (w *spillFile) write(buf []byte) error {
	n, err := w.w.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return &spillIOError{err: fmt.Errorf("%s at offset %d: %w", w.path, w.off+int64(n), err)}
	}
	w.off += int64(len(buf))
	return nil
}

// spillSeg locates one sorted run inside a spill file and carries the
// metadata the reduce pre-scan needs, so sizing a reducer's input never
// re-reads the file: records and raw (the Σ pairBytes the in-memory path
// would have accounted) mirror the heap-resident bookkeeping exactly;
// enc is the front-coded byte count before block compression (the
// SpillBytes accounting unit), and length the framed, compressed bytes
// actually on disk (the I/O-cost unit). codec decodes the blocks back.
type spillSeg struct {
	f       *os.File
	off     int64
	length  int64
	records int64
	raw     int64
	enc     int64
	codec   blockcodec.Codec
}

// encodeSpill front-codes the sorted buckets (one per reducer) and frames
// each bucket's encoding into checksummed blocks, producing one flush's
// complete file image. Segment offsets are flush-relative; append fixes
// them up against the file's write offset. framed is the flush image
// buffer (reused flush to flush); enc and block are front-coding and
// codec scratch. encBytes is the pre-compression front-coded total.
func encodeSpill(buckets [][]Pair, codec blockcodec.Codec, framed []byte, enc, block *[]byte) (out []byte, segs []spillSeg, encBytes int64) {
	out = framed[:0]
	segs = make([]spillSeg, len(buckets))
	for r, bucket := range buckets {
		start := int64(len(out))
		e := (*enc)[:0]
		prev := ""
		var raw int64
		for i := range bucket {
			e = appendSpillRecord(e, prev, bucket[i].Key, bucket[i].Val)
			raw += pairBytes(bucket[i].Key, bucket[i].Val)
			prev = bucket[i].Key
		}
		*enc = e
		out, *block = blockcodec.AppendAll(out, codec, e, *block)
		segs[r] = spillSeg{
			off:     start,
			length:  int64(len(out)) - start,
			records: int64(len(bucket)),
			raw:     raw,
			enc:     int64(len(e)),
			codec:   codec,
		}
		encBytes += int64(len(e))
	}
	return out, segs, encBytes
}

// append writes one encoded flush image and records its segments, fixing
// their flush-relative offsets up to file offsets. Single-writer only.
func (w *spillFile) append(framed []byte, segs []spillSeg) error {
	for i := range segs {
		segs[i].f = w.f
		segs[i].off += w.off
	}
	if err := w.write(framed); err != nil {
		return err
	}
	w.spills = append(w.spills, segs)
	return nil
}

// writeRaw appends already-framed bytes without recording segments
// (reduce-side external-aggregation runs, which are written for their I/O
// cost but never merged back).
func (w *spillFile) writeRaw(buf []byte) error {
	return w.write(buf)
}

func (w *spillFile) close() {
	if w == nil || w.closed {
		return
	}
	w.f.Close()
	w.closed = true
}

// discard closes and deletes the run file: the attempt that produced it
// failed, was killed, lost a speculative race, or sat on a crashed node.
// Only legal after the attempt's background writer (if any) has joined.
func (w *spillFile) discard() {
	if w == nil || w.closed {
		return
	}
	w.f.Close()
	os.Remove(w.path)
	w.closed = true
}

// segReader streams one segment's records: a section of the run file,
// optionally read ahead by a background prefetcher, decoded block by block
// (CRC-verified), then record by record. reset reopens the segment from
// the start, so a retried reduce attempt re-reads its input exactly like a
// real reducer re-fetching a map output; concurrent readers of different
// segments share the *os.File safely via ReadAt. A segReader with a
// prefetcher owns a goroutine — close releases it (idempotent; reset
// restarts it).
type segReader struct {
	seg      spillSeg
	prefetch *prefetchReader // nil when the segment is too small to bother
	blocks   *blockcodec.Reader
	rr       *recordReader
}

// newSegReader opens a segment. prefetchBudget is the read-ahead byte
// budget the caller grants this segment (0 disables read-ahead); hits and
// misses, when non-nil, receive the prefetcher's counters.
func newSegReader(seg spillSeg, prefetchBudget int64, hits, misses *int64) *segReader {
	r := &segReader{seg: seg}
	if prefetchBudget >= 2*prefetchChunkSize && seg.length >= 2*prefetchChunkSize {
		r.prefetch = newPrefetchReader(seg.f, seg.off, seg.length, hits, misses)
	}
	r.reset()
	return r
}

func (r *segReader) reset() {
	var src io.Reader
	if r.prefetch != nil {
		r.prefetch.reset()
		src = r.prefetch
	} else {
		src = io.NewSectionReader(r.seg.f, r.seg.off, r.seg.length)
	}
	if r.blocks == nil {
		r.blocks = blockcodec.NewReader(src, r.seg.codec)
	} else {
		r.blocks.Reset(src)
	}
	sz := 16 * 1024
	if r.seg.enc < int64(sz) {
		sz = int(r.seg.enc)
	}
	if sz < 16 {
		sz = 16
	}
	r.rr = newRecordReader(r.blocks, r.seg.records, sz)
}

func (r *segReader) next() (key, val []byte, ok bool, err error) {
	return r.rr.next()
}

// close stops the segment's prefetch goroutine, if any. The segReader may
// be reset and reused afterwards.
func (r *segReader) close() {
	if r.prefetch != nil {
		r.prefetch.stop()
	}
}
