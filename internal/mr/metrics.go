package mr

import (
	"fmt"
	"strings"
)

// TaskMetrics records the exact work performed by one map or reduce task.
type TaskMetrics struct {
	InRecords  int64
	InBytes    int64
	OutRecords int64
	OutBytes   int64
	// PreCombineRecords/Bytes is the map output before the combiner ran
	// (equal to OutRecords/Bytes when the job has no combiner).
	PreCombineRecords int64
	PreCombineBytes   int64
	// Ops counts algorithm-reported elementary operations.
	Ops int64
	// LargestKeyRecords/Bytes describe the biggest single reduce key seen
	// by the task — the footprint of its largest c-group.
	LargestKeyRecords int64
	LargestKeyBytes   int64
	// SideRecords/Bytes count side-output records (intermediate results
	// passed to a later round rather than written to the primary output).
	SideRecords int64
	SideBytes   int64
	// Spills counts spill events: map-side run-file flushes under
	// Config.SpillBudgetBytes, and reduce-side external aggregations of
	// groups that exceeded the task's memory. SpillBytes is the exact
	// encoded size of those runs as the spill writer produced them (real
	// measured I/O in out-of-core mode, not an estimate).
	Spills     int64
	SpillBytes int64
	// CompressedSpillBytes is the framed, block-compressed size of the
	// task's spill runs as physically written — the bytes the disk
	// actually absorbed, and the unit the cost model charges. Equal to
	// SpillBytes plus frame overhead under the raw codec; smaller under a
	// compressing codec. Deterministic (the codecs are deterministic).
	CompressedSpillBytes int64
	// MergePasses counts intermediate fan-in merges: a reduce task whose
	// live run count exceeded Config.MergeFanIn merged groups of runs
	// into new on-disk runs before its streaming merge. Deterministic.
	MergePasses int64
	// CPUSeconds is the simulated CPU time of the task under the cost
	// model; WallSeconds is the real time the in-process run took.
	CPUSeconds  float64
	WallSeconds float64
	// SpillWriteStallNs is the real time the attempt's foreground spent
	// blocked on its background spill writer — waiting for a free double
	// buffer in spillNow, plus the final join. Volatile, like WallSeconds.
	SpillWriteStallNs int64
	// PrefetchHits/Misses count merge read-ahead chunks that were already
	// buffered when the merge asked (hits) versus had to be waited for
	// (misses). Wall-clock races decide each one, so both are volatile.
	PrefetchHits   int64
	PrefetchMisses int64

	// Attempts is how many times the task was executed (1 with no faults
	// injected; 0 for tasks that never ran, e.g. reducers after an OOM).
	// RetryWallSeconds is the real time consumed by failed attempts, and
	// WastedBytes the output those attempts produced before being
	// discarded (map: pre-combine emit bytes; reduce: output and side
	// bytes rolled back from the DFS). All three are recovery accounting
	// only — the determinism contract excludes them along with
	// WallSeconds, and every other counter equals the fault-free run's.
	Attempts         int64
	RetryWallSeconds float64
	WastedBytes      int64

	// Reexecutions counts full re-runs of a completed map task whose stored
	// output was lost to a node crash (Hadoop's re-run-completed-maps
	// semantics); FetchFailures, on a reduce task, counts the lost map
	// outputs it could not fetch at the shuffle. SpeculativeLaunched, Won
	// and Killed count the task's backup attempts under
	// Config.SpeculativeSlack (Won: the backup's result was kept; Killed:
	// the race's loser was discarded — its output lands in WastedBytes).
	// SpeculativeWallSeconds is the real time consumed by the race's loser
	// and is volatile like WallSeconds; the counters are deterministic.
	Reexecutions           int64
	FetchFailures          int64
	SpeculativeLaunched    int64
	SpeculativeWon         int64
	SpeculativeKilled      int64
	SpeculativeWallSeconds float64
}

// RoundMetrics aggregates one MapReduce round.
type RoundMetrics struct {
	Job      string
	Mappers  []TaskMetrics
	Reducers []TaskMetrics

	// ShuffleRecords/Bytes is the post-combine map output transferred to
	// reducers: the paper's "intermediate data size" / "map output".
	ShuffleRecords int64
	ShuffleBytes   int64

	// OutputRecords/Bytes is the reducers' total output.
	OutputRecords int64
	OutputBytes   int64

	// Spills/SpillBytes aggregate the tasks' spill activity: map-side
	// run-file flushes plus reduce-side external aggregation.
	// CompressedSpillBytes is the block-compressed on-disk total and
	// MergePasses the intermediate fan-in merges (see TaskMetrics).
	Spills               int64
	SpillBytes           int64
	CompressedSpillBytes int64
	MergePasses          int64

	// SpillWriteStallNs and PrefetchHits/Misses aggregate the spill
	// pipeline's overlap accounting; all three are volatile (wall-clock
	// dependent), like WallSeconds.
	SpillWriteStallNs int64
	PrefetchHits      int64
	PrefetchMisses    int64

	// MappersExecuted/ReducersExecuted count the tasks that actually ran
	// (Attempts > 0). Reducers scheduled after a failed one — e.g. past
	// the first OOM under FailOnReducerOOM — never execute and are
	// excluded from the phase-time averages below.
	MappersExecuted  int
	ReducersExecuted int

	// Simulated phase times (seconds) under the cost model, averaged and
	// maximized over the executed tasks only.
	MapTimeAvg    float64
	MapTimeMax    float64
	ShuffleTime   float64
	ReduceTimeAvg float64
	ReduceTimeMax float64
	SimSeconds    float64 // startup + max map + shuffle + max reduce

	// WallSeconds is the real in-process duration of the round.
	WallSeconds float64

	// Retries is the number of task attempts beyond each task's first
	// (failed attempts that fault injection forced to re-execute);
	// RetryWallSeconds and WastedBytes aggregate the tasks' recovery
	// accounting. All zero in fault-free runs.
	Retries          int64
	RetryWallSeconds float64
	WastedBytes      int64

	// MapReexecutions counts completed map tasks re-run after a node crash
	// lost their output; FetchFailures the reducer-observed lost map
	// outputs; the Speculative counters aggregate the straggler backups.
	// SpeculativeWallSeconds is volatile (real loser wall time); the rest
	// are deterministic.
	MapReexecutions        int64
	FetchFailures          int64
	SpeculativeLaunched    int64
	SpeculativeWon         int64
	SpeculativeKilled      int64
	SpeculativeWallSeconds float64

	// Execution-backend health counters (schema v6), collected from the
	// round's RoundExecutor at round end. All three are volatile: real
	// transport flakiness and crash recovery do not replay identically, so
	// the determinism contract strips them like WallSeconds. Always zero
	// under the in-process local backend. Set after finalize, which must
	// not zero them.
	HeartbeatMisses int64
	WorkerRestarts  int64
	RPCRetries      int64

	Failed     bool
	FailReason string

	// Maint annotates rounds that belong to an incremental-maintenance
	// cycle (schema v3). Nil for ordinary cube-computation rounds.
	Maint *MaintInfo
}

// MaintInfo describes the maintenance cycle a round was executed for: the
// cycle's ordinal, whether the cycle merged a delta cube or rebuilt from
// scratch, why, and the sketch drift that informed the decision.
type MaintInfo struct {
	// Round is the 1-based maintenance-cycle ordinal (0 = initial build).
	Round int
	// Mode is "delta" or "rebuild".
	Mode string
	// Reason explains the mode choice ("mergeable", "drift", "deletes",
	// "aggregate", "forced", ...).
	Reason string
	// Drift is the sketch drift of the batch vs. the base sketch in [0,1].
	Drift float64
	// Appended/Deleted count the batch's tuples.
	Appended int
	Deleted  int
}

func (r *RoundMetrics) finalize(cost CostModel) {
	r.Retries, r.RetryWallSeconds, r.WastedBytes = 0, 0, 0
	r.MapReexecutions, r.FetchFailures = 0, 0
	r.Spills, r.SpillBytes = 0, 0
	r.CompressedSpillBytes, r.MergePasses = 0, 0
	r.SpillWriteStallNs, r.PrefetchHits, r.PrefetchMisses = 0, 0, 0
	r.SpeculativeLaunched, r.SpeculativeWon, r.SpeculativeKilled = 0, 0, 0
	r.SpeculativeWallSeconds = 0
	for _, tasks := range [][]TaskMetrics{r.Mappers, r.Reducers} {
		for i := range tasks {
			t := &tasks[i]
			// Speculative backups are extra attempts but not retries: the
			// task never failed, the scheduler just raced a copy of it.
			if extra := t.Attempts - 1 - t.SpeculativeLaunched; extra > 0 {
				r.Retries += extra
			}
			r.RetryWallSeconds += t.RetryWallSeconds
			r.WastedBytes += t.WastedBytes
			r.Spills += t.Spills
			r.SpillBytes += t.SpillBytes
			r.CompressedSpillBytes += t.CompressedSpillBytes
			r.MergePasses += t.MergePasses
			r.SpillWriteStallNs += t.SpillWriteStallNs
			r.PrefetchHits += t.PrefetchHits
			r.PrefetchMisses += t.PrefetchMisses
			r.FetchFailures += t.FetchFailures
			r.SpeculativeLaunched += t.SpeculativeLaunched
			r.SpeculativeWon += t.SpeculativeWon
			r.SpeculativeKilled += t.SpeculativeKilled
			r.SpeculativeWallSeconds += t.SpeculativeWallSeconds
		}
	}
	for i := range r.Mappers {
		r.MapReexecutions += r.Mappers[i].Reexecutions
	}
	// Phase times average over the tasks that actually ran (Attempts > 0).
	// Tasks that never executed — reducers scheduled after the first OOM
	// failure — carry zero CPUSeconds and would deflate the averages of
	// failed runs if counted.
	var mapSum float64
	for i := range r.Mappers {
		m := &r.Mappers[i]
		if m.Attempts == 0 {
			continue
		}
		r.MappersExecuted++
		mapSum += m.CPUSeconds
		if m.CPUSeconds > r.MapTimeMax {
			r.MapTimeMax = m.CPUSeconds
		}
	}
	if r.MappersExecuted > 0 {
		r.MapTimeAvg = mapSum / float64(r.MappersExecuted)
	}
	var maxIn int64
	var redSum float64
	for i := range r.Reducers {
		t := &r.Reducers[i]
		// Input bytes were transferred to the reducer even when it was
		// killed before running, so the shuffle bottleneck below counts
		// every task; CPU averages count executed tasks only.
		if t.InBytes > maxIn {
			maxIn = t.InBytes
		}
		if t.Attempts == 0 {
			continue
		}
		r.ReducersExecuted++
		redSum += t.CPUSeconds
		if t.CPUSeconds > r.ReduceTimeMax {
			r.ReduceTimeMax = t.CPUSeconds
		}
	}
	if r.ReducersExecuted > 0 {
		r.ReduceTimeAvg = redSum / float64(r.ReducersExecuted)
	}
	r.ShuffleTime = float64(r.ShuffleBytes) / cost.NetBytesPerSec
	if t := float64(maxIn) / cost.NodeNetBytesPerSec; t > r.ShuffleTime {
		r.ShuffleTime = t
	}
	r.SimSeconds = cost.RoundStartup + r.MapTimeMax + r.ShuffleTime + r.ReduceTimeMax
}

// ReducerOutputBytes returns the per-reducer output sizes, used to assess
// load balance (the paper's closing experiment in §6.2).
func (r *RoundMetrics) ReducerOutputBytes() []int64 {
	out := make([]int64, len(r.Reducers))
	for i := range r.Reducers {
		out[i] = r.Reducers[i].OutBytes
	}
	return out
}

// JobMetrics aggregates a full multi-round algorithm execution.
type JobMetrics struct {
	Rounds []RoundMetrics
}

// Add appends a round.
func (j *JobMetrics) Add(r RoundMetrics) { j.Rounds = append(j.Rounds, r) }

// SimSeconds is the total simulated running time across rounds.
func (j *JobMetrics) SimSeconds() float64 {
	var s float64
	for i := range j.Rounds {
		s += j.Rounds[i].SimSeconds
	}
	return s
}

// WallSeconds is the total real in-process duration across rounds.
func (j *JobMetrics) WallSeconds() float64 {
	var s float64
	for i := range j.Rounds {
		s += j.Rounds[i].WallSeconds
	}
	return s
}

// ShuffleBytes is the total intermediate data transferred across rounds —
// the quantity plotted in the paper's "map output size" figures.
func (j *JobMetrics) ShuffleBytes() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].ShuffleBytes
	}
	return s
}

// ShuffleRecords is the total intermediate record count across rounds.
func (j *JobMetrics) ShuffleRecords() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].ShuffleRecords
	}
	return s
}

// MapTimeAvg is the average simulated mapper time across all rounds'
// executed tasks (tasks that never ran — Attempts == 0 — are excluded, so
// failed runs do not deflate the average).
func (j *JobMetrics) MapTimeAvg() float64 {
	var s float64
	var n int
	for i := range j.Rounds {
		s += j.Rounds[i].MapTimeAvg * float64(j.Rounds[i].MappersExecuted)
		n += j.Rounds[i].MappersExecuted
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// ReduceTimeAvg is the average simulated reducer time across all rounds'
// executed tasks (reducers that never ran, e.g. those scheduled after an
// OOM failure, are excluded).
func (j *JobMetrics) ReduceTimeAvg() float64 {
	var s float64
	var n int
	for i := range j.Rounds {
		s += j.Rounds[i].ReduceTimeAvg * float64(j.Rounds[i].ReducersExecuted)
		n += j.Rounds[i].ReducersExecuted
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Spills is the total number of spill events (map run-file flushes plus
// reduce-side external aggregations) across rounds.
func (j *JobMetrics) Spills() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].Spills
	}
	return s
}

// SpillBytes is the total encoded bytes the spill writer produced across
// rounds.
func (j *JobMetrics) SpillBytes() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].SpillBytes
	}
	return s
}

// CompressedSpillBytes is the total framed, block-compressed bytes the
// spill pipeline physically wrote across rounds — the disk-charged size,
// versus SpillBytes' pre-compression encoded size.
func (j *JobMetrics) CompressedSpillBytes() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].CompressedSpillBytes
	}
	return s
}

// MergePasses is the total number of intermediate fan-in merges reducers
// performed across rounds.
func (j *JobMetrics) MergePasses() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].MergePasses
	}
	return s
}

// SpillWriteStallNs is the total real time task foregrounds spent blocked
// on their background spill writers (volatile, like WallSeconds).
func (j *JobMetrics) SpillWriteStallNs() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].SpillWriteStallNs
	}
	return s
}

// PrefetchHits is the total merge read-ahead chunks served without
// waiting; PrefetchMisses the chunks the merge had to block for. Both are
// volatile.
func (j *JobMetrics) PrefetchHits() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].PrefetchHits
	}
	return s
}

// PrefetchMisses is the volatile counterpart of PrefetchHits.
func (j *JobMetrics) PrefetchMisses() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].PrefetchMisses
	}
	return s
}

// Retries is the total number of re-executed task attempts across rounds.
func (j *JobMetrics) Retries() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].Retries
	}
	return s
}

// RetryWallSeconds is the total real time spent in failed task attempts.
func (j *JobMetrics) RetryWallSeconds() float64 {
	var s float64
	for i := range j.Rounds {
		s += j.Rounds[i].RetryWallSeconds
	}
	return s
}

// WastedBytes is the total output discarded from failed task attempts.
func (j *JobMetrics) WastedBytes() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].WastedBytes
	}
	return s
}

// MapReexecutions is the total number of completed map tasks re-run after
// a node crash lost their stored output.
func (j *JobMetrics) MapReexecutions() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].MapReexecutions
	}
	return s
}

// FetchFailures is the total number of lost map outputs observed by
// reducers at the shuffle.
func (j *JobMetrics) FetchFailures() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].FetchFailures
	}
	return s
}

// SpeculativeLaunched is the total number of speculative backup attempts.
func (j *JobMetrics) SpeculativeLaunched() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].SpeculativeLaunched
	}
	return s
}

// SpeculativeWon is the number of speculative backups whose result was
// kept over the original attempt's.
func (j *JobMetrics) SpeculativeWon() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].SpeculativeWon
	}
	return s
}

// SpeculativeKilled is the number of speculative-race losers whose
// completed output was discarded.
func (j *JobMetrics) SpeculativeKilled() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].SpeculativeKilled
	}
	return s
}

// SpeculativeWallSeconds is the total real time consumed by the losers of
// speculative races (volatile, like WallSeconds).
func (j *JobMetrics) SpeculativeWallSeconds() float64 {
	var s float64
	for i := range j.Rounds {
		s += j.Rounds[i].SpeculativeWallSeconds
	}
	return s
}

// HeartbeatMisses is the total number of worker heartbeat probes that
// timed out or errored (proc backend; volatile, always zero under local).
func (j *JobMetrics) HeartbeatMisses() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].HeartbeatMisses
	}
	return s
}

// WorkerRestarts is the total number of worker processes respawned after a
// crash (proc backend; volatile, always zero under local).
func (j *JobMetrics) WorkerRestarts() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].WorkerRestarts
	}
	return s
}

// RPCRetries is the total number of worker RPCs retried after a timeout or
// transport error (proc backend; volatile, always zero under local).
func (j *JobMetrics) RPCRetries() int64 {
	var s int64
	for i := range j.Rounds {
		s += j.Rounds[i].RPCRetries
	}
	return s
}

// Failed reports whether any round failed, with its reason.
func (j *JobMetrics) Failed() (bool, string) {
	for i := range j.Rounds {
		if j.Rounds[i].Failed {
			return true, j.Rounds[i].FailReason
		}
	}
	return false, ""
}

// String renders a compact per-round summary.
func (j *JobMetrics) String() string {
	var b strings.Builder
	for i := range j.Rounds {
		r := &j.Rounds[i]
		fmt.Fprintf(&b, "round %d (%s): shuffle=%d recs/%d B, out=%d recs, sim=%.2fs",
			i, r.Job, r.ShuffleRecords, r.ShuffleBytes, r.OutputRecords, r.SimSeconds)
		if r.Retries > 0 {
			fmt.Fprintf(&b, ", retries=%d (%d wasted B)", r.Retries, r.WastedBytes)
		}
		if r.MapReexecutions > 0 {
			fmt.Fprintf(&b, ", map reexec=%d (%d fetch failures)", r.MapReexecutions, r.FetchFailures)
		}
		if r.SpeculativeLaunched > 0 {
			fmt.Fprintf(&b, ", speculative=%d (won %d, killed %d)",
				r.SpeculativeLaunched, r.SpeculativeWon, r.SpeculativeKilled)
		}
		if r.Failed {
			fmt.Fprintf(&b, " FAILED: %s", r.FailReason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
