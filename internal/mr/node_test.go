package mr

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestFaultKindNameRoundTrip walks the kind table itself, so adding a kind
// without wiring its name (or vice versa) fails here before anything else.
func TestFaultKindNameRoundTrip(t *testing.T) {
	for _, e := range faultKindNames {
		if got := e.kind.String(); got != e.name {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(e.kind), got, e.name)
		}
		k, err := FaultKindByName(e.name)
		if err != nil || k != e.kind {
			t.Errorf("FaultKindByName(%q) = %v, %v; want %v", e.name, k, err, e.kind)
		}
		for _, a := range e.aliases {
			k, err := FaultKindByName(a)
			if err != nil || k != e.kind {
				t.Errorf("alias FaultKindByName(%q) = %v, %v; want %v", a, k, err, e.kind)
			}
		}
	}
	_, err := FaultKindByName("meteor")
	if err == nil {
		t.Fatal("FaultKindByName accepted an unknown kind")
	}
	// The error must enumerate every canonical name (it is the user's only
	// discovery surface for the spec grammar).
	for _, e := range faultKindNames {
		if !strings.Contains(err.Error(), e.name) {
			t.Errorf("unknown-kind error %q does not list %q", err, e.name)
		}
	}
	if got := FaultKind(99).String(); got != "FaultKind(99)" {
		t.Errorf("out-of-range kind String() = %q", got)
	}
}

func TestPlaceNode(t *testing.T) {
	const nodes = 4
	seen := map[int]bool{}
	for task := 0; task < 64; task++ {
		n := PlaceNode(7, 0, PhaseMap, task, 0, nodes)
		if n < 0 || n >= nodes {
			t.Fatalf("PlaceNode(task %d) = %d, outside [0,%d)", task, n, nodes)
		}
		if n != PlaceNode(7, 0, PhaseMap, task, 0, nodes) {
			t.Fatalf("PlaceNode(task %d) is not deterministic", task)
		}
		seen[n] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 tasks all placed on the same node: %v", seen)
	}
	// A retried attempt must be able to move off its node.
	moved := false
	for task := 0; task < 16; task++ {
		if PlaceNode(7, 0, PhaseMap, task, 1, nodes) != PlaceNode(7, 0, PhaseMap, task, 0, nodes) {
			moved = true
		}
	}
	if !moved {
		t.Error("attempt index never changes placement")
	}
	if PlaceNode(7, 0, PhaseMap, 3, 0, 1) != 0 || PlaceNode(7, 0, PhaseMap, 3, 0, 0) != 0 {
		t.Error("a single (or absent) failure domain must place everything on node 0")
	}
}

func TestDeadNodes(t *testing.T) {
	eng := New(Config{Workers: 4,
		Faults: mustPlan(t, "0:node:1:node-crash,2:node:*:node-crash,0:node:9:node-crash")}, nil)
	if d := eng.deadNodes(1, 4); d != nil {
		t.Errorf("round 1 has no node faults, got %v", d)
	}
	d := eng.deadNodes(0, 4)
	if !reflect.DeepEqual(d, []bool{false, true, false, false}) {
		t.Errorf("round 0 dead = %v, want only node 1 (node 9 is out of range)", d)
	}
	d = eng.deadNodes(2, 4)
	if !reflect.DeepEqual(d, []bool{true, true, true, true}) {
		t.Errorf("round 2 wildcard dead = %v, want all", d)
	}
	if d := New(Config{Workers: 4}, nil).deadNodes(0, 4); d != nil {
		t.Errorf("no fault plan, got %v", d)
	}
}

func TestPlaceLive(t *testing.T) {
	if n := placeLive(2, nil, 4); n != 2 {
		t.Errorf("nil dead: %d", n)
	}
	dead := []bool{false, true, true, false}
	if n := placeLive(0, dead, 4); n != 0 {
		t.Errorf("live node re-placed: %d", n)
	}
	if n := placeLive(1, dead, 4); n != 3 {
		t.Errorf("forward probe from 1 = %d, want 3", n)
	}
	if n := placeLive(3, []bool{true, false, true, true}, 4); n != 1 {
		t.Errorf("wrap-around probe from 3 = %d, want 1", n)
	}
	if n := placeLive(2, []bool{true, true, true, true}, 4); n != -1 {
		t.Errorf("all dead = %d, want -1", n)
	}
}

func TestNodeKillAndTimeout(t *testing.T) {
	eng := New(Config{Workers: 4, Seed: 7}, nil)
	if err := eng.nodeKill(0, PhaseReduce, 0, 0, nil, 4); err != nil {
		t.Errorf("no dead nodes: %v", err)
	}
	// Kill attempt 0 exactly where its raw placement lands; later attempts
	// are re-placed and survive as long as one node lives.
	home := PlaceNode(7, 0, PhaseReduce, 0, 0, 4)
	dead := make([]bool, 4)
	dead[home] = true
	err := eng.nodeKill(0, PhaseReduce, 0, 0, dead, 4)
	if !isKillError(err) || !strings.Contains(err.Error(), "crashed") {
		t.Errorf("attempt 0 on a dead node: %v", err)
	}
	if err := eng.nodeKill(0, PhaseReduce, 0, 1, dead, 4); err != nil {
		t.Errorf("attempt 1 must be re-placed on a live node: %v", err)
	}
	allDead := []bool{true, true, true, true}
	err = eng.nodeKill(0, PhaseReduce, 0, 1, allDead, 4)
	if !isKillError(err) || !strings.Contains(err.Error(), "no live node") {
		t.Errorf("attempt 1 with no live node: %v", err)
	}

	if err := eng.timeoutKill(PhaseMap, 0, 0, 99); err != nil {
		t.Errorf("timeout disabled: %v", err)
	}
	eng.Cfg.TaskTimeout = 0.5
	if err := eng.timeoutKill(PhaseMap, 0, 0, 0.5); err != nil {
		t.Errorf("stall at the threshold must not kill: %v", err)
	}
	err = eng.timeoutKill(PhaseMap, 1, 2, 0.7)
	if !isKillError(err) || !strings.Contains(err.Error(), "task timeout") {
		t.Errorf("stall past the threshold: %v", err)
	}

	if !backupWins(1, 2) || backupWins(2, 2) || backupWins(3, 2) {
		t.Error("backupWins must be strictly-less-than (ties keep the original)")
	}
	if isKillError(&FaultError{}) || !isKillError(&killError{}) {
		t.Error("isKillError confuses fault and kill errors")
	}
}

// TestNodeCrashReexecutesLostMaps is the recovery regression: crash the node
// holding a completed map task's output and require the engine to re-execute
// it — visibly in the counters, invisibly in the output.
func TestNodeCrashReexecutesLostMaps(t *testing.T) {
	base := runFaulted(t, nil, 0, 1)
	if base.err != nil {
		t.Fatal(base.err)
	}
	// Crash the node that map task 0's attempt-0 output is stored on (the
	// harness engine: Workers 4 = 4 nodes, Seed 7, round 0).
	victim := PlaceNode(7, 0, PhaseMap, 0, 0, 4)
	spec := fmt.Sprintf("0:node:%d:node-crash", victim)
	for _, par := range []int{1, 8} {
		got := runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: par,
			Faults: mustPlan(t, spec)})
		if got.err != nil {
			t.Fatalf("par=%d: %v", par, got.err)
		}
		if got.metrics.MapReexecutions == 0 {
			t.Fatalf("par=%d: node %d crashed but no map was re-executed", par, victim)
		}
		if got.metrics.FetchFailures == 0 {
			t.Errorf("par=%d: reducers observed no fetch failures", par)
		}
		if got.metrics.Mappers[0].Reexecutions != 1 || got.metrics.Mappers[0].Attempts < 2 {
			t.Errorf("par=%d: lost map task 0: reexecutions=%d attempts=%d",
				par, got.metrics.Mappers[0].Reexecutions, got.metrics.Mappers[0].Attempts)
		}
		if got.metrics.WastedBytes == 0 {
			t.Errorf("par=%d: lost map output not charged to WastedBytes", par)
		}
		if !reflect.DeepEqual(stripRecovery(got.metrics), stripRecovery(base.metrics)) {
			t.Errorf("par=%d: metrics diverge from fault-free run beyond recovery accounting", par)
		}
		if got.sum != base.sum || got.recs != base.recs {
			t.Errorf("par=%d: DFS output diverges: sum %d/%d recs %d/%d",
				par, got.sum, base.sum, got.recs, base.recs)
		}
		if !reflect.DeepEqual(got.output, base.output) {
			t.Errorf("par=%d: collected output diverges from fault-free run", par)
		}
	}
}

// TestPermanentNodeFailure kills every failure domain: with nowhere left to
// re-execute, the round must fail by exhausting attempts on engine kills —
// reported as a plain error, not an injected FaultError.
func TestPermanentNodeFailure(t *testing.T) {
	got := runFaulted(t, mustPlan(t, "*:node:*:node-crash"), 3, 1)
	if got.err == nil {
		t.Fatal("expected an all-nodes crash to fail the round")
	}
	if isFaultError(got.err) {
		t.Errorf("exhausted kills surfaced as a FaultError: %v", got.err)
	}
	if !isKillError(got.err) {
		t.Errorf("error %v does not wrap the engine kill", got.err)
	}
	var ke *killError
	if errors.As(got.err, &ke) && ke.reason != "no live node" {
		t.Errorf("kill reason = %q, want %q", ke.reason, "no live node")
	}
	if !got.metrics.Failed || !strings.Contains(got.metrics.FailReason, "attempts") {
		t.Errorf("Failed=%v FailReason=%q", got.metrics.Failed, got.metrics.FailReason)
	}
}

// TestSpeculativeExecution races backups against injected stragglers in both
// phases and checks the deterministic winner rule and its accounting.
func TestSpeculativeExecution(t *testing.T) {
	base := runFaulted(t, nil, 0, 1)
	if base.err != nil {
		t.Fatal(base.err)
	}
	cases := []struct {
		name             string
		spec             string
		phase            Phase
		task             int
		wantWon, wantTot int64
	}{
		// Only attempt 0 is slow: the unstalled backup finishes first.
		{"map backup wins", "0:map:2:slow@50", PhaseMap, 2, 1, 1},
		{"reduce backup wins", "0:reduce:1:slow@50", PhaseReduce, 1, 1, 1},
		// Both attempts are equally slow: the tie keeps the original.
		{"tie keeps original", "0:map:2:slow@50:0:2", PhaseMap, 2, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: 1,
				Faults: mustPlan(t, tc.spec), SpeculativeSlack: 0.01})
			if got.err != nil {
				t.Fatal(got.err)
			}
			if got.metrics.SpeculativeLaunched != tc.wantTot ||
				got.metrics.SpeculativeWon != tc.wantWon ||
				got.metrics.SpeculativeKilled != tc.wantTot {
				t.Errorf("launched/won/killed = %d/%d/%d, want %d/%d/%d",
					got.metrics.SpeculativeLaunched, got.metrics.SpeculativeWon,
					got.metrics.SpeculativeKilled, tc.wantTot, tc.wantWon, tc.wantTot)
			}
			tasks := got.metrics.Mappers
			if tc.phase == PhaseReduce {
				tasks = got.metrics.Reducers
			}
			if tasks[tc.task].Attempts != 2 {
				t.Errorf("raced task attempts = %d, want 2 (original + backup)", tasks[tc.task].Attempts)
			}
			if got.metrics.Retries != 0 {
				t.Errorf("speculative backups counted as retries: %d", got.metrics.Retries)
			}
			if got.metrics.WastedBytes == 0 {
				t.Error("the race's loser left no wasted bytes")
			}
			if !reflect.DeepEqual(stripRecovery(got.metrics), stripRecovery(base.metrics)) {
				t.Error("metrics diverge from fault-free run beyond recovery accounting")
			}
			if got.sum != base.sum || got.recs != base.recs ||
				!reflect.DeepEqual(got.output, base.output) {
				t.Error("speculation changed the job's output")
			}
		})
	}
	// Below the slack threshold nothing is launched.
	got := runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: 1,
		Faults: mustPlan(t, "0:map:2:slow@50"), SpeculativeSlack: 0.1})
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.metrics.SpeculativeLaunched != 0 {
		t.Errorf("stall below the slack launched %d backups", got.metrics.SpeculativeLaunched)
	}
}

// TestTaskTimeoutRetriesStalledAttempts drives the hard progress timeout:
// the stalled attempt is killed and retried, and the output is unchanged.
func TestTaskTimeoutRetriesStalledAttempts(t *testing.T) {
	base := runFaulted(t, nil, 0, 1)
	if base.err != nil {
		t.Fatal(base.err)
	}
	for _, tc := range []struct {
		name  string
		spec  string
		phase Phase
		task  int
	}{
		{"map", "0:map:1:slow@50", PhaseMap, 1},
		{"reduce", "0:reduce:3:slow@50", PhaseReduce, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: 1,
				Faults: mustPlan(t, tc.spec), TaskTimeout: 0.01})
			if got.err != nil {
				t.Fatal(got.err)
			}
			tasks := got.metrics.Mappers
			if tc.phase == PhaseReduce {
				tasks = got.metrics.Reducers
			}
			if tasks[tc.task].Attempts != 2 || got.metrics.Retries != 1 {
				t.Errorf("attempts=%d retries=%d, want 2/1 (timed-out attempt retried once)",
					tasks[tc.task].Attempts, got.metrics.Retries)
			}
			if got.sum != base.sum || got.recs != base.recs ||
				!reflect.DeepEqual(got.output, base.output) {
				t.Error("task timeout changed the job's output")
			}
		})
	}
	// A permanently stalled task exhausts its attempts on kills: a plain
	// (non-injected) failure, like the all-nodes-dead case.
	got := runFaultedCfg(t, Config{Workers: 4, Seed: 7, Parallelism: 1, MaxAttempts: 2,
		Faults: mustPlan(t, "0:map:1:slow@50:0:*"), TaskTimeout: 0.01})
	if got.err == nil {
		t.Fatal("permanently stalled task must fail the round")
	}
	if isFaultError(got.err) || !isKillError(got.err) {
		t.Errorf("timeout exhaustion error: %v (want a kill, not a FaultError)", got.err)
	}
}
