package mr

import (
	"bytes"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/mr/blockcodec"
)

// submitFlush encodes one flush of buckets and pushes it through the writer
// the way the map foreground does: acquire a buffer, encode into it, submit.
func submitFlush(t *testing.T, w *spillWriter, buckets [][]Pair, codec blockcodec.Codec) {
	t.Helper()
	b, _ := w.acquire()
	var enc, block []byte
	b.framed, b.segs, _ = encodeSpill(buckets, codec, b.framed, &enc, &block)
	w.submit(b)
}

// TestSpillWriterAsyncMatchesSync: the background double-buffered writer
// must leave exactly the file and segment metadata the inline writer does —
// overlap changes timing, never bytes.
func TestSpillWriterAsyncMatchesSync(t *testing.T) {
	for _, codecName := range blockcodec.Names() {
		t.Run(codecName, func(t *testing.T) {
			codec, err := blockcodec.ByName(codecName)
			if err != nil {
				t.Fatal(err)
			}
			sd := newSpillDir(t.TempDir(), nil)
			defer sd.cleanup()
			files := make([]*spillFile, 2)
			for mode, syncMode := range []bool{true, false} {
				sf, err := sd.create("run-m-*")
				if err != nil {
					t.Fatal(err)
				}
				files[mode] = sf
				w := newSpillWriter(sf, syncMode)
				for flush := 0; flush < 5; flush++ {
					submitFlush(t, w, testBuckets(), codec)
				}
				if err, _ := w.join(); err != nil {
					t.Fatal(err)
				}
			}
			syncBytes, err := os.ReadFile(files[0].path)
			if err != nil {
				t.Fatal(err)
			}
			asyncBytes, err := os.ReadFile(files[1].path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(syncBytes, asyncBytes) {
				t.Errorf("async writer file (%d bytes) differs from sync writer file (%d bytes)",
					len(asyncBytes), len(syncBytes))
			}
			if len(files[0].spills) != len(files[1].spills) {
				t.Fatalf("flush counts differ: sync %d, async %d", len(files[0].spills), len(files[1].spills))
			}
			for i := range files[0].spills {
				for r := range files[0].spills[i] {
					s, a := files[0].spills[i][r], files[1].spills[i][r]
					s.f, a.f = nil, nil
					s.codec, a.codec = nil, nil
					if s != a {
						t.Errorf("flush %d reducer %d: segment metadata differs: sync %+v, async %+v", i, r, s, a)
					}
				}
			}
		})
	}
}

// TestSpillWriterErrorPropagation: a failed background append must surface
// at join, later submits must not wedge the double buffer, and join must
// stay idempotent, reporting the same first error every time.
func TestSpillWriterErrorPropagation(t *testing.T) {
	sd := newSpillDir(t.TempDir(), nil)
	defer sd.cleanup()
	sf, err := sd.create("run-m-*")
	if err != nil {
		t.Fatal(err)
	}
	sf.f.Close() // every subsequent append fails
	w := newSpillWriter(sf, false)
	// More submissions than buffers: acquire must keep being served even
	// though the writer is in its error state.
	for flush := 0; flush < 6; flush++ {
		submitFlush(t, w, testBuckets(), blockcodec.Raw{})
	}
	firstErr, _ := w.join()
	if firstErr == nil {
		t.Fatal("join returned nil after failed appends")
	}
	again, blocked := w.join()
	if again != firstErr {
		t.Errorf("second join returned %v, want the first error %v", again, firstErr)
	}
	if blocked != 0 {
		t.Errorf("idempotent join reported %v blocked time", blocked)
	}
	sf.closed = true // already closed by hand; keep cleanup quiet
}

// TestSpillWriterSyncModeInline: in synchronous mode the bytes are on disk
// when submit returns — no join needed for visibility, and no goroutine is
// ever started.
func TestSpillWriterSyncModeInline(t *testing.T) {
	sd := newSpillDir(t.TempDir(), nil)
	defer sd.cleanup()
	sf, err := sd.create("run-m-*")
	if err != nil {
		t.Fatal(err)
	}
	w := newSpillWriter(sf, true)
	submitFlush(t, w, testBuckets(), blockcodec.Raw{})
	st, err := os.Stat(sf.path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 || st.Size() != sf.off {
		t.Errorf("after inline submit: file holds %d bytes, writer offset %d", st.Size(), sf.off)
	}
	if err, _ := w.join(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillWriterNoGoroutineLeak: every async writer's goroutine must exit
// at join — the engine joins on success, failure, kill and lost speculation
// alike, so a leak here would grow with every spilling attempt.
func TestSpillWriterNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sd := newSpillDir(t.TempDir(), nil)
	defer sd.cleanup()
	for i := 0; i < 100; i++ {
		sf, err := sd.create("run-m-*")
		if err != nil {
			t.Fatal(err)
		}
		w := newSpillWriter(sf, false)
		submitFlush(t, w, testBuckets(), blockcodec.Raw{})
		if err, _ := w.join(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 100 writer join cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
