package mr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// spillWords is a workload big enough to force several flushes at small
// budgets: ~2000 words over a 26-word vocabulary.
func spillWords() []string {
	var words []string
	for i := 0; i < 2000; i++ {
		words = append(words, fmt.Sprintf("word-%c", 'a'+i%26))
	}
	return words
}

// runSpill executes the word-count job at the given spill budget and
// returns the final counts, the DFS checksum of the reduce output, and the
// job metrics. Parallelism 1 keeps run ordering trivially deterministic;
// the cross-parallelism contract is covered by the integration table.
func runSpill(t *testing.T, budget int64, dir, faults string, combine bool) (map[string]int64, uint64, RoundMetrics) {
	t.Helper()
	plan, err := ParseFaultPlan(faults)
	if err != nil {
		t.Fatal(err)
	}
	tuples, _ := tuplesFromWords(spillWords())
	counts := make(map[string]int64)
	var mu sync.Mutex
	job := &Job{
		Name: "spillcount",
		MapTuple: func(ctx *MapCtx, tp relation.Tuple) {
			ctx.Emit(fmt.Sprintf("word-%c", 'a'+rune(tp.Dims[0])%26), binary.AppendVarint(nil, 1))
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			mu.Lock()
			counts[key] += total
			mu.Unlock()
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
		},
	}
	if combine {
		job.Combine = func(key string, vals [][]byte) [][]byte {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			return [][]byte{binary.AppendVarint(nil, total)}
		}
	}
	eng := New(Config{Workers: 4, Parallelism: 1, Faults: plan,
		SpillBudgetBytes: budget, SpillDir: dir}, dfs.New(false))
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return counts, eng.FS.TotalChecksum("out/spillcount/"), res.Metrics
}

// TestSpillByteIdentity is the core out-of-core contract: the reduce output
// is byte-identical whether nothing, something, or everything spills.
func TestSpillByteIdentity(t *testing.T) {
	for _, combine := range []bool{false, true} {
		name := "plain"
		if combine {
			name = "combiner"
		}
		t.Run(name, func(t *testing.T) {
			baseCounts, baseSum, baseM := runSpill(t, 0, "", "", combine)
			if baseM.Spills != 0 || baseM.SpillBytes != 0 {
				t.Fatalf("budget 0 spilled: %d spills, %d bytes", baseM.Spills, baseM.SpillBytes)
			}
			for _, budget := range []int64{1, 64, 4096} {
				dir := t.TempDir()
				counts, sum, m := runSpill(t, budget, dir, "", combine)
				if m.Spills == 0 || m.SpillBytes == 0 {
					t.Fatalf("budget %d: nothing spilled (%d spills, %d bytes)", budget, m.Spills, m.SpillBytes)
				}
				if sum != baseSum {
					t.Errorf("budget %d: DFS output checksum %x differs from in-memory %x", budget, sum, baseSum)
				}
				if len(counts) != len(baseCounts) {
					t.Fatalf("budget %d: %d keys, want %d", budget, len(counts), len(baseCounts))
				}
				for k, v := range baseCounts {
					if counts[k] != v {
						t.Errorf("budget %d: count(%s) = %d, want %d", budget, k, counts[k], v)
					}
				}
				if leaked := listAll(t, dir); len(leaked) != 0 {
					t.Errorf("budget %d: leaked spill files: %v", budget, leaked)
				}
				// Shuffle/reduce-input accounting must mirror the in-memory
				// run's exactly (pre-combine volumes are budget-independent).
				if !combine && (m.ShuffleRecords != baseM.ShuffleRecords || m.ShuffleBytes != baseM.ShuffleBytes) {
					t.Errorf("budget %d: shuffle %d rec/%d B, want %d/%d",
						budget, m.ShuffleRecords, m.ShuffleBytes, baseM.ShuffleRecords, baseM.ShuffleBytes)
				}
			}
		})
	}
}

// TestSpillRecoveryUnderFaults: retried, node-crash-lost and timed-out
// attempts must discard their run files and recover to the identical
// output, with no file leaked.
func TestSpillRecoveryUnderFaults(t *testing.T) {
	_, cleanSum, _ := runSpill(t, 0, "", "", false)
	plans := []struct{ name, spec string }{
		{"map-crash", "*:map:*:crash"},
		{"reduce-mid-emit", "*:reduce:*:mid-emit@4"},
		{"node-crash", "*:node:1:node-crash"},
	}
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			dir := t.TempDir()
			_, sum, m := runSpill(t, 1, dir, p.spec, false)
			if sum != cleanSum {
				t.Errorf("faulted spilled output %x differs from clean in-memory %x", sum, cleanSum)
			}
			if m.Spills == 0 {
				t.Error("expected spills at budget 1")
			}
			if leaked := listAll(t, dir); len(leaked) != 0 {
				t.Errorf("leaked spill files after fault recovery: %v", leaked)
			}
		})
	}
}

// TestSpillMetricsMatchTrace: every spill fires exactly one writer-side
// trace event carrying the exact encoded byte count, and the metrics are
// their sum — the two accountings cannot drift apart.
func TestSpillMetricsMatchTrace(t *testing.T) {
	var buf bytes.Buffer
	tuples, _ := tuplesFromWords(spillWords())
	counts := make(map[string]int64)
	job := wordCountJob(counts)
	eng := New(Config{Workers: 4, Parallelism: 1, SpillBudgetBytes: 512,
		Tracer: NewJSONLTracer(&buf)}, dfs.New(false))
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var events int64
	var traced int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == EvSpill {
			events++
			traced += ev.Bytes
			if ev.Bytes <= 0 {
				t.Errorf("spill event with %d bytes", ev.Bytes)
			}
		}
	}
	m := res.Metrics
	if m.Spills == 0 {
		t.Fatal("expected spills at a 512-byte budget")
	}
	if events != m.Spills || traced != m.SpillBytes {
		t.Errorf("trace saw %d spills/%d bytes, metrics say %d/%d", events, traced, m.Spills, m.SpillBytes)
	}
}

// TestExternalAggExactBytes is the satellite-1 regression: reduce-side
// external-aggregation spill volume must be the exact encoded size of the
// excess records — not the historical hardcoded 24-byte-per-record guess.
func TestExternalAggExactBytes(t *testing.T) {
	const n = 5000
	val := []byte("0123456789abcdef")
	var tuples []relation.Tuple
	for i := 0; i < n; i++ {
		tuples = append(tuples, relation.Tuple{Dims: []relation.Value{1}, Measure: 1})
	}
	job := &Job{
		Name:         "extagg",
		MapTuple:     func(ctx *MapCtx, tp relation.Tuple) { ctx.Emit("hot", val) },
		Reduce:       func(*RedCtx, string, [][]byte) {},
		MemInflation: 8,
	}
	eng := New(Config{Workers: 4, Parallelism: 1}, nil)
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	// All n records carry the key "hot" and land on one reducer; the
	// records beyond the task's capacity (oomMem/inflation) are aggregated
	// externally. Re-encode that excess independently through the codec.
	capRecords := MinOOMMemTuples / 8 // oomMem floors at MinOOMMemTuples; inflation 8
	excess := n - capRecords
	want := int64(len(appendSpillRecord(nil, "", "hot", val))) +
		int64(excess-1)*int64(len(appendSpillRecord(nil, "hot", "hot", val)))
	var got, spills int64
	for _, r := range res.Metrics.Reducers {
		got += r.SpillBytes
		spills += r.Spills
	}
	if got != want {
		t.Errorf("external-agg SpillBytes = %d, want exact encoded size %d", got, want)
	}
	if spills != 1 {
		t.Errorf("Spills = %d, want 1 (one oversized group)", spills)
	}
}

// TestStreamReduceValueRetention is the satellite-3 aliasing regression:
// a reducer may retain value slices past its Reduce call (the mirror image
// of Emit's zero-copy contract), so the streamed merge must hand it stable
// copies, never the merger's reused decode buffers.
func TestStreamReduceValueRetention(t *testing.T) {
	words := spillWords()
	tuples, _ := tuplesFromWords(words)
	retained := make(map[string][][]byte)
	var mu sync.Mutex
	job := &Job{
		Name: "retain",
		MapTuple: func(ctx *MapCtx, tp relation.Tuple) {
			key := fmt.Sprintf("word-%c", 'a'+rune(tp.Dims[0])%26)
			// Value repeats the key so corruption is detectable per slice.
			ctx.Emit(key, []byte(strings.Repeat(key, 3)))
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			mu.Lock()
			retained[key] = vals // deliberately no copy
			mu.Unlock()
			ctx.EmitKV(key, vals[0])
		},
	}
	eng := New(Config{Workers: 4, Parallelism: 1, SpillBudgetBytes: 1,
		SpillDir: t.TempDir()}, dfs.New(false))
	if _, err := eng.RunTuples(job, tuples); err != nil {
		t.Fatal(err)
	}
	for key, vals := range retained {
		want := strings.Repeat(key, 3)
		for i, v := range vals {
			if string(v) != want {
				t.Fatalf("key %s value %d corrupted after reduce: %q (aliased a reused buffer?)", key, i, v)
			}
		}
	}
}

// TestSpillSpeculationCleanup: the losing attempt of a speculative race
// must take its run file with it.
func TestSpillSpeculationCleanup(t *testing.T) {
	dir := t.TempDir()
	_, sum, m := runSpill(t, 1, dir, "", false)
	_ = m
	specDir := t.TempDir()
	plan, err := ParseFaultPlan("*:map:2:slow@2")
	if err != nil {
		t.Fatal(err)
	}
	tuples, _ := tuplesFromWords(spillWords())
	counts := make(map[string]int64)
	var mu sync.Mutex
	job := &Job{
		Name: "spillcount",
		MapTuple: func(ctx *MapCtx, tp relation.Tuple) {
			ctx.Emit(fmt.Sprintf("word-%c", 'a'+rune(tp.Dims[0])%26), binary.AppendVarint(nil, 1))
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			mu.Lock()
			counts[key] += total
			mu.Unlock()
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
		},
	}
	eng := New(Config{Workers: 4, Parallelism: 1, Faults: plan, SpeculativeSlack: 0.0005,
		SpillBudgetBytes: 1, SpillDir: specDir}, dfs.New(false))
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SpeculativeLaunched == 0 {
		t.Fatal("expected a speculative attempt")
	}
	if got := eng.FS.TotalChecksum("out/spillcount/"); got != sum {
		t.Errorf("speculated spilled output %x differs from clean %x", got, sum)
	}
	if leaked := listAll(t, specDir); len(leaked) != 0 {
		t.Errorf("speculation loser leaked run files: %v", leaked)
	}
}
