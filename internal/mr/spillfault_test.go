package mr

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/relation"
)

// faultyWriter injects spill-plane I/O failures through
// Config.SpillWriteWrapper. A script is shared across every run file the
// engine creates: calls counts write calls globally, and the script decides
// per call whether to fail hard (ENOSPC), fail silently (a short write with
// a nil error — the lying-disk case), or pass through.
type faultScript struct {
	calls    atomic.Int64
	failCall int64 // 1-based write call to fail, 0 = never
	short    bool  // fail as a silent short write instead of ENOSPC
	always   bool  // every write fails (the disk stays full)
}

func (s *faultScript) wrap(w io.Writer) io.Writer { return &faultyWriter{s: s, w: w} }

type faultyWriter struct {
	s *faultScript
	w io.Writer
}

func (f *faultyWriter) Write(p []byte) (int, error) {
	n := f.s.calls.Add(1)
	if f.s.always || (f.s.failCall > 0 && n == f.s.failCall) {
		if f.s.short && len(p) > 0 {
			return len(p) - 1, nil // silent short write: bytes vanish, no error
		}
		return 0, syscall.ENOSPC
	}
	return f.w.Write(p)
}

// runSpillFault executes the word-count workload at a one-byte spill budget
// (every emitted record flushes, so the wrapper sees plenty of write calls)
// with the given fault script, in async or synchronous spill mode.
func runSpillFault(t *testing.T, script *faultScript, syncMode bool) (uint64, RoundMetrics, error) {
	t.Helper()
	tuples, _ := tuplesFromWords(spillWords())
	job := &Job{
		Name: "spillfault",
		MapTuple: func(ctx *MapCtx, tp relation.Tuple) {
			ctx.Emit(fmt.Sprintf("word-%c", 'a'+rune(tp.Dims[0])%26), binary.AppendVarint(nil, 1))
		},
		Reduce: func(ctx *RedCtx, key string, vals [][]byte) {
			var total int64
			for _, v := range vals {
				n, _ := binary.Varint(v)
				total += n
			}
			ctx.EmitKV(key, binary.AppendVarint(nil, total))
		},
	}
	cfg := Config{Workers: 4, Parallelism: 4, MaxAttempts: 4,
		SpillBudgetBytes: 1, SpillDir: t.TempDir(), SpillSync: syncMode}
	if script != nil {
		cfg.SpillWriteWrapper = script.wrap
	}
	eng := New(cfg, dfs.New(false))
	res, err := eng.RunTuples(job, tuples)
	if err != nil {
		return 0, RoundMetrics{}, err
	}
	return eng.FS.TotalChecksum("out/spillfault/"), res.Metrics, nil
}

// TestSpillFaultRecovery is the disk-fault half of the robustness contract:
// a transient spill-plane failure — ENOSPC on one write, or a silent short
// write — kills only the attempt that hit it. The retry re-runs on a
// healthy writer and the job's reduce output is byte-identical to an
// uninjected run, in both async and synchronous spill modes.
func TestSpillFaultRecovery(t *testing.T) {
	for _, syncMode := range []bool{false, true} {
		mode := "async"
		if syncMode {
			mode = "sync"
		}
		t.Run(mode, func(t *testing.T) {
			clean, cleanM, err := runSpillFault(t, nil, syncMode)
			if err != nil {
				t.Fatal(err)
			}
			if cleanM.Spills == 0 {
				t.Fatal("budget 1 did not spill; the fault wrapper is not being exercised")
			}
			for _, fault := range []struct {
				name   string
				script *faultScript
			}{
				{"enospc-once", &faultScript{failCall: 3}},
				{"short-write-once", &faultScript{failCall: 3, short: true}},
			} {
				t.Run(fault.name, func(t *testing.T) {
					sum, m, err := runSpillFault(t, fault.script, syncMode)
					if err != nil {
						t.Fatalf("transient spill fault was not recovered: %v", err)
					}
					if sum != clean {
						t.Errorf("recovered output differs from clean run: %x vs %x", sum, clean)
					}
					if m.Retries <= cleanM.Retries {
						t.Errorf("no retry recorded: %d retries faulted vs %d clean", m.Retries, cleanM.Retries)
					}
				})
			}
		})
	}
}

// TestSpillFaultPersistent pins graceful degradation when the disk stays
// full: every attempt hits ENOSPC, MaxAttempts is exhausted, and the run
// fails with a plain error naming the spill write — no panic, no hang, no
// partial output served as success.
func TestSpillFaultPersistent(t *testing.T) {
	for _, syncMode := range []bool{false, true} {
		mode := "async"
		if syncMode {
			mode = "sync"
		}
		t.Run(mode, func(t *testing.T) {
			_, _, err := runSpillFault(t, &faultScript{always: true}, syncMode)
			if err == nil {
				t.Fatal("run succeeded with a permanently failing spill plane")
			}
			if !strings.Contains(err.Error(), "spill write") {
				t.Errorf("failure does not name the spill plane: %v", err)
			}
		})
	}
}
