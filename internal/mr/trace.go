package mr

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer receives structured lifecycle events from the engine. Install one
// through Config.Tracer; the nil default disables tracing entirely and adds
// no allocations to the engine (all trace hooks are nil-receiver no-ops).
//
// Delivery contract: events are delivered sequentially from the goroutine
// that called Engine.RunTuples/RunPairs — task-level events are buffered
// per task while a phase's tasks run (possibly concurrently) and forwarded
// in task-index order at the phase barrier. The stream is therefore
// deterministic: for a fixed input, configuration and fault plan, every
// field except Time is bit-for-bit identical at any Config.Parallelism.
// Implementations need no internal locking unless they are shared between
// engines.
type Tracer interface {
	TraceEvent(e TraceEvent)
}

// Trace event types, in the order they can appear within one round.
const (
	// EvRoundStart opens a round: Tasks mappers, Reducers reducers.
	EvRoundStart = "round-start"
	// EvTaskStart marks one task attempt starting; Attempt > 0 means the
	// task is being re-executed after a fault.
	EvTaskStart = "task-start"
	// EvFaultInjected reports that Config.Faults armed a fault for the
	// attempt (Fault holds the kind); crash kinds are followed by
	// EvTaskRetry or EvTaskFailure, slow tasks complete normally.
	EvFaultInjected = "fault-injected"
	// EvTaskRetry reports a failed attempt that will be re-executed.
	EvTaskRetry = "task-retry"
	// EvTaskFailure reports a permanent task failure (retries exhausted or
	// a non-retryable error such as reducer OOM); the round fails.
	EvTaskFailure = "task-failure"
	// EvSpeculate reports a speculative backup attempt launching against a
	// stalled original (Attempt is the backup's attempt index); it is
	// followed by the backup's own task-start, and the race's winner is the
	// attempt index carried by the task's task-success event.
	EvSpeculate = "speculate"
	// EvNodeCrash is a round-level event reporting a node-crash fault
	// killing failure domain Node at the round's shuffle barrier.
	EvNodeCrash = "node-crash"
	// EvFetchFail reports that map task Task's completed output, stored on
	// the crashed Node, could not be fetched by the round's Records
	// reducers; the task is re-executed (a task-start at the next attempt
	// index follows).
	EvFetchFail = "fetch-fail"
	// EvSpill is fired by the spill writer, once per flush: a map attempt
	// spilling a sorted run to disk under Config.SpillBudgetBytes, or a
	// reduce attempt externally aggregating a group that exceeded its
	// memory (§3.2 skew penalty). Bytes is the exact encoded run size.
	EvSpill = "spill"
	// EvSpillFlush is fired once per map-side spill flush when the flush's
	// background write has completed (at the attempt's writer join).
	// Attempts that crashed or aborted emit none — their writes are
	// discarded with them; attempts that completed and were only then
	// timeout-killed or lost a speculative race did write, and their
	// events stand. Bytes is the framed, block-compressed size physically
	// written — the on-disk counterpart of the preceding EvSpill's
	// pre-compression Bytes — and Records the flush's record count.
	EvSpillFlush = "spill-flush"
	// EvMergePass reports one intermediate fan-in merge: a reduce task
	// with more live runs than Config.MergeFanIn merged a group of them
	// into a new on-disk run before streaming its final merge. Records and
	// Bytes are the merged run's record count and compressed size.
	EvMergePass = "merge-pass"
	// EvTaskSuccess closes a task: output Records/Bytes and simulated
	// CPUSeconds of the successful attempt.
	EvTaskSuccess = "task-success"
	// EvShuffle reports the round's post-combine map output volume crossing
	// the shuffle barrier.
	EvShuffle = "shuffle"
	// EvRoundEnd closes a round: output Records/Bytes, simulated
	// SimSeconds, and the failure flag.
	EvRoundEnd = "round-end"

	// EvMaintStart opens an incremental-maintenance cycle (Round is the
	// cycle ordinal; Records/Bytes carry the batch's appended/deleted tuple
	// counts; Mode and Drift carry the delta-vs-rebuild decision). It is
	// emitted by the maintainer, not the engine, around the cycle's MR
	// rounds; the maintainer numbers these events with its own Seq counter.
	EvMaintStart = "maint-start"
	// EvMaintEnd closes a maintenance cycle: Records carries the number of
	// changed c-groups, Failed whether the cycle was rolled back.
	EvMaintEnd = "maint-end"

	// EvWorkerSpawn records the execution backend (re)starting a worker
	// process for a failure domain (Node). Emitted from RoundStart, on the
	// run goroutine, so its position in the sequence is deterministic for a
	// fixed fault plan; whether a respawn happens at all depends on real
	// crash recovery, so consumers should treat presence as informational.
	EvWorkerSpawn = "worker-spawn"
	// EvWorkerDead records a worker process (Node) the backend declared
	// permanently failed — it could not be respawned within the restart
	// budget — whose tasks drain onto live nodes.
	EvWorkerDead = "worker-dead"
	// EvRPCRetry reports a round's worker-RPC retry total (Records) at
	// round end. Per-RPC incidents are counted, not traced: they happen on
	// task goroutines where emitting would scramble sequence numbers. The
	// count is volatile, like the wall-clock fields.
	EvRPCRetry = "rpc-retry"
)

// TraceEvent is one structured engine lifecycle event. Numeric fields are
// populated per event type (see the Ev* constants); unused fields are
// zero and omitted from the JSON form. Time is the only field excluded
// from the determinism contract.
type TraceEvent struct {
	// Seq numbers events consecutively per engine, in delivery order.
	Seq int64 `json:"seq"`
	// Time is the wall-clock timestamp the event was recorded at. It is
	// excluded from the determinism contract.
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Round is the engine's 0-based round counter; Job the round's name.
	Round int    `json:"round"`
	Job   string `json:"job"`
	// Phase and Task identify the task for task-level events; Task is -1
	// on round-level events (round-start, shuffle, round-end).
	Phase   string `json:"phase,omitempty"`
	Task    int    `json:"task"`
	Attempt int    `json:"attempt,omitempty"`
	// Tasks/Reducers are the round's map and reduce task counts
	// (round-start only).
	Tasks    int `json:"tasks,omitempty"`
	Reducers int `json:"reducers,omitempty"`
	// Records/Bytes quantify the event's data volume: task output on
	// task-success, shuffle volume on shuffle, spilled bytes on spill,
	// round output on round-end.
	Records int64 `json:"records,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	// CPUSeconds is the successful attempt's simulated CPU charge
	// (task-success only); SimSeconds the round's simulated duration
	// (round-end only). Both are deterministic, unlike wall time, which
	// trace events deliberately do not carry.
	CPUSeconds float64 `json:"cpuSeconds,omitempty"`
	SimSeconds float64 `json:"simSeconds,omitempty"`
	// Fault is the injected fault kind (fault-injected only).
	Fault string `json:"fault,omitempty"`
	// Node is the failure domain a node-crash killed or a fetch-fail lost
	// its map output on (node-crash and fetch-fail only).
	Node int `json:"node,omitempty"`
	// Err describes the failure on task-retry/task-failure, and the round's
	// FailReason on a failed round-end.
	Err string `json:"err,omitempty"`
	// Failed marks a failed round's round-end event.
	Failed bool `json:"failed,omitempty"`
	// Mode and Drift describe a maintenance cycle's delta-vs-rebuild
	// decision (maint-start only).
	Mode  string  `json:"mode,omitempty"`
	Drift float64 `json:"drift,omitempty"`
}

// JSONLTracer writes one JSON object per event (JSON Lines) to an
// io.Writer — the bundled sink behind the CLIs' -trace flag. It locks
// around writes so one sink may be shared by several engines.
type JSONLTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLTracer creates a JSON-lines tracer writing to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w)}
}

// TraceEvent writes the event as one JSON line.
func (t *JSONLTracer) TraceEvent(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Encode errors are unreportable mid-run; tracing is best-effort.
	_ = t.enc.Encode(e)
}

// SliceTracer collects events in memory, for tests and programmatic
// inspection.
type SliceTracer struct {
	Events []TraceEvent
}

// TraceEvent appends the event.
func (t *SliceTracer) TraceEvent(e TraceEvent) { t.Events = append(t.Events, e) }

// roundTracer buffers one round's task-level events per task while the
// phase's tasks run concurrently, and flushes them in task-index order at
// the phase barrier, keeping the delivered stream deterministic at any
// parallelism. A nil roundTracer (tracing disabled) is inert: every method
// is a nil-receiver no-op, so the engine calls them unconditionally without
// allocating.
type roundTracer struct {
	eng   *Engine
	round int
	job   string
	buf   [][]TraceEvent
}

// tracerFor returns the round's tracer, or nil when tracing is disabled.
func (e *Engine) tracerFor(round int, job string) *roundTracer {
	if e.Cfg.Tracer == nil {
		return nil
	}
	return &roundTracer{eng: e, round: round, job: job}
}

// emit stamps the sequence number and delivers one event. Only called from
// the engine's run goroutine (round-level events and barrier flushes), so
// the counter needs no synchronization.
func (t *roundTracer) emit(ev TraceEvent) {
	ev.Seq = t.eng.traceSeq
	t.eng.traceSeq++
	t.eng.Cfg.Tracer.TraceEvent(ev)
}

// event fills the round coordinates and emits a round-level event.
func (t *roundTracer) event(ev TraceEvent) {
	if t == nil {
		return
	}
	ev.Time = time.Now()
	ev.Round = t.round
	ev.Job = t.job
	ev.Task = -1
	t.emit(ev)
}

// startPhase sizes the per-task buffers for a phase of n tasks.
func (t *roundTracer) startPhase(n int) {
	if t == nil {
		return
	}
	t.buf = make([][]TraceEvent, n)
}

// add buffers a task-level event. Safe to call from the task's worker
// goroutine: each task appends only to its own buffer.
func (t *roundTracer) add(phase Phase, task int, ev TraceEvent) {
	if t == nil {
		return
	}
	ev.Time = time.Now()
	ev.Round = t.round
	ev.Job = t.job
	ev.Phase = phase.String()
	ev.Task = task
	t.buf[task] = append(t.buf[task], ev)
}

// flushPhase delivers the buffered task events in task-index order.
func (t *roundTracer) flushPhase() {
	if t == nil {
		return
	}
	for _, events := range t.buf {
		for _, ev := range events {
			t.emit(ev)
		}
	}
	t.buf = nil
}

func (t *roundTracer) roundStart(mappers, reducers int) {
	t.event(TraceEvent{Type: EvRoundStart, Tasks: mappers, Reducers: reducers})
}

// attemptStart records a task attempt starting, plus the armed fault when
// injection targets the attempt.
func (t *roundTracer) attemptStart(phase Phase, task, attempt int, inj *injector) {
	if t == nil {
		return
	}
	t.add(phase, task, TraceEvent{Type: EvTaskStart, Attempt: attempt})
	if inj != nil {
		t.add(phase, task, TraceEvent{Type: EvFaultInjected, Attempt: attempt, Fault: inj.fault.Kind.String()})
	}
}

// attemptRetry records a failed attempt that will be re-executed.
func (t *roundTracer) attemptRetry(phase Phase, task, attempt int, err error) {
	if t == nil {
		return
	}
	t.add(phase, task, TraceEvent{Type: EvTaskRetry, Attempt: attempt, Err: err.Error()})
}

// attemptFailure records a permanent task failure.
func (t *roundTracer) attemptFailure(phase Phase, task, attempt int, err error) {
	if t == nil {
		return
	}
	t.add(phase, task, TraceEvent{Type: EvTaskFailure, Attempt: attempt, Err: err.Error()})
}

// taskSuccess records a task completing. Spill events are not synthesized
// here: the spill writer fires them itself, per flush, as they happen.
func (t *roundTracer) taskSuccess(phase Phase, task, attempt int, tm *TaskMetrics) {
	if t == nil {
		return
	}
	records, bytes := tm.OutRecords, tm.OutBytes
	if phase == PhaseReduce {
		records += tm.SideRecords
		bytes += tm.SideBytes
	}
	t.add(phase, task, TraceEvent{
		Type: EvTaskSuccess, Attempt: attempt,
		Records: records, Bytes: bytes, CPUSeconds: tm.CPUSeconds,
	})
}

// speculate records a backup attempt launching against a stalled original.
func (t *roundTracer) speculate(phase Phase, task, attempt int) {
	if t == nil {
		return
	}
	t.add(phase, task, TraceEvent{Type: EvSpeculate, Attempt: attempt})
}

// nodeCrash records a failure domain dying at the round's shuffle barrier.
func (t *roundTracer) nodeCrash(node int) {
	t.event(TraceEvent{Type: EvNodeCrash, Node: node})
}

// backendEvent delivers an execution-backend lifecycle event (worker-spawn,
// worker-dead). Handed to the backend through RoundHooks; safe on a nil
// tracer, and must only be called from the run goroutine (RoundStart /
// CrashNodes) so sequence numbering stays deterministic.
func (t *roundTracer) backendEvent(ev TraceEvent) {
	t.event(ev)
}

// fetchFail records map task task's completed output (stored on the dead
// node) being unfetchable by the round's reducers. Called from the run
// goroutine at the shuffle barrier, between the map and re-execution
// phases, so it emits directly rather than buffering.
func (t *roundTracer) fetchFail(task, node, reducers int) {
	if t == nil {
		return
	}
	t.emit(TraceEvent{
		Time: time.Now(), Type: EvFetchFail, Round: t.round, Job: t.job,
		Phase: PhaseMap.String(), Task: task, Node: node, Records: int64(reducers),
	})
}

func (t *roundTracer) shuffle(rm *RoundMetrics) {
	t.event(TraceEvent{Type: EvShuffle, Records: rm.ShuffleRecords, Bytes: rm.ShuffleBytes})
}

func (t *roundTracer) roundEnd(rm *RoundMetrics) {
	t.event(TraceEvent{
		Type: EvRoundEnd, Records: rm.OutputRecords, Bytes: rm.OutputBytes,
		SimSeconds: rm.SimSeconds, Failed: rm.Failed, Err: rm.FailReason,
	})
}
