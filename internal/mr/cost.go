package mr

// CostModel converts the engine's exact record/byte accounting into
// simulated wall-clock seconds. The paper's effects — skew-induced spills,
// shuffle volume, multi-round overhead — are network- and disk-dominated,
// which an in-process run cannot exhibit directly, so experiments report
// this simulated time alongside real wall-clock. All algorithms share one
// model; they differ only in the operations they actually perform, which the
// engine counts.
//
// The defaults are calibrated to the paper's testbed (20×m3.xlarge, Hadoop
// 2.4) under the experiments' 1000× data down-scaling: each simulated record
// stands for ~1000 real records, so per-record CPU costs are the paper-scale
// microseconds multiplied by 1000, and bandwidths are divided by 1000, while
// the per-round startup (Hadoop job scheduling and JVM spin-up, which does
// not scale with data) stays at its real-world tens of seconds. This keeps
// the relative weight of CPU, network, spill and startup at sweep sizes of
// 10^4-10^5 tuples the same as the paper's at 10^7-10^8.
type CostModel struct {
	// MapCPUPerRecord is charged for every map input record.
	MapCPUPerRecord float64
	// MapCPUPerEmit is charged for every record emitted by a mapper
	// (serialization + collector). Hadoop's collector sorts its buffer
	// per spill, so the engine's map-side bucket sort — and with it the
	// reduce-side merge it enables — is part of this per-emit charge, not
	// a separate term; see DESIGN.md §11.
	MapCPUPerEmit float64
	// CPUPerOp is charged per algorithm-reported elementary operation
	// (hash probe, lattice-node visit); see Ctx.ChargeOps.
	CPUPerOp float64
	// CombineCPUPerRecord is charged per combiner input record.
	CombineCPUPerRecord float64
	// ReduceCPUPerRecord is charged per reduce input record.
	ReduceCPUPerRecord float64
	// ReduceCPUPerEmit is charged per reducer output record.
	ReduceCPUPerEmit float64
	// NetBytesPerSec is the aggregate cluster shuffle bandwidth.
	NetBytesPerSec float64
	// NodeNetBytesPerSec bounds a single reducer's receive bandwidth; a
	// reducer that attracts a disproportionate share of the shuffle
	// becomes the transfer bottleneck.
	NodeNetBytesPerSec float64
	// DiskBytesPerSec is the spill device bandwidth. Since the out-of-core
	// shuffle landed, the bytes it divides are real, writer-measured run
	// sizes, not estimates: a map-side flush charges its encoded run once
	// at write time, and the reduce pre-scan charges each run segment once
	// for the read-back — one deterministic pass each, mirroring the
	// physical I/O the engine actually performs.
	DiskBytesPerSec float64
	// SpillPasses is the I/O amplification of reduce-side external
	// aggregation (write + read back + merge of oversized groups); it does
	// not apply to map-side run files, whose write and read are charged
	// individually as they happen.
	SpillPasses float64
	// RoundStartup is the fixed per-MapReduce-round overhead in seconds.
	RoundStartup float64
}

// DefaultCost returns the calibration used by all experiments.
func DefaultCost() CostModel {
	return CostModel{
		MapCPUPerRecord:     4e-3,
		MapCPUPerEmit:       2e-3,
		CPUPerOp:            0.15e-3,
		CombineCPUPerRecord: 1e-3,
		ReduceCPUPerRecord:  1.5e-3,
		ReduceCPUPerEmit:    1.5e-3,
		NetBytesPerSec:      1.2e6, // ~10 Gbit/s aggregate, scaled
		NodeNetBytesPerSec:  120e3, // ~1 Gbit/s per node, scaled
		DiskBytesPerSec:     90e3,
		SpillPasses:         3,
		RoundStartup:        12,
	}
}
