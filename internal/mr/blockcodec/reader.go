package blockcodec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Reader streams the decoded bytes of a framed block sequence: an io.Reader
// that walks blocks one at a time, verifies each payload's CRC before
// decoding it, and serves the decoded bytes. Exactly one block is buffered,
// so memory is O(MaxBlockSize) regardless of stream length.
//
// Errors are sticky and loud: a short header or payload surfaces as
// io.ErrUnexpectedEOF (wrapped), a CRC mismatch or codec failure as a
// descriptive error — a corrupt run file can never silently feed garbage
// records downstream. A clean io.EOF is returned only at a block boundary.
type Reader struct {
	src   *bufio.Reader
	codec Codec
	dec   []byte // current decoded block
	pos   int    // read cursor into dec
	enc   []byte // encoded payload scratch
	err   error
}

// readerBufSize is the Reader's source buffer: big enough that a block
// header plus a typical compressed payload needs one underlying read.
const readerBufSize = 32 << 10

// NewReader creates a Reader decoding r's framed stream through c.
func NewReader(r io.Reader, c Codec) *Reader {
	return &Reader{src: bufio.NewReaderSize(r, readerBufSize), codec: c}
}

// Reset re-points the Reader at a new source stream, reusing its buffers.
func (r *Reader) Reset(src io.Reader) {
	r.src.Reset(src)
	r.dec = r.dec[:0]
	r.pos = 0
	r.err = nil
}

// Read fills p with decoded bytes, crossing block boundaries as needed.
func (r *Reader) Read(p []byte) (int, error) {
	for r.pos >= len(r.dec) {
		if r.err != nil {
			return 0, r.err
		}
		r.err = r.nextBlock()
		if r.err != nil {
			return 0, r.err
		}
	}
	n := copy(p, r.dec[r.pos:])
	r.pos += n
	return n, nil
}

// nextBlock reads, verifies and decodes the next block into r.dec.
func (r *Reader) nextBlock() error {
	rawLen, err := binary.ReadUvarint(r.src)
	if err == io.EOF {
		return io.EOF // clean end: the previous block was the last
	}
	if err != nil {
		return fmt.Errorf("blockcodec: block header: %w", err)
	}
	if rawLen > MaxBlockSize {
		return fmt.Errorf("blockcodec: block claims %d raw bytes, limit %d", rawLen, MaxBlockSize)
	}
	encLen, err := binary.ReadUvarint(r.src)
	if err != nil {
		return fmt.Errorf("blockcodec: block header: %w", noEOF(err))
	}
	// A codec stores at worst a bounded expansion of the raw payload (the
	// raw codec is identity; LZ adds ~1 byte per 255 literals): reject
	// anything bigger before allocating for it.
	if encLen > MaxBlockSize+MaxBlockSize/128+64 {
		return fmt.Errorf("blockcodec: block claims %d encoded bytes for %d raw", encLen, rawLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.src, crcBuf[:]); err != nil {
		return fmt.Errorf("blockcodec: block crc: %w", noEOF(err))
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if cap(r.enc) < int(encLen) {
		r.enc = make([]byte, encLen)
	}
	r.enc = r.enc[:encLen]
	if _, err := io.ReadFull(r.src, r.enc); err != nil {
		return fmt.Errorf("blockcodec: block payload: %w", noEOF(err))
	}
	if got := crc32.Checksum(r.enc, crcTable); got != want {
		return fmt.Errorf("blockcodec: block crc mismatch: stored %08x, computed %08x", want, got)
	}
	r.dec, err = r.codec.Decode(r.dec[:0], r.enc, int(rawLen))
	if err != nil {
		return err
	}
	if len(r.dec) != int(rawLen) {
		return fmt.Errorf("blockcodec: block decoded to %d bytes, frame says %d", len(r.dec), rawLen)
	}
	r.pos = 0
	return nil
}

// noEOF upgrades a mid-structure io.EOF to io.ErrUnexpectedEOF so callers
// cannot mistake a truncated block for a clean stream end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
