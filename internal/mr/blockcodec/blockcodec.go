// Package blockcodec frames byte streams into self-describing, individually
// checksummed, optionally compressed blocks — the on-disk unit of the MR
// engine's spill run files.
//
// A framed stream is a sequence of blocks, each:
//
//	rawLen   — uvarint, decompressed payload length
//	encLen   — uvarint, encoded payload length as stored
//	crc      — 4 bytes little-endian, CRC-32C (Castagnoli) of the stored
//	           payload bytes
//	payload  — encLen bytes, Codec-encoded form of rawLen raw bytes
//
// Blocks are self-describing: a reader needs no out-of-band index to walk
// them, and every block is verified against its CRC before it is decoded,
// so a truncated or corrupted run file fails loudly instead of merging
// garbage. The frame layer is codec-agnostic; the codec that encoded a
// stream must be known to the reader (the engine fixes it per run).
package blockcodec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Codec encodes and decodes one block payload. Implementations must be
// stateless and safe for concurrent use: one Codec value is shared by every
// concurrently spilling task attempt.
type Codec interface {
	// Name is the codec's registry name ("raw", "lz").
	Name() string
	// Encode appends the encoded form of src to dst and returns the
	// extended slice. Encode never fails: a codec that cannot beat the raw
	// size may store an expansion (the frame records both lengths).
	Encode(dst, src []byte) []byte
	// Decode appends the decoded form of src to dst and returns the
	// extended slice. rawLen is the expected decoded length from the frame
	// header; implementations must error — not panic — on any malformed
	// input, including inputs that decode to a different length.
	Decode(dst, src []byte, rawLen int) ([]byte, error)
}

// MaxBlockSize bounds a block's raw payload. It keeps LZ match offsets
// within 16 bits and bounds a reader's per-block buffer memory.
const MaxBlockSize = 64 << 10

// DefaultBlockSize is the raw payload size writers aim for per block: big
// enough to amortize the ~11-byte frame header and give the LZ window
// material to match against, small enough to bound a reader's working set.
const DefaultBlockSize = MaxBlockSize

// crcTable is the Castagnoli polynomial table shared by all blocks.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ByName resolves a codec by registry name; the empty string means "raw".
func ByName(name string) (Codec, error) {
	switch name {
	case "", "raw":
		return Raw{}, nil
	case "lz":
		return LZ{}, nil
	}
	return nil, fmt.Errorf("blockcodec: unknown codec %q (want raw or lz)", name)
}

// Names lists the registered codec names.
func Names() []string { return []string{"raw", "lz"} }

// AppendBlock frames src as one block — encoded through c — and appends the
// frame to dst. scratch is a reusable encode buffer; pass the returned one
// back in to amortize its allocation. src must be at most MaxBlockSize
// bytes; larger payloads must be split by the caller.
func AppendBlock(dst []byte, c Codec, src, scratch []byte) (out, newScratch []byte) {
	if len(src) > MaxBlockSize {
		panic(fmt.Sprintf("blockcodec: block payload %d exceeds MaxBlockSize %d", len(src), MaxBlockSize))
	}
	enc := c.Encode(scratch[:0], src)
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	dst = binary.AppendUvarint(dst, uint64(len(enc)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(enc, crcTable))
	dst = append(dst, crc[:]...)
	dst = append(dst, enc...)
	return dst, enc
}

// AppendAll splits src into DefaultBlockSize payloads and appends one frame
// per payload to dst — the whole-buffer convenience over AppendBlock.
func AppendAll(dst []byte, c Codec, src, scratch []byte) (out, newScratch []byte) {
	for len(src) > 0 {
		n := len(src)
		if n > DefaultBlockSize {
			n = DefaultBlockSize
		}
		dst, scratch = AppendBlock(dst, c, src[:n], scratch)
		src = src[n:]
	}
	return dst, scratch
}
