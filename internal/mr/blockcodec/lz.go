package blockcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LZ is a small LZ77-style byte codec in the LZ4 family, written against
// this package's block framing: match offsets are 16-bit, so it is only
// valid for payloads up to MaxBlockSize (the window is the whole block).
// Sorted, front-coded cube runs are highly self-similar — record framing
// varints and aggregate-state values repeat block-wide — which a greedy
// hash-table matcher captures well at near-memcpy decode speed.
//
// Token stream format. Each token is:
//
//	token     — 1 byte: high nibble literal length, low nibble match length
//	litExt    — if the literal nibble is 15: extension bytes, each 0..255
//	            added to the length, terminated by the first byte < 255
//	literals  — literal bytes
//	offset    — if the match nibble m > 0: 2 bytes little-endian, distance
//	            back into the output (1..65535)
//	matchExt  — if m == 15: extension bytes as for literals
//
// A match nibble m in 1..14 encodes a copy of m+3 bytes (minimum match 4);
// m == 15 encodes 18 plus the extension. m == 0 means the token carries
// literals only — how a stream ends when trailing bytes match nothing.
type LZ struct{}

// Name returns "lz".
func (LZ) Name() string { return "lz" }

const (
	lzMinMatch  = 4
	lzTableBits = 13
	lzMaxOffset = 1<<16 - 1
)

func lzHash(v uint32) uint32 { return (v * 2654435761) >> (32 - lzTableBits) }

// Encode appends the LZ form of src to dst. src must be at most
// MaxBlockSize bytes (the frame layer enforces this); Encode is
// deterministic, so identical payloads produce identical blocks.
func (LZ) Encode(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [1 << lzTableBits]int32 // candidate position + 1; 0 = empty
	litStart, pos := 0, 0
	limit := len(src) - lzMinMatch
	for pos <= limit {
		seq := binary.LittleEndian.Uint32(src[pos:])
		h := lzHash(seq)
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand >= 0 && pos-cand <= lzMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == seq {
			ml := lzMinMatch
			for pos+ml < len(src) && src[cand+ml] == src[pos+ml] {
				ml++
			}
			dst = lzEmit(dst, src[litStart:pos], ml, pos-cand)
			pos += ml
			litStart = pos
			continue
		}
		pos++
	}
	if litStart < len(src) {
		dst = lzEmit(dst, src[litStart:], 0, 0)
	}
	return dst
}

// lzEmit appends one token: lit literals followed, when matchLen > 0, by a
// copy of matchLen bytes from offset back.
func lzEmit(dst, lit []byte, matchLen, offset int) []byte {
	litNib := len(lit)
	if litNib > 15 {
		litNib = 15
	}
	matchNib := 0
	if matchLen > 0 {
		matchNib = matchLen - lzMinMatch + 1
		if matchNib > 15 {
			matchNib = 15
		}
	}
	dst = append(dst, byte(litNib<<4|matchNib))
	if litNib == 15 {
		rem := len(lit) - 15
		for rem >= 255 {
			dst = append(dst, 255)
			rem -= 255
		}
		dst = append(dst, byte(rem))
	}
	dst = append(dst, lit...)
	if matchLen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if matchNib == 15 {
			rem := matchLen - (lzMinMatch + 14)
			for rem >= 255 {
				dst = append(dst, 255)
				rem -= 255
			}
			dst = append(dst, byte(rem))
		}
	}
	return dst
}

var errLZTruncated = errors.New("blockcodec: truncated lz block")

// Decode appends the decoded form of src to dst. Every malformed input —
// truncated tokens, offsets pointing before the block start, output longer
// or shorter than the frame's rawLen — returns an error; Decode never
// panics and never grows the output past rawLen.
func (LZ) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		t := src[0]
		src = src[1:]
		litLen := int(t >> 4)
		if litLen == 15 {
			for {
				if len(src) == 0 {
					return dst, errLZTruncated
				}
				b := src[0]
				src = src[1:]
				litLen += int(b)
				if b < 255 {
					break
				}
			}
		}
		if litLen > len(src) {
			return dst, errLZTruncated
		}
		if len(dst)-base+litLen > rawLen {
			return dst, fmt.Errorf("blockcodec: lz block decodes past its %d-byte frame length", rawLen)
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		matchNib := int(t & 15)
		if matchNib == 0 {
			continue
		}
		if len(src) < 2 {
			return dst, errLZTruncated
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		matchLen := matchNib + lzMinMatch - 1
		if matchNib == 15 {
			for {
				if len(src) == 0 {
					return dst, errLZTruncated
				}
				b := src[0]
				src = src[1:]
				matchLen += int(b)
				if b < 255 {
					break
				}
			}
		}
		if offset == 0 || offset > len(dst)-base {
			return dst, fmt.Errorf("blockcodec: lz match offset %d outside the %d bytes decoded so far", offset, len(dst)-base)
		}
		if len(dst)-base+matchLen > rawLen {
			return dst, fmt.Errorf("blockcodec: lz block decodes past its %d-byte frame length", rawLen)
		}
		// Byte-at-a-time copy: matches may overlap their own output
		// (offset < matchLen replicates a short period), which bulk copy
		// would corrupt.
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[len(dst)-offset])
		}
	}
	if len(dst)-base != rawLen {
		return dst, fmt.Errorf("blockcodec: lz block decoded to %d bytes, frame says %d", len(dst)-base, rawLen)
	}
	return dst, nil
}
