package blockcodec

import "fmt"

// Raw is the identity codec: blocks are stored uncompressed. It is the
// default, keeps the frame layer (lengths + CRC) without any CPU cost, and
// is the baseline the LZ codec is benchmarked against.
type Raw struct{}

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// Encode appends src unchanged.
func (Raw) Encode(dst, src []byte) []byte { return append(dst, src...) }

// Decode appends src unchanged, verifying the frame's expected length.
func (Raw) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	if len(src) != rawLen {
		return dst, fmt.Errorf("blockcodec: raw block is %d bytes, frame says %d", len(src), rawLen)
	}
	return append(dst, src...), nil
}
