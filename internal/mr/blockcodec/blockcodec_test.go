package blockcodec

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// codecs returns every registered codec.
func codecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
		cs = append(cs, c)
	}
	return cs
}

func TestByName(t *testing.T) {
	c, err := ByName("")
	if err != nil || c.Name() != "raw" {
		t.Fatalf("ByName(\"\") = %v, %v; want raw", c, err)
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("ByName(\"zstd\") did not fail")
	}
}

// testPayloads is a grab bag of adversarial payload shapes: empty-ish,
// incompressible, runs, short periods (overlapping matches), and
// front-coded-looking record streams.
func testPayloads() [][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 3000)
	rng.Read(random)
	big := make([]byte, MaxBlockSize)
	for i := range big {
		big[i] = byte(i / 100)
	}
	return [][]byte{
		{0},
		{1, 2, 3},
		[]byte("abcd"),
		bytes.Repeat([]byte{'x'}, 300),  // period 1: overlap copy
		bytes.Repeat([]byte("ab"), 200), // period 2
		bytes.Repeat([]byte("0123456789abcde"), 99), // period 15
		random,
		append(bytes.Repeat([]byte("key:000"), 64), random[:100]...),
		[]byte(strings.Repeat("\x02\x01a\x08count=1", 500)), // record-ish
		big,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range codecs(t) {
		for i, payload := range testPayloads() {
			enc := c.Encode(nil, payload)
			dec, err := c.Decode(nil, enc, len(payload))
			if err != nil {
				t.Fatalf("%s payload %d: decode: %v", c.Name(), i, err)
			}
			if !bytes.Equal(dec, payload) {
				t.Fatalf("%s payload %d: round trip mismatch (%d -> %d -> %d bytes)",
					c.Name(), i, len(payload), len(enc), len(dec))
			}
		}
	}
}

func TestLZCompresses(t *testing.T) {
	payload := []byte(strings.Repeat("\x02\x01a\x08count=1", 500))
	enc := LZ{}.Encode(nil, payload)
	if len(enc)*2 > len(payload) {
		t.Fatalf("lz encoded %d bytes to %d; want at least 2x reduction on a repetitive payload",
			len(payload), len(enc))
	}
}

// TestFramedStream frames several blocks and streams them back through
// Reader, for every codec.
func TestFramedStream(t *testing.T) {
	for _, c := range codecs(t) {
		var want, framed, scratch []byte
		for _, payload := range testPayloads() {
			want = append(want, payload...)
			framed, scratch = AppendAll(framed, c, payload, scratch)
		}
		got, err := io.ReadAll(NewReader(bytes.NewReader(framed), c))
		if err != nil {
			t.Fatalf("%s: stream read: %v", c.Name(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: streamed %d bytes, want %d", c.Name(), len(got), len(want))
		}
	}
}

// TestReaderReset reuses one Reader across streams.
func TestReaderReset(t *testing.T) {
	c := LZ{}
	a, _ := AppendAll(nil, c, []byte("first stream"), nil)
	b, _ := AppendAll(nil, c, bytes.Repeat([]byte("second"), 50), nil)
	r := NewReader(bytes.NewReader(a), c)
	if got, err := io.ReadAll(r); err != nil || string(got) != "first stream" {
		t.Fatalf("first read: %q, %v", got, err)
	}
	r.Reset(bytes.NewReader(b))
	if got, err := io.ReadAll(r); err != nil || !bytes.Equal(got, bytes.Repeat([]byte("second"), 50)) {
		t.Fatalf("reset read: %d bytes, %v", len(got), err)
	}
}

// TestTruncatedStream asserts every proper prefix of a framed stream fails
// with an error — never a silent short read, never a panic.
func TestTruncatedStream(t *testing.T) {
	for _, c := range codecs(t) {
		framed, _ := AppendAll(nil, c, []byte(strings.Repeat("payload ", 40)), nil)
		want, _ := io.ReadAll(NewReader(bytes.NewReader(framed), c))
		for cut := 1; cut < len(framed); cut++ {
			got, err := io.ReadAll(NewReader(bytes.NewReader(framed[:cut]), c))
			if err == nil && !bytes.Equal(got, want) {
				t.Fatalf("%s: prefix %d/%d read %d bytes with nil error", c.Name(), cut, len(framed), len(got))
			}
		}
	}
}

// TestCorruptedStream flips one byte at every position and requires the
// Reader to either error out or (for flips in an unread region) still never
// return wrong bytes without an error. CRC makes a silent wrong read
// impossible; spot-check every position.
func TestCorruptedStream(t *testing.T) {
	for _, c := range codecs(t) {
		payload := []byte(strings.Repeat("the quick brown fox ", 30))
		framed, _ := AppendAll(nil, c, payload, nil)
		for i := range framed {
			mut := append([]byte(nil), framed...)
			mut[i] ^= 0x40
			got, err := io.ReadAll(NewReader(bytes.NewReader(mut), c))
			if err == nil && !bytes.Equal(got, payload) {
				t.Fatalf("%s: flipped byte %d: wrong data with nil error", c.Name(), i)
			}
		}
	}
}

// FuzzBlockCodec is the exhaustive round-trip fuzzer of the tentpole: for
// every codec, (1) any payload must survive encode -> frame -> stream-read
// byte-for-byte, and (2) the fuzz input interpreted as a framed stream —
// truncated blocks, garbage headers, bad CRCs — must decode or error, never
// panic, and a nil error must never accompany wrong bytes.
func FuzzBlockCodec(f *testing.F) {
	for _, payload := range testPayloads() {
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Names() {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			payload := data
			if len(payload) > MaxBlockSize {
				payload = payload[:MaxBlockSize]
			}
			framed, _ := AppendAll(nil, c, payload, nil)
			got, err := io.ReadAll(NewReader(bytes.NewReader(framed), c))
			if err != nil {
				t.Fatalf("%s: round trip of %d bytes: %v", name, len(payload), err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: round trip of %d bytes returned %d different bytes", name, len(payload), len(got))
			}
			// Adversarial leg: the raw fuzz input as a framed stream.
			_, _ = io.ReadAll(NewReader(bytes.NewReader(data), c))
			// And as a bare block payload.
			_, _ = c.Decode(nil, data, len(data)%(MaxBlockSize+1))
		}
	})
}
