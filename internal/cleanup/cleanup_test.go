package cleanup

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOnSignalRunsTeardown delivers a real SIGINT to the test process and
// asserts the handler removes the guarded directory before exiting with
// the conventional 130 (128+SIGINT) status. exit is injected so the test
// binary survives its own interrupt.
func TestOnSignalRunsTeardown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-m-1"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	exited := make(chan int, 1)
	stop := OnSignal(
		func() { os.RemoveAll(dir) },
		func(code int) { exited <- code },
		os.Interrupt,
	)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Errorf("exit code %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler did not fire")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir survived the interrupt: stat err = %v", err)
	}
}

// TestNotifyContextTwoStage delivers two SIGINTs: the first must cancel
// the context without running the teardown (the graceful path), the second
// must run the teardown and exit 130.
func TestNotifyContextTwoStage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	exited := make(chan int, 1)
	ctx, stop := NotifyContext(context.Background(),
		func() { os.RemoveAll(dir) },
		func(code int) { exited <- code },
		os.Interrupt,
	)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("teardown ran on the first (graceful) signal: stat err = %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Errorf("exit code %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force the exit path")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir survived the forced exit: stat err = %v", err)
	}
}

// TestNotifyContextStopUninstalls verifies stop releases the handler
// goroutine and cancels the context on the normal return path.
func TestNotifyContextStopUninstalls(t *testing.T) {
	ran := false
	ctx, stop := NotifyContext(context.Background(), func() { ran = true }, func(int) {}, os.Interrupt)
	stop() // must not hang
	if ran {
		t.Error("teardown ran without a signal")
	}
	select {
	case <-ctx.Done():
	default:
		t.Error("stop did not cancel the context")
	}
}

// TestOnSignalStopUninstalls verifies stop removes the handler: a later
// teardown must not fire (the signal would then hit Go's default handler,
// so the test delivers none — it only checks the goroutine is released).
func TestOnSignalStopUninstalls(t *testing.T) {
	ran := false
	stop := OnSignal(func() { ran = true }, func(int) {}, os.Interrupt)
	stop() // must not hang
	if ran {
		t.Error("teardown ran without a signal")
	}
}
