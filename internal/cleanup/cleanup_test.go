package cleanup

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOnSignalRunsTeardown delivers a real SIGINT to the test process and
// asserts the handler removes the guarded directory before exiting with
// the conventional 130 (128+SIGINT) status. exit is injected so the test
// binary survives its own interrupt.
func TestOnSignalRunsTeardown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-m-1"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	exited := make(chan int, 1)
	stop := OnSignal(
		func() { os.RemoveAll(dir) },
		func(code int) { exited <- code },
		os.Interrupt,
	)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Errorf("exit code %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler did not fire")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir survived the interrupt: stat err = %v", err)
	}
}

// TestOnSignalStopUninstalls verifies stop removes the handler: a later
// teardown must not fire (the signal would then hit Go's default handler,
// so the test delivers none — it only checks the goroutine is released).
func TestOnSignalStopUninstalls(t *testing.T) {
	ran := false
	stop := OnSignal(func() { ran = true }, func(int) {}, os.Interrupt)
	stop() // must not hang
	if ran {
		t.Error("teardown ran without a signal")
	}
}
