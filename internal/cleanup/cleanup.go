// Package cleanup runs teardown functions when a process is interrupted.
//
// The CLIs rely on deferred cleanup (spill temp directories, output
// flushes) that a SIGINT or SIGTERM would skip: Go's default handler
// exits the process immediately, leaking whatever the deferred calls
// would have removed. OnSignal installs a handler that runs the given
// teardown first and then exits with the conventional 128+signum status,
// so an interrupted run leaves no spill directories behind. NotifyContext
// adds a graceful stage in front: the first signal cancels a context so
// the engine can unwind cleanly (reaping worker processes and running the
// deferred cleanup on the normal return path), and only a second signal
// forces the teardown-and-exit path.
package cleanup

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// OnSignal runs fn and then exit(128+signum) when sig (or any of sigs)
// arrives. It returns a stop function that uninstalls the handler —
// callers defer it so a normal return restores default signal behavior.
// exit is a parameter (os.Exit in production) so tests can observe the
// teardown without losing the process.
func OnSignal(fn func(), exit func(code int), sigs ...os.Signal) (stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig, ok := <-ch
		if !ok {
			return
		}
		fn()
		exit(128 + signum(sig))
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
		<-done
	}
}

// NotifyContext installs a two-stage interrupt handler: the first SIGINT
// or SIGTERM cancels the returned context — the engine stops in-flight
// rounds at the next attempt boundary, worker processes are reaped, and
// the CLI's deferred cleanup runs on the normal return path — while a
// second signal gives up on graceful shutdown, runs fn (the last-resort
// teardown, e.g. removing the spill root) and exits with 128+signum.
// The returned stop uninstalls the handler and must be called (deferred)
// before the process returns normally.
func NotifyContext(parent context.Context, fn func(), exit func(code int), sigs ...os.Signal) (ctx context.Context, stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	cctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := <-ch; !ok {
			return
		}
		cancel()
		sig, ok := <-ch
		if !ok {
			return
		}
		fn()
		exit(128 + signum(sig))
	}()
	return cctx, func() {
		signal.Stop(ch)
		close(ch)
		<-done
		cancel()
	}
}

// signum extracts the numeric signal (2 for SIGINT, 15 for SIGTERM);
// unknown signal types map to 0, i.e. plain exit status 128.
func signum(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return int(s)
	}
	return 0
}
