package data

import (
	"math/rand"
	"strconv"

	"github.com/spcube/spcube/internal/relation"
)

// This file is the streaming face of the generators: every dataset can be
// produced one row at a time, in O(1) memory, without materializing a
// relation — cmd/gendata pipes rows straight to CSV. Each streamer draws
// from its rand.Rand in exactly the order of the materializing generator
// with the same parameters, so the streamed rows are byte-for-byte the rows
// GenBinomial/Uniform/GenZipf/WikiTraffic/USAGov/Retail would have written
// (TestStreamMatchesMaterialized pins this).

// Stream yields one dataset's rows one at a time.
type Stream struct {
	// Header is the CSV header: the dimension names then the measure name.
	Header []string
	n, i   int
	next   func(row []string)
}

// Next fills row (len(Header): dimension strings then the measure) with
// the next data row, returning false once all rows have been produced.
func (s *Stream) Next(row []string) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	s.next(row)
	return true
}

// numRow renders numeric dims and the measure the way writeCSV renders a
// dictionary-less relation (DimString falls back to the decimal form).
func numRow(row []string, dims []relation.Value, measure int64) {
	for i, v := range dims {
		row[i] = strconv.FormatInt(int64(v), 10)
	}
	row[len(dims)] = strconv.FormatInt(measure, 10)
}

// numHeader mirrors newRel's schema: dimensions named a1..aD.
func numHeader(d int, measure string) []string {
	h := make([]string, d+1)
	for i := 0; i < d; i++ {
		h[i] = "a" + strconv.Itoa(i+1)
	}
	h[d] = measure
	return h
}

// StreamBinomial streams GenBinomial's rows.
func StreamBinomial(n, d int, p float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	weights := zipfWeights(20, 2.0)
	dims := make([]relation.Value, d)
	return &Stream{Header: numHeader(d, "count"), n: n, next: func(row []string) {
		if rng.Float64() < p {
			v := relation.Value(1 + sampleWeighted(rng, weights))
			for j := range dims {
				dims[j] = v
			}
		} else {
			for j := range dims {
				dims[j] = rng.Int31()
			}
		}
		numRow(row, dims, 1)
	}}
}

// StreamUniform streams Uniform's rows.
func StreamUniform(n, d, card int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	dims := make([]relation.Value, d)
	return &Stream{Header: numHeader(d, "count"), n: n, next: func(row []string) {
		for j := range dims {
			dims[j] = relation.Value(rng.Intn(card))
		}
		numRow(row, dims, 1)
	}}
}

// StreamZipf streams GenZipf's rows.
func StreamZipf(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	z1 := rand.NewZipf(rng, 1.1, 1, 999)
	z2 := rand.NewZipf(rng, 1.1, 1, 999)
	dims := make([]relation.Value, 4)
	return &Stream{Header: numHeader(4, "count"), n: n, next: func(row []string) {
		dims[0] = relation.Value(z1.Uint64())
		dims[1] = relation.Value(z2.Uint64())
		dims[2] = relation.Value(rng.Intn(1000))
		dims[3] = relation.Value(rng.Intn(1000))
		numRow(row, dims, 1)
	}}
}

// StreamWiki streams WikiTraffic's rows.
func StreamWiki(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	projZipf := rand.NewZipf(rng, 1.2, 1, 299)
	dims := make([]relation.Value, 4)
	var cum []float64
	total := 0.0
	for _, t := range wikiTemplates {
		total += t.share
		cum = append(cum, total)
	}
	return &Stream{Header: []string{"project", "page", "day", "agent", "views"}, n: n, next: func(row []string) {
		u := rng.Float64()
		hot := -1
		for j, c := range cum {
			if u < c {
				hot = j
				break
			}
		}
		if hot >= 0 {
			dims[0] = wikiTemplates[hot].project
			dims[1] = wikiTemplates[hot].page
		} else {
			dims[0] = relation.Value(10 + projZipf.Uint64())
			dims[1] = relation.Value(1000 + rng.Int31n(int32(max(n/2, 1000))))
		}
		dims[2] = relation.Value(rng.Intn(90))
		dims[3] = relation.Value(rng.Intn(3))
		numRow(row, dims, int64(1+rng.Intn(50)))
	}}
}

// StreamUSAGov streams USAGov's rows.
func StreamUSAGov(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	names := []string{
		"country", "browser", "os", "domain",
		"city", "timezone", "language", "agency", "referrer",
		"hour", "weekday", "https", "shorturl", "campaign", "device",
		"clicks",
	}
	country := weightedDim{vals: []relation.Value{1, 2, 3, 4, 5}, weights: []float64{0.24, 0.10, 0.08, 0.05, 0.03}, tailCard: 200, tailBase: 10}
	browser := weightedDim{vals: []relation.Value{1, 2, 3, 4}, weights: []float64{0.22, 0.17, 0.12, 0.07}, tailCard: 60, tailBase: 10}
	osd := weightedDim{vals: []relation.Value{1, 2, 3}, weights: []float64{0.23, 0.15, 0.10}, tailCard: 30, tailBase: 10}
	domain := weightedDim{vals: []relation.Value{1, 2, 3}, weights: []float64{0.12, 0.08, 0.06}, tailCard: max(n/4, 1000), tailBase: 100}
	dims := make([]relation.Value, 15)
	cityZipf := rand.NewZipf(rng, 1.3, 1, 9999)
	return &Stream{Header: names, n: n, next: func(row []string) {
		dims[0] = country.draw(rng)
		dims[1] = browser.draw(rng)
		dims[2] = osd.draw(rng)
		dims[3] = domain.draw(rng)
		dims[4] = relation.Value(cityZipf.Uint64())
		dims[5] = relation.Value(rng.Intn(24))
		dims[6] = relation.Value(rng.Intn(40))
		dims[7] = relation.Value(rng.Intn(120))
		dims[8] = relation.Value(rng.Int31n(int32(max(n/8, 1000))))
		dims[9] = relation.Value(rng.Intn(24))
		dims[10] = relation.Value(rng.Intn(7))
		dims[11] = relation.Value(rng.Intn(2))
		dims[12] = relation.Value(rng.Int31n(int32(max(n/6, 1000))))
		dims[13] = relation.Value(rng.Intn(500))
		dims[14] = relation.Value(rng.Intn(4))
		numRow(row, dims, 1)
	}}
}

// StreamRetail streams Retail's rows (real string dimensions).
func StreamRetail(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	products := []string{
		"laptop", "keyboard", "printer", "television", "mouse", "monitor",
		"tablet", "phone", "camera", "speaker", "toaster", "air-conditioner",
	}
	cities := []string{
		"Rome", "Paris", "London", "Berlin", "Madrid", "Amsterdam",
		"Vienna", "Prague", "Lisbon", "Athens",
	}
	prodZipf := rand.NewZipf(rng, 1.3, 1, uint64(len(products)-1))
	return &Stream{Header: []string{"name", "city", "year", "sales"}, n: n, next: func(row []string) {
		row[0] = products[prodZipf.Uint64()]
		row[1] = cities[rng.Intn(len(cities))]
		row[2] = strconv.Itoa(2008 + rng.Intn(8))
		row[3] = strconv.FormatInt(int64(1+rng.Intn(5000)), 10)
	}}
}

// StreamByName resolves a dataset name to its streamer with cmd/gendata's
// parameter conventions (p and d apply to binomial, d to uniform).
func StreamByName(name string, n, d int, p float64, seed int64) (*Stream, error) {
	switch name {
	case "binomial":
		return StreamBinomial(n, d, p, seed), nil
	case "uniform":
		return StreamUniform(n, d, 1<<30, seed), nil
	case "zipf":
		return StreamZipf(n, seed), nil
	case "wiki":
		return StreamWiki(n, seed), nil
	case "usagov":
		return StreamUSAGov(n, seed), nil
	case "retail":
		return StreamRetail(n, seed), nil
	}
	// ByName produces the canonical unknown-dataset error.
	_, err := ByName(name)
	return nil, err
}
