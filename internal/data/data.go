// Package data generates the paper's evaluation workloads (§6).
//
// The two real datasets (Wikipedia Traffic Statistics and the USAGOV click
// log) are not redistributable, so generators synthesize relations with the
// distributional fingerprint the paper reports for each: the number of
// dimensions, the approximate ratio of c-groups to tuples, and — most
// importantly for the algorithms under test — the number and relative sizes
// of skewed c-groups. DESIGN.md records the substitutions.
//
// All generators are deterministic functions of their seed.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/spcube/spcube/internal/relation"
)

// GenBinomial builds the paper's gen-binomial dataset: with probability p a
// tuple is one of 20 hot patterns (the value i repeated in all attributes),
// otherwise every attribute is an independent uniform 32-bit integer.
//
// Scaling adaptation: the paper draws the pattern uniformly from {1..20};
// with k = 20 machines and m = n/k that makes every hot group's cardinality
// exactly p·m, i.e. never skewed by Definition 2.7 at any p < 1. At the
// paper's scale the effective memory threshold is far below n/k, so the hot
// groups were skewed; to preserve that intent at simulation scale the
// pattern index is drawn from a Zipf(s=2) distribution over {1..20}, making
// the heaviest patterns exceed m for every tested p while keeping "a
// fraction p of the tuples contribute to skews in each cuboid".
func GenBinomial(n, d int, p float64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := newRel(d, "count")
	weights := zipfWeights(20, 2.0)
	dims := make([]relation.Value, d)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			v := relation.Value(1 + sampleWeighted(rng, weights))
			for j := range dims {
				dims[j] = v
			}
		} else {
			for j := range dims {
				dims[j] = rng.Int31()
			}
		}
		rel.Append(dims, 1)
	}
	return rel
}

// GenZipf builds the paper's gen-zipf dataset: four attributes, two drawn
// from a Zipf distribution with 1000 elements and exponent 1.1, two drawn
// uniformly from 1000 elements.
func GenZipf(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	z1 := rand.NewZipf(rng, 1.1, 1, 999)
	z2 := rand.NewZipf(rng, 1.1, 1, 999)
	rel := newRel(4, "count")
	dims := make([]relation.Value, 4)
	for i := 0; i < n; i++ {
		dims[0] = relation.Value(z1.Uint64())
		dims[1] = relation.Value(z2.Uint64())
		dims[2] = relation.Value(rng.Intn(1000))
		dims[3] = relation.Value(rng.Intn(1000))
		rel.Append(dims, 1)
	}
	return rel
}

// Uniform builds a relation with d independent uniform attributes of the
// given cardinality. With a very large cardinality it approximates the
// "skewness-monotonic" case of Proposition 5.5 (no skews below the apex).
func Uniform(n, d, card int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := newRel(d, "count")
	dims := make([]relation.Value, d)
	for i := 0; i < n; i++ {
		for j := range dims {
			dims[j] = relation.Value(rng.Intn(card))
		}
		rel.Append(dims, 1)
	}
	return rel
}

// wikiTemplate is one hot (project, page) pair with its traffic share.
type wikiTemplate struct {
	project relation.Value
	page    relation.Value
	share   float64
}

var wikiTemplates = []wikiTemplate{
	{1, 101, 0.080},
	{2, 105, 0.070},
	{1, 102, 0.060},
	{3, 108, 0.060},
	{2, 106, 0.050},
	{1, 103, 0.030},
	{2, 107, 0.030},
	{3, 109, 0.040},
	{1, 104, 0.020},
}

// WikiTraffic synthesizes the Wikipedia Traffic Statistics fingerprint:
// 4 dimensions (project, page, day, agent — day spans a quarter, 90
// values, so that range partitioning the day cuboid is not quantized to a
// handful of reducers); a heavy head of hot
// project/page pairs producing dozens of skewed c-groups of 5-30% of n at
// k=20, over a long uniform tail whose pages are near-distinct, so the
// total c-group count is a large fraction of n (the paper reports ~180M
// c-groups for 300M rows, ~50 of them skewed).
func WikiTraffic(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := &relation.Relation{Schema: relation.Schema{
		DimNames:    []string{"project", "page", "day", "agent"},
		MeasureName: "views",
	}}
	projZipf := rand.NewZipf(rng, 1.2, 1, 299)
	dims := make([]relation.Value, 4)
	var cum []float64
	total := 0.0
	for _, t := range wikiTemplates {
		total += t.share
		cum = append(cum, total)
	}
	for i := 0; i < n; i++ {
		u := rng.Float64()
		hot := -1
		for j, c := range cum {
			if u < c {
				hot = j
				break
			}
		}
		if hot >= 0 {
			dims[0] = wikiTemplates[hot].project
			dims[1] = wikiTemplates[hot].page
		} else {
			dims[0] = relation.Value(10 + projZipf.Uint64())
			dims[1] = relation.Value(1000 + rng.Int31n(int32(max(n/2, 1000))))
		}
		dims[2] = relation.Value(rng.Intn(90))
		dims[3] = relation.Value(rng.Intn(3))
		rel.Append(dims, int64(1+rng.Intn(50)))
	}
	return rel
}

// USAGov synthesizes the USAGOV click-log fingerprint: 15 dimensions of
// mixed cardinality; the paper cubes over 4 of them, finding ~30 skewed
// groups of 6-25% of n and ~20M c-groups for 30M rows. The first four
// dimensions (country, browser, os, domain) are the default cube dimensions
// and carry the skew; the remaining 11 give the relation its width.
func USAGov(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := []string{
		"country", "browser", "os", "domain",
		"city", "timezone", "language", "agency", "referrer",
		"hour", "weekday", "https", "shorturl", "campaign", "device",
	}
	rel := &relation.Relation{Schema: relation.Schema{DimNames: names, MeasureName: "clicks"}}

	country := weightedDim{vals: []relation.Value{1, 2, 3, 4, 5}, weights: []float64{0.24, 0.10, 0.08, 0.05, 0.03}, tailCard: 200, tailBase: 10}
	browser := weightedDim{vals: []relation.Value{1, 2, 3, 4}, weights: []float64{0.22, 0.17, 0.12, 0.07}, tailCard: 60, tailBase: 10}
	osd := weightedDim{vals: []relation.Value{1, 2, 3}, weights: []float64{0.23, 0.15, 0.10}, tailCard: 30, tailBase: 10}
	domain := weightedDim{vals: []relation.Value{1, 2, 3}, weights: []float64{0.12, 0.08, 0.06}, tailCard: max(n/4, 1000), tailBase: 100}

	dims := make([]relation.Value, 15)
	cityZipf := rand.NewZipf(rng, 1.3, 1, 9999)
	for i := 0; i < n; i++ {
		dims[0] = country.draw(rng)
		dims[1] = browser.draw(rng)
		dims[2] = osd.draw(rng)
		dims[3] = domain.draw(rng)
		dims[4] = relation.Value(cityZipf.Uint64())
		dims[5] = relation.Value(rng.Intn(24))
		dims[6] = relation.Value(rng.Intn(40))
		dims[7] = relation.Value(rng.Intn(120))
		dims[8] = relation.Value(rng.Int31n(int32(max(n/8, 1000))))
		dims[9] = relation.Value(rng.Intn(24))
		dims[10] = relation.Value(rng.Intn(7))
		dims[11] = relation.Value(rng.Intn(2))
		dims[12] = relation.Value(rng.Int31n(int32(max(n/6, 1000))))
		dims[13] = relation.Value(rng.Intn(500))
		dims[14] = relation.Value(rng.Intn(4))
		rel.Append(dims, 1)
	}
	return rel
}

// USAGovCubeDims is the default 4-dimension projection the paper cubes over.
var USAGovCubeDims = []int{0, 1, 2, 3}

// weightedDim draws a head value with explicit probabilities and otherwise
// a uniform tail value.
type weightedDim struct {
	vals     []relation.Value
	weights  []float64
	tailCard int
	tailBase relation.Value
}

func (w weightedDim) draw(rng *rand.Rand) relation.Value {
	u := rng.Float64()
	acc := 0.0
	for i, p := range w.weights {
		acc += p
		if u < acc {
			return w.vals[i]
		}
	}
	return w.tailBase + relation.Value(rng.Intn(w.tailCard))
}

// Adversarial builds the relation of Theorem 5.3, on which SP-Cube's
// network traffic is Θ(2^d·n): for every subset s of d/2 of the d
// attributes, it contains m+1 identical tuples with value 1 on the
// attributes of s and 0 elsewhere. Every cuboid at level d/2 then holds a
// skewed group while no cuboid at level d/2+1 does, so every tuple is
// emitted once per level-(d/2+1) node.
func Adversarial(d, m int) *relation.Relation {
	if d%2 != 0 {
		panic("data: Adversarial requires even d")
	}
	rel := newRel(d, "count")
	half := d / 2
	w := m + 1
	dims := make([]relation.Value, d)
	for mask := 0; mask < 1<<uint(d); mask++ {
		if popcount(mask) != half {
			continue
		}
		for j := 0; j < d; j++ {
			if mask&(1<<uint(j)) != 0 {
				dims[j] = 1
			} else {
				dims[j] = 0
			}
		}
		for i := 0; i < w; i++ {
			rel.Append(dims, 1)
		}
	}
	return rel
}

// Retail builds the running example of the paper's introduction: products
// sold in cities over years, with realistic hot products and a sales
// measure. Used by the examples and documentation.
func Retail(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	products := []string{
		"laptop", "keyboard", "printer", "television", "mouse", "monitor",
		"tablet", "phone", "camera", "speaker", "toaster", "air-conditioner",
	}
	cities := []string{
		"Rome", "Paris", "London", "Berlin", "Madrid", "Amsterdam",
		"Vienna", "Prague", "Lisbon", "Athens",
	}
	rel := relation.New([]string{"name", "city", "year"}, "sales")
	prodZipf := rand.NewZipf(rng, 1.3, 1, uint64(len(products)-1))
	for i := 0; i < n; i++ {
		product := products[prodZipf.Uint64()]
		city := cities[rng.Intn(len(cities))]
		year := fmt.Sprintf("%d", 2008+rng.Intn(8))
		rel.AppendStrings([]string{product, city, year}, int64(1+rng.Intn(5000)))
	}
	return rel
}

// ByName returns a generator by its experiment name.
func ByName(name string) (func(n int, seed int64) *relation.Relation, error) {
	switch name {
	case "binomial":
		return func(n int, seed int64) *relation.Relation { return GenBinomial(n, 4, 0.1, seed) }, nil
	case "zipf":
		return GenZipf, nil
	case "wiki":
		return WikiTraffic, nil
	case "usagov":
		return USAGov, nil
	case "uniform":
		return func(n int, seed int64) *relation.Relation { return Uniform(n, 4, 1<<30, seed) }, nil
	case "retail":
		return Retail, nil
	}
	return nil, fmt.Errorf("data: unknown dataset %q (want binomial, zipf, wiki, usagov, uniform, retail)", name)
}

func newRel(d int, measure string) *relation.Relation {
	names := make([]string, d)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i+1)
	}
	return &relation.Relation{Schema: relation.Schema{DimNames: names, MeasureName: measure}}
}

// zipfWeights returns normalized weights w_i ∝ 1/i^s for i in 1..n.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// sampleWeighted draws an index with the given weights.
func sampleWeighted(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
