package data

import (
	"testing"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

func TestDeterministic(t *testing.T) {
	gens := map[string]func() *relation.Relation{
		"binomial": func() *relation.Relation { return GenBinomial(500, 4, 0.3, 42) },
		"zipf":     func() *relation.Relation { return GenZipf(500, 42) },
		"wiki":     func() *relation.Relation { return WikiTraffic(500, 42) },
		"usagov":   func() *relation.Relation { return USAGov(500, 42) },
		"uniform":  func() *relation.Relation { return Uniform(500, 3, 100, 42) },
		"retail":   func() *relation.Relation { return Retail(500, 42) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if a.N() != b.N() {
			t.Fatalf("%s: sizes differ", name)
		}
		for i := range a.Tuples {
			if a.Tuples[i].Measure != b.Tuples[i].Measure {
				t.Fatalf("%s: measure differs at %d", name, i)
			}
			for j := range a.Tuples[i].Dims {
				if a.Tuples[i].Dims[j] != b.Tuples[i].Dims[j] {
					t.Fatalf("%s: dim differs at tuple %d", name, i)
				}
			}
		}
	}
}

// skewFingerprint counts exact skewed c-groups at k machines, m=n/k.
func skewFingerprint(t *testing.T, rel *relation.Relation, k int) (skews int, largestFrac float64) {
	t.Helper()
	n := rel.N()
	m := n / k
	sk := sketch.BuildExact(rel, k, m)
	d := rel.D()
	counts := make(map[string]int)
	for _, tu := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			counts[relation.GroupKey(uint32(mask), tu.Dims)]++
		}
	}
	largest := 0
	for key, c := range counts {
		mask, _, _ := relation.DecodeGroupKey(key)
		if c > m && mask != 0 {
			if c > largest {
				largest = c
			}
		}
	}
	return sk.NumSkews(), float64(largest) / float64(n)
}

func TestGenBinomialSkewGrowsWithP(t *testing.T) {
	const n, k = 20000, 20
	prev := -1
	for _, p := range []float64{0, 0.1, 0.4, 0.75} {
		rel := GenBinomial(n, 4, p, 7)
		skews, _ := skewFingerprint(t, rel, k)
		t.Logf("p=%.2f: %d skewed groups", p, skews)
		if skews < prev {
			t.Errorf("skew count should not decrease with p: p=%v gives %d < %d", p, skews, prev)
		}
		prev = skews
		if p == 0 && skews > 1 {
			t.Errorf("p=0 should have at most the apex skewed, got %d", skews)
		}
		if p >= 0.1 && skews < 2 {
			t.Errorf("p=%v should produce skewed hot groups, got %d", p, skews)
		}
	}
}

func TestWikiTrafficFingerprint(t *testing.T) {
	rel := WikiTraffic(30000, 11)
	skews, largest := skewFingerprint(t, rel, 20)
	t.Logf("wiki: %d skewed groups, largest %.0f%% of n", skews, largest*100)
	// Paper: ~50 skewed groups of 5%-30% of n. Same order of magnitude.
	if skews < 10 || skews > 200 {
		t.Errorf("wiki skew count %d outside plausible range [10,200]", skews)
	}
	if largest < 0.05 || largest > 0.45 {
		t.Errorf("largest skewed group %.2f of n outside [0.05,0.45]", largest)
	}
}

func TestUSAGovFingerprint(t *testing.T) {
	rel := USAGov(20000, 13).Restrict(USAGovCubeDims)
	skews, largest := skewFingerprint(t, rel, 20)
	t.Logf("usagov: %d skewed groups, largest %.0f%% of n", skews, largest*100)
	if skews < 10 || skews > 400 {
		t.Errorf("usagov skew count %d outside plausible range [10,400]", skews)
	}
	if largest < 0.06 {
		t.Errorf("largest skewed group %.2f of n below the paper's 6%%", largest)
	}
}

func TestUniformHasOnlyApexSkew(t *testing.T) {
	rel := Uniform(10000, 4, 1<<30, 3)
	skews, _ := skewFingerprint(t, rel, 10)
	if skews != 1 {
		t.Errorf("uniform data should only have the apex skewed, got %d", skews)
	}
}

func TestAdversarialShape(t *testing.T) {
	d, m := 4, 10
	rel := Adversarial(d, m)
	want := 6 * (m + 1) // C(4,2) patterns × (m+1) tuples
	if rel.N() != want {
		t.Errorf("n=%d, want %d", rel.N(), want)
	}
	// Every level-d/2 cuboid must contain a group of exactly m+1 tuples.
	counts := make(map[string]int)
	for _, tu := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			counts[relation.GroupKey(uint32(mask), tu.Dims)]++
		}
	}
	for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
		if mask.Level() != d/2 {
			continue
		}
		found := false
		for key, c := range counts {
			km, vals, _ := relation.DecodeGroupKey(key)
			if lattice.Mask(km) == mask && c > m && allOnes(vals) {
				found = true
			}
		}
		if !found {
			t.Errorf("cuboid %b lacks its skewed all-ones group", mask)
		}
	}
}

func allOnes(vals []relation.Value) bool {
	for _, v := range vals {
		if v != 1 {
			return false
		}
	}
	return true
}

func TestByName(t *testing.T) {
	for _, name := range []string{"binomial", "zipf", "wiki", "usagov", "uniform", "retail"} {
		gen, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel := gen(100, 1); rel.N() != 100 {
			t.Errorf("%s: wrong size %d", name, rel.N())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
