package data

import (
	"strconv"
	"testing"

	"github.com/spcube/spcube/internal/relation"
)

// TestStreamMatchesMaterialized pins the streaming contract: each streamer
// draws from its rand.Rand in exactly the order of the materializing
// generator, so row i of the stream is byte-for-byte the CSV row the
// relation's tuple i would render to.
func TestStreamMatchesMaterialized(t *testing.T) {
	const n, seed = 500, 7
	cases := []struct {
		name string
		s    *Stream
		rel  *relation.Relation
	}{
		{"binomial", StreamBinomial(n, 5, 0.3, seed), GenBinomial(n, 5, 0.3, seed)},
		{"uniform", StreamUniform(n, 3, 1<<30, seed), Uniform(n, 3, 1<<30, seed)},
		{"zipf", StreamZipf(n, seed), GenZipf(n, seed)},
		{"wiki", StreamWiki(n, seed), WikiTraffic(n, seed)},
		{"usagov", StreamUSAGov(n, seed), USAGov(n, seed)},
		{"retail", StreamRetail(n, seed), Retail(n, seed)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.rel.D()
			wantHeader := append(append([]string(nil), tc.rel.Schema.DimNames...), tc.rel.Schema.MeasureName)
			if len(tc.s.Header) != d+1 {
				t.Fatalf("header has %d fields, want %d", len(tc.s.Header), d+1)
			}
			for i := range wantHeader {
				if tc.s.Header[i] != wantHeader[i] {
					t.Fatalf("header[%d] = %q, want %q", i, tc.s.Header[i], wantHeader[i])
				}
			}
			row := make([]string, d+1)
			for i := 0; i < n; i++ {
				if !tc.s.Next(row) {
					t.Fatalf("stream exhausted at row %d of %d", i, n)
				}
				tup := tc.rel.Tuples[i]
				for j := 0; j < d; j++ {
					if want := tc.rel.DimString(j, tup.Dims[j]); row[j] != want {
						t.Fatalf("row %d dim %d: streamed %q, materialized %q", i, j, row[j], want)
					}
				}
				if want := strconv.FormatInt(tup.Measure, 10); row[d] != want {
					t.Fatalf("row %d measure: streamed %q, materialized %q", i, row[d], want)
				}
			}
			if tc.s.Next(row) {
				t.Fatal("stream yields more than n rows")
			}
		})
	}
}

// TestStreamByNameMatchesGendataConventions checks the name table resolves
// with cmd/gendata's parameter conventions and rejects unknown datasets.
func TestStreamByNameMatchesGendataConventions(t *testing.T) {
	s, err := StreamByName("binomial", 10, 6, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Header) != 7 {
		t.Errorf("binomial d=6: header has %d fields, want 7", len(s.Header))
	}
	if _, err := StreamByName("nope", 10, 4, 0.1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}
