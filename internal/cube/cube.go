// Package cube defines the cube-computation problem the algorithms solve:
// the specification (which aggregate, iceberg threshold), the result
// contract shared by all algorithms, and a brute-force reference
// implementation used by the test suite as ground truth.
package cube

import (
	"fmt"
	"math"
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Spec describes a cube computation over a relation.
type Spec struct {
	// Agg is the aggregate function; the paper's experiments use count.
	Agg agg.Func
	// MinSup, when above 1, computes an iceberg cube: only c-groups with
	// at least MinSup contributing tuples are materialized (Beyer &
	// Ramakrishnan; the partial-materialization line of work the paper
	// cites as [22]).
	MinSup int
}

// Effective returns the aggregate function the algorithms should run with
// and the minimum support: iceberg cubes need cardinality tracking, so the
// function is wrapped with agg.WithCount when MinSup is above 1.
func (s Spec) Effective() (agg.Func, int) {
	f := s.Agg
	if f == nil {
		f = agg.Count
	}
	if s.MinSup > 1 {
		return agg.WithCount(f), s.MinSup
	}
	return f, 1
}

// Keep reports whether a final state passes the iceberg threshold.
func Keep(st agg.State, minSup int) bool {
	if minSup <= 1 {
		return true
	}
	c, ok := agg.Cardinality(st)
	return ok && c >= int64(minSup)
}

// Run is the outcome of a cube computation on the MapReduce substrate.
type Run struct {
	Algorithm string
	Metrics   mr.JobMetrics
	// OutputPrefix is the DFS prefix under which the cube was written.
	OutputPrefix string
	// SketchBytes is the serialized SP-Sketch size (SP-Cube only).
	SketchBytes int
	// SampleTuples is the SP-Sketch sample size (SP-Cube only).
	SampleTuples int
	// SkewedGroups is the number of skewed c-groups the SP-Sketch
	// recorded (SP-Cube only).
	SkewedGroups int
}

// ComputeFunc is the signature every cube algorithm exports.
type ComputeFunc func(eng *mr.Engine, rel *relation.Relation, spec Spec) (*Run, error)

// Group is one materialized cube group.
type Group struct {
	Mask   lattice.Mask
	Packed []relation.Value
	Value  float64
}

// Result is a fully materialized cube, keyed by encoded group key. It is
// used by tests and the public API at moderate scale; benchmarks leave the
// cube in the (discarding) DFS and compare checksums instead.
type Result struct {
	D      int
	Groups map[string]float64
}

// NewResult creates an empty result for a d-dimensional cube.
func NewResult(d int) *Result {
	return &Result{D: d, Groups: make(map[string]float64)}
}

// Add records one group's final aggregate. The packed slice holds the
// projected values of the mask's dimensions only.
func (r *Result) Add(mask lattice.Mask, packed []relation.Value, value float64) {
	r.Groups[relation.GroupKeyPacked(uint32(mask), packed)] = value
}

// Lookup returns the aggregate of the group of dims projected on mask.
// The dims slice is full-width; GroupKey projects it by the mask.
func (r *Result) Lookup(mask lattice.Mask, dims []relation.Value) (float64, bool) {
	v, ok := r.Groups[relation.GroupKey(uint32(mask), dims)]
	return v, ok
}

// Len returns the number of groups in the cube.
func (r *Result) Len() int { return len(r.Groups) }

// Cuboid returns the groups of one cuboid, sorted by their packed values.
func (r *Result) Cuboid(mask lattice.Mask) []Group {
	var out []Group
	for key, v := range r.Groups {
		m, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			continue
		}
		if lattice.Mask(m) == mask {
			out = append(out, Group{Mask: mask, Packed: packed, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return relation.ComparePacked(out[i].Packed, out[j].Packed) < 0
	})
	return out
}

// Equal reports whether two results contain the same groups with the same
// values (within a small floating-point tolerance), returning a description
// of the first difference otherwise.
func (r *Result) Equal(o *Result) (bool, string) {
	if len(r.Groups) != len(o.Groups) {
		return false, fmt.Sprintf("group counts differ: %d vs %d", len(r.Groups), len(o.Groups))
	}
	for key, v := range r.Groups {
		ov, ok := o.Groups[key]
		if !ok {
			mask, packed, _ := relation.DecodeGroupKey(key)
			return false, fmt.Sprintf("group %s missing", relation.FormatGroup(nil, mask, packed, r.D))
		}
		if !floatEq(v, ov) {
			mask, packed, _ := relation.DecodeGroupKey(key)
			return false, fmt.Sprintf("group %s: %v vs %v", relation.FormatGroup(nil, mask, packed, r.D), v, ov)
		}
	}
	return true, ""
}

func floatEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// Brute computes the cube of rel by direct hash aggregation of every tuple
// into all 2^d of its projections. It is the test suite's ground truth.
func Brute(rel *relation.Relation, f agg.Func) *Result {
	return BruteSpec(rel, Spec{Agg: f})
}

// BruteSpec is Brute with a full Spec (iceberg thresholds included).
func BruteSpec(rel *relation.Relation, spec Spec) *Result {
	d := rel.D()
	f, minSup := spec.Effective()
	res := NewResult(d)
	states := make(map[string]agg.State)
	var buf []byte
	for _, t := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			buf = relation.EncodeGroupKey(buf, uint32(mask), t.Dims)
			key := string(buf)
			st, ok := states[key]
			if !ok {
				st = f.NewState()
				states[key] = st
			}
			st.Add(t.Measure)
		}
	}
	for key, st := range states {
		if !Keep(st, minSup) {
			continue
		}
		res.Groups[key] = st.Final()
	}
	return res
}

// CollectDFS parses a cube written to the engine's DFS (non-discard mode)
// under the given prefix into a Result. Output records are written by the
// reducers as "<group key>\t<final value varint-float encoding>"; see
// EncodeFinal.
func CollectDFS(eng *mr.Engine, prefix string, d int) (*Result, error) {
	res := NewResult(d)
	for _, name := range eng.FS.List(prefix) {
		data, err := eng.FS.Read(name)
		if err != nil {
			return nil, err
		}
		if err := parseOutput(data, res); err != nil {
			return nil, fmt.Errorf("cube: parsing %s: %w", name, err)
		}
	}
	return res, nil
}

func parseOutput(data []byte, res *Result) error {
	// Records are concatenated "<key>\t<8-byte float bits>" frames; keys
	// never contain '\t' (group keys are uvarint sequences, but a uvarint
	// byte can be 0x09, so we must parse structurally instead of
	// splitting).
	for off := 0; off < len(data); {
		key, val, n, err := parseRecord(data[off:])
		if err != nil {
			return err
		}
		res.Groups[key] = val
		off += n
	}
	return nil
}

func parseRecord(b []byte) (string, float64, int, error) {
	_, _, keyLen, err := relation.ScanGroupKey(b)
	if err != nil {
		return "", 0, 0, err
	}
	if keyLen >= len(b) || b[keyLen] != '\t' {
		return "", 0, 0, fmt.Errorf("cube: malformed output record")
	}
	rest := b[keyLen+1:]
	if len(rest) < 8 {
		return "", 0, 0, fmt.Errorf("cube: truncated output value")
	}
	v := DecodeFinal(rest[:8])
	return string(b[:keyLen]), v, keyLen + 1 + 8, nil
}

// EncodeFinal serializes a final aggregate value for output records.
func EncodeFinal(v float64) []byte {
	bits := math.Float64bits(v)
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(bits >> (8 * uint(i)))
	}
	return out
}

// DecodeFinal parses an EncodeFinal value.
func DecodeFinal(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b[i]) << (8 * uint(i))
	}
	return math.Float64frombits(bits)
}
