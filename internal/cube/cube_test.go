package cube

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

func smallRelation() *relation.Relation {
	rel := relation.New([]string{"name", "city", "year"}, "sales")
	rel.AppendStrings([]string{"laptop", "Rome", "2012"}, 2000)
	rel.AppendStrings([]string{"laptop", "Paris", "2012"}, 1500)
	rel.AppendStrings([]string{"printer", "Rome", "2013"}, 300)
	rel.AppendStrings([]string{"laptop", "Rome", "2013"}, 900)
	return rel
}

func TestBruteKnownValues(t *testing.T) {
	rel := smallRelation()
	res := Brute(rel, agg.Sum)
	// 3 dims -> 8 cuboids. Check a few groups against hand computation.
	laptop := rel.Dict.Encode(0, "laptop")
	rome := rel.Dict.Encode(1, "Rome")
	y2012 := rel.Dict.Encode(2, "2012")

	if v, ok := res.Lookup(0, []relation.Value{0, 0, 0}); !ok || v != 4700 {
		t.Errorf("apex sum = %v %v, want 4700", v, ok)
	}
	if v, ok := res.Lookup(0b001, []relation.Value{laptop, 0, 0}); !ok || v != 4400 {
		t.Errorf("(laptop,*,*) = %v, want 4400", v)
	}
	if v, ok := res.Lookup(0b101, []relation.Value{laptop, 0, y2012}); !ok || v != 3500 {
		t.Errorf("(laptop,*,2012) = %v, want 3500", v)
	}
	if v, ok := res.Lookup(0b111, []relation.Value{laptop, rome, y2012}); !ok || v != 2000 {
		t.Errorf("(laptop,Rome,2012) = %v, want 2000", v)
	}
	if _, ok := res.Lookup(0b111, []relation.Value{99, 99, 99}); ok {
		t.Error("nonexistent group found")
	}
}

func TestBruteGroupCount(t *testing.T) {
	// Each tuple contributes 2^d groups; with all-distinct dims the cube
	// has exactly n·(2^d −1)+1 groups.
	rel := relation.New([]string{"a", "b"}, "m")
	rel.Append([]relation.Value{1, 10}, 1)
	rel.Append([]relation.Value{2, 20}, 1)
	rel.Append([]relation.Value{3, 30}, 1)
	res := Brute(rel, agg.Count)
	if res.Len() != 3*3+1 {
		t.Errorf("groups = %d, want 10", res.Len())
	}
}

func TestResultEqual(t *testing.T) {
	rel := smallRelation()
	a := Brute(rel, agg.Count)
	b := Brute(rel, agg.Count)
	if ok, diff := a.Equal(b); !ok {
		t.Fatalf("identical results differ: %s", diff)
	}
	// Mutate one value.
	for key := range b.Groups {
		b.Groups[key] += 1
		break
	}
	if ok, _ := a.Equal(b); ok {
		t.Error("differing values not detected")
	}
	c := NewResult(3)
	if ok, _ := a.Equal(c); ok {
		t.Error("size mismatch not detected")
	}
	// NaN values (empty min/max) must compare equal.
	d1, d2 := NewResult(1), NewResult(1)
	d1.Add(0, nil, math.NaN())
	d2.Add(0, nil, math.NaN())
	if ok, diff := d1.Equal(d2); !ok {
		t.Errorf("NaN == NaN expected: %s", diff)
	}
}

func TestCuboidExtraction(t *testing.T) {
	rel := smallRelation()
	res := Brute(rel, agg.Sum)
	groups := res.Cuboid(0b001) // by name
	if len(groups) != 2 {
		t.Fatalf("name cuboid: %d groups", len(groups))
	}
	if relation.ComparePacked(groups[0].Packed, groups[1].Packed) >= 0 {
		t.Error("cuboid not sorted")
	}
	var total float64
	for _, g := range groups {
		total += g.Value
	}
	if total != 4700 {
		t.Errorf("name cuboid total %v", total)
	}
}

func TestEncodeDecodeFinal(t *testing.T) {
	for _, v := range []float64{0, 1, -3.5, 1e300, math.Inf(1), math.NaN()} {
		got := DecodeFinal(EncodeFinal(v))
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round trip: %v", got)
			}
			continue
		}
		if got != v {
			t.Errorf("%v -> %v", v, got)
		}
	}
}

func TestLookupRandomAgainstRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := relation.New([]string{"a", "b", "c"}, "m")
	for i := 0; i < 500; i++ {
		rel.Append([]relation.Value{
			relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)),
		}, 1)
	}
	res := Brute(rel, agg.Count)
	for trial := 0; trial < 100; trial++ {
		tu := rel.Tuples[rng.Intn(rel.N())]
		mask := lattice.Mask(rng.Intn(8))
		want := 0
		for _, other := range rel.Tuples {
			if relation.CompareProjected(tu.Dims, other.Dims, uint32(mask)) == 0 {
				want++
			}
		}
		if v, ok := res.Lookup(mask, tu.Dims); !ok || v != float64(want) {
			t.Fatalf("Lookup(%b) = %v,%v want %d", mask, v, ok, want)
		}
	}
}
