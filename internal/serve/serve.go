// Package serve is the online serving layer for computed cubes: it ingests
// a materialized cube.Result into a compact read-optimized index (Store) and
// answers point / slice / rollup / top-k queries over it, in process through
// the Service interface and over HTTP/JSON through NewHandler.
//
// A computed cube otherwise dies with the process that computed it; serve is
// the consumer side the paper's pipeline presumes. The concurrency design is
// the heart of the package: queries pass through a single-flight LRU result
// cache (identical concurrent queries cost one evaluation) and a
// channel-based batcher that coalesces the concurrent misses targeting the
// same cuboid into one probe of that cuboid's sorted run, so thousands of
// concurrent clients degenerate to a few index probes per batch window.
//
// The Store is an immutable snapshot: queries against it are deterministic,
// which is what makes results cacheable without an invalidation protocol.
// Updating a served cube is a snapshot swap, not a mutation: incremental
// maintenance turns a delta round's changes into a Patch, Store.ApplyPatch
// merges it into a NEW store (sharing untouched cuboids with the old one),
// and Service.Swap publishes the new snapshot — pointer first, then a full
// cache flush. That ordering is the whole read-while-update story: entries
// computed against the old store were necessarily inserted before the flush
// and die in it, entries inserted after the flush were evaluated by batches
// that loaded the store after the pointer moved, and the batcher reads the
// pointer once per batch, so every reader sees exactly one snapshot and no
// cache entry outlives the snapshot it was computed on.
package serve

import (
	"fmt"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// Op enumerates the query kinds the serving layer answers.
type Op uint8

const (
	// OpPoint looks up one c-group's aggregate.
	OpPoint Op = iota
	// OpSlice returns every group of a cuboid matching a packed-value
	// prefix (in ascending attribute order).
	OpSlice
	// OpRollup returns the chain of groups from the queried group up to
	// the apex, dropping the highest grouped attribute at each step.
	OpRollup
	// OpTopK returns a cuboid's k groups with the largest aggregates.
	OpTopK

	numOps = 4
)

// opNames maps Op to its wire name (see OpByName).
var opNames = [numOps]string{"point", "slice", "rollup", "topk"}

// String returns the op's wire name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// OpByName resolves a wire name ("point", "slice", "rollup", "topk").
func OpByName(name string) (Op, error) {
	for i, n := range opNames {
		if n == name {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown op %q (want point, slice, rollup, topk)", name)
}

// Query is one request against a served cube.
type Query struct {
	Op Op
	// Mask is the cuboid: bit i set means dimension i is grouped on.
	Mask lattice.Mask
	// Packed holds the values of the grouped dimensions in ascending
	// attribute order: one per set bit for point and rollup, a prefix
	// (possibly empty) for slice, unused for top-k.
	Packed []relation.Value
	// K is the top-k result size (top-k only; DefaultTopK when 0).
	K int
}

// DefaultTopK is the result size of a top-k query that does not set K.
const DefaultTopK = 10

// Group is one c-group in a query result.
type Group struct {
	Mask   lattice.Mask
	Packed []relation.Value
	Value  float64
}

// Result is a query's answer. Point queries fill Found/Value; slice, rollup
// and top-k fill Groups (sorted by packed values for slice and rollup, by
// descending value — ties by ascending packed values — for top-k).
type Result struct {
	Found  bool
	Value  float64
	Groups []Group
}

// Service answers queries against one served cube snapshot. Implementations
// are safe for concurrent use; Close releases background resources (after
// which Query returns ErrClosed).
type Service interface {
	Query(q Query) (Result, error)
	Close() error
}

// ErrClosed is returned by queries issued after Close.
var ErrClosed = fmt.Errorf("serve: service closed")

// validate checks a query's shape against a d-dimensional store.
func (q Query) validate(d int) error {
	if int(q.Op) >= numOps {
		return fmt.Errorf("serve: invalid op %d", int(q.Op))
	}
	if q.Mask > lattice.Full(d) {
		return fmt.Errorf("serve: cuboid mask %b out of range for %d dimensions", uint32(q.Mask), d)
	}
	want := q.Mask.Level()
	switch q.Op {
	case OpPoint, OpRollup:
		if len(q.Packed) != want {
			return fmt.Errorf("serve: %s query needs %d values for cuboid %b, got %d", q.Op, want, uint32(q.Mask), len(q.Packed))
		}
	case OpSlice:
		if len(q.Packed) > want {
			return fmt.Errorf("serve: slice prefix of %d values exceeds cuboid %b width %d", len(q.Packed), uint32(q.Mask), want)
		}
	case OpTopK:
		if len(q.Packed) != 0 {
			return fmt.Errorf("serve: top-k query takes no values, got %d", len(q.Packed))
		}
		if q.K < 0 {
			return fmt.Errorf("serve: top-k k must be non-negative, got %d", q.K)
		}
	}
	return nil
}
