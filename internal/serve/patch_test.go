package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// tupleList is a mutable relation draft: patch tests evolve one through
// appends and deletes and materialize each version as a dictionary-free
// relation, so packed codes (the raw values) are stable across versions.
type tupleList struct {
	d    int
	rows [][]relation.Value
}

func newTupleList(rng *rand.Rand, n, d, card int) *tupleList {
	tl := &tupleList{d: d}
	for i := 0; i < n; i++ {
		row := make([]relation.Value, d)
		for j := range row {
			row[j] = relation.Value(rng.Intn(card))
		}
		tl.rows = append(tl.rows, row)
	}
	return tl
}

func (tl *tupleList) relation() *relation.Relation {
	names := make([]string, tl.d)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	rel := &relation.Relation{Schema: relation.Schema{DimNames: names, MeasureName: "m"}}
	for _, row := range tl.rows {
		rel.Append(row, 1)
	}
	return rel
}

// diffPatch turns the difference between two brute cubes into a Patch: a Set
// for every changed or new group, a Delete for every vanished one.
func diffPatch(t *testing.T, old, new *cube.Result) *Patch {
	t.Helper()
	p := NewPatch()
	for key, v := range new.Groups {
		if ov, ok := old.Groups[key]; !ok || ov != v {
			if err := p.Set(key, v); err != nil {
				t.Fatalf("Patch.Set: %v", err)
			}
		}
	}
	for key := range old.Groups {
		if _, ok := new.Groups[key]; !ok {
			if err := p.Delete(key); err != nil {
				t.Fatalf("Patch.Delete: %v", err)
			}
		}
	}
	return p
}

// checkStoreMatches verifies a store serves exactly the groups of a brute
// cube: group count, cuboid inventory, every point through both the hash
// index and the binary search, and full-cuboid slices (ordering).
func checkStoreMatches(t *testing.T, st *Store, brute *cube.Result) {
	t.Helper()
	if st.Groups() != brute.Len() {
		t.Fatalf("store has %d groups, brute %d", st.Groups(), brute.Len())
	}
	for key, want := range brute.Groups {
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := st.Point(lattice.Mask(mask), packed); !ok || got != want {
			t.Fatalf("Point(%b, %v) = %v,%v want %v", mask, packed, got, ok, want)
		}
		if got, ok := st.pointSearch(lattice.Mask(mask), packed); !ok || got != want {
			t.Fatalf("pointSearch(%b, %v) = %v,%v want %v", mask, packed, got, ok, want)
		}
	}
	for _, ci := range st.Cuboids() {
		want := brute.Cuboid(ci.Mask)
		got := st.Slice(ci.Mask, nil)
		if len(got) != len(want) || ci.Size != len(want) {
			t.Fatalf("cuboid %b: %d/%d rows, brute %d", ci.Mask, len(got), ci.Size, len(want))
		}
		for i := range got {
			if relation.ComparePacked(got[i].Packed, want[i].Packed) != 0 || got[i].Value != want[i].Value {
				t.Fatalf("cuboid %b row %d = %v/%v, want %v/%v",
					ci.Mask, i, got[i].Packed, got[i].Value, want[i].Packed, want[i].Value)
			}
		}
	}
}

// TestApplyPatchMatchesRebuild is the patch path's differential gate: evolve
// a relation through rounds of random appends and deletes, apply the diff of
// each round as a Patch, and require the patched store to serve exactly what
// a store built from scratch over the evolved relation would — every point,
// every cuboid, every ordering.
func TestApplyPatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tl := newTupleList(rng, 300, 3, 4)
	brute := cube.Brute(tl.relation(), agg.Count)
	st, err := Build(tl.relation(), brute)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		// Random churn: delete some rows, append some new ones.
		for i := 0; i < 20 && len(tl.rows) > 1; i++ {
			j := rng.Intn(len(tl.rows))
			tl.rows = append(tl.rows[:j], tl.rows[j+1:]...)
		}
		for i := 0; i < 25; i++ {
			row := make([]relation.Value, tl.d)
			for j := range row {
				row[j] = relation.Value(rng.Intn(5)) // slightly wider domain: new groups appear
			}
			tl.rows = append(tl.rows, row)
		}
		next := cube.Brute(tl.relation(), agg.Count)
		patched, err := st.ApplyPatch(diffPatch(t, brute, next), nil)
		if err != nil {
			t.Fatalf("round %d: ApplyPatch: %v", round, err)
		}
		checkStoreMatches(t, patched, next)
		// The old snapshot still serves the old cube (copy-on-write).
		checkStoreMatches(t, st, brute)
		st, brute = patched, next
	}
}

// TestApplyPatchSharesUntouchedCuboids pins the copy-on-write contract: a
// patch touching one cuboid must alias every other cuboid of the old store
// and replace the touched one.
func TestApplyPatchSharesUntouchedCuboids(t *testing.T) {
	st, brute, rel := buildStore(t, 200, 3, 3)
	full := lattice.Full(rel.D())
	g := brute.Cuboid(full)[0]
	p := NewPatch()
	key := relation.GroupKeyPacked(uint32(full), g.Packed)
	if err := p.Set(key, g.Value+7); err != nil {
		t.Fatal(err)
	}
	ns, err := st.ApplyPatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for mask, c := range st.byMask {
		nc := ns.byMask[mask]
		if mask == full {
			if nc == c {
				t.Fatalf("patched cuboid %b was not replaced", mask)
			}
			continue
		}
		if nc != c {
			t.Fatalf("untouched cuboid %b was rebuilt instead of shared", mask)
		}
	}
	if v, ok := ns.Point(full, g.Packed); !ok || v != g.Value+7 {
		t.Fatalf("patched point = %v,%v want %v", v, ok, g.Value+7)
	}
	if v, ok := st.Point(full, g.Packed); !ok || v != g.Value {
		t.Fatalf("old snapshot mutated: point = %v,%v want %v", v, ok, g.Value)
	}
}

// TestApplyPatchCreatesAndDropsCuboids: setting groups of a mask the store
// never held creates the cuboid; deleting a cuboid's every group drops it.
func TestApplyPatchCreatesAndDropsCuboids(t *testing.T) {
	st, brute, rel := buildStore(t, 100, 2, 3)
	full := lattice.Full(rel.D())

	// Drop: delete every full-cuboid group.
	p := NewPatch()
	for _, g := range brute.Cuboid(full) {
		if err := p.Delete(relation.GroupKeyPacked(uint32(full), g.Packed)); err != nil {
			t.Fatal(err)
		}
	}
	ns, err := st.ApplyPatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.byMask[full]; ok {
		t.Fatal("emptied cuboid was not dropped")
	}
	if want := st.Groups() - len(brute.Cuboid(full)); ns.Groups() != want {
		t.Fatalf("groups = %d, want %d", ns.Groups(), want)
	}

	// Create: patch the full cuboid back into the dropped store.
	p2 := NewPatch()
	for _, g := range brute.Cuboid(full) {
		if err := p2.Set(relation.GroupKeyPacked(uint32(full), g.Packed), g.Value); err != nil {
			t.Fatal(err)
		}
	}
	ns2, err := ns.ApplyPatch(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkStoreMatches(t, ns2, brute)

	// Deleting an absent group is a no-op; a patch cuboid beyond the
	// store's dimensionality is an error.
	p3 := NewPatch()
	if err := p3.Delete(relation.GroupKeyPacked(uint32(full), []relation.Value{99, 99})); err != nil {
		t.Fatal(err)
	}
	ns3, err := ns2.ApplyPatch(p3, nil)
	if err != nil || ns3.Groups() != ns2.Groups() {
		t.Fatalf("no-op delete: %v, groups %d want %d", err, ns3.Groups(), ns2.Groups())
	}
	bad := NewPatch()
	overMask := uint32(lattice.Full(rel.D())) + 1 // one bit beyond the store's dimensions
	if err := bad.Set(relation.GroupKeyPacked(overMask, []relation.Value{1}), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ns2.ApplyPatch(bad, nil); err == nil {
		t.Fatal("out-of-range patch cuboid accepted")
	}
}

// TestPatchLastEntryWins: multiple entries for one key collapse to the last
// added, both Set-after-Set and Delete-after-Set.
func TestPatchLastEntryWins(t *testing.T) {
	st, brute, rel := buildStore(t, 100, 2, 3)
	full := lattice.Full(rel.D())
	groups := brute.Cuboid(full)
	g0, g1 := groups[0], groups[1]
	k0 := relation.GroupKeyPacked(uint32(full), g0.Packed)
	k1 := relation.GroupKeyPacked(uint32(full), g1.Packed)

	p := NewPatch()
	for _, step := range []func() error{
		func() error { return p.Set(k0, 111) },
		func() error { return p.Set(k0, 222) }, // supersedes 111
		func() error { return p.Set(k1, 333) },
		func() error { return p.Delete(k1) }, // supersedes 333
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	ns, err := st.ApplyPatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ns.Point(full, g0.Packed); !ok || v != 222 {
		t.Fatalf("k0 = %v,%v want 222", v, ok)
	}
	if _, ok := ns.Point(full, g1.Packed); ok {
		t.Fatal("k1 survived its delete")
	}
	// Corrupt keys are rejected at Patch build time.
	if err := NewPatch().Set("\xff\xff\xff\xff\xff\xff", 1); err == nil {
		t.Fatal("corrupt patch key accepted")
	}
}
