package serve

import (
	"container/list"
	"encoding/binary"
	"sync"
)

// cacheKey encodes a query as a compact byte-string cache key: op, k, mask,
// value count, values. Results are deterministic functions of the query over
// an immutable Store, so the key fully identifies the answer.
func cacheKey(q Query) string {
	buf := make([]byte, 0, 8+5*len(q.Packed))
	buf = append(buf, byte(q.Op))
	buf = binary.AppendUvarint(buf, uint64(q.K))
	buf = binary.AppendUvarint(buf, uint64(q.Mask))
	buf = binary.AppendUvarint(buf, uint64(len(q.Packed)))
	for _, v := range q.Packed {
		buf = binary.AppendUvarint(buf, uint64(uint32(v)))
	}
	return string(buf)
}

// flight is one cache slot: either a completed result or an in-flight
// evaluation other callers can wait on (single-flight).
type flight struct {
	key  string
	done chan struct{} // closed when res/err are set
	res  Result
	err  error
}

// cache is a single-flight LRU result cache. The first lookup of a key
// starts the evaluation; concurrent lookups of the same key block on the
// same flight instead of re-evaluating; later lookups hit the stored result
// until the entry ages out of the LRU window. Failed evaluations are not
// cached.
type cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recent; values are *flight
	byKey   map[string]*list.Element
	metrics *Counters
}

func newCache(max int, m *Counters) *cache {
	if max <= 0 {
		max = 4096
	}
	return &cache{max: max, ll: list.New(), byKey: make(map[string]*list.Element), metrics: m}
}

// do returns the cached result of key, joining an in-flight evaluation when
// one exists, and otherwise evaluates fn (at most one evaluation per key at
// a time).
func (c *cache) do(key string, fn func() (Result, error)) (Result, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		f := el.Value.(*flight)
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		select {
		case <-f.done:
			// Completed entry: a plain hit.
			c.metrics.cacheHit()
		default:
			// In flight: wait for the evaluation we share.
			c.metrics.flightShared()
			<-f.done
		}
		return f.res, f.err
	}
	f := &flight{key: key, done: make(chan struct{})}
	el := c.ll.PushFront(f)
	c.byKey[key] = el
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*flight).key)
	}
	c.mu.Unlock()
	c.metrics.cacheMiss()

	f.res, f.err = fn()
	close(f.done)
	if f.err != nil {
		// Errors are returned to every waiter of this flight but not
		// retained: the next lookup re-evaluates.
		c.mu.Lock()
		if el2, ok := c.byKey[key]; ok && el2.Value.(*flight) == f {
			c.ll.Remove(el2)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	return f.res, f.err
}

// reset flushes every entry, resident and in flight. Removed in-flight
// flights still complete and answer their waiters; they are simply no longer
// reachable for new lookups, so the next lookup of their key re-evaluates
// against whatever store is then current.
func (c *cache) reset() {
	c.mu.Lock()
	c.ll = list.New()
	c.byKey = make(map[string]*list.Element)
	c.mu.Unlock()
}

// len returns the number of resident entries (including in-flight ones).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
