package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/spcube/spcube/internal/relation"
)

func TestCacheSingleFlight(t *testing.T) {
	m := &Counters{}
	c := newCache(8, m)
	const waiters = 7
	started := make(chan struct{})
	release := make(chan struct{})
	var evals atomic.Int32

	var wg sync.WaitGroup
	results := make([]Result, waiters+1)
	errs := make([]error, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.do("k", func() (Result, error) {
			close(started)
			evals.Add(1)
			<-release
			return Result{Found: true, Value: 42}, nil
		})
	}()
	<-started
	// Every lookup issued while the evaluation is in flight must join it.
	joined := make(chan struct{}, waiters)
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined <- struct{}{}
			results[i], errs[i] = c.do("k", func() (Result, error) {
				evals.Add(1)
				return Result{}, fmt.Errorf("re-evaluated")
			})
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-joined
	}
	close(release)
	wg.Wait()

	if n := evals.Load(); n != 1 {
		t.Fatalf("%d evaluations, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || !results[i].Found || results[i].Value != 42 {
			t.Fatalf("caller %d got %+v, %v", i, results[i], errs[i])
		}
	}
	if m.cacheMisses.Load() != 1 {
		t.Fatalf("misses = %d, want 1", m.cacheMisses.Load())
	}
	if hits, shared := m.cacheHits.Load(), m.flightsShared.Load(); hits+shared != waiters {
		t.Fatalf("hits=%d shared=%d, want total %d", hits, shared, waiters)
	}
	// A lookup after completion is a plain hit.
	if res, err := c.do("k", func() (Result, error) { return Result{}, fmt.Errorf("no") }); err != nil || res.Value != 42 {
		t.Fatalf("post-completion lookup: %+v, %v", res, err)
	}
	if m.CacheHits() != waiters+1 {
		t.Fatalf("CacheHits = %d, want %d", m.CacheHits(), waiters+1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	m := &Counters{}
	c := newCache(2, m)
	val := func(v float64) func() (Result, error) {
		return func() (Result, error) { return Result{Found: true, Value: v}, nil }
	}
	c.do("a", val(1))
	c.do("b", val(2))
	c.do("c", val(3)) // evicts "a"
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	misses := m.cacheMisses.Load()
	if res, _ := c.do("a", val(10)); res.Value != 10 {
		t.Fatalf("evicted key served stale value %v", res.Value)
	}
	if m.cacheMisses.Load() != misses+1 {
		t.Fatal("evicted key did not re-evaluate")
	}
	// "b" was evicted by re-inserting "a"; "c" is still resident.
	if res, _ := c.do("c", val(99)); res.Value != 3 {
		t.Fatalf("resident key re-evaluated: %v", res.Value)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newCache(4, nil) // nil metrics must be safe
	boom := fmt.Errorf("boom")
	if _, err := c.do("k", func() (Result, error) { return Result{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatalf("failed evaluation retained (%d entries)", c.len())
	}
	if res, err := c.do("k", func() (Result, error) { return Result{Found: true, Value: 7}, nil }); err != nil || res.Value != 7 {
		t.Fatalf("retry after error: %+v, %v", res, err)
	}
}

func TestCacheKeyDistinguishesQueries(t *testing.T) {
	pv := func(vs ...relation.Value) []relation.Value { return vs }
	qs := []Query{
		{Op: OpPoint, Mask: 3},
		{Op: OpSlice, Mask: 3},
		{Op: OpTopK, Mask: 3, K: 5},
		{Op: OpTopK, Mask: 3, K: 6},
		{Op: OpPoint, Mask: 3, Packed: pv(1, 2)},
		{Op: OpPoint, Mask: 3, Packed: pv(2, 1)},
		{Op: OpPoint, Mask: 5, Packed: pv(1, 2)},
	}
	seen := make(map[string]int)
	for i, q := range qs {
		k := cacheKey(q)
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d share cache key %q", j, i, k)
		}
		seen[k] = i
	}
}
