package serve

import "time"

// Config parameterizes a batched service.
type Config struct {
	// CacheEntries bounds the single-flight LRU result cache
	// (default 4096). Set negative to disable caching.
	CacheEntries int
	// BatchWindow is how long a forming batch waits for more queries
	// after its first (default 100µs). Under saturation batches fill to
	// MaxBatch before the window expires, so the window only taxes idle
	// traffic.
	BatchWindow time.Duration
	// MaxBatch bounds one batch (default 128).
	MaxBatch int
	// Counters receives the service's metrics; nil allocates a private
	// set (reachable via Counters()).
	Counters *Counters
}

// Batched is the production Service: a single-flight LRU cache in front of a
// coalescing request batcher in front of the store. Identical concurrent
// queries cost one evaluation; distinct concurrent point queries against the
// same cuboid cost one index probe per batch.
type Batched struct {
	store   *Store
	cache   *cache // nil when caching is disabled
	batcher *batcher
	metrics *Counters
}

var _ Service = (*Batched)(nil)

// NewService builds a batched service over a store.
func NewService(store *Store, cfg Config) *Batched {
	m := cfg.Counters
	if m == nil {
		m = &Counters{}
	}
	s := &Batched{
		store:   store,
		batcher: newBatcher(store, cfg.BatchWindow, cfg.MaxBatch, m),
		metrics: m,
	}
	if cfg.CacheEntries >= 0 {
		s.cache = newCache(cfg.CacheEntries, m)
	}
	return s
}

// Counters returns the service's metrics.
func (s *Batched) Counters() *Counters { return s.metrics }

// Store returns the served snapshot.
func (s *Batched) Store() *Store { return s.store }

// Query answers one query through the cache and batcher.
func (s *Batched) Query(q Query) (Result, error) {
	if err := q.validate(s.store.d); err != nil {
		s.metrics.queryError()
		return Result{}, err
	}
	s.metrics.query(q.Op)
	if q.Op == OpTopK && q.K == 0 {
		q.K = DefaultTopK // canonicalize so k=0 and k=DefaultTopK share a cache entry
	}
	if s.cache == nil {
		return s.batcher.do(q)
	}
	res, err := s.cache.do(cacheKey(q), func() (Result, error) {
		return s.batcher.do(q)
	})
	if err != nil {
		s.metrics.queryError()
	}
	return res, err
}

// Close stops the batcher; queries after Close return ErrClosed.
func (s *Batched) Close() error {
	s.batcher.close()
	return nil
}

// Direct is the unbatched, uncached Service: every query is evaluated
// immediately against the store. It exists as the baseline the batched
// service is differentially tested (and benchmarked) against.
type Direct struct {
	store   *Store
	metrics *Counters
}

var _ Service = (*Direct)(nil)

// NewDirect builds a direct service over a store; m may be nil.
func NewDirect(store *Store, m *Counters) *Direct {
	return &Direct{store: store, metrics: m}
}

// Query evaluates one query immediately.
func (s *Direct) Query(q Query) (Result, error) {
	res, err := s.store.Execute(q)
	if err != nil {
		s.metrics.queryError()
		return res, err
	}
	s.metrics.query(q.Op)
	return res, nil
}

// Close is a no-op.
func (s *Direct) Close() error { return nil }
