package serve

import (
	"sync/atomic"
	"time"
)

// Config parameterizes a batched service.
type Config struct {
	// CacheEntries bounds the single-flight LRU result cache
	// (default 4096). Set negative to disable caching.
	CacheEntries int
	// BatchWindow is how long a forming batch waits for more queries
	// after its first (default 100µs). Under saturation batches fill to
	// MaxBatch before the window expires, so the window only taxes idle
	// traffic.
	BatchWindow time.Duration
	// MaxBatch bounds one batch (default 128).
	MaxBatch int
	// Counters receives the service's metrics; nil allocates a private
	// set (reachable via Counters()).
	Counters *Counters
}

// StoreSource yields the current store snapshot. A bare *Store is its own
// (static) source; the Service implementations are live sources that follow
// Swap. HTTP handlers take a StoreSource so a long-lived server observes
// maintenance swaps without being rebuilt.
type StoreSource interface {
	Store() *Store
}

// Store returns the store itself: a *Store is a static StoreSource.
func (s *Store) Store() *Store { return s }

// Batched is the production Service: a single-flight LRU cache in front of a
// coalescing request batcher in front of the store. Identical concurrent
// queries cost one evaluation; distinct concurrent point queries against the
// same cuboid cost one index probe per batch.
//
// The served snapshot is swappable: Swap publishes a new store for all
// subsequent evaluations and then flushes the result cache, so no entry
// computed against the old snapshot outlives it (see Swap for the ordering
// argument).
type Batched struct {
	store   atomic.Pointer[Store]
	cache   *cache // nil when caching is disabled
	batcher *batcher
	metrics *Counters
}

var _ Service = (*Batched)(nil)
var _ StoreSource = (*Batched)(nil)

// NewService builds a batched service over a store.
func NewService(store *Store, cfg Config) *Batched {
	m := cfg.Counters
	if m == nil {
		m = &Counters{}
	}
	s := &Batched{metrics: m}
	s.store.Store(store)
	s.batcher = newBatcher(&s.store, cfg.BatchWindow, cfg.MaxBatch, m)
	if cfg.CacheEntries >= 0 {
		s.cache = newCache(cfg.CacheEntries, m)
	}
	return s
}

// Counters returns the service's metrics.
func (s *Batched) Counters() *Counters { return s.metrics }

// Store returns the currently served snapshot.
func (s *Batched) Store() *Store { return s.store.Load() }

// Swap atomically publishes a new snapshot and invalidates the result
// cache. The pointer is set BEFORE the flush, which makes stale entries
// impossible: every cache entry computed against the old store was inserted
// before the flush (insertion precedes evaluation, the batcher loads the
// store only after the query is in the cache) and is therefore removed by
// it, while any entry inserted after the flush was evaluated by a batch that
// loaded the store after the pointer moved. Post-Swap the cache can only
// hold new-snapshot results; readers in flight see one consistent snapshot
// or the other, never a mix.
func (s *Batched) Swap(store *Store) {
	s.store.Store(store)
	if s.cache != nil {
		s.cache.reset()
	}
	s.metrics.swap()
}

// Query answers one query through the cache and batcher.
func (s *Batched) Query(q Query) (Result, error) {
	if err := q.validate(s.store.Load().d); err != nil {
		s.metrics.queryError()
		return Result{}, err
	}
	s.metrics.query(q.Op)
	if q.Op == OpTopK && q.K == 0 {
		q.K = DefaultTopK // canonicalize so k=0 and k=DefaultTopK share a cache entry
	}
	if s.cache == nil {
		return s.batcher.do(q)
	}
	res, err := s.cache.do(cacheKey(q), func() (Result, error) {
		return s.batcher.do(q)
	})
	if err != nil {
		s.metrics.queryError()
	}
	return res, err
}

// Close stops the batcher; queries after Close return ErrClosed.
func (s *Batched) Close() error {
	s.batcher.close()
	return nil
}

// Direct is the unbatched, uncached Service: every query is evaluated
// immediately against the store. It exists as the baseline the batched
// service is differentially tested (and benchmarked) against. Like Batched
// it is swappable; with no cache to flush, Swap is just the pointer move.
type Direct struct {
	store   atomic.Pointer[Store]
	metrics *Counters
}

var _ Service = (*Direct)(nil)
var _ StoreSource = (*Direct)(nil)

// NewDirect builds a direct service over a store; m may be nil.
func NewDirect(store *Store, m *Counters) *Direct {
	s := &Direct{metrics: m}
	s.store.Store(store)
	return s
}

// Store returns the currently served snapshot.
func (s *Direct) Store() *Store { return s.store.Load() }

// Swap atomically publishes a new snapshot.
func (s *Direct) Swap(store *Store) {
	s.store.Store(store)
	s.metrics.swap()
}

// Query evaluates one query immediately.
func (s *Direct) Query(q Query) (Result, error) {
	res, err := s.store.Load().Execute(q)
	if err != nil {
		s.metrics.queryError()
		return res, err
	}
	s.metrics.query(q.Op)
	return res, nil
}

// Close is a no-op.
func (s *Direct) Close() error { return nil }
