package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// TestReadWhileUpdate is the read-while-update correctness gate (run under
// -race by `make race` and CI): 16 query workers hammer a batched, cached
// service while an updater applies a chain of delta patches through Swap.
// Every response must equal the brute-force answer of SOME version the
// client could legitimately observe — the version published before the query
// was issued, through the one being swapped in as the response returned —
// never a mix of versions and never one older than the pre-query snapshot.
//
// The version window is sound because the updater bumps the shared counter
// only AFTER Swap returns: a worker reading vb has the guarantee that
// Swap(vb) completed, so the pointer moved and the cache was flushed — a
// response older than vb is exactly the stale-cache bug Swap's ordering
// forbids. The upper bound is va+1 because Swap(va+1) may have landed while
// the counter still read va.
func TestReadWhileUpdate(t *testing.T) {
	const versions = 8
	rng := rand.New(rand.NewSource(97))
	tl := newTupleList(rng, 250, 3, 4)
	witness := []relation.Value{0, 0, 0}
	tl.rows = append(tl.rows, witness) // present from version 0

	// Evolve the relation: every version appends one witness copy (its
	// count is distinct per version — a strong staleness detector) plus
	// random churn.
	brutes := make([]*cube.Result, versions+1)
	stores := make([]*Store, versions+1)
	brutes[0] = cube.Brute(tl.relation(), agg.Count)
	st, err := Build(tl.relation(), brutes[0])
	if err != nil {
		t.Fatal(err)
	}
	stores[0] = st
	for v := 1; v <= versions; v++ {
		for i := 0; i < 2; i++ { // delete non-witness rows
			j := rng.Intn(len(tl.rows))
			if relation.ComparePacked(tl.rows[j], witness) == 0 {
				continue
			}
			tl.rows = append(tl.rows[:j], tl.rows[j+1:]...)
		}
		row := make([]relation.Value, tl.d)
		for j := range row {
			row[j] = relation.Value(rng.Intn(5))
		}
		tl.rows = append(tl.rows, row, append([]relation.Value(nil), witness...))
		brutes[v] = cube.Brute(tl.relation(), agg.Count)
		stores[v], err = stores[v-1].ApplyPatch(diffPatch(t, brutes[v-1], brutes[v]), nil)
		if err != nil {
			t.Fatalf("version %d: ApplyPatch: %v", v, err)
		}
	}

	d := tl.d
	full := lattice.Full(d)
	m := &Counters{}
	svc := NewService(stores[0], Config{
		CacheEntries: 512,
		BatchWindow:  200 * time.Microsecond,
		MaxBatch:     32,
		Counters:     m,
	})
	defer svc.Close()

	var ver atomic.Int64 // latest version whose Swap has COMPLETED
	var done atomic.Bool

	// pointOK reports whether a point response matches brute version v.
	pointOK := func(v int, mask lattice.Mask, packed []relation.Value, res Result) bool {
		want, found := brutes[v].Lookup(mask, relation.GroupVals(uint32(mask), packed, d))
		return res.Found == found && (!found || res.Value == want)
	}
	// sliceOK reports whether a whole-cuboid slice matches version v
	// exactly — a response mixing two versions fails every v.
	sliceOK := func(v int, mask lattice.Mask, res Result) bool {
		want := brutes[v].Cuboid(mask)
		if len(res.Groups) != len(want) {
			return false
		}
		for i, g := range res.Groups {
			if relation.ComparePacked(g.Packed, want[i].Packed) != 0 || g.Value != want[i].Value {
				return false
			}
		}
		return true
	}
	// rollupOK: the witness chain has every step in every version.
	rollupOK := func(v int, res Result) bool {
		if len(res.Groups) != d+1 {
			return false
		}
		for _, g := range res.Groups {
			want, found := brutes[v].Lookup(g.Mask, relation.GroupVals(uint32(g.Mask), g.Packed, d))
			if !found || g.Value != want {
				return false
			}
		}
		return true
	}

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + id)))
			for i := 0; ; i++ {
				if done.Load() && i >= 50 {
					return
				}
				vb := int(ver.Load())
				var q Query
				var check func(v int, res Result) bool
				switch rng.Intn(4) {
				case 0: // witness point: value strictly version-dependent
					q = Query{Op: OpPoint, Mask: full, Packed: witness}
					check = func(v int, res Result) bool { return pointOK(v, full, witness, res) }
				case 1: // random point on a random cuboid of version vb
					groups := brutes[vb].Cuboid(full)
					g := groups[rng.Intn(len(groups))]
					q = Query{Op: OpPoint, Mask: full, Packed: g.Packed}
					packed := g.Packed
					check = func(v int, res Result) bool { return pointOK(v, full, packed, res) }
				case 2: // whole-cuboid slice: must be internally one version
					mask := lattice.Mask(rng.Intn(int(full))) + 1
					q = Query{Op: OpSlice, Mask: mask}
					check = func(v int, res Result) bool { return sliceOK(v, mask, res) }
				default: // witness rollup chain
					q = Query{Op: OpRollup, Mask: full, Packed: witness}
					check = rollupOK
				}
				res, err := svc.Query(q)
				if err != nil {
					t.Errorf("worker %d: query %+v: %v", id, q, err)
					return
				}
				va := int(ver.Load())
				hi := va + 1
				if hi > versions {
					hi = versions
				}
				ok := false
				for v := vb; v <= hi && !ok; v++ {
					ok = check(v, res)
				}
				if !ok {
					t.Errorf("worker %d: query %+v: response matches no version in [%d, %d] (stale or torn read)",
						id, q, vb, hi)
					return
				}
			}
		}(w)
	}

	// The updater: swap each version in, then publish its number.
	for v := 1; v <= versions; v++ {
		time.Sleep(2 * time.Millisecond)
		svc.Swap(stores[v])
		ver.Store(int64(v))
	}
	done.Store(true)
	wg.Wait()

	if got := m.Swaps(); got != versions {
		t.Fatalf("swaps counter = %d, want %d", got, versions)
	}
	// Post-swap staleness check: with all swaps complete, the cache may
	// only answer from the final snapshot.
	wantFinal, _ := brutes[versions].Lookup(full, relation.GroupVals(uint32(full), witness, d))
	for i := 0; i < 20; i++ {
		res, err := svc.Query(Query{Op: OpPoint, Mask: full, Packed: witness})
		if err != nil || !res.Found || res.Value != wantFinal {
			t.Fatalf("post-swap witness query %d = %+v, %v (want %v): cache served a stale snapshot",
				i, res, err, wantFinal)
		}
	}
	if m.CacheHits() == 0 {
		t.Error("no cache hits: the stress run never exercised the cache path")
	}
}
