package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// TestConcurrentMixedQueries is the serving layer's concurrency gate (run
// under -race by `make race` and CI): many goroutines issue a mix of point,
// slice, rollup and top-k queries — some identical (exercising the cache and
// single-flight path), some distinct same-cuboid points (exercising batch
// coalescing) — and every answer is checked against the brute-force cube.
// The cache-hit and coalesced counters must both end up non-zero.
func TestConcurrentMixedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := cubetest.RandomRelation(rng, 600, 3, 4)
	res, _, err := cubetest.RunAndCollect(cubetest.NewEngine(4), naive.Compute, rel, cube.Spec{})
	if err != nil {
		t.Fatalf("computing cube: %v", err)
	}
	st, err := Build(rel, res)
	if err != nil {
		t.Fatal(err)
	}
	brute := cube.Brute(rel, agg.Count)
	d := rel.D()
	full := lattice.Full(d)

	m := &Counters{}
	svc := NewService(st, Config{
		CacheEntries: 1024,
		BatchWindow:  2 * time.Millisecond,
		MaxBatch:     64,
		Counters:     m,
	})
	defer svc.Close()

	// Precomputed read-only expectations, shared by all workers.
	fullGroups := brute.Cuboid(full)
	sliceCount := make(map[string]int) // mask|prefix -> group count
	for mask := lattice.Mask(0); mask <= full; mask++ {
		for _, g := range brute.Cuboid(mask) {
			for p := 0; p <= len(g.Packed); p++ {
				sliceCount[fmt.Sprintf("%d|%v", mask, g.Packed[:p])]++
			}
		}
	}
	check := func(id int, what string, ok bool, detail string) {
		if !ok {
			t.Errorf("worker %d: %s: %s", id, what, detail)
		}
	}

	const workers = 16
	const iters = 60
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			<-start
			for i := 0; i < iters; i++ {
				switch rng.Intn(4) {
				case 0: // random point on the full cuboid
					g := fullGroups[rng.Intn(len(fullGroups))]
					res, err := svc.Query(Query{Op: OpPoint, Mask: full, Packed: g.Packed})
					check(id, "point", err == nil && res.Found && res.Value == g.Value,
						fmt.Sprintf("%v -> %+v, %v (want %v)", g.Packed, res, err, g.Value))
				case 1: // the same top-k every time: after the first answer, a cache hit
					res, err := svc.Query(Query{Op: OpTopK, Mask: full, K: 5})
					ok := err == nil && len(res.Groups) == 5
					for j := 1; ok && j < len(res.Groups); j++ {
						ok = res.Groups[j-1].Value >= res.Groups[j].Value
					}
					check(id, "topk", ok, fmt.Sprintf("%+v, %v", res, err))
				case 2: // slice with a random prefix
					g := fullGroups[rng.Intn(len(fullGroups))]
					p := rng.Intn(d + 1)
					res, err := svc.Query(Query{Op: OpSlice, Mask: full, Packed: g.Packed[:p]})
					want := sliceCount[fmt.Sprintf("%d|%v", full, g.Packed[:p])]
					ok := err == nil && len(res.Groups) == want
					for _, sg := range res.Groups {
						v, found := brute.Lookup(sg.Mask, relation.GroupVals(uint32(sg.Mask), sg.Packed, d))
						ok = ok && found && v == sg.Value
					}
					check(id, "slice", ok,
						fmt.Sprintf("prefix %v -> %d groups, %v (want %d)", g.Packed[:p], len(res.Groups), err, want))
				default: // rollup from a full-cuboid group to the apex
					g := fullGroups[rng.Intn(len(fullGroups))]
					res, err := svc.Query(Query{Op: OpRollup, Mask: full, Packed: g.Packed})
					ok := err == nil && len(res.Groups) == d+1
					for _, sg := range res.Groups {
						v, found := brute.Lookup(sg.Mask, relation.GroupVals(uint32(sg.Mask), sg.Packed, d))
						ok = ok && found && v == sg.Value
					}
					check(id, "rollup", ok, fmt.Sprintf("%v -> %+v, %v", g.Packed, res, err))
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	// Coalescing needs distinct same-cuboid points arriving inside one batch
	// window as cache *misses*. Fire barrier-synchronized bursts of not-yet
	// cached point queries (one distinct group per goroutine) until a batch
	// coalesces; every group is checked against brute force along the way.
	burstGroups := allGroups(brute)
	for off := 0; m.Coalesced() == 0 && off+workers <= len(burstGroups); off += workers {
		var bwg sync.WaitGroup
		barrier := make(chan struct{})
		for i := 0; i < workers; i++ {
			bwg.Add(1)
			go func(g cube.Group) {
				defer bwg.Done()
				<-barrier
				res, err := svc.Query(Query{Op: OpPoint, Mask: g.Mask, Packed: g.Packed})
				if err != nil || !res.Found || res.Value != g.Value {
					t.Errorf("burst point %b/%v = %+v, %v (want %v)", g.Mask, g.Packed, res, err, g.Value)
				}
			}(burstGroups[off+i])
		}
		close(barrier)
		bwg.Wait()
	}

	if m.CacheHits() == 0 {
		t.Error("no cache hits despite repeated identical queries")
	}
	if m.Coalesced() == 0 {
		t.Error("no coalesced queries despite concurrent same-cuboid points")
	}
	stats := m.Snapshot()
	var total int64
	for _, n := range stats.Queries {
		total += n
	}
	if want := int64(workers * iters); total < want {
		t.Errorf("query counter total %d, want at least %d", total, want)
	}
}

// allGroups flattens the brute cube into one deterministic list of groups,
// largest cuboids first so barrier bursts draw distinct same-mask keys.
func allGroups(brute *cube.Result) []cube.Group {
	var out []cube.Group
	masks := make([]lattice.Mask, 0)
	for mask := lattice.Mask(0); mask <= lattice.Mask(uint32(1)<<uint(brute.D))-1; mask++ {
		masks = append(masks, mask)
	}
	// Highest level first: the full cuboid has the most distinct groups.
	for lvl := brute.D; lvl >= 0; lvl-- {
		for _, mask := range masks {
			if mask.Level() == lvl {
				out = append(out, brute.Cuboid(mask)...)
			}
		}
	}
	return out
}
