package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// retailFixture serves the paper's running example: a (name, city, year)
// sales relation with a string dictionary.
func retailFixture(t *testing.T) (*Batched, *Store, *Counters, *cube.Result) {
	t.Helper()
	rel := relationFromRows(t, [][]string{
		{"laptop", "Rome", "2012"},
		{"laptop", "Rome", "2012"},
		{"laptop", "Oslo", "2012"},
		{"phone", "Rome", "2012"},
		{"phone", "Rome", "2013"},
		{"tablet", "Oslo", "2013"},
	})
	res, _, err := cubetest.RunAndCollect(cubetest.NewEngine(2), naive.Compute, rel, cube.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(rel, res)
	if err != nil {
		t.Fatal(err)
	}
	m := &Counters{}
	svc := NewService(st, Config{BatchWindow: 100 * time.Microsecond, Counters: m})
	t.Cleanup(func() { svc.Close() })
	return svc, st, m, cube.Brute(rel, agg.Count)
}

func relationFromRows(t *testing.T, rows [][]string) *relation.Relation {
	t.Helper()
	rel := relation.New([]string{"name", "city", "year"}, "sales")
	for _, r := range rows {
		rel.AppendStrings(r, 1)
	}
	return rel
}

func doReq(t *testing.T, h http.Handler, method, target, body string) (int, QueryResponse) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, target, w.Body.String(), err)
	}
	return w.Code, resp
}

func TestHTTPPointQuery(t *testing.T) {
	svc, st, _, brute := retailFixture(t)
	h := NewHandler(svc, st, nil)

	// GET spelling. (laptop, *, 2012) groups name and year: mask 0b101.
	code, resp := doReq(t, h, http.MethodGet, "/v1/query?op=point&group=laptop,*,2012", "")
	if code != http.StatusOK || !resp.Found || resp.Value != 3 {
		t.Fatalf("GET point: %d %+v (want found value 3)", code, resp)
	}
	// POST spelling, default op is point.
	code, resp = doReq(t, h, http.MethodPost, "/v1/query", `{"group":["phone","Rome","*"]}`)
	want, _ := brute.Lookup(0b011, []relation.Value{1, 0, 0})
	if code != http.StatusOK || !resp.Found || resp.Value != want {
		t.Fatalf("POST point: %d %+v (want %v)", code, resp, want)
	}
	// A dictionary string the relation never saw: empty 200, not an error.
	code, resp = doReq(t, h, http.MethodGet, "/v1/query?op=point&group=mainframe,*,2012", "")
	if code != http.StatusOK || resp.Found || resp.Error != "" {
		t.Fatalf("unknown value: %d %+v", code, resp)
	}
}

func TestHTTPSliceRollupTopK(t *testing.T) {
	svc, st, _, _ := retailFixture(t)
	h := NewHandler(svc, st, nil)

	code, resp := doReq(t, h, http.MethodPost, "/v1/query", `{"op":"slice","group":["laptop","?","*"]}`)
	if code != http.StatusOK || len(resp.Groups) != 2 {
		t.Fatalf("slice: %d %+v (want laptop's 2 cities)", code, resp)
	}
	for _, g := range resp.Groups {
		if g.Group[0] != "laptop" || g.Group[2] != "*" {
			t.Fatalf("slice group rendered %v", g.Group)
		}
	}
	if resp.Groups[0].Group[1] != "Oslo" && resp.Groups[0].Group[1] != "Rome" {
		t.Fatalf("slice city %q not a dictionary string", resp.Groups[0].Group[1])
	}

	code, resp = doReq(t, h, http.MethodGet, "/v1/query?op=rollup&group=laptop,Rome,2012", "")
	if code != http.StatusOK || len(resp.Groups) != 4 {
		t.Fatalf("rollup: %d %+v (want 4 chain steps)", code, resp)
	}
	if last := resp.Groups[len(resp.Groups)-1]; last.Value != 6 || last.Group[0] != "*" {
		t.Fatalf("rollup apex %+v, want (*,*,*) = 6 rows", last)
	}

	code, resp = doReq(t, h, http.MethodGet, "/v1/query?op=topk&group=%3F,*,*&k=2", "")
	if code != http.StatusOK || len(resp.Groups) != 2 {
		t.Fatalf("topk: %d %+v", code, resp)
	}
	if resp.Groups[0].Group[0] != "laptop" || resp.Groups[0].Value != 3 {
		t.Fatalf("topk leader %+v, want laptop=3", resp.Groups[0])
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc, st, _, _ := retailFixture(t)
	h := NewHandler(svc, st, nil)
	cases := []struct {
		name, method, target, body string
	}{
		{"bad op", http.MethodGet, "/v1/query?op=dice&group=*,*,*", ""},
		{"wrong arity", http.MethodGet, "/v1/query?op=point&group=*,*", ""},
		{"? in point", http.MethodGet, "/v1/query?op=point&group=%3F,*,*", ""},
		{"value after ?", http.MethodGet, "/v1/query?op=slice&group=%3F,Rome,*", ""},
		{"value in topk", http.MethodGet, "/v1/query?op=topk&group=laptop,%3F,*", ""},
		{"bad k", http.MethodGet, "/v1/query?op=topk&group=%3F,*,*&k=two", ""},
		{"bad body", http.MethodPost, "/v1/query", `{"op":`},
		{"bad method", http.MethodPut, "/v1/query", `{}`},
	}
	for _, c := range cases {
		code, resp := doReq(t, h, c.method, c.target, c.body)
		if code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: %d %+v, want 400 with error", c.name, code, resp)
		}
	}
}

func TestHTTPSchemaStatsHealth(t *testing.T) {
	svc, st, m, brute := retailFixture(t)
	h := NewHandler(svc, st, m)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/schema", nil))
	var schema SchemaDoc
	if err := json.Unmarshal(w.Body.Bytes(), &schema); err != nil {
		t.Fatalf("schema: %v", err)
	}
	if len(schema.Dims) != 3 || schema.Dims[0].Name != "name" || schema.Measure != "sales" {
		t.Fatalf("schema dims %+v measure %q", schema.Dims, schema.Measure)
	}
	if !reflect.DeepEqual(schema.Dims[1].Values, []string{"Oslo", "Rome"}) &&
		!reflect.DeepEqual(schema.Dims[1].Values, []string{"Rome", "Oslo"}) {
		t.Fatalf("city values %v", schema.Dims[1].Values)
	}
	if schema.Groups != brute.Len() || len(schema.Cuboids) != 8 {
		t.Fatalf("schema groups=%d cuboids=%d, want %d and 8", schema.Groups, len(schema.Cuboids), brute.Len())
	}
	if len(schema.Cuboids[0].Dims) != 0 || schema.Cuboids[0].Size != 1 {
		t.Fatalf("apex cuboid %+v", schema.Cuboids[0])
	}

	// Issue one query, then check the stats document.
	doReq(t, h, http.MethodGet, "/v1/query?op=point&group=laptop,*,2012", "")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var stats Stats
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.SchemaVersion != MetricsSchemaVersion || stats.Tool != "spserve" {
		t.Fatalf("stats header %+v", stats)
	}
	if stats.Queries["point"] == 0 || stats.Groups != brute.Len() || stats.Cuboids != 8 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestHTTPClosedService(t *testing.T) {
	svc, st, _, _ := retailFixture(t)
	h := NewHandler(svc, st, nil)
	svc.Close()
	code, resp := doReq(t, h, http.MethodGet, "/v1/query?op=point&group=laptop,*,2012", "")
	if code != http.StatusServiceUnavailable || resp.Error == "" {
		t.Fatalf("closed service: %d %+v, want 503", code, resp)
	}
}

func TestDirectServiceMatchesBatched(t *testing.T) {
	svc, st, _, brute := retailFixture(t)
	direct := NewDirect(st, &Counters{})
	defer direct.Close()
	full := lattice.Full(st.D())
	for _, g := range brute.Cuboid(full) {
		q := Query{Op: OpPoint, Mask: full, Packed: g.Packed}
		a, errA := svc.Query(q)
		b, errB := direct.Query(q)
		if errA != nil || errB != nil || a.Found != b.Found || a.Value != b.Value ||
			!a.Found || a.Value != g.Value {
			t.Fatalf("batched %+v/%v vs direct %+v/%v for %v", a, errA, b, errB, g.Packed)
		}
	}
	if _, err := direct.Query(Query{Op: Op(9)}); err == nil {
		t.Fatal("direct accepted an invalid op")
	}
}
