package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// MetricsSchemaVersion versions the serving-metrics JSON document
// (Counters.Snapshot). Bump it when fields change meaning or disappear;
// adding fields is compatible.
const MetricsSchemaVersion = 1

// Counters is the serving layer's always-on metrics: cheap atomic counters
// incremented on the query path, snapshotted into a versioned JSON document
// for the /v1/stats endpoint and the obs /debug/serve route. The zero value
// is ready to use; a nil *Counters is a valid no-op sink.
type Counters struct {
	queries [numOps]atomic.Int64
	errors  atomic.Int64

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	flightsShared atomic.Int64

	batches        atomic.Int64
	batchedQueries atomic.Int64
	coalesced      atomic.Int64
	probes         atomic.Int64

	swaps atomic.Int64
}

func (c *Counters) query(op Op) {
	if c != nil && int(op) < numOps {
		c.queries[op].Add(1)
	}
}

func (c *Counters) queryError() {
	if c != nil {
		c.errors.Add(1)
	}
}

func (c *Counters) cacheHit() {
	if c != nil {
		c.cacheHits.Add(1)
	}
}

func (c *Counters) cacheMiss() {
	if c != nil {
		c.cacheMisses.Add(1)
	}
}

func (c *Counters) flightShared() {
	if c != nil {
		c.flightsShared.Add(1)
	}
}

// batch records one executed batch: n queries answered with p index probes.
func (c *Counters) batch(n, p int) {
	if c != nil {
		c.batches.Add(1)
		c.batchedQueries.Add(int64(n))
		c.coalesced.Add(int64(n - p))
		c.probes.Add(int64(p))
	}
}

// swap records one snapshot swap (a maintenance round going live).
func (c *Counters) swap() {
	if c != nil {
		c.swaps.Add(1)
	}
}

// Swaps returns how many snapshot swaps the service has served.
func (c *Counters) Swaps() int64 { return c.swaps.Load() }

// CacheHits returns the cache-hit count (hits on completed entries plus
// single-flight waiters that shared an in-flight evaluation).
func (c *Counters) CacheHits() int64 { return c.cacheHits.Load() + c.flightsShared.Load() }

// Coalesced returns how many batched queries shared another query's index
// probe (the batch size minus one probe per distinct cuboid key set).
func (c *Counters) Coalesced() int64 { return c.coalesced.Load() }

// Stats is the serving metrics document.
type Stats struct {
	SchemaVersion int              `json:"schemaVersion"`
	Tool          string           `json:"tool"`
	Queries       map[string]int64 `json:"queries"`
	Errors        int64            `json:"errors"`
	// CacheHits counts lookups answered from a completed cache entry;
	// FlightsShared counts lookups that joined an in-flight evaluation of
	// the same query (single-flight coalescing); CacheMisses counts
	// evaluations actually started.
	CacheHits     int64 `json:"cacheHits"`
	CacheMisses   int64 `json:"cacheMisses"`
	FlightsShared int64 `json:"flightsShared"`
	// Batches counts executed batches, BatchedQueries the queries they
	// carried, Probes the index probes they cost, and Coalesced the
	// queries that rode along on another query's probe
	// (BatchedQueries - Probes).
	Batches        int64 `json:"batches"`
	BatchedQueries int64 `json:"batchedQueries"`
	Probes         int64 `json:"probes"`
	Coalesced      int64 `json:"coalesced"`
	// Swaps counts snapshot swaps (maintenance rounds gone live).
	Swaps int64 `json:"swaps"`
	// Groups and Cuboids describe the served snapshot (0 when the
	// counters are not attached to a store).
	Groups  int `json:"groups,omitempty"`
	Cuboids int `json:"cuboids,omitempty"`
}

// Snapshot materializes the current counter values.
func (c *Counters) Snapshot() Stats {
	s := Stats{
		SchemaVersion: MetricsSchemaVersion,
		Tool:          "spserve",
		Queries:       make(map[string]int64, numOps),
	}
	if c == nil {
		return s
	}
	for op := Op(0); op < numOps; op++ {
		s.Queries[op.String()] = c.queries[op].Load()
	}
	s.Errors = c.errors.Load()
	s.CacheHits = c.cacheHits.Load()
	s.CacheMisses = c.cacheMisses.Load()
	s.FlightsShared = c.flightsShared.Load()
	s.Batches = c.batches.Load()
	s.BatchedQueries = c.batchedQueries.Load()
	s.Probes = c.probes.Load()
	s.Coalesced = c.coalesced.Load()
	s.Swaps = c.swaps.Load()
	return s
}

// StatsHandler serves the counters as an indented JSON Stats document,
// annotated with the current snapshot's shape (loaded from src per request,
// so a long-lived server reports the post-swap store). Either argument may
// be nil.
func StatsHandler(c *Counters, src StoreSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := c.Snapshot()
		if src != nil {
			if store := src.Store(); store != nil {
				s.Groups = store.Groups()
				s.Cuboids = len(store.byMask)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}
