package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/spcube/spcube/internal/lattice"
)

// The HTTP/JSON API. Queries name groups the way the paper writes them: one
// value per dimension, with "*" for a dimension aggregated away and "?" for
// a dimension grouped on but unconstrained. So over (name, city, year):
//
//	{"op":"point",  "group":["laptop","*","2012"]}        value of (laptop,*,2012)
//	{"op":"slice",  "group":["laptop","?","*"]}           every city for laptop
//	{"op":"rollup", "group":["laptop","Rome","2012"]}     chain up to the apex
//	{"op":"topk",   "group":["?","?","*"], "k":3}         3 largest (name,city) groups
//
// GET /v1/query?op=point&group=laptop,*,2012 is the curl-friendly spelling
// (values therefore cannot contain commas; POST JSON has no such limit).

// QueryRequest is the wire form of one query.
type QueryRequest struct {
	Op string `json:"op"`
	// Group has one entry per dimension: a value, "*" (aggregated away)
	// or "?" (grouped, unconstrained).
	Group []string `json:"group"`
	// K is the top-k result size (topk only; default DefaultTopK).
	K int `json:"k,omitempty"`
}

// GroupDoc is one c-group in a response, in full-width display form.
type GroupDoc struct {
	Group []string `json:"group"`
	Value float64  `json:"value"`
}

// QueryResponse is the wire form of an answer. Point queries fill
// Found/Value; the other ops fill Groups.
type QueryResponse struct {
	Op     string     `json:"op"`
	Found  bool       `json:"found,omitempty"`
	Value  float64    `json:"value,omitempty"`
	Groups []GroupDoc `json:"groups,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// SchemaDoc describes the served cube to clients (the load generator reads
// it to build a realistic query population).
type SchemaDoc struct {
	Dims    []DimSchema `json:"dims"`
	Measure string      `json:"measure"`
	Groups  int         `json:"groups"`
	Cuboids []CuboidDoc `json:"cuboids"`
}

// DimSchema is one dimension: its name and a sample of served values (from
// the single-attribute cuboid, capped at SchemaValueCap).
type DimSchema struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// CuboidDoc is one materialized cuboid: the names of its grouped dimensions
// and its group count.
type CuboidDoc struct {
	Dims []string `json:"dims"`
	Size int      `json:"size"`
}

// SchemaValueCap bounds the per-dimension value sample in SchemaDoc.
const SchemaValueCap = 1024

// NewHandler builds the HTTP front end over a service: POST|GET /v1/query,
// GET /v1/schema, GET /v1/stats, GET /healthz. src must yield the snapshot
// the service serves — pass the Batched/Direct service itself so the
// handlers follow maintenance swaps, or a bare *Store for a static cube; m
// may be nil. Each request loads the snapshot once and uses it for parsing
// and rendering, so one response never mixes snapshots.
func NewHandler(svc Service, src StoreSource, m *Counters) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/schema", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, schemaDoc(src.Store()))
	})
	mux.Handle("/v1/stats", StatsHandler(m, src))
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		req, err := decodeQueryRequest(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
			return
		}
		handleQuery(w, svc, src.Store(), req)
	})
	return mux
}

func schemaDoc(store *Store) SchemaDoc {
	schema := store.Schema()
	doc := SchemaDoc{
		Dims:    make([]DimSchema, store.D()),
		Measure: schema.MeasureName,
		Groups:  store.Groups(),
	}
	for i := range doc.Dims {
		doc.Dims[i] = DimSchema{
			Name:   schema.DimNames[i],
			Values: store.DimValues(i, SchemaValueCap),
		}
	}
	for _, ci := range store.Cuboids() {
		var dims []string
		for i := 0; i < store.D(); i++ {
			if ci.Mask.Has(i) {
				dims = append(dims, schema.DimNames[i])
			}
		}
		doc.Cuboids = append(doc.Cuboids, CuboidDoc{Dims: dims, Size: ci.Size})
	}
	return doc
}

// decodeQueryRequest accepts POST (JSON body) and GET (?op=&group=a,b,*&k=).
func decodeQueryRequest(r *http.Request) (QueryRequest, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Op = q.Get("op")
		if g := q.Get("group"); g != "" {
			req.Group = strings.Split(g, ",")
		}
		if ks := q.Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				return req, fmt.Errorf("bad k %q", ks)
			}
			req.K = k
		}
	default:
		return req, fmt.Errorf("method %s not allowed (want GET or POST)", r.Method)
	}
	if req.Op == "" {
		req.Op = "point"
	}
	return req, nil
}

// errUnknownValue marks a query naming a dimension value the served relation
// never saw: the group cannot exist, so the answer is an empty result, not
// an error.
var errUnknownValue = errors.New("unknown dimension value")

// parseGroupSpec translates a wire-form group into a Query.
func parseGroupSpec(store *Store, op Op, group []string, k int) (Query, error) {
	d := store.D()
	if len(group) != d {
		return Query{}, fmt.Errorf("serve: group needs %d entries, got %d", d, len(group))
	}
	q := Query{Op: op, K: k}
	wild := false
	for i, g := range group {
		switch g {
		case "*":
			continue
		case "?":
			q.Mask |= lattice.Mask(1) << uint(i)
			wild = true
			switch op {
			case OpPoint, OpRollup:
				return Query{}, fmt.Errorf("serve: %s query cannot use \"?\" (dimension %s)", op, store.Schema().DimNames[i])
			}
		default:
			q.Mask |= lattice.Mask(1) << uint(i)
			if wild {
				// The sorted runs are prefix-ordered by ascending
				// attribute, so a concrete value after a "?" is not a
				// contiguous range.
				return Query{}, fmt.Errorf("serve: slice values must precede \"?\" entries (dimension %s)", store.Schema().DimNames[i])
			}
			if op == OpTopK {
				return Query{}, fmt.Errorf("serve: topk query takes only \"?\" and \"*\" entries, got %q", g)
			}
			code, ok := store.DimCode(i, g)
			if !ok {
				return Query{}, errUnknownValue
			}
			q.Packed = append(q.Packed, code)
		}
	}
	return q, nil
}

func handleQuery(w http.ResponseWriter, svc Service, store *Store, req QueryRequest) {
	op, err := OpByName(req.Op)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	q, err := parseGroupSpec(store, op, req.Group, req.K)
	if errors.Is(err, errUnknownValue) {
		// A group over a never-seen value does not exist: empty answer.
		writeJSON(w, http.StatusOK, QueryResponse{Op: op.String()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	res, err := svc.Query(q)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, QueryResponse{Op: op.String(), Error: err.Error()})
		return
	}
	resp := QueryResponse{Op: op.String(), Found: res.Found, Value: res.Value}
	for _, g := range res.Groups {
		resp.Groups = append(resp.Groups, GroupDoc{Group: renderGroup(store, g), Value: g.Value})
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderGroup expands a packed group to its full-width display form.
func renderGroup(store *Store, g Group) []string {
	out := make([]string, store.D())
	j := 0
	for i := range out {
		if g.Mask.Has(i) {
			out[i] = store.DimString(i, g.Packed[j])
			j++
		} else {
			out[i] = "*"
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
