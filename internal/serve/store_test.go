package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// buildStore computes a cube with the naive algorithm and indexes it,
// returning the store plus the brute-force ground truth.
func buildStore(t *testing.T, n, d, card int) (*Store, *cube.Result, *relation.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rel := cubetest.RandomRelation(rng, n, d, card)
	res, _, err := cubetest.RunAndCollect(cubetest.NewEngine(4), naive.Compute, rel, cube.Spec{})
	if err != nil {
		t.Fatalf("computing cube: %v", err)
	}
	st, err := Build(rel, res)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return st, cube.Brute(rel, agg.Count), rel
}

func TestStorePointMatchesBrute(t *testing.T) {
	st, brute, rel := buildStore(t, 500, 3, 4)
	d := rel.D()
	if st.Groups() != brute.Len() {
		t.Fatalf("store has %d groups, brute %d", st.Groups(), brute.Len())
	}
	// Every brute group must be found with the right value, through both
	// the hash index and the sorted-run binary search.
	for key, want := range brute.Groups {
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := st.Point(lattice.Mask(mask), packed); !ok || got != want {
			t.Fatalf("Point(%b, %v) = %v,%v want %v", mask, packed, got, ok, want)
		}
		if got, ok := st.pointSearch(lattice.Mask(mask), packed); !ok || got != want {
			t.Fatalf("pointSearch(%b, %v) = %v,%v want %v", mask, packed, got, ok, want)
		}
	}
	// A value outside every column's domain misses.
	miss := make([]relation.Value, d)
	for i := range miss {
		miss[i] = 9999
	}
	if _, ok := st.Point(lattice.Full(d), miss); ok {
		t.Fatal("found a group that cannot exist")
	}
}

func TestStorePointBatch(t *testing.T) {
	st, brute, rel := buildStore(t, 300, 3, 4)
	mask := lattice.Full(rel.D())
	var keys [][]relation.Value
	var want []float64
	var found []bool
	for _, g := range brute.Cuboid(mask) {
		keys = append(keys, g.Packed)
		want = append(want, g.Value)
		found = append(found, true)
	}
	// Interleave misses and duplicates in arbitrary positions.
	keys = append(keys, []relation.Value{999, 999, 999}, keys[0])
	want = append(want, 0, want[0])
	found = append(found, false, true)
	got := st.PointBatch(mask, keys)
	for i := range keys {
		if got[i].Found != found[i] || (found[i] && got[i].Value != want[i]) {
			t.Fatalf("PointBatch[%d] = %+v, want found=%v value=%v", i, got[i], found[i], want[i])
		}
	}
	// Unknown cuboid: all misses, no panic.
	for _, r := range NewStoreForTest(t).PointBatch(lattice.Mask(1), [][]relation.Value{{1}}) {
		if r.Found {
			t.Fatal("found group in empty store")
		}
	}
}

// NewStoreForTest builds an empty-but-valid store.
func NewStoreForTest(t *testing.T) *Store {
	t.Helper()
	rel := relation.New([]string{"a"}, "m")
	rel.AppendStrings([]string{"x"}, 1)
	st, err := Build(rel, cube.NewResult(1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreSliceMatchesBrute(t *testing.T) {
	st, brute, rel := buildStore(t, 400, 3, 3)
	d := rel.D()
	for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
		all := brute.Cuboid(mask)
		// Every prefix length, every value prefix occurring in the data.
		for p := 0; p <= mask.Level(); p++ {
			seen := map[string][]cube.Group{}
			var order []string
			for _, g := range all {
				k := fmt.Sprint(g.Packed[:p])
				if _, ok := seen[k]; !ok {
					order = append(order, k)
				}
				seen[k] = append(seen[k], g)
			}
			for _, k := range order {
				want := seen[k]
				got := st.Slice(mask, want[0].Packed[:p])
				if len(got) != len(want) {
					t.Fatalf("Slice(%b, %v): %d groups, want %d", mask, want[0].Packed[:p], len(got), len(want))
				}
				for i := range got {
					if relation.ComparePacked(got[i].Packed, want[i].Packed) != 0 || got[i].Value != want[i].Value {
						t.Fatalf("Slice(%b)[%d] = %v/%v, want %v/%v",
							mask, i, got[i].Packed, got[i].Value, want[i].Packed, want[i].Value)
					}
				}
			}
		}
	}
	// A prefix over values never seen returns nothing.
	if got := st.Slice(lattice.Full(d), []relation.Value{1234}); got != nil {
		t.Fatalf("impossible prefix returned %d groups", len(got))
	}
}

func TestStoreRollup(t *testing.T) {
	st, brute, rel := buildStore(t, 200, 3, 3)
	d := rel.D()
	full := lattice.Full(d)
	for _, g := range brute.Cuboid(full) {
		chain := st.Rollup(full, g.Packed)
		if len(chain) != d+1 {
			t.Fatalf("rollup of %v: %d steps, want %d", g.Packed, len(chain), d+1)
		}
		mask, packed := full, g.Packed
		for i, step := range chain {
			if step.Mask != mask {
				t.Fatalf("rollup step %d mask %b, want %b", i, step.Mask, mask)
			}
			want, ok := brute.Lookup(mask, relation.GroupVals(uint32(mask), packed, d))
			if !ok || step.Value != want {
				t.Fatalf("rollup step %d = %v, want %v (ok=%v)", i, step.Value, want, ok)
			}
			if mask != 0 {
				packed = packed[:len(packed)-1]
				mask &^= lattice.Mask(1) << uint(mask.Level()+countTrailing(mask)-1)
			}
		}
	}
}

// countTrailing is a helper to recompute the dropped top bit; kept trivial
// to stay independent of the implementation under test.
func countTrailing(m lattice.Mask) int {
	top := -1
	for i := 0; i < 32; i++ {
		if m.Has(i) {
			top = i
		}
	}
	// Return offset such that mask.Level()+offset-1 == top.
	return top - m.Level() + 1
}

func TestStoreTopK(t *testing.T) {
	st, brute, rel := buildStore(t, 400, 3, 3)
	d := rel.D()
	for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
		want := brute.Cuboid(mask) // ascending packed order
		sort.SliceStable(want, func(i, j int) bool { return want[i].Value > want[j].Value })
		for _, k := range []int{1, 3, len(want), len(want) + 5} {
			got := st.TopK(mask, k)
			n := k
			if n > len(want) {
				n = len(want)
			}
			if len(got) != n {
				t.Fatalf("TopK(%b, %d): %d groups, want %d", mask, k, len(got), n)
			}
			for i := range got {
				if got[i].Value != want[i].Value {
					t.Fatalf("TopK(%b, %d)[%d] = %v, want %v", mask, k, i, got[i].Value, want[i].Value)
				}
			}
		}
	}
	if got := st.TopK(lattice.Mask(1), 0); got != nil {
		t.Fatal("TopK with k=0 returned groups")
	}
}

func TestStoreExecuteValidates(t *testing.T) {
	st, _, rel := buildStore(t, 50, 2, 3)
	d := rel.D()
	cases := []Query{
		{Op: Op(99)},
		{Op: OpPoint, Mask: lattice.Full(d) + 1},
		{Op: OpPoint, Mask: lattice.Full(d), Packed: []relation.Value{1}},
		{Op: OpRollup, Mask: lattice.Full(d), Packed: []relation.Value{1, 2, 3}},
		{Op: OpSlice, Mask: lattice.Mask(1), Packed: []relation.Value{1, 2}},
		{Op: OpTopK, Mask: lattice.Mask(1), Packed: []relation.Value{1}},
		{Op: OpTopK, Mask: lattice.Mask(1), K: -2},
	}
	for _, q := range cases {
		if _, err := st.Execute(q); err == nil {
			t.Fatalf("Execute(%+v) did not fail", q)
		}
	}
	// Default top-k size applies.
	res, err := st.Execute(Query{Op: OpTopK, Mask: lattice.Full(d)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 || len(res.Groups) > DefaultTopK {
		t.Fatalf("default top-k returned %d groups", len(res.Groups))
	}
}

func TestStoreDimValuesAndCuboids(t *testing.T) {
	st, brute, rel := buildStore(t, 300, 3, 4)
	d := rel.D()
	infos := st.Cuboids()
	if len(infos) != 1<<d {
		t.Fatalf("%d cuboids, want %d", len(infos), 1<<d)
	}
	for i := 1; i < len(infos); i++ {
		if !lattice.BFSLess(infos[i-1].Mask, infos[i].Mask) {
			t.Fatal("cuboids not in BFS order")
		}
	}
	for _, ci := range infos {
		if want := len(brute.Cuboid(ci.Mask)); ci.Size != want {
			t.Fatalf("cuboid %b size %d, want %d", ci.Mask, ci.Size, want)
		}
	}
	for i := 0; i < d; i++ {
		vals := st.DimValues(i, 0)
		if want := len(brute.Cuboid(lattice.Mask(1) << uint(i))); len(vals) != want {
			t.Fatalf("dim %d: %d values, want %d", i, len(vals), want)
		}
		if capped := st.DimValues(i, 2); len(capped) != 2 {
			t.Fatalf("dim %d: cap ignored (%d values)", i, len(capped))
		}
	}
}

func TestBuildRejectsCorruptKeys(t *testing.T) {
	rel := relation.New([]string{"a"}, "m")
	rel.AppendStrings([]string{"x"}, 1)
	res := cube.NewResult(1)
	res.Groups["\xff\xff\xff\xff\xff\xff"] = 1 // truncated uvarint mask
	if _, err := Build(rel, res); err == nil {
		t.Fatal("Build accepted a corrupt group key")
	}
}
