package serve

import (
	"fmt"
	"sort"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Patch is a batch of group-level edits — upserts and removals keyed by
// encoded group key — produced by one incremental-maintenance round
// (delta.Round.Changes) and applied to a Store with ApplyPatch. Entries are
// grouped by cuboid; order of addition is irrelevant except that a later
// entry for the same key supersedes an earlier one.
type Patch struct {
	perMask map[lattice.Mask][]patchEntry
	n       int
}

// patchEntry is one edit in decoded form.
type patchEntry struct {
	seq    int // addition order, for last-wins dedup of equal keys
	packed []relation.Value
	val    float64
	del    bool
}

// NewPatch returns an empty patch.
func NewPatch() *Patch {
	return &Patch{perMask: make(map[lattice.Mask][]patchEntry)}
}

// Len returns the number of edits added.
func (p *Patch) Len() int { return p.n }

// Set records that the group with the given encoded key now has value v
// (inserting the group if the store lacks it).
func (p *Patch) Set(key string, v float64) error {
	return p.add(key, v, false)
}

// Delete records that the group with the given encoded key is gone. Deleting
// a group the store does not hold is a no-op at apply time.
func (p *Patch) Delete(key string) error {
	return p.add(key, 0, true)
}

func (p *Patch) add(key string, v float64, del bool) error {
	mask, packed, err := relation.DecodeGroupKey(key)
	if err != nil {
		return err
	}
	m := lattice.Mask(mask)
	p.perMask[m] = append(p.perMask[m], patchEntry{seq: p.n, packed: packed, val: v, del: del})
	p.n++
	return nil
}

// ApplyPatch merges a patch into the store, returning a NEW immutable
// snapshot; the receiver is untouched and stays fully servable. Cuboids the
// patch does not touch are shared between the two snapshots (copy-on-write);
// each touched cuboid is rebuilt by a two-run mr.LoserTree merge of its old
// sorted run against the sorted patch entries — the same tournament merge
// the engine's reduce-side shuffle uses. A cuboid emptied by deletions is
// dropped; a cuboid the store never held is created.
//
// dict, when non-nil, replaces the store's dictionary in the new snapshot
// (appends can mint codes the old dictionary lacks; the maintainer's
// copy-on-write dictionary keeps the old snapshot's codes valid forever).
func (s *Store) ApplyPatch(p *Patch, dict *relation.Dictionary) (*Store, error) {
	ns := &Store{
		d:      s.d,
		schema: s.schema,
		dict:   s.dict,
		byMask: make(map[lattice.Mask]*cuboid, len(s.byMask)),
	}
	if dict != nil {
		ns.dict = dict
	}
	for mask, c := range s.byMask {
		ns.byMask[mask] = c // shared until the patch says otherwise
	}
	for mask, entries := range p.perMask {
		if mask > lattice.Full(s.d) {
			return nil, fmt.Errorf("serve: patch cuboid %b out of range for %d dimensions", uint32(mask), s.d)
		}
		merged := patchCuboid(s.byMask[mask], mask, entries)
		if merged == nil {
			delete(ns.byMask, mask)
		} else {
			ns.byMask[mask] = merged
		}
	}
	for _, c := range ns.byMask {
		ns.groups += c.rows()
	}
	return ns, nil
}

// patchCuboid merges one cuboid's sorted run (old may be nil) with its patch
// entries through a two-run loser tree: run 0 is the old run, run 1 the
// sorted patch. On equal keys the patch wins and the old row is consumed
// silently — a Set replaces it, a Delete drops it. Returns nil when the
// merge leaves no rows.
func patchCuboid(old *cuboid, mask lattice.Mask, entries []patchEntry) *cuboid {
	entries = dedupEntries(entries)
	stride := mask.Level()
	oldN := 0
	if old != nil {
		oldN = old.rows()
	}

	oi, pi := 0, 0
	head := func(run int) []relation.Value {
		if run == 0 {
			return old.row(oi)
		}
		return entries[pi].packed
	}
	beats := func(a, b int) bool {
		ea := (a == 0 && oi >= oldN) || (a == 1 && pi >= len(entries))
		eb := (b == 0 && oi >= oldN) || (b == 1 && pi >= len(entries))
		switch { // drained runs lose to live ones (+∞ sentinels)
		case ea && eb:
			return a < b
		case ea:
			return false
		case eb:
			return true
		}
		if c := relation.ComparePacked(head(a), head(b)); c != 0 {
			return c < 0
		}
		return a == 1 // equal keys: the patch entry supersedes the old row
	}
	tree := mr.NewLoserTree(2, beats)

	nc := &cuboid{
		mask:   mask,
		stride: stride,
		packed: make([]relation.Value, 0, (oldN+len(entries))*stride),
		vals:   make([]float64, 0, oldN+len(entries)),
	}
	for oi < oldN || pi < len(entries) {
		if tree.Winner() == 0 {
			nc.packed = append(nc.packed, old.row(oi)...)
			nc.vals = append(nc.vals, old.vals[oi])
			oi++
			tree.Replay()
			continue
		}
		e := entries[pi]
		pi++
		if !e.del {
			nc.packed = append(nc.packed, e.packed...)
			nc.vals = append(nc.vals, e.val)
		}
		if oi < oldN && relation.ComparePacked(old.row(oi), e.packed) == 0 {
			// The patch superseded this old row: consume it too. Both
			// cursors moved, so replay the whole (two-leaf) tournament.
			oi++
			tree.Reset()
		} else {
			tree.Replay()
		}
	}
	if nc.rows() == 0 {
		return nil
	}
	nc.point = make(map[string]int32, nc.rows())
	for i := 0; i < nc.rows(); i++ {
		nc.point[relation.GroupKeyPacked(uint32(mask), nc.row(i))] = int32(i)
	}
	return nc
}

// dedupEntries sorts a cuboid's patch entries by packed key and collapses
// duplicates to the last-added entry, returning a fresh slice (the patch
// stays reusable).
func dedupEntries(entries []patchEntry) []patchEntry {
	sorted := make([]patchEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if c := relation.ComparePacked(sorted[i].packed, sorted[j].packed); c != 0 {
			return c < 0
		}
		return sorted[i].seq < sorted[j].seq
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i+1 < len(sorted) && relation.ComparePacked(e.packed, sorted[i+1].packed) == 0 {
			continue // a later entry for the same key supersedes this one
		}
		out = append(out, e)
	}
	return out
}
