package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// batcher coalesces concurrent queries into batches executed against the
// store by a single dispatcher goroutine. Point queries that land in the
// same batch and target the same cuboid are answered by one galloping pass
// over that cuboid's sorted run (Store.PointBatch) — the index probe
// thousands of concurrent clients degenerate to. Non-point queries (slice,
// rollup, top-k) are already single range/multi probes and execute
// individually within the batch.
//
// A batch forms when the dispatcher receives the first pending query: it
// keeps accepting queries until window elapses or maxBatch queries are
// buffered, then executes. Under light load the window is the only added
// latency; under heavy load batches fill instantly and the window never
// expires.
//
// The batcher holds the service's swappable store pointer and loads it ONCE
// per executed batch, so every query of a batch is answered from the same
// immutable snapshot even if a maintenance swap lands mid-batch.
type batcher struct {
	store    *atomic.Pointer[Store]
	window   time.Duration
	maxBatch int
	metrics  *Counters

	mu     sync.RWMutex // guards closed; held shared around sends
	closed bool
	reqs   chan *request
	wg     sync.WaitGroup
}

// request is one query in flight through the batcher.
type request struct {
	q    Query
	resp chan response
}

type response struct {
	res Result
	err error
}

func newBatcher(store *atomic.Pointer[Store], window time.Duration, maxBatch int, m *Counters) *batcher {
	if window <= 0 {
		window = 100 * time.Microsecond
	}
	if maxBatch <= 0 {
		maxBatch = 128
	}
	b := &batcher{
		store:    store,
		window:   window,
		maxBatch: maxBatch,
		metrics:  m,
		reqs:     make(chan *request, maxBatch),
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// do submits one query and waits for its batch to execute.
func (b *batcher) do(q Query) (Result, error) {
	r := &request{q: q, resp: make(chan response, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Result{}, ErrClosed
	}
	b.reqs <- r
	b.mu.RUnlock()
	resp := <-r.resp
	return resp.res, resp.err
}

// close stops the dispatcher after draining every submitted query.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.reqs)
	b.mu.Unlock()
	b.wg.Wait()
}

// dispatch is the batching loop: collect, execute, repeat.
func (b *batcher) dispatch() {
	defer b.wg.Done()
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch := b.collect(first)
		b.execute(batch)
	}
}

// collect gathers a batch starting from first: up to maxBatch requests or
// until the batch window elapses, whichever comes first.
func (b *batcher) collect(first *request) []*request {
	batch := make([]*request, 1, b.maxBatch)
	batch[0] = first
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// execute answers every request of a batch. Point queries are grouped by
// cuboid and answered with one PointBatch probe per cuboid; everything else
// is one probe per query.
func (b *batcher) execute(batch []*request) {
	store := b.store.Load() // one snapshot for the whole batch
	points := make(map[lattice.Mask][]*request)
	probes, valid := 0, 0
	for _, r := range batch {
		if err := r.q.validate(store.d); err != nil {
			r.resp <- response{err: err}
			continue
		}
		valid++
		if r.q.Op == OpPoint {
			points[r.q.Mask] = append(points[r.q.Mask], r)
			continue
		}
		res, err := store.Execute(r.q)
		probes++
		r.resp <- response{res: res, err: err}
	}
	for mask, reqs := range points {
		keys := make([][]relation.Value, len(reqs))
		for i, r := range reqs {
			keys[i] = r.q.Packed
		}
		results := store.PointBatch(mask, keys)
		probes++
		for i, r := range reqs {
			r.resp <- response{res: results[i]}
		}
	}
	b.metrics.batch(valid, probes)
}
