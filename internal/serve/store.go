package serve

import (
	"math/bits"
	"sort"
	"strconv"

	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// Store is a read-optimized, immutable index over one computed cube. Each
// cuboid's groups are held as a sorted run — packed values flattened
// row-major into one array, ordered by relation.ComparePacked — probed by
// binary search (range scans for slices, a shared galloping pass for batched
// points), plus a per-cuboid hash index from encoded group key to row for
// direct point lookups. The group-key strings of the hash index alias the
// ingested cube.Result's keys, so the index costs map overhead, not key
// copies.
//
// A Store is safe for unlimited concurrent readers; it is never mutated
// after Build. Incremental maintenance produces a NEW store from an old one
// via ApplyPatch — untouched cuboids are shared between the two snapshots
// (copy-on-write), which is why the point index is per cuboid rather than
// store-wide: patching one cuboid must not force rebuilding every other
// cuboid's index.
type Store struct {
	d      int
	schema relation.Schema
	dict   *relation.Dictionary
	byMask map[lattice.Mask]*cuboid
	groups int
}

// cuboid is one cuboid's sorted run plus its point index. Cuboids are
// immutable and may be shared by several Store snapshots.
type cuboid struct {
	mask   lattice.Mask
	stride int              // values per row (the mask's popcount)
	packed []relation.Value // len = stride * rows, sorted by ComparePacked
	vals   []float64
	point  map[string]int32 // encoded group key -> row
}

// rows returns the number of groups in the cuboid.
func (c *cuboid) rows() int { return len(c.vals) }

// row returns row i's packed values (aliasing the run).
func (c *cuboid) row(i int) []relation.Value {
	return c.packed[i*c.stride : (i+1)*c.stride]
}

// Build indexes a computed cube for serving. The relation supplies the
// schema and dictionary used by the HTTP front end to translate between
// strings and codes; the result supplies the groups. The result's key
// strings are retained (aliased) by the point index.
func Build(rel *relation.Relation, res *cube.Result) (*Store, error) {
	st := &Store{
		d:      res.D,
		schema: rel.Schema,
		dict:   rel.Dict,
		byMask: make(map[lattice.Mask]*cuboid),
		groups: len(res.Groups),
	}
	type entry struct {
		key    string
		packed []relation.Value
	}
	perMask := make(map[lattice.Mask][]entry)
	for key := range res.Groups {
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			return nil, err
		}
		perMask[lattice.Mask(mask)] = append(perMask[lattice.Mask(mask)], entry{key, packed})
	}
	for mask, entries := range perMask {
		sort.Slice(entries, func(i, j int) bool {
			return relation.ComparePacked(entries[i].packed, entries[j].packed) < 0
		})
		c := &cuboid{
			mask:   mask,
			stride: mask.Level(),
			packed: make([]relation.Value, 0, len(entries)*mask.Level()),
			vals:   make([]float64, 0, len(entries)),
			point:  make(map[string]int32, len(entries)),
		}
		for i, e := range entries {
			c.packed = append(c.packed, e.packed...)
			c.vals = append(c.vals, res.Groups[e.key])
			c.point[e.key] = int32(i)
		}
		st.byMask[mask] = c
	}
	return st, nil
}

// D returns the cube's dimension count.
func (s *Store) D() int { return s.d }

// Schema returns the served relation's schema.
func (s *Store) Schema() relation.Schema { return s.schema }

// Groups returns the total number of groups across all cuboids.
func (s *Store) Groups() int { return s.groups }

// Cuboids returns the materialized cuboid masks in canonical BFS order,
// with their group counts.
func (s *Store) Cuboids() []CuboidInfo {
	out := make([]CuboidInfo, 0, len(s.byMask))
	for mask, c := range s.byMask {
		out = append(out, CuboidInfo{Mask: mask, Size: c.rows()})
	}
	sort.Slice(out, func(i, j int) bool { return lattice.BFSLess(out[i].Mask, out[j].Mask) })
	return out
}

// CuboidInfo describes one materialized cuboid.
type CuboidInfo struct {
	Mask lattice.Mask
	Size int
}

// DimString renders an encoded dimension value for display, falling back to
// the numeric form when the relation carried no dictionary.
func (s *Store) DimString(col int, v relation.Value) string {
	if s.dict != nil {
		if str, ok := s.dict.Decode(col, v); ok {
			return str
		}
	}
	return relationValueString(v)
}

// DimCode resolves a dimension value string to its code: through the
// dictionary when one exists, else as a literal integer.
func (s *Store) DimCode(col int, str string) (relation.Value, bool) {
	if s.dict != nil {
		if v, ok := s.dict.Code(col, str); ok {
			return v, true
		}
	}
	return parseRelationValue(str)
}

// DimValues returns up to max distinct served values of dimension col (as
// display strings), read from the single-attribute cuboid's sorted run. With
// an iceberg cube this can under-report rare values; it exists to give load
// generators and UIs a realistic key population, not an exact domain.
func (s *Store) DimValues(col, max int) []string {
	c, ok := s.byMask[lattice.Mask(1)<<uint(col)]
	if !ok {
		return nil
	}
	n := c.rows()
	if max > 0 && n > max {
		n = max
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = s.DimString(col, c.row(i)[0])
	}
	return out
}

// Point looks up one group through its cuboid's hash index.
func (s *Store) Point(mask lattice.Mask, packed []relation.Value) (float64, bool) {
	c, ok := s.byMask[mask]
	if !ok {
		return 0, false
	}
	row, ok := c.point[relation.GroupKeyPacked(uint32(mask), packed)]
	if !ok {
		return 0, false
	}
	return c.vals[row], true
}

// PointQuery locates one point query's row in the sorted runs by binary
// search (the non-batched fallback path; Execute and tests use it to
// cross-check the hash index).
func (s *Store) pointSearch(mask lattice.Mask, packed []relation.Value) (float64, bool) {
	c, ok := s.byMask[mask]
	if !ok {
		return 0, false
	}
	i := sort.Search(c.rows(), func(i int) bool {
		return relation.ComparePacked(c.row(i), packed) >= 0
	})
	if i < c.rows() && relation.ComparePacked(c.row(i), packed) == 0 {
		return c.vals[i], true
	}
	return 0, false
}

// PointBatch answers many point queries against one cuboid in a single
// galloping pass over its sorted run: the requested keys are visited in
// sorted order and each binary search is restricted to the run's remaining
// suffix. Results are returned in the input order. This is the probe the
// request batcher coalesces concurrent same-cuboid queries into.
func (s *Store) PointBatch(mask lattice.Mask, keys [][]relation.Value) []Result {
	out := make([]Result, len(keys))
	c, ok := s.byMask[mask]
	if !ok {
		return out
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return relation.ComparePacked(keys[order[i]], keys[order[j]]) < 0
	})
	lo, n := 0, c.rows()
	for _, qi := range order {
		key := keys[qi]
		i := lo + sort.Search(n-lo, func(i int) bool {
			return relation.ComparePacked(c.row(lo+i), key) >= 0
		})
		if i < n && relation.ComparePacked(c.row(i), key) == 0 {
			out[qi] = Result{Found: true, Value: c.vals[i]}
		}
		lo = i
	}
	return out
}

// Slice returns every group of the cuboid whose packed values start with
// prefix, in sorted order. An empty prefix returns the whole cuboid.
func (s *Store) Slice(mask lattice.Mask, prefix []relation.Value) []Group {
	c, ok := s.byMask[mask]
	if !ok {
		return nil
	}
	p := len(prefix)
	cmp := func(i int) int { return relation.ComparePacked(c.row(i)[:p], prefix) }
	lo := sort.Search(c.rows(), func(i int) bool { return cmp(i) >= 0 })
	hi := lo + sort.Search(c.rows()-lo, func(i int) bool { return cmp(lo+i) > 0 })
	if lo == hi {
		return nil
	}
	out := make([]Group, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, s.group(c, i))
	}
	return out
}

// Rollup returns the chain from the queried group up to the apex, dropping
// the highest grouped attribute at each step (the classic ROLLUP shape over
// ascending attribute order). Groups absent from the cube (e.g. pruned by an
// iceberg threshold) are skipped.
func (s *Store) Rollup(mask lattice.Mask, packed []relation.Value) []Group {
	out := make([]Group, 0, mask.Level()+1)
	for {
		if v, ok := s.Point(mask, packed); ok {
			cp := make([]relation.Value, len(packed))
			copy(cp, packed)
			out = append(out, Group{Mask: mask, Packed: cp, Value: v})
		}
		if mask == 0 {
			return out
		}
		// Drop the highest set bit (the last packed value).
		top := 31 - bits.LeadingZeros32(uint32(mask))
		mask &^= lattice.Mask(1) << uint(top)
		packed = packed[:len(packed)-1]
	}
}

// TopK returns the cuboid's k largest groups by aggregate value, ties broken
// by ascending packed values so the answer is deterministic.
func (s *Store) TopK(mask lattice.Mask, k int) []Group {
	c, ok := s.byMask[mask]
	if !ok || k <= 0 {
		return nil
	}
	order := make([]int, c.rows())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if c.vals[a] != c.vals[b] {
			return c.vals[a] > c.vals[b]
		}
		return a < b // rows are already in ascending packed order
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]Group, k)
	for i := 0; i < k; i++ {
		out[i] = s.group(c, order[i])
	}
	return out
}

// group materializes row i of a cuboid as a Group (copying the packed
// values, so results never alias the run).
func (s *Store) group(c *cuboid, i int) Group {
	r := c.row(i)
	cp := make([]relation.Value, len(r))
	copy(cp, r)
	return Group{Mask: c.mask, Packed: cp, Value: c.vals[i]}
}

// Execute evaluates one query directly against the index, with no batching
// or caching. It is the evaluation core the Service implementations share.
func (s *Store) Execute(q Query) (Result, error) {
	if err := q.validate(s.d); err != nil {
		return Result{}, err
	}
	switch q.Op {
	case OpPoint:
		v, ok := s.Point(q.Mask, q.Packed)
		return Result{Found: ok, Value: v}, nil
	case OpSlice:
		return Result{Groups: s.Slice(q.Mask, q.Packed)}, nil
	case OpRollup:
		return Result{Groups: s.Rollup(q.Mask, q.Packed)}, nil
	default: // OpTopK; validate rejected everything else
		k := q.K
		if k == 0 {
			k = DefaultTopK
		}
		return Result{Groups: s.TopK(q.Mask, k)}, nil
	}
}

// relationValueString renders an encoded value with no dictionary.
func relationValueString(v relation.Value) string {
	return strconv.FormatInt(int64(v), 10)
}

// parseRelationValue parses a literal integer dimension value (the encoding
// used by relations populated without a dictionary).
func parseRelationValue(s string) (relation.Value, bool) {
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, false
	}
	return relation.Value(n), true
}
