package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spcube/spcube/internal/lattice"
)

func TestBatcherCoalescesSameCuboidPoints(t *testing.T) {
	st, brute, rel := buildStore(t, 400, 3, 4)
	full := lattice.Full(rel.D())
	groups := brute.Cuboid(full)
	m := &Counters{}
	// A long window so concurrently submitted queries reliably share a batch.
	b := newBatcher(storePtr(st), 50*time.Millisecond, 64, m)
	defer b.close()

	const n = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := groups[i%len(groups)]
			<-start
			res, err := b.do(Query{Op: OpPoint, Mask: full, Packed: g.Packed})
			if err != nil || !res.Found || res.Value != g.Value {
				t.Errorf("point %v = %+v, %v (want %v)", g.Packed, res, err, g.Value)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := m.batchedQueries.Load(); got != n {
		t.Fatalf("batchedQueries = %d, want %d", got, n)
	}
	// All n points target one cuboid: however the requests split into
	// batches, each batch costs exactly one probe, and with the generous
	// window they should land in far fewer batches than queries.
	if probes, batches := m.probes.Load(), m.batches.Load(); probes != batches {
		t.Fatalf("probes = %d, batches = %d: same-cuboid points did not share probes", probes, batches)
	}
	if m.Coalesced() == 0 {
		t.Fatal("no queries were coalesced")
	}
}

func TestBatcherMixedOps(t *testing.T) {
	st, brute, rel := buildStore(t, 200, 3, 3)
	full := lattice.Full(rel.D())
	g := brute.Cuboid(full)[0]
	m := &Counters{}
	b := newBatcher(storePtr(st), 20*time.Millisecond, 64, m)
	defer b.close()

	var wg sync.WaitGroup
	run := func(q Query, check func(Result, error)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			check(b.do(q))
		}()
	}
	run(Query{Op: OpSlice, Mask: full, Packed: g.Packed[:1]}, func(r Result, err error) {
		if err != nil || len(r.Groups) == 0 {
			t.Errorf("slice: %+v, %v", r, err)
		}
	})
	run(Query{Op: OpRollup, Mask: full, Packed: g.Packed}, func(r Result, err error) {
		if err != nil || len(r.Groups) != rel.D()+1 {
			t.Errorf("rollup: %+v, %v", r, err)
		}
	})
	run(Query{Op: OpTopK, Mask: full, K: 2}, func(r Result, err error) {
		if err != nil || len(r.Groups) != 2 {
			t.Errorf("topk: %+v, %v", r, err)
		}
	})
	// Invalid queries are answered individually and not counted as batched.
	run(Query{Op: OpPoint, Mask: lattice.Full(rel.D()) + 1}, func(r Result, err error) {
		if err == nil {
			t.Error("invalid mask accepted")
		}
	})
	wg.Wait()
	if got := m.batchedQueries.Load(); got != 3 {
		t.Fatalf("batchedQueries = %d, want 3 (invalid query must not count)", got)
	}
}

func TestBatcherClose(t *testing.T) {
	st, _, _ := buildStore(t, 50, 2, 3)
	b := newBatcher(storePtr(st), time.Millisecond, 8, nil)
	if _, err := b.do(Query{Op: OpTopK, Mask: 1, K: 1}); err != nil {
		t.Fatalf("query before close: %v", err)
	}
	b.close()
	b.close() // idempotent
	if _, err := b.do(Query{Op: OpTopK, Mask: 1, K: 1}); err != ErrClosed {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
}

func TestBatcherMaxBatchBound(t *testing.T) {
	st, brute, rel := buildStore(t, 200, 2, 4)
	full := lattice.Full(rel.D())
	groups := brute.Cuboid(full)
	m := &Counters{}
	b := newBatcher(storePtr(st), time.Hour, 2, m) // only the size bound can release a batch
	defer b.close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := groups[i%len(groups)]
			if res, err := b.do(Query{Op: OpPoint, Mask: full, Packed: g.Packed}); err != nil || !res.Found {
				t.Errorf("point: %+v, %v", res, err)
			}
		}(i)
	}
	wg.Wait()
	if got := m.batches.Load(); got != 2 {
		t.Fatalf("batches = %d, want 2 with maxBatch=2", got)
	}
}

// storePtr wraps a store in the swappable pointer the batcher takes.
func storePtr(st *Store) *atomic.Pointer[Store] {
	var p atomic.Pointer[Store]
	p.Store(st)
	return &p
}
