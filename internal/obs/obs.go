// Package obs provides the opt-in process-observability endpoint behind the
// CLIs' -pprof flag: the standard net/http/pprof profile handlers plus a
// machine-readable runtime-metrics snapshot, served from a private mux so
// enabling profiling never touches http.DefaultServeMux.
//
// The endpoint observes the real process (heap, goroutines, CPU), which is
// deliberately outside the simulator's determinism contract: it exists to
// profile the simulator itself, e.g. when a full-scale `spbench -exp all`
// run is slower than expected.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"strconv"
)

// Route is an extra path → handler pair mounted on the observability mux,
// for subsystems that export their own diagnostics (e.g. the serving
// layer's /debug/serve counters).
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewMux builds the observability handler: /debug/pprof/* (index, cmdline,
// profile, symbol, trace and every runtime profile reachable from the
// index), /debug/runtime (runtime-metrics JSON), plus any extra routes.
func NewMux(extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", serveRuntimeMetrics)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// serveRuntimeMetrics writes every supported runtime/metrics sample as one
// JSON object keyed by metric name. Histogram-kind metrics are summarized
// to their bucket counts and boundaries.
func serveRuntimeMetrics(w http.ResponseWriter, r *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for i := range samples {
		s := &samples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			// Boundary buckets are ±Inf, which JSON cannot represent;
			// format every boundary as a string instead.
			buckets := make([]string, len(h.Buckets))
			for j, b := range h.Buckets {
				buckets[j] = strconv.FormatFloat(b, 'g', -1, 64)
			}
			out[s.Name] = map[string]any{
				"counts":  h.Counts,
				"buckets": buckets,
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// Server is a running observability endpoint.
type Server struct {
	// Addr is the endpoint's resolved listen address (useful when the
	// requested address had port 0).
	Addr string

	srv *http.Server
}

// Start serves the observability mux (plus any extra routes) on addr
// ("localhost:6060", ":0", ...) in a background goroutine. The returned
// server reports the resolved address and stops serving on Close.
func Start(addr string, extra ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(extra...)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
