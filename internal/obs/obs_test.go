package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestStartServesPprofAndRuntime(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}

	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Error("pprof index empty")
	}
	if body := get("/debug/pprof/goroutine?debug=1"); len(body) == 0 {
		t.Error("goroutine profile empty")
	}

	var rt map[string]any
	if err := json.Unmarshal(get("/debug/runtime"), &rt); err != nil {
		t.Fatalf("runtime metrics is not JSON: %v", err)
	}
	if len(rt) == 0 {
		t.Fatal("runtime metrics empty")
	}
	if _, ok := rt["/memory/classes/total:bytes"]; !ok {
		t.Error("runtime metrics lacks /memory/classes/total:bytes")
	}
}

func TestStartMountsExtraRoutes(t *testing.T) {
	extra := Route{
		Pattern: "/debug/custom",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "custom-ok")
		}),
	}
	srv, err := Start("127.0.0.1:0", extra)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/custom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "custom-ok" {
		t.Fatalf("extra route: %d %q", resp.StatusCode, body)
	}
	// The standard routes must still be mounted alongside extras.
	resp2, err := http.Get("http://" + srv.Addr + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("runtime route lost: %d", resp2.StatusCode)
	}
}

func TestStartRejectsBadAddr(t *testing.T) {
	if _, err := Start("256.256.256.256:99999"); err == nil {
		t.Error("Start accepted an unusable address")
	}
}
