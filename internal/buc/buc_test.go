package buc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

func randTuples(rng *rand.Rand, n, d, card int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		dims := make([]relation.Value, d)
		for j := range dims {
			dims[j] = relation.Value(rng.Intn(card))
		}
		out[i] = relation.Tuple{Dims: dims, Measure: int64(rng.Intn(50))}
	}
	return out
}

// bruteCube computes group -> (count, sum) directly.
func bruteCube(tuples []relation.Tuple, d int) map[string][2]int64 {
	res := make(map[string][2]int64)
	for _, t := range tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			key := relation.GroupKey(uint32(mask), t.Dims)
			cur := res[key]
			cur[0]++
			cur[1] += t.Measure
			res[key] = cur
		}
	}
	return res
}

func TestComputeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d, card int }{
		{1, 1, 1}, {50, 2, 3}, {200, 3, 4}, {100, 4, 2}, {300, 4, 50},
	} {
		tuples := randTuples(rng, tc.n, tc.d, tc.card)
		want := bruteCube(tuples, tc.d)

		got := make(map[string]float64)
		work := make([]relation.Tuple, len(tuples))
		copy(work, tuples)
		Compute(work, tc.d, agg.Sum, 1, func(mask lattice.Mask, packed []relation.Value, st agg.State) {
			key := string(relation.EncodeGroupKey(nil, uint32(mask), relation.GroupVals(uint32(mask), packed, tc.d)))
			if _, dup := got[key]; dup {
				t.Fatalf("group %s emitted twice", key)
			}
			got[key] = st.Final()
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d d=%d: %d groups, want %d", tc.n, tc.d, len(got), len(want))
		}
		for key, w := range want {
			if got[key] != float64(w[1]) {
				t.Fatalf("group %q: sum %v want %d", key, got[key], w[1])
			}
		}
	}
}

func TestIcebergThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tuples := randTuples(rng, 400, 3, 3)
	want := bruteCube(tuples, 3)
	const minSup = 25
	got := make(map[string]bool)
	Compute(tuples, 3, agg.Count, minSup, func(mask lattice.Mask, packed []relation.Value, st agg.State) {
		key := string(relation.EncodeGroupKey(nil, uint32(mask), relation.GroupVals(uint32(mask), packed, 3)))
		if int(st.Final()) < minSup {
			t.Errorf("emitted group %q with count %v < minSup", key, st.Final())
		}
		got[key] = true
	})
	for key, w := range want {
		if w[0] >= minSup && !got[key] {
			t.Errorf("missing iceberg group %q (count %d)", key, w[0])
		}
		if w[0] < minSup && got[key] {
			t.Errorf("spurious group %q (count %d)", key, w[0])
		}
	}
}

func TestComputeFromBase(t *testing.T) {
	// All tuples share dims[1]; BUC from base {1} must enumerate exactly
	// the supersets of the base.
	rng := rand.New(rand.NewSource(3))
	tuples := randTuples(rng, 120, 3, 4)
	for i := range tuples {
		tuples[i].Dims[1] = 7
	}
	base := lattice.Mask(0b010)
	want := bruteCube(tuples, 3)
	seen := make(map[string]float64)
	ComputeFrom(tuples, 3, base, agg.Count, 1, nil,
		func(mask lattice.Mask, packed []relation.Value, st agg.State) {
			if !base.IsSubset(mask) {
				t.Fatalf("emitted non-superset %b of base", mask)
			}
			key := string(relation.EncodeGroupKey(nil, uint32(mask), relation.GroupVals(uint32(mask), packed, 3)))
			seen[key] = st.Final()
		})
	for key, w := range want {
		mask, _, _ := relation.DecodeGroupKey(key)
		if !base.IsSubset(lattice.Mask(mask)) {
			continue
		}
		if seen[key] != float64(w[0]) {
			t.Errorf("group %q: %v want %d", key, seen[key], w[0])
		}
	}
	wantCount := 0
	for key := range want {
		mask, _, _ := relation.DecodeGroupKey(key)
		if base.IsSubset(lattice.Mask(mask)) {
			wantCount++
		}
	}
	if len(seen) != wantCount {
		t.Errorf("emitted %d groups, want %d", len(seen), wantCount)
	}
}

func TestDecisionSkipAndPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tuples := randTuples(rng, 100, 3, 3)

	// Skip the apex only: everything else still emitted.
	count := 0
	ComputeFrom(tuples, 3, 0, agg.Count, 1,
		func(mask lattice.Mask, _ []relation.Value) Decision {
			if mask == 0 {
				return Skip
			}
			return Emit
		},
		func(mask lattice.Mask, _ []relation.Value, _ agg.State) {
			if mask == 0 {
				t.Error("apex emitted despite Skip")
			}
			count++
		})
	if count == 0 {
		t.Fatal("Skip suppressed recursion")
	}

	// Prune at level 1: only the apex survives.
	emitted := 0
	ComputeFrom(tuples, 3, 0, agg.Count, 1,
		func(mask lattice.Mask, _ []relation.Value) Decision {
			if mask.Level() >= 1 {
				return Prune
			}
			return Emit
		},
		func(mask lattice.Mask, _ []relation.Value, _ agg.State) {
			if mask != 0 {
				t.Errorf("pruned node %b emitted", mask)
			}
			emitted++
		})
	if emitted != 1 {
		t.Errorf("want only the apex, got %d emissions", emitted)
	}
}

func TestTouchesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := randTuples(rng, 50, 2, 2)
	touches := Compute(tuples, 2, agg.Count, 1, func(lattice.Mask, []relation.Value, agg.State) {})
	if touches < int64(len(tuples)) {
		t.Errorf("touches %d below input size", touches)
	}
	if got := Compute(nil, 2, agg.Count, 1, func(lattice.Mask, []relation.Value, agg.State) {}); got != 0 {
		t.Errorf("empty input should touch nothing, got %d", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	Compute(nil, 3, agg.Count, 1, func(lattice.Mask, []relation.Value, agg.State) {
		t.Fatal("empty input must emit nothing")
	})
	single := []relation.Tuple{{Dims: []relation.Value{1, 2}, Measure: 9}}
	groups := 0
	Compute(single, 2, agg.Sum, 1, func(_ lattice.Mask, _ []relation.Value, st agg.State) {
		if st.Final() != 9 {
			t.Errorf("sum %v", st.Final())
		}
		groups++
	})
	if groups != 4 {
		t.Errorf("singleton cube must have 4 groups, got %d", groups)
	}
}

func TestQuickSmallCubes(t *testing.T) {
	f := func(seed int64, nSeed, dSeed, cardSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed%60) + 1
		d := int(dSeed%4) + 1
		card := int(cardSeed%5) + 1
		tuples := randTuples(rng, n, d, card)
		want := bruteCube(tuples, d)
		got := 0
		ok := true
		Compute(tuples, d, agg.Count, 1, func(mask lattice.Mask, packed []relation.Value, st agg.State) {
			key := string(relation.EncodeGroupKey(nil, uint32(mask), relation.GroupVals(uint32(mask), packed, d)))
			if float64(want[key][0]) != st.Final() {
				ok = false
			}
			got++
		})
		return ok && got == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
