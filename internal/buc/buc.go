// Package buc implements the classic Bottom-Up Cube algorithm of Beyer &
// Ramakrishnan (SIGMOD'99), the sequential cube algorithm the paper uses as
// a building block: it computes the cube of the sample inside the SP-Sketch
// builder, and each SP-Cube reducer runs it locally over the tuple sets of
// its non-skewed c-groups (Algorithm 3, line 30).
//
// BUC recursively partitions the input: at each lattice node it aggregates
// the current partition, then for every remaining dimension (in ascending
// attribute order) sorts the partition on that dimension and recurses into
// each value run. Every cuboid is thus reached exactly once, and iceberg
// thresholds (minSup) prune partitions that are too small — which is also
// how the sketch builder detects skewed groups efficiently.
package buc

import (
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// Decision controls how ComputeFrom treats a lattice node.
type Decision int

const (
	// Emit outputs the node's aggregate and recurses into its ancestors.
	Emit Decision = iota
	// Skip suppresses the node's output but still recurses.
	Skip
	// Prune suppresses the node's output and the entire branch above it.
	// SP-Cube reducers prune nodes owned by a different c-group: ownership
	// failure propagates to all supersets (see DESIGN.md §6), so pruning is
	// safe there.
	Prune
)

// Emitted is the callback invoked for every produced c-group. The packed
// slice holds the values of the mask's dimensions in ascending attribute
// order and is only valid for the duration of the call.
type Emitted func(mask lattice.Mask, packed []relation.Value, state agg.State)

// Compute runs BUC over tuples with d dimensions, emitting every c-group
// whose tuple set has at least minSup tuples (minSup <= 1 means the full
// cube). The tuples slice is reordered in place. It returns the number of
// tuple touches performed, a machine-independent work measure used for CPU
// cost accounting.
func Compute(tuples []relation.Tuple, d int, f agg.Func, minSup int, emit Emitted) int64 {
	return ComputeFrom(tuples, d, 0, f, minSup, nil, emit)
}

// ComputeFrom runs BUC over the supersets of the base mask only: the tuples
// must all agree on the base mask's dimensions (as the tuple set of a
// c-group does), and recursion explores added dimensions outside base. The
// decide callback, when non-nil, is consulted at every node with the node's
// mask and a representative full-width dims slice; it may suppress output or
// prune whole branches. The tuples slice is reordered in place. The return
// value counts tuple touches (a work measure for CPU cost accounting).
func ComputeFrom(
	tuples []relation.Tuple,
	d int,
	base lattice.Mask,
	f agg.Func,
	minSup int,
	decide func(mask lattice.Mask, dims []relation.Value) Decision,
	emit Emitted,
) int64 {
	if minSup < 1 {
		minSup = 1
	}
	if len(tuples) < minSup {
		return 0
	}
	c := &computation{
		tuples: tuples,
		d:      d,
		f:      f,
		minSup: minSup,
		decide: decide,
		emit:   emit,
		packed: make([]relation.Value, 0, d),
	}
	c.run(0, len(tuples), base, 0)
	return c.touches
}

type computation struct {
	tuples  []relation.Tuple
	d       int
	f       agg.Func
	minSup  int
	decide  func(lattice.Mask, []relation.Value) Decision
	emit    Emitted
	packed  []relation.Value
	touches int64
}

// run processes the partition tuples[lo:hi], whose rows all share the values
// of the dimensions in mask; nextFree is the lowest attribute index that may
// still be added (ascending-order recursion visits each superset once).
func (c *computation) run(lo, hi int, mask lattice.Mask, nextFree int) {
	c.touches += int64(hi - lo)
	rep := c.tuples[lo].Dims
	dec := Emit
	if c.decide != nil {
		dec = c.decide(mask, rep)
	}
	if dec == Prune {
		return
	}
	if dec == Emit {
		st := c.f.NewState()
		for i := lo; i < hi; i++ {
			st.Add(c.tuples[i].Measure)
		}
		c.packed = relation.ProjectInto(c.packed, rep, uint32(mask))
		c.emit(mask, c.packed, st)
	}
	for j := nextFree; j < c.d; j++ {
		if mask.Has(j) {
			continue
		}
		part := c.tuples[lo:hi]
		sort.Slice(part, func(a, b int) bool { return part[a].Dims[j] < part[b].Dims[j] })
		runStart := lo
		for i := lo + 1; i <= hi; i++ {
			if i == hi || c.tuples[i].Dims[j] != c.tuples[runStart].Dims[j] {
				if i-runStart >= c.minSup {
					c.run(runStart, i, mask|1<<uint(j), j+1)
				}
				runStart = i
			}
		}
	}
}
