package spcube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// runWithSketch executes only round 2 against an injected sketch and
// collects the result.
func runWithSketch(t *testing.T, rel *relation.Relation, sk *sketch.Sketch, k int) *cube.Result {
	t.Helper()
	eng := cubetest.NewEngine(k)
	res, err := runCubeRound(eng, rel, cube.Spec{Agg: agg.Count}, sk, Options{}, "out/injected/")
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	out, err := cube.CollectDFS(eng, "out/injected/", rel.D())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorrectUnderArbitrarySketch is the key robustness property of the
// algorithm: the SP-Sketch only steers performance, never correctness. The
// sampling-based sketch can miss skewed groups and can mark borderline
// groups as skewed; here we go much further and inject sketches with
// completely arbitrary skew decisions and partition elements — the computed
// cube must still equal the brute-force reference, because the mapper's
// marking and the reducer's ownership rule apply the same (arbitrary)
// skew predicate consistently.
func TestCorrectUnderArbitrarySketch(t *testing.T) {
	check := func(seed int64, skewSeed uint32, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%6) + 2
		rel := cubetest.RandomRelation(rng, 120+rng.Intn(200), 3, 1+rng.Intn(6))

		// Start from the exact sketch, then corrupt it: flip random
		// groups into the skew set and drop others by rebuilding with a
		// random subset.
		exact := sketch.BuildExact(rel, k, rel.N()/k)
		sk := sketch.NewForTest(3, k)
		srng := rand.New(rand.NewSource(int64(skewSeed)))
		for mask := lattice.Mask(0); mask <= lattice.Full(3); mask++ {
			// Randomly keep some true skews.
			for _, g := range exact.SkewedGroups(mask) {
				if srng.Intn(2) == 0 {
					sk.AddSkew(mask, g)
				}
			}
			// Inject false skews from random tuples.
			for i := 0; i < srng.Intn(4); i++ {
				tu := rel.Tuples[srng.Intn(rel.N())]
				sk.AddSkew(mask, relation.Project(tu.Dims, uint32(mask)))
			}
			// Partition elements from random tuples (sorted), sometimes
			// none at all (everything lands on one reducer).
			if mask != 0 && srng.Intn(4) > 0 {
				var elems [][]relation.Value
				for i := 0; i < srng.Intn(k); i++ {
					tu := rel.Tuples[srng.Intn(rel.N())]
					elems = append(elems, relation.Project(tu.Dims, uint32(mask)))
				}
				sortPacked(elems)
				sk.SetPartitionElements(mask, dedupPacked(elems))
			}
		}

		got := runWithSketch(t, rel, sk, k)
		want := cube.Brute(rel, agg.Count)
		ok, diff := want.Equal(got)
		if !ok {
			t.Logf("seed=%d skewSeed=%d k=%d: %s", seed, skewSeed, k, diff)
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func sortPacked(elems [][]relation.Value) {
	for i := 1; i < len(elems); i++ {
		for j := i; j > 0 && relation.ComparePacked(elems[j], elems[j-1]) < 0; j-- {
			elems[j], elems[j-1] = elems[j-1], elems[j]
		}
	}
}

func dedupPacked(elems [][]relation.Value) [][]relation.Value {
	out := elems[:0]
	for i, e := range elems {
		if i == 0 || relation.ComparePacked(e, out[len(out)-1]) != 0 {
			out = append(out, e)
		}
	}
	return out
}

// TestEverySketchGroupProducedOnce strengthens the disjointness test: with
// an arbitrary injected sketch, no group may be emitted twice across the
// skew reducer and the range reducers.
func TestEverySketchGroupProducedOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rel := cubetest.SkewedRelation(rng, 600, 3, 0.5, 3)
	k := 5
	sk := sketch.BuildExact(rel, k, 40) // low m: many skews
	eng := cubetest.NewEngine(k)
	if _, err := runCubeRound(eng, rel, cube.Spec{Agg: agg.Count}, sk, Options{}, "out/once/"); err != nil {
		t.Fatal(err)
	}
	out, err := cube.CollectDFS(eng, "out/once/", rel.D())
	if err != nil {
		t.Fatal(err)
	}
	if recs := eng.FS.TotalRecords("out/once/"); recs != int64(out.Len()) {
		t.Errorf("emitted %d records for %d distinct groups", recs, out.Len())
	}
	want := cube.Brute(rel, agg.Count)
	if ok, diff := want.Equal(out); !ok {
		t.Error(diff)
	}
}

// TestEdgeCases exercises degenerate configurations.
func TestEdgeCases(t *testing.T) {
	// Single tuple, single dimension.
	one := &relation.Relation{Schema: relation.Schema{DimNames: []string{"a"}, MeasureName: "m"}}
	one.Append([]relation.Value{7}, 3)
	if err := cubetest.CheckAgainstBrute(Compute, one, agg.Sum, 2); err != nil {
		t.Errorf("single tuple: %v", err)
	}

	// More workers than tuples.
	rng := rand.New(rand.NewSource(9))
	tiny := cubetest.RandomRelation(rng, 5, 2, 2)
	if err := cubetest.CheckAgainstBrute(Compute, tiny, agg.Count, 8); err != nil {
		t.Errorf("k>n: %v", err)
	}

	// All tuples identical: everything is one giant skewed family.
	same := &relation.Relation{Schema: relation.Schema{DimNames: []string{"a", "b"}, MeasureName: "m"}}
	for i := 0; i < 300; i++ {
		same.Append([]relation.Value{1, 2}, 1)
	}
	if err := cubetest.CheckAgainstBrute(Compute, same, agg.Count, 4); err != nil {
		t.Errorf("identical tuples: %v", err)
	}

	// Negative dimension values (raw integer data).
	neg := &relation.Relation{Schema: relation.Schema{DimNames: []string{"a", "b"}, MeasureName: "m"}}
	negRng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		neg.Append([]relation.Value{int32(negRng.Intn(7) - 3), int32(negRng.Intn(7) - 3)}, int64(negRng.Intn(10)-5))
	}
	if err := cubetest.CheckAgainstBrute(Compute, neg, agg.Sum, 3); err != nil {
		t.Errorf("negative values: %v", err)
	}
}

// TestHighDimensional checks a wider lattice (2^8 cuboids).
func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := cubetest.RandomRelation(rng, 200, 8, 3)
	if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, 4); err != nil {
		t.Error(err)
	}
}
