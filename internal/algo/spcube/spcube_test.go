package spcube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

func TestMatchesBruteForceUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d, card, k int }{
		{50, 2, 3, 2},
		{200, 3, 4, 4},
		{500, 4, 5, 5},
		{300, 3, 100, 3},
		{64, 1, 2, 2},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, tc.k); err != nil {
			t.Errorf("count: %v", err)
		}
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Sum, tc.k); err != nil {
			t.Errorf("sum: %v", err)
		}
	}
}

func TestMatchesBruteForceSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0, 0.2, 0.5, 0.9, 1} {
		rel := cubetest.SkewedRelation(rng, 400, 3, p, 5)
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, 4); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestMatchesBruteForceAllAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := cubetest.SkewedRelation(rng, 300, 3, 0.4, 3)
	for _, f := range []agg.Func{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg} {
		if err := cubetest.CheckAgainstBrute(Compute, rel, f, 4); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestAblationVariantsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := cubetest.SkewedRelation(rng, 400, 3, 0.5, 4)
	for name, opts := range map[string]Options{
		"no-skew-handling": {DisableSkewHandling: true},
		"no-factorization": {DisableFactorization: true},
		"both-disabled":    {DisableSkewHandling: true, DisableFactorization: true},
	} {
		f := func(eng *mr.Engine, r *relation.Relation, spec cube.Spec) (*cube.Run, error) {
			return ComputeOpts(eng, r, spec, opts)
		}
		if err := cubetest.CheckAgainstBrute(f, rel, agg.Count, 4); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSkewAndGroupOutputsDisjoint(t *testing.T) {
	// Every group must be produced exactly once: the result collection in
	// CheckAgainstBrute would not catch a group emitted twice with the
	// same value (map overwrite), so count output records explicitly.
	rng := rand.New(rand.NewSource(5))
	rel := cubetest.SkewedRelation(rng, 500, 3, 0.6, 4)
	eng := cubetest.NewEngine(5)
	res, run, err := cubetest.RunAndCollect(eng, Compute, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	outRecs := eng.FS.TotalRecords(run.OutputPrefix)
	if int64(res.Len()) != outRecs {
		t.Errorf("output records %d != distinct groups %d: some group emitted more than once", outRecs, res.Len())
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := cubetest.SkewedRelation(rng, 300, 3, 0.3, 4)
	checks := make([]uint64, 2)
	shuffles := make([]int64, 2)
	for i := range checks {
		eng := cubetest.NewEngine(4)
		run, err := Compute(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatal(err)
		}
		checks[i] = eng.FS.TotalChecksum(run.OutputPrefix)
		shuffles[i] = run.Metrics.ShuffleBytes()
	}
	if checks[0] != checks[1] {
		t.Errorf("non-deterministic output: %x vs %x", checks[0], checks[1])
	}
	if shuffles[0] != shuffles[1] {
		t.Errorf("non-deterministic shuffle: %d vs %d", shuffles[0], shuffles[1])
	}
}
