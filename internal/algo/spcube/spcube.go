// Package spcube implements the SP-Cube algorithm of Milo & Altshuler
// (SIGMOD'16, §5): a two-round MapReduce cube computation driven by the
// SP-Sketch.
//
// Round 1 builds the SP-Sketch (Algorithm 2; see the sketch package). In
// round 2 (Algorithm 3) every mapper walks each tuple's lattice bottom-up in
// BFS order: skewed c-groups are partially aggregated in the mapper's memory
// and shipped as compact partial states to a dedicated skew reducer, while
// the first unmarked non-skewed c-group found causes the full tuple to be
// sent to the range-partitioned reducer responsible for that group, with the
// group and all its lattice ancestors marked as handled. The receiving
// reducer recovers every ancestor group it owns by running BUC locally over
// the group's tuple set (factorized processing), using the ownership rule:
// a lattice node is computed by the BFS-minimal non-skewed descendant of its
// group. Because skewness is downward-closed, ownership failures propagate
// upward, letting the reducer prune whole lattice branches.
package spcube

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/buc"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// Key prefixes distinguish the two kinds of intermediate records.
const (
	prefixGroup = 'G' // non-skewed c-group: value is a full encoded tuple
	prefixSkew  = 'S' // skewed c-group: value is an encoded partial state
)

// Options tune the algorithm; the zero value is the paper's algorithm.
// The two disable flags implement the ablations studied in the benchmark
// suite.
type Options struct {
	// DisableSkewHandling turns off mapper-side partial aggregation of
	// skewed c-groups: every group takes the range-partitioned path.
	// Skewed groups then flood single reducers, exactly the failure mode
	// §3.2 describes.
	DisableSkewHandling bool
	// DisableFactorization turns off ancestor marking: every non-skewed
	// lattice node is emitted individually (keyed by its own group), and
	// reducers aggregate measures directly instead of running BUC.
	DisableFactorization bool
	// Seed drives the sketch's sampling round.
	Seed int64
}

// Compute runs SP-Cube with default options.
func Compute(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return ComputeOpts(eng, rel, spec, Options{})
}

// ComputeOpts runs SP-Cube with explicit options.
func ComputeOpts(eng *mr.Engine, rel *relation.Relation, spec cube.Spec, opts Options) (*cube.Run, error) {
	d := rel.D()
	if d > lattice.MaxDims {
		return nil, fmt.Errorf("spcube: %d dimensions exceed the supported maximum %d", d, lattice.MaxDims)
	}
	run := &cube.Run{Algorithm: "sp-cube", OutputPrefix: "out/sp-cube/"}

	// Round 1: build the SP-Sketch.
	built, err := sketch.Build(eng, rel, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("spcube: sketch round: %w", err)
	}
	sk := built.Sketch
	run.Metrics.Add(built.Metrics)
	run.SketchBytes = built.EncodedBytes
	run.SampleTuples = sk.SampleN
	run.SkewedGroups = sk.NumSkews()

	// Round 2: cube computation (Algorithm 3).
	round, err := runCubeRound(eng, rel, spec, sk, opts, run.OutputPrefix)
	if err != nil {
		return nil, err
	}
	run.Metrics.Add(round.Metrics)
	return run, nil
}

// ComputeMulti computes one cube per spec while building the SP-Sketch only
// once — the sketch captures properties of the relation alone and is
// independent of the aggregate function (§4), so a single round 1 serves
// any number of round 2s. The i-th run's output lands under
// "out/sp-cube/<i>/".
func ComputeMulti(eng *mr.Engine, rel *relation.Relation, specs []cube.Spec, opts Options) ([]*cube.Run, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("spcube: ComputeMulti with no specs")
	}
	d := rel.D()
	if d > lattice.MaxDims {
		return nil, fmt.Errorf("spcube: %d dimensions exceed the supported maximum %d", d, lattice.MaxDims)
	}
	built, err := sketch.Build(eng, rel, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("spcube: sketch round: %w", err)
	}
	runs := make([]*cube.Run, 0, len(specs))
	for i, spec := range specs {
		run := &cube.Run{
			Algorithm:    "sp-cube",
			OutputPrefix: fmt.Sprintf("out/sp-cube/%d/", i),
			SketchBytes:  built.EncodedBytes,
			SampleTuples: built.Sketch.SampleN,
			SkewedGroups: built.Sketch.NumSkews(),
		}
		if i == 0 {
			// The sketch round is charged once, to the first run.
			run.Metrics.Add(built.Metrics)
		}
		round, err := runCubeRound(eng, rel, spec, built.Sketch, opts, run.OutputPrefix)
		if err != nil {
			return nil, err
		}
		run.Metrics.Add(round.Metrics)
		runs = append(runs, run)
	}
	return runs, nil
}

func runCubeRound(eng *mr.Engine, rel *relation.Relation, spec cube.Spec, sk *sketch.Sketch, opts Options, outPrefix string) (*mr.RoundResult, error) {
	d := rel.D()
	k := eng.Cfg.Workers
	bfs := lattice.BFSOrder(d)
	f, minSup := spec.Effective()

	isSkewed := func(mask lattice.Mask, packed []relation.Value) bool {
		if opts.DisableSkewHandling {
			return false
		}
		return sk.IsSkewed(mask, packed)
	}

	// Per-task state: tasks of a round may run in parallel, so each map
	// task owns its marks/partial-aggregate table/buffers and each reduce
	// task its subset-BFS cache.
	type taskState struct {
		marks   *lattice.Marks
		skewAgg map[string]agg.State
		keyBuf  []byte
		valBuf  []byte
		packBuf []relation.Value
		// subsetsBFS caches subset BFS orders per mask (reduce side).
		subsetsBFS [][]lattice.Mask
	}
	taskStateFn := func() any {
		return &taskState{
			marks:      lattice.NewMarks(d),
			skewAgg:    make(map[string]agg.State),
			subsetsBFS: make([][]lattice.Mask, 1<<uint(d)),
		}
	}

	mapTuple := func(ctx *mr.MapCtx, t relation.Tuple) {
		ts := ctx.State().(*taskState)
		ts.marks.Reset()
		for _, mask := range bfs {
			if ts.marks.Marked(mask) {
				continue
			}
			ctx.ChargeOps(1)
			ts.packBuf = relation.ProjectInto(ts.packBuf, t.Dims, uint32(mask))
			if isSkewed(mask, ts.packBuf) {
				// Partial aggregation of a skewed c-group in the mapper
				// (Algorithm 3, lines 6-8). The prefixed key is built in
				// scratch; the map lookup on string(ts.keyBuf) does not
				// allocate, and the key string is materialized only when
				// the group is seen for the first time.
				ts.keyBuf = append(ts.keyBuf[:0], prefixSkew)
				ts.keyBuf = relation.AppendGroupKey(ts.keyBuf, uint32(mask), t.Dims)
				st, ok := ts.skewAgg[string(ts.keyBuf)]
				if !ok {
					st = f.NewState()
					ts.skewAgg[string(ts.keyBuf)] = st
				}
				st.Add(t.Measure)
				ts.marks.Mark(mask)
				continue
			}
			// Non-skewed: send the tuple to the range partition of this
			// c-group and mark the group and all its ancestors
			// (Algorithm 3, lines 9-12). Key and value are built in task
			// scratch and copied into the attempt arena by EmitBytes.
			ts.keyBuf = append(ts.keyBuf[:0], prefixGroup)
			ts.keyBuf = relation.AppendGroupKey(ts.keyBuf, uint32(mask), t.Dims)
			if opts.DisableFactorization {
				ts.valBuf = encodeMeasure(ts.valBuf, t.Measure)
				ctx.EmitBytes(ts.keyBuf, ts.valBuf)
				ts.marks.Mark(mask)
			} else {
				ts.valBuf = relation.EncodeTuple(ts.valBuf, t)
				ctx.EmitBytes(ts.keyBuf, ts.valBuf)
				ts.marks.MarkSupersetsIncl(mask)
			}
		}
	}

	mapFlush := func(ctx *mr.MapCtx) {
		// Ship the mapper's partial aggregates of skewed c-groups to the
		// skew reducer (Algorithm 3, lines 16-20). Sorted for determinism.
		ts := ctx.State().(*taskState)
		keys := make([]string, 0, len(ts.skewAgg))
		for key := range ts.skewAgg {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ts.valBuf = ts.skewAgg[key].AppendEncode(ts.valBuf[:0])
			ctx.EmitCopied(key, ts.valBuf)
		}
		clear(ts.skewAgg)
	}

	partition := func(key string, reducers int) int {
		if len(key) == 0 {
			return 0
		}
		if key[0] == prefixSkew {
			return 0 // the dedicated skew reducer (§5)
		}
		mask, packed, _, err := relation.ScanGroupKey([]byte(key[1:]))
		if err != nil {
			return 0
		}
		return 1 + sk.Partition(lattice.Mask(mask), packed)
	}

	// Ownership rule for reducers: node A (with representative dims)
	// belongs to base group M iff M is the BFS-minimal non-skewed subset
	// of A. Subset BFS orders are cached per mask in the reduce task's
	// private state.
	ownerIs := func(cache [][]lattice.Mask, base, a lattice.Mask, dims []relation.Value, scratch *[]relation.Value) bool {
		subs := cache[a]
		if subs == nil {
			subs = lattice.SubsetsBFS(a)
			cache[a] = subs
		}
		for _, m := range subs {
			*scratch = relation.ProjectInto(*scratch, dims, uint32(m))
			if !isSkewed(m, *scratch) {
				return m == base
			}
		}
		return false // all subsets skewed: A itself is skewed, not owned
	}

	reduce := func(ctx *mr.RedCtx, key string, vals [][]byte) {
		if len(key) == 0 {
			return
		}
		switch key[0] {
		case prefixSkew:
			// Merge the (at most k) mapper partial states of one skewed
			// c-group (Algorithm 3, lines 24-27).
			st := f.NewState()
			for _, v := range vals {
				part, err := f.DecodeState(v)
				if err != nil {
					continue
				}
				st.Merge(part)
				ctx.ChargeOps(1)
			}
			if !cube.Keep(st, minSup) {
				return
			}
			ctx.EmitKV(key[1:], cube.EncodeFinal(st.Final()))
		case prefixGroup:
			maskU, _, _, err := relation.ScanGroupKey([]byte(key[1:]))
			if err != nil {
				return
			}
			base := lattice.Mask(maskU)
			if opts.DisableFactorization {
				st := f.NewState()
				for _, v := range vals {
					m, ok := decodeMeasure(v)
					if !ok {
						continue
					}
					st.Add(m)
					ctx.ChargeOps(1)
				}
				if cube.Keep(st, minSup) {
					ctx.EmitKV(key[1:], cube.EncodeFinal(st.Final()))
				}
				return
			}
			// Factorized processing: rebuild set(g) and compute every
			// ancestor group owned by g with local BUC (Algorithm 3,
			// line 30).
			cache := ctx.State().(*taskState).subsetsBFS
			tuples := make([]relation.Tuple, 0, len(vals))
			for _, v := range vals {
				t, err := relation.DecodeTuple(v, d)
				if err != nil {
					continue
				}
				tuples = append(tuples, t)
			}
			// BUC's iceberg threshold is exactly the cube's minimum
			// support: each received c-group's full tuple set is present
			// here, so pruning small partitions implements the iceberg
			// semantics precisely.
			var scratch []relation.Value
			var out []byte
			touches := buc.ComputeFrom(tuples, d, base, f, minSup,
				func(mask lattice.Mask, dims []relation.Value) buc.Decision {
					if ownerIs(cache, base, mask, dims, &scratch) {
						return buc.Emit
					}
					return buc.Prune
				},
				func(mask lattice.Mask, packed []relation.Value, st agg.State) {
					out = relation.EncodeGroupKey(out, uint32(mask), expand(packed, mask, d, &scratch))
					ctx.EmitKV(string(out), cube.EncodeFinal(st.Final()))
				})
			ctx.ChargeOps(touches)
		}
	}

	job := &mr.Job{
		Name:         "sp-cube",
		Reducers:     k + 1,
		TaskState:    taskStateFn,
		MapTuple:     mapTuple,
		MapFlush:     mapFlush,
		Partition:    partition,
		Reduce:       reduce,
		OutputPrefix: outPrefix,
	}
	return eng.RunTuples(job, rel.Tuples)
}

// expand widens a packed projection back to full width so EncodeGroupKey
// (which projects by mask) can re-encode it.
func expand(packed []relation.Value, mask lattice.Mask, d int, scratch *[]relation.Value) []relation.Value {
	s := *scratch
	if cap(s) < d {
		s = make([]relation.Value, d)
	}
	s = s[:d]
	j := 0
	for i := 0; i < d; i++ {
		if mask.Has(i) {
			s[i] = packed[j]
			j++
		} else {
			s[i] = 0
		}
	}
	*scratch = s
	return s
}

func encodeMeasure(buf []byte, m int64) []byte {
	return binary.AppendVarint(buf[:0], m)
}

func decodeMeasure(b []byte) (int64, bool) {
	v, n := binary.Varint(b)
	return v, n > 0
}
