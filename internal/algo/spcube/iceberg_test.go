package spcube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestIcebergMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct {
		n, d, card, k, minSup int
	}{
		{400, 3, 3, 4, 5},
		{400, 3, 3, 4, 25},
		{600, 4, 4, 5, 10},
		{300, 2, 50, 3, 2},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		spec := cube.Spec{Agg: agg.Sum, MinSup: tc.minSup}
		eng := cubetest.NewEngine(tc.k)
		res, _, err := cubetest.RunAndCollect(eng, Compute, rel, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("minSup=%d: %s", tc.minSup, diff)
		}
		// The iceberg cube must shrink exactly as much as the reference
		// does.
		full := cube.Brute(rel, agg.Sum)
		if res.Len() > full.Len() {
			t.Errorf("minSup=%d produced more groups than the full cube (%d vs %d)", tc.minSup, res.Len(), full.Len())
		}
		if want.Len() < full.Len() && res.Len() >= full.Len() {
			t.Errorf("minSup=%d did not shrink the cube (%d vs %d groups)", tc.minSup, res.Len(), full.Len())
		}
	}
}

func TestIcebergSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rel := cubetest.SkewedRelation(rng, 800, 3, 0.6, 3)
	for _, minSup := range []int{2, 10, 100} {
		spec := cube.Spec{Agg: agg.Count, MinSup: minSup}
		eng := cubetest.NewEngine(4)
		res, _, err := cubetest.RunAndCollect(eng, Compute, rel, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("minSup=%d: %s", minSup, diff)
		}
	}
}

func TestDistinctAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := cubetest.SkewedRelation(rng, 500, 3, 0.5, 3)
	if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Distinct, 4); err != nil {
		t.Error(err)
	}
}

func TestComputeMultiSharesSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rel := cubetest.SkewedRelation(rng, 600, 3, 0.4, 3)
	eng := cubetest.NewEngine(4)
	specs := []cube.Spec{
		{Agg: agg.Count},
		{Agg: agg.Sum},
		{Agg: agg.Avg, MinSup: 3},
	}
	runs, err := ComputeMulti(eng, rel, specs, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs", len(runs))
	}
	// Only the first run pays the sketch round.
	if got := len(runs[0].Metrics.Rounds); got != 2 {
		t.Errorf("first run should have sketch+cube rounds, got %d", got)
	}
	for i := 1; i < 3; i++ {
		if got := len(runs[i].Metrics.Rounds); got != 1 {
			t.Errorf("run %d should reuse the sketch (1 round), got %d", i, got)
		}
		if runs[i].SketchBytes != runs[0].SketchBytes {
			t.Errorf("run %d reports different sketch size", i)
		}
	}
	// Each output matches its own brute-force reference.
	for i, spec := range specs {
		res, err := cube.CollectDFS(eng, runs[i].OutputPrefix, rel.D())
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("spec %d (%s): %s", i, spec.Agg.Name(), diff)
		}
	}
}

func TestComputeMultiErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := cubetest.RandomRelation(rng, 50, 2, 3)
	eng := cubetest.NewEngine(2)
	if _, err := ComputeMulti(eng, rel, nil, Options{}); err == nil {
		t.Error("no specs must fail")
	}
}
