package mrcube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestIcebergAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// Heavy skew so value partitioning kicks in: iceberg filtering must
	// happen only after the merge round reassembles chunked groups.
	rel := cubetest.SkewedRelation(rng, 800, 3, 0.7, 2)
	for _, spec := range []cube.Spec{
		{Agg: agg.Count, MinSup: 8},
		{Agg: agg.Sum, MinSup: 50},
		{Agg: agg.Distinct},
	} {
		eng := cubetest.NewEngine(4)
		res, _, err := cubetest.RunAndCollect(eng, Compute, rel, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("%s minSup=%d: %s", spec.Agg.Name(), spec.MinSup, diff)
		}
	}
}
