package mrcube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		n, d, card, k int
	}{
		{100, 2, 3, 2},
		{400, 3, 4, 4},
		{500, 4, 6, 5},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, tc.k); err != nil {
			t.Errorf("count: %v", err)
		}
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Sum, tc.k); err != nil {
			t.Errorf("sum: %v", err)
		}
	}
}

func TestMatchesBruteForceSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []float64{0, 0.3, 0.7, 1} {
		rel := cubetest.SkewedRelation(rng, 500, 3, p, 4)
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, 5); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestValuePartitioningProducesMergeRound(t *testing.T) {
	// Heavy skew must make at least one cuboid reducer-unfriendly, which
	// forces the post-aggregation round.
	rng := rand.New(rand.NewSource(6))
	rel := cubetest.SkewedRelation(rng, 2000, 3, 0.9, 1)
	eng := cubetest.NewEngine(4)
	run, err := Compute(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Metrics.Rounds) < 3 {
		t.Errorf("expected sampling + materialize + merge rounds, got %d rounds", len(run.Metrics.Rounds))
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		t.Fatal(err)
	}
	want := cube.Brute(rel, agg.Count)
	if ok, diff := want.Equal(res); !ok {
		t.Errorf("cube mismatch after merge round: %s", diff)
	}
}

func TestNoSkewMeansSingleMaterializeRound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rel := cubetest.RandomRelation(rng, 1000, 3, 1_000_000)
	eng := cubetest.NewEngine(4)
	run, err := Compute(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform near-distinct data: only the apex group is skewed, so only
	// the apex cuboid is value-partitioned; no cuboid triggers recursion.
	if got := len(run.Metrics.Rounds); got > 3 {
		t.Errorf("uniform data should need at most sample+materialize+merge, got %d rounds", got)
	}
}
