// Package mrcube implements the MR-Cube algorithm of Nandi, Yu, Bohannon &
// Ramakrishnan (TKDE'12) — the algorithm shipped as Pig's CUBE operator,
// which the paper benchmarks against ("Pig" in Figures 4-8).
//
// MR-Cube samples the input to decide, at *cuboid* granularity, which
// cuboids are reducer-unfriendly (contain at least one group larger than a
// reducer can aggregate in memory). Unfriendly cuboids are value-partitioned:
// every one of their groups is split into f chunks so no reducer receives an
// oversized group, at the price of producing only partial aggregates that an
// extra post-aggregation MapReduce round must merge. Friendly cuboids are
// computed directly, with Hadoop combiners compressing map output (the
// addition Pig made to the original algorithm).
//
// The cuboid-granularity decision is exactly the weakness SP-Cube targets
// (§1): one skewed group makes the whole cuboid pay for value partitioning
// and the extra round, and when sampling underestimates a group, the cuboid
// must be re-partitioned with a larger factor and recomputed — so the number
// of rounds, and hence the running time, grows with the skewness of the
// data.
package mrcube

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// Options tune the baseline.
type Options struct {
	// Seed drives the sampling round.
	Seed int64
	// FriendlyFraction is the fraction of reducer memory a single group
	// may occupy before its cuboid is declared reducer-unfriendly
	// (MR-Cube uses 0.75).
	FriendlyFraction float64
	// MaxRepartitionRounds bounds the re-partition recursion.
	MaxRepartitionRounds int
}

func (o *Options) defaults() {
	if o.FriendlyFraction <= 0 {
		o.FriendlyFraction = 0.75
	}
	if o.MaxRepartitionRounds <= 0 {
		o.MaxRepartitionRounds = 6
	}
}

// Compute runs MR-Cube with default options.
func Compute(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return ComputeOpts(eng, rel, spec, Options{})
}

// ComputeOpts runs MR-Cube with explicit options.
func ComputeOpts(eng *mr.Engine, rel *relation.Relation, spec cube.Spec, opts Options) (*cube.Run, error) {
	opts.defaults()
	d := rel.D()
	n := rel.N()
	k := eng.Cfg.Workers
	m := eng.MemTuples(n)
	f, minSup := spec.Effective()
	run := &cube.Run{Algorithm: "mr-cube", OutputPrefix: "out/mr-cube/"}

	// Round 1: sampling. Reuses the same uniform-sampling machinery as
	// SP-Cube's sketch round (both papers sample the same way), but only
	// cuboid-granularity information is kept: the estimated largest group
	// per cuboid.
	alpha, _ := sketch.Params(n, k, m)
	maxPerCuboid, sampleMetrics, err := sampleCuboidMax(eng, rel, alpha, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("mrcube: sampling round: %w", err)
	}
	run.Metrics.Add(sampleMetrics)

	// Partition plan: per-cuboid chunk factor (1 = friendly).
	capacity := opts.FriendlyFraction * float64(m)
	factors := make([]int, 1<<uint(d))
	for mask := range factors {
		est := maxPerCuboid[mask] / alpha
		factors[mask] = chunkFactor(est, capacity)
	}

	// Rounds 2..: cube materialization, re-partitioning oversized cuboids
	// (detected via actual reducer-side group cardinalities) with doubled
	// factors until all groups fit — the recursion the SP-Cube paper
	// criticizes.
	compute := allMasks(d)
	var partials []mr.Pair
	for round := 0; ; round++ {
		res, oversized, err := materializeRound(eng, rel, spec, compute, factors, capacity, run.OutputPrefix)
		if err != nil {
			return nil, err
		}
		run.Metrics.Add(res.Metrics)
		partials = append(partials, res.Output...)
		if len(oversized) == 0 || round >= opts.MaxRepartitionRounds {
			break
		}
		// Abort the oversized cuboids' results and recompute them with
		// doubled partition factors.
		partials = dropCuboids(partials, oversized, d)
		compute = compute[:0]
		for _, mask := range oversized {
			if factors[mask] < 1 {
				factors[mask] = 1
			}
			factors[mask] *= 2
			compute = append(compute, mask)
		}
	}

	// Final round: post-aggregation of value-partitioned cuboids.
	if len(partials) > 0 {
		mres, err := mergeRound(eng, f, minSup, partials, run.OutputPrefix)
		if err != nil {
			return nil, err
		}
		run.Metrics.Add(mres.Metrics)
	}
	return run, nil
}

// allMasks lists every cuboid of a d-dimensional cube.
func allMasks(d int) []lattice.Mask {
	out := make([]lattice.Mask, 1<<uint(d))
	for i := range out {
		out[i] = lattice.Mask(i)
	}
	return out
}

// chunkFactor returns the value-partitioning factor for an estimated
// largest-group size.
func chunkFactor(estMax, capacity float64) int {
	if estMax <= capacity {
		return 1
	}
	f := int(math.Ceil(estMax / capacity))
	if f < 2 {
		f = 2
	}
	return f
}

// sampleCuboidMax runs the sampling round and returns, per cuboid, the
// largest sample-group cardinality.
func sampleCuboidMax(eng *mr.Engine, rel *relation.Relation, alpha float64, seed int64) ([]float64, mr.RoundMetrics, error) {
	d := rel.D()
	maxPerCuboid := make([]float64, 1<<uint(d))

	// The sampling RNG and the reusable encode buffer are engine-issued
	// task state: map tasks may run in parallel, and a retried task must
	// restart its RNG stream from the beginning or it would sample
	// different tuples than the fault-free run. TaskState has no task-id
	// argument, so the RNG is seeded lazily on first use. The single
	// reducer writes maxPerCuboid without contention (and retries of it
	// recompute the same monotone maxima, so replay is idempotent).
	type sampleState struct {
		rng *rand.Rand
		buf []byte
	}
	job := &mr.Job{
		Name:      "mr-cube-sample",
		Reducers:  1,
		Partition: func(string, int) int { return 0 },
		TaskState: func() any { return new(sampleState) },
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			ts := ctx.State().(*sampleState)
			if ts.rng == nil {
				ts.rng = rand.New(rand.NewSource(seed*999_983 + int64(ctx.Task)))
			}
			if ts.rng.Float64() <= alpha {
				ts.buf = relation.EncodeTuple(ts.buf, t)
				ctx.EmitCopied("s", ts.buf)
			}
		},
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			counts := make(map[string]int)
			var kb []byte
			for _, v := range vals {
				t, err := relation.DecodeTuple(v, d)
				if err != nil {
					continue
				}
				for mask := 0; mask < 1<<uint(d); mask++ {
					kb = relation.EncodeGroupKey(kb, uint32(mask), t.Dims)
					counts[string(kb)]++
					ctx.ChargeOps(1)
				}
			}
			for gk, c := range counts {
				mask, _, _, err := relation.ScanGroupKey([]byte(gk))
				if err != nil {
					continue
				}
				if fc := float64(c); fc > maxPerCuboid[mask] {
					maxPerCuboid[mask] = fc
				}
			}
			ctx.EmitKV("plan", encodePlan(maxPerCuboid))
		},
	}
	res, err := eng.RunTuples(job, rel.Tuples)
	if err != nil {
		return nil, mr.RoundMetrics{}, err
	}
	return maxPerCuboid, res.Metrics, nil
}

func encodePlan(maxPerCuboid []float64) []byte {
	out := make([]byte, 0, 8*len(maxPerCuboid))
	for _, v := range maxPerCuboid {
		out = binary.AppendUvarint(out, uint64(v))
	}
	return out
}

// chunked keys carry a one-or-more-byte chunk suffix after the group key;
// plain keys are bare group keys. A prefix byte distinguishes them.
const (
	prefixPlain   = 'P'
	prefixChunked = 'C'
)

// materializeRound emits, for every tuple and every cuboid in compute, one
// (group[, chunk], state) record, combines per mapper, and aggregates at
// reducers. Friendly-cuboid groups are final and written to the output;
// chunked groups are returned as partials for the merge round. Cuboids
// where a supposedly-friendly group exceeded capacity are returned as
// oversized (sampling failure -> recursion).
func materializeRound(
	eng *mr.Engine,
	rel *relation.Relation,
	spec cube.Spec,
	compute []lattice.Mask,
	factors []int,
	capacity float64,
	outPrefix string,
) (*mr.RoundResult, []lattice.Mask, error) {
	d := rel.D()
	f, minSup := spec.Effective()

	computeSet := make([]bool, 1<<uint(d))
	for _, mask := range compute {
		computeSet[mask] = true
	}

	// Each map task keeps its own round-robin chunk counter and key
	// buffer (tasks may run in parallel); reducers from different tasks
	// record sampling failures in oversizedSet under a mutex — set
	// membership is order-independent, so results stay deterministic.
	type matState struct {
		rr int // round-robin chunk assignment counter (per mapper stream)
		kb []byte
		vb []byte
	}
	var overMu sync.Mutex
	oversizedSet := make(map[lattice.Mask]bool)

	job := &mr.Job{
		Name:          "mr-cube-materialize",
		CollectOutput: true,
		OutputPrefix:  outPrefix,
		// Pig's reduce-side POPackage/algebraic-bag machinery is the
		// heavyweight stage (calibrated against Figure 4b).
		MapCPUFactor:    1.15,
		ReduceCPUFactor: 1.6,
		TaskState:       func() any { return new(matState) },
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			ts := ctx.State().(*matState)
			ts.rr++
			for _, mask := range compute {
				ctx.ChargeOps(1)
				ts.kb = ts.kb[:0]
				fac := factors[mask]
				if fac > 1 {
					ts.kb = append(ts.kb, prefixChunked)
				} else {
					ts.kb = append(ts.kb, prefixPlain)
				}
				ts.kb = relation.AppendGroupKey(ts.kb, uint32(mask), t.Dims)
				if fac > 1 {
					ts.kb = binary.AppendUvarint(ts.kb, uint64(ts.rr%fac))
				}
				st := f.NewState()
				st.Add(t.Measure)
				ts.vb = st.AppendEncode(ts.vb[:0])
				ctx.EmitBytes(ts.kb, ts.vb)
			}
		},
		Combine: func(key string, vals [][]byte) [][]byte {
			st := f.NewState()
			for _, v := range vals {
				p, err := f.DecodeState(v)
				if err != nil {
					continue
				}
				st.Merge(p)
			}
			return [][]byte{st.AppendEncode(nil)}
		},
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			if len(key) == 0 {
				return
			}
			st := f.NewState()
			var rawCount int64
			for _, v := range vals {
				p, err := f.DecodeState(v)
				if err != nil {
					continue
				}
				st.Merge(p)
				ctx.ChargeOps(1)
			}
			// Reducer-side failure detection for the recursion: states
			// expose the true group cardinality when the function tracks
			// it; otherwise MR-Cube falls back to the per-key record
			// count heuristic.
			if c, ok := agg.Cardinality(st); ok {
				rawCount = c
			} else {
				rawCount = int64(len(vals))
			}
			switch key[0] {
			case prefixPlain:
				gk := key[1:]
				if float64(rawCount) > capacity {
					mask, _, _, err := relation.ScanGroupKey([]byte(gk))
					if err == nil {
						overMu.Lock()
						oversizedSet[lattice.Mask(mask)] = true
						overMu.Unlock()
						return // aborted: recomputed next round
					}
				}
				if !cube.Keep(st, minSup) {
					return
				}
				ctx.EmitKV(gk, cube.EncodeFinal(st.Final()))
			case prefixChunked:
				// Partial aggregate of one chunk; merged in the final
				// round. Strip the chunk suffix from the key.
				gk, err := stripChunk(key[1:])
				if err != nil {
					return
				}
				ctx.EmitSide(gk, st.AppendEncode(nil))
			}
		},
	}

	res, err := eng.RunTuples(job, rel.Tuples)
	if err != nil {
		return nil, nil, err
	}
	var oversized []lattice.Mask
	for mask := range oversizedSet {
		oversized = append(oversized, mask)
	}
	sort.Slice(oversized, func(i, j int) bool { return oversized[i] < oversized[j] })
	return res, oversized, nil
}

func stripChunk(key string) (string, error) {
	_, _, n, err := relation.ScanGroupKey([]byte(key))
	if err != nil {
		return "", err
	}
	return key[:n], nil
}

// dropCuboids removes the partials of the given cuboids (they are being
// recomputed).
func dropCuboids(partials []mr.Pair, masks []lattice.Mask, d int) []mr.Pair {
	drop := make([]bool, 1<<uint(d))
	for _, m := range masks {
		drop[m] = true
	}
	out := partials[:0]
	for _, p := range partials {
		mask, _, _, err := relation.ScanGroupKey([]byte(p.Key))
		if err == nil && drop[mask] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// mergeRound is MR-Cube's post-aggregation: chunk partials of the same
// group are merged into the final aggregate. Iceberg thresholds can only be
// applied here, once the chunks are combined.
func mergeRound(eng *mr.Engine, f agg.Func, minSup int, partials []mr.Pair, outPrefix string) (*mr.RoundResult, error) {
	job := &mr.Job{
		Name:            "mr-cube-merge",
		OutputPrefix:    outPrefix,
		MapCPUFactor:    1.15,
		ReduceCPUFactor: 1.6,
		MapPair: func(ctx *mr.MapCtx, key string, val []byte) {
			// Pass-through: val is the engine-owned partial from the
			// previous round's collected output, never reused — the
			// zero-copy Emit contract holds.
			ctx.Emit(key, val)
		},
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			st := f.NewState()
			for _, v := range vals {
				p, err := f.DecodeState(v)
				if err != nil {
					continue
				}
				st.Merge(p)
				ctx.ChargeOps(1)
			}
			if !cube.Keep(st, minSup) {
				return
			}
			ctx.EmitKV(key, cube.EncodeFinal(st.Final()))
		},
	}
	return eng.RunPairs(job, partials)
}
