package mrcube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
)

// TestIdenticalUnderRetry is the regression test for MR-Cube's two pieces of
// retry-sensitive state: the sampling RNG (engine-issued task state — a
// resumed stream would yield a different partition plan and different
// ShuffleBytes) and the shared oversizedSet (replayed reducer attempts must
// record sampling failures idempotently).
func TestIdenticalUnderRetry(t *testing.T) {
	rel := cubetest.SkewedRelation(rand.New(rand.NewSource(6)), 2000, 3, 0.9, 1)
	run := func(spec string) (*cube.Result, *cube.Run) {
		t.Helper()
		plan, err := mr.ParseFaultPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng := mr.New(mr.Config{Workers: 4, Faults: plan}, dfs.New(false))
		res, runInfo, err := cubetest.RunAndCollect(eng, Compute, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatal(err)
		}
		return res, runInfo
	}
	cleanRes, cleanRun := run("")
	faultRes, faultRun := run("*:map:*:mid-emit@3,*:reduce:*:crash")
	if faultRun.Metrics.Retries() == 0 {
		t.Fatal("fault plan did not fire")
	}
	if ok, diff := cleanRes.Equal(faultRes); !ok {
		t.Errorf("faulted MR-Cube output diverges: %s", diff)
	}
	if len(cleanRun.Metrics.Rounds) != len(faultRun.Metrics.Rounds) {
		t.Fatalf("round count diverges: %d vs %d",
			len(cleanRun.Metrics.Rounds), len(faultRun.Metrics.Rounds))
	}
	for i := range cleanRun.Metrics.Rounds {
		c, f := &cleanRun.Metrics.Rounds[i], &faultRun.Metrics.Rounds[i]
		if c.ShuffleBytes != f.ShuffleBytes || c.ShuffleRecords != f.ShuffleRecords {
			t.Errorf("round %d shuffle diverges: %d/%d B vs %d/%d B — retried sampling changed the plan",
				i, c.ShuffleRecords, c.ShuffleBytes, f.ShuffleRecords, f.ShuffleBytes)
		}
		if c.OutputRecords != f.OutputRecords {
			t.Errorf("round %d output records diverge: %d vs %d", i, c.OutputRecords, f.OutputRecords)
		}
	}
	// Ground truth: the faulted run is still the correct cube.
	want := cube.Brute(rel, agg.Count)
	if ok, diff := want.Equal(faultRes); !ok {
		t.Errorf("faulted run wrong vs brute force: %s", diff)
	}
}
