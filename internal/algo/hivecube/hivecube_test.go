package hivecube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// noOOM disables the OOM failure so correctness can be checked even under
// memory pressure.
func noOOM(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return ComputeOpts(eng, rel, spec, Options{DisableOOM: true})
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ n, d, card, k int }{
		{100, 2, 3, 2},
		{400, 3, 4, 4},
		{500, 4, 6, 5},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		if err := cubetest.CheckAgainstBrute(noOOM, rel, agg.Count, tc.k); err != nil {
			t.Errorf("count: %v", err)
		}
		if err := cubetest.CheckAgainstBrute(noOOM, rel, agg.Avg, tc.k); err != nil {
			t.Errorf("avg: %v", err)
		}
	}
}

func TestMatchesBruteForceSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, p := range []float64{0, 0.4, 0.9} {
		rel := cubetest.SkewedRelation(rng, 500, 3, p, 4)
		if err := cubetest.CheckAgainstBrute(noOOM, rel, agg.Count, 5); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestHashFlushBoundsMapperMemory(t *testing.T) {
	// With a tiny hash capacity, the mapper must flush repeatedly: output
	// records exceed the hash capacity but the cube must stay correct.
	rng := rand.New(rand.NewSource(16))
	rel := cubetest.RandomRelation(rng, 300, 3, 50)
	f := func(eng *mr.Engine, r *relation.Relation, spec cube.Spec) (*cube.Run, error) {
		return ComputeOpts(eng, r, spec, Options{HashEntries: 16, DisableOOM: true})
	}
	if err := cubetest.CheckAgainstBrute(f, rel, agg.Sum, 3); err != nil {
		t.Error(err)
	}
}

func TestDisableMapAggregationModel(t *testing.T) {
	// The min-reduction-heuristic model: no map-side aggregation, so the
	// shuffle is the raw 2^d expansion — larger than with the hash — and
	// the cube stays correct.
	rng := rand.New(rand.NewSource(18))
	rel := cubetest.SkewedRelation(rng, 800, 3, 0.5, 3)
	raw := func(eng *mr.Engine, r *relation.Relation, spec cube.Spec) (*cube.Run, error) {
		return ComputeOpts(eng, r, spec, Options{DisableMapAggregation: true, DisableOOM: true})
	}
	if err := cubetest.CheckAgainstBrute(raw, rel, agg.Count, 4); err != nil {
		t.Fatal(err)
	}

	engRaw := cubetest.NewEngine(4)
	runRaw, err := raw(engRaw, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	engHash := cubetest.NewEngine(4)
	runHash, err := ComputeOpts(engHash, rel, cube.Spec{Agg: agg.Count}, Options{DisableOOM: true})
	if err != nil {
		t.Fatal(err)
	}
	if runRaw.Metrics.ShuffleRecords() != int64(rel.N())*8 {
		t.Errorf("raw shuffle = %d records, want n*2^d = %d", runRaw.Metrics.ShuffleRecords(), rel.N()*8)
	}
	if runRaw.Metrics.ShuffleRecords() <= runHash.Metrics.ShuffleRecords() {
		t.Errorf("disabling map aggregation should increase shuffle: %d vs %d",
			runRaw.Metrics.ShuffleRecords(), runHash.Metrics.ShuffleRecords())
	}
}
