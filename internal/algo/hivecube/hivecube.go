// Package hivecube models Hive's CUBE operator (the "Hive" baseline of the
// paper's Figures 4-8), as compiled by Hive 0.13 for a cube query: a single
// MapReduce round in which each mapper expands every row into all 2^d
// grouping sets and aggregates them in a bounded in-memory hash table that
// is flushed to the shuffle whenever it fills (hive.map.aggr with its
// memory-pressure flush); grouping-set keys are then hash-partitioned to
// reducers, which merge the partial aggregates.
//
// The two weaknesses the paper observes are inherent to this plan and are
// reproduced mechanically here:
//
//   - Map time: every row is processed 2^d times through an interpreted
//     operator pipeline and the hash table churns on high-cardinality data,
//     so map output stays near n·2^d records and mappers are CPU-bound
//     (Figures 4c, 5b, 6b, 7c).
//
//   - Reducers hold their partition's aggregation state in JVM memory with
//     large deserialized-object overhead; when skew concentrates a large
//     share of the shuffle on few reducers, they exceed their heap and the
//     job dies (Figure 6a: Hive "got stuck as some reducers got out of
//     memory" for p ≥ 0.4).
package hivecube

import (
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Options tune the model.
type Options struct {
	// HashEntries is the capacity of the map-side aggregation hash table
	// (rows of per-group state a mapper's heap holds). Zero derives it as
	// MemTuples/32, reflecting hive.map.aggr.hash.percentmemory and Java
	// per-entry overhead.
	HashEntries int
	// MemInflation is the deserialized-object amplification applied to
	// reducer input when checking heap pressure. Default 2.
	MemInflation float64
	// DisableOOM makes reducer overload degrade into spill time instead of
	// failing, for experiments that need Hive to limp through.
	DisableOOM bool
	// DisableMapAggregation models Hive's hash.min.reduction heuristic
	// giving up on map-side aggregation (which real Hive 0.13 does on
	// high-cardinality mixtures — the paper's gen-binomial runs at p>=0.4
	// "got stuck as some reducers got out of memory", consistent with raw
	// grouping-set rows flooding the reducers). Every grouping-set row is
	// then shuffled raw.
	DisableMapAggregation bool
}

// Compute runs the Hive-style cube with default options.
func Compute(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	return ComputeOpts(eng, rel, spec, Options{})
}

// ComputeOpts runs the Hive-style cube with explicit options.
func ComputeOpts(eng *mr.Engine, rel *relation.Relation, spec cube.Spec, opts Options) (*cube.Run, error) {
	d := rel.D()
	f, minSup := spec.Effective()
	full := lattice.Full(d)
	if opts.MemInflation <= 0 {
		opts.MemInflation = 2
	}
	capacity := opts.HashEntries
	if capacity <= 0 {
		// The hash competes with the 2^d grouping-set expansion buffers
		// and Java object overhead for the task heap.
		capacity = eng.MemTuples(rel.N()) / 32
	}
	if capacity < 16 {
		capacity = 16
	}

	// Map-side aggregation hash. Map tasks may run in parallel, so each
	// task owns its table and key buffer through the engine's task state;
	// MapFlush drains the flushing task's own table.
	type taskState struct {
		hash map[string]agg.State
		kb   []byte
		vb   []byte
	}
	flush := func(ctx *mr.MapCtx, ts *taskState) {
		// Hive flushes the whole table under memory pressure; emission
		// order must be deterministic for reproducible runs.
		keys := make([]string, 0, len(ts.hash))
		for key := range ts.hash {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ts.vb = ts.hash[key].AppendEncode(ts.vb[:0])
			ctx.EmitCopied(key, ts.vb)
		}
		clear(ts.hash)
	}

	job := &mr.Job{
		Name: "hive-cube",
		TaskState: func() any {
			return &taskState{hash: make(map[string]agg.State, capacity)}
		},
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			ts := ctx.State().(*taskState)
			for mask := lattice.Mask(0); mask <= full; mask++ {
				// Interpreted operator pipeline: SerDe + object
				// inspection per grouping-set row, then the hash probe.
				ctx.ChargeOps(2)
				ts.kb = relation.EncodeGroupKey(ts.kb, uint32(mask), t.Dims)
				if opts.DisableMapAggregation {
					st := f.NewState()
					st.Add(t.Measure)
					ts.vb = st.AppendEncode(ts.vb[:0])
					ctx.EmitBytes(ts.kb, ts.vb)
					continue
				}
				// The string(ts.kb) lookup does not allocate; the key is
				// materialized only when a new table entry is created.
				st, ok := ts.hash[string(ts.kb)]
				if !ok {
					if len(ts.hash) >= capacity {
						flush(ctx, ts)
					}
					st = f.NewState()
					ts.hash[string(ts.kb)] = st
				}
				st.Add(t.Measure)
			}
		},
		MapFlush: func(ctx *mr.MapCtx) { flush(ctx, ctx.State().(*taskState)) },
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			st := f.NewState()
			for _, v := range vals {
				p, err := f.DecodeState(v)
				if err != nil {
					continue
				}
				st.Merge(p)
				ctx.ChargeOps(1)
			}
			if !cube.Keep(st, minSup) {
				return
			}
			ctx.EmitKV(key, cube.EncodeFinal(st.Final()))
		},
		// Hive's interpreted SerDe/ObjectInspector row pipeline makes its
		// mappers slow; its reduce side streams pre-serialized counters
		// cheaply (calibrated against Figure 4b/5b orderings).
		MapCPUFactor:     2.0,
		ReduceCPUFactor:  0.55,
		FailOnReducerOOM: !opts.DisableOOM,
		MemInflation:     opts.MemInflation,
		OutputPrefix:     "out/hive-cube/",
	}

	res, err := eng.RunTuples(job, rel.Tuples)
	run := &cube.Run{Algorithm: "hive", OutputPrefix: "out/hive-cube/"}
	if res != nil {
		run.Metrics.Add(res.Metrics)
	}
	if err != nil {
		return run, err
	}
	return run, nil
}
