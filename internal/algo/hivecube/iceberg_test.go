package hivecube

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

func TestIcebergAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rel := cubetest.RandomRelation(rng, 500, 3, 5)
	fn := func(eng *mr.Engine, r *relation.Relation, spec cube.Spec) (*cube.Run, error) {
		return ComputeOpts(eng, r, spec, Options{DisableOOM: true})
	}
	for _, spec := range []cube.Spec{
		{Agg: agg.Avg, MinSup: 6},
		{Agg: agg.Distinct},
	} {
		eng := cubetest.NewEngine(4)
		res, _, err := cubetest.RunAndCollect(eng, fn, rel, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("%s minSup=%d: %s", spec.Agg.Name(), spec.MinSup, diff)
		}
	}
}
