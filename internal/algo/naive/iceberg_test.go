package naive

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestIcebergAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rel := cubetest.RandomRelation(rng, 500, 3, 4)
	for _, spec := range []cube.Spec{
		{Agg: agg.Sum, MinSup: 10},
		{Agg: agg.Distinct},
		{Agg: agg.Distinct, MinSup: 20},
	} {
		eng := cubetest.NewEngine(4)
		res, _, err := cubetest.RunAndCollect(eng, Compute, rel, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cube.BruteSpec(rel, spec)
		if ok, diff := want.Equal(res); !ok {
			t.Errorf("%s minSup=%d: %s", spec.Agg.Name(), spec.MinSup, diff)
		}
	}
}
