package naive

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, d, card, k int }{
		{100, 2, 3, 2},
		{300, 3, 4, 4},
		{500, 4, 6, 5},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		for _, f := range []agg.Func{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg} {
			if err := cubetest.CheckAgainstBrute(Compute, rel, f, tc.k); err != nil {
				t.Errorf("%s: %v", f.Name(), err)
			}
		}
	}
}

func TestSkewedGroupOverloadsOneReducer(t *testing.T) {
	// §3.2: under heavy skew the naive algorithm ships every tuple of a
	// skewed group to a single reducer, whose input then dwarfs m and
	// spills.
	rng := rand.New(rand.NewSource(23))
	rel := cubetest.SkewedRelation(rng, 20000, 3, 0.95, 1)
	eng := cubetest.NewEngine(4)
	run, err := Compute(eng, rel, cube.Spec{Agg: agg.Count})
	if err != nil {
		t.Fatal(err)
	}
	round := run.Metrics.Rounds[0]
	var spill int64
	var largest int64
	for _, r := range round.Reducers {
		spill += r.SpillBytes
		if r.LargestKeyRecords > largest {
			largest = r.LargestKeyRecords
		}
	}
	if largest < int64(eng.MemTuples(rel.N())) {
		t.Errorf("expected a skewed key larger than m=%d, largest=%d", eng.MemTuples(rel.N()), largest)
	}
	if spill == 0 {
		t.Error("expected reducer spill under heavy skew")
	}
}
