// Package naive implements Algorithm 1 of the paper: the straightforward
// MapReduce cube. Every mapper projects each tuple on all 2^d subsets of
// its dimensions and emits one (c-group, measure) pair per projection; the
// framework hash-partitions groups to reducers, and each reducer aggregates
// the value list of every group it receives.
//
// The paper uses this algorithm to expose the three problems an efficient
// cube algorithm must solve (§3): skewed groups overwhelm single reducers
// (their value lists exceed memory and spill), hash partitioning gives no
// load-balance guarantee, and the n·2^d intermediate records ignore the
// relationships between c-groups.
package naive

import (
	"encoding/binary"

	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Compute runs the naive cube algorithm.
func Compute(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	d := rel.D()
	f, minSup := spec.Effective()
	full := lattice.Full(d)

	// Per-task scratch: map tasks may run in parallel, so the reusable
	// encode buffers live in engine-issued task state. Keys and values are
	// built in the scratch and emitted through EmitBytes, which copies
	// them into the attempt arena — no per-emit allocations.
	type taskState struct {
		keyBuf []byte
		valBuf []byte
	}
	job := &mr.Job{
		Name:      "naive-cube",
		TaskState: func() any { return new(taskState) },
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			st := ctx.State().(*taskState)
			st.valBuf = encodeMeasure(st.valBuf, t.Measure)
			for mask := lattice.Mask(0); mask <= full; mask++ {
				ctx.ChargeOps(1)
				st.keyBuf = relation.EncodeGroupKey(st.keyBuf, uint32(mask), t.Dims)
				ctx.EmitBytes(st.keyBuf, st.valBuf)
			}
		},
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			st := f.NewState()
			for _, v := range vals {
				m, ok := decodeMeasure(v)
				if !ok {
					continue
				}
				st.Add(m)
				ctx.ChargeOps(1)
			}
			if !cube.Keep(st, minSup) {
				return
			}
			ctx.EmitKV(key, cube.EncodeFinal(st.Final()))
		},
		OutputPrefix: "out/naive-cube/",
	}

	res, err := eng.RunTuples(job, rel.Tuples)
	if err != nil {
		return nil, err
	}
	run := &cube.Run{Algorithm: "naive", OutputPrefix: "out/naive-cube/"}
	run.Metrics.Add(res.Metrics)
	return run, nil
}

func encodeMeasure(buf []byte, m int64) []byte {
	return binary.AppendVarint(buf[:0], m)
}

func decodeMeasure(b []byte) (int64, bool) {
	v, n := binary.Varint(b)
	return v, n > 0
}
