package pipesort

import (
	"math/rand"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
)

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, tc := range []struct{ n, d, card, k int }{
		{100, 1, 3, 2},
		{300, 3, 4, 4},
		{500, 4, 6, 5},
	} {
		rel := cubetest.RandomRelation(rng, tc.n, tc.d, tc.card)
		for _, f := range []agg.Func{agg.Count, agg.Sum, agg.Avg, agg.Distinct} {
			if err := cubetest.CheckAgainstBrute(Compute, rel, f, tc.k); err != nil {
				t.Errorf("%s: %v", f.Name(), err)
			}
		}
	}
}

func TestMatchesBruteForceSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, p := range []float64{0.2, 0.8} {
		rel := cubetest.SkewedRelation(rng, 500, 3, p, 3)
		if err := cubetest.CheckAgainstBrute(Compute, rel, agg.Count, 4); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestIceberg(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	rel := cubetest.RandomRelation(rng, 400, 3, 3)
	spec := cube.Spec{Agg: agg.Sum, MinSup: 20}
	eng := cubetest.NewEngine(4)
	res, _, err := cubetest.RunAndCollect(eng, Compute, rel, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := cube.BruteSpec(rel, spec)
	if ok, diff := want.Equal(res); !ok {
		t.Error(diff)
	}
}

func TestRoundCountIsDPlusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, d := range []int{2, 4, 5} {
		rel := cubetest.RandomRelation(rng, 300, d, 4)
		eng := cubetest.NewEngine(4)
		run, err := Compute(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(run.Metrics.Rounds); got != d+1 {
			t.Errorf("d=%d: %d rounds, want %d (the §7 objection to top-down MR cubes)", d, got, d+1)
		}
	}
}

func TestParentSelection(t *testing.T) {
	if parentOf(0b0000, 4) != 0b0001 {
		t.Error("apex parent should add attribute 0")
	}
	if parentOf(0b0101, 4) != 0b0111 {
		t.Error("parent of {0,2} should add attribute 1")
	}
	if parentOf(0b1111, 4) != 0b1111 {
		t.Error("full cuboid has no parent")
	}
}
