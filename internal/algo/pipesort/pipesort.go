// Package pipesort implements a top-down MapReduce cube in the style of
// Lee, Kim, Moon & Lee (DaWaK'12), the parallelized Pipesort the paper
// discusses in §7: cuboids are computed level by level down the lattice,
// each cuboid aggregated from a parent cuboid one level above, yielding a
// *series* of d+1 MapReduce rounds.
//
// The paper excludes this algorithm from its experiments because the round
// count makes it strictly slower than the bottom-up competitors ("the more
// MapReduce rounds, the more are the ram-to-disk transactions") and because
// skewed c-groups still land on single reducers. This implementation exists
// to reproduce that analysis: cmd/spbench's "rounds" experiment shows the
// per-round startup and re-materialization overhead growing with d, exactly
// as §7 argues.
//
// Parent selection: every cuboid at level l aggregates from the parent at
// level l+1 obtained by adding the lowest absent attribute. (Classic
// Pipesort picks parents to minimize re-sorts along shared sort orders; the
// simulated substrate does not model sort order, so the deterministic
// lowest-attribute choice is equivalent here.)
package pipesort

import (
	"fmt"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Compute runs the top-down cube.
func Compute(eng *mr.Engine, rel *relation.Relation, spec cube.Spec) (*cube.Run, error) {
	d := rel.D()
	if d > lattice.MaxDims {
		return nil, fmt.Errorf("pipesort: %d dimensions exceed the supported maximum %d", d, lattice.MaxDims)
	}
	f, minSup := spec.Effective()
	run := &cube.Run{Algorithm: "pipesort", OutputPrefix: "out/pipesort/"}
	full := lattice.Full(d)

	// Round 0: the top cuboid (all attributes) from the raw relation.
	top := &mr.Job{
		Name:          "pipesort-l" + itoa(d),
		CollectOutput: true,
		OutputPrefix:  run.OutputPrefix,
		TaskState:     func() any { return new(taskState) },
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			ts := ctx.State().(*taskState)
			ctx.ChargeOps(1)
			ts.kb = relation.EncodeGroupKey(ts.kb, uint32(full), t.Dims)
			st := f.NewState()
			st.Add(t.Measure)
			ts.vb = st.AppendEncode(ts.vb[:0])
			ctx.EmitBytes(ts.kb, ts.vb)
		},
		Combine: combine(f),
		Reduce:  reduceLevel(f, minSup, d > 0),
	}
	res, err := eng.RunTuples(top, rel.Tuples)
	if err != nil {
		return nil, err
	}
	run.Metrics.Add(res.Metrics)
	parents := res.Output

	// Rounds 1..d: level l from level l+1.
	for level := d - 1; level >= 0; level-- {
		job := &mr.Job{
			Name:          "pipesort-l" + itoa(level),
			CollectOutput: true,
			OutputPrefix:  run.OutputPrefix,
			TaskState:     func() any { return new(taskState) },
			MapPair:       mapChildren(d, level),
			Combine:       combine(f),
			Reduce:        reduceLevel(f, minSup, level > 0),
		}
		res, err := eng.RunPairs(job, parents)
		if err != nil {
			return nil, err
		}
		run.Metrics.Add(res.Metrics)
		parents = res.Output
	}
	return run, nil
}

// taskState is the per-map-task scratch (map tasks may run in parallel):
// reusable key/value encode buffers emitted through EmitBytes.
type taskState struct {
	kb []byte
	vb []byte
}

// parentOf returns the level-(l+1) cuboid that computes the given cuboid:
// the one adding the lowest attribute not already present.
func parentOf(child lattice.Mask, d int) lattice.Mask {
	for j := 0; j < d; j++ {
		if !child.Has(j) {
			return child | 1<<uint(j)
		}
	}
	return child
}

// mapChildren re-keys each parent group to every child cuboid assigned to
// that parent.
func mapChildren(d, level int) func(ctx *mr.MapCtx, key string, val []byte) {
	// children[parent] lists the level-`level` cuboids aggregated from it.
	children := make(map[lattice.Mask][]lattice.Mask)
	for m := lattice.Mask(0); m <= lattice.Full(d); m++ {
		if m.Level() == level {
			p := parentOf(m, d)
			children[p] = append(children[p], m)
		}
	}
	return func(ctx *mr.MapCtx, key string, val []byte) {
		ts := ctx.State().(*taskState)
		mask, packed, _, err := relation.ScanGroupKey([]byte(key))
		if err != nil {
			return
		}
		dims := relation.GroupVals(mask, packed, d)
		for _, child := range children[lattice.Mask(mask)] {
			ctx.ChargeOps(1)
			ts.kb = relation.EncodeGroupKey(ts.kb, uint32(child), dims)
			ctx.EmitBytes(ts.kb, val)
		}
	}
}

func combine(f agg.Func) func(key string, vals [][]byte) [][]byte {
	return func(key string, vals [][]byte) [][]byte {
		st := f.NewState()
		for _, v := range vals {
			p, err := f.DecodeState(v)
			if err != nil {
				continue
			}
			st.Merge(p)
		}
		return [][]byte{st.AppendEncode(nil)}
	}
}

// reduceLevel merges partial states, writes final groups (iceberg-filtered)
// to the output, and passes unfiltered states to the next round — iceberg
// thresholds are not anti-monotone across parent aggregation, so filtering
// must not propagate.
func reduceLevel(f agg.Func, minSup int, moreLevels bool) func(ctx *mr.RedCtx, key string, vals [][]byte) {
	return func(ctx *mr.RedCtx, key string, vals [][]byte) {
		st := f.NewState()
		for _, v := range vals {
			p, err := f.DecodeState(v)
			if err != nil {
				continue
			}
			st.Merge(p)
			ctx.ChargeOps(1)
		}
		if cube.Keep(st, minSup) {
			ctx.EmitKV(key, cube.EncodeFinal(st.Final()))
		}
		if moreLevels {
			ctx.EmitSide(key, st.AppendEncode(nil))
		}
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
