// Package lattice implements the cube lattice and tuple lattice of
// Milo & Altshuler (SIGMOD'16, §2.2) as bitmask arithmetic.
//
// A cuboid over d dimensions is a Mask: bit i set means dimension attribute
// Ai participates in the group-by. The cube lattice orders cuboids by the
// descendant relation (C' is a descendant of C when C' drops one attribute
// of C); the tuple lattice of a tuple t has the same shape, with each node
// being the c-group of t's projection on the node's mask.
//
// SP-Cube traverses the tuple lattice bottom-up in BFS order starting from
// the all-stars node (empty mask). The canonical BFS order used everywhere
// in this codebase is: by ascending popcount (lattice level), ties broken by
// ascending numeric mask value. This matches the paper's running example,
// which visits (*,*,*), then (name,*,*), (*,city,*), (*,*,year), and so on.
package lattice

import (
	"math/bits"
	"sort"
)

// Mask identifies a cuboid: bit i set means dimension i is grouped on.
type Mask uint32

// MaxDims is the largest supported number of cube dimensions. The cube has
// 2^d cuboids, so this is a safety bound, not a practical target.
const MaxDims = 20

// Has reports whether dimension i participates in the cuboid.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Level returns the popcount of the mask, i.e. the lattice level.
func (m Mask) Level() int { return bits.OnesCount32(uint32(m)) }

// Full returns the mask of the top cuboid (all d dimensions).
func Full(d int) Mask { return Mask(1<<uint(d)) - 1 }

// IsSubset reports whether m's dimensions are a subset of o's, i.e. whether
// the c-groups of cuboid o are (weak) ancestors of those of cuboid m.
func (m Mask) IsSubset(o Mask) bool { return m&^o == 0 }

// BFSLess reports whether a precedes b in the canonical bottom-up BFS order.
func BFSLess(a, b Mask) bool {
	la, lb := a.Level(), b.Level()
	if la != lb {
		return la < lb
	}
	return a < b
}

// BFSOrder returns all 2^d masks in canonical BFS order.
// The result is freshly allocated; callers may retain it.
func BFSOrder(d int) []Mask {
	if d < 0 || d > MaxDims {
		panic("lattice: dimension count out of range")
	}
	masks := make([]Mask, 1<<uint(d))
	for i := range masks {
		masks[i] = Mask(i)
	}
	sort.Slice(masks, func(i, j int) bool { return BFSLess(masks[i], masks[j]) })
	return masks
}

// Descendants calls fn for every descendant of m: each mask obtained by
// dropping exactly one dimension of m.
func Descendants(m Mask, fn func(Mask)) {
	for x := uint32(m); x != 0; x &= x - 1 {
		low := x & -x
		fn(m &^ Mask(low))
	}
}

// Ancestors calls fn for every ancestor of m within d dimensions: each mask
// obtained by adding exactly one dimension not in m.
func Ancestors(m Mask, d int, fn func(Mask)) {
	free := uint32(Full(d) &^ m)
	for x := free; x != 0; x &= x - 1 {
		low := x & -x
		fn(m | Mask(low))
	}
}

// Supersets calls fn for every strict superset of m within d dimensions,
// i.e. the transitive ancestors of m in the lattice.
func Supersets(m Mask, d int, fn func(Mask)) {
	full := Full(d)
	free := full &^ m
	// Standard subset-enumeration trick over the free bits.
	for s := free; s != 0; s = (s - 1) & free {
		fn(m | s)
	}
}

// SupersetsIncl calls fn for m and every strict superset of m within d
// dimensions.
func SupersetsIncl(m Mask, d int, fn func(Mask)) {
	fn(m)
	Supersets(m, d, fn)
}

// Subsets calls fn for every strict subset of m (the transitive descendants
// of m in the lattice).
func Subsets(m Mask, fn func(Mask)) {
	if m == 0 {
		return
	}
	for s := (m - 1) & m; ; s = (s - 1) & m {
		fn(s)
		if s == 0 {
			return
		}
	}
}

// SubsetsBFS returns all subsets of m (including m itself and the empty
// mask) sorted in canonical BFS order. Used by the SP-Cube reducer's
// ownership rule, which needs the BFS-minimal non-skewed descendant group.
func SubsetsBFS(m Mask) []Mask {
	out := make([]Mask, 0, 1<<uint(m.Level()))
	s := m
	for {
		out = append(out, s)
		if s == 0 {
			break
		}
		s = (s - 1) & m
	}
	sort.Slice(out, func(i, j int) bool { return BFSLess(out[i], out[j]) })
	return out
}

// Marks is a reusable bitset over the 2^d lattice nodes of a single tuple's
// lattice, used by the SP-Cube mapper to mark processed nodes.
type Marks struct {
	words []uint64
	d     int
}

// NewMarks creates a mark set for a d-dimensional lattice.
func NewMarks(d int) *Marks {
	return &Marks{words: make([]uint64, (1<<uint(d)+63)/64), d: d}
}

// Reset clears all marks.
func (mk *Marks) Reset() {
	for i := range mk.words {
		mk.words[i] = 0
	}
}

// Marked reports whether node m is marked.
func (mk *Marks) Marked(m Mask) bool {
	return mk.words[m>>6]&(1<<(uint(m)&63)) != 0
}

// Mark marks node m.
func (mk *Marks) Mark(m Mask) {
	mk.words[m>>6] |= 1 << (uint(m) & 63)
}

// MarkSupersetsIncl marks m and all its supersets (the node itself and its
// transitive ancestors), as the SP-Cube mapper does after sending a tuple to
// the reducer owning a non-skewed c-group (Algorithm 3, line 12).
func (mk *Marks) MarkSupersetsIncl(m Mask) {
	SupersetsIncl(m, mk.d, mk.Mark)
}
