package lattice

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestBFSOrderProperties(t *testing.T) {
	for d := 0; d <= 8; d++ {
		order := BFSOrder(d)
		if len(order) != 1<<uint(d) {
			t.Fatalf("d=%d: %d masks", d, len(order))
		}
		if d > 0 && order[0] != 0 {
			t.Errorf("d=%d: BFS must start at the apex (empty mask)", d)
		}
		pos := make(map[Mask]int, len(order))
		for i, m := range order {
			pos[m] = i
		}
		// Every strict subset must precede its superset.
		for _, m := range order {
			Subsets(m, func(s Mask) {
				if pos[s] >= pos[m] {
					t.Errorf("d=%d: subset %b does not precede %b", d, s, m)
				}
			})
		}
		// Levels are non-decreasing.
		for i := 1; i < len(order); i++ {
			if order[i].Level() < order[i-1].Level() {
				t.Errorf("d=%d: level decreases at %d", d, i)
			}
		}
	}
}

func TestBFSOrderMatchesPaperExample(t *testing.T) {
	// Figure 2's traversal for (laptop, Rome, 2012): apex first, then the
	// single-attribute nodes in attribute order.
	order := BFSOrder(3)
	want := []Mask{0b000, 0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %03b, want %03b", i, order[i], want[i])
		}
	}
}

func TestSupersetsComplete(t *testing.T) {
	f := func(maskSeed, dSeed uint8) bool {
		d := int(dSeed%7) + 1
		m := Mask(maskSeed) & Full(d)
		got := make(map[Mask]bool)
		Supersets(m, d, func(s Mask) {
			if !m.IsSubset(s) || s == m {
				t.Errorf("Supersets(%b) yielded non-strict-superset %b", m, s)
			}
			if got[s] {
				t.Errorf("Supersets(%b) yielded %b twice", m, s)
			}
			got[s] = true
		})
		want := 1<<uint(d-m.Level()) - 1
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubsetsComplete(t *testing.T) {
	f := func(maskSeed uint8) bool {
		m := Mask(maskSeed)
		count := 0
		Subsets(m, func(s Mask) {
			if !s.IsSubset(m) || s == m {
				t.Errorf("Subsets(%b) yielded %b", m, s)
			}
			count++
		})
		return count == 1<<uint(m.Level())-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestSubsetsBFSSortedAndComplete(t *testing.T) {
	for _, m := range []Mask{0, 0b1, 0b1011, 0b11111} {
		subs := SubsetsBFS(m)
		if len(subs) != 1<<uint(m.Level()) {
			t.Fatalf("SubsetsBFS(%b): %d entries", m, len(subs))
		}
		if subs[0] != 0 || subs[len(subs)-1] != m {
			t.Errorf("SubsetsBFS(%b) must start at 0 and end at %b", m, m)
		}
		for i := 1; i < len(subs); i++ {
			if !BFSLess(subs[i-1], subs[i]) {
				t.Errorf("SubsetsBFS(%b) not in BFS order at %d", m, i)
			}
		}
	}
}

func TestDescendantsAncestors(t *testing.T) {
	var desc, anc []Mask
	Descendants(0b101, func(m Mask) { desc = append(desc, m) })
	if len(desc) != 2 {
		t.Fatalf("descendants of %b: %v", 0b101, desc)
	}
	Ancestors(0b101, 4, func(m Mask) { anc = append(anc, m) })
	if len(anc) != 2 {
		t.Fatalf("ancestors of %b in d=4: %v", 0b101, anc)
	}
	for _, m := range desc {
		if m.Level() != 1 {
			t.Errorf("descendant %b has wrong level", m)
		}
	}
	for _, m := range anc {
		if m.Level() != 3 {
			t.Errorf("ancestor %b has wrong level", m)
		}
	}
}

func TestMarks(t *testing.T) {
	for _, d := range []int{1, 3, 6, 7} {
		mk := NewMarks(d)
		if mk.Marked(0) {
			t.Fatal("fresh marks must be clear")
		}
		mk.Mark(Full(d))
		if !mk.Marked(Full(d)) {
			t.Fatal("Mark failed")
		}
		mk.Reset()
		mk.MarkSupersetsIncl(0)
		for m := Mask(0); m <= Full(d); m++ {
			if !mk.Marked(m) {
				t.Errorf("d=%d: MarkSupersetsIncl(0) missed %b", d, m)
			}
		}
		mk.Reset()
		base := Mask(1)
		mk.MarkSupersetsIncl(base)
		marked := 0
		for m := Mask(0); m <= Full(d); m++ {
			if mk.Marked(m) {
				marked++
				if !base.IsSubset(m) {
					t.Errorf("d=%d: marked non-superset %b", d, m)
				}
			}
		}
		if marked != 1<<uint(d-1) {
			t.Errorf("d=%d: marked %d nodes, want %d", d, marked, 1<<uint(d-1))
		}
	}
}

func TestBFSLessTotalOrder(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Mask(a), Mask(b)
		if x == y {
			return !BFSLess(x, y) && !BFSLess(y, x)
		}
		return BFSLess(x, y) != BFSLess(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLevelMatchesPopcount(t *testing.T) {
	f := func(a uint32) bool {
		return Mask(a).Level() == bits.OnesCount32(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
