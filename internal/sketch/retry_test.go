package sketch

import (
	"bytes"
	"testing"

	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"

	"math/rand"
)

// TestBuildIdenticalUnderRetry is the regression test for the sampling RNG
// living in engine-issued task state: if a retried map task resumed a prior
// attempt's RNG stream it would sample different tuples, and the rebuilt
// sketch would diverge from the fault-free one.
func TestBuildIdenticalUnderRetry(t *testing.T) {
	rel := cubetest.RandomRelation(rand.New(rand.NewSource(11)), 2000, 3, 5)
	build := func(spec string) ([]byte, mr.RoundMetrics) {
		t.Helper()
		plan, err := mr.ParseFaultPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng := mr.New(mr.Config{Workers: 4, Faults: plan}, dfs.New(true))
		res, err := Build(eng, rel, 3)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := res.Sketch.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc, res.Metrics
	}
	clean, cleanMetrics := build("")
	if cleanMetrics.Retries != 0 {
		t.Fatalf("fault-free build reports %d retries", cleanMetrics.Retries)
	}
	for _, spec := range []string{"0:map:*:crash", "0:map:*:mid-emit@2", "0:reduce:0:mid-emit@1"} {
		enc, metrics := build(spec)
		if metrics.Retries == 0 {
			t.Errorf("fault %q did not fire", spec)
		}
		if !bytes.Equal(enc, clean) {
			t.Errorf("fault %q: retried build produced a different sketch (%d vs %d bytes)",
				spec, len(enc), len(clean))
		}
	}
}
