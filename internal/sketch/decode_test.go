package sketch

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

func encodeWire(t *testing.T, w wire) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeRejectsMalformedWire is the regression test for Decode trusting
// the wire form: a corrupted or adversarial sketch file used to come back
// with skews/parts slices shorter than 2^D, panicking later inside cuboid
// lookups. Every malformed shape must be rejected with an error.
func TestDecodeRejectsMalformedWire(t *testing.T) {
	skewSets := func(n int) [][]string { return make([][]string, n) }
	cases := []struct {
		name string
		w    wire
		want string
	}{
		{"negative dims", wire{D: -1, K: 2}, "dimensions"},
		{"dims beyond MaxDims", wire{D: lattice.MaxDims + 1, K: 2}, "dimensions"},
		{"zero machines", wire{D: 2, K: 0, Skews: skewSets(4)}, "machine count"},
		{"negative machines", wire{D: 2, K: -3, Skews: skewSets(4)}, "machine count"},
		{"skews too short", wire{D: 2, K: 2, Skews: skewSets(3)}, "skew sets"},
		{"skews too long", wire{D: 2, K: 2, Skews: skewSets(5)}, "skew sets"},
		{"skews missing", wire{D: 2, K: 2}, "skew sets"},
		{"parts too short", wire{D: 2, K: 2, Skews: skewSets(4),
			Parts: make([][][]relation.Value, 2)}, "partition sets"},
		{"parts too long", wire{D: 2, K: 2, Skews: skewSets(4),
			Parts: make([][][]relation.Value, 8)}, "partition sets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode(encodeWire(t, tc.w))
			if err == nil {
				t.Fatalf("Decode accepted malformed wire %+v (got sketch D=%d K=%d)", tc.w, s.D, s.K)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a gob stream")); err == nil {
		t.Error("Decode accepted garbage bytes")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("Decode accepted empty input")
	}
}

func TestDecodeAcceptsValidShapes(t *testing.T) {
	// A well-formed wire with nil Parts (a sketch that recorded no
	// partition elements) must still decode: nil Parts means "use fresh
	// empty sets", not a malformed document.
	w := wire{D: 2, K: 3, Skews: make([][]string, 4)}
	s, err := Decode(encodeWire(t, w))
	if err != nil {
		t.Fatal(err)
	}
	if s.D != 2 || s.K != 3 {
		t.Errorf("decoded D=%d K=%d", s.D, s.K)
	}
	// Partition on an empty cuboid must not panic and routes to range 0.
	if got := s.Partition(3, []relation.Value{1, 2}); got != 0 {
		t.Errorf("partition = %d, want 0", got)
	}
}
