package sketch

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/relation"
)

// header builds the fixed prefix of the wire format: magic, version, and
// the D/K/SampleN + alpha/beta block.
func header(d, k, sampleN int) []byte {
	buf := append([]byte(wireMagic), wireVersion)
	buf = binary.AppendUvarint(buf, uint64(d))
	buf = binary.AppendUvarint(buf, uint64(k))
	buf = binary.AppendUvarint(buf, uint64(sampleN))
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	return buf
}

// emptyBody appends 2^d empty skew sets and a nil-parts flag — the rest of
// a minimal valid document after header(d, k, n).
func emptyBody(buf []byte, d int) []byte {
	for i := 0; i < 1<<uint(d); i++ {
		buf = binary.AppendUvarint(buf, 0)
	}
	return append(buf, 0)
}

// TestDecodeRejectsMalformedWire is the regression test for Decode trusting
// the wire form: a corrupted or adversarial sketch file used to come back
// with skews/parts slices shorter than 2^D, panicking later inside cuboid
// lookups. Every malformed shape must be rejected with an error.
func TestDecodeRejectsMalformedWire(t *testing.T) {
	valid := emptyBody(header(2, 3, 10), 2)
	if _, err := Decode(valid); err != nil {
		t.Fatalf("baseline document does not decode: %v", err)
	}
	corrupt := func(mutate func([]byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"wrong version", corrupt(func(b []byte) []byte { b[4] = 99; return b }), "version"},
		{"dims beyond MaxDims", emptyBody(header(lattice.MaxDims+1, 2, 0), 0), "dimensions"},
		{"zero machines", emptyBody(header(2, 0, 0), 2), "machine count"},
		{"truncated header", valid[:8], "truncated"},
		{"truncated skew sets", valid[:len(valid)-3], "truncated"},
		{"oversized skew count", corrupt(func(b []byte) []byte {
			b[len(b)-5] = 200 // first skew-set count: 200 keys with 4 bytes left
			return b
		}), "count"},
		{"bad partition flag", corrupt(func(b []byte) []byte { b[len(b)-1] = 7; return b }), "partition flag"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAA), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("Decode accepted malformed document (got sketch D=%d K=%d)", s.D, s.K)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a sketch document")); err == nil {
		t.Error("Decode accepted garbage bytes")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("Decode accepted empty input")
	}
}

func TestDecodeAcceptsValidShapes(t *testing.T) {
	// A well-formed document with the nil-parts flag (a sketch that
	// recorded no partition elements) must still decode: nil parts means
	// "use fresh empty sets", not a malformed document.
	s, err := Decode(emptyBody(header(2, 3, 0), 2))
	if err != nil {
		t.Fatal(err)
	}
	if s.D != 2 || s.K != 3 {
		t.Errorf("decoded D=%d K=%d", s.D, s.K)
	}
	// Partition on an empty cuboid must not panic and routes to range 0.
	if got := s.Partition(3, []relation.Value{1, 2}); got != 0 {
		t.Errorf("partition = %d, want 0", got)
	}
}

// TestEncodeDeterministicAcrossHistory pins the property that motivated the
// hand-rolled wire format: the encoded size is a pure function of the
// sketch's content. The gob encoding it replaced assigned type IDs from a
// process-global counter, so the serialized sketch — a paper-reported
// figure — grew by a byte whenever unrelated code gob-encoded first (the
// proc backend's RPC layer did exactly that).
func TestEncodeDeterministicAcrossHistory(t *testing.T) {
	s := newSketch(2, 3)
	s.SampleN = 7
	s.Alpha, s.Beta = 0.25, 8.5
	s.skews[1]["\x02\x04"] = struct{}{}
	s.parts = make([][][]relation.Value, 4)
	s.parts[2] = [][]relation.Value{{1, -2}, {3, 4}}
	a, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two encodes of the same sketch differ")
	}
	dec, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SampleN != 7 || dec.Alpha != 0.25 || dec.Beta != 8.5 {
		t.Errorf("round trip lost metadata: %+v", dec)
	}
	if _, ok := dec.skews[1]["\x02\x04"]; !ok {
		t.Error("round trip lost a skew key")
	}
	if len(dec.parts[2]) != 2 || dec.parts[2][0][1] != -2 {
		t.Errorf("round trip lost partition elements: %v", dec.parts[2])
	}
}
