package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

func TestParams(t *testing.T) {
	alpha, beta := Params(300_000, 20, 15_000)
	wantBeta := math.Log(300_000 * 20)
	if math.Abs(beta-wantBeta) > 1e-9 {
		t.Errorf("beta = %v, want ln(nk) = %v", beta, wantBeta)
	}
	if math.Abs(alpha-wantBeta/15000) > 1e-12 {
		t.Errorf("alpha = %v", alpha)
	}
	// Alpha is a probability.
	if a, _ := Params(10, 2, 1); a > 1 {
		t.Errorf("alpha must be capped at 1, got %v", a)
	}
}

func TestSampleSizeIsOofM(t *testing.T) {
	// Proposition 4.4: the sample is O(m) w.h.p. (expected k·ln(nk) ≪ m).
	rng := rand.New(rand.NewSource(31))
	rel := cubetest.RandomRelation(rng, 40_000, 3, 1_000_000)
	eng := mr.New(mr.Config{Workers: 10}, nil)
	built, err := Build(eng, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := eng.MemTuples(rel.N())
	expected := float64(10) * math.Log(float64(rel.N())*10)
	if got := float64(built.Sketch.SampleN); got > 4*expected || got > float64(m) {
		t.Errorf("sample %v exceeds O(m): expected ~%.0f, m=%d", got, expected, m)
	}
	if built.Sketch.SampleN == 0 {
		t.Error("sample must not be empty at this scale")
	}
}

func TestDetectsLargeSkews(t *testing.T) {
	// Proposition 4.5: all skewed groups are captured w.h.p. Groups at the
	// threshold may be missed; test groups ≥ 2m.
	rng := rand.New(rand.NewSource(33))
	rel := cubetest.SkewedRelation(rng, 30_000, 3, 0.6, 2)
	k := 10
	eng := mr.New(mr.Config{Workers: k}, nil)
	built, err := Build(eng, rel, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := eng.MemTuples(rel.N())

	// Exact group counts.
	counts := make(map[string]int)
	for _, tu := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(3); mask++ {
			counts[relation.GroupKey(uint32(mask), tu.Dims)]++
		}
	}
	missed := 0
	checked := 0
	for key, c := range counts {
		if c < 2*m {
			continue
		}
		checked++
		mask, packed, _ := relation.DecodeGroupKey(key)
		if !built.Sketch.IsSkewed(lattice.Mask(mask), packed) {
			missed++
			t.Logf("missed group %s with %d tuples (m=%d)", relation.FormatGroup(nil, mask, packed, 3), c, m)
		}
	}
	if checked == 0 {
		t.Fatal("test data produced no clearly-skewed groups")
	}
	if missed > 0 {
		t.Errorf("missed %d of %d clearly skewed groups", missed, checked)
	}
}

func TestNoWildFalsePositives(t *testing.T) {
	// Near-distinct data has no skewed groups except the apex; the sketch
	// must not declare meaningful skew.
	rng := rand.New(rand.NewSource(37))
	rel := cubetest.RandomRelation(rng, 20_000, 3, 1_000_000)
	eng := mr.New(mr.Config{Workers: 10}, nil)
	built, err := Build(eng, rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n := built.Sketch.NumSkews(); n > 3 {
		t.Errorf("uniform data produced %d skew entries", n)
	}
	if !built.Sketch.IsSkewed(0, nil) {
		t.Error("the apex group must be detected as skewed (|set|=n>m)")
	}
}

func TestPartitionBalance(t *testing.T) {
	// Proposition 4.6: omitting skewed groups, every cuboid's partitions
	// are O(m).
	rng := rand.New(rand.NewSource(41))
	rel := cubetest.SkewedRelation(rng, 30_000, 3, 0.4, 3)
	k := 10
	eng := mr.New(mr.Config{Workers: k}, nil)
	built, err := Build(eng, rel, 11)
	if err != nil {
		t.Fatal(err)
	}
	sk := built.Sketch
	m := eng.MemTuples(rel.N())
	for mask := lattice.Mask(1); mask <= lattice.Full(3); mask++ {
		loads := make([]int, k)
		for _, tu := range rel.Tuples {
			if sk.IsSkewedDims(mask, tu.Dims) {
				continue
			}
			loads[sk.PartitionDims(mask, tu.Dims)]++
		}
		for i, load := range loads {
			if load > 4*m {
				t.Errorf("cuboid %b partition %d holds %d non-skewed tuples (m=%d)", mask, i, load, m)
			}
		}
	}
}

func TestPartitionSemantics(t *testing.T) {
	s := newSketch(2, 4)
	s.SetPartitionElements(0b01, [][]relation.Value{{10}, {20}, {30}})
	cases := []struct {
		v    relation.Value
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {1000, 3}}
	for _, c := range cases {
		if got := s.Partition(0b01, []relation.Value{c.v}); got != c.want {
			t.Errorf("Partition(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Apex cuboid: everything lands in partition 0.
	if s.Partition(0, nil) != 0 {
		t.Error("apex partition must be 0")
	}
}

func TestPartitionMonotone(t *testing.T) {
	s := newSketch(1, 8)
	elems := [][]relation.Value{{-5}, {0}, {3}, {9}, {100}}
	s.SetPartitionElements(0b1, elems)
	f := func(a, b int16) bool {
		pa := s.Partition(0b1, []relation.Value{relation.Value(a)})
		pb := s.Partition(0b1, []relation.Value{relation.Value(b)})
		if a == b {
			return pa == pb
		}
		if a < b {
			return pa <= pb
		}
		return pa >= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rel := cubetest.SkewedRelation(rng, 5_000, 3, 0.5, 3)
	sk := BuildExact(rel, 5, 500)
	enc, err := sk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.D != sk.D || dec.K != sk.K || dec.NumSkews() != sk.NumSkews() {
		t.Errorf("metadata mismatch after decode")
	}
	for mask := lattice.Mask(0); mask <= lattice.Full(3); mask++ {
		for _, tu := range rel.Tuples[:200] {
			if sk.IsSkewedDims(mask, tu.Dims) != dec.IsSkewedDims(mask, tu.Dims) {
				t.Fatalf("IsSkewed differs after decode (mask %b)", mask)
			}
			if sk.PartitionDims(mask, tu.Dims) != dec.PartitionDims(mask, tu.Dims) {
				t.Fatalf("Partition differs after decode (mask %b)", mask)
			}
		}
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage must not decode")
	}
}

func TestSketchIsSmall(t *testing.T) {
	// §6.1: the sketch is orders of magnitude smaller than the input.
	rng := rand.New(rand.NewSource(47))
	rel := cubetest.SkewedRelation(rng, 50_000, 4, 0.3, 5)
	eng := mr.New(mr.Config{Workers: 20}, nil)
	built, err := Build(eng, rel, 5)
	if err != nil {
		t.Fatal(err)
	}
	inputBytes := rel.N() * (4*4 + 8)
	if built.EncodedBytes*20 > inputBytes {
		t.Errorf("sketch %d B not ≪ input %d B", built.EncodedBytes, inputBytes)
	}
	if built.EncodedBytes != built.Sketch.Bytes() {
		t.Errorf("Bytes() disagrees with encoded size")
	}
}

func TestExactSketchAgainstDefinition(t *testing.T) {
	// BuildExact must mark exactly the groups with |set(g)| > m.
	rng := rand.New(rand.NewSource(51))
	rel := cubetest.SkewedRelation(rng, 2_000, 2, 0.7, 2)
	m := 100
	sk := BuildExact(rel, 4, m)
	counts := make(map[string]int)
	for _, tu := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(2); mask++ {
			counts[relation.GroupKey(uint32(mask), tu.Dims)]++
		}
	}
	for key, c := range counts {
		mask, packed, _ := relation.DecodeGroupKey(key)
		got := sk.IsSkewed(lattice.Mask(mask), packed)
		if got != (c > m) {
			t.Errorf("group %s count=%d m=%d: IsSkewed=%v", relation.FormatGroup(nil, mask, packed, 2), c, m, got)
		}
	}
}

func TestSkewedGroupsListing(t *testing.T) {
	s := newSketch(2, 2)
	s.AddSkew(0b11, []relation.Value{3, 4})
	s.AddSkew(0b11, []relation.Value{1, 2})
	groups := s.SkewedGroups(0b11)
	if len(groups) != 2 {
		t.Fatalf("groups: %v", groups)
	}
	if groups[0][0] != 1 || groups[1][0] != 3 {
		t.Errorf("not sorted: %v", groups)
	}
	if len(s.SkewedGroups(0b01)) != 0 {
		t.Error("unrelated cuboid must be empty")
	}
}

func TestEmptyRelationBuild(t *testing.T) {
	rel := cubetest.RandomRelation(rand.New(rand.NewSource(1)), 0, 3, 5)
	eng := mr.New(mr.Config{Workers: 2}, nil)
	built, err := Build(eng, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if built.Sketch.NumSkews() != 0 {
		t.Error("empty relation cannot have skews")
	}
}
