// Package sketch implements the Skews and Partitions Sketch (SP-Sketch) of
// Milo & Altshuler (SIGMOD'16, §4).
//
// The SP-Sketch mirrors the cube lattice: for every cuboid C it records
// (1) skews(C) — the set of skewed c-groups of C, i.e. groups whose tuple
// set exceeds a machine's memory m, and (2) partition-elements(C) — k−1
// tuples that split sorted(R,C) into k ranges of O(m) non-skewed tuples
// each (Definition 4.1, Proposition 4.2).
//
// The exact ("utopian") sketch would require sorting R once per cuboid; the
// practical variant is built from a uniform sample: each tuple is kept with
// probability α = ln(n·k)/m, and a group is recorded as skewed when its
// sample count exceeds β = ln(n·k) (§4.2, Algorithm 2). Propositions
// 4.4–4.7 show the sample and the sketch are both O(m) and that all skewed
// groups are captured with high probability; the package's tests verify
// these properties empirically.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/buc"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// Sketch is the Skews and Partitions Sketch.
type Sketch struct {
	// D is the number of cube dimensions; K the number of machines.
	D int
	K int
	// SampleN is the number of sampled tuples the sketch was built from
	// (0 for an exact sketch).
	SampleN int
	// Alpha and Beta record the sampling probability and skew threshold
	// used during construction.
	Alpha float64
	Beta  float64

	// skews[mask] holds the skewed c-groups of cuboid mask, keyed by the
	// packed-values encoding of the group.
	skews []map[string]struct{}
	// parts[mask] holds the cuboid's sorted partition elements: at most
	// k−1 packed projections.
	parts [][][]relation.Value
}

func newSketch(d, k int) *Sketch {
	s := &Sketch{
		D:     d,
		K:     k,
		skews: make([]map[string]struct{}, 1<<uint(d)),
		parts: make([][][]relation.Value, 1<<uint(d)),
	}
	for i := range s.skews {
		s.skews[i] = make(map[string]struct{})
	}
	return s
}

func valsKey(packed []relation.Value) string {
	buf := make([]byte, 0, 4*len(packed))
	for _, v := range packed {
		buf = appendUvarint(buf, zig(v))
	}
	return string(buf)
}

func zig(v relation.Value) uint64 { return uint64(uint32((v << 1) ^ (v >> 31))) }

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// NewForTest creates an empty sketch for test injection.
func NewForTest(d, k int) *Sketch { return newSketch(d, k) }

// AddSkew records a skewed c-group.
func (s *Sketch) AddSkew(mask lattice.Mask, packed []relation.Value) {
	cp := append([]relation.Value(nil), packed...)
	s.skews[mask][valsKey(cp)] = struct{}{}
}

// SetPartitionElements records a cuboid's sorted partition elements.
func (s *Sketch) SetPartitionElements(mask lattice.Mask, elems [][]relation.Value) {
	s.parts[mask] = elems
}

// IsSkewed reports whether the c-group of the given packed projection is
// recorded as skewed in cuboid mask.
func (s *Sketch) IsSkewed(mask lattice.Mask, packed []relation.Value) bool {
	_, ok := s.skews[mask][valsKey(packed)]
	return ok
}

// IsSkewedDims is IsSkewed for a full-width dims slice.
func (s *Sketch) IsSkewedDims(mask lattice.Mask, dims []relation.Value) bool {
	return s.IsSkewed(mask, relation.Project(dims, uint32(mask)))
}

// Partition returns the range partition (in [0, K)) that the packed
// projection belongs to in cuboid mask: partition 0 holds t ≤ e0, partition
// i holds e_{i-1} < t ≤ e_i, partition K−1 holds t > e_{K-2} (§4.1).
func (s *Sketch) Partition(mask lattice.Mask, packed []relation.Value) int {
	elems := s.parts[mask]
	return sort.Search(len(elems), func(i int) bool {
		return relation.ComparePacked(packed, elems[i]) <= 0
	})
}

// PartitionDims is Partition for a full-width dims slice.
func (s *Sketch) PartitionDims(mask lattice.Mask, dims []relation.Value) int {
	return s.Partition(mask, relation.Project(dims, uint32(mask)))
}

// NumSkews returns the total number of skewed c-groups recorded.
func (s *Sketch) NumSkews() int {
	n := 0
	for _, m := range s.skews {
		n += len(m)
	}
	return n
}

// SkewedGroups returns the skewed groups of cuboid mask (packed values),
// sorted, for inspection and tests.
func (s *Sketch) SkewedGroups(mask lattice.Mask) [][]relation.Value {
	var out [][]relation.Value
	for key := range s.skews[mask] {
		out = append(out, decodeValsKey(key))
	}
	sort.Slice(out, func(i, j int) bool { return relation.ComparePacked(out[i], out[j]) < 0 })
	return out
}

func decodeValsKey(key string) []relation.Value {
	b := []byte(key)
	var out []relation.Value
	for len(b) > 0 {
		var v uint64
		var shift uint
		for {
			c := b[0]
			b = b[1:]
			v |= uint64(c&0x7f) << shift
			if c < 0x80 {
				break
			}
			shift += 7
		}
		x := uint32(v)
		out = append(out, relation.Value(x>>1)^-relation.Value(x&1))
	}
	return out
}

// Wire format. The sketch's serialized size is a paper-reported quantity
// (Figures 5c and 6c), so the encoding must be a pure function of the
// sketch's content. encoding/gob is not: it assigns user type IDs from a
// process-global counter in first-use order, so the encoded size shifted
// by a byte depending on what else had gob-encoded first in the process
// (the proc execution backend's RPC layer, for instance). The layout is a
// fixed header followed by varint-framed sections:
//
//	magic "SPSK" | version (1 byte) | D, K, SampleN (uvarint)
//	Alpha, Beta (IEEE 754 bits, 8 bytes little-endian each)
//	2^D skew sets: count, then each key as length-prefixed bytes (sorted)
//	parts presence flag (1 byte); if 1, 2^D element lists: count, then
//	each element as a count-prefixed run of zigzag-varint values
const (
	wireMagic   = "SPSK"
	wireVersion = 1
)

// Encode serializes the sketch (the form distributed to all machines
// through the DFS before round 2). The encoding is deterministic: equal
// sketches encode to equal bytes regardless of process history.
func (s *Sketch) Encode() ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, wireMagic...)
	buf = append(buf, wireVersion)
	buf = binary.AppendUvarint(buf, uint64(s.D))
	buf = binary.AppendUvarint(buf, uint64(s.K))
	buf = binary.AppendUvarint(buf, uint64(s.SampleN))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Alpha))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Beta))
	for _, m := range s.skews {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
		}
	}
	if s.parts == nil {
		buf = append(buf, 0)
		return buf, nil
	}
	buf = append(buf, 1)
	for _, elems := range s.parts {
		buf = binary.AppendUvarint(buf, uint64(len(elems)))
		for _, el := range elems {
			buf = binary.AppendUvarint(buf, uint64(len(el)))
			for _, v := range el {
				buf = binary.AppendVarint(buf, int64(v))
			}
		}
	}
	return buf, nil
}

// wireReader walks an encoded sketch, remembering the first error; every
// accessor returns a zero value once the stream is exhausted or corrupt,
// so Decode can validate once at the end instead of after every read.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("sketch: decode: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("sketch: decode: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("sketch: decode: truncated: want %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// count reads a length prefix and bounds it against the bytes remaining
// (every counted item occupies at least one byte), so a corrupted count
// cannot drive a giant allocation.
func (r *wireReader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.b)) {
		r.err = fmt.Errorf("sketch: decode: count %d exceeds remaining %d bytes", v, len(r.b))
		return 0
	}
	return int(v)
}

// Decode parses an encoded sketch, validating the wire form before
// trusting it: a truncated or corrupted sketch file would otherwise panic
// deep inside cuboid lookups (skews/parts are indexed by mask up to 2^D).
func Decode(data []byte) (*Sketch, error) {
	if len(data) < len(wireMagic)+1 || string(data[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("sketch: decode: bad magic")
	}
	if v := data[len(wireMagic)]; v != wireVersion {
		return nil, fmt.Errorf("sketch: decode: wire version %d, want %d", v, wireVersion)
	}
	r := &wireReader{b: data[len(wireMagic)+1:]}
	d := int(r.uvarint())
	k := int(r.uvarint())
	sampleN := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if d < 0 || d > lattice.MaxDims {
		return nil, fmt.Errorf("sketch: decode: dimensions %d out of range [0, %d]", d, lattice.MaxDims)
	}
	if k < 1 {
		return nil, fmt.Errorf("sketch: decode: machine count %d, want at least 1", k)
	}
	ab := r.bytes(16)
	if r.err != nil {
		return nil, r.err
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(ab[:8]))
	beta := math.Float64frombits(binary.LittleEndian.Uint64(ab[8:]))
	s := newSketch(d, k)
	s.SampleN = sampleN
	s.Alpha = alpha
	s.Beta = beta
	for i := range s.skews {
		n := r.count()
		for j := 0; j < n && r.err == nil; j++ {
			s.skews[i][string(r.bytes(r.uvarint()))] = struct{}{}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	flag := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	switch flag[0] {
	case 0:
		// No partition elements on the wire: keep newSketch's fresh empty
		// sets, so lookups on any cuboid still work.
	case 1:
		s.parts = make([][][]relation.Value, 1<<uint(d))
		for i := range s.parts {
			n := r.count()
			elems := make([][]relation.Value, 0, n)
			for j := 0; j < n && r.err == nil; j++ {
				vn := r.count()
				el := make([]relation.Value, 0, vn)
				for v := 0; v < vn && r.err == nil; v++ {
					el = append(el, relation.Value(r.varint()))
				}
				elems = append(elems, el)
			}
			s.parts[i] = elems
		}
	default:
		return nil, fmt.Errorf("sketch: decode: bad partition flag %d", flag[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("sketch: decode: %d trailing bytes", len(r.b))
	}
	return s, nil
}

// Bytes returns the serialized size of the sketch — the quantity plotted in
// Figures 5c and 6c of the paper.
func (s *Sketch) Bytes() int {
	b, err := s.Encode()
	if err != nil {
		return 0
	}
	return len(b)
}

// Params returns the sampling probability α = ln(n·k)/m and skew threshold
// β = ln(n·k) for a relation of n tuples on k machines with memory m.
func Params(n, k, m int) (alpha, beta float64) {
	if n < 1 {
		n = 1
	}
	beta = math.Log(float64(n) * float64(k))
	if beta < 1 {
		beta = 1
	}
	alpha = beta / float64(m)
	if alpha > 1 {
		alpha = 1
	}
	return alpha, beta
}

// BuildResult carries the sketch together with the metrics of the
// MapReduce round that built it.
type BuildResult struct {
	Sketch  *Sketch
	Metrics mr.RoundMetrics
	// EncodedBytes is the serialized sketch size written to the DFS.
	EncodedBytes int
}

// Build runs the paper's Algorithm 2 as round 1 of SP-Cube: k mappers
// sample their input splits, one reducer assembles the sample, builds the
// sketch in memory, and writes it to the DFS for distribution.
func Build(eng *mr.Engine, rel *relation.Relation, seed int64) (*BuildResult, error) {
	n := rel.N()
	d := rel.D()
	k := eng.Cfg.Workers
	m := eng.MemTuples(n)
	alpha, beta := Params(n, k, m)

	var built *Sketch
	job := &mr.Job{
		Name:      "sp-sketch",
		Reducers:  1,
		MapTuple:  nil, // set below (needs per-task RNG)
		Partition: func(string, int) int { return 0 },
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			sample := make([]relation.Tuple, 0, len(vals))
			for _, v := range vals {
				t, err := relation.DecodeTuple(v, d)
				if err != nil {
					continue
				}
				sample = append(sample, t)
			}
			built = buildFromSample(sample, d, k, alpha, beta, ctx.ChargeOps)
			enc, err := built.Encode()
			if err == nil {
				ctx.EmitKV("sketch", enc)
			}
		},
	}

	// Per-mapper deterministic sampling: the RNG stream is a function of
	// the experiment seed and the map task id. Both the RNG and the encode
	// buffer are engine-issued task state — map tasks may run in parallel,
	// and a retried task must restart its stream from the beginning or it
	// would sample different tuples than the fault-free run. TaskState has
	// no task-id argument, so the RNG is seeded lazily on first use.
	type taskState struct {
		rng *rand.Rand
		buf []byte
	}
	job.TaskState = func() any { return new(taskState) }
	job.MapTuple = func(ctx *mr.MapCtx, t relation.Tuple) {
		ts := ctx.State().(*taskState)
		if ts.rng == nil {
			ts.rng = rand.New(rand.NewSource(seed*1_000_003 + int64(ctx.Task)))
		}
		if ts.rng.Float64() <= alpha {
			ts.buf = relation.EncodeTuple(ts.buf, t)
			ctx.EmitCopied("s", ts.buf)
		}
	}

	res, err := eng.RunTuples(job, rel.Tuples)
	if err != nil {
		return nil, err
	}
	if built == nil {
		// Degenerate case: the sample was empty (tiny inputs). Build an
		// empty sketch so downstream code still works.
		built = newSketch(d, k)
		built.Alpha = alpha
		built.Beta = beta
	}
	enc, err := built.Encode()
	if err != nil {
		return nil, err
	}
	eng.FS.Write("sketch/current", enc)
	return &BuildResult{Sketch: built, Metrics: res.Metrics, EncodedBytes: len(enc)}, nil
}

// buildFromSample implements the reducer's build-sketch procedure: BUC over
// the sample with an iceberg threshold of β detects the skewed groups, and
// per-cuboid sorts of the sample yield the partition elements.
func buildFromSample(sample []relation.Tuple, d, k int, alpha, beta float64, charge func(int64)) *Sketch {
	s := newSketch(d, k)
	s.SampleN = len(sample)
	s.Alpha = alpha
	s.Beta = beta
	if len(sample) == 0 {
		return s
	}

	// Skews: groups whose sample count exceeds β (count > β ⇔ count ≥
	// ⌊β⌋+1, which is exactly an iceberg threshold for BUC).
	minSup := int(math.Floor(beta)) + 1
	work := make([]relation.Tuple, len(sample))
	copy(work, sample)
	buc.Compute(work, d, agg.Count, minSup, func(mask lattice.Mask, packed []relation.Value, _ agg.State) {
		s.AddSkew(mask, packed)
	})
	charge(int64(len(sample)) * int64(uint(1)<<uint(d)))

	// Partition elements: for every cuboid, sort the sample w.r.t. <_C
	// and take the k−1 evenly spaced elements (§4.2 "Partitions").
	idx := make([]int, len(sample))
	for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
		if mask == 0 {
			// The apex cuboid has a single (empty) projection; range
			// partitioning is vacuous.
			continue
		}
		for i := range idx {
			idx[i] = i
		}
		mm := uint32(mask)
		sort.Slice(idx, func(a, b int) bool {
			return relation.CompareProjected(sample[idx[a]].Dims, sample[idx[b]].Dims, mm) < 0
		})
		elems := make([][]relation.Value, 0, k-1)
		for i := 1; i < k; i++ {
			pos := i * len(sample) / k
			if pos >= len(sample) {
				pos = len(sample) - 1
			}
			elems = append(elems, relation.Project(sample[idx[pos]].Dims, mm))
		}
		s.SetPartitionElements(mask, dedupSorted(elems))
		charge(int64(len(sample)))
	}
	return s
}

// dedupSorted removes duplicate consecutive partition elements; duplicates
// arise when the sample has heavy value repetition and would create empty
// ranges.
func dedupSorted(elems [][]relation.Value) [][]relation.Value {
	out := elems[:0]
	for i, e := range elems {
		if i == 0 || relation.ComparePacked(e, out[len(out)-1]) != 0 {
			out = append(out, e)
		}
	}
	return out
}

// BuildExact computes the utopian SP-Sketch (§4.2) directly from the full
// relation: exact group counts decide skews and exact sorts give partition
// elements. It is quadratic-ish in n·2^d and exists for tests and small
// inputs.
func BuildExact(rel *relation.Relation, k, m int) *Sketch {
	d := rel.D()
	s := newSketch(d, k)
	counts := make([]map[string]int, 1<<uint(d))
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	for _, t := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			counts[mask][valsKey(relation.Project(t.Dims, uint32(mask)))]++
		}
	}
	for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
		for key, c := range counts[mask] {
			if c > m {
				s.skews[mask][key] = struct{}{}
			}
		}
	}
	n := rel.N()
	idx := make([]int, n)
	for mask := lattice.Mask(1); mask <= lattice.Full(d); mask++ {
		for i := range idx {
			idx[i] = i
		}
		mm := uint32(mask)
		sort.SliceStable(idx, func(a, b int) bool {
			return relation.CompareProjected(rel.Tuples[idx[a]].Dims, rel.Tuples[idx[b]].Dims, mm) < 0
		})
		elems := make([][]relation.Value, 0, k-1)
		for i := 1; i < k; i++ {
			pos := i * n / k
			if pos >= n {
				pos = n - 1
			}
			elems = append(elems, relation.Project(rel.Tuples[idx[pos]].Dims, mm))
		}
		s.SetPartitionElements(mask, dedupSorted(elems))
	}
	return s
}
