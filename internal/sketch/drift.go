package sketch

import "github.com/spcube/spcube/internal/lattice"

// Drift quantifies how far a delta batch's distribution has moved from the
// distribution the base sketch was built on, in [0, 1]. Incremental
// maintenance uses it as the rebuild signal: the base cube's partitioning
// decisions (skew set, range boundaries) were taken from the base sketch,
// and a drifting delta means those decisions — and with them the paper's
// load-balance guarantees — no longer describe the merged relation.
//
// Two components are combined by max:
//
//   - Skew drift: the fraction of the combined skew set that is new in the
//     delta, |S_delta \ S_base| / |S_delta ∪ S_base| over all cuboids. A
//     delta concentrated on groups the base never saw as skewed scores
//     high; a delta that only thickens known heavy groups scores 0.
//
//   - Partition drift: for every cuboid, each delta partition element sits
//     at a known quantile of the delta; looking it up in the base cuboid's
//     range partition gives the quantile the base assigns it. The average
//     absolute quantile displacement measures how far the delta's value
//     distribution has slid along each cuboid's sort order.
//
// Sketches over different dimensionalities are incomparable and score 1.
func Drift(base, delta *Sketch) float64 {
	if base == nil || delta == nil || base.D != delta.D {
		return 1
	}

	// Skew drift.
	var fresh, union int
	for mask := range delta.skews {
		baseSet := base.skews[mask]
		for key := range delta.skews[mask] {
			union++
			if _, ok := baseSet[key]; !ok {
				fresh++
			}
		}
		for key := range baseSet {
			if _, ok := delta.skews[mask][key]; !ok {
				union++
			}
		}
	}
	skewDrift := 0.0
	if union > 0 {
		skewDrift = float64(fresh) / float64(union)
	}

	// Partition drift.
	var dispSum float64
	var dispN int
	for mask := range delta.parts {
		dElems := delta.parts[mask]
		bElems := base.parts[mask]
		if len(dElems) == 0 || len(bElems) == 0 {
			continue
		}
		for j, e := range dElems {
			deltaQ := float64(j+1) / float64(len(dElems)+1)
			// Partition ranks e among the base boundaries: rank r means
			// e_{r-1} < e ≤ e_r, and cut point e_r sits at base quantile
			// (r+1)/(len+1) — so an identical distribution (delta cut j
			// landing exactly on base cut j) scores zero displacement.
			r := base.Partition(lattice.Mask(mask), e)
			baseQ := float64(r+1) / float64(len(bElems)+1)
			if r >= len(bElems) {
				// Past every base cut point: the base has no upper bound
				// for it, count it as the far end.
				baseQ = 1
			}
			d := baseQ - deltaQ
			if d < 0 {
				d = -d
			}
			dispSum += d
			dispN++
		}
	}
	partDrift := 0.0
	if dispN > 0 {
		partDrift = dispSum / float64(dispN)
	}

	if skewDrift > partDrift {
		return skewDrift
	}
	return partDrift
}
