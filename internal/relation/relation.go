// Package relation defines the tuple and relation model used throughout the
// SP-Cube implementation.
//
// A relation R(A1..Ad, B) has d dimension attributes and one numeric measure
// attribute B, matching the model of Milo & Altshuler (SIGMOD'16, §2.1).
// Dimension values are dictionary-encoded as int32 so that tuples are compact
// and comparisons are cheap; an optional per-column Dictionary maps encoded
// values back to their original strings for display.
package relation

import (
	"fmt"
	"strings"
)

// Value is a dictionary-encoded dimension attribute value.
type Value = int32

// Tuple is a single row of a relation: d dimension values plus a measure.
type Tuple struct {
	Dims    []Value
	Measure int64
}

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	dims := make([]Value, len(t.Dims))
	copy(dims, t.Dims)
	return Tuple{Dims: dims, Measure: t.Measure}
}

// Schema names the attributes of a relation.
type Schema struct {
	DimNames    []string
	MeasureName string
}

// D returns the number of dimension attributes.
func (s Schema) D() int { return len(s.DimNames) }

// Relation is an in-memory relation: a schema, a slice of tuples, and an
// optional dictionary for the string form of dimension values.
type Relation struct {
	Schema Schema
	Tuples []Tuple
	Dict   *Dictionary
}

// New creates an empty relation with the given dimension names and measure
// name, ready to accept string-valued rows via AppendStrings or encoded rows
// via Append.
func New(dimNames []string, measureName string) *Relation {
	names := make([]string, len(dimNames))
	copy(names, dimNames)
	return &Relation{
		Schema: Schema{DimNames: names, MeasureName: measureName},
		Dict:   NewDictionary(len(dimNames)),
	}
}

// D returns the number of dimension attributes.
func (r *Relation) D() int { return r.Schema.D() }

// N returns the number of tuples.
func (r *Relation) N() int { return len(r.Tuples) }

// Append adds an already-encoded tuple. The dims slice is copied.
func (r *Relation) Append(dims []Value, measure int64) {
	if len(dims) != r.D() {
		panic(fmt.Sprintf("relation: Append with %d dims, schema has %d", len(dims), r.D()))
	}
	cp := make([]Value, len(dims))
	copy(cp, dims)
	r.Tuples = append(r.Tuples, Tuple{Dims: cp, Measure: measure})
}

// AppendStrings adds a row given as strings, dictionary-encoding each
// dimension value. It requires the relation to have been built with New.
func (r *Relation) AppendStrings(dims []string, measure int64) {
	if r.Dict == nil {
		panic("relation: AppendStrings on relation without dictionary")
	}
	if len(dims) != r.D() {
		panic(fmt.Sprintf("relation: AppendStrings with %d dims, schema has %d", len(dims), r.D()))
	}
	enc := make([]Value, len(dims))
	for i, s := range dims {
		enc[i] = r.Dict.Encode(i, s)
	}
	r.Tuples = append(r.Tuples, Tuple{Dims: enc, Measure: measure})
}

// Restrict returns a new relation with only the dimension columns listed in
// cols (by index, in the given order). Tuples share no storage with r.
// It is used to cube over a subset of a wide relation's attributes, as the
// paper does for the 15-dimensional USAGOV dataset.
func (r *Relation) Restrict(cols []int) *Relation {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = r.Schema.DimNames[c]
	}
	out := &Relation{Schema: Schema{DimNames: names, MeasureName: r.Schema.MeasureName}}
	if r.Dict != nil {
		out.Dict = r.Dict.Restrict(cols)
	}
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		dims := make([]Value, len(cols))
		for j, c := range cols {
			dims[j] = t.Dims[c]
		}
		out.Tuples[i] = Tuple{Dims: dims, Measure: t.Measure}
	}
	return out
}

// DimString renders the value of dimension col of an encoded value,
// falling back to the numeric form when no dictionary entry exists.
func (r *Relation) DimString(col int, v Value) string {
	if r.Dict != nil {
		if s, ok := r.Dict.Decode(col, v); ok {
			return s
		}
	}
	return fmt.Sprintf("%d", v)
}

// String renders a short description of the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation(%s; %s)[n=%d]",
		strings.Join(r.Schema.DimNames, ","), r.Schema.MeasureName, len(r.Tuples))
}

// Dictionary maps string dimension values to compact int32 codes, per column.
// Codes are assigned in first-seen order starting at 0.
type Dictionary struct {
	toCode []map[string]Value
	toStr  [][]string
}

// NewDictionary creates a dictionary for d columns.
func NewDictionary(d int) *Dictionary {
	dict := &Dictionary{
		toCode: make([]map[string]Value, d),
		toStr:  make([][]string, d),
	}
	for i := range dict.toCode {
		dict.toCode[i] = make(map[string]Value)
	}
	return dict
}

// Encode returns the code for s in column col, assigning a new code if s has
// not been seen before.
func (d *Dictionary) Encode(col int, s string) Value {
	if v, ok := d.toCode[col][s]; ok {
		return v
	}
	v := Value(len(d.toStr[col]))
	d.toCode[col][s] = v
	d.toStr[col] = append(d.toStr[col], s)
	return v
}

// Code returns the existing code for s in column col without assigning a
// new one.
func (d *Dictionary) Code(col int, s string) (Value, bool) {
	v, ok := d.toCode[col][s]
	return v, ok
}

// Decode returns the string for code v in column col.
func (d *Dictionary) Decode(col int, v Value) (string, bool) {
	if v < 0 || int(v) >= len(d.toStr[col]) {
		return "", false
	}
	return d.toStr[col][v], true
}

// Cardinality returns the number of distinct values seen in column col.
func (d *Dictionary) Cardinality(col int) int { return len(d.toStr[col]) }

// Clone returns a deep copy of the dictionary. Incremental ingestion uses
// it for copy-on-write: readers holding the old dictionary (a published
// cube index) never observe new codes being assigned.
func (d *Dictionary) Clone() *Dictionary {
	out := &Dictionary{
		toCode: make([]map[string]Value, len(d.toCode)),
		toStr:  make([][]string, len(d.toStr)),
	}
	for i, m := range d.toCode {
		cp := make(map[string]Value, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out.toCode[i] = cp
		out.toStr[i] = append([]string(nil), d.toStr[i]...)
	}
	return out
}

// Restrict returns a dictionary containing only the listed columns.
func (d *Dictionary) Restrict(cols []int) *Dictionary {
	out := &Dictionary{
		toCode: make([]map[string]Value, len(cols)),
		toStr:  make([][]string, len(cols)),
	}
	for i, c := range cols {
		out.toCode[i] = d.toCode[c]
		out.toStr[i] = d.toStr[c]
	}
	return out
}
