package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGroupKeyRoundTrip(t *testing.T) {
	f := func(maskSeed uint16, raw []int32) bool {
		d := len(raw)
		if d == 0 || d > 16 {
			return true
		}
		mask := uint32(maskSeed) & (1<<uint(d) - 1)
		dims := make([]Value, d)
		for i, v := range raw {
			dims[i] = v
		}
		key := GroupKey(mask, dims)
		gotMask, gotVals, err := DecodeGroupKey(key)
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return gotMask == mask && reflect.DeepEqual(gotVals, Project(dims, mask))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGroupKeyInjective(t *testing.T) {
	// Distinct (mask, projection) pairs must encode to distinct keys.
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string][2]interface{})
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		mask := uint32(rng.Intn(1 << uint(d)))
		dims := make([]Value, d)
		for j := range dims {
			dims[j] = Value(rng.Intn(5) - 2)
		}
		key := GroupKey(mask, dims)
		proj := Project(dims, mask)
		if prev, ok := seen[key]; ok {
			if prev[0].(uint32) != mask || !reflect.DeepEqual(prev[1].([]Value), proj) {
				t.Fatalf("collision: key %q for (%v,%v) and (%v,%v)", key, prev[0], prev[1], mask, proj)
			}
		}
		seen[key] = [2]interface{}{mask, proj}
	}
}

func TestScanGroupKeyWithTrailer(t *testing.T) {
	dims := []Value{5, -3, 7}
	key := EncodeGroupKey(nil, 0b101, dims)
	withTrailer := append(append([]byte(nil), key...), 0xde, 0xad)
	mask, vals, n, err := ScanGroupKey(withTrailer)
	if err != nil {
		t.Fatal(err)
	}
	if mask != 0b101 || n != len(key) {
		t.Errorf("mask=%b n=%d want %b %d", mask, n, 0b101, len(key))
	}
	if !reflect.DeepEqual(vals, []Value{5, 7}) {
		t.Errorf("vals=%v", vals)
	}
}

func TestDecodeGroupKeyErrors(t *testing.T) {
	if _, _, err := DecodeGroupKey(""); err == nil {
		t.Error("empty key should fail")
	}
	// Mask says 2 values, only 1 present.
	key := string(EncodeGroupKey(nil, 0b11, []Value{1, 2}))
	if _, _, err := DecodeGroupKey(key[:len(key)-1]); err == nil {
		t.Error("truncated key should fail")
	}
	if _, _, err := DecodeGroupKey(key + "x"); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	f := func(raw []int32, measure int64) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		dims := make([]Value, len(raw))
		for i, v := range raw {
			dims[i] = v
		}
		enc := EncodeTuple(nil, Tuple{Dims: dims, Measure: measure})
		got, err := DecodeTuple(enc, len(dims))
		if err != nil {
			return false
		}
		return got.Measure == measure && reflect.DeepEqual(got.Dims, dims)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareProjected(t *testing.T) {
	a := []Value{1, 5, 2}
	b := []Value{1, 3, 9}
	if CompareProjected(a, b, 0b001) != 0 {
		t.Error("equal on dim 0")
	}
	if CompareProjected(a, b, 0b010) != 1 {
		t.Error("a > b on dim 1")
	}
	if CompareProjected(a, b, 0b110) != 1 {
		t.Error("dim 1 decides before dim 2")
	}
	if CompareProjected(a, b, 0b100) != -1 {
		t.Error("a < b on dim 2")
	}
	if CompareProjected(a, b, 0) != 0 {
		t.Error("empty mask compares equal")
	}
}

func TestCompareProjectedConsistentWithPacked(t *testing.T) {
	f := func(x, y [4]int32, maskSeed uint8) bool {
		mask := uint32(maskSeed) & 0xF
		a := []Value{x[0], x[1], x[2], x[3]}
		b := []Value{y[0], y[1], y[2], y[3]}
		return CompareProjected(a, b, mask) == ComparePacked(Project(a, mask), Project(b, mask))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary(2)
	a := d.Encode(0, "laptop")
	b := d.Encode(0, "printer")
	if a == b {
		t.Error("distinct strings must get distinct codes")
	}
	if got := d.Encode(0, "laptop"); got != a {
		t.Error("repeated encode must be stable")
	}
	if s, ok := d.Decode(0, a); !ok || s != "laptop" {
		t.Errorf("decode: %q %v", s, ok)
	}
	if _, ok := d.Decode(0, 99); ok {
		t.Error("unknown code must not decode")
	}
	if d.Cardinality(0) != 2 || d.Cardinality(1) != 0 {
		t.Error("cardinality wrong")
	}
}

func TestRelationAppendAndRestrict(t *testing.T) {
	rel := New([]string{"name", "city", "year"}, "sales")
	rel.AppendStrings([]string{"laptop", "Rome", "2012"}, 2000)
	rel.AppendStrings([]string{"printer", "Paris", "2012"}, 300)
	if rel.N() != 2 || rel.D() != 3 {
		t.Fatalf("n=%d d=%d", rel.N(), rel.D())
	}
	sub := rel.Restrict([]int{2, 0})
	if sub.D() != 2 || sub.Schema.DimNames[0] != "year" || sub.Schema.DimNames[1] != "name" {
		t.Fatalf("restrict schema: %v", sub.Schema.DimNames)
	}
	if got := sub.DimString(1, sub.Tuples[1].Dims[1]); got != "printer" {
		t.Errorf("restricted dictionary broken: %q", got)
	}
	// Mutating the restricted copy must not touch the original.
	sub.Tuples[0].Dims[0] = 99
	if rel.Tuples[0].Dims[2] == 99 {
		t.Error("Restrict must deep-copy tuples")
	}
}

func TestFormatGroup(t *testing.T) {
	rel := New([]string{"name", "city", "year"}, "sales")
	rel.AppendStrings([]string{"laptop", "Rome", "2012"}, 2000)
	tup := rel.Tuples[0]
	got := FormatGroup(rel, 0b101, Project(tup.Dims, 0b101), 3)
	if got != "(laptop,*,2012)" {
		t.Errorf("FormatGroup = %q, want (laptop,*,2012)", got)
	}
	if got := FormatGroup(nil, 0, nil, 3); got != "(*,*,*)" {
		t.Errorf("apex format = %q", got)
	}
}

func TestGroupVals(t *testing.T) {
	out := GroupVals(0b101, []Value{7, 9}, 3)
	if !reflect.DeepEqual(out, []Value{7, 0, 9}) {
		t.Errorf("GroupVals = %v", out)
	}
}
