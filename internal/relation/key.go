package relation

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// A c-group (cube group, §2.1 of the paper) is identified by a cuboid — a
// bitmask over the dimension attributes — together with the values of the
// dimensions present in the mask. Group keys are encoded as compact byte
// strings (uvarint mask followed by one uvarint per present dimension, in
// ascending attribute order) so that they can serve directly as MapReduce
// shuffle keys and so that intermediate-data byte accounting is exact.

// zig/zag encoding keeps negative dictionary codes (not produced by the
// Dictionary, but allowed for raw integer data) compact.
func zig(v Value) uint64 { return uint64(uint32((v << 1) ^ (v >> 31))) }
func zag(u uint64) Value { x := uint32(u); return Value(x>>1) ^ -Value(x&1) }

// EncodeGroupKey encodes the c-group of tuple dims projected on mask.
// The buf slice is reused if large enough; the returned slice aliases it.
func EncodeGroupKey(buf []byte, mask uint32, dims []Value) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(mask))
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		buf = binary.AppendUvarint(buf, zig(dims[i]))
	}
	return buf
}

// AppendGroupKey appends the encoded c-group key of dims projected on mask
// to buf and returns the extended slice. Unlike EncodeGroupKey it does not
// reset buf, so callers can build prefixed keys (a tag byte followed by the
// group key) in one reusable scratch buffer.
func AppendGroupKey(buf []byte, mask uint32, dims []Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(mask))
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		buf = binary.AppendUvarint(buf, zig(dims[i]))
	}
	return buf
}

// GroupKey returns the encoded c-group key of dims projected on mask as a
// string (usable as a map key and MapReduce shuffle key).
func GroupKey(mask uint32, dims []Value) string {
	return string(EncodeGroupKey(nil, mask, dims))
}

// GroupKeyPacked encodes a group key from already-packed projected values
// (one per set bit of the mask, in ascending attribute order). It is the
// inverse of DecodeGroupKey.
func GroupKeyPacked(mask uint32, packed []Value) string {
	if bits.OnesCount32(mask) != len(packed) {
		panic(fmt.Sprintf("relation: GroupKeyPacked with %d values for mask %b", len(packed), mask))
	}
	buf := binary.AppendUvarint(nil, uint64(mask))
	for _, v := range packed {
		buf = binary.AppendUvarint(buf, zig(v))
	}
	return string(buf)
}

// DecodeGroupKey decodes a group key into its mask and the projected values
// (one per set bit of the mask, in ascending attribute order).
func DecodeGroupKey(key string) (mask uint32, vals []Value, err error) {
	mask, vals, n, err := ScanGroupKey([]byte(key))
	if err != nil {
		return 0, nil, err
	}
	if n != len(key) {
		return 0, nil, fmt.Errorf("relation: %d trailing bytes in group key", len(key)-n)
	}
	return mask, vals, nil
}

// ScanGroupKey parses a group key at the start of b (which may contain
// trailing data), returning the mask, the packed values, and the number of
// bytes consumed.
func ScanGroupKey(b []byte) (mask uint32, vals []Value, n int, err error) {
	m, mn := binary.Uvarint(b)
	if mn <= 0 {
		return 0, nil, 0, fmt.Errorf("relation: bad group key mask")
	}
	mask = uint32(m)
	n = mn
	cnt := bits.OnesCount32(mask)
	vals = make([]Value, 0, cnt)
	for i := 0; i < cnt; i++ {
		u, vn := binary.Uvarint(b[n:])
		if vn <= 0 {
			return 0, nil, 0, fmt.Errorf("relation: truncated group key (have %d of %d values)", i, cnt)
		}
		vals = append(vals, zag(u))
		n += vn
	}
	return mask, vals, n, nil
}

// GroupVals expands the packed projected values of a group key back to a
// full-width dims slice, with zero in star positions. The second return
// value reports, per attribute, whether it is present in the mask.
func GroupVals(mask uint32, packed []Value, d int) []Value {
	out := make([]Value, d)
	j := 0
	for m := mask; m != 0; m &= m - 1 {
		out[bits.TrailingZeros32(m)] = packed[j]
		j++
	}
	return out
}

// FormatGroup renders a c-group in the paper's notation, e.g.
// "(laptop,*,2012)". The rel may be nil, in which case numeric codes are
// printed.
func FormatGroup(rel *Relation, mask uint32, packed []Value, d int) string {
	parts := make([]string, d)
	j := 0
	for i := 0; i < d; i++ {
		if mask&(1<<uint(i)) != 0 {
			if rel != nil {
				parts[i] = rel.DimString(i, packed[j])
			} else {
				parts[i] = fmt.Sprintf("%d", packed[j])
			}
			j++
		} else {
			parts[i] = "*"
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// EncodeTuple encodes a full tuple (all dims plus measure) for use as a
// MapReduce value. The buf slice is reused if large enough.
func EncodeTuple(buf []byte, t Tuple) []byte {
	buf = buf[:0]
	for _, v := range t.Dims {
		buf = binary.AppendUvarint(buf, zig(v))
	}
	buf = binary.AppendVarint(buf, t.Measure)
	return buf
}

// DecodeTuple decodes a tuple encoded by EncodeTuple, given the dimension
// count d.
func DecodeTuple(b []byte, d int) (Tuple, error) {
	dims := make([]Value, d)
	for i := 0; i < d; i++ {
		u, n := binary.Uvarint(b)
		if n <= 0 {
			return Tuple{}, fmt.Errorf("relation: truncated tuple value at dim %d", i)
		}
		dims[i] = zag(u)
		b = b[n:]
	}
	m, n := binary.Varint(b)
	if n <= 0 {
		return Tuple{}, fmt.Errorf("relation: truncated tuple measure")
	}
	return Tuple{Dims: dims, Measure: m}, nil
}

// CompareProjected compares tuples a and b lexicographically with respect to
// the cuboid mask (the <_C order of §4.1): only dimensions present in mask
// participate, in ascending attribute order.
func CompareProjected(a, b []Value, mask uint32) int {
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// ComparePacked compares two packed projections (as stored in the SP-Sketch
// partition-element lists) lexicographically.
func ComparePacked(a, b []Value) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Project packs the mask-dimensions of dims into a fresh slice, in ascending
// attribute order.
func Project(dims []Value, mask uint32) []Value {
	out := make([]Value, 0, bits.OnesCount32(mask))
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, dims[bits.TrailingZeros32(m)])
	}
	return out
}

// ProjectInto is Project with a caller-provided buffer.
func ProjectInto(buf []Value, dims []Value, mask uint32) []Value {
	buf = buf[:0]
	for m := mask; m != 0; m &= m - 1 {
		buf = append(buf, dims[bits.TrailingZeros32(m)])
	}
	return buf
}
