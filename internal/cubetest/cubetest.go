// Package cubetest provides shared helpers for the algorithm test suites:
// random relation generation and an end-to-end "run algorithm, collect
// output, compare against brute force" harness.
package cubetest

import (
	"fmt"
	"math/rand"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// RandomRelation builds a relation with n tuples, d dimensions, per-column
// cardinality card, and measures in [0, 100). Small cardinalities produce
// heavy natural skew; large ones produce near-distinct data.
func RandomRelation(rng *rand.Rand, n, d, card int) *relation.Relation {
	names := make([]string, d)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	rel := &relation.Relation{Schema: relation.Schema{DimNames: names, MeasureName: "m"}}
	dims := make([]relation.Value, d)
	for i := 0; i < n; i++ {
		for j := range dims {
			dims[j] = relation.Value(rng.Intn(card))
		}
		rel.Append(dims, int64(rng.Intn(100)))
	}
	return rel
}

// SkewedRelation builds a relation where a fraction p of tuples take one of
// hot identical patterns (the gen-binomial shape) and the rest are drawn
// uniformly from a large domain.
func SkewedRelation(rng *rand.Rand, n, d int, p float64, hot int) *relation.Relation {
	names := make([]string, d)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	rel := &relation.Relation{Schema: relation.Schema{DimNames: names, MeasureName: "m"}}
	dims := make([]relation.Value, d)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			v := relation.Value(1 + rng.Intn(hot))
			for j := range dims {
				dims[j] = v
			}
		} else {
			for j := range dims {
				dims[j] = relation.Value(rng.Int31())
			}
		}
		rel.Append(dims, int64(rng.Intn(100)))
	}
	return rel
}

// NewEngine builds an engine with a retaining (non-discard) DFS for result
// collection in tests.
func NewEngine(workers int) *mr.Engine {
	return mr.New(mr.Config{Workers: workers}, dfs.New(false))
}

// RunAndCollect executes a cube algorithm and parses its DFS output.
func RunAndCollect(eng *mr.Engine, f cube.ComputeFunc, rel *relation.Relation, spec cube.Spec) (*cube.Result, *cube.Run, error) {
	run, err := f(eng, rel, spec)
	if err != nil {
		return nil, nil, err
	}
	res, err := cube.CollectDFS(eng, run.OutputPrefix, rel.D())
	if err != nil {
		return nil, run, err
	}
	return res, run, nil
}

// CheckAgainstBrute runs the algorithm and compares its full result with the
// brute-force ground truth, returning a diagnostic on mismatch.
func CheckAgainstBrute(f cube.ComputeFunc, rel *relation.Relation, fn agg.Func, workers int) error {
	eng := NewEngine(workers)
	res, _, err := RunAndCollect(eng, f, rel, cube.Spec{Agg: fn})
	if err != nil {
		return err
	}
	want := cube.Brute(rel, fn)
	if ok, diff := want.Equal(res); !ok {
		return fmt.Errorf("cube mismatch (n=%d d=%d agg=%s k=%d): %s",
			rel.N(), rel.D(), fn.Name(), workers, diff)
	}
	return nil
}
