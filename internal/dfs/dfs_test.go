package dfs

import (
	"bytes"
	"testing"
)

func TestReadBack(t *testing.T) {
	fs := New(false)
	fs.Append("a/1", []byte("hello"))
	fs.Append("a/1", []byte("world"))
	data, err := fs.Read("a/1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("helloworld")) {
		t.Errorf("read back %q", data)
	}
	if fs.Size("a/1") != 10 || fs.Records("a/1") != 2 {
		t.Errorf("size=%d records=%d", fs.Size("a/1"), fs.Records("a/1"))
	}
}

func TestWriteReplaces(t *testing.T) {
	fs := New(false)
	fs.Append("f", []byte("old"))
	fs.Write("f", []byte("new!"))
	data, _ := fs.Read("f")
	if string(data) != "new!" || fs.Size("f") != 4 || fs.Records("f") != 1 {
		t.Errorf("write did not replace: %q", data)
	}
}

func TestDiscardModeAccountsWithoutRetaining(t *testing.T) {
	fs := New(true)
	fs.Append("big", []byte("0123456789"))
	if fs.Size("big") != 10 || fs.Records("big") != 1 {
		t.Error("discard mode must still account")
	}
	if _, err := fs.Read("big"); err == nil {
		t.Error("discard mode must refuse reads")
	}
	if fs.Checksum("big") == 0 {
		t.Error("discard mode must checksum")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	a, b := New(true), New(true)
	a.Append("f", []byte("x"))
	a.Append("f", []byte("y"))
	b.Append("f", []byte("y"))
	b.Append("f", []byte("x"))
	if a.Checksum("f") != b.Checksum("f") {
		t.Error("checksum must be order independent")
	}
	if a.Checksum("f") == a.Checksum("missing") {
		t.Error("missing file checksum must differ from non-empty file")
	}
}

func TestPrefixOperations(t *testing.T) {
	fs := New(false)
	fs.Append("out/job/p0", []byte("aa"))
	fs.Append("out/job/p1", []byte("bbb"))
	fs.Append("other/x", []byte("c"))
	if got := fs.List("out/job/"); len(got) != 2 || got[0] != "out/job/p0" {
		t.Errorf("List: %v", got)
	}
	if fs.TotalSize("out/job/") != 5 {
		t.Errorf("TotalSize = %d", fs.TotalSize("out/job/"))
	}
	if fs.TotalRecords("out/job/") != 2 {
		t.Errorf("TotalRecords = %d", fs.TotalRecords("out/job/"))
	}
	if fs.TotalChecksum("out/job/") == 0 {
		t.Error("TotalChecksum empty")
	}
	fs.Remove("out/job/")
	if len(fs.List("out/job/")) != 0 {
		t.Error("Remove failed")
	}
	if len(fs.List("other/")) != 1 {
		t.Error("Remove removed too much")
	}
}

func TestMissingFile(t *testing.T) {
	fs := New(false)
	if _, err := fs.Read("nope"); err == nil {
		t.Error("missing file must error")
	}
	if fs.Size("nope") != 0 || fs.Records("nope") != 0 {
		t.Error("missing file must have zero accounting")
	}
}
