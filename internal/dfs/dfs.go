// Package dfs simulates the distributed file system shared by all machines
// of the MapReduce cluster (§2.3): the input relation is read from it, the
// SP-Sketch is distributed through it, and the output cuboids are written
// back to it.
//
// Files are in-memory byte buffers with exact size accounting. A FS can run
// in Discard mode, in which written bytes are counted (and folded into a
// rolling checksum) but not retained — large cube outputs can then be
// produced at benchmark scale without materializing them.
package dfs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// FS is a simulated distributed file system.
type FS struct {
	mu      sync.Mutex
	files   map[string]*file
	discard bool
}

type file struct {
	data []byte
	size int64
	sum  uint64
	recs int64
}

// New creates an empty file system. When discard is true, written content is
// dropped after being counted and checksummed.
func New(discard bool) *FS {
	return &FS{files: make(map[string]*file), discard: discard}
}

// Append appends one record to the named file, creating it if needed.
func (fs *FS) Append(name string, rec []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[name]
	if f == nil {
		f = &file{}
		fs.files[name] = f
	}
	f.size += int64(len(rec))
	f.recs++
	h := fnv.New64a()
	h.Write(rec)
	f.sum ^= h.Sum64() // order-independent combination
	if !fs.discard {
		f.data = append(f.data, rec...)
	}
}

// Write replaces the named file's content.
func (fs *FS) Write(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	h := fnv.New64a()
	h.Write(data)
	f := &file{size: int64(len(data)), recs: 1, sum: h.Sum64()}
	if !fs.discard {
		f.data = append([]byte(nil), data...)
	}
	fs.files[name] = f
}

// Read returns the named file's content. It fails in discard mode and for
// missing files.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	if fs.discard {
		return nil, fmt.Errorf("dfs: file %q content discarded (FS in discard mode)", name)
	}
	return f.data, nil
}

// Size returns the named file's size in bytes (0 for a missing file).
func (fs *FS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f.size
	}
	return 0
}

// Records returns the number of records appended to the named file.
func (fs *FS) Records(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f.recs
	}
	return 0
}

// Checksum returns an order-independent checksum of the records written to
// the named file, usable to compare outputs across algorithms even in
// discard mode.
func (fs *FS) Checksum(name string) uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f.sum
	}
	return 0
}

// FileMark is a point-in-time snapshot of one file's accounting, taken with
// Mark and restored with Rollback. It makes a task attempt's appends
// revertible: the MapReduce engine marks a reduce task's output files before
// each attempt and rolls them back when the attempt fails, so retried tasks
// leave no trace of their partial emits.
type FileMark struct {
	existed bool
	size    int64
	recs    int64
	sum     uint64
	dataLen int
}

// Mark snapshots the named file's current accounting (a missing file yields
// the zero mark, and rolling back to it removes the file again).
func (fs *FS) Mark(name string) FileMark {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return FileMark{}
	}
	return FileMark{existed: true, size: f.size, recs: f.recs, sum: f.sum, dataLen: len(f.data)}
}

// Rollback restores the named file to the state captured by Mark, discarding
// every record appended since. The mark's checksum is restored exactly (the
// rolling checksum is an XOR fold, so re-appending the same records after a
// rollback reproduces the original sum). Rolling back to a mark taken before
// the file existed deletes it.
func (fs *FS) Rollback(name string, m FileMark) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return
	}
	if !m.existed {
		delete(fs.files, name)
		return
	}
	f.size = m.size
	f.recs = m.recs
	f.sum = m.sum
	if len(f.data) > m.dataLen {
		f.data = f.data[:m.dataLen]
	}
}

// List returns the file names with a given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the combined size of all files with the given prefix.
func (fs *FS) TotalSize(prefix string) int64 {
	var total int64
	for _, name := range fs.List(prefix) {
		total += fs.Size(name)
	}
	return total
}

// TotalChecksum combines the checksums of all files with the given prefix.
func (fs *FS) TotalChecksum(prefix string) uint64 {
	var sum uint64
	for _, name := range fs.List(prefix) {
		sum ^= fs.Checksum(name)
	}
	return sum
}

// TotalRecords returns the combined record count of files with the prefix.
func (fs *FS) TotalRecords(prefix string) int64 {
	var total int64
	for _, name := range fs.List(prefix) {
		total += fs.Records(name)
	}
	return total
}

// Remove deletes all files with the given prefix.
func (fs *FS) Remove(prefix string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			delete(fs.files, name)
		}
	}
}
