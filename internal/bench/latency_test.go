package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPercentiles(t *testing.T) {
	if p := Percentiles(nil); p != (LatencyPercentiles{}) {
		t.Fatalf("empty sample: %+v", p)
	}
	// 100 samples of 1ms..100ms: nearest-rank percentiles are exact.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Millisecond
	}
	p := Percentiles(samples)
	want := LatencyPercentiles{P50: 50, P90: 90, P95: 95, P99: 99, Max: 100, Mean: 50.5}
	if p != want {
		t.Fatalf("percentiles = %+v, want %+v", p, want)
	}
	if one := Percentiles([]time.Duration{3 * time.Millisecond}); one.P50 != 3 || one.Max != 3 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestLatencyDocRoundTrip(t *testing.T) {
	doc := NewLatencyDoc("http://localhost:1234")
	doc.DurationSeconds = 2
	doc.Concurrency = 4
	doc.Distribution = "zipf"
	doc.Requests = 100
	doc.QPS = 50
	doc.Latency = LatencyPercentiles{P50: 1, P90: 2, P95: 3, P99: 4, Max: 5, Mean: 2}
	doc.Ops["point"] = OpLatency{Requests: 100, Latency: doc.Latency}

	var buf bytes.Buffer
	if err := WriteLatencyDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLatencyJSON(buf.Bytes()); err != nil {
		t.Fatalf("round-tripped document invalid: %v", err)
	}
}

// TestValidateLatencyJSONNamesOffendingField is the regression test for the
// clear-validation-errors requirement: every rejection must name the field
// path (or position) that failed, never a bare unmarshal error.
func TestValidateLatencyJSONNamesOffendingField(t *testing.T) {
	pct := func() map[string]any {
		return map[string]any{"p50": 1.0, "p90": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0, "mean": 1.0}
	}
	valid := func() map[string]any {
		return map[string]any{
			"schemaVersion": 1, "tool": "sploadgen", "target": "t",
			"durationSeconds": 1.0, "concurrency": 2, "distribution": "zipf",
			"seed": 1, "requests": 10, "errors": 0, "qps": 10.0,
			"latency": pct(),
			"ops": map[string]any{
				"point": map[string]any{"requests": 10, "errors": 0, "latency": pct()},
			},
			"environment": map[string]any{"goVersion": "go1.22"},
		}
	}
	cases := []struct {
		name    string
		mutate  func(map[string]any)
		mention string
	}{
		{"missing schemaVersion", func(d map[string]any) { delete(d, "schemaVersion") }, "schemaVersion"},
		{"wrong schemaVersion", func(d map[string]any) { d["schemaVersion"] = 99 }, "schemaVersion"},
		{"missing tool", func(d map[string]any) { d["tool"] = "" }, "tool"},
		{"string qps", func(d map[string]any) { d["qps"] = "fast" }, "qps"},
		{"missing latency", func(d map[string]any) { delete(d, "latency") }, "latency"},
		{"latency missing p99", func(d map[string]any) {
			d["latency"].(map[string]any)["p99"] = nil
		}, "latency.p99"},
		{"ops not object", func(d map[string]any) { d["ops"] = []any{} }, "ops"},
		{"op missing requests", func(d map[string]any) {
			delete(d["ops"].(map[string]any)["point"].(map[string]any), "requests")
		}, "ops.point.requests"},
		{"op latency missing max", func(d map[string]any) {
			delete(d["ops"].(map[string]any)["point"].(map[string]any)["latency"].(map[string]any), "max")
		}, "ops.point.latency.max"},
		{"missing environment", func(d map[string]any) { delete(d, "environment") }, "environment"},
		{"environment missing goVersion", func(d map[string]any) {
			d["environment"] = map[string]any{}
		}, "environment.goVersion"},
	}
	for _, c := range cases {
		doc := valid()
		c.mutate(doc)
		data := mustJSON(t, doc)
		if err := ValidateLatencyJSON(data); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.mention) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.mention)
		}
	}
	if err := ValidateLatencyJSON(mustJSON(t, valid())); err != nil {
		t.Fatalf("valid fixture rejected: %v", err)
	}
}

func TestValidateLatencyJSONSyntaxErrorsNamePosition(t *testing.T) {
	err := ValidateLatencyJSON([]byte("{\n  \"schemaVersion\": 1,\n  \"tool\": oops\n}"))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name the offending line", err)
	}
}
