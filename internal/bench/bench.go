// Package bench regenerates the paper's evaluation (§6): one experiment per
// figure, producing the same series the paper plots — total running time,
// average map/reduce task time, intermediate ("map output") data size, and
// SP-Sketch size — for SP-Cube against the Pig (MR-Cube) and Hive baselines.
//
// Because the substrate is a simulator, absolute values are not comparable
// to the paper's AWS cluster; the experiments are judged on shape: who wins,
// by what factor, and where the crossovers and failures fall. EXPERIMENTS.md
// records measured-vs-paper for every figure. All experiments are
// deterministic in Config.Seed, and sweep sizes are scaled down ~1000× from
// the paper's 300M-row runs, with machine memory m = n/k scaling alongside
// so the skew structure (Definition 2.7) is preserved.
package bench

import (
	"context"
	"fmt"
	"sort"

	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/algo/pipesort"
	"github.com/spcube/spcube/internal/algo/spcube"
)

// Config parameterizes an experiment run.
type Config struct {
	// Workers is the simulated cluster size (paper: 20).
	Workers int
	// Seed drives data generation and sampling.
	Seed int64
	// Scale multiplies every sweep's tuple counts (1 = defaults; tests
	// use small fractions).
	Scale float64
	// Parallelism is the number of goroutines executing each round's
	// tasks (0 = all cores, 1 = sequential). Results are identical at
	// any setting; only real wall-clock changes.
	Parallelism int
	// Faults deterministically injects task failures into every engine
	// round (see mr.FaultPlan); nil injects nothing. The recovery contract
	// guarantees every figure is identical to a fault-free run.
	Faults *mr.FaultPlan
	// MaxAttempts bounds task re-execution under injected faults
	// (0 = engine default).
	MaxAttempts int
	// SpeculativeSlack enables straggler speculation in every engine round
	// (see mr.Config.SpeculativeSlack); 0 disables it.
	SpeculativeSlack float64
	// TaskTimeout kills and retries attempts stalled past it (see
	// mr.Config.TaskTimeout); 0 disables it.
	TaskTimeout float64
	// SpillBudgetBytes, SpillDir, SpillCodec and MergeFanIn configure the
	// engines' out-of-core shuffle (see mr.Config); 0 keeps everything in
	// memory. Figures are identical at any budget, codec and fan-in; only
	// spill counters and I/O cost change.
	SpillBudgetBytes int64
	SpillDir         string
	SpillCodec       string
	MergeFanIn       int
	// Tracer, when set, receives every engine's structured lifecycle
	// events (see mr.Tracer); it is shared by all runs of the experiment,
	// so sinks must be safe for sequential reuse (the bundled
	// mr.JSONLTracer is).
	Tracer mr.Tracer
	// Collect, when set, receives one RunRecord per algorithm execution
	// with the run's full per-round metrics — the raw material of the
	// machine-readable metrics document (see MetricsDoc).
	Collect func(RunRecord)
	// Executor, when set, runs every experiment engine on that execution
	// backend (e.g. exec.Proc for real worker processes) instead of the
	// in-process local backend. Figures are identical across backends;
	// only wall-clock and the health counters change. The executor is
	// shared by all runs and closed by the caller.
	Executor mr.Executor
	// Context, when set, cancels in-flight experiments: the sweep stops at
	// the next engine attempt boundary and the run reports a DNF.
	Context context.Context
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2016
	}
}

// Point is one measurement of one series. The JSON tags are part of the
// versioned metrics-document schema (see MetricsDoc).
type Point struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	DNF bool    `json:"dnf,omitempty"` // the run failed (reducer OOM): plotted as "did not finish"
}

// Series is one curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure mirrors one sub-figure of the paper.
type Figure struct {
	ID     string   `json:"id"` // e.g. "fig4a"
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	LogX   bool     `json:"logX,omitempty"`
	Series []Series `json:"series"`
}

// measures are the per-run quantities the figures plot.
type measures struct {
	totalSim     float64
	mapAvg       float64
	reduceAvg    float64
	shuffleBytes int64
	sketchBytes  int
	outBalance   []int64
	shuffleRecs  int64
	inBalance    []int64
	dnf          bool
}

// algorithms under test, in the paper's plotting order.
type algo struct {
	name string
	fn   cube.ComputeFunc
}

func paperAlgos(seed int64) []algo {
	return []algo{
		{"Pig", func(e *mr.Engine, r *relation.Relation, s cube.Spec) (*cube.Run, error) {
			return mrcube.ComputeOpts(e, r, s, mrcube.Options{Seed: seed})
		}},
		{"Hive", hivecube.Compute},
		{"SP-Cube", func(e *mr.Engine, r *relation.Relation, s cube.Spec) (*cube.Run, error) {
			return spcube.ComputeOpts(e, r, s, spcube.Options{Seed: seed})
		}},
	}
}

// engineConfig is the mr.Config every experiment engine is created with.
func (c Config) engineConfig() mr.Config {
	return mr.Config{Workers: c.Workers, Seed: uint64(c.Seed), Parallelism: c.Parallelism,
		Faults: c.Faults, MaxAttempts: c.MaxAttempts,
		SpeculativeSlack: c.SpeculativeSlack, TaskTimeout: c.TaskTimeout,
		SpillBudgetBytes: c.SpillBudgetBytes, SpillDir: c.SpillDir,
		SpillCodec: c.SpillCodec, MergeFanIn: c.MergeFanIn,
		Tracer: c.Tracer, Executor: c.Executor, Context: c.Context}
}

// runOne executes one algorithm on one relation with a fresh engine.
func runOne(cfg Config, a algo, rel *relation.Relation) measures {
	eng := mr.New(cfg.engineConfig(), nil)
	run, err := a.fn(eng, rel, cube.Spec{Agg: agg.Count})
	var ms measures
	if cfg.Collect != nil {
		rec := RunRecord{Algo: a.name, InputTuples: rel.N(), DNF: err != nil}
		if run != nil {
			jm := run.Metrics
			rec.Metrics = &jm
		}
		cfg.Collect(rec)
	}
	if run != nil {
		ms.totalSim = run.Metrics.SimSeconds()
		ms.mapAvg = run.Metrics.MapTimeAvg()
		ms.reduceAvg = run.Metrics.ReduceTimeAvg()
		ms.shuffleBytes = run.Metrics.ShuffleBytes()
		ms.shuffleRecs = run.Metrics.ShuffleRecords()
		ms.sketchBytes = run.SketchBytes
		if n := len(run.Metrics.Rounds); n > 0 {
			last := &run.Metrics.Rounds[n-1]
			ms.outBalance = last.ReducerOutputBytes()
			for i := range last.Reducers {
				ms.inBalance = append(ms.inBalance, last.Reducers[i].InBytes)
			}
		}
	}
	if err != nil {
		ms.dnf = true
	}
	return ms
}

// runSweep runs every algorithm across the x-axis, building one series per
// algorithm for each requested measure.
func runSweep(cfg Config, xs []float64, build func(x float64) *relation.Relation, algos []algo, wants []string) map[string][]Series {
	out := make(map[string][]Series, len(wants))
	for _, w := range wants {
		out[w] = make([]Series, len(algos))
		for i, a := range algos {
			out[w][i] = Series{Name: a.name}
		}
	}
	for _, x := range xs {
		rel := build(x)
		for i, a := range algos {
			ms := runOne(cfg, a, rel)
			for _, w := range wants {
				var y float64
				switch w {
				case "time":
					y = ms.totalSim
				case "map":
					y = ms.mapAvg
				case "reduce":
					y = ms.reduceAvg
				case "shuffle":
					y = float64(ms.shuffleBytes)
				case "sketch":
					y = float64(ms.sketchBytes)
				default:
					panic("bench: unknown measure " + w)
				}
				s := &out[w][i]
				s.Points = append(s.Points, Point{X: x, Y: y, DNF: ms.dnf})
			}
		}
	}
	return out
}

// scaleInts multiplies a default sweep by cfg.Scale, keeping at least 2
// points and at least ~500 tuples per point.
func (c Config) sizes(defaults ...int) []float64 {
	out := make([]float64, 0, len(defaults))
	for _, n := range defaults {
		v := float64(n) * c.Scale
		if v < 500 {
			v = 500
		}
		out = append(out, v)
	}
	return out
}

// Fig4 reproduces Figure 4 (Wikipedia Traffic Statistics): (a) total
// running time, (b) average reduce time, (c) map output size, as the number
// of tuples grows. Paper scale: 50M-300M tuples; default simulation scale:
// 50k-300k.
func Fig4(cfg Config) []Figure {
	cfg.defaults()
	xs := cfg.sizes(50_000, 100_000, 200_000, 300_000)
	algos := paperAlgos(cfg.Seed)
	res := runSweep(cfg, xs, func(x float64) *relation.Relation {
		return data.WikiTraffic(int(x), cfg.Seed)
	}, algos, []string{"time", "reduce", "shuffle"})
	return []Figure{
		{ID: "fig4a", Title: "Wikipedia: running times comparison", XLabel: "tuples", YLabel: "time (sim s)", Series: res["time"]},
		{ID: "fig4b", Title: "Wikipedia: reduce time comparison", XLabel: "tuples", YLabel: "avg reduce time (sim s)", Series: res["reduce"]},
		{ID: "fig4c", Title: "Wikipedia: map output comparison", XLabel: "tuples", YLabel: "intermediate bytes", Series: res["shuffle"]},
	}
}

// Fig5 reproduces Figure 5 (USAGOV): (a) total running time, (b) average
// map time, (c) SP-Sketch size, on a log-scale tuple sweep. Paper scale:
// 0.1M-30M; default simulation scale: 3k-100k.
func Fig5(cfg Config) []Figure {
	cfg.defaults()
	xs := cfg.sizes(3_000, 10_000, 30_000, 100_000)
	algos := paperAlgos(cfg.Seed)
	res := runSweep(cfg, xs, func(x float64) *relation.Relation {
		return data.USAGov(int(x), cfg.Seed).Restrict(data.USAGovCubeDims)
	}, algos, []string{"time", "map", "sketch"})
	sketch := []Series{res["sketch"][2]} // SP-Cube only
	sketch[0].Name = "SP-Sketch"
	return []Figure{
		{ID: "fig5a", Title: "USAGOV: running times comparison", XLabel: "tuples (log)", YLabel: "time (sim s)", LogX: true, Series: res["time"]},
		{ID: "fig5b", Title: "USAGOV: map time comparison", XLabel: "tuples (log)", YLabel: "avg map time (sim s)", LogX: true, Series: res["map"]},
		{ID: "fig5c", Title: "USAGOV: SP-Sketch size", XLabel: "tuples (log)", YLabel: "sketch bytes", LogX: true, Series: sketch},
	}
}

// Fig6 reproduces Figure 6 (gen-binomial, varying skewness): (a) total
// running time, (b) map output size, (c) SP-Sketch size, as the skew
// probability p grows at fixed n. Paper: n=300M; default simulation: 100k.
func Fig6(cfg Config) []Figure {
	cfg.defaults()
	n := int(cfg.sizes(100_000)[0])
	ps := []float64{0, 0.1, 0.25, 0.4, 0.6, 0.75}
	algos := paperAlgos(cfg.Seed)
	res := runSweep(cfg, ps, func(p float64) *relation.Relation {
		return data.GenBinomial(n, 4, p, cfg.Seed)
	}, algos, []string{"time", "shuffle", "sketch"})
	sketch := []Series{res["sketch"][2]}
	sketch[0].Name = "SP-Sketch"
	return []Figure{
		{ID: "fig6a", Title: "gen-binomial: running time vs skewness", XLabel: "skew probability p", YLabel: "time (sim s)", Series: res["time"]},
		{ID: "fig6b", Title: "gen-binomial: map output vs skewness", XLabel: "skew probability p", YLabel: "intermediate bytes", Series: res["shuffle"]},
		{ID: "fig6c", Title: "gen-binomial: SP-Sketch size vs skewness", XLabel: "skew probability p", YLabel: "sketch bytes", Series: sketch},
	}
}

// Fig7 reproduces Figure 7 (gen-zipf): (a) total running time, (b) average
// reduce time, (c) map output size, on a log-scale tuple sweep. Paper:
// 1M-150M; default simulation: 2k-150k.
func Fig7(cfg Config) []Figure {
	cfg.defaults()
	xs := cfg.sizes(2_000, 15_000, 50_000, 150_000)
	algos := paperAlgos(cfg.Seed)
	res := runSweep(cfg, xs, func(x float64) *relation.Relation {
		return data.GenZipf(int(x), cfg.Seed)
	}, algos, []string{"time", "reduce", "shuffle"})
	return []Figure{
		{ID: "fig7a", Title: "gen-zipf: running times comparison", XLabel: "tuples (log)", YLabel: "time (sim s)", LogX: true, Series: res["time"]},
		{ID: "fig7b", Title: "gen-zipf: average reduce time comparison", XLabel: "tuples (log)", YLabel: "avg reduce time (sim s)", LogX: true, Series: res["reduce"]},
		{ID: "fig7c", Title: "gen-zipf: map output size comparison", XLabel: "tuples (log)", YLabel: "intermediate bytes", LogX: true, Series: res["shuffle"]},
	}
}

// Fig8 reproduces Figure 8 (gen-binomial, varying data size at p=0.1):
// (a) total running time, (b) average map time, (c) map output size.
// Paper: 1M-300M; default simulation: 3k-300k.
func Fig8(cfg Config) []Figure {
	cfg.defaults()
	xs := cfg.sizes(3_000, 10_000, 30_000, 100_000, 300_000)
	algos := paperAlgos(cfg.Seed)
	res := runSweep(cfg, xs, func(x float64) *relation.Relation {
		return data.GenBinomial(int(x), 4, 0.1, cfg.Seed)
	}, algos, []string{"time", "map", "shuffle"})
	return []Figure{
		{ID: "fig8a", Title: "gen-binomial p=0.1: running times comparison", XLabel: "tuples (log)", YLabel: "time (sim s)", LogX: true, Series: res["time"]},
		{ID: "fig8b", Title: "gen-binomial p=0.1: average map time comparison", XLabel: "tuples (log)", YLabel: "avg map time (sim s)", LogX: true, Series: res["map"]},
		{ID: "fig8c", Title: "gen-binomial p=0.1: map output size comparison", XLabel: "tuples (log)", YLabel: "intermediate bytes", LogX: true, Series: res["shuffle"]},
	}
}

// Balance reproduces the §6.2 closing claim: SP-Cube's reducer output files
// have similar sizes. It reports max/mean per-reducer output for each
// algorithm on each workload.
func Balance(cfg Config) []Figure {
	cfg.defaults()
	n := int(cfg.sizes(100_000)[0])
	workloads := []struct {
		name string
		rel  *relation.Relation
	}{
		{"wiki", data.WikiTraffic(n, cfg.Seed)},
		{"zipf", data.GenZipf(n, cfg.Seed)},
		{"binomial-0.4", data.GenBinomial(n, 4, 0.4, cfg.Seed)},
	}
	algos := paperAlgos(cfg.Seed)
	out := Figure{ID: "balance-out", Title: "reducer output balance (max/median, lower=better)",
		XLabel: "workload", YLabel: "max/median output"}
	in := Figure{ID: "balance-in", Title: "reducer input balance (max/median, lower=better; Prop 4.2/4.6)",
		XLabel: "workload", YLabel: "max/median input"}
	for _, a := range algos {
		so := Series{Name: a.name}
		si := Series{Name: a.name}
		for wi, w := range workloads {
			ms := runOne(cfg, a, w.rel)
			so.Points = append(so.Points, Point{X: float64(wi), Y: imbalance(ms.outBalance), DNF: ms.dnf})
			si.Points = append(si.Points, Point{X: float64(wi), Y: imbalance(ms.inBalance), DNF: ms.dnf})
		}
		out.Series = append(out.Series, so)
		in.Series = append(in.Series, si)
	}
	return []Figure{out, in}
}

// imbalance is max/median over the reducers' output sizes. The median is
// robust to a single special-role reducer with near-empty output (SP-Cube's
// dedicated skew reducer emits only the few dozen skewed groups), which
// would otherwise drag a mean-based metric.
func imbalance(outs []int64) float64 {
	if len(outs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), outs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := float64(sorted[len(sorted)/2])
	maxV := float64(sorted[len(sorted)-1])
	if median == 0 {
		return maxV
	}
	return maxV / median
}

// Traffic verifies the intermediate-data bounds of §5.2: on uniform
// (skewness-monotonic) data traffic grows like O(d²·n) records — in fact at
// most d·n tuples are shipped — while on the adversarial relation of
// Theorem 5.3 it is Θ(2^d·n).
func Traffic(cfg Config) []Figure {
	cfg.defaults()
	uniform := Series{Name: "uniform (records/n)"}
	adversarial := Series{Name: "adversarial (records/n)"}
	bound := Series{Name: "d (Prop 5.5 record bound)"}
	expBound := Series{Name: "2^(d-1) (Thm 5.3 scale)"}
	for _, d := range []int{4, 6, 8, 10} {
		n := int(cfg.sizes(40_000)[0])
		relU := data.Uniform(n, d, 1<<30, cfg.Seed)
		msU := runOne(cfg, paperAlgos(cfg.Seed)[2], relU)
		uniform.Points = append(uniform.Points, Point{X: float64(d), Y: float64(msU.shuffleRecs) / float64(n)})

		m := 40 * int(cfg.Scale*10+1)
		relA := data.Adversarial(d, m)
		msA := runOne(cfg, paperAlgos(cfg.Seed)[2], relA)
		adversarial.Points = append(adversarial.Points, Point{X: float64(d), Y: float64(msA.shuffleRecs) / float64(relA.N())})

		bound.Points = append(bound.Points, Point{X: float64(d), Y: float64(d)})
		expBound.Points = append(expBound.Points, Point{X: float64(d), Y: float64(int(1) << uint(d-1))})
	}
	return []Figure{{
		ID: "traffic", Title: "SP-Cube intermediate records per input tuple vs d (§5.2)",
		XLabel: "dimensions d", YLabel: "shuffle records / n",
		Series: []Series{uniform, bound, adversarial, expBound},
	}}
}

// Ablation quantifies SP-Cube's two design choices (DESIGN.md): mapper-side
// skew pre-aggregation and factorized ancestor computation, by disabling
// each on a skewed workload.
func Ablation(cfg Config) []Figure {
	cfg.defaults()
	n := int(cfg.sizes(100_000)[0])
	rel := data.GenBinomial(n, 4, 0.4, cfg.Seed)
	variants := []struct {
		name string
		opts spcube.Options
	}{
		{"SP-Cube", spcube.Options{Seed: cfg.Seed}},
		{"no-skew-handling", spcube.Options{Seed: cfg.Seed, DisableSkewHandling: true}},
		{"no-factorization", spcube.Options{Seed: cfg.Seed, DisableFactorization: true}},
		{"naive", spcube.Options{}},
	}
	timeFig := Figure{ID: "ablation-time", Title: "ablation: gen-binomial p=0.4 running time", XLabel: "variant", YLabel: "time (sim s)"}
	shuffleFig := Figure{ID: "ablation-shuffle", Title: "ablation: gen-binomial p=0.4 intermediate bytes", XLabel: "variant", YLabel: "bytes"}
	for vi, v := range variants {
		var fn cube.ComputeFunc
		if v.name == "naive" {
			fn = naive.Compute
		} else {
			opts := v.opts
			fn = func(e *mr.Engine, r *relation.Relation, s cube.Spec) (*cube.Run, error) {
				return spcube.ComputeOpts(e, r, s, opts)
			}
		}
		ms := runOne(cfg, algo{v.name, fn}, rel)
		timeFig.Series = append(timeFig.Series, Series{Name: v.name, Points: []Point{{X: float64(vi), Y: ms.totalSim, DNF: ms.dnf}}})
		shuffleFig.Series = append(shuffleFig.Series, Series{Name: v.name, Points: []Point{{X: float64(vi), Y: float64(ms.shuffleBytes), DNF: ms.dnf}}})
	}
	return []Figure{timeFig, shuffleFig}
}

// Rounds quantifies the §7 objection to top-down multi-round cubes: the
// parallel Pipesort of Lee et al. pays one MapReduce round per lattice
// level, so its running time grows with d even when the data volume does
// not; SP-Cube always uses two rounds and Pig three-plus.
func Rounds(cfg Config) []Figure {
	cfg.defaults()
	n := int(cfg.sizes(50_000)[0])
	timeFig := Figure{ID: "rounds-time", Title: "top-down Pipesort vs SP-Cube vs Pig: time vs dimensions",
		XLabel: "dimensions d", YLabel: "time (sim s)"}
	roundFig := Figure{ID: "rounds-count", Title: "MapReduce rounds vs dimensions",
		XLabel: "dimensions d", YLabel: "rounds"}
	algos := []algo{
		{"Pipesort", pipesort.Compute},
		paperAlgos(cfg.Seed)[0], // Pig
		paperAlgos(cfg.Seed)[2], // SP-Cube
	}
	for _, a := range algos {
		st := Series{Name: a.name}
		sr := Series{Name: a.name}
		for _, d := range []int{2, 3, 4, 5, 6} {
			rel := data.Uniform(n, d, 1000, cfg.Seed)
			eng := mr.New(cfg.engineConfig(), nil)
			run, err := a.fn(eng, rel, cube.Spec{Agg: agg.Count})
			if cfg.Collect != nil {
				rec := RunRecord{Algo: a.name, InputTuples: rel.N(), DNF: err != nil}
				if run != nil {
					jm := run.Metrics
					rec.Metrics = &jm
				}
				cfg.Collect(rec)
			}
			if err != nil {
				st.Points = append(st.Points, Point{X: float64(d), DNF: true})
				sr.Points = append(sr.Points, Point{X: float64(d), DNF: true})
				continue
			}
			st.Points = append(st.Points, Point{X: float64(d), Y: run.Metrics.SimSeconds()})
			sr.Points = append(sr.Points, Point{X: float64(d), Y: float64(len(run.Metrics.Rounds))})
		}
		timeFig.Series = append(timeFig.Series, st)
		roundFig.Series = append(roundFig.Series, sr)
	}
	return []Figure{timeFig, roundFig}
}

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(Config) []Figure{
	"fig4":     Fig4,
	"fig5":     Fig5,
	"fig6":     Fig6,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"balance":  Balance,
	"traffic":  Traffic,
	"ablation": Ablation,
	"rounds":   Rounds,
	"sketch":   SketchQuality,
}

// ExperimentOrder is the canonical execution order for -exp all.
var ExperimentOrder = []string{"fig4", "fig5", "fig6", "fig7", "fig8", "balance", "traffic", "ablation", "rounds", "sketch"}

// All runs every experiment.
func All(cfg Config) []Figure {
	var out []Figure
	for _, id := range ExperimentOrder {
		out = append(out, Experiments[id](cfg)...)
	}
	return out
}

// ByID runs one experiment.
func ByID(id string, cfg Config) ([]Figure, error) {
	fn, ok := Experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (want one of %v or all)", id, ExperimentOrder)
	}
	return fn(cfg), nil
}
