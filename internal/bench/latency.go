package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"
)

// LatencySchemaVersion versions the load-generator latency document
// (LatencyDoc). Bump on incompatible changes.
const LatencySchemaVersion = 1

// LatencyPercentiles summarizes a latency sample in milliseconds.
type LatencyPercentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// OpLatency is one operation's share of a load-generation run.
type OpLatency struct {
	Requests int64              `json:"requests"`
	Errors   int64              `json:"errors"`
	Latency  LatencyPercentiles `json:"latency"`
}

// LatencyDoc is the machine-readable result of one sploadgen run: the
// serving layer's user-facing numbers (QPS, latency percentiles), overall
// and per operation. Unlike MetricsDoc it is inherently non-deterministic —
// it measures real wall-clock behaviour of a real server.
type LatencyDoc struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`
	// Target is the URL the load was driven against.
	Target string `json:"target"`
	// DurationSeconds is the measured (not requested) run length.
	DurationSeconds float64 `json:"durationSeconds"`
	// Concurrency is the closed-loop worker count.
	Concurrency int `json:"concurrency"`
	// Distribution names the key-popularity model ("zipf", "uniform").
	Distribution string `json:"distribution"`
	Seed         int64  `json:"seed"`
	Requests     int64  `json:"requests"`
	Errors       int64  `json:"errors"`
	// QPS is completed requests per measured second.
	QPS     float64              `json:"qps"`
	Latency LatencyPercentiles   `json:"latency"`
	Ops     map[string]OpLatency `json:"ops"`
	// Environment mirrors the metrics document's provenance block.
	Environment Environment `json:"environment"`
}

// NewLatencyDoc assembles the document skeleton (schema version, tool,
// environment); callers fill the measurements.
func NewLatencyDoc(target string) *LatencyDoc {
	return &LatencyDoc{
		SchemaVersion: LatencySchemaVersion,
		Tool:          "sploadgen",
		Target:        target,
		Ops:           map[string]OpLatency{},
		Environment: Environment{
			GoVersion:   runtime.Version(),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		},
	}
}

// Percentiles summarizes a sample of request latencies. The input is
// reordered.
func Percentiles(samples []time.Duration) LatencyPercentiles {
	if len(samples) == 0 {
		return LatencyPercentiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	at := func(q float64) float64 {
		// Nearest-rank percentile: the ceil(q*n)-th smallest sample.
		i := int(math.Ceil(q*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return ms(samples[i])
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return LatencyPercentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P95:  at(0.95),
		P99:  at(0.99),
		Max:  ms(samples[len(samples)-1]),
		Mean: ms(sum) / float64(len(samples)),
	}
}

// WriteLatencyDoc writes the document as indented JSON.
func WriteLatencyDoc(w io.Writer, doc *LatencyDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: write latency: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateLatencyJSON structurally validates a serialized LatencyDoc,
// naming the offending field (or, for malformed JSON, the line and column)
// in every error. It is the check behind `sploadgen -validate` and the CI
// serve-smoke leg.
func ValidateLatencyJSON(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench: latency document: %w", describeJSONError(data, err))
	}
	bad := func(path, what string) error {
		return fmt.Errorf("bench: latency document: %s: %s", path, what)
	}
	v, ok := doc["schemaVersion"].(float64)
	if !ok {
		return bad("schemaVersion", "missing numeric field")
	}
	if int(v) != LatencySchemaVersion {
		return bad("schemaVersion", fmt.Sprintf("is %d, want %d", int(v), LatencySchemaVersion))
	}
	for _, key := range []string{"tool", "target", "distribution"} {
		if s, ok := doc[key].(string); !ok || s == "" {
			return bad(key, "missing non-empty string")
		}
	}
	for _, key := range []string{"durationSeconds", "concurrency", "seed", "requests", "errors", "qps"} {
		if _, ok := doc[key].(float64); !ok {
			return bad(key, "missing numeric field")
		}
	}
	if err := validatePercentiles("latency", doc["latency"]); err != nil {
		return err
	}
	ops, ok := doc["ops"].(map[string]any)
	if !ok {
		return bad("ops", "missing object")
	}
	for name, o := range ops {
		op, ok := o.(map[string]any)
		if !ok {
			return bad("ops."+name, "not an object")
		}
		for _, key := range []string{"requests", "errors"} {
			if _, ok := op[key].(float64); !ok {
				return bad("ops."+name+"."+key, "missing numeric field")
			}
		}
		if err := validatePercentiles("ops."+name+".latency", op["latency"]); err != nil {
			return err
		}
	}
	env, ok := doc["environment"].(map[string]any)
	if !ok {
		return bad("environment", "missing object")
	}
	if s, ok := env["goVersion"].(string); !ok || s == "" {
		return bad("environment.goVersion", "missing non-empty string")
	}
	return nil
}

func validatePercentiles(path string, v any) error {
	p, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("bench: latency document: %s: missing object", path)
	}
	for _, key := range []string{"p50", "p90", "p95", "p99", "max", "mean"} {
		if _, ok := p[key].(float64); !ok {
			return fmt.Errorf("bench: latency document: %s.%s: missing numeric field", path, key)
		}
	}
	return nil
}
