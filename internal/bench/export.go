package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/spcube/spcube/internal/mr"
)

// RunRecord captures one algorithm execution inside an experiment: the raw
// per-round metrics behind one plotted point. Delivered through
// Config.Collect, in execution order.
type RunRecord struct {
	// Algo is the algorithm (series) name, e.g. "SP-Cube".
	Algo string `json:"algo"`
	// InputTuples is the size of the relation the run consumed.
	InputTuples int `json:"inputTuples"`
	// DNF marks a failed run (reducer OOM under the Hive model, or
	// exhausted retries under fault injection).
	DNF bool `json:"dnf,omitempty"`
	// Metrics is the run's full per-round metrics document (nil only when
	// the run produced no metrics at all).
	Metrics *mr.JobMetrics `json:"metrics,omitempty"`
}

// Collector accumulates RunRecords; its Collect method satisfies
// Config.Collect.
type Collector struct {
	Runs []RunRecord
}

// Collect appends one record.
func (c *Collector) Collect(r RunRecord) { c.Runs = append(c.Runs, r) }

// Environment records the run conditions that do not affect the
// deterministic results but matter for interpreting wall-clock fields.
type Environment struct {
	GoVersion   string `json:"goVersion"`
	Parallelism int    `json:"parallelism"`
	Faults      string `json:"faults,omitempty"`
	MaxAttempts int    `json:"maxAttempts,omitempty"`
	// GeneratedAt is the document creation time (RFC 3339, UTC).
	GeneratedAt string `json:"generatedAt"`
}

// MetricsDoc is the machine-readable result of one spbench invocation: the
// figures exactly as rendered plus the raw per-run metrics they were
// derived from. Its schema version is shared with the engine-level metrics
// document (mr.MetricsSchemaVersion), whose determinism contract applies:
// everything except the environment block and the wall-clock fields
// ("wallSeconds", "retryWallSeconds", "speculativeWallSeconds") is
// bit-for-bit identical at any parallelism, and only the recovery fields
// ("retries", "wastedBytes", "attempts", "reexecutions"/"mapReexecutions",
// "fetchFailures", "speculativeLaunched"/"Won"/"Killed") additionally
// differ between faulted and fault-free runs.
type MetricsDoc struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`
	// Experiment is the experiment id ("fig6", "all", ...).
	Experiment  string      `json:"experiment"`
	Workers     int         `json:"workers"`
	Seed        int64       `json:"seed"`
	Scale       float64     `json:"scale"`
	Environment Environment `json:"environment"`
	Figures     []Figure    `json:"figures"`
	Runs        []RunRecord `json:"runs"`
}

// NewMetricsDoc assembles the document for one experiment invocation.
func NewMetricsDoc(cfg Config, experiment string, figures []Figure, runs []RunRecord) *MetricsDoc {
	cfg.defaults()
	env := Environment{
		GoVersion:   runtime.Version(),
		Parallelism: cfg.Parallelism,
		MaxAttempts: cfg.MaxAttempts,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	if cfg.Faults != nil {
		env.Faults = cfg.Faults.String()
	}
	if figures == nil {
		figures = []Figure{}
	}
	if runs == nil {
		runs = []RunRecord{}
	}
	return &MetricsDoc{
		SchemaVersion: mr.MetricsSchemaVersion,
		Tool:          "spbench",
		Experiment:    experiment,
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
		Scale:         cfg.Scale,
		Environment:   env,
		Figures:       figures,
		Runs:          runs,
	}
}

// WriteMetricsDoc writes the document as indented JSON.
func WriteMetricsDoc(w io.Writer, doc *MetricsDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: write metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// MinMetricsSchemaVersion is the oldest metrics schema version the validator
// still accepts. v2 documents predate the maintenance annotations added in
// v3; they carry a strict subset of the v3 fields, so every structural check
// below applies to both.
const MinMetricsSchemaVersion = 2

// acceptSchemaVersion reports whether v is within the accepted metrics
// schema range, returning an error that names both the offending version and
// the accepted range.
func acceptSchemaVersion(v int, where string) error {
	if v < MinMetricsSchemaVersion || v > mr.MetricsSchemaVersion {
		return fmt.Errorf("bench: metrics document: %s schemaVersion %d, accepted range %d..%d",
			where, v, MinMetricsSchemaVersion, mr.MetricsSchemaVersion)
	}
	return nil
}

// ValidateMetricsJSON structurally validates a serialized MetricsDoc: the
// schema version (any version in MinMetricsSchemaVersion..
// mr.MetricsSchemaVersion is accepted, both at the top level and inside each
// run's embedded engine metrics), the presence and types of every required
// top-level field, and the shape of each figure and run. It is the check
// behind `spbench -validate` and the CI bench-json smoke leg.
func ValidateMetricsJSON(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench: metrics document: %w", describeJSONError(data, err))
	}
	v, ok := doc["schemaVersion"].(float64)
	if !ok {
		return fmt.Errorf("bench: metrics document: missing numeric schemaVersion")
	}
	if err := acceptSchemaVersion(int(v), "top-level"); err != nil {
		return err
	}
	for _, key := range []string{"tool", "experiment"} {
		if s, ok := doc[key].(string); !ok || s == "" {
			return fmt.Errorf("bench: metrics document: missing %s", key)
		}
	}
	for _, key := range []string{"workers", "seed", "scale"} {
		if _, ok := doc[key].(float64); !ok {
			return fmt.Errorf("bench: metrics document: missing numeric %s", key)
		}
	}
	env, ok := doc["environment"].(map[string]any)
	if !ok {
		return fmt.Errorf("bench: metrics document: missing environment")
	}
	if s, ok := env["goVersion"].(string); !ok || s == "" {
		return fmt.Errorf("bench: metrics document: environment missing goVersion")
	}
	figures, ok := doc["figures"].([]any)
	if !ok {
		return fmt.Errorf("bench: metrics document: missing figures array")
	}
	for i, f := range figures {
		fig, ok := f.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: metrics document: figure %d is not an object", i)
		}
		id, _ := fig["id"].(string)
		if id == "" {
			return fmt.Errorf("bench: metrics document: figure %d has no id", i)
		}
		series, ok := fig["series"].([]any)
		if !ok {
			return fmt.Errorf("bench: metrics document: figure %s has no series array", id)
		}
		for _, s := range series {
			ser, ok := s.(map[string]any)
			if !ok {
				return fmt.Errorf("bench: metrics document: figure %s has a non-object series", id)
			}
			if name, _ := ser["name"].(string); name == "" {
				return fmt.Errorf("bench: metrics document: figure %s has an unnamed series", id)
			}
			points, ok := ser["points"].([]any)
			if !ok {
				return fmt.Errorf("bench: metrics document: figure %s series %v has no points array", id, ser["name"])
			}
			for j, p := range points {
				pt, ok := p.(map[string]any)
				if !ok {
					return fmt.Errorf("bench: metrics document: figure %s point %d is not an object", id, j)
				}
				for _, key := range []string{"x", "y"} {
					if _, ok := pt[key].(float64); !ok {
						return fmt.Errorf("bench: metrics document: figure %s point %d lacks numeric %s", id, j, key)
					}
				}
			}
		}
	}
	runs, ok := doc["runs"].([]any)
	if !ok {
		return fmt.Errorf("bench: metrics document: missing runs array")
	}
	for i, r := range runs {
		run, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: metrics document: run %d is not an object", i)
		}
		if algo, _ := run["algo"].(string); algo == "" {
			return fmt.Errorf("bench: metrics document: run %d has no algo", i)
		}
		m, present := run["metrics"]
		if !present {
			continue
		}
		metrics, ok := m.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: metrics document: run %d metrics is not an object", i)
		}
		mv, ok := metrics["schemaVersion"].(float64)
		if !ok {
			return fmt.Errorf("bench: metrics document: run %d metrics has no numeric schemaVersion", i)
		}
		if err := acceptSchemaVersion(int(mv), fmt.Sprintf("run %d metrics", i)); err != nil {
			return err
		}
		if _, ok := metrics["rounds"].([]any); !ok {
			return fmt.Errorf("bench: metrics document: run %d metrics has no rounds array", i)
		}
	}
	return nil
}

// describeJSONError rewrites a json.Unmarshal error into one that names
// where in the document the problem is — line and column for syntax errors,
// the Go field path for type mismatches — instead of the bare byte offset
// (or no location at all) the standard error carries.
func describeJSONError(data []byte, err error) error {
	var offset int64 = -1
	detail := err.Error()
	switch e := err.(type) {
	case *json.SyntaxError:
		offset = e.Offset
	case *json.UnmarshalTypeError:
		offset = e.Offset
		path := e.Type.String()
		if e.Struct != "" || e.Field != "" {
			path = e.Field
		}
		detail = fmt.Sprintf("field %s: cannot decode JSON %s", path, e.Value)
	default:
		return err
	}
	line, col := 1, 1
	for i := int64(0); i < offset && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("line %d, column %d: %s", line, col, detail)
}

// VolatileMetricsKeys are the document fields excluded from the determinism
// contract: wall-clock measurements and environment provenance. Stripping
// them (StripVolatile) makes documents from different parallelism levels
// byte-comparable.
var VolatileMetricsKeys = []string{
	"wallSeconds", "retryWallSeconds", "speculativeWallSeconds",
	"time", "generatedAt", "goVersion", "parallelism",
	"spillWriteStallNs", "prefetchHits", "prefetchMisses",
}

// StripVolatile removes the volatile keys (VolatileMetricsKeys plus any
// extras, e.g. "retries"/"wastedBytes"/"attempts" when comparing a faulted
// run against a fault-free one) from a JSON document at every nesting level
// and re-marshals it canonically (sorted keys, no indentation), so two
// deterministically-equal documents compare byte-equal.
func StripVolatile(data []byte, extra ...string) ([]byte, error) {
	drop := make(map[string]bool, len(VolatileMetricsKeys)+len(extra))
	for _, k := range VolatileMetricsKeys {
		drop[k] = true
	}
	for _, k := range extra {
		drop[k] = true
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("bench: strip volatile: %w", err)
	}
	stripVolatile(doc, drop)
	return json.Marshal(doc)
}

func stripVolatile(v any, drop map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			if drop[k] {
				delete(x, k)
				continue
			}
			stripVolatile(sub, drop)
		}
	case []any:
		for _, sub := range x {
			stripVolatile(sub, drop)
		}
	}
}
