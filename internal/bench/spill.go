package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/dfs"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
)

// SpillSchemaVersion versions the spill-pipeline benchmark document
// (BENCH_spill.json). Bump on any field change.
const SpillSchemaVersion = 1

// MinSpillSpeedup and MinSpillBytesReduction are the committed performance
// floors of the overlapped spill pipeline: on a spill-dominated workload
// the async-writer + lz-codec configuration must beat the synchronous raw
// configuration (the engine's pre-pipeline behavior) by at least 1.3x
// simulated wall-clock, and must write at most half the physical spill
// bytes. ValidateSpillJSON enforces both; `make bench-spill` regenerates
// the artifact and re-checks it.
const (
	MinSpillSpeedup        = 1.3
	MinSpillBytesReduction = 2.0
)

// SpillLeg is the measured result of one spill configuration inside a
// SpillDoc. SimSeconds and the byte counters are deterministic in the
// document's seed; WallSeconds is the best real in-process time over
// Repetitions runs and is volatile (machine-dependent).
type SpillLeg struct {
	// Codec, Sync and MergeFanIn echo the mr.Config knobs of this leg.
	Codec      string `json:"codec"`
	Sync       bool   `json:"sync"`
	MergeFanIn int    `json:"mergeFanIn"`
	// SimSeconds is the round's simulated wall-clock under the calibrated
	// cost model, which charges the physically written (compressed) spill
	// bytes at disk bandwidth; WallSeconds is real elapsed time.
	SimSeconds  float64 `json:"simSeconds"`
	WallSeconds float64 `json:"wallSeconds"`
	// SpillBytes is the front-coded (pre-compression) spill volume;
	// SpilledBytes is what physically hit disk: framed, block-compressed.
	SpillBytes   int64 `json:"spillBytes"`
	SpilledBytes int64 `json:"spilledBytes"`
	Spills       int64 `json:"spills"`
	MergePasses  int64 `json:"mergePasses"`
}

// SpillDoc is the machine-readable result of one spill-pipeline benchmark:
// the same spill-dominated shuffle job run through the synchronous raw
// baseline (the engine as it was before the overlapped pipeline: inline
// spill writes, uncompressed runs, unbounded merge fan-in) and through the
// pipeline configuration (background double-buffered writer, lz block
// codec, default fan-in). Both legs produce bit-identical reducer output
// (verified by DFS checksum before the document is emitted).
//
// The workload is a fat-state aggregation: every input tuple of a
// Wikipedia-traffic relation emits a sparse per-group view histogram
// (spillHistBuckets varint-coded counters), the combiner and reducer sum
// histograms bucket-wise. Holistic partial aggregates of exactly this
// shape — histogram, top-k and sketch states hundreds of bytes wide — are
// what makes cube materialization spill-bound in practice, and they are
// the regime the overlapped pipeline targets: the cost model's disk charge
// dominates the round, so compressing the runs moves the round time, not
// just a byte counter.
type SpillDoc struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`
	Algo          string `json:"algo"`
	// Tuples is the wiki relation size; every tuple emits one
	// ValueBytes-sized histogram state.
	Tuples           int      `json:"tuples"`
	ValueBytes       int      `json:"valueBytes"`
	Workers          int      `json:"workers"`
	Seed             int64    `json:"seed"`
	SpillBudgetBytes int64    `json:"spillBudgetBytes"`
	Repetitions      int      `json:"repetitions"`
	Baseline         SpillLeg `json:"baseline"`
	Pipeline         SpillLeg `json:"pipeline"`
	// Speedup is baseline simulated seconds / pipeline simulated seconds —
	// deterministic in the seed, so the committed document reproduces
	// everywhere. WallSpeedup is the same ratio on real in-process time
	// (informational: the simulator's spill files live in the page cache,
	// so real time mostly measures encode CPU, not the disk the cost model
	// calibrates). BytesReduction is baseline physical spill bytes /
	// pipeline physical spill bytes.
	Speedup        float64 `json:"speedup"`
	WallSpeedup    float64 `json:"wallSpeedup"`
	BytesReduction float64 `json:"bytesReduction"`
	GoVersion      string  `json:"goVersion"`
	GeneratedAt    string  `json:"generatedAt"`
}

// SpillConfig parameterizes RunSpillBench. The zero value runs the
// fat-state shuffle over 100k wiki tuples with a 1 MiB emit budget on 20
// simulated workers — every map task spills several runs, and spill I/O
// dominates the round under the cost model.
type SpillConfig struct {
	Tuples           int    // default 100000
	Workers          int    // default 20
	Seed             int64  // default 2016
	Parallelism      int    // engine parallelism (0 = all cores)
	SpillBudgetBytes int64  // default 1 MiB
	Repetitions      int    // timing repetitions, best-of (default 3)
	SpillDir         string // run-file directory (default: a fresh temp dir)
}

func (c *SpillConfig) defaults() {
	if c.Tuples <= 0 {
		c.Tuples = 100000
	}
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Seed == 0 {
		c.Seed = 2016
	}
	if c.SpillBudgetBytes <= 0 {
		c.SpillBudgetBytes = 1 << 20
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
}

// spillHistBuckets is the width of the per-group histogram state each map
// emit carries; spillHistTouches is how many buckets one input tuple
// increments. The encoded state is one uvarint per bucket — mostly zeros
// with a few small counts, the byte pattern of real sparse aggregate
// sketches.
const (
	spillHistBuckets = 512
	spillHistTouches = 6
)

// appendHist appends tuple t's deterministic histogram state to buf.
func appendHist(buf []byte, t relation.Tuple) []byte {
	var h [spillHistBuckets]uint16
	x := uint32(t.Measure)*2654435761 + uint32(t.Dims[1])*40503 + uint32(t.Dims[2])*97
	for j := 0; j < spillHistTouches; j++ {
		x = x*1664525 + 1013904223
		h[(x>>16)%spillHistBuckets] += uint16(1 + (x>>8)&31)
	}
	for _, c := range h {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// sumHist accumulates one encoded histogram into sum, reporting malformed
// input (impossible for states produced by appendHist, but the combiner
// sees post-shuffle bytes and must not index past its array on garbage).
func sumHist(sum *[spillHistBuckets]uint64, v []byte) error {
	for b := 0; b < spillHistBuckets; b++ {
		c, n := binary.Uvarint(v)
		if n <= 0 {
			return fmt.Errorf("bench: truncated histogram state at bucket %d", b)
		}
		sum[b] += c
		v = v[n:]
	}
	return nil
}

// spillBenchJob builds the fat-state shuffle round.
func spillBenchJob() *mr.Job {
	type taskState struct {
		keyBuf []byte
		valBuf []byte
	}
	return &mr.Job{
		Name:      "spill-bench",
		TaskState: func() any { return new(taskState) },
		MapTuple: func(ctx *mr.MapCtx, t relation.Tuple) {
			st := ctx.State().(*taskState)
			k := append(st.keyBuf[:0], 'g')
			for _, d := range t.Dims {
				k = append(k, '|')
				k = strconv.AppendInt(k, int64(d), 10)
			}
			st.keyBuf = k
			st.valBuf = appendHist(st.valBuf[:0], t)
			ctx.EmitBytes(k, st.valBuf)
		},
		Combine: func(key string, vals [][]byte) [][]byte {
			if len(vals) == 1 {
				return vals
			}
			var sum [spillHistBuckets]uint64
			for _, v := range vals {
				if err := sumHist(&sum, v); err != nil {
					return vals // pass through; the reducer will report it
				}
			}
			out := make([]byte, 0, len(vals[0]))
			for _, c := range sum {
				out = binary.AppendUvarint(out, c)
			}
			return [][]byte{out}
		},
		Reduce: func(ctx *mr.RedCtx, key string, vals [][]byte) {
			var sum [spillHistBuckets]uint64
			for _, v := range vals {
				if err := sumHist(&sum, v); err != nil {
					panic(err)
				}
			}
			var total uint64
			for _, c := range sum {
				total += c
			}
			var out [binary.MaxVarintLen64]byte
			ctx.EmitKV(key, out[:binary.PutUvarint(out[:], total)])
		},
	}
}

// spillLegConfigs returns the two engine configurations under comparison.
func spillLegConfigs() (baseline, pipeline SpillLeg) {
	baseline = SpillLeg{Codec: "raw", Sync: true, MergeFanIn: 1 << 30}
	pipeline = SpillLeg{Codec: "lz", Sync: false, MergeFanIn: 0}
	return
}

// RunSpillBench measures the overlapped spill pipeline against the
// synchronous raw baseline on one spill-dominated round. Each leg runs
// Repetitions times; wall time is the best observed, everything else is
// deterministic in Seed. The two legs' DFS outputs are checksummed and
// must match bit-for-bit — a mismatch fails the benchmark rather than
// producing a document that compares two different computations.
func RunSpillBench(cfg SpillConfig) (*SpillDoc, error) {
	cfg.defaults()
	rel := data.WikiTraffic(cfg.Tuples, cfg.Seed)
	doc := &SpillDoc{
		SchemaVersion:    SpillSchemaVersion,
		Tool:             "spbench",
		Algo:             "fat-state-shuffle",
		Tuples:           cfg.Tuples,
		ValueBytes:       len(appendHist(nil, rel.Tuples[0])),
		Workers:          cfg.Workers,
		Seed:             cfg.Seed,
		SpillBudgetBytes: cfg.SpillBudgetBytes,
		Repetitions:      cfg.Repetitions,
		GoVersion:        runtime.Version(),
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
	}
	doc.Baseline, doc.Pipeline = spillLegConfigs()

	baseSum, err := runSpillLeg(cfg, rel, &doc.Baseline)
	if err != nil {
		return nil, fmt.Errorf("bench: spill baseline: %w", err)
	}
	pipeSum, err := runSpillLeg(cfg, rel, &doc.Pipeline)
	if err != nil {
		return nil, fmt.Errorf("bench: spill pipeline: %w", err)
	}
	if baseSum != pipeSum {
		return nil, fmt.Errorf("bench: spill legs disagree: baseline output checksum %x, pipeline %x — the benchmark would compare different computations", baseSum, pipeSum)
	}

	if doc.Pipeline.SimSeconds > 0 {
		doc.Speedup = doc.Baseline.SimSeconds / doc.Pipeline.SimSeconds
	}
	if doc.Pipeline.WallSeconds > 0 {
		doc.WallSpeedup = doc.Baseline.WallSeconds / doc.Pipeline.WallSeconds
	}
	if doc.Pipeline.SpilledBytes > 0 {
		doc.BytesReduction = float64(doc.Baseline.SpilledBytes) / float64(doc.Pipeline.SpilledBytes)
	}
	return doc, nil
}

// runSpillLeg runs the workload under one leg's engine configuration,
// filling in its measured fields, and returns the output checksum.
func runSpillLeg(cfg SpillConfig, rel *relation.Relation, leg *SpillLeg) (uint64, error) {
	var sum uint64
	for rep := 0; rep < cfg.Repetitions; rep++ {
		dir := cfg.SpillDir
		if dir == "" {
			d, err := os.MkdirTemp("", "spillbench-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(d)
			dir = d
		}
		eng := mr.New(mr.Config{
			Workers: cfg.Workers, Seed: uint64(cfg.Seed), Parallelism: cfg.Parallelism,
			SpillBudgetBytes: cfg.SpillBudgetBytes, SpillDir: dir,
			SpillCodec: leg.Codec, MergeFanIn: leg.MergeFanIn, SpillSync: leg.Sync,
		}, dfs.New(false))
		job := spillBenchJob()
		t0 := time.Now()
		res, err := eng.RunTuples(job, rel.Tuples)
		wall := time.Since(t0).Seconds()
		if err != nil {
			return 0, err
		}
		if rep == 0 || wall < leg.WallSeconds {
			leg.WallSeconds = wall
		}
		// Deterministic in the seed: identical every repetition.
		m := res.Metrics
		leg.SimSeconds = m.SimSeconds
		leg.SpillBytes = m.SpillBytes
		leg.SpilledBytes = m.CompressedSpillBytes
		leg.Spills = m.Spills
		leg.MergePasses = m.MergePasses
		sum = eng.FS.TotalChecksum("out/" + job.Name + "/")
	}
	if leg.Spills == 0 {
		return 0, fmt.Errorf("workload never spilled (budget %d bytes) — nothing to measure", cfg.SpillBudgetBytes)
	}
	return sum, nil
}

// WriteSpillDoc writes the document as indented JSON.
func WriteSpillDoc(w io.Writer, doc *SpillDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: write spill doc: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateSpillJSON structurally validates a serialized SpillDoc and
// enforces the committed performance floors: simulated wall-clock speedup
// at least MinSpillSpeedup and physical spill bytes reduced at least
// MinSpillBytesReduction-fold. Both gated quantities are deterministic in
// the document's seed, so the committed artifact re-validates bit-for-bit
// on any machine. It is the check behind `spbench -validate-spill` and the
// CI bench-spill leg.
func ValidateSpillJSON(raw []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("bench: spill document: %w", describeJSONError(raw, err))
	}
	v, ok := doc["schemaVersion"].(float64)
	if !ok {
		return fmt.Errorf("bench: spill document: missing numeric schemaVersion")
	}
	if int(v) != SpillSchemaVersion {
		return fmt.Errorf("bench: spill document: schemaVersion %d, want %d", int(v), SpillSchemaVersion)
	}
	if s, _ := doc["tool"].(string); s != "spbench" {
		return fmt.Errorf("bench: spill document: tool %q, want %q", doc["tool"], "spbench")
	}
	if s, _ := doc["algo"].(string); s == "" {
		return fmt.Errorf("bench: spill document: missing algo")
	}
	for _, key := range []string{"tuples", "valueBytes", "workers", "spillBudgetBytes", "repetitions", "speedup", "wallSpeedup", "bytesReduction"} {
		f, ok := doc[key].(float64)
		if !ok {
			return fmt.Errorf("bench: spill document: missing numeric %s", key)
		}
		if f <= 0 {
			return fmt.Errorf("bench: spill document: %s = %v, want > 0", key, f)
		}
	}
	for _, legKey := range []string{"baseline", "pipeline"} {
		leg, ok := doc[legKey].(map[string]any)
		if !ok {
			return fmt.Errorf("bench: spill document: missing %s leg", legKey)
		}
		if s, _ := leg["codec"].(string); s == "" {
			return fmt.Errorf("bench: spill document: %s leg has no codec", legKey)
		}
		for _, key := range []string{"simSeconds", "wallSeconds", "spillBytes", "spilledBytes", "spills"} {
			f, ok := leg[key].(float64)
			if !ok {
				return fmt.Errorf("bench: spill document: %s leg missing numeric %s", legKey, key)
			}
			if f <= 0 {
				return fmt.Errorf("bench: spill document: %s leg %s = %v, want > 0", legKey, key, f)
			}
		}
	}
	if sp := doc["speedup"].(float64); sp < MinSpillSpeedup {
		return fmt.Errorf("bench: spill document: simulated speedup %.2fx is below the committed floor %.1fx (baseline %.2f sim s vs pipeline %.2f sim s)",
			sp, MinSpillSpeedup, doc["baseline"].(map[string]any)["simSeconds"], doc["pipeline"].(map[string]any)["simSeconds"])
	}
	if br := doc["bytesReduction"].(float64); br < MinSpillBytesReduction {
		return fmt.Errorf("bench: spill document: spilled-bytes reduction %.2fx is below the committed floor %.1fx (baseline %v B vs pipeline %v B)",
			br, MinSpillBytesReduction, doc["baseline"].(map[string]any)["spilledBytes"], doc["pipeline"].(map[string]any)["spilledBytes"])
	}
	return nil
}
