package bench

import (
	"math"

	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// SketchQuality verifies the SP-Sketch's theoretical properties (§4)
// empirically:
//
//   - Proposition 4.4: the sample is O(m) — we plot sample size against
//     the k·ln(n·k) expectation and against m as n grows.
//   - Proposition 4.5: all skewed groups are detected w.h.p. — we plot the
//     detection recall over the exactly-computed skew set, split into
//     clear skews (|set| ≥ 2m) and borderline ones (m < |set| < 2m).
//   - Proposition 4.7: the sketch itself is O(m) — we plot its encoded
//     size.
func SketchQuality(cfg Config) []Figure {
	cfg.defaults()
	sizes := cfg.sizes(20_000, 50_000, 100_000, 200_000)

	sample := Series{Name: "sample tuples"}
	expect := Series{Name: "k·ln(n·k) (Prop 4.4 expectation)"}
	memory := Series{Name: "m = n/k"}
	clear := Series{Name: "recall, |set| ≥ 2m"}
	borderline := Series{Name: "recall, m < |set| < 2m"}
	bytesSeries := Series{Name: "sketch bytes"}

	for _, x := range sizes {
		n := int(x)
		rel := data.WikiTraffic(n, cfg.Seed)
		eng := mr.New(cfg.engineConfig(), nil)
		built, err := sketch.Build(eng, rel, cfg.Seed)
		if cfg.Collect != nil {
			rec := RunRecord{Algo: "SP-Sketch", InputTuples: rel.N(), DNF: err != nil}
			if built != nil {
				var jm mr.JobMetrics
				jm.Add(built.Metrics)
				rec.Metrics = &jm
			}
			cfg.Collect(rec)
		}
		if err != nil {
			continue
		}
		m := eng.MemTuples(n)
		sample.Points = append(sample.Points, Point{X: x, Y: float64(built.Sketch.SampleN)})
		expect.Points = append(expect.Points, Point{X: x, Y: float64(cfg.Workers) * math.Log(float64(n)*float64(cfg.Workers))})
		memory.Points = append(memory.Points, Point{X: x, Y: float64(m)})
		bytesSeries.Points = append(bytesSeries.Points, Point{X: x, Y: float64(built.EncodedBytes)})

		clearHit, clearTotal, borderHit, borderTotal := recall(rel, built.Sketch, m)
		clear.Points = append(clear.Points, Point{X: x, Y: ratio(clearHit, clearTotal)})
		borderline.Points = append(borderline.Points, Point{X: x, Y: ratio(borderHit, borderTotal)})
	}

	return []Figure{
		{ID: "sketch-sample", Title: "SP-Sketch sample size vs n (Prop 4.4)", XLabel: "tuples", YLabel: "tuples",
			Series: []Series{sample, expect, memory}},
		{ID: "sketch-recall", Title: "SP-Sketch skew detection recall (Prop 4.5)", XLabel: "tuples", YLabel: "recall",
			Series: []Series{clear, borderline}},
		{ID: "sketch-size", Title: "SP-Sketch encoded size vs n (Prop 4.7)", XLabel: "tuples", YLabel: "bytes",
			Series: []Series{bytesSeries}},
	}
}

// recall compares the sketch's skew set against exact group counts.
func recall(rel *relation.Relation, sk *sketch.Sketch, m int) (clearHit, clearTotal, borderHit, borderTotal int) {
	d := rel.D()
	counts := make(map[string]int)
	for _, t := range rel.Tuples {
		for mask := lattice.Mask(0); mask <= lattice.Full(d); mask++ {
			counts[relation.GroupKey(uint32(mask), t.Dims)]++
		}
	}
	for key, c := range counts {
		if c <= m {
			continue
		}
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			continue
		}
		detected := sk.IsSkewed(lattice.Mask(mask), packed)
		if c >= 2*m {
			clearTotal++
			if detected {
				clearHit++
			}
		} else {
			borderTotal++
			if detected {
				borderHit++
			}
		}
	}
	return
}

func ratio(hit, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
