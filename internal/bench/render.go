package bench

import (
	"fmt"
	"io"
	"strings"
)

// Render writes figures as aligned text tables: one row per x value, one
// column per series, with DNF cells marked — the textual equivalent of the
// paper's plots.
func Render(w io.Writer, figs []Figure) error {
	for fi := range figs {
		if err := renderOne(w, &figs[fi]); err != nil {
			return err
		}
		if fi != len(figs)-1 {
			fmt.Fprintln(w)
		}
	}
	return nil
}

func renderOne(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					if p.DNF {
						cell = "DNF"
					} else {
						cell = formatNum(p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		if _, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  (y: %s)\n", f.YLabel)
	return err
}

// formatNum renders values compactly: integers plainly, large magnitudes
// with k/M/G suffixes, small ones with limited precision.
func formatNum(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case abs >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	case abs >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// RenderCSV writes figures as CSV: figure,series,x,y,dnf.
func RenderCSV(w io.Writer, figs []Figure) error {
	if _, err := fmt.Fprintln(w, "figure,series,x,y,dnf"); err != nil {
		return err
	}
	for _, f := range figs {
		for _, s := range f.Series {
			for _, p := range s.Points {
				if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%v\n", f.ID, s.Name, p.X, p.Y, p.DNF); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
