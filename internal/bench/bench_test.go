package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests but large
// enough that runs are not dominated by per-round startup — the paper
// itself notes that very small inputs are "not a practical candidate for
// MapReduce computation" and there SP-Cube's extra sketch round costs more
// than it saves.
func tiny() Config { return Config{Workers: 10, Seed: 2016, Scale: 0.1} }

func seriesByName(f Figure, name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

func lastY(s *Series) (float64, bool) {
	if s == nil || len(s.Points) == 0 {
		return 0, false
	}
	p := s.Points[len(s.Points)-1]
	return p.Y, !p.DNF
}

func checkPaperOrdering(t *testing.T, figs []Figure, timeFigID string) {
	t.Helper()
	for _, f := range figs {
		if f.ID != timeFigID {
			continue
		}
		sp, spOK := lastY(seriesByName(f, "SP-Cube"))
		pig, pigOK := lastY(seriesByName(f, "Pig"))
		if !spOK {
			t.Fatalf("%s: SP-Cube did not finish", f.ID)
		}
		if pigOK && sp >= pig {
			t.Errorf("%s: SP-Cube (%v) not faster than Pig (%v)", f.ID, sp, pig)
		}
		if hive, hiveOK := lastY(seriesByName(f, "Hive")); hiveOK && sp >= hive {
			t.Errorf("%s: SP-Cube (%v) not faster than Hive (%v)", f.ID, sp, hive)
		}
		return
	}
	t.Fatalf("figure %s missing", timeFigID)
}

func TestFig4ShapeHolds(t *testing.T) {
	figs := Fig4(tiny())
	if len(figs) != 3 {
		t.Fatalf("fig4 has %d sub-figures", len(figs))
	}
	checkPaperOrdering(t, figs, "fig4a")
	// 4c: SP-Cube moves the least intermediate data.
	sp, _ := lastY(seriesByName(figs[2], "SP-Cube"))
	pig, pigOK := lastY(seriesByName(figs[2], "Pig"))
	if pigOK && sp >= pig {
		t.Errorf("fig4c: SP-Cube shuffle %v not below Pig %v", sp, pig)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	figs := Fig6(tiny())
	checkPaperOrdering(t, figs, "fig6a")
	// SP-Cube's time must stay roughly flat across p (paper: "stable
	// running time"): spread within 2x.
	sp := seriesByName(figs[0], "SP-Cube")
	lo, hi := sp.Points[0].Y, sp.Points[0].Y
	for _, p := range sp.Points {
		if p.DNF {
			t.Fatal("SP-Cube must not DNF")
		}
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	if hi > 2.5*lo {
		t.Errorf("fig6a: SP-Cube not stable across skew: [%v, %v]", lo, hi)
	}
	// 6b: SP-Cube map output decreases as p grows.
	spOut := seriesByName(figs[1], "SP-Cube")
	if spOut.Points[len(spOut.Points)-1].Y >= spOut.Points[0].Y {
		t.Error("fig6b: SP-Cube map output should shrink with skew")
	}
	// 6c: sketch stays tiny (orders of magnitude below the input).
	sk := seriesByName(figs[2], "SP-Sketch")
	for _, p := range sk.Points {
		if p.Y > 100_000 {
			t.Errorf("fig6c: sketch %v bytes is not small", p.Y)
		}
	}
}

func TestTrafficBoundsHold(t *testing.T) {
	figs := Traffic(tiny())
	f := figs[0]
	uni := seriesByName(f, "uniform (records/n)")
	adv := seriesByName(f, "adversarial (records/n)")
	if uni == nil || adv == nil {
		t.Fatal("missing series")
	}
	for i, p := range uni.Points {
		d := p.X
		// Proposition 5.5: on uniform data each tuple is shipped at most
		// d times (plus skew partials, a vanishing fraction).
		if p.Y > d+1 {
			t.Errorf("uniform traffic %v records/tuple exceeds d=%v", p.Y, d)
		}
		// Theorem 5.3: the adversarial relation's traffic grows far
		// beyond d at higher dimensions.
		if d >= 8 && adv.Points[i].Y < 2*d {
			t.Errorf("adversarial traffic %v at d=%v does not blow up", adv.Points[i].Y, d)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	figs := Ablation(tiny())
	times := map[string]float64{}
	for _, s := range figs[0].Series {
		if len(s.Points) > 0 && !s.Points[0].DNF {
			times[s.Name] = s.Points[0].Y
		}
	}
	if times["SP-Cube"] >= times["no-skew-handling"] {
		t.Errorf("skew handling should help: %v vs %v", times["SP-Cube"], times["no-skew-handling"])
	}
	if times["SP-Cube"] >= times["naive"] {
		t.Errorf("SP-Cube should beat naive: %v vs %v", times["SP-Cube"], times["naive"])
	}
}

func TestBalanceReports(t *testing.T) {
	figs := Balance(tiny())
	if len(figs) != 2 {
		t.Fatalf("balance should report output and input figures, got %d", len(figs))
	}
	for _, f := range figs {
		sp := seriesByName(f, "SP-Cube")
		for _, p := range sp.Points {
			if p.DNF {
				t.Fatalf("%s: SP-Cube DNF", f.ID)
			}
			if p.Y <= 0 {
				t.Errorf("%s: non-positive imbalance %v", f.ID, p.Y)
			}
		}
	}
}

func TestImbalance(t *testing.T) {
	if got := imbalance(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := imbalance([]int64{10, 10, 10}); got != 1 {
		t.Errorf("uniform: %v", got)
	}
	if got := imbalance([]int64{0, 10, 20}); got != 2 {
		t.Errorf("max/median: %v", got)
	}
}

func TestSketchQualityRecall(t *testing.T) {
	figs := SketchQuality(tiny())
	if len(figs) != 3 {
		t.Fatalf("sketch experiment has %d figures", len(figs))
	}
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s/%s is empty", f.ID, s.Name)
			}
		}
	}
	clear := seriesByName(figs[1], "recall, |set| ≥ 2m")
	for _, p := range clear.Points {
		if p.Y < 0.99 {
			t.Errorf("clear-skew recall %v < 1 at n=%v (Prop 4.5)", p.Y, p.X)
		}
	}
}

func TestRoundsGrowForPipesort(t *testing.T) {
	figs := Rounds(tiny())
	counts := seriesByName(figs[1], "Pipesort")
	for _, p := range counts.Points {
		if p.Y != p.X+1 {
			t.Errorf("pipesort at d=%v ran %v rounds, want d+1", p.X, p.Y)
		}
	}
	sp := seriesByName(figs[1], "SP-Cube")
	for _, p := range sp.Points {
		if p.Y != 2 {
			t.Errorf("SP-Cube at d=%v ran %v rounds, want 2", p.X, p.Y)
		}
	}
}

func TestByIDAndAll(t *testing.T) {
	if _, err := ByID("nope", tiny()); err == nil {
		t.Error("unknown experiment must fail")
	}
	for _, id := range ExperimentOrder {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRenderFormats(t *testing.T) {
	figs := []Figure{{
		ID: "t", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "A", Points: []Point{{X: 1, Y: 1500000}, {X: 2, Y: 0.5}}},
			{Name: "B", Points: []Point{{X: 1, Y: 3}, {X: 2, DNF: true}}},
		},
	}}
	var buf bytes.Buffer
	if err := Render(&buf, figs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "1.50M", "DNF", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := RenderCSV(&buf, figs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t,B,2,0,true") {
		t.Errorf("csv output missing DNF row:\n%s", buf.String())
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 5 {
		t.Errorf("csv rows = %d, want 5", got)
	}
}

func TestRenderCharts(t *testing.T) {
	figs := []Figure{{
		ID: "c", Title: "chart demo", XLabel: "n", YLabel: "secs", LogX: true,
		Series: []Series{
			{Name: "A", Points: []Point{{X: 10, Y: 5}, {X: 100, Y: 50}, {X: 1000, Y: 500}}},
			{Name: "B", Points: []Point{{X: 10, Y: 20}, {X: 1000, DNF: true}}},
		},
	}}
	var buf bytes.Buffer
	if err := RenderCharts(&buf, figs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chart demo", "legend: * A · o B", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q in:\n%s", want, out)
		}
	}
	// The largest completed value sits on the top row region, zero at the
	// bottom: glyph counts must match point counts.
	if got := strings.Count(out, "*"); got != 3 {
		t.Errorf("series A drew %d glyphs, want 3", got)
	}
	// Empty figure does not crash.
	var empty bytes.Buffer
	if err := RenderCharts(&empty, []Figure{{ID: "e", Title: "empty"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no completed points") {
		t.Error("empty figure should say so")
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		2.5e9:  "2.50G",
		3e6:    "3.00M",
		45000:  "45.0k",
		42:     "42",
		3.14:   "3.14",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
}
