package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/delta"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/serve"
)

// DeltaSchemaVersion versions the delta-maintenance benchmark document
// (BENCH_delta.json). Bump on any field change.
const DeltaSchemaVersion = 1

// MinDeltaSpeedup is the committed performance floor: applying a 1% batch by
// delta-merge must beat a from-scratch rebuild by at least this factor
// (ValidateDeltaJSON enforces it; `make bench-delta` regenerates the
// artifact and re-checks it).
const MinDeltaSpeedup = 5.0

// DeltaDoc is the machine-readable result of one delta-maintenance
// benchmark: the measured wall time of applying one small batch through the
// delta-merge path (delta cube job + merge + serving-layer patch + swap)
// against the full-rebuild path (recompute over base∪delta + index rebuild
// + swap) on identical inputs. Wall times are the best of Repetitions runs;
// everything else is deterministic in Seed.
type DeltaDoc struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`
	Algo          string `json:"algo"`
	// BaseTuples is the relation size the maintained cube was built over;
	// DeltaTuples (DeltaPercent% of it) is the appended batch size.
	BaseTuples   int     `json:"baseTuples"`
	DeltaTuples  int     `json:"deltaTuples"`
	DeltaPercent float64 `json:"deltaPercent"`
	Workers      int     `json:"workers"`
	Seed         int64   `json:"seed"`
	Repetitions  int     `json:"repetitions"`
	// Mode is the maintenance mode the batch actually took; the benchmark
	// is only meaningful when it is "delta".
	Mode string `json:"mode"`
	// DeltaSeconds and RebuildSeconds are the measured wall times;
	// Speedup is their ratio (rebuild / delta).
	DeltaSeconds   float64 `json:"deltaSeconds"`
	RebuildSeconds float64 `json:"rebuildSeconds"`
	Speedup        float64 `json:"speedup"`
	GoVersion      string  `json:"goVersion"`
	GeneratedAt    string  `json:"generatedAt"`
}

// DeltaConfig parameterizes RunDeltaBench. The zero value benchmarks a 1%
// batch over 20k uniform tuples with sp-cube on 20 simulated workers.
type DeltaConfig struct {
	BaseTuples   int     // default 20000
	DeltaPercent float64 // default 1
	Workers      int     // default 20
	Seed         int64   // default 2016
	Parallelism  int     // engine parallelism (0 = all cores)
	Repetitions  int     // timing repetitions, best-of (default 3)
	Algorithm    string  // default "sp-cube"
}

func (c *DeltaConfig) defaults() {
	if c.BaseTuples <= 0 {
		c.BaseTuples = 20000
	}
	if c.DeltaPercent <= 0 {
		c.DeltaPercent = 1
	}
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Seed == 0 {
		c.Seed = 2016
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.Algorithm == "" {
		c.Algorithm = "sp-cube"
	}
}

// RunDeltaBench measures delta-merge against full rebuild for one small
// append batch. Both paths start from an identical pre-built maintainer and
// serving store (setup is untimed) and end with the new snapshot swapped
// into a serving handle, so each measured interval covers everything a
// server does between receiving a batch and serving its results.
func RunDeltaBench(cfg DeltaConfig) (*DeltaDoc, error) {
	cfg.defaults()
	nd := int(float64(cfg.BaseTuples) * cfg.DeltaPercent / 100)
	if nd < 1 {
		nd = 1
	}
	base := data.Uniform(cfg.BaseTuples, 4, 25, cfg.Seed)
	// The batch comes from the same distribution as the base, so its
	// sketch drift is small and the maintainer chooses the delta path.
	deltaRel := data.Uniform(nd, 4, 25, cfg.Seed+1)
	batch := make([]relation.Tuple, nd)
	for i := 0; i < nd; i++ {
		batch[i] = deltaRel.Tuples[i].Clone()
	}

	mcfg := delta.Config{
		Algorithm:   cfg.Algorithm,
		Workers:     cfg.Workers,
		Parallelism: cfg.Parallelism,
		Seed:        cfg.Seed,
	}
	doc := &DeltaDoc{
		SchemaVersion: DeltaSchemaVersion,
		Tool:          "spbench",
		Algo:          cfg.Algorithm,
		BaseTuples:    cfg.BaseTuples,
		DeltaTuples:   nd,
		DeltaPercent:  cfg.DeltaPercent,
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
		Repetitions:   cfg.Repetitions,
		GoVersion:     runtime.Version(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
	}

	for rep := 0; rep < cfg.Repetitions; rep++ {
		// Fresh maintainers per repetition: Apply mutates their state.
		dm, err := delta.New(base, mcfg)
		if err != nil {
			return nil, fmt.Errorf("bench: delta maintainer: %w", err)
		}
		rcfg := mcfg
		rcfg.RebuildThreshold = -1 // force the rebuild path
		rm, err := delta.New(base, rcfg)
		if err != nil {
			return nil, fmt.Errorf("bench: rebuild maintainer: %w", err)
		}
		dst, err := serve.Build(dm.Relation(), dm.Result())
		if err != nil {
			return nil, fmt.Errorf("bench: build delta store: %w", err)
		}
		rst, err := serve.Build(rm.Relation(), rm.Result())
		if err != nil {
			return nil, fmt.Errorf("bench: build rebuild store: %w", err)
		}
		dsvc := serve.NewDirect(dst, nil)
		rsvc := serve.NewDirect(rst, nil)

		dBatch := cloneBatch(batch)
		t0 := time.Now()
		rnd, err := dm.Apply(delta.Batch{Append: dBatch})
		if err != nil {
			return nil, fmt.Errorf("bench: delta apply: %w", err)
		}
		if rnd.Mode != "delta" {
			return nil, fmt.Errorf("bench: batch took mode %q (reason %s, drift %.3f), want delta — the benchmark would compare rebuild against rebuild", rnd.Mode, rnd.Reason, rnd.Drift)
		}
		p := serve.NewPatch()
		for _, ch := range rnd.Changes {
			if ch.Delete {
				err = p.Delete(ch.Key)
			} else {
				err = p.Set(ch.Key, ch.Value)
			}
			if err != nil {
				return nil, fmt.Errorf("bench: patch: %w", err)
			}
		}
		next, err := dsvc.Store().ApplyPatch(p, dm.Relation().Dict)
		if err != nil {
			return nil, fmt.Errorf("bench: apply patch: %w", err)
		}
		dsvc.Swap(next)
		dSec := time.Since(t0).Seconds()

		rBatch := cloneBatch(batch)
		t0 = time.Now()
		rrnd, err := rm.Apply(delta.Batch{Append: rBatch})
		if err != nil {
			return nil, fmt.Errorf("bench: rebuild apply: %w", err)
		}
		rebuilt, err := serve.Build(rm.Relation(), rm.Result())
		if err != nil {
			return nil, fmt.Errorf("bench: rebuild store: %w", err)
		}
		rsvc.Swap(rebuilt)
		rSec := time.Since(t0).Seconds()

		if rep == 0 || dSec < doc.DeltaSeconds {
			doc.DeltaSeconds = dSec
		}
		if rep == 0 || rSec < doc.RebuildSeconds {
			doc.RebuildSeconds = rSec
		}
		doc.Mode = rnd.Mode
		_ = rrnd
	}
	if doc.DeltaSeconds > 0 {
		doc.Speedup = doc.RebuildSeconds / doc.DeltaSeconds
	}
	return doc, nil
}

func cloneBatch(ts []relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// WriteDeltaDoc writes the document as indented JSON.
func WriteDeltaDoc(w io.Writer, doc *DeltaDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: write delta doc: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateDeltaJSON structurally validates a serialized DeltaDoc and
// enforces the committed performance floor: the batch must have taken the
// delta path and its measured speedup must be at least MinDeltaSpeedup. It
// is the check behind `spbench -validate-delta` and the CI bench-delta leg.
func ValidateDeltaJSON(raw []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("bench: delta document: %w", describeJSONError(raw, err))
	}
	v, ok := doc["schemaVersion"].(float64)
	if !ok {
		return fmt.Errorf("bench: delta document: missing numeric schemaVersion")
	}
	if int(v) != DeltaSchemaVersion {
		return fmt.Errorf("bench: delta document: schemaVersion %d, want %d", int(v), DeltaSchemaVersion)
	}
	if s, _ := doc["tool"].(string); s != "spbench" {
		return fmt.Errorf("bench: delta document: tool %q, want %q", doc["tool"], "spbench")
	}
	if s, _ := doc["algo"].(string); s == "" {
		return fmt.Errorf("bench: delta document: missing algo")
	}
	if s, _ := doc["mode"].(string); s != "delta" {
		return fmt.Errorf("bench: delta document: mode %q — the measured batch did not take the delta-merge path", doc["mode"])
	}
	for _, key := range []string{"baseTuples", "deltaTuples", "deltaPercent", "workers", "repetitions", "deltaSeconds", "rebuildSeconds", "speedup"} {
		f, ok := doc[key].(float64)
		if !ok {
			return fmt.Errorf("bench: delta document: missing numeric %s", key)
		}
		if f <= 0 {
			return fmt.Errorf("bench: delta document: %s = %v, want > 0", key, f)
		}
	}
	if sp := doc["speedup"].(float64); sp < MinDeltaSpeedup {
		return fmt.Errorf("bench: delta document: speedup %.2fx is below the committed floor %.0fx (delta %.4fs vs rebuild %.4fs)",
			sp, MinDeltaSpeedup, doc["deltaSeconds"], doc["rebuildSeconds"])
	}
	return nil
}
