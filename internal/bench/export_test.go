package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/mr"
)

// runFig6Doc runs the fig6 experiment at a tiny scale and assembles its
// metrics document.
func runFig6Doc(t *testing.T, par int, faults string) []byte {
	t.Helper()
	cfg := Config{Workers: 10, Seed: 2016, Scale: 0.01, Parallelism: par}
	if faults != "" {
		fp, err := mr.ParseFaultPlan(faults)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fp
	}
	var col Collector
	cfg.Collect = col.Collect
	figs := Fig6(cfg)
	var buf bytes.Buffer
	if err := WriteMetricsDoc(&buf, NewMetricsDoc(cfg, "fig6", figs, col.Runs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMetricsDocValidates(t *testing.T) {
	data := runFig6Doc(t, 1, "")
	if err := ValidateMetricsJSON(data); err != nil {
		t.Fatalf("generated document fails validation: %v", err)
	}
	var doc MetricsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tool != "spbench" || doc.Experiment != "fig6" {
		t.Errorf("tool/experiment: %s/%s", doc.Tool, doc.Experiment)
	}
	if doc.SchemaVersion != mr.MetricsSchemaVersion {
		t.Errorf("schemaVersion = %d", doc.SchemaVersion)
	}
	if len(doc.Figures) != 3 {
		t.Errorf("figures = %d, want 3 (fig6a-c)", len(doc.Figures))
	}
	// 6 skew levels × 3 algorithms = 18 runs.
	if len(doc.Runs) != 18 {
		t.Errorf("runs = %d, want 18", len(doc.Runs))
	}
	for i, r := range doc.Runs {
		if r.Metrics == nil {
			t.Fatalf("run %d (%s) has no metrics", i, r.Algo)
		}
		if len(r.Metrics.Rounds) == 0 {
			t.Errorf("run %d (%s) has no rounds", i, r.Algo)
		}
	}
	if doc.Environment.GoVersion == "" || doc.Environment.GeneratedAt == "" {
		t.Errorf("environment incomplete: %+v", doc.Environment)
	}
}

// TestValidateMetricsJSONAcceptsVersionRange pins the compatibility window:
// v2 documents (pre-maintenance) and v3 documents (with per-round maint
// annotations) must both validate, at the top level and inside embedded run
// metrics, including mixed top-level/run versions from re-exported archives.
func TestValidateMetricsJSONAcceptsVersionRange(t *testing.T) {
	const shell = `{"schemaVersion":%d,"tool":"x","experiment":"y","workers":1,"seed":1,"scale":1,` +
		`"environment":{"goVersion":"go"},"figures":[],` +
		`"runs":[{"algo":"a","inputTuples":1,"metrics":{"schemaVersion":%d,"rounds":[]}}]}`
	cases := []struct{ top, run int }{{2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {3, 2}, {2, 3}, {4, 2}, {2, 4}, {5, 2}, {2, 5}, {6, 2}, {2, 6}}
	for _, c := range cases {
		doc := fmt.Sprintf(shell, c.top, c.run)
		if err := ValidateMetricsJSON([]byte(doc)); err != nil {
			t.Errorf("top-level v%d with run v%d rejected: %v", c.top, c.run, err)
		}
	}
	// Out-of-range versions are named together with the accepted range.
	for _, bad := range []int{1, 7} {
		err := ValidateMetricsJSON([]byte(fmt.Sprintf(shell, bad, 2)))
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("schemaVersion %d", bad)) ||
			!strings.Contains(err.Error(), "accepted range 2..6") {
			t.Errorf("top-level v%d: error %v does not name version and range", bad, err)
		}
		err = ValidateMetricsJSON([]byte(fmt.Sprintf(shell, 3, bad)))
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("schemaVersion %d", bad)) ||
			!strings.Contains(err.Error(), "accepted range 2..6") {
			t.Errorf("run v%d: error %v does not name version and range", bad, err)
		}
	}
}

func TestValidateMetricsJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "nope", "metrics document"},
		{"no version", `{"tool":"spbench"}`, "schemaVersion"},
		{"wrong version", `{"schemaVersion":99,"tool":"x","experiment":"y"}`, "schemaVersion 99"},
		{"stale v1", `{"schemaVersion":1,"tool":"x","experiment":"y"}`, "schemaVersion 1"},
		{"no tool", `{"schemaVersion":2}`, "missing tool"},
		{"no figures", `{"schemaVersion":2,"tool":"x","experiment":"y","workers":1,"seed":1,"scale":1,"environment":{"goVersion":"go"}}`, "figures"},
		{"figure without id", `{"schemaVersion":2,"tool":"x","experiment":"y","workers":1,"seed":1,"scale":1,"environment":{"goVersion":"go"},"figures":[{}],"runs":[]}`, "no id"},
		{"run without algo", `{"schemaVersion":2,"tool":"x","experiment":"y","workers":1,"seed":1,"scale":1,"environment":{"goVersion":"go"},"figures":[],"runs":[{}]}`, "no algo"},
		{"run with bad metrics", `{"schemaVersion":2,"tool":"x","experiment":"y","workers":1,"seed":1,"scale":1,"environment":{"goVersion":"go"},"figures":[],"runs":[{"algo":"a","inputTuples":1,"metrics":{"schemaVersion":1}}]}`, "metrics schemaVersion"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateMetricsJSON([]byte(tc.doc))
			if err == nil {
				t.Fatal("validation accepted malformed document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateMetricsJSONSyntaxErrorNamesPosition pins the validator's error
// quality: malformed JSON must be reported with the line and column of the
// problem, not the bare byte offset of encoding/json's unmarshal error.
func TestValidateMetricsJSONSyntaxErrorNamesPosition(t *testing.T) {
	err := ValidateMetricsJSON([]byte("{\n  \"schemaVersion\": 2,\n  \"tool\": spbench\n}"))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "column") {
		t.Fatalf("error %q does not carry line/column position", err)
	}
	// Documents that decode to the wrong top-level shape get the decoded
	// type named instead of a position-less failure.
	if err := ValidateMetricsJSON([]byte("[1, 2]")); err == nil {
		t.Fatal("array document accepted")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error %q does not locate the type mismatch", err)
	}
}

// TestMetricsDocDeterministicAcrossParallelism is the acceptance criterion:
// the exported document is byte-identical across parallelism levels after
// stripping the wall-clock and provenance fields — with and without an
// injected fault plan.
func TestMetricsDocDeterministicAcrossParallelism(t *testing.T) {
	for _, faults := range []string{"", "*:map:*:crash"} {
		a, err := StripVolatile(runFig6Doc(t, 1, faults))
		if err != nil {
			t.Fatal(err)
		}
		b, err := StripVolatile(runFig6Doc(t, 8, faults))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("faults=%q: document differs between parallelism 1 and 8", faults)
		}
	}
}

// TestMetricsDocFaultedMatchesCleanModuloRecovery checks the recovery
// contract at the document level: a faulted run differs from a fault-free
// one only in the recovery-accounting fields.
func TestMetricsDocFaultedMatchesCleanModuloRecovery(t *testing.T) {
	recovery := []string{"retries", "wastedBytes", "attempts"}
	clean, err := StripVolatile(runFig6Doc(t, 1, ""), recovery...)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := StripVolatile(runFig6Doc(t, 1, "*:map:*:crash"), append([]string{"faults"}, recovery...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, faulted) {
		t.Error("faulted document differs from fault-free beyond recovery fields")
	}
}

func TestStripVolatile(t *testing.T) {
	in := []byte(`{"a":1,"wallSeconds":2,"nested":{"time":"x","b":[{"generatedAt":"y","c":3}]}}`)
	out, err := StripVolatile(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":1,"nested":{"b":[{"c":3}]}}`
	if string(out) != want {
		t.Errorf("got %s, want %s", out, want)
	}
	if _, err := StripVolatile([]byte("bad")); err == nil {
		t.Error("StripVolatile accepted invalid JSON")
	}
}

func TestCollectorTracerWiring(t *testing.T) {
	st := &mr.SliceTracer{}
	cfg := Config{Workers: 4, Seed: 1, Scale: 0.01, Parallelism: 1, Tracer: st}
	var col Collector
	cfg.Collect = col.Collect
	figs := Rounds(cfg)
	if len(figs) == 0 {
		t.Fatal("no figures")
	}
	if len(col.Runs) == 0 {
		t.Error("Collect hook not invoked by Rounds")
	}
	if len(st.Events) == 0 {
		t.Error("Tracer not wired into Rounds engines")
	}
	// SketchQuality builds its engines separately; both hooks must reach it
	// too.
	st.Events, col.Runs = nil, nil
	SketchQuality(cfg)
	if len(col.Runs) == 0 || len(st.Events) == 0 {
		t.Error("SketchQuality missed Collect/Tracer wiring")
	}
}
