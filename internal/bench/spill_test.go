package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunSpillBenchProducesValidDoc runs the benchmark at a small scale and
// checks the document's shape. The committed floors are asserted only on the
// full-scale artifact (BENCH_spill.json via `make bench-spill`), not here:
// at test scale the fixed round-startup charge dilutes the speedup.
func TestRunSpillBenchProducesValidDoc(t *testing.T) {
	doc, err := RunSpillBench(SpillConfig{
		Tuples: 4000, Workers: 8, Seed: 7,
		SpillBudgetBytes: 128 << 10, Repetitions: 1, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != SpillSchemaVersion || doc.Tool != "spbench" || doc.Algo != "fat-state-shuffle" {
		t.Errorf("doc header: %+v", doc)
	}
	if doc.Baseline.Codec != "raw" || !doc.Baseline.Sync || doc.Pipeline.Codec != "lz" || doc.Pipeline.Sync {
		t.Errorf("leg configurations: baseline %+v, pipeline %+v", doc.Baseline, doc.Pipeline)
	}
	if doc.Baseline.Spills == 0 || doc.Pipeline.Spills == 0 {
		t.Fatalf("workload never spilled: baseline %d, pipeline %d", doc.Baseline.Spills, doc.Pipeline.Spills)
	}
	// Front-coded (pre-compression) spill volume is codec-independent; the
	// physical volume must shrink under lz.
	if doc.Baseline.SpillBytes != doc.Pipeline.SpillBytes {
		t.Errorf("logical spill bytes differ across codecs: %d vs %d",
			doc.Baseline.SpillBytes, doc.Pipeline.SpillBytes)
	}
	if doc.Pipeline.SpilledBytes >= doc.Baseline.SpilledBytes {
		t.Errorf("lz leg wrote %d physical bytes, raw leg %d — no reduction",
			doc.Pipeline.SpilledBytes, doc.Baseline.SpilledBytes)
	}
	if doc.Speedup <= 0 || doc.WallSpeedup <= 0 || doc.BytesReduction <= 1 {
		t.Errorf("ratios not measured: speedup=%v wall=%v bytes=%v",
			doc.Speedup, doc.WallSpeedup, doc.BytesReduction)
	}
	var buf bytes.Buffer
	if err := WriteSpillDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	// Structural validation must pass; only the performance floors may trip
	// at this scale, and their errors must name the committed floor.
	if err := ValidateSpillJSON(buf.Bytes()); err != nil &&
		!strings.Contains(err.Error(), "below the committed floor") {
		t.Fatalf("generated document fails structural validation: %v", err)
	}
}

// TestSpillBenchDeterministicAcrossRuns reruns the benchmark with the same
// seed and compares every deterministic field — the property that lets the
// committed artifact's gated quantities re-validate on any machine.
func TestSpillBenchDeterministicAcrossRuns(t *testing.T) {
	cfg := SpillConfig{Tuples: 3000, Workers: 6, Seed: 11,
		SpillBudgetBytes: 64 << 10, Repetitions: 1}
	a, err := RunSpillBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpillBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, legs := range [][2]SpillLeg{{a.Baseline, b.Baseline}, {a.Pipeline, b.Pipeline}} {
		x, y := legs[0], legs[1]
		x.WallSeconds, y.WallSeconds = 0, 0
		if x != y {
			t.Errorf("deterministic leg fields differ across runs:\n%+v\n%+v", x, y)
		}
	}
	if a.Speedup != b.Speedup || a.BytesReduction != b.BytesReduction {
		t.Errorf("gated ratios differ across runs: %v/%v vs %v/%v",
			a.Speedup, a.BytesReduction, b.Speedup, b.BytesReduction)
	}
}

func TestValidateSpillJSON(t *testing.T) {
	leg := func(codec string, sync bool, spilled float64) map[string]any {
		return map[string]any{
			"codec": codec, "sync": sync, "mergeFanIn": 0,
			"simSeconds": 10.0, "wallSeconds": 0.5,
			"spillBytes": 1000000.0, "spilledBytes": spilled,
			"spills": 40, "mergePasses": 0,
		}
	}
	good := map[string]any{
		"schemaVersion": 1, "tool": "spbench", "algo": "fat-state-shuffle",
		"tuples": 100000, "valueBytes": 512, "workers": 20, "seed": 2016,
		"spillBudgetBytes": 1048576, "repetitions": 3,
		"baseline": leg("raw", true, 1000000.0),
		"pipeline": leg("lz", false, 250000.0),
		"speedup":  1.4, "wallSpeedup": 0.9, "bytesReduction": 4.0,
	}
	enc := func(mut func(map[string]any)) []byte {
		d := make(map[string]any, len(good))
		for k, v := range good {
			d[k] = v
		}
		if mut != nil {
			mut(d)
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if err := ValidateSpillJSON(enc(nil)); err != nil {
		t.Fatalf("good document rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(map[string]any)
		want string
	}{
		{"missing version", func(d map[string]any) { delete(d, "schemaVersion") }, "schemaVersion"},
		{"wrong version", func(d map[string]any) { d["schemaVersion"] = 9 }, "schemaVersion 9"},
		{"wrong tool", func(d map[string]any) { d["tool"] = "other" }, "tool"},
		{"missing algo", func(d map[string]any) { delete(d, "algo") }, "algo"},
		{"missing ratio", func(d map[string]any) { delete(d, "bytesReduction") }, "bytesReduction"},
		{"zero tuples", func(d map[string]any) { d["tuples"] = 0 }, "tuples"},
		{"missing leg", func(d map[string]any) { delete(d, "pipeline") }, "pipeline leg"},
		{"leg without codec", func(d map[string]any) {
			d["baseline"] = leg("", true, 1000000.0)
		}, "baseline leg has no codec"},
		{"leg never spilled", func(d map[string]any) {
			l := leg("lz", false, 250000.0)
			l["spills"] = 0
			d["pipeline"] = l
		}, "spills"},
		{"speedup below floor", func(d map[string]any) { d["speedup"] = 1.1 }, "1.10x is below the committed floor 1.3x"},
		{"bytes below floor", func(d map[string]any) { d["bytesReduction"] = 1.6 }, "1.60x is below the committed floor 2.0x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSpillJSON(enc(tc.mut))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := ValidateSpillJSON([]byte("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestCommittedSpillArtifactValidates pins the repository's committed
// BENCH_spill.json to the validator, floors included — the same check
// `make bench-spill` and the CI bench leg run.
func TestCommittedSpillArtifactValidates(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_spill.json")
	if err != nil {
		t.Skipf("committed artifact not found: %v", err)
	}
	if err := ValidateSpillJSON(data); err != nil {
		t.Errorf("committed BENCH_spill.json fails validation: %v", err)
	}
}
