package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderCharts writes figures as ASCII scatter/line charts — a terminal
// rendition of the paper's plots. Each series is drawn with its own glyph;
// DNF points are drawn as 'x' on the top border.
func RenderCharts(w io.Writer, figs []Figure) error {
	for fi := range figs {
		if err := renderChart(w, &figs[fi]); err != nil {
			return err
		}
		if fi != len(figs)-1 {
			fmt.Fprintln(w)
		}
	}
	return nil
}

const (
	chartWidth  = 64
	chartHeight = 16
)

var glyphs = []byte{'*', 'o', '+', '#', '@', '%', '&', '$'}

func renderChart(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := math.Inf(-1)
	hasPoint := false
	for _, s := range f.Series {
		for _, p := range s.Points {
			x := p.X
			if f.LogX && x > 0 {
				x = math.Log10(x)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			if !p.DNF {
				ymax = math.Max(ymax, p.Y)
				hasPoint = true
			}
		}
	}
	if !hasPoint {
		_, err := fmt.Fprintln(w, "  (no completed points)")
		return err
	}
	if ymax <= 0 {
		ymax = 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartWidth))
	}
	col := func(x float64) int {
		if f.LogX && x > 0 {
			x = math.Log10(x)
		}
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(chartWidth-1)))
		return clamp(c, 0, chartWidth-1)
	}
	row := func(y float64) int {
		r := chartHeight - 1 - int(math.Round(y/ymax*float64(chartHeight-1)))
		return clamp(r, 0, chartHeight-1)
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			c := col(p.X)
			if p.DNF {
				grid[0][c] = 'x'
				continue
			}
			grid[row(p.Y)][c] = g
		}
	}

	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = padLabel(formatNum(ymax))
		case chartHeight - 1:
			label = padLabel("0")
		case chartHeight / 2:
			label = padLabel(formatNum(ymax / 2))
		}
		if _, err := fmt.Fprintf(w, "  %s|%s\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", chartWidth)); err != nil {
		return err
	}
	xl, xr := f.XLabel, ""
	if f.LogX {
		xl += " (log)"
	}
	xr = formatNum(chartXMax(f))
	if _, err := fmt.Fprintf(w, "  %s%s%s\n", strings.Repeat(" ", 11), padRight(xl, chartWidth-len(xr)), xr); err != nil {
		return err
	}

	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "  legend: %s; y: %s; x: DNF\n", strings.Join(legend, " · "), f.YLabel)
	return err
}

func chartXMax(f *Figure) float64 {
	xmax := math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xmax = math.Max(xmax, p.X)
		}
	}
	return xmax
}

func padLabel(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return strings.Repeat(" ", 10-len(s)) + s
}

func padRight(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
