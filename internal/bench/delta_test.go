package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunDeltaBenchProducesValidDoc runs the benchmark at a small scale and
// checks the document's shape. The committed 5x floor is asserted only on
// the full-scale artifact (BENCH_delta.json via `make bench-delta`), not
// here: at test scale the fixed per-job overheads dominate both paths.
func TestRunDeltaBenchProducesValidDoc(t *testing.T) {
	doc, err := RunDeltaBench(DeltaConfig{BaseTuples: 2000, Repetitions: 1, Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != DeltaSchemaVersion || doc.Tool != "spbench" || doc.Algo != "sp-cube" {
		t.Errorf("doc header: %+v", doc)
	}
	if doc.Mode != "delta" {
		t.Fatalf("batch took mode %q, want delta", doc.Mode)
	}
	if doc.DeltaTuples != 20 || doc.BaseTuples != 2000 {
		t.Errorf("sizes: %d over %d, want 20 over 2000", doc.DeltaTuples, doc.BaseTuples)
	}
	if doc.DeltaSeconds <= 0 || doc.RebuildSeconds <= 0 || doc.Speedup <= 0 {
		t.Errorf("timings not measured: %+v", doc)
	}
	var buf bytes.Buffer
	if err := WriteDeltaDoc(&buf, doc); err != nil {
		t.Fatal(err)
	}
	// Structural validation must pass; only the speedup floor may trip at
	// this scale, and its error must name the measured value.
	if err := ValidateDeltaJSON(buf.Bytes()); err != nil &&
		!strings.Contains(err.Error(), "below the committed floor") {
		t.Fatalf("generated document fails structural validation: %v", err)
	}
}

func TestValidateDeltaJSON(t *testing.T) {
	good := map[string]any{
		"schemaVersion": 1, "tool": "spbench", "algo": "sp-cube", "mode": "delta",
		"baseTuples": 20000, "deltaTuples": 200, "deltaPercent": 1.0,
		"workers": 20, "seed": 2016, "repetitions": 3,
		"deltaSeconds": 0.01, "rebuildSeconds": 0.35, "speedup": 35.0,
	}
	enc := func(mut func(map[string]any)) []byte {
		d := make(map[string]any, len(good))
		for k, v := range good {
			d[k] = v
		}
		if mut != nil {
			mut(d)
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if err := ValidateDeltaJSON(enc(nil)); err != nil {
		t.Fatalf("good document rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(map[string]any)
		want string
	}{
		{"missing version", func(d map[string]any) { delete(d, "schemaVersion") }, "schemaVersion"},
		{"wrong version", func(d map[string]any) { d["schemaVersion"] = 9 }, "schemaVersion 9"},
		{"wrong tool", func(d map[string]any) { d["tool"] = "other" }, "tool"},
		{"missing algo", func(d map[string]any) { delete(d, "algo") }, "algo"},
		{"rebuild mode", func(d map[string]any) { d["mode"] = "rebuild" }, "delta-merge path"},
		{"missing timing", func(d map[string]any) { delete(d, "deltaSeconds") }, "deltaSeconds"},
		{"zero timing", func(d map[string]any) { d["rebuildSeconds"] = 0 }, "rebuildSeconds"},
		{"below floor", func(d map[string]any) { d["speedup"] = 4.2 }, "4.20x is below the committed floor 5x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateDeltaJSON(enc(tc.mut))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := ValidateDeltaJSON([]byte("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
