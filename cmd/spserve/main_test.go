package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const fixtureCSV = `name,city,sales
laptop,Rome,3
laptop,Oslo,1
phone,Rome,2
phone,Rome,5
`

func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sales.csv")
	if err := os.WriteFile(path, []byte(fixtureCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startServer runs the full CLI against a free port and returns the base URL
// plus a shutdown function that delivers the interrupt and waits for exit.
func startServer(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := append([]string{
		"-in", writeFixture(t),
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
	}, extraArgs...)
	stop := make(chan os.Signal, 1)
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run(args, stop, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with %d: %s", code, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("server never wrote its address; stderr: %s", stderr.String())
	}
	return "http://" + addr, func() int {
		stop <- os.Interrupt
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("exit code %d; stderr: %s", code, stderr.String())
			}
			return code
		case <-time.After(10 * time.Second):
			t.Fatal("server did not stop")
			return -1
		}
	}
}

func TestServeEndToEnd(t *testing.T) {
	base, shutdown := startServer(t)
	defer shutdown()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// count aggregate: 2 laptop rows.
	resp, err = http.Get(base + "/v1/query?op=point&group=laptop,*")
	if err != nil {
		t.Fatal(err)
	}
	var ans struct {
		Found bool    `json:"found"`
		Value float64 `json:"value"`
		Error string  `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ans)
	resp.Body.Close()
	if err != nil || !ans.Found || ans.Value != 2 || ans.Error != "" {
		t.Fatalf("point query: %+v, %v", ans, err)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats["tool"] != "spserve" {
		t.Fatalf("stats: %v, %v", stats, err)
	}
}

func TestServeSumAggregateAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.jsonl")
	base, shutdown := startServer(t, "-agg", "sum", "-algo", "naive",
		"-metrics-out", metrics, "-trace", trace)
	defer shutdown()

	// sum aggregate: laptop sales 3+1.
	resp, err := http.Get(base + "/v1/query?op=point&group=laptop,*")
	if err != nil {
		t.Fatal(err)
	}
	var ans struct {
		Value float64 `json:"value"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ans)
	resp.Body.Close()
	if err != nil || ans.Value != 4 {
		t.Fatalf("sum query: %+v, %v", ans, err)
	}

	for _, f := range []string{metrics, trace} {
		if data, err := os.ReadFile(f); err != nil || len(data) == 0 {
			t.Errorf("%s not written: %v", f, err)
		}
	}
	var doc map[string]any
	data, _ := os.ReadFile(metrics)
	if err := json.Unmarshal(data, &doc); err != nil || doc["schemaVersion"] == nil {
		t.Errorf("metrics file is not a versioned JSON document: %v", err)
	}
}

// postIngest sends one ingest batch and decodes the response.
func postIngest(t *testing.T, base string, req IngestRequest) (IngestResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// pointValue queries one point group and returns (value, found).
func pointValue(t *testing.T, base, group string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/query?op=point&group=" + group)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ans struct {
		Found bool    `json:"found"`
		Value float64 `json:"value"`
		Error string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil || ans.Error != "" {
		t.Fatalf("point %s: %+v, %v", group, ans, err)
	}
	return ans.Value, ans.Found
}

func TestServeIngestEndToEnd(t *testing.T) {
	base, shutdown := startServer(t)
	defer shutdown()

	if v, ok := pointValue(t, base, "laptop,*"); !ok || v != 2 {
		t.Fatalf("initial laptop count = %v,%v want 2", v, ok)
	}

	// Append two laptop rows (one in a brand-new city) and delete one
	// existing phone row: counts must move on the very next query.
	res, code := postIngest(t, base, IngestRequest{
		Append: []IngestRow{
			{Dims: []string{"laptop", "Rome"}, Measure: 9},
			{Dims: []string{"laptop", "Berlin"}, Measure: 4},
		},
		Delete: []IngestRow{{Dims: []string{"phone", "Rome"}, Measure: 2}},
	})
	if code != http.StatusOK || res.Error != "" {
		t.Fatalf("ingest: %d %+v", code, res)
	}
	if res.Round != 1 || res.Mode == "" || res.Appended != 2 || res.Deleted != 1 {
		t.Fatalf("ingest response: %+v", res)
	}
	if v, ok := pointValue(t, base, "laptop,*"); !ok || v != 4 {
		t.Fatalf("post-ingest laptop count = %v,%v want 4", v, ok)
	}
	if v, ok := pointValue(t, base, "phone,*"); !ok || v != 1 {
		t.Fatalf("post-ingest phone count = %v,%v want 1", v, ok)
	}
	if v, ok := pointValue(t, base, "laptop,Berlin"); !ok || v != 1 {
		t.Fatalf("new-city count = %v,%v want 1", v, ok)
	}

	// The stats document reports the swap.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Swaps int64 `json:"swaps"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Swaps != 1 {
		t.Fatalf("stats swaps = %d, %v (want 1)", stats.Swaps, err)
	}

	// Bad batches are rejected without disturbing the served cube: a
	// delete of a never-seen row, an empty batch, a GET.
	if res, code := postIngest(t, base, IngestRequest{
		Delete: []IngestRow{{Dims: []string{"tablet", "Rome"}, Measure: 1}},
	}); code != http.StatusBadRequest || res.Error == "" {
		t.Fatalf("unknown delete accepted: %d %+v", code, res)
	}
	if res, code := postIngest(t, base, IngestRequest{}); code != http.StatusBadRequest || res.Error == "" {
		t.Fatalf("empty batch accepted: %d %+v", code, res)
	}
	if resp, err := http.Get(base + "/v1/ingest"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET ingest: %d", resp.StatusCode)
		}
	}
	if v, ok := pointValue(t, base, "laptop,*"); !ok || v != 4 {
		t.Fatalf("rejected batches disturbed the cube: laptop = %v,%v", v, ok)
	}
}

func TestServeIngestRebuildPath(t *testing.T) {
	// A negative rebuild threshold forces every ingest cycle down the
	// full-rebuild + reindex path.
	base, shutdown := startServer(t, "-rebuild-threshold", "-1")
	defer shutdown()
	res, code := postIngest(t, base, IngestRequest{
		Append: []IngestRow{{Dims: []string{"phone", "Oslo"}, Measure: 7}},
	})
	if code != http.StatusOK || res.Mode != "rebuild" || res.Reason != "forced" {
		t.Fatalf("ingest: %d %+v (want forced rebuild)", code, res)
	}
	if v, ok := pointValue(t, base, "phone,Oslo"); !ok || v != 1 {
		t.Fatalf("post-rebuild count = %v,%v want 1", v, ok)
	}
}

func TestServeBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, ""},
		{"missing file", []string{"-in", "/does/not/exist.csv"}, 1, "exist"},
		{"bad algo", []string{"-algo", "quantum"}, 1, "quantum"},
		{"bad agg", []string{"-agg", "mode"}, 1, "mode"},
		{"bad faults", []string{"-faults", "nonsense"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := c.args
			if c.name != "missing file" && c.name != "bad flag" {
				args = append([]string{"-in", writeFixture(t)}, args...)
			}
			stop := make(chan os.Signal, 1)
			var stderr bytes.Buffer
			if code := run(args, stop, &stderr); code != c.code {
				t.Fatalf("exit = %d, want %d; stderr: %s", code, c.code, stderr.String())
			}
			if c.want != "" && !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.want)
			}
		})
	}
}

func TestReadCSVRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"one column", "just\na\n"},
		{"bad measure", "a,m\nx,notanumber\n"},
		{"no rows", "a,m\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := readCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	rel, err := readCSV(strings.NewReader(fixtureCSV))
	if err != nil || rel.N() != 4 || rel.D() != 2 {
		t.Fatalf("fixture: %v (n=%d d=%d)", err, rel.N(), rel.D())
	}
}

func TestServeAddrConflict(t *testing.T) {
	// Second server on the same resolved port must fail cleanly.
	base, shutdown := startServer(t)
	defer shutdown()
	addr := strings.TrimPrefix(base, "http://")
	stop := make(chan os.Signal, 1)
	var stderr bytes.Buffer
	if code := run([]string{"-in", writeFixture(t), "-addr", addr}, stop, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), addr) && !strings.Contains(stderr.String(), "address") {
		t.Errorf("stderr does not explain the bind failure: %s", stderr.String())
	}
}
