// Command spserve computes the data cube of a CSV file and serves it over
// HTTP: point, slice, rollup and top-k queries against a read-optimized
// in-memory index, with request batching and single-flight result caching
// so concurrent clients coalesce into few index probes.
//
// The input format and the compute flags follow cmd/spcube exactly (-algo,
// -agg, -k, -p, -seed, -minsup, -faults, -max-attempts, -spec-slack,
// -task-timeout, -trace, -metrics-out, -pprof). The serving side adds:
//
//	spserve -in sales.csv -addr localhost:8080
//	curl 'localhost:8080/v1/query?op=point&group=laptop,*,2012'
//	curl -d '{"op":"topk","group":["?","?","*"],"k":3}' localhost:8080/v1/query
//	curl localhost:8080/v1/schema     # dims, served values, cuboid sizes
//	curl localhost:8080/v1/stats      # queries, cache hits, batch coalescing
//
// The served cube is maintainable online: POST /v1/ingest applies a batch of
// appended and/or deleted rows through the incremental-maintenance layer
// (internal/delta) — delta-cube MR jobs merged into the serving index as a
// copy-on-write patch, or a full rebuild when the batch's sketch drift says
// the base partitioning no longer fits — and atomically swaps the new
// snapshot in. In-flight queries keep reading the old snapshot; no request
// ever sees a half-updated cube.
//
//	curl -d '{"append":[{"dims":["laptop","Rome","2013"],"measure":5}],
//	          "delete":[{"dims":["laptop","Rome","2012"],"measure":3}]}' \
//	     localhost:8080/v1/ingest
//
// -rebuild-threshold tunes the drift level that forces a rebuild (0 =
// default, negative = always rebuild).
//
// -addr :0 binds a free port; -addr-file writes the resolved host:port to a
// file once the server is listening (how the CI smoke test finds it). With
// -pprof, the serving counters are also exported on the observability
// endpoint at /debug/serve. Drive it with cmd/sploadgen for QPS and
// latency percentiles.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"time"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/delta"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/obs"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	os.Exit(run(os.Args[1:], stop, os.Stderr))
}

// run executes one spserve invocation; main minus the process exit and
// signal wiring, so tests can drive the full CLI (stop ends the serve loop).
func run(args []string, stop <-chan os.Signal, stderr io.Writer) int {
	fs := flag.NewFlagSet("spserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("in", "", "input CSV path (default stdin)")
		aggName     = fs.String("agg", "count", "aggregate function: count, sum, min, max, avg, var, stddev, distinct")
		algName     = fs.String("algo", "sp-cube", "algorithm: sp-cube, naive, mr-cube, hive, pipesort")
		workers     = fs.Int("k", 8, "simulated cluster size")
		par         = fs.Int("p", 0, "goroutines executing simulated tasks: 0 = all cores")
		seed        = fs.Int64("seed", 1, "sampling seed")
		minSup      = fs.Int("minsup", 0, "iceberg threshold: only materialize groups with at least this many rows")
		faults      = fs.String("faults", "", "fault-injection spec for the compute phase (see spcube -faults)")
		maxAttempts = fs.Int("max-attempts", 0, "task attempts before an injected failure becomes permanent (0 = engine default)")
		specSlack   = fs.Float64("spec-slack", 0, "speculative-execution slack in simulated seconds (0 = disabled)")
		taskTimeout = fs.Float64("task-timeout", 0, "kill and retry task attempts stalled longer than this many simulated seconds (0 = disabled)")
		rebuildThr  = fs.Float64("rebuild-threshold", 0, "sketch-drift level forcing ingest batches to rebuild (0 = default, negative = always rebuild)")
		traceFile   = fs.String("trace", "", "write structured engine trace events (JSON lines) to this file")
		metricsFile = fs.String("metrics-out", "", "write the compute run's per-round metrics (versioned JSON) to this file")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof, /debug/runtime and /debug/serve on this address")
		addr        = fs.String("addr", "localhost:8080", "serving address (use :0 for a free port)")
		addrFile    = fs.String("addr-file", "", "write the resolved host:port to this file once listening")
		cacheSize   = fs.Int("cache", 4096, "result-cache entries (negative disables caching)")
		batchWindow = fs.Duration("batch-window", 100*time.Microsecond, "how long a forming batch waits for more queries")
		maxBatch    = fs.Int("max-batch", 128, "max queries per batch")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	svc, maint, counters, err := computeAndIndex(options{
		in: *in, agg: *aggName, alg: *algName, workers: *workers, par: *par,
		seed: *seed, minSup: *minSup, faults: *faults, maxAttempts: *maxAttempts,
		specSlack: *specSlack, taskTimeout: *taskTimeout, rebuildThr: *rebuildThr,
		traceFile: *traceFile, metricsFile: *metricsFile,
		cache: *cacheSize, batchWindow: *batchWindow, maxBatch: *maxBatch,
	}, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "spserve:", err)
		return 1
	}
	defer svc.Close()

	if *pprofAddr != "" {
		srv, err := obs.Start(*pprofAddr, obs.Route{
			Pattern: "/debug/serve",
			Handler: serve.StatsHandler(counters, svc),
		})
		if err != nil {
			fmt.Fprintln(stderr, "spserve:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "spserve: profiling endpoint on http://%s/debug/pprof/\n", srv.Addr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "spserve:", err)
		return 1
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved), 0o644); err != nil {
			fmt.Fprintln(stderr, "spserve:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "spserve: serving %d groups on http://%s/\n", svc.Store().Groups(), resolved)

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(svc, svc, counters))
	mux.Handle("/v1/ingest", ingestHandler(svc, maint))
	httpSrv := &http.Server{Handler: mux}
	errs := make(chan error, 1)
	go func() { errs <- httpSrv.Serve(ln) }()
	select {
	case <-stop:
		_ = httpSrv.Close()
		<-errs
	case err := <-errs:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "spserve:", err)
			return 1
		}
	}
	return 0
}

// options carries one invocation's compute + index parameters.
type options struct {
	in, agg, alg           string
	workers, par           int
	seed                   int64
	minSup                 int
	faults                 string
	maxAttempts            int
	specSlack, taskTimeout float64
	rebuildThr             float64
	traceFile, metricsFile string
	cache, maxBatch        int
	batchWindow            time.Duration
}

// computeAndIndex builds the maintained cube (cycle 0 of the incremental
// maintainer is the full initial build) and the serving stack over it.
func computeAndIndex(o options, stderr io.Writer) (*serve.Batched, *delta.Maintainer, *serve.Counters, error) {
	aggFn, err := agg.ByName(o.agg)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := mr.ParseFaultPlan(o.faults)
	if err != nil {
		return nil, nil, nil, err
	}

	var r io.Reader = os.Stdin
	if o.in != "" {
		f, err := os.Open(o.in)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		r = f
	}
	rel, err := readCSV(r)
	if err != nil {
		return nil, nil, nil, err
	}

	cfg := delta.Config{
		Algorithm:        o.alg,
		Agg:              aggFn,
		MinSup:           o.minSup,
		Workers:          o.workers,
		Parallelism:      o.par,
		Seed:             o.seed,
		Faults:           plan,
		MaxAttempts:      o.maxAttempts,
		SpeculativeSlack: o.specSlack,
		TaskTimeout:      o.taskTimeout,
		RebuildThreshold: o.rebuildThr,
	}
	if o.traceFile != "" {
		tf, err := os.Create(o.traceFile)
		if err != nil {
			return nil, nil, nil, err
		}
		defer tf.Close()
		cfg.Tracer = mr.NewJSONLTracer(tf)
	}

	start := time.Now()
	maint, err := delta.New(rel, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s failed: %w", o.alg, err)
	}
	if o.metricsFile != "" {
		metrics := maint.Metrics()
		data, err := json.MarshalIndent(&metrics, "", "  ")
		if err != nil {
			return nil, nil, nil, err
		}
		if err := os.WriteFile(o.metricsFile, append(data, '\n'), 0o644); err != nil {
			return nil, nil, nil, err
		}
	}

	store, err := serve.Build(maint.Relation(), maint.Result())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("indexing cube: %w", err)
	}
	counters := &serve.Counters{}
	svc := serve.NewService(store, serve.Config{
		CacheEntries: o.cache,
		BatchWindow:  o.batchWindow,
		MaxBatch:     o.maxBatch,
		Counters:     counters,
	})
	fmt.Fprintf(stderr, "spserve: %s cubed %d rows into %d groups (%d cuboids) in %.2fs\n",
		o.alg, rel.N(), store.Groups(), len(store.Cuboids()), time.Since(start).Seconds())
	return svc, maint, counters, nil
}

// IngestRow is one string-valued row in an ingest request.
type IngestRow struct {
	Dims    []string `json:"dims"`
	Measure int64    `json:"measure"`
}

// IngestRequest is the wire form of one maintenance batch.
type IngestRequest struct {
	Append []IngestRow `json:"append,omitempty"`
	Delete []IngestRow `json:"delete,omitempty"`
}

// IngestResponse reports one applied maintenance cycle.
type IngestResponse struct {
	Round    int     `json:"round,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	Drift    float64 `json:"drift"`
	Appended int     `json:"appended"`
	Deleted  int     `json:"deleted"`
	Groups   int     `json:"groups"`
	Error    string  `json:"error,omitempty"`
}

// ingestHandler applies maintenance batches: run the delta (or rebuild)
// cycle, turn its change list into a serving patch, and atomically swap the
// new snapshot in. A handler-level mutex serializes the cycle + swap pair so
// patches always apply to the snapshot their change list was computed
// against. A failed cycle (e.g. injected faults) mutates nothing: the old
// snapshot keeps serving.
func ingestHandler(svc *serve.Batched, maint *delta.Maintainer) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, IngestResponse{Error: "ingest requires POST"})
			return
		}
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, IngestResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
		toRows := func(in []IngestRow) []delta.Row {
			out := make([]delta.Row, len(in))
			for i, r := range in {
				out[i] = delta.Row{Dims: r.Dims, Measure: r.Measure}
			}
			return out
		}
		mu.Lock()
		defer mu.Unlock()
		rnd, err := maint.ApplyStrings(toRows(req.Append), toRows(req.Delete))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, IngestResponse{Error: err.Error()})
			return
		}
		var next *serve.Store
		if rnd.Mode == "delta" {
			p := serve.NewPatch()
			for _, ch := range rnd.Changes {
				if ch.Delete {
					err = p.Delete(ch.Key)
				} else {
					err = p.Set(ch.Key, ch.Value)
				}
				if err != nil {
					break
				}
			}
			if err == nil {
				next, err = svc.Store().ApplyPatch(p, maint.Relation().Dict)
			}
		} else {
			next, err = serve.Build(maint.Relation(), maint.Result())
		}
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, IngestResponse{Error: err.Error()})
			return
		}
		svc.Swap(next)
		writeJSON(w, http.StatusOK, IngestResponse{
			Round:    rnd.Round,
			Mode:     rnd.Mode,
			Reason:   rnd.Reason,
			Drift:    rnd.Drift,
			Appended: rnd.Appended,
			Deleted:  rnd.Deleted,
			Groups:   next.Groups(),
		})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readCSV parses the spcube CSV shape (header row, last column the integer
// measure) into a relation.
func readCSV(r io.Reader) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("need at least one dimension column and a measure column, got %d columns", len(header))
	}
	d := len(header) - 1
	rel := relation.New(header[:d], header[d])
	dims := make([]string, d)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		copy(dims, rec[:d])
		m, err := strconv.ParseInt(rec[d], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: measure %q is not an integer: %w", line, rec[d], err)
		}
		rel.AppendStrings(dims, m)
	}
	if rel.N() == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return rel, nil
}
