package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/bench"
)

func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig99"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "fig99") {
		t.Errorf("error does not name the bad id: %s", msg)
	}
	for _, id := range bench.ExperimentOrder {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list valid experiment %q: %s", id, msg)
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected stdout: %s", stdout.String())
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig6", "-scale", "0.01", "-format", "xml"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "xml") {
		t.Errorf("error does not name the bad format: %s", stderr.String())
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig6", "-faults", "nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestRunMetricsOutAndTrace(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "fig6.json")
	trace := filepath.Join(dir, "trace.jsonl")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig6", "-scale", "0.01", "-k", "10",
		"-metrics-out", metrics, "-trace", trace}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig6") {
		t.Errorf("table output missing figure title:\n%s", stdout.String())
	}

	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.ValidateMetricsJSON(data); err != nil {
		t.Errorf("metrics document invalid: %v", err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Runs       []any  `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "fig6" {
		t.Errorf("experiment = %q, want fig6", doc.Experiment)
	}
	if len(doc.Runs) == 0 {
		t.Error("metrics document has no runs")
	}

	tf, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines, err)
		}
		if _, ok := ev["type"]; !ok {
			t.Fatalf("trace line %d lacks a type: %s", lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 10 {
		t.Errorf("trace has %d events, want at least 10", lines)
	}

	// The written document must round-trip through -validate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-validate", metrics}, &stdout, &stderr); code != 0 {
		t.Fatalf("-validate exit code = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "valid metrics document") {
		t.Errorf("-validate output: %s", stdout.String())
	}
}

func TestRunValidateRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schemaVersion": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-validate", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("no error message for malformed document")
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-validate", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit code = %d, want 1", code)
	}
}
