// Command spbench regenerates the paper's evaluation figures on the
// simulated cluster. Each experiment prints the same series as the
// corresponding figure of Milo & Altshuler (SIGMOD'16).
//
// Usage:
//
//	spbench -exp fig6                 # one experiment
//	spbench -exp all -format csv      # everything, machine readable
//	spbench -exp fig4 -scale 0.1      # a 10x smaller, faster sweep
//	spbench -exp fig4 -p 1            # sequential task execution, same numbers
//
// The -p flag controls how many goroutines execute the simulated tasks
// (0 = all cores). Every figure is identical at any parallelism; only the
// real time to produce it changes. Likewise -faults injects deterministic
// task failures (see mr.ParseFaultPlan for the spec syntax) that the
// engine's retry layer must recover from without changing a single figure:
//
//	spbench -exp fig6 -faults '*:map:*:crash' # same figures, every map task retried
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spcube/spcube/internal/bench"
	"github.com/spcube/spcube/internal/mr"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig4 fig5 fig6 fig7 fig8 balance traffic ablation rounds sketch, or all")
		workers = flag.Int("k", 20, "simulated cluster size (machines)")
		par     = flag.Int("p", 0, "goroutines executing simulated tasks: 0 = all cores, 1 = sequential (results are identical at any setting)")
		seed    = flag.Int64("seed", 2016, "deterministic seed for data generation and sampling")
		scale   = flag.Float64("scale", 1, "sweep size multiplier (1 = paper scale / 1000)")
		format  = flag.String("format", "table", "output format: table, csv, or chart")
		faults  = flag.String("faults", "", "fault-injection spec: round:phase:task:kind[:attempt[:count]], comma-separated (figures are identical to a fault-free run)")
		maxAtt  = flag.Int("max-attempts", 0, "task attempts before an injected failure becomes permanent (0 = engine default, 4)")
	)
	flag.Parse()

	plan, err := mr.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := bench.Config{Workers: *workers, Seed: *seed, Scale: *scale, Parallelism: *par,
		Faults: plan, MaxAttempts: *maxAtt}
	var figs []bench.Figure
	if *exp == "all" {
		figs = bench.All(cfg)
	} else {
		var err error
		figs, err = bench.ByID(*exp, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	switch *format {
	case "table":
		err = bench.Render(os.Stdout, figs)
	case "csv":
		err = bench.RenderCSV(os.Stdout, figs)
	case "chart":
		err = bench.RenderCharts(os.Stdout, figs)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
