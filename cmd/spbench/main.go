// Command spbench regenerates the paper's evaluation figures on the
// simulated cluster. Each experiment prints the same series as the
// corresponding figure of Milo & Altshuler (SIGMOD'16).
//
// Usage:
//
//	spbench -exp fig6                 # one experiment
//	spbench -exp all -format csv      # everything, machine readable
//	spbench -exp fig4 -scale 0.1      # a 10x smaller, faster sweep
//	spbench -exp fig4 -p 1            # sequential task execution, same numbers
//
// The -p flag controls how many goroutines execute the simulated tasks
// (0 = all cores). Every figure is identical at any parallelism; only the
// real time to produce it changes. Likewise -faults injects deterministic
// task failures (see mr.ParseFaultPlan for the spec syntax, including
// round:node:N:node-crash to kill a whole simulated machine) that the
// engine's recovery layer must absorb without changing a single figure;
// -spec-slack and -task-timeout exercise straggler mitigation the same way:
//
//	spbench -exp fig6 -faults '*:map:*:crash'        # same figures, every map task retried
//	spbench -exp fig6 -faults '*:node:1:node-crash'  # same figures, node 1's output recomputed
//	spbench -exp fig6 -faults '*:map:2:slow@20' -spec-slack 0.01
//
// Observability: -metrics-out FILE writes the figures plus every run's full
// per-round metrics as a versioned JSON document (validate one with
// -validate FILE), -trace FILE streams the engines' structured lifecycle
// events as JSON lines, and -pprof ADDR serves net/http/pprof and runtime
// metrics for the benchmarking process itself:
//
//	spbench -exp fig6 -metrics-out BENCH_fig6.json
//	spbench -validate BENCH_fig6.json
//	spbench -exp all -pprof localhost:6060
//
// Execution backends: -backend proc runs every experiment engine against
// real worker processes (one per simulated machine, with heartbeats, RPC
// deadlines and crash recovery) instead of in-process goroutines. Figures
// are identical across backends; comparing wall-clock between -backend
// local and -backend proc measures the process-isolation overhead:
//
//	spbench -exp fig6 -backend proc
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/spcube/spcube/internal/bench"
	"github.com/spcube/spcube/internal/cleanup"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/mr/exec"
	"github.com/spcube/spcube/internal/obs"
)

func main() {
	exec.MaybeWorkerMain() // proc-backend workers: spbench re-executes itself
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one spbench invocation; it is main minus the process exit,
// so tests can drive the full CLI surface.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment id: fig4 fig5 fig6 fig7 fig8 balance traffic ablation rounds sketch, or all")
		workers    = fs.Int("k", 20, "simulated cluster size (machines)")
		par        = fs.Int("p", 0, "goroutines executing simulated tasks: 0 = all cores, 1 = sequential (results are identical at any setting)")
		seed       = fs.Int64("seed", 2016, "deterministic seed for data generation and sampling")
		scale      = fs.Float64("scale", 1, "sweep size multiplier (1 = paper scale / 1000)")
		format     = fs.String("format", "table", "output format: table, csv, or chart")
		faults     = fs.String("faults", "", "fault-injection spec: round:phase:task:kind[:attempt[:count]] or round:node:N:node-crash, comma-separated (figures are identical to a fault-free run)")
		maxAtt     = fs.Int("max-attempts", 0, "task attempts before an injected failure becomes permanent (0 = engine default, 4)")
		specSlack  = fs.Float64("spec-slack", 0, "speculative-execution slack in simulated seconds: race a backup attempt against tasks stalled longer than this (0 = disabled)")
		taskTO     = fs.Float64("task-timeout", 0, "kill and retry task attempts stalled longer than this many simulated seconds (0 = disabled)")
		spillB     = fs.Int64("spill-budget", -1, "map-side in-memory emit budget in bytes before spilling to disk: -1 = never spill, 0 = spill every record, N > 0 = spill past N bytes (cube bytes are identical at any setting; simulated-time figures include the spill I/O cost)")
		spillDir   = fs.String("spill-dir", "", "directory for spill run files (default: the system temp dir, honoring $TMPDIR); removed on exit, interrupts included")
		spillCodec = fs.String("spill-codec", "raw", "block compression codec for spill run files: raw or lz (cube bytes are identical under any codec; simulated-time figures charge the compressed bytes actually written)")
		mergeFanIn = fs.Int("merge-fan-in", 0, "cap on runs merged at once by a reducer (0 = engine default, 64; minimum 2)")
		metricsOut = fs.String("metrics-out", "", "write figures and per-run metrics (versioned JSON) to this file")
		traceFile  = fs.String("trace", "", "write structured engine trace events (JSON lines) to this file")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and /debug/runtime on this address (e.g. localhost:6060)")
		validate   = fs.String("validate", "", "validate a metrics JSON document and exit (no experiments are run)")
		deltaOut   = fs.String("delta-out", "", "run the delta-maintenance benchmark (1% batch: delta-merge vs full rebuild) and write its JSON document to this file")
		valDelta   = fs.String("validate-delta", "", "validate a delta-benchmark JSON document (including the speedup floor) and exit")
		spillOut   = fs.String("spill-out", "", "run the spill-pipeline benchmark (async+lz pipeline vs sync raw baseline) and write its JSON document to this file")
		valSpill   = fs.String("validate-spill", "", "validate a spill-benchmark JSON document (including the speedup and bytes-reduction floors) and exit")
		backend    = fs.String("backend", "local", "execution backend: local (simulated nodes are goroutines) or proc (one real worker process per node); figures are identical across backends")
		workerCmd  = fs.String("worker-cmd", "", "worker argv for -backend proc, space-separated (default: this binary re-executes itself)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *valDelta != "" {
		data, err := os.ReadFile(*valDelta)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := bench.ValidateDeltaJSON(data); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: valid delta-benchmark document (schema version %d, speedup floor %.0fx)\n",
			*valDelta, bench.DeltaSchemaVersion, bench.MinDeltaSpeedup)
		return 0
	}

	if *deltaOut != "" {
		doc, err := bench.RunDeltaBench(bench.DeltaConfig{
			BaseTuples:  int(20000 * *scale),
			Workers:     *workers,
			Seed:        *seed,
			Parallelism: *par,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f, err := os.Create(*deltaOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		werr := bench.WriteDeltaDoc(f, doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
		fmt.Fprintf(stdout, "delta-merge %.4fs vs rebuild %.4fs: %.1fx speedup (%d-tuple batch over %d base tuples)\n",
			doc.DeltaSeconds, doc.RebuildSeconds, doc.Speedup, doc.DeltaTuples, doc.BaseTuples)
		return 0
	}

	if *valSpill != "" {
		data, err := os.ReadFile(*valSpill)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := bench.ValidateSpillJSON(data); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: valid spill-benchmark document (schema version %d, floors %.1fx sim / %.1fx bytes)\n",
			*valSpill, bench.SpillSchemaVersion, bench.MinSpillSpeedup, bench.MinSpillBytesReduction)
		return 0
	}

	if *spillOut != "" {
		doc, err := bench.RunSpillBench(bench.SpillConfig{
			Tuples:      int(100000 * *scale),
			Workers:     *workers,
			Seed:        *seed,
			Parallelism: *par,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f, err := os.Create(*spillOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		werr := bench.WriteSpillDoc(f, doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
		fmt.Fprintf(stdout, "spill pipeline %.2f sim s vs sync-raw baseline %.2f sim s: %.2fx (%.2fx real wall); %d B spilled vs %d B: %.2fx fewer bytes\n",
			doc.Pipeline.SimSeconds, doc.Baseline.SimSeconds, doc.Speedup, doc.WallSpeedup,
			doc.Pipeline.SpilledBytes, doc.Baseline.SpilledBytes, doc.BytesReduction)
		return 0
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := bench.ValidateMetricsJSON(data); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: valid metrics document (schema version %d)\n", *validate, mr.MetricsSchemaVersion)
		return 0
	}

	// Reject an unknown experiment id before any work (and before -format
	// or fault-spec problems can mask it).
	if _, err := experimentRunner(*exp); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	plan, err := mr.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *pprofAddr != "" {
		srv, err := obs.Start(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "spbench: profiling endpoint on http://%s/debug/pprof/\n", srv.Addr)
	}

	budget := *spillB
	switch {
	case budget < -1:
		fmt.Fprintf(stderr, "-spill-budget %d: want -1 (never), 0 (every record) or a positive byte count\n", budget)
		return 2
	case budget == -1:
		budget = 0 // engine 0 = spilling disabled
	case budget == 0:
		budget = 1 // any emit exceeds one byte: spill every record
	}

	// With spilling enabled, run files live under a CLI-owned temp root so
	// an interrupt can remove them: deferred engine cleanup never executes
	// when a signal kills the process mid-run.
	dir := *spillDir
	teardown := func() {}
	if budget > 0 {
		root, err := os.MkdirTemp(dir, "spbench-*")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		dir = root
		defer os.RemoveAll(root)
		teardown = func() { os.RemoveAll(root) }
	}

	// Two-stage interrupt handling: the first SIGINT/SIGTERM cancels the
	// sweep's context (reaping proc-backend workers through the deferred
	// Close), a second forces teardown and exit.
	ctx, stopSig := cleanup.NotifyContext(context.Background(), teardown, os.Exit)
	defer stopSig()

	cfg := bench.Config{Workers: *workers, Seed: *seed, Scale: *scale, Parallelism: *par,
		Faults: plan, MaxAttempts: *maxAtt,
		SpeculativeSlack: *specSlack, TaskTimeout: *taskTO,
		SpillBudgetBytes: budget, SpillDir: dir,
		SpillCodec: *spillCodec, MergeFanIn: *mergeFanIn,
		Context: ctx}

	switch *backend {
	case "", "local":
	case "proc":
		var opts exec.Options
		if *workerCmd != "" {
			opts.WorkerCommand = strings.Fields(*workerCmd)
		}
		p := exec.NewProc(opts)
		defer p.Close()
		cfg.Executor = p
	default:
		fmt.Fprintf(stderr, "-backend %s: want local or proc\n", *backend)
		return 2
	}

	var col bench.Collector
	if *metricsOut != "" {
		cfg.Collect = col.Collect
	}
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer tf.Close()
		cfg.Tracer = mr.NewJSONLTracer(tf)
	}

	runner, _ := experimentRunner(*exp)
	figs := runner(cfg)

	switch *format {
	case "table":
		err = bench.Render(stdout, figs)
	case "csv":
		err = bench.RenderCSV(stdout, figs)
	case "chart":
		err = bench.RenderCharts(stdout, figs)
	default:
		err = fmt.Errorf("unknown format %q (want table, csv, or chart)", *format)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *metricsOut != "" {
		doc := bench.NewMetricsDoc(cfg, *exp, figs, col.Runs)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		werr := bench.WriteMetricsDoc(f, doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	return 0
}

// experimentRunner resolves an experiment id ("all" included) to its
// runner, or an error naming the valid ids.
func experimentRunner(id string) (func(bench.Config) []bench.Figure, error) {
	if id == "all" {
		return bench.All, nil
	}
	if _, ok := bench.Experiments[id]; !ok {
		// ByID produces the canonical unknown-experiment error.
		_, err := bench.ByID(id, bench.Config{})
		return nil, err
	}
	return func(cfg bench.Config) []bench.Figure {
		figs, err := bench.ByID(id, cfg)
		if err != nil {
			panic(err) // unreachable: id validated above
		}
		return figs
	}, nil
}
