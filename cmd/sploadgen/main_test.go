package main

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/algo/naive"
	"github.com/spcube/spcube/internal/bench"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/cubetest"
	"github.com/spcube/spcube/internal/serve"
)

// testServer stands up a real serving stack over a small random cube.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	rel := cubetest.RandomRelation(rand.New(rand.NewSource(5)), 300, 3, 4)
	res, _, err := cubetest.RunAndCollect(cubetest.NewEngine(2), naive.Compute, rel, cube.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := serve.Build(rel, res)
	if err != nil {
		t.Fatal(err)
	}
	m := &serve.Counters{}
	svc := serve.NewService(store, serve.Config{Counters: m})
	ts := httptest.NewServer(serve.NewHandler(svc, store, m))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

func TestLoadgenEndToEnd(t *testing.T) {
	ts := testServer(t)
	out := filepath.Join(t.TempDir(), "latency.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-duration", "300ms", "-c", "4",
		"-dist", "zipf", "-seed", "7", "-out", out, "-min-qps", "1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "QPS") || !strings.Contains(stdout.String(), "p99") {
		t.Errorf("summary line incomplete: %s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.ValidateLatencyJSON(data); err != nil {
		t.Fatalf("written document invalid: %v", err)
	}

	// The document the run wrote validates through the CLI flag too.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-validate", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("-validate exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "valid latency document") {
		t.Errorf("-validate output: %s", stdout.String())
	}
}

func TestLoadgenUniformPointOnly(t *testing.T) {
	ts := testServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-duration", "200ms", "-c", "2",
		"-dist", "uniform", "-mix", "point=1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
}

func TestLoadgenMinQPSGate(t *testing.T) {
	ts := testServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-duration", "200ms", "-c", "2", "-min-qps", "1e12",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when QPS below the bound", code)
	}
	if !strings.Contains(stderr.String(), "below required") {
		t.Errorf("stderr does not explain the gate: %s", stderr.String())
	}
}

func TestLoadgenValidateRejectsBadDoc(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schemaVersion": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-validate", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "schemaVersion") {
		t.Errorf("error does not name the offending field: %s", stderr.String())
	}
	if code := run([]string{"-validate", filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file exit = %d, want 1", code)
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad dist", []string{"-dist", "pareto"}},
		{"bad mix op", []string{"-mix", "dice=1"}},
		{"bad mix weight", []string{"-mix", "point=lots"}},
		{"zero mix", []string{"-mix", "point=0"}},
		{"zero workers", []string{"-c", "0"}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit = %d, want 2; stderr: %s", c.name, code, stderr.String())
		}
	}
}

func TestLoadgenUnreachableTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-target", "http://127.0.0.1:1", "-duration", "100ms", "-c", "1"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for unreachable target", code)
	}
	if !strings.Contains(stderr.String(), "schema") {
		t.Errorf("stderr does not mention the schema fetch: %s", stderr.String())
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("point=8, slice=1,topk=0")
	if err != nil || w["point"] != 8 || w["slice"] != 1 || w["topk"] != 0 {
		t.Fatalf("parseMix: %v, %v", w, err)
	}
	if _, err := parseMix("point"); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := parseMix("point=-1"); err == nil {
		t.Error("negative weight accepted")
	}
}
